/// \file test_mesh.cpp
/// \brief Unit tests for the PARAMESH-like AMR mesh.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/config.hpp"
#include "mesh/tree.hpp"
#include "mesh/unk.hpp"
#include "rt/runtime.hpp"
#include "support/error.hpp"

namespace fhp::mesh {
namespace {

// Process-default execution context for construction sites: these tests
// exercise mesh mechanics, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

MeshConfig small_2d() {
  MeshConfig c;
  c.ndim = 2;
  c.nxb = 8;
  c.nyb = 8;
  c.nguard = 4;
  c.nscalars = 1;
  c.maxblocks = 256;
  c.max_level = 4;
  return c;
}

MeshConfig small_3d() {
  MeshConfig c;
  c.ndim = 3;
  c.nxb = 8;
  c.nyb = 8;
  c.nzb = 8;
  c.nguard = 4;
  c.maxblocks = 256;
  c.max_level = 3;
  return c;
}

// ----------------------------------------------------------------- config

TEST(MeshConfigTest, ValidationCatchesBadShapes) {
  MeshConfig c = small_2d();
  c.validate();  // baseline is fine
  c.nxb = 7;     // odd: restriction cannot pair cells
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_2d();
  c.nguard = 1;
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_2d();
  c.ndim = 3;  // nzb still 1
  EXPECT_THROW(c.validate(), ConfigError);
  c = small_2d();
  c.geometry = Geometry::kCylindrical;
  c.validate();
  c.ndim = 3;
  c.nzb = 8;
  EXPECT_THROW(c.validate(), ConfigError);  // cylindrical is 2-d
  c = small_2d();
  c.bc[0][0] = Bc::kPeriodic;  // unpaired periodic
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(MeshConfigTest, DerivedExtents) {
  const MeshConfig c = small_2d();
  EXPECT_EQ(c.nvar(), var::kFirstScalar + 1);
  EXPECT_EQ(c.ni(), 16);
  EXPECT_EQ(c.nj(), 16);
  EXPECT_EQ(c.nk(), 1);
  EXPECT_EQ(c.ilo(), 4);
  EXPECT_EQ(c.ihi(), 12);
  EXPECT_EQ(c.klo(), 0);
  EXPECT_EQ(c.khi(), 1);
  EXPECT_EQ(c.nchildren(), 4);
}

// -------------------------------------------------------------------- unk

TEST(UnkTest, VariableIndexIsFastest) {
  const MeshConfig c = small_2d();
  // Pinned to the Fortran layout: this test asserts var_major's specific
  // strides, so it must not float with FLASHHP_LAYOUT (the layout-matrix
  // CI job runs the whole suite under every layout).
  UnkContainer unk(c, mem::HugePolicy::kNone, LayoutKind::kVarMajor,
                   proc().page_pool());
  // unk(v, i, j, k, b): v consecutive, i strides by nvar.
  EXPECT_EQ(unk.offset(1, 0, 0, 0, 0) - unk.offset(0, 0, 0, 0, 0), 1u);
  EXPECT_EQ(unk.offset(0, 1, 0, 0, 0) - unk.offset(0, 0, 0, 0, 0),
            static_cast<std::size_t>(c.nvar()));
  EXPECT_EQ(unk.offset(0, 0, 1, 0, 0) - unk.offset(0, 0, 0, 0, 0),
            static_cast<std::size_t>(c.nvar()) * c.ni());
  EXPECT_EQ(unk.offset(0, 0, 0, 0, 1) - unk.offset(0, 0, 0, 0, 0),
            unk.block_stride());
}

TEST(UnkTest, StorageRoundTrip) {
  UnkContainer unk(small_2d(), mem::HugePolicy::kNone, proc().layout(),
                   proc().page_pool());
  unk.at(3, 5, 7, 0, 2) = 42.5;
  EXPECT_DOUBLE_EQ(unk.at(3, 5, 7, 0, 2), 42.5);
  EXPECT_EQ(unk.ptr(3, 5, 7, 0, 2), &unk.at(3, 5, 7, 0, 2));
}

TEST(UnkTest, SizesMatchConfig) {
  const MeshConfig c = small_2d();
  UnkContainer unk(c, mem::HugePolicy::kNone, proc().layout(),
                   proc().page_pool());
  EXPECT_EQ(unk.bytes(), static_cast<std::size_t>(c.nvar()) * c.ni() *
                             c.nj() * c.nk() * c.maxblocks * sizeof(double));
}

// ------------------------------------------------------------------- tree

TEST(TreeTest, RootsCoverTheDomain) {
  MeshConfig c = small_2d();
  c.nroot = {2, 3, 1};
  BlockTree tree(c);
  tree.create_roots();
  EXPECT_EQ(tree.num_allocated(), 6);
  EXPECT_EQ(tree.leaves_morton().size(), 6u);
  EXPECT_EQ(tree.finest_level(), 1);
}

TEST(TreeTest, RefineCreatesChildrenWithHalvedCoords) {
  BlockTree tree(small_2d());
  tree.create_roots();
  const auto kids = tree.refine(0);
  EXPECT_EQ(tree.num_allocated(), 5);
  EXPECT_FALSE(tree.info(0).is_leaf);
  for (int child = 0; child < 4; ++child) {
    const BlockInfo& info = tree.info(kids[static_cast<std::size_t>(child)]);
    EXPECT_EQ(info.level, 2);
    EXPECT_EQ(info.parent, 0);
    EXPECT_EQ(info.coord[0], child & 1);
    EXPECT_EQ(info.coord[1], (child >> 1) & 1);
    EXPECT_TRUE(info.is_leaf);
  }
}

TEST(TreeTest, DerefineRestoresLeaf) {
  BlockTree tree(small_2d());
  tree.create_roots();
  tree.refine(0);
  tree.derefine(0);
  EXPECT_TRUE(tree.info(0).is_leaf);
  EXPECT_EQ(tree.num_allocated(), 1);
  // Freed slots are reusable.
  tree.refine(0);
  EXPECT_EQ(tree.num_allocated(), 5);
}

TEST(TreeTest, FindLocatesBlocksByCoordinates) {
  BlockTree tree(small_2d());
  tree.create_roots();
  const auto kids = tree.refine(0);
  EXPECT_EQ(tree.find(1, {0, 0, 0}), 0);
  EXPECT_EQ(tree.find(2, {1, 1, 0}), kids[3]);
  EXPECT_EQ(tree.find(2, {5, 0, 0}), -1);
  EXPECT_EQ(tree.find(3, {0, 0, 0}), -1);
}

TEST(TreeTest, NeighborQueriesRespectDomainBounds) {
  MeshConfig c = small_2d();
  c.nroot = {2, 1, 1};
  BlockTree tree(c);
  tree.create_roots();
  const NeighborQuery right = tree.neighbor(0, {1, 0, 0});
  EXPECT_EQ(right.id, 1);
  EXPECT_FALSE(right.outside_domain);
  const NeighborQuery left = tree.neighbor(0, {-1, 0, 0});
  EXPECT_EQ(left.id, -1);
  EXPECT_TRUE(left.outside_domain);
}

TEST(TreeTest, PeriodicNeighborsWrap) {
  MeshConfig c = small_2d();
  c.nroot = {2, 1, 1};
  c.bc[0][0] = c.bc[0][1] = Bc::kPeriodic;
  BlockTree tree(c);
  tree.create_roots();
  const NeighborQuery wrapped = tree.neighbor(0, {-1, 0, 0});
  EXPECT_EQ(wrapped.id, 1);
  EXPECT_FALSE(wrapped.outside_domain);
}

TEST(TreeTest, MortonOrderVisitsEveryLeafOnce) {
  BlockTree tree(small_2d());
  tree.create_roots();
  tree.refine(0);
  const auto kids = tree.refine(tree.find(2, {0, 0, 0}));
  (void)kids;
  const auto leaves = tree.leaves_morton();
  std::set<int> unique(leaves.begin(), leaves.end());
  EXPECT_EQ(unique.size(), leaves.size());
  EXPECT_EQ(leaves.size(), 7u);  // 3 L2 leaves + 4 L3 leaves
  for (int id : leaves) {
    EXPECT_TRUE(tree.info(id).is_leaf);
  }
}

TEST(TreeTest, BlockBoundsPartitionTheDomain) {
  MeshConfig c = small_2d();
  c.lo = {0.0, -1.0, 0.0};
  c.hi = {2.0, 1.0, 1.0};
  BlockTree tree(c);
  tree.create_roots();
  const auto kids = tree.refine(0);
  const auto lo = tree.block_lo(kids[3]);
  const auto hi = tree.block_hi(kids[3]);
  EXPECT_DOUBLE_EQ(lo[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[0], 2.0);
  EXPECT_DOUBLE_EQ(lo[1], 0.0);
  EXPECT_DOUBLE_EQ(hi[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.cell_size(2, 0), 2.0 / (2 * c.nxb));
}

TEST(TreeTest, MaxblocksExhaustionThrows) {
  MeshConfig c = small_2d();
  c.maxblocks = 4;  // root + one refinement does not fit
  BlockTree tree(c);
  tree.create_roots();
  EXPECT_THROW(tree.refine(0), SystemError);
}

TEST(TreeTest, RefinePastMaxLevelThrows) {
  MeshConfig c = small_2d();
  c.max_level = 1;
  BlockTree tree(c);
  tree.create_roots();
  EXPECT_THROW(tree.refine(0), ConfigError);
}

TEST(TreeTest, BalanceDetection) {
  BlockTree tree(small_2d());
  tree.create_roots();
  EXPECT_TRUE(tree.is_balanced());
  tree.refine(0);
  EXPECT_TRUE(tree.is_balanced());
  // Refine one grandchild twice without touching its coarse neighbors.
  const int c00 = tree.find(2, {0, 0, 0});
  tree.refine(c00);
  EXPECT_TRUE(tree.is_balanced());  // L3 next to L2: legal
  const int c000 = tree.find(3, {0, 0, 0});
  tree.refine(c000);
  EXPECT_FALSE(tree.is_balanced());  // L4 next to L2: violation
}

// --------------------------------------------------------------- AMR mesh

TEST(AmrMeshTest, CellCoordinatesAndVolumesCartesian) {
  MeshConfig c = small_2d();
  c.lo = {0.0, 0.0, 0.0};
  c.hi = {1.0, 1.0, 1.0};
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  const int b = 0;
  EXPECT_DOUBLE_EQ(mesh.dx(b, 0), 1.0 / c.nxb);
  EXPECT_DOUBLE_EQ(mesh.xcenter(b, c.ilo()), 0.5 / c.nxb);
  EXPECT_DOUBLE_EQ(mesh.xface(b, c.ilo()), 0.0);
  // Sum of interior cell volumes equals the domain area (2-d: depth 1).
  double total = 0.0;
  for (int j = c.jlo(); j < c.jhi(); ++j) {
    for (int i = c.ilo(); i < c.ihi(); ++i) {
      total += mesh.cell_volume(b, i, j, 0);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(AmrMeshTest, CylindricalVolumesIntegrateToTorus) {
  MeshConfig c = small_2d();
  c.geometry = Geometry::kCylindrical;
  c.lo = {0.0, 0.0, 0.0};
  c.hi = {2.0, 1.0, 1.0};
  c.bc[0][0] = Bc::kAxis;
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  double total = 0.0;
  for (int j = c.jlo(); j < c.jhi(); ++j) {
    for (int i = c.ilo(); i < c.ihi(); ++i) {
      total += mesh.cell_volume(0, i, j, 0);
    }
  }
  // V = pi R^2 H = pi * 4 * 1.
  EXPECT_NEAR(total, M_PI * 4.0, 1e-10);
  // Radial face area at the axis is zero.
  EXPECT_DOUBLE_EQ(mesh.face_area(0, 0, c.ilo(), c.jlo(), 0), 0.0);
}

/// Fill all interior cells from an analytic linear function.
void fill_linear(AmrMesh& mesh) {
  const MeshConfig& c = mesh.config();
  for (int b : mesh.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const double f = 2.0 + 3.0 * mesh.xcenter(b, i) -
                           1.5 * mesh.ycenter(b, j);
          for (int v = 0; v < c.nvar(); ++v) {
            mesh.unk().at(v, i, j, k, b) = f + v;
          }
        }
      }
    }
  }
}

TEST(AmrMeshTest, GuardFillReproducesLinearFieldSameLevel) {
  MeshConfig c = small_2d();
  c.nroot = {2, 2, 1};
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  fill_linear(mesh);
  mesh.fill_guardcells();
  // Interior-side guards of block 0 (high-x) must continue the function.
  const int b = 0;
  for (int j = c.jlo(); j < c.jhi(); ++j) {
    for (int i = c.ihi(); i < c.ihi() + c.nguard; ++i) {
      const double expected =
          2.0 + 3.0 * mesh.xcenter(b, i) - 1.5 * mesh.ycenter(b, j);
      EXPECT_NEAR(mesh.unk().at(0, i, j, 0, b), expected, 1e-12);
    }
  }
}

TEST(AmrMeshTest, GuardFillInterpolatesFromCoarseExactlyForLinear) {
  MeshConfig c = small_2d();
  c.nroot = {2, 1, 1};
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  fill_linear(mesh);
  mesh.fill_guardcells();
  mesh.refine_block(0);  // block 1 stays coarse: fine-coarse interface
  fill_linear(mesh);
  mesh.fill_guardcells();
  // The high-x guards of the fine block at (1,0) come from coarse block 1;
  // linear interpolation is exact for a linear field.
  const int fine = mesh.tree().find(2, {1, 0, 0});
  ASSERT_GE(fine, 0);
  // Rows whose coarse stencil reaches the domain-boundary guards (where
  // outflow flattens the field) are excluded: linearity only holds where
  // the coarse data itself is linear.
  for (int j = c.jlo() + 2; j < c.jhi() - 2; ++j) {
    for (int i = c.ihi(); i < c.ihi() + c.nguard; ++i) {
      const double expected =
          2.0 + 3.0 * mesh.xcenter(fine, i) - 1.5 * mesh.ycenter(fine, j);
      EXPECT_NEAR(mesh.unk().at(0, i, j, 0, fine), expected, 1e-10)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(AmrMeshTest, OutflowBoundaryCopiesEdgeValue) {
  MeshConfig c = small_2d();
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  fill_linear(mesh);
  mesh.fill_guardcells();
  const double edge = mesh.unk().at(0, c.ilo(), c.jlo() + 2, 0, 0);
  for (int g = 1; g <= c.nguard; ++g) {
    EXPECT_DOUBLE_EQ(mesh.unk().at(0, c.ilo() - g, c.jlo() + 2, 0, 0), edge);
  }
}

TEST(AmrMeshTest, ReflectBoundaryMirrorsAndNegatesNormalVelocity) {
  MeshConfig c = small_2d();
  c.bc[0][0] = Bc::kReflect;
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  fill_linear(mesh);
  mesh.fill_guardcells();
  const int j = c.jlo() + 1;
  for (int g = 0; g < c.nguard; ++g) {
    const double mirror = mesh.unk().at(var::kDens, c.ilo() + g, j, 0, 0);
    EXPECT_DOUBLE_EQ(mesh.unk().at(var::kDens, c.ilo() - 1 - g, j, 0, 0),
                     mirror);
    const double vmir = mesh.unk().at(var::kVelx, c.ilo() + g, j, 0, 0);
    EXPECT_DOUBLE_EQ(mesh.unk().at(var::kVelx, c.ilo() - 1 - g, j, 0, 0),
                     -vmir);
  }
}

TEST(AmrMeshTest, PeriodicGuardsWrapAround) {
  MeshConfig c = small_2d();
  c.nroot = {2, 1, 1};
  c.bc[0][0] = c.bc[0][1] = Bc::kPeriodic;
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  // A distinctive value at the far-right interior of block 1 must appear
  // in the low-x guards of block 0.
  mesh.unk().at(0, c.ihi() - 1, c.jlo(), 0, 1) = 123.0;
  mesh.fill_guardcells();
  EXPECT_DOUBLE_EQ(mesh.unk().at(0, c.ilo() - 1, c.jlo(), 0, 0), 123.0);
}

TEST(AmrMeshTest, RestrictionConservesMassCartesian) {
  MeshConfig c = small_2d();
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  fill_linear(mesh);
  mesh.fill_guardcells();
  mesh.refine_block(0);
  // Perturb the children, then derefine: the parent must hold the
  // volume-weighted child average, conserving the integral.
  fill_linear(mesh);
  const double mass_fine = mesh.integrate(var::kDens);
  mesh.derefine_block(0);
  const double mass_coarse = mesh.integrate(var::kDens);
  EXPECT_NEAR(mass_coarse / mass_fine, 1.0, 1e-12);
}

TEST(AmrMeshTest, ProlongationIsConservativeAndExactForLinear) {
  MeshConfig c = small_2d();
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  fill_linear(mesh);
  mesh.fill_guardcells();
  const double mass_before = mesh.integrate(var::kDens);
  mesh.refine_block(0);
  const double mass_after = mesh.integrate(var::kDens);
  EXPECT_NEAR(mass_after / mass_before, 1.0, 1e-12);
  // Away from the domain boundary (where guards are zero-gradient, making
  // the parent slopes flat), the linear field is reproduced exactly.
  const int fine = mesh.tree().find(2, {1, 1, 0});
  const int i = c.ilo() + 1, j = c.jlo() + 1;
  const double expected =
      2.0 + 3.0 * mesh.xcenter(fine, i) - 1.5 * mesh.ycenter(fine, j);
  EXPECT_NEAR(mesh.unk().at(0, i, j, 0, fine), expected, 1e-10);
}

TEST(AmrMeshTest, LoehnerFlatFieldScoresZero) {
  AmrMesh mesh(small_2d(), mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  // A constant field has no second derivative anywhere — including at
  // the outflow boundaries, whose zero-gradient guards would make a
  // *linear* field look curved in the edge cells.
  const MeshConfig& c = mesh.config();
  for (int j = 0; j < c.nj(); ++j) {
    for (int i = 0; i < c.ni(); ++i) {
      mesh.unk().at(0, i, j, 0, 0) = 7.0;
    }
  }
  EXPECT_LT(mesh.loehner_error(0, 0), 1e-12);
}

TEST(AmrMeshTest, LoehnerDiscontinuityScoresHigh) {
  MeshConfig c = small_2d();
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  for (int j = 0; j < c.nj(); ++j) {
    for (int i = 0; i < c.ni(); ++i) {
      mesh.unk().at(0, i, j, 0, 0) = i < c.ni() / 2 ? 1.0 : 10.0;
    }
  }
  EXPECT_GT(mesh.loehner_error(0, 0), 0.6);
}

TEST(AmrMeshTest, RemeshRefinesDiscontinuityAndKeepsBalance) {
  MeshConfig c = small_2d();
  c.max_level = 3;
  c.maxblocks = 128;
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  auto paint = [&mesh](int v) {
    const MeshConfig& cc = mesh.config();
    for (int b : mesh.tree().leaves_morton()) {
      for (int j = cc.jlo(); j < cc.jhi(); ++j) {
        for (int i = cc.ilo(); i < cc.ihi(); ++i) {
          mesh.unk().at(v, i, j, 0, b) =
              mesh.xcenter(b, i) < 0.3 ? 1.0 : 8.0;
        }
      }
    }
  };
  paint(var::kDens);
  const std::array<int, 1> vars{var::kDens};
  for (int pass = 0; pass < 3; ++pass) {
    mesh.remesh(vars, 0.7, 0.1);
    paint(var::kDens);
  }
  EXPECT_EQ(mesh.tree().finest_level(), 3);
  EXPECT_TRUE(mesh.tree().is_balanced());
  EXPECT_GT(mesh.tree().leaves_morton().size(), 4u);
}

TEST(AmrMeshTest, RemeshDerefinesSmoothRegions) {
  MeshConfig c = small_2d();
  c.max_level = 2;
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  mesh.refine_block(0);  // fully refined, but the data is smooth
  for (int b : mesh.tree().leaves_morton()) {
    for (int j = 0; j < c.nj(); ++j) {
      for (int i = 0; i < c.ni(); ++i) {
        for (int v = 0; v < c.nvar(); ++v) {
          mesh.unk().at(v, i, j, 0, b) = 3.0;
        }
      }
    }
  }
  const std::array<int, 1> vars{var::kDens};
  mesh.remesh(vars, 0.8, 0.2);
  EXPECT_EQ(mesh.tree().leaves_morton().size(), 1u);  // collapsed back
}

TEST(AmrMeshTest, IntegrateProductMatchesHandComputation) {
  MeshConfig c = small_2d();
  AmrMesh mesh(c, mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  for (int j = c.jlo(); j < c.jhi(); ++j) {
    for (int i = c.ilo(); i < c.ihi(); ++i) {
      mesh.unk().at(var::kDens, i, j, 0, 0) = 2.0;
      mesh.unk().at(var::kEner, i, j, 0, 0) = 3.0;
    }
  }
  EXPECT_NEAR(mesh.integrate(var::kDens), 2.0, 1e-12);
  EXPECT_NEAR(mesh.integrate_product(var::kDens, var::kEner), 6.0, 1e-12);
}

TEST(AmrMeshTest, ThreeDRefinementProducesEightChildren) {
  AmrMesh mesh(small_3d(), mem::HugePolicy::kNone, proc().layout(),
               proc().page_pool());
  const auto kids = mesh.refine_block(0);
  int live = 0;
  for (int kid : kids) {
    if (kid >= 0) ++live;
  }
  EXPECT_EQ(live, 8);
  EXPECT_EQ(mesh.tree().leaves_morton().size(), 8u);
}

}  // namespace
}  // namespace fhp::mesh
