/// \file published_inside_region.cpp
/// \brief MUST NOT COMPILE under clang -Wthread-safety -Werror.
///
/// Reading the published (aggregated) counters from inside a parallel
/// region: published() excludes the region capability because the
/// aggregation is only coherent between regions, when the lanes are
/// quiescent. Expected diagnostic:
///   ... while mutex 'region_cap' is held ...
/// (asserted by PASS_REGULAR_EXPRESSION in CMakeLists.txt).

#include "perf/perf_context.hpp"
#include "support/lane.hpp"

std::uint64_t read_in_region(fhp::perf::PerfContext& ctx) {
  fhp::RegionWitness witness;  // models code running on a pool lane
  return ctx.published().counters[fhp::perf::Event::kCycles];
}
