/// \file shard_write_outside_region.cpp
/// \brief MUST NOT COMPILE under clang -Wthread-safety -Werror.
///
/// A lane-sharded counter write (PerfContext::add) outside a parallel
/// region: nothing holds the region capability, so two threads doing
/// this could race on the same shard. Expected diagnostic:
///   ... requires holding mutex 'region_cap' ...
/// (asserted by PASS_REGULAR_EXPRESSION in CMakeLists.txt).

#include "perf/perf_context.hpp"

void leak_counter_write(fhp::perf::PerfContext& ctx) {
  ctx.add(fhp::perf::Event::kCycles, 1);  // no RegionGuard/RegionWitness
}
