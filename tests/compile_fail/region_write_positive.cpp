/// \file region_write_positive.cpp
/// \brief Positive control: MUST COMPILE under -Wthread-safety -Werror.
///
/// The sanctioned pattern — a region-lambda body asserts the lane
/// writer role with RegionWitness, then writes its shard and pushes
/// spans. If this control fails, the negative tests in this directory
/// prove nothing (any -Werror noise would fail them too).

#include "par/parallel.hpp"
#include "perf/perf_context.hpp"
#include "support/lane.hpp"

void sanctioned(fhp::perf::PerfContext& ctx, std::size_t n) {
  fhp::par::parallel_for(n, [&](int, std::size_t) {
    fhp::RegionWitness witness;  // region lambda body: lane writer role
    ctx.add(fhp::perf::Event::kCycles, 1);
  });
  (void)ctx.published();  // legal between regions
}
