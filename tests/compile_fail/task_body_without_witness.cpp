/// \file task_body_without_witness.cpp
/// \brief MUST NOT COMPILE under clang -Wthread-safety -Werror.
///
/// A TaskGraph task body writing a lane-sharded counter without
/// asserting the region capability: task bodies run on work-stealing
/// pool lanes inside TaskGraph::run()'s region, but the analysis is
/// lexical — a lambda that touches shard state must carry its own
/// RegionWitness, exactly like a parallel_for body. Expected
/// diagnostic:
///   ... requires holding mutex 'region_cap' ...
/// (asserted by PASS_REGULAR_EXPRESSION in CMakeLists.txt).

#include "par/task_graph.hpp"
#include "perf/perf_context.hpp"

void leak_task_shard_write(fhp::par::TaskGraph& g,
                           fhp::perf::PerfContext& ctx) {
  g.add_task("task.bad", [&ctx](int /*lane*/) {
    ctx.add(fhp::perf::Event::kCycles, 1);  // no RegionWitness
  });
}
