/// \file nested_parallel_for.cpp
/// \brief MUST NOT COMPILE under clang -Wthread-safety -Werror.
///
/// Issuing a parallel region from inside a parallel region:
/// parallel_for excludes the region capability (the engine FHP_REQUIREs
/// against nesting at runtime; the annotation turns that contract
/// violation into a compile error). Expected diagnostic:
///   ... while mutex 'region_cap' is held ...
/// (asserted by PASS_REGULAR_EXPRESSION in CMakeLists.txt).

#include "par/parallel.hpp"
#include "support/lane.hpp"

void nest(std::size_t n) {
  fhp::RegionWitness witness;  // models code running on a pool lane
  fhp::par::parallel_for(n, [](int, std::size_t) {});
}
