/// \file test_service.cpp
/// \brief Tests for fhp::svc::Service — the multi-tenant front-end.
///
/// Five layers:
///   1. lifecycle — a mixed sedov/cellular/supernova batch runs to
///      completion with per-tenant results, counters and pool summaries;
///   2. admission — the bounded queue rejects with typed reasons
///      (kQueueFull at capacity, kShuttingDown after shutdown, kBadSpec
///      on junk), and rejected ids are never issued;
///   3. exhaustion — tenants carving from a dry synthetic inventory
///      degrade hugetlbfs -> THP -> base and still complete, with the
///      fallbacks visible in their PoolSummary;
///   4. shutdown — kDrain resolves everything kDone, kCancel resolves
///      the backlog kCancelled promptly; both join the workers. This
///      file is part of the tsan workload: concurrent workers stepping
///      tenants over one shared pool is the race surface;
///   5. the scheduler extension of the PR 9 invariant — a probe tenant
///      stepped in 1- and 3-step quanta, interleaved with strangers on
///      concurrent workers, ends bit-identical (canonical end state AND
///      published counters) to its solo run, across all three layouts.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eos/eos_table.hpp"
#include "mem/huge_policy.hpp"
#include "mem/numa.hpp"
#include "mem/page_pool.hpp"
#include "mem/page_size.hpp"
#include "perf/events.hpp"
#include "rt/runtime.hpp"
#include "support/error.hpp"
#include "svc/service.hpp"

namespace fhp::svc {
namespace {

using mesh::LayoutKind;

std::string sysfs_fixture(const std::string& rel) {
  return std::string(FHP_TEST_FIXTURE_DIR) + "/sysfs/" + rel;
}

/// A synthetic single-node inventory with one 2 MiB pool.
std::vector<mem::NodeHugePools> one_node_2m(std::size_t nr,
                                            std::size_t free) {
  mem::HugetlbPool p;
  p.page_bytes = mem::kPage2M;
  p.nr_hugepages = nr;
  p.free_hugepages = free;
  return {{0, {p}}};
}

/// Pool config over a synthetic inventory (no privilege needed).
mem::PagePoolConfig synthetic_pool(std::vector<mem::NodeHugePools> inventory,
                                   bool thp) {
  mem::PagePoolConfig cfg;
  cfg.inventory = std::move(inventory);
  cfg.hugepages_root = "/flashhp-nonexistent";
  cfg.node_root = "/flashhp-nonexistent";
  cfg.thp_root = thp ? sysfs_fixture("thp") : "/flashhp-nonexistent";
  return cfg;
}

/// The probe tenant of the bit-identity tests: the same 2-d Sedov the
/// runtime tests use, with modeled counters on.
JobSpec sedov_spec(int nsteps = 12) {
  JobSpec spec;
  spec.kind = JobKind::kSedov;
  spec.nsteps = nsteps;
  spec.trace_sample = 2;
  spec.sedov.ndim = 2;
  spec.sedov.nzb = 1;
  spec.sedov.max_level = 2;
  spec.sedov.maxblocks = 128;
  return spec;
}

JobSpec cellular_spec(int nsteps = 8) {
  JobSpec spec;
  spec.kind = JobKind::kCellular;
  spec.nsteps = nsteps;
  spec.cellular.max_level = 2;
  spec.cellular.maxblocks = 128;
  return spec;
}

JobSpec supernova_spec(int nsteps = 3) {
  JobSpec spec;
  spec.kind = JobKind::kSupernova;
  spec.nsteps = nsteps;
  spec.supernova.max_level = 3;
  spec.supernova.maxblocks = 400;
  spec.supernova.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  spec.supernova.table_cache = "helm_table_service.bin";
  return spec;
}

/// Build (or load) the Helm table cache once so no tenant pays the
/// build (mirrors test_runtime's warm_process).
void warm_process() {
  const JobSpec spec = supernova_spec();
  (void)eos::HelmTable::build_or_load(
      spec.supernova.table_spec, mem::HugePolicy::kNone,
      rt::Runtime::process_default().page_pool(),
      spec.supernova.table_cache);
}

void expect_counters_identical(const perf::PublishedCounters& a,
                               const perf::PublishedCounters& b,
                               const std::string& what) {
  EXPECT_EQ(a.seq, b.seq) << what << ": publish count differs";
  for (std::size_t e = 0; e < perf::kNumEvents; ++e) {
    if (e == static_cast<std::size_t>(perf::Event::kWallNanos)) continue;
    EXPECT_EQ(a.counters.values[e], b.counters.values[e])
        << what << ": counter " << e << " differs";
  }
}

// ------------------------------------------------------------ lifecycle

TEST(ServiceLifecycle, MixedBatchRunsToCompletion) {
  warm_process();
  ServiceOptions opts;
  opts.workers = 2;
  opts.quantum_steps = 2;
  Service service(opts);

  const Submission sedov = service.submit(sedov_spec(6));
  const Submission cellular = service.submit(cellular_spec(4));
  const Submission snova = service.submit(supernova_spec(2));
  ASSERT_TRUE(sedov.accepted());
  ASSERT_TRUE(cellular.accepted());
  ASSERT_TRUE(snova.accepted());
  EXPECT_NE(sedov.id, cellular.id);

  for (const Submission& s : {sedov, cellular, snova}) {
    const JobResult r = service.wait(s.id);
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_EQ(r.id, s.id);
    EXPECT_GT(r.sim_time, 0.0);
    EXPECT_GT(r.wall_seconds, 0.0);
    EXPECT_GE(r.wall_seconds, r.queue_seconds);
    // The driver publishes at every step boundary.
    EXPECT_EQ(r.counters.seq, static_cast<std::uint64_t>(r.steps));
  }
  EXPECT_EQ(service.wait(sedov.id).steps, 6);
  EXPECT_EQ(service.wait(cellular.id).steps, 4);
  EXPECT_EQ(service.wait(snova.id).steps, 2);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.active_tenants, 0);
  EXPECT_EQ(stats.queued, 0);
}

TEST(ServiceLifecycle, ProgressStreamsAndResolvesUnknownIds) {
  Service service(ServiceOptions{.workers = 1, .quantum_steps = 1});
  EXPECT_EQ(service.progress(42), std::nullopt);
  EXPECT_THROW((void)service.wait(42), ConfigError);

  const Submission s = service.submit(sedov_spec(6));
  ASSERT_TRUE(s.accepted());
  // Poll the streaming face while the worker steps the tenant; every
  // snapshot must be monotone and internally consistent.
  int last_steps = 0;
  for (;;) {
    const auto p = service.progress(s.id);
    ASSERT_TRUE(p.has_value());
    EXPECT_GE(p->steps, last_steps);
    last_steps = p->steps;
    if (p->status == JobStatus::kDone) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto final_progress = service.progress(s.id);
  ASSERT_TRUE(final_progress.has_value());
  EXPECT_EQ(final_progress->steps, 6);
  EXPECT_EQ(final_progress->counters.seq, 6u);
  EXPECT_GT(final_progress->sim_time, 0.0);
}

TEST(ServiceLifecycle, TimelineExportsPerTenantTrace) {
  const std::string path = "svc_tenant_timeline.json";
  std::remove(path.c_str());
  {
    Service service(ServiceOptions{.workers = 1});
    JobSpec spec = sedov_spec(4);
    spec.timeline_path = path;
    const Submission s = service.submit(std::move(spec));
    ASSERT_TRUE(s.accepted());
    EXPECT_EQ(service.wait(s.id).status, JobStatus::kDone);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "timeline not written";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("traceEvents"), std::string::npos);
  EXPECT_NE(text.find("driver.step"), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ admission

TEST(ServiceAdmission, SaturatedQueueRejectsTyped) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;  // nothing drains while we fill the queue
  Service service(opts);

  const Submission a = service.submit(sedov_spec(2));
  const Submission b = service.submit(sedov_spec(2));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());

  const Submission overflow = service.submit(sedov_spec(2));
  EXPECT_FALSE(overflow.accepted());
  EXPECT_EQ(overflow.reason, RejectReason::kQueueFull);
  EXPECT_EQ(overflow.id, 0u);
  EXPECT_EQ(service.stats().rejected, 1u);

  service.start();
  EXPECT_EQ(service.wait(a.id).status, JobStatus::kDone);
  EXPECT_EQ(service.wait(b.id).status, JobStatus::kDone);
  // Capacity freed: admission works again.
  EXPECT_TRUE(service.submit(sedov_spec(2)).accepted());
}

TEST(ServiceAdmission, BadSpecAndShutdownRejectTyped) {
  Service service(ServiceOptions{.workers = 1});

  JobSpec junk = sedov_spec(2);
  junk.lanes = 0;
  EXPECT_EQ(service.submit(std::move(junk)).reason, RejectReason::kBadSpec);
  JobSpec no_budget = sedov_spec(2);
  no_budget.nsteps = 0;
  EXPECT_EQ(service.submit(std::move(no_budget)).reason,
            RejectReason::kBadSpec);

  service.shutdown(Service::Shutdown::kDrain);
  const Submission late = service.submit(sedov_spec(2));
  EXPECT_EQ(late.reason, RejectReason::kShuttingDown);
  EXPECT_EQ(late.id, 0u);
}

TEST(ServiceAdmission, InteractivePreferredOverEarlierBatch) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  Service service(opts);

  JobSpec batch1 = sedov_spec(2);
  batch1.deadline = DeadlineClass::kBatch;
  JobSpec batch2 = cellular_spec(2);
  batch2.deadline = DeadlineClass::kBatch;
  JobSpec urgent = sedov_spec(2);
  urgent.deadline = DeadlineClass::kInteractive;

  const Submission b1 = service.submit(std::move(batch1));
  const Submission b2 = service.submit(std::move(batch2));
  const Submission i = service.submit(std::move(urgent));
  ASSERT_TRUE(b1.accepted() && b2.accepted() && i.accepted());

  service.start();
  // Strict class priority with one worker: no batch job may leave the
  // queue while the interactive job is still in it.
  for (;;) {
    const auto pi = service.progress(i.id);
    ASSERT_TRUE(pi.has_value());
    if (pi->status != JobStatus::kQueued) break;
    EXPECT_EQ(service.progress(b1.id)->status, JobStatus::kQueued);
    EXPECT_EQ(service.progress(b2.id)->status, JobStatus::kQueued);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(service.wait(i.id).status, JobStatus::kDone);
  EXPECT_EQ(service.wait(b1.id).status, JobStatus::kDone);
  EXPECT_EQ(service.wait(b2.id).status, JobStatus::kDone);
}

// ----------------------------------------------------------- exhaustion

TEST(ServiceExhaustion, DryPoolDegradesToThpWithoutFailing) {
  ServiceOptions opts;
  opts.workers = 2;
  // A pool whose hugetlb inventory is already dry, with the THP tier
  // available: every tenant allocation must degrade, not fail.
  opts.pool_config = synthetic_pool(one_node_2m(4, 0), /*thp=*/true);
  Service service(opts);

  JobSpec spec = sedov_spec(2);
  spec.policy = mem::HugePolicy::kHugetlbfs;
  const Submission a = service.submit(spec);
  const Submission b = service.submit(spec);
  ASSERT_TRUE(a.accepted() && b.accepted());

  for (const Submission& s : {a, b}) {
    const JobResult r = service.wait(s.id);
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_EQ(r.pool.huge_allocs, 0u);
    EXPECT_GT(r.pool.exhausted_events, 0u);
    EXPECT_GT(r.pool.thp_fallbacks, 0u);
    EXPECT_EQ(r.pool.base_fallbacks, 0u);
  }
}

TEST(ServiceExhaustion, NoThpTierDegradesToBaseWithoutFailing) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.pool_config = synthetic_pool(one_node_2m(4, 0), /*thp=*/false);
  Service service(opts);

  JobSpec spec = cellular_spec(2);
  spec.policy = mem::HugePolicy::kHugetlbfs;
  const Submission s = service.submit(spec);
  ASSERT_TRUE(s.accepted());
  const JobResult r = service.wait(s.id);
  EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
  EXPECT_EQ(r.pool.huge_allocs, 0u);
  EXPECT_GT(r.pool.exhausted_events, 0u);
  EXPECT_EQ(r.pool.thp_fallbacks, 0u);
  EXPECT_GT(r.pool.base_fallbacks, 0u);
}

TEST(ServiceExhaustion, SharedInventoryAccountsPerTenant) {
  // A healthy synthetic pool: tenants draw down one shared inventory,
  // and each tenant's PoolSummary carries its own slice.
  ServiceOptions opts;
  opts.workers = 1;  // serial: deterministic attribution
  opts.pool_config = synthetic_pool(one_node_2m(256, 256), /*thp=*/true);
  Service service(opts);

  JobSpec spec = sedov_spec(2);
  spec.policy = mem::HugePolicy::kHugetlbfs;
  const Submission a = service.submit(spec);
  const Submission b = service.submit(spec);
  ASSERT_TRUE(a.accepted() && b.accepted());
  const JobResult ra = service.wait(a.id);
  const JobResult rb = service.wait(b.id);
  EXPECT_EQ(ra.status, JobStatus::kDone) << ra.error;
  EXPECT_EQ(rb.status, JobStatus::kDone) << rb.error;
  EXPECT_GT(ra.pool.huge_allocs, 0u);
  // Identical specs carve identical arenas: the shared pool's counters
  // split evenly across the two tenants.
  EXPECT_EQ(ra.pool.huge_allocs, rb.pool.huge_allocs);
  EXPECT_EQ(service.pool().counters().huge_allocs,
            ra.pool.huge_allocs + rb.pool.huge_allocs);
}

// ------------------------------------------------------------- shutdown

TEST(ServiceShutdown, DrainFinishesTheBacklog) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.quantum_steps = 1;
  opts.start_paused = true;
  Service service(opts);

  std::vector<Submission> subs;
  for (int i = 0; i < 4; ++i) subs.push_back(service.submit(sedov_spec(3)));
  for (const Submission& s : subs) ASSERT_TRUE(s.accepted());

  service.start();
  service.shutdown(Service::Shutdown::kDrain);
  for (const Submission& s : subs) {
    const JobResult r = service.wait(s.id);
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_EQ(r.steps, 3);
  }
  EXPECT_EQ(service.stats().completed, 4u);
}

TEST(ServiceShutdown, CancelResolvesQueuedJobsWithoutRunningThem) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.start_paused = true;  // workers never touch the backlog
  Service service(opts);

  std::vector<Submission> subs;
  for (int i = 0; i < 3; ++i) subs.push_back(service.submit(sedov_spec(50)));
  for (const Submission& s : subs) ASSERT_TRUE(s.accepted());

  service.shutdown(Service::Shutdown::kCancel);
  for (const Submission& s : subs) {
    const JobResult r = service.wait(s.id);
    EXPECT_EQ(r.status, JobStatus::kCancelled);
    EXPECT_EQ(r.steps, 0);
    EXPECT_EQ(r.counters.seq, 0u);  // never constructed, never published
  }
  EXPECT_EQ(service.stats().cancelled, 3u);
}

TEST(ServiceShutdown, CancelInterruptsRunningJobsAtQuantum) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.quantum_steps = 1;
  Service service(opts);

  const Submission s = service.submit(sedov_spec(500));
  ASSERT_TRUE(s.accepted());
  // Let it actually run a few quanta before pulling the plug.
  for (;;) {
    const auto p = service.progress(s.id);
    ASSERT_TRUE(p.has_value());
    if (p->steps >= 2) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  service.shutdown(Service::Shutdown::kCancel);
  const JobResult r = service.wait(s.id);
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_GE(r.steps, 2);
  EXPECT_LT(r.steps, 500);
  EXPECT_EQ(service.stats().active_tenants, 0);
}

TEST(ServiceShutdown, DestructorDrainsAndSecondShutdownIsIdempotent) {
  Submission s;
  JobResult r;
  {
    Service service(ServiceOptions{.workers = 1});
    s = service.submit(sedov_spec(2));
    ASSERT_TRUE(s.accepted());
    service.shutdown(Service::Shutdown::kDrain);
    service.shutdown(Service::Shutdown::kCancel);  // mode already picked
    r = service.wait(s.id);
  }  // destructor shuts down again
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.steps, 2);
}

// =====================================================================
// The scheduler extension of the PR 9 invariant: fair-share quanta are
// invisible to the tenant — end state and published counters are
// bit-identical to the solo run, at 1- and 3-step quanta, interleaved
// with strangers on concurrent workers, across all three layouts.
// =====================================================================

struct ProbeResult {
  std::vector<double> state;
  perf::PublishedCounters counters;
};

/// Run the probe through a service: solo (one worker, nothing else) or
/// sharing the service with interference tenants at the given quantum.
ProbeResult run_probe(LayoutKind layout, int quantum, bool interference) {
  ServiceOptions opts;
  opts.workers = interference ? 2 : 1;
  opts.quantum_steps = quantum;
  Service service(opts);

  JobSpec probe = sedov_spec(12);
  probe.layout = layout;
  probe.capture_state = true;
  probe.log_tag = "probe";

  const Submission p = service.submit(std::move(probe));
  EXPECT_TRUE(p.accepted());
  std::vector<Submission> others;
  if (interference) {
    // Strangers on other layouts, one of them flame-bearing, so the
    // probe's quanta interleave with genuinely different physics.
    JobSpec c = cellular_spec(8);
    c.layout = LayoutKind::kVarMajor;
    others.push_back(service.submit(std::move(c)));
    JobSpec s = sedov_spec(8);
    s.layout = LayoutKind::kTiled;
    s.sedov.max_level = 1;
    others.push_back(service.submit(std::move(s)));
  }

  const JobResult r = service.wait(p.id);
  EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
  for (const Submission& o : others) {
    EXPECT_EQ(service.wait(o.id).status, JobStatus::kDone);
  }
  return {r.final_state, r.counters};
}

TEST(ServiceFairShare, QuantaInterleavedBitIdenticalToSolo) {
  for (const LayoutKind layout :
       {LayoutKind::kVarMajor, LayoutKind::kZoneMajor, LayoutKind::kTiled}) {
    const ProbeResult solo = run_probe(layout, 4, /*interference=*/false);
    ASSERT_GT(solo.state.size(), 1u);
    ASSERT_GT(solo.counters.seq, 0u);

    for (const int quantum : {1, 3}) {
      const std::string what =
          "layout " + std::string(mesh::to_string(layout)) + ", quantum " +
          std::to_string(quantum);
      const ProbeResult shared =
          run_probe(layout, quantum, /*interference=*/true);
      ASSERT_EQ(solo.state.size(), shared.state.size()) << what;
      EXPECT_EQ(std::memcmp(solo.state.data(), shared.state.data(),
                            solo.state.size() * sizeof(double)),
                0)
          << what << ": end state differs";
      expect_counters_identical(solo.counters, shared.counters, what);
    }
  }
}

}  // namespace
}  // namespace fhp::svc
