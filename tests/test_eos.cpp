/// \file test_eos.cpp
/// \brief Unit tests for the EOS library: Fermi-Dirac integrals, the
/// gamma-law and degenerate EOS, and the tabulated production path.

#include <gtest/gtest.h>

#include <cmath>

#include "eos/eos_table.hpp"
#include "eos/fermi_dirac.hpp"
#include "eos/gamma_eos.hpp"
#include "eos/helmholtz_eos.hpp"
#include "rt/runtime.hpp"
#include "support/constants.hpp"
#include "support/error.hpp"
#include "tlb/machine.hpp"

namespace fhp::eos {
namespace {

// Process-default execution context for construction sites: these tests
// exercise the tabulated EOS, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

namespace c = fhp::constants;

// ------------------------------------------------------------ Fermi-Dirac

TEST(FermiDirac, NonDegenerateLimitIsBoltzmann) {
  // F_k(eta << 0, 0) -> e^eta Gamma(k+1).
  for (const double k : {0.5, 1.5, 2.5}) {
    const double f = fd_integral(k, -25.0, 0.0);
    const double expected = std::exp(-25.0) * std::tgamma(k + 1.0);
    EXPECT_NEAR(f / expected, 1.0, 3e-6) << "k=" << k;
  }
}

TEST(FermiDirac, DegenerateLimitIsPowerLaw) {
  // F_k(eta >> 1, 0) -> eta^{k+1}/(k+1) (+ Sommerfeld corrections ~ 1/eta^2).
  for (const double k : {0.5, 1.5, 2.5}) {
    const double eta = 2000.0;
    const double f = fd_integral(k, eta, 0.0);
    const double leading = std::pow(eta, k + 1.0) / (k + 1.0);
    EXPECT_NEAR(f / leading, 1.0, 1e-4) << "k=" << k;
  }
}

TEST(FermiDirac, EtaDerivativeMatchesFiniteDifference) {
  for (const double eta : {-5.0, 0.0, 3.0, 50.0}) {
    const double h = 1e-5 * std::max(1.0, std::fabs(eta));
    const double fd_numeric = (fd_integral(1.5, eta + h, 0.1) -
                               fd_integral(1.5, eta - h, 0.1)) /
                              (2 * h);
    const double fd_analytic = fd_integral_deta(1.5, eta, 0.1);
    EXPECT_NEAR(fd_analytic / fd_numeric, 1.0, 1e-6) << "eta=" << eta;
  }
}

TEST(FermiDirac, BetaDerivativeMatchesFiniteDifference) {
  for (const double beta : {0.01, 0.5, 10.0}) {
    const double h = 1e-6 * beta;
    const double fd_numeric =
        (fd_integral(1.5, 5.0, beta + h) - fd_integral(1.5, 5.0, beta - h)) /
        (2 * h);
    const double fd_analytic = fd_integral_dbeta(1.5, 5.0, beta);
    EXPECT_NEAR(fd_analytic / fd_numeric, 1.0, 1e-5) << "beta=" << beta;
  }
}

TEST(FermiDirac, FusedEvaluationMatchesScalar) {
  for (const double eta : {-10.0, 1.0, 100.0}) {
    for (const double beta : {0.0, 0.02, 2.0}) {
      const FdSet all = fd_all(eta, beta);
      EXPECT_NEAR(all.f12 / fd_integral(0.5, eta, beta), 1.0, 1e-12);
      EXPECT_NEAR(all.f32 / fd_integral(1.5, eta, beta), 1.0, 1e-12);
      EXPECT_NEAR(all.f52 / fd_integral(2.5, eta, beta), 1.0, 1e-12);
      EXPECT_NEAR(all.f32e / fd_integral_deta(1.5, eta, beta), 1.0, 1e-12);
      if (beta > 0.0) {
        EXPECT_NEAR(all.f52b / fd_integral_dbeta(2.5, eta, beta), 1.0,
                    1e-12);
      }
    }
  }
}

TEST(FermiDirac, RejectsBadArguments) {
  EXPECT_THROW(fd_integral(-1.5, 0.0, 0.0), ConfigError);
  EXPECT_THROW(fd_integral(0.5, 0.0, -1.0), ConfigError);
}

// -------------------------------------------------------------- gamma EOS

TEST(GammaEosTest, IdealGasLawInDensTemp) {
  GammaEos eos(1.4);
  State s;
  s.abar = 1.0;
  s.rho = 1.0e-3;
  s.temp = 300.0;
  eos.eval_one(Mode::kDensTemp, s);
  const double expected_p = s.rho * c::kAvogadro * c::kBoltzmann * 300.0;
  EXPECT_NEAR(s.pres / expected_p, 1.0, 1e-12);
  EXPECT_NEAR(s.ener, s.pres / (0.4 * s.rho), 1e-3);
  EXPECT_DOUBLE_EQ(s.gamma1, 1.4);
  EXPECT_NEAR(s.cs, std::sqrt(1.4 * s.pres / s.rho), 1e-6);
}

TEST(GammaEosTest, AllModesAreConsistent) {
  GammaEos eos(5.0 / 3.0);
  State a;
  a.abar = 4.0;
  a.rho = 0.01;
  a.temp = 1.0e6;
  eos.eval_one(Mode::kDensTemp, a);

  State b = a;
  b.temp = 0.0;
  eos.eval_one(Mode::kDensEner, b);
  EXPECT_NEAR(b.temp / a.temp, 1.0, 1e-12);

  State d = a;
  d.temp = 0.0;
  d.ener = 0.0;
  eos.eval_one(Mode::kDensPres, d);
  EXPECT_NEAR(d.ener / a.ener, 1.0, 1e-12);
}

TEST(GammaEosTest, RejectsUnphysicalInputs) {
  GammaEos eos(1.4);
  State s;
  s.rho = -1.0;
  s.temp = 100.0;
  EXPECT_THROW(eos.eval_one(Mode::kDensTemp, s), NumericsError);
  s.rho = 1.0;
  s.temp = -5.0;
  EXPECT_THROW(eos.eval_one(Mode::kDensTemp, s), NumericsError);
  EXPECT_THROW(GammaEos(1.0), ConfigError);
}

// --------------------------------------------------------- Helmholtz (direct)

TEST(HelmholtzEosTest, IdealLimitAtLowDensity) {
  // Hot, dilute hydrogen plasma: electrons behave classically; total
  // pressure ~ ions + electrons (2 n k T) + radiation.
  HelmholtzEos eos;
  State s;
  s.abar = 1.0;
  s.zbar = 1.0;
  s.rho = 1.0e-4;
  s.temp = 1.0e6;
  eos.eval_one(Mode::kDensTemp, s);
  const double n = s.rho * c::kAvogadro;
  const double p_ideal = 2.0 * n * c::kBoltzmann * s.temp;
  const double p_rad = c::kRadiationConstant * std::pow(s.temp, 4) / 3.0;
  EXPECT_NEAR(s.pres / (p_ideal + p_rad), 1.0, 1e-3);
  EXPECT_LT(s.eta, -5.0);  // non-degenerate
}

TEST(HelmholtzEosTest, DegenerateNonRelativisticScaling) {
  // Cold dense gas: P_e ~ K (rho Ye)^{5/3} below the relativistic bend.
  HelmholtzEos eos;
  auto pressure = [&eos](double rho) {
    State s;
    s.abar = 12.0;
    s.zbar = 6.0;
    s.rho = rho;
    s.temp = 1.0e5;  // kT << E_F
    eos.eval_one(Mode::kDensTemp, s);
    return s.pres;
  };
  const double slope = std::log(pressure(2.0e4) / pressure(1.0e4)) /
                       std::log(2.0);
  EXPECT_NEAR(slope, 5.0 / 3.0, 0.03);
}

TEST(HelmholtzEosTest, UltraRelativisticScaling) {
  // At WD-core densities the exponent bends toward 4/3.
  HelmholtzEos eos;
  auto pressure = [&eos](double rho) {
    State s;
    s.abar = 12.0;
    s.zbar = 6.0;
    s.rho = rho;
    s.temp = 1.0e6;
    eos.eval_one(Mode::kDensTemp, s);
    return s.pres;
  };
  const double slope = std::log(pressure(4.0e9) / pressure(2.0e9)) /
                       std::log(2.0);
  EXPECT_NEAR(slope, 4.0 / 3.0, 0.03);
}

TEST(HelmholtzEosTest, DerivativesMatchFiniteDifferences) {
  HelmholtzEos eos;
  State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 2.0e9;
  s.temp = 1.0e8;
  eos.eval_one(Mode::kDensTemp, s);

  State lo = s, hi = s;
  lo.temp = s.temp * 0.999;
  hi.temp = s.temp * 1.001;
  eos.eval_one(Mode::kDensTemp, lo);
  eos.eval_one(Mode::kDensTemp, hi);
  EXPECT_NEAR(s.dpdt / ((hi.pres - lo.pres) / (hi.temp - lo.temp)), 1.0,
              1e-5);
  EXPECT_NEAR(s.cv / ((hi.ener - lo.ener) / (hi.temp - lo.temp)), 1.0, 1e-5);

  lo = s;
  hi = s;
  lo.rho = s.rho * 0.999;
  hi.rho = s.rho * 1.001;
  lo.temp = hi.temp = 1.0e8;
  eos.eval_one(Mode::kDensTemp, lo);
  eos.eval_one(Mode::kDensTemp, hi);
  EXPECT_NEAR(s.dpdr / ((hi.pres - lo.pres) / (hi.rho - lo.rho)), 1.0, 1e-4);
}

TEST(HelmholtzEosTest, EnergyInversionRoundTrip) {
  HelmholtzEos eos;
  for (const double rho : {1.0e2, 1.0e6, 2.0e9}) {
    for (const double temp : {1.0e6, 1.0e8, 3.0e9}) {
      State s;
      s.abar = 13.714;
      s.zbar = 6.857;
      s.rho = rho;
      s.temp = temp;
      eos.eval_one(Mode::kDensTemp, s);
      State inv = s;
      inv.temp = temp * 3.0;  // poor initial guess on purpose
      eos.eval_one(Mode::kDensEner, inv);
      // dE/dT collapses under strong degeneracy, so the recovered T is
      // ill-conditioned there; 1e-5 relative is the honest bound.
      EXPECT_NEAR(inv.temp / temp, 1.0, 1e-5)
          << "rho=" << rho << " T=" << temp;
    }
  }
}

TEST(HelmholtzEosTest, PressureInversionRoundTrip) {
  HelmholtzEos eos;
  State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 1.0e7;
  s.temp = 5.0e8;
  eos.eval_one(Mode::kDensTemp, s);
  State inv = s;
  inv.temp = 1.0e7;
  eos.eval_one(Mode::kDensPres, inv);
  EXPECT_NEAR(inv.temp / 5.0e8, 1.0, 1e-8);
}

TEST(HelmholtzEosTest, EtaSolveSatisfiesChargeNeutrality) {
  HelmholtzEos eos;
  const double rho = 1.0e8, temp = 5.0e9, ye = 0.5;
  const double eta = eos.solve_eta(rho, temp, ye);
  // eta is finite and physically ordered: denser => more degenerate.
  const double eta2 = eos.solve_eta(10.0 * rho, temp, ye);
  EXPECT_GT(eta2, eta);
  const double eta3 = eos.solve_eta(rho, 2.0 * temp, ye);
  EXPECT_LT(eta3, eta);  // hotter => less degenerate
}

TEST(HelmholtzEosTest, PairProductionRaisesEnergyAtHighT) {
  // Above ~6e9 K electron-positron pairs appear: energy grows faster
  // than the ion+radiation-only expectation.
  HelmholtzEos eos;
  State cold, hot;
  cold.abar = hot.abar = 12.0;
  cold.zbar = hot.zbar = 6.0;
  cold.rho = hot.rho = 1.0e4;
  cold.temp = 2.0e9;
  hot.temp = 2.0e10;
  eos.eval_one(Mode::kDensTemp, cold);
  eos.eval_one(Mode::kDensTemp, hot);
  EXPECT_GT(hot.eta, -2.0 / (c::kBoltzmann * hot.temp /
                             c::kElectronRestEnergy));  // pairs regime
  EXPECT_GT(hot.ener, cold.ener);
}

TEST(HelmholtzEosTest, OutOfRangeInputsThrow) {
  HelmholtzEos eos;
  State s;
  s.rho = 1.0e-20;
  s.temp = 1.0e8;
  EXPECT_THROW(eos.eval_one(Mode::kDensTemp, s), NumericsError);
  s.rho = 1.0;
  s.temp = 1.0;
  EXPECT_THROW(eos.eval_one(Mode::kDensTemp, s), NumericsError);
}

TEST(HelmholtzEosTest, Gamma1BetweenLimits) {
  HelmholtzEos eos;
  State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 2.0e9;
  s.temp = 1.0e8;
  eos.eval_one(Mode::kDensTemp, s);
  EXPECT_GT(s.gamma1, 4.0 / 3.0 - 0.01);
  EXPECT_LT(s.gamma1, 5.0 / 3.0 + 0.01);
  EXPECT_GT(s.cp, s.cv);
  EXPECT_GT(s.cs, 0.0);
  EXPECT_LT(s.cs, c::kSpeedOfLight);
}

// ---------------------------------------------------------------- table

/// Small shared table for the table tests (built once).
const HelmTable& test_table() {
  static HelmTable table = HelmTable::build_or_load(
      HelmTableSpec{-4.0, 10.0, 141, 5.0, 10.0, 51}, mem::HugePolicy::kNone,
      proc().page_pool(), "helm_table_test.bin");
  return table;
}

TEST(HelmTableTest, InterpolationMatchesDirectEvaluation) {
  const HelmholtzEos direct;
  const HelmTable& table = test_table();
  // Off-node points across the WD regime.
  for (const double rho_ye : {3.3e2, 1.7e5, 9.1e8}) {
    for (const double temp : {2.3e6, 7.7e7, 4.1e8}) {
      const auto ref = direct.eval_ep(rho_ye, temp);
      const auto interp = table.interpolate(rho_ye, temp);
      EXPECT_NEAR(interp.p / ref.p, 1.0, 1e-3)
          << "rhoYe=" << rho_ye << " T=" << temp;
      EXPECT_NEAR(interp.e / ref.e, 1.0, 1e-3);
      EXPECT_NEAR(interp.p_d / ref.p_d, 1.0, 2e-2);
      // dP/dT can pass through zero under degeneracy; compare it only
      // where it carries a meaningful fraction of P/T.
      if (std::fabs(ref.p_t) * temp > 0.05 * ref.p) {
        EXPECT_NEAR(interp.p_t / ref.p_t, 1.0, 2e-2)
            << "rhoYe=" << rho_ye << " T=" << temp;
      }
    }
  }
}

TEST(HelmTableTest, ExactOnNodes) {
  const HelmholtzEos direct;
  const HelmTable& table = test_table();
  const auto& spec = test_table().spec();
  // A node point reproduces the stored value to rounding.
  const double rho_ye = std::pow(10.0, spec.log_rho_min +
                                           10 * (spec.log_rho_max -
                                                 spec.log_rho_min) /
                                               (spec.nrho - 1));
  const double temp = std::pow(10.0, spec.log_temp_min +
                                         7 * (spec.log_temp_max -
                                              spec.log_temp_min) /
                                             (spec.ntemp - 1));
  const auto ref = direct.eval_ep(rho_ye, temp);
  const auto interp = table.interpolate(rho_ye, temp);
  EXPECT_NEAR(interp.p / ref.p, 1.0, 1e-10);
  EXPECT_NEAR(interp.e / ref.e, 1.0, 1e-10);
}

TEST(HelmTableTest, OutOfRangeThrows) {
  const HelmTable& table = test_table();
  EXPECT_THROW(table.interpolate(1.0e-30, 1.0e8), NumericsError);
  EXPECT_THROW(table.interpolate(1.0e5, 1.0e30), NumericsError);
  EXPECT_THROW(table.interpolate(-1.0, 1.0e8), NumericsError);
}

TEST(HelmTableTest, SaveLoadRoundTrip) {
  const HelmTableSpec spec{-2.0, 8.0, 21, 6.0, 9.0, 11};
  HelmTable built =
      HelmTable::build(spec, mem::HugePolicy::kNone, proc().page_pool());
  built.save("helm_roundtrip.bin");
  auto loaded = HelmTable::load(spec, mem::HugePolicy::kNone,
                                proc().page_pool(), "helm_roundtrip.bin");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->node(HelmTable::kP, 10, 5),
            built.node(HelmTable::kP, 10, 5));
  // A different spec refuses the file.
  HelmTableSpec other = spec;
  other.nrho = 22;
  EXPECT_FALSE(
      HelmTable::load(other, mem::HugePolicy::kNone, proc().page_pool(),
                      "helm_roundtrip.bin")
          .has_value());
}

TEST(HelmTableTest, TraceTouchesTableBytes) {
  const HelmTable& table = test_table();
  tlb::Machine machine;
  tlb::Tracer tracer(&machine);
  table.trace_interpolate(tracer, 1.0e6, 1.0e8, true);
  // 16 planes x 2 rows of 16 bytes: 32 touches (single-line each).
  EXPECT_EQ(machine.quantum().accesses, 32u);
  EXPECT_GT(machine.quantum().vector_ops, 0u);
}

TEST(HelmTableEosTest, MatchesDirectEosThroughAssembly) {
  auto table = std::make_shared<HelmTable>(HelmTable::build_or_load(
      HelmTableSpec{-4.0, 10.0, 141, 5.0, 10.0, 51}, mem::HugePolicy::kNone,
      proc().page_pool(), "helm_table_test.bin"));
  const HelmTableEos tabulated(table);
  const HelmholtzEos direct;

  State a, b;
  a.abar = b.abar = 13.714;
  a.zbar = b.zbar = 6.857;
  a.rho = b.rho = 3.0e7;
  a.temp = b.temp = 2.0e8;
  direct.eval_dens_temp(a);
  tabulated.eval_dens_temp(b);
  EXPECT_NEAR(b.pres / a.pres, 1.0, 1e-3);
  EXPECT_NEAR(b.ener / a.ener, 1.0, 1e-3);
  EXPECT_NEAR(b.gamma1 / a.gamma1, 1.0, 1e-2);
  EXPECT_NEAR(b.cs / a.cs, 1.0, 1e-2);
}

TEST(HelmTableEosTest, InversionRoundTripThroughTable) {
  auto table = std::make_shared<HelmTable>(HelmTable::build_or_load(
      HelmTableSpec{-4.0, 10.0, 141, 5.0, 10.0, 51}, mem::HugePolicy::kNone,
      proc().page_pool(), "helm_table_test.bin"));
  const HelmTableEos eos(table);
  State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 1.0e8;
  s.temp = 7.0e8;
  eos.eval_one(Mode::kDensTemp, s);
  State inv = s;
  inv.temp = 1.0e7;
  eos.eval_one(Mode::kDensEner, inv);
  EXPECT_NEAR(inv.temp / 7.0e8, 1.0, 1e-8);
}

TEST(HelmTableEosTest, TemperatureFloorClampsInsteadOfThrowing) {
  auto table = std::make_shared<HelmTable>(HelmTable::build_or_load(
      HelmTableSpec{-4.0, 10.0, 141, 5.0, 10.0, 51}, mem::HugePolicy::kNone,
      proc().page_pool(), "helm_table_test.bin"));
  const HelmTableEos eos(table);
  State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 1.0e2;
  s.ener = 1.0e-10;  // far below e(T_min): must clamp, not diverge
  s.temp = 1.0e8;
  eos.eval_one(Mode::kDensEner, s);
  EXPECT_NEAR(s.temp, 1.0e5, 1.0);  // pinned at the table floor
  EXPECT_GT(s.ener, 1.0e-10);       // boundary-state energy returned
}

TEST(HelmTableTest, SpecValidation) {
  EXPECT_THROW(HelmTable::build(HelmTableSpec{0, 1, 2, 0, 1, 8},
                                mem::HugePolicy::kNone, proc().page_pool()),
               ConfigError);
  EXPECT_THROW(HelmTable::build(HelmTableSpec{5, 1, 8, 0, 1, 8},
                                mem::HugePolicy::kNone, proc().page_pool()),
               ConfigError);
}

}  // namespace
}  // namespace fhp::eos
