/// \file test_obs.cpp
/// \brief Unit tests for the fhp::obs observability subsystem.
///
/// Everything here is deterministic by construction: span clocks are
/// injected fake counters, sampler procfs paths point at the checked-in
/// fixture trees (tests/fixtures/procfs), and the background-thread
/// tests assert only thread-safe invariants. The one global side effect
/// is the operator-new override at the bottom of this file, which backs
/// the disabled-path zero-allocation guard.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "par/parallel.hpp"
#include "perf/perf_context.hpp"
#include "support/error.hpp"

// Allocation counter fed by the global operator-new override below.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

namespace fhp::obs {
namespace {

std::string fixture_root(const char* flavor) {
  return std::string(FHP_TEST_FIXTURE_DIR) + "/procfs/" + flavor;
}

/// A deterministic clock: starts at 1000 ns, advances 1 µs per reading.
class FakeClock {
 public:
  [[nodiscard]] std::function<std::uint64_t()> fn() {
    return [this] { return next_.fetch_add(1000, std::memory_order_relaxed); };
  }

 private:
  std::atomic<std::uint64_t> next_{1000};
};

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, BucketMapping) {
  Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.bucket_count(0), 1u);  // v == 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // v == 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // v in [2, 4)
  EXPECT_EQ(h.bucket_count(3), 1u);  // v in [4, 8)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(10), 512u);
}

TEST(HistogramTest, QuantilesAreMonotonicAndBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v * 17);
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(h.quantile(0.0), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  // Log2 buckets are good to a factor of 2 around the true quantile.
  EXPECT_GT(p50, 0.25 * 500 * 17);
  EXPECT_LT(p50, 4.0 * 500 * 17);
  EXPECT_FALSE(h.summary().empty());
}

TEST(HistogramTest, EmptyHistogramIsWellDefined) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, MergeEqualsBulkAdd) {
  // Merging per-lane histograms must be exact: bucket-wise addition is
  // order-independent, so the merged result matches the single-histogram
  // scan bit for bit.
  Histogram lane0, lane1, all;
  for (std::uint64_t v = 1; v < 500; ++v) {
    const std::uint64_t sample = v * v + 3;
    ((v % 2 == 0) ? lane0 : lane1).add(sample);
    all.add(sample);
  }
  Histogram merged = lane0;
  merged.merge(lane1);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.sum(), all.sum());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(merged.quantile(0.9), all.quantile(0.9));
}

// ----------------------------------------------------------------- ring

TEST(SpanRingTest, OverflowDropsOldestAndNeverBlocks) {
  SpanRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push({"s", i, i + 1, 0});
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  const auto records = ring.in_order();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-dropped: the survivors are the last four, oldest first.
  EXPECT_EQ(records.front().begin_ns, 6u);
  EXPECT_EQ(records.back().begin_ns, 9u);
}

TEST(SpanRingTest, PartialFillKeepsInsertionOrder) {
  SpanRing ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) ring.push({"s", i, i + 1, 0});
  EXPECT_EQ(ring.dropped(), 0u);
  const auto records = ring.in_order();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].begin_ns, 0u);
  EXPECT_EQ(records[2].begin_ns, 2u);
}

// ------------------------------------------------------------- telemetry

TEST(TelemetryTest, SpanNestingDepthsAreRecorded) {
  FakeClock clock;
  TelemetryOptions opts;
  opts.lanes = 1;
  opts.clock = clock.fn();
  Telemetry telemetry(opts);
  telemetry.install();
  {
    FHP_TRACE_SPAN("outer");
    {
      FHP_TRACE_SPAN("inner");
    }
  }
  telemetry.uninstall();
  const auto records = telemetry.ring(0).in_order();
  ASSERT_EQ(records.size(), 2u);
  // The inner span closes (and records) first.
  EXPECT_STREQ(records[0].name, "inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_STREQ(records[1].name, "outer");
  EXPECT_EQ(records[1].depth, 0u);
  // Nesting in time: outer contains inner on the fake clock.
  EXPECT_LT(records[1].begin_ns, records[0].begin_ns);
  EXPECT_GT(records[1].end_ns, records[0].end_ns);
}

TEST(TelemetryTest, SecondInstallThrows) {
  Telemetry a, b;
  a.install();
  EXPECT_THROW(b.install(), ConfigError);
  a.uninstall();
  b.install();  // now free
  b.uninstall();
}

TEST(TelemetryTest, OutOfRangeLaneIsCountedNotStored) {
  TelemetryOptions opts;
  opts.lanes = 1;
  Telemetry telemetry(opts);
  telemetry.record(0, {"ok", 1, 2, 0});
  telemetry.record(7, {"lost", 1, 2, 0});
  EXPECT_EQ(telemetry.ring(0).pushed(), 1u);
  EXPECT_EQ(telemetry.total_spans(), 2u);
  EXPECT_EQ(telemetry.dropped_spans(), 1u);
}

TEST(TelemetryTest, CrossLaneHistogramMerge) {
  TelemetryOptions opts;
  opts.lanes = 2;
  Telemetry telemetry(opts);
  // Lane 0: three 100 ns spans; lane 1: two 100 ns and one 7000 ns span,
  // all under one name, plus a differently named span.
  for (int i = 0; i < 3; ++i) telemetry.record(0, {"kernel", 0, 100, 0});
  for (int i = 0; i < 2; ++i) telemetry.record(1, {"kernel", 0, 100, 0});
  telemetry.record(1, {"kernel", 0, 7000, 0});
  telemetry.record(1, {"other", 0, 50, 0});
  const auto histograms = telemetry.latency_histograms();
  ASSERT_EQ(histograms.size(), 2u);
  const Histogram& kernel = histograms.at("kernel");
  EXPECT_EQ(kernel.count(), 6u);
  EXPECT_EQ(kernel.min(), 100u);
  EXPECT_EQ(kernel.max(), 7000u);
  EXPECT_EQ(kernel.sum(), 5u * 100u + 7000u);
  EXPECT_EQ(histograms.at("other").count(), 1u);
}

TEST(TelemetryTest, SpansFromParallelLanesLandInTheirRings) {
  const int previous_threads = par::threads();
  par::set_threads(2);
  FakeClock clock;
  TelemetryOptions opts;
  opts.clock = clock.fn();  // lanes = 0 -> par::threads() == 2
  Telemetry telemetry(opts);
  ASSERT_EQ(telemetry.lanes(), 2);
  telemetry.install();
  par::parallel_for(64, [](int /*lane*/, std::size_t /*i*/) {
    FHP_TRACE_SPAN("par.item");
  });
  telemetry.uninstall();
  par::set_threads(previous_threads);
  // Static chunking: each of the two lanes ran 32 items.
  EXPECT_EQ(telemetry.ring(0).pushed(), 32u);
  EXPECT_EQ(telemetry.ring(1).pushed(), 32u);
  EXPECT_EQ(telemetry.total_spans(), 64u);
  EXPECT_EQ(telemetry.latency_histograms().at("par.item").count(), 64u);
}

TEST(TelemetryTest, StepMarksCarryTheFakeClock) {
  FakeClock clock;
  TelemetryOptions opts;
  opts.lanes = 1;
  opts.clock = clock.fn();
  Telemetry telemetry(opts);
  telemetry.mark_step(1, 0.25, 0.25);
  telemetry.mark_step(2, 0.50, 0.25);
  ASSERT_EQ(telemetry.step_marks().size(), 2u);
  EXPECT_EQ(telemetry.step_marks()[0].t_ns, 1000u);
  EXPECT_EQ(telemetry.step_marks()[1].t_ns, 2000u);
  EXPECT_EQ(telemetry.step_marks()[1].step, 2);
  EXPECT_EQ(telemetry.step_marks()[1].sim_time, 0.50);
}

// ---------------------------------------------------- disabled-path guard

TEST(TelemetryDisabledPath, RecordsNothingAndAllocatesNothing) {
  // The acceptance contract: with no Telemetry installed, FHP_TRACE_SPAN
  // is one atomic load + branch — no clock read, no allocation. The
  // operator-new override at the bottom of this file counts every
  // allocation in the process; the loop must add zero.
  ASSERT_EQ(Telemetry::current(), nullptr);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    FHP_TRACE_SPAN("disabled.hot_path");
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// ----------------------------------------------------------------- sampler

TEST(SamplerTest, FixtureCaptureIsDeterministic) {
  auto make = [](FakeClock& clock) {
    SamplerOptions opts = SamplerOptions::with_procfs_root(
        fixture_root("kernel-6.6"));
    opts.clock = clock.fn();
    return opts;
  };
  FakeClock c1, c2;
  Sampler a(make(c1)), b(make(c2));
  for (int i = 0; i < 3; ++i) {
    a.sample_once();
    b.sample_once();
  }
  std::ostringstream csv_a, csv_b;
  a.write_csv(csv_a);
  b.write_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());  // bit-stable across runs

  const auto samples = a.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].t_ns, 1000u);
  EXPECT_EQ(samples[1].t_ns, 2000u);
  EXPECT_EQ(samples[0].meminfo.anon_huge_pages, 3145728ull << 10);
  EXPECT_EQ(samples[0].smaps.file_pmd_mapped, 10240ull << 10);
  EXPECT_EQ(samples[0].vmstat.thp_fault_alloc, 44241u);
  EXPECT_EQ(a.errors(), 0u);
  EXPECT_FALSE(samples[0].have_counters);  // no PerfContext wired
}

TEST(SamplerTest, MissingProcFileIsCountedNotThrown) {
  // kernel-3.10 has no smaps_rollup (the file arrived in 4.14): each
  // sample records one capture error, and the run continues.
  FakeClock clock;
  SamplerOptions opts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-3.10"));
  opts.clock = clock.fn();
  Sampler sampler(opts);
  sampler.sample_once();
  sampler.sample_once();
  EXPECT_EQ(sampler.errors(), 2u);
  EXPECT_EQ(sampler.taken(), 2u);
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_TRUE(samples[0].meminfo.anon_huge_pages.present());
  EXPECT_FALSE(samples[0].smaps.rss.present());  // the failed capture
  EXPECT_FALSE(samples[0].vmstat.thp_split_page.present());  // "thp_split"
}

TEST(SamplerTest, RingOverflowDropsOldest) {
  FakeClock clock;
  SamplerOptions opts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-6.6"));
  opts.clock = clock.fn();
  opts.ring_capacity = 4;
  Sampler sampler(opts);
  for (int i = 0; i < 7; ++i) sampler.sample_once();
  EXPECT_EQ(sampler.taken(), 7u);
  EXPECT_EQ(sampler.dropped(), 3u);
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().t_ns, 4000u);  // samples 1..3 were dropped
  EXPECT_EQ(samples.back().t_ns, 7000u);
}

TEST(SamplerTest, PublishedPerfCountersFlowIntoSamples) {
  perf::PerfContext perf;
  perf.add(perf::Event::kCycles, 12345);
  perf.publish();
  FakeClock clock;
  SamplerOptions opts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-6.6"));
  opts.clock = clock.fn();
  opts.perf = &perf;
  Sampler sampler(opts);
  sampler.sample_once();
  perf.add(perf::Event::kCycles, 55);
  // Not yet published: the sampler must still see the old snapshot.
  sampler.sample_once();
  perf.publish();
  sampler.sample_once();
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_TRUE(samples[0].have_counters);
  EXPECT_EQ(samples[0].counters[perf::Event::kCycles], 12345u);
  EXPECT_EQ(samples[0].counter_seq, 1u);
  EXPECT_EQ(samples[1].counters[perf::Event::kCycles], 12345u);
  EXPECT_EQ(samples[2].counters[perf::Event::kCycles], 12400u);
  EXPECT_EQ(samples[2].counter_seq, 2u);
}

TEST(SamplerTest, CsvHasHeaderAndEmptyCellsForAbsentFields) {
  FakeClock clock;
  SamplerOptions opts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-3.10"));
  opts.clock = clock.fn();
  Sampler sampler(opts);
  sampler.sample_once();
  std::ostringstream csv;
  sampler.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.compare(0, 5, "t_ns,"), 0);
  // 3.10 reports no MemAvailable: the cell is empty, not "0".
  EXPECT_NE(text.find(",,"), std::string::npos);
}

TEST(SamplerTest, BackgroundThreadStartsSamplesAndStops) {
  SamplerOptions opts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-6.6"));
  opts.cadence = std::chrono::milliseconds(1);
  Sampler sampler(opts);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  // The thread samples immediately on start; wait for proof of life.
  while (sampler.taken() == 0) std::this_thread::yield();
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const auto n = sampler.taken();
  EXPECT_GE(n, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.taken(), n);  // really stopped
}

TEST(SamplerTest, SamplerOverParallelSweepIsRaceFree) {
  // The tsan workload: a background sampler reading published counters
  // at 1 ms cadence while parallel lanes hammer their shards and record
  // spans. Any read of unsynchronized state here is a tsan report.
  const int previous_threads = par::threads();
  par::set_threads(2);
  perf::PerfContext perf;
  Telemetry telemetry;  // lanes = par::threads()
  telemetry.install();
  SamplerOptions opts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-6.6"));
  opts.cadence = std::chrono::milliseconds(1);
  opts.perf = &perf;
  Sampler sampler(opts);
  sampler.start();
  for (int step = 0; step < 20; ++step) {
    par::parallel_for(128, [&perf](int /*lane*/, std::size_t /*i*/) {
      FHP_TRACE_SPAN("load.item");
      perf.add(perf::Event::kCycles, 7);
    });
    perf.publish();  // step boundary: legal snapshot point
  }
  sampler.stop();
  telemetry.uninstall();
  par::set_threads(previous_threads);
  EXPECT_EQ(telemetry.total_spans(), 20u * 128u);
  EXPECT_EQ(perf.published().counters[perf::Event::kCycles],
            20u * 128u * 7u);
  EXPECT_GE(sampler.taken(), 1u);
}

// ---------------------------------------------------------------- timeline

TEST(TimelineTest, ExportContainsSpansMarksCountersAndHistograms) {
  FakeClock clock;
  TelemetryOptions topts;
  topts.lanes = 2;
  topts.clock = clock.fn();
  Telemetry telemetry(topts);
  telemetry.record(0, {"driver.step", 1000, 9000, 0});
  telemetry.record(0, {"hydro.sweep_x", 2000, 5000, 1});
  telemetry.record(1, {"hydro.sweep_block", 2500, 2600, 0});
  telemetry.mark_step(1, 0.125, 0.125);

  SamplerOptions sopts =
      SamplerOptions::with_procfs_root(fixture_root("kernel-6.6"));
  sopts.clock = clock.fn();
  Sampler sampler(sopts);
  sampler.sample_once();

  std::ostringstream os;
  write_timeline(os, telemetry, &sampler);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"driver.step\""), std::string::npos);
  EXPECT_NE(json.find("\"hydro.sweep_block\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // step mark
  EXPECT_NE(json.find("\"meminfo.AnonHugePages\""), std::string::npos);
  EXPECT_NE(json.find("\"vmstat.thp_fault_alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"flashhpSummary\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // ts values are normalized: the earliest event sits at 0.000 µs.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  // A deterministic export: same inputs, same bytes.
  std::ostringstream os2;
  write_timeline(os2, telemetry, &sampler);
  EXPECT_EQ(json, os2.str());
}

TEST(TimelineTest, CsvPathDerivation) {
  EXPECT_EQ(csv_path_for("timeline.json"), "timeline.csv");
  EXPECT_EQ(csv_path_for("out/trace.json"), "out/trace.csv");
  EXPECT_EQ(csv_path_for("trace"), "trace.csv");
}

TEST(TimelineTest, WriteFileThrowsOnUnwritablePath) {
  Telemetry telemetry;
  EXPECT_THROW(write_timeline_file("/nonexistent/dir/t.json", telemetry),
               SystemError);
}

// ------------------------------------------------------------- environment

TEST(ObsEnvironment, SampleMsParsesAndValidates) {
  ::unsetenv(kSampleMsEnvVar);
  EXPECT_EQ(sample_ms_from_environment(10), 10);
  ::setenv(kSampleMsEnvVar, "25", 1);
  EXPECT_EQ(sample_ms_from_environment(10), 25);
  ::setenv(kSampleMsEnvVar, "0", 1);
  EXPECT_THROW(static_cast<void>(sample_ms_from_environment(10)), ConfigError);
  ::setenv(kSampleMsEnvVar, "fast", 1);
  EXPECT_THROW(static_cast<void>(sample_ms_from_environment(10)), ConfigError);
  ::unsetenv(kSampleMsEnvVar);
}

TEST(ObsEnvironment, TimelinePathDefaultsToDisabled) {
  ::unsetenv(kTimelineEnvVar);
  EXPECT_TRUE(timeline_from_environment().empty());
  ::setenv(kTimelineEnvVar, "run.json", 1);
  EXPECT_EQ(timeline_from_environment(), "run.json");
  ::unsetenv(kTimelineEnvVar);
}

}  // namespace
}  // namespace fhp::obs

// ------------------------------------------------- allocation instrumentation
//
// Global operator-new override counting every allocation in the test
// binary; the disabled-path guard above asserts the count stays flat
// across 1e5 disabled span scopes.

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
