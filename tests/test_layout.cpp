/// \file test_layout.cpp
/// \brief BlockLayout policy tests: bijection, strides, trace runs, and
/// the cross-layout physics / checkpoint invariants.
///
/// The layout contract (layout.hpp): every layout is a bijection over
/// (v,i,j,k,b) with identical block footprint; kernels see identical
/// values through at(), so the physics end state is bit-identical across
/// layouts and thread counts; checkpoints are canonical, so any layout
/// restores any layout; and the tracer sees each layout's *real* address
/// stream — var_major's being byte-identical to the historical contiguous
/// zone-vector replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/config.hpp"
#include "mesh/layout.hpp"
#include "mesh/unk.hpp"
#include "par/parallel.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/checkpoint.hpp"
#include "sim/driver.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"
#include "support/runtime_params.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace fhp {
namespace {

// Process-default execution context for construction sites: these tests
// exercise data layouts, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

using mesh::BlockLayout;
using mesh::LayoutKind;
using mesh::MeshConfig;
using mesh::UnkContainer;

constexpr LayoutKind kAllLayouts[] = {LayoutKind::kVarMajor,
                                      LayoutKind::kZoneMajor,
                                      LayoutKind::kTiled};

// ----------------------------------------------------------- selection

TEST(LayoutSelect, ParseAndToStringRoundTrip) {
  for (const LayoutKind kind : kAllLayouts) {
    const auto parsed = mesh::parse_layout(mesh::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(mesh::parse_layout("  SoA "), LayoutKind::kZoneMajor);
  EXPECT_EQ(mesh::parse_layout("Fortran"), LayoutKind::kVarMajor);
  EXPECT_EQ(mesh::parse_layout("TILE"), LayoutKind::kTiled);
  EXPECT_FALSE(mesh::parse_layout("diagonal").has_value());
  EXPECT_FALSE(mesh::parse_layout("").has_value());
}

TEST(LayoutSelect, RuntimeParamPinsTheProcessDefault) {
  RuntimeParams rp;
  mesh::declare_runtime_params(rp);
  rp.set_from_string(mesh::kLayoutParamName, "zone_major");
  mesh::apply_runtime_params(rp);
  EXPECT_EQ(mesh::default_layout(), LayoutKind::kZoneMajor);
  rp.set_from_string(mesh::kLayoutParamName, "junk");
  EXPECT_THROW(mesh::apply_runtime_params(rp), ConfigError);
  // Restore the environment-resolved default for other tests.
  mesh::set_default_layout(mesh::layout_from_environment());
}

// ------------------------------------------------------------ the map

TEST(LayoutMap, EveryLayoutIsABijectionWithBlockLocality) {
  // Deliberately anisotropic extents: 12 (8|4-divisible), 10, 6.
  const int nvar = 7, ni = 12, nj = 10, nk = 6, nblocks = 3;
  for (const LayoutKind kind : kAllLayouts) {
    const BlockLayout layout(kind, nvar, ni, nj, nk);
    ASSERT_EQ(layout.block_stride(),
              static_cast<std::size_t>(nvar) * ni * nj * nk);
    const std::size_t total = layout.block_stride() * nblocks;
    std::vector<char> seen(total, 0);
    for (int b = 0; b < nblocks; ++b) {
      for (int k = 0; k < nk; ++k) {
        for (int j = 0; j < nj; ++j) {
          for (int i = 0; i < ni; ++i) {
            for (int v = 0; v < nvar; ++v) {
              const std::size_t off = layout.offset(v, i, j, k, b);
              ASSERT_LT(off, total) << mesh::to_string(kind);
              // Block locality: all of block b inside its stride window.
              ASSERT_GE(off, layout.block_stride() * b);
              ASSERT_LT(off, layout.block_stride() * (b + 1));
              ASSERT_EQ(seen[off], 0)
                  << mesh::to_string(kind) << " aliases offset " << off;
              seen[off] = 1;
            }
          }
        }
      }
    }
    // Bijection: every offset hit exactly once.
    for (std::size_t off = 0; off < total; ++off) {
      ASSERT_EQ(seen[off], 1) << mesh::to_string(kind) << " hole at " << off;
    }
  }
}

TEST(LayoutMap, VarMajorMatchesTheFortranFormula) {
  const int nvar = 15, ni = 24, nj = 24, nk = 24;
  const BlockLayout layout(LayoutKind::kVarMajor, nvar, ni, nj, nk);
  for (const auto [v, i, j, k, b] :
       {std::array<int, 5>{0, 0, 0, 0, 0}, {3, 5, 7, 11, 2},
        {14, 23, 23, 23, 4}}) {
    const std::size_t expected =
        static_cast<std::size_t>(v) +
        static_cast<std::size_t>(nvar) *
            (i + static_cast<std::size_t>(ni) *
                     (j + static_cast<std::size_t>(nj) *
                              (k + static_cast<std::size_t>(nk) *
                                       static_cast<std::size_t>(
                                           b))));  // fhp-lint: allow(layout-offset)
    EXPECT_EQ(layout.offset(v, i, j, k, b), expected);
  }
}

TEST(LayoutMap, AffineStridesMatchOffsetDeltas) {
  const int nvar = 6, ni = 12, nj = 10, nk = 6;
  for (const LayoutKind kind :
       {LayoutKind::kVarMajor, LayoutKind::kZoneMajor}) {
    const BlockLayout layout(kind, nvar, ni, nj, nk);
    ASSERT_TRUE(layout.affine());
    const std::size_t base = layout.offset(2, 3, 4, 2, 1);
    EXPECT_EQ(layout.offset(2, 4, 4, 2, 1) - base, layout.zone_stride(0));
    EXPECT_EQ(layout.offset(2, 3, 5, 2, 1) - base, layout.zone_stride(1));
    EXPECT_EQ(layout.offset(2, 3, 4, 3, 1) - base, layout.zone_stride(2));
    EXPECT_EQ(layout.offset(3, 3, 4, 2, 1) - base, layout.var_stride());
  }
  // The Fortran pencil strides the paper describes.
  const BlockLayout vm(LayoutKind::kVarMajor, nvar, ni, nj, nk);
  EXPECT_EQ(vm.var_stride(), 1u);
  EXPECT_EQ(vm.zone_stride(0), static_cast<std::size_t>(nvar));
  EXPECT_EQ(vm.zone_stride(1), static_cast<std::size_t>(nvar) * ni);
  // SoA: unit zone stride, plane-sized variable stride.
  const BlockLayout zm(LayoutKind::kZoneMajor, nvar, ni, nj, nk);
  EXPECT_EQ(zm.zone_stride(0), 1u);
  EXPECT_EQ(zm.var_stride(), static_cast<std::size_t>(ni) * nj * nk);
  EXPECT_FALSE(
      BlockLayout(LayoutKind::kTiled, nvar, ni, nj, nk).affine());
}

TEST(LayoutMap, TiledIsZoneMajorInsideOneTile) {
  const BlockLayout layout(LayoutKind::kTiled, 4, 16, 16, 8);
  // Within a tile the i-neighbour is one double away; crossing a tile
  // boundary jumps by a whole tile of every variable.
  const std::size_t base = layout.offset(1, 0, 0, 0, 0);
  EXPECT_EQ(layout.offset(1, 1, 0, 0, 0) - base, 1u);
  EXPECT_NE(layout.offset(1, 8, 0, 0, 0) - layout.offset(1, 7, 0, 0, 0), 1u);
}

TEST(LayoutMap, VarRunsCoverTheZoneVectorExactly) {
  const int nvar = 9;
  for (const LayoutKind kind : kAllLayouts) {
    const BlockLayout layout(kind, nvar, 12, 10, 6);
    std::vector<std::size_t> offsets;
    int runs = 0;
    layout.for_each_var_run(2, 5, 3, 4, 2, 1,
                            [&](std::size_t off, int len) {
                              ++runs;
                              for (int d = 0; d < len; ++d) {
                                offsets.push_back(off +
                                                  static_cast<std::size_t>(d));
                              }
                            });
    // The runs enumerate exactly offsets of v = 2..6 at that zone.
    ASSERT_EQ(offsets.size(), 5u) << mesh::to_string(kind);
    std::vector<std::size_t> expected;
    for (int v = 2; v < 7; ++v) {
      expected.push_back(layout.offset(v, 3, 4, 2, 1));
    }
    if (kind == LayoutKind::kVarMajor) {
      EXPECT_EQ(runs, 1);  // one contiguous touch — the seed's pattern
    }
    std::sort(offsets.begin(), offsets.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(offsets, expected) << mesh::to_string(kind);
  }
}

// ----------------------------------------------------- container views

MeshConfig small_3d() {
  MeshConfig c;
  c.ndim = 3;
  c.nxb = c.nyb = c.nzb = 16;
  c.nguard = 4;
  c.nscalars = 5;
  c.maxblocks = 8;
  return c;
}

TEST(LayoutViews, GatherScatterZoneRoundTrips) {
  const MeshConfig c = small_3d();
  for (const LayoutKind kind : kAllLayouts) {
    UnkContainer unk(c, mem::HugePolicy::kNone, kind, proc().page_pool());
    for (int v = 0; v < c.nvar(); ++v) {
      unk.at(v, 5, 6, 7, 2) = 100.0 * v + 0.25;
    }
    std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
    unk.gather_zone(0, c.nvar(), 5, 6, 7, 2, zone.data());
    for (int v = 0; v < c.nvar(); ++v) {
      ASSERT_EQ(zone[static_cast<std::size_t>(v)], 100.0 * v + 0.25);
    }
    for (auto& x : zone) x += 1.0;
    unk.scatter_zone(0, c.nvar(), 5, 6, 7, 2, zone.data());
    for (int v = 0; v < c.nvar(); ++v) {
      ASSERT_EQ(unk.at(v, 5, 6, 7, 2), 100.0 * v + 1.25);
    }
  }
}

TEST(LayoutViews, ZoneSpanIsInPlaceOnlyWhenContiguous) {
  const MeshConfig c = small_3d();
  std::vector<double> scratch(static_cast<std::size_t>(c.nscalars));
  for (const LayoutKind kind : kAllLayouts) {
    UnkContainer unk(c, mem::HugePolicy::kNone, kind, proc().page_pool());
    for (int s = 0; s < c.nscalars; ++s) {
      unk.at(mesh::var::kFirstScalar + s, 4, 4, 4, 1) = 7.0 + s;
    }
    const double* span = unk.zone_span(mesh::var::kFirstScalar, c.nscalars,
                                       4, 4, 4, 1, scratch.data());
    if (kind == LayoutKind::kVarMajor) {
      EXPECT_EQ(span, unk.ptr(mesh::var::kFirstScalar, 4, 4, 4, 1));
    } else {
      EXPECT_EQ(span, scratch.data());
    }
    for (int s = 0; s < c.nscalars; ++s) {
      ASSERT_EQ(span[s], 7.0 + s) << mesh::to_string(kind);
    }
  }
}

// ------------------------------------------------------------- tracing

TEST(LayoutTrace, VarMajorSweepMatchesContiguousZoneVectorReplay) {
  // The seed traced each zone as one contiguous nread*8-byte touch at
  // ptr(0, i, j, k, b). The layout-aware sweep must reproduce that
  // byte-for-byte under var_major — this is what keeps the golden
  // counters of the paper reproduction unchanged.
  const MeshConfig c = small_3d();
  const UnkContainer unk(c, mem::HugePolicy::kNone, LayoutKind::kVarMajor,
                         proc().page_pool());
  const int nread = c.nvar(), nwrite = 6;

  tlb::Machine through_layout;
  {
    tlb::Tracer tracer(&through_layout);
    unk.trace_sweep_axis(tracer, 1, 1, c.ilo(), c.ihi(), c.jlo(), c.jhi(),
                         c.klo(), c.khi(), nread, nwrite);
  }
  tlb::Machine by_hand;
  {
    tlb::Tracer tracer(&by_hand);
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        for (int j = c.jlo(); j < c.jhi(); ++j) {  // axis-1 pencil order
          const double* zone = unk.ptr(0, i, j, k, 1);
          tracer.touch(zone, sizeof(double) * static_cast<std::size_t>(nread),
                       false, unk.page_shift());
          tracer.touch(zone,
                       sizeof(double) * static_cast<std::size_t>(nwrite),
                       true, unk.page_shift());
        }
      }
    }
  }
  EXPECT_EQ(through_layout.quantum().accesses, by_hand.quantum().accesses);
  EXPECT_EQ(through_layout.quantum().l1_tlb_misses,
            by_hand.quantum().l1_tlb_misses);
  EXPECT_EQ(through_layout.quantum().walks, by_hand.quantum().walks);
  EXPECT_EQ(through_layout.quantum().l1d_misses,
            by_hand.quantum().l1d_misses);
}

TEST(LayoutTrace, ZoneMajorSingleVarSweepCutsModeled4kMisses) {
  // The A2 ablation's headline, guarded in CI: a single-variable sweep
  // (the Löhner-estimator access shape) under zone_major touches ~nvar
  // times fewer 4 KiB pages than under var_major.
  const MeshConfig c = small_3d();
  auto misses = [&](LayoutKind kind) {
    UnkContainer unk(c, mem::HugePolicy::kNone, kind, proc().page_pool());
    tlb::Machine machine;
    tlb::Tracer tracer(&machine);
    for (int b = 0; b < c.maxblocks; ++b) {
      unk.trace_sweep_var(tracer, b, mesh::var::kDens, 0, c.ni(), 0, c.nj(),
                          0, c.nk(), false, tlb::kShift4K);
    }
    return machine.quantum().l1_tlb_misses;
  };
  const std::uint64_t vm = misses(LayoutKind::kVarMajor);
  const std::uint64_t zm = misses(LayoutKind::kZoneMajor);
  ASSERT_GT(zm, 0u);
  EXPECT_GE(vm, 10 * zm) << "var_major=" << vm << " zone_major=" << zm;
}

// ------------------------------------------- cross-layout physics

/// Canonical end state of a run: every leaf interior zone vector in
/// Morton order, plus the final time — bit-comparable across layouts.
std::vector<double> canonical_state(const mesh::AmrMesh& m, double time) {
  const MeshConfig& c = m.config();
  std::vector<double> out;
  std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
  for (int b : m.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          m.unk().gather_zone(0, c.nvar(), i, j, k, b, zone.data());
          out.insert(out.end(), zone.begin(), zone.end());
        }
      }
    }
  }
  out.push_back(time);
  return out;
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << what;
}

std::vector<double> run_sedov(LayoutKind layout, int threads) {
  par::set_threads(threads);
  sim::SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 2;
  params.maxblocks = 128;
  sim::SedovSetup setup(params, mem::HugePolicy::kNone, proc(), layout);
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroSolver hydro(m, setup.eos());
  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = 12;
  opts.trace_sample = 0;
  opts.verbose = false;
  sim::Driver driver(m, hydro, timers, opts);
  driver.evolve();
  par::set_threads(1);
  return canonical_state(m, driver.sim_time());
}

TEST(LayoutPhysics, SedovEndStateBitIdenticalAcrossLayoutsAndThreads) {
  const std::vector<double> baseline =
      run_sedov(LayoutKind::kVarMajor, 1);
  ASSERT_GT(baseline.size(), 1u);
  for (const LayoutKind layout : kAllLayouts) {
    for (const int threads : {1, 2, 4}) {
      if (layout == LayoutKind::kVarMajor && threads == 1) continue;
      expect_bit_identical(
          baseline, run_sedov(layout, threads),
          (std::string(mesh::to_string(layout)) + " x " +
           std::to_string(threads) + " threads")
              .c_str());
    }
  }
}

std::vector<double> run_supernova(LayoutKind layout, int threads) {
  par::set_threads(threads);
  sim::SupernovaParams p;
  p.max_level = 3;
  p.maxblocks = 400;
  p.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  p.table_cache = "helm_table_layout.bin";
  sim::SupernovaSetup setup(p, mem::HugePolicy::kNone, proc(), layout);
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(m, setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());
  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = 4;
  opts.trace_sample = 0;
  opts.verbose = false;
  opts.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + sim::snvar::kPhi};
  sim::DriverUnits units;
  units.flame = &setup.flame();
  units.gravity = &setup.gravity();
  sim::Driver driver(m, hydro, timers, opts, units);
  driver.evolve();
  par::set_threads(1);
  return canonical_state(m, driver.sim_time());
}

TEST(LayoutPhysics, SupernovaEndStateBitIdenticalAcrossLayoutsAndThreads) {
  const std::vector<double> baseline =
      run_supernova(LayoutKind::kVarMajor, 1);
  ASSERT_GT(baseline.size(), 1u);
  for (const LayoutKind layout : kAllLayouts) {
    for (const int threads : {1, 2, 4}) {
      if (layout == LayoutKind::kVarMajor && threads == 1) continue;
      expect_bit_identical(
          baseline, run_supernova(layout, threads),
          (std::string(mesh::to_string(layout)) + " x " +
           std::to_string(threads) + " threads")
              .c_str());
    }
  }
}

// ------------------------------------------- cross-layout checkpoints

MeshConfig ckpt_config() {
  MeshConfig c;
  c.ndim = 2;
  c.nxb = 8;
  c.nyb = 8;
  c.nguard = 4;
  c.nscalars = 1;
  c.maxblocks = 128;
  c.max_level = 3;
  c.nroot = {2, 1, 1};
  return c;
}

void paint(mesh::AmrMesh& m) {
  const MeshConfig& c = m.config();
  for (int b : m.tree().leaves_morton()) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        for (int v = 0; v < c.nvar(); ++v) {
          m.unk().at(v, i, j, 0, b) =
              v + 10.0 * m.xcenter(b, i) + 100.0 * m.ycenter(b, j);
        }
      }
    }
  }
}

TEST(LayoutCheckpoint, AnyLayoutRestoresAnyLayoutExactly) {
  for (const LayoutKind writer : kAllLayouts) {
    mesh::AmrMesh original(ckpt_config(), mem::HugePolicy::kNone, writer,
                           proc().page_pool());
    original.refine_block(0);
    original.refine_block(original.tree().find(2, {0, 0, 0}));
    paint(original);
    original.fill_guardcells();
    sim::write_checkpoint("ckpt_layout.bin", original, {0.5, 7});

    for (const LayoutKind reader : kAllLayouts) {
      mesh::AmrMesh restored(ckpt_config(), mem::HugePolicy::kNone, reader,
                             proc().page_pool());
      const sim::CheckpointInfo info =
          sim::read_checkpoint("ckpt_layout.bin", restored);
      EXPECT_DOUBLE_EQ(info.sim_time, 0.5);
      EXPECT_EQ(info.step, 7);
      ASSERT_EQ(restored.tree().leaves_morton(),
                original.tree().leaves_morton());
      const MeshConfig& c = original.config();
      for (int b : original.tree().leaves_morton()) {
        for (int j = c.jlo(); j < c.jhi(); ++j) {
          for (int i = c.ilo(); i < c.ihi(); ++i) {
            for (int v = 0; v < c.nvar(); ++v) {
              ASSERT_EQ(restored.unk().at(v, i, j, 0, b),
                        original.unk().at(v, i, j, 0, b))
                  << mesh::to_string(writer) << " -> "
                  << mesh::to_string(reader);
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace fhp
