/// \file test_contracts.cpp
/// \brief The debug contract layer: FHP_PRECONDITION / FHP_ASSERT and
/// their use at the mem/mesh API boundaries.
///
/// Contract violations throw (fhp::ContractViolation / fhp::AssertionError)
/// instead of aborting, so these are exception-based "death tests".

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "mem/allocator.hpp"
#include "mem/arena.hpp"
#include "mem/mapped_region.hpp"
#include "mem/page_size.hpp"
#include "mesh/config.hpp"
#include "mesh/unk.hpp"
#include "rt/runtime.hpp"
#include "support/contracts.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace fhp {
namespace {

// Process-default execution context for construction sites: these tests
// exercise API boundary contracts, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

// ------------------------------------------------------------- the macros

TEST(Contracts, PreconditionPassesWhenTrue) {
  EXPECT_NO_THROW(FHP_PRECONDITION(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(FHP_ASSERT(true, "trivially fine"));
}

TEST(Contracts, PreconditionThrowsContractViolation) {
  EXPECT_THROW(FHP_PRECONDITION(false, "boom"), ContractViolation);
  // A ContractViolation is a ConfigError: the caller misused the API.
  EXPECT_THROW(FHP_PRECONDITION(false, "boom"), ConfigError);
}

TEST(Contracts, AssertThrowsAssertionError) {
  EXPECT_THROW(FHP_ASSERT(false, "boom"), AssertionError);
  // An AssertionError is an InternalError: flashhp itself is buggy.
  EXPECT_THROW(FHP_ASSERT(false, "boom"), InternalError);
}

TEST(Contracts, MessageCarriesExpressionAndContext) {
  try {
    FHP_PRECONDITION(2 + 2 == 5, "ingsoc arithmetic");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("ingsoc arithmetic"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
  }
}

#if FHP_CONTRACTS_ENABLED
TEST(Contracts, EnabledInThisBuild) {
  SUCCEED() << "contracts are on (FLASHHP_CONTRACTS=ON)";
}
#endif

// ----------------------------------------------- arena boundary contracts

TEST(ArenaContracts, ZeroByteAllocationViolatesContract) {
  mem::Arena arena(mem::HugePolicy::kNone, 4u << 20);
  EXPECT_THROW(arena.allocate(0), ContractViolation);
}

TEST(ArenaContracts, NonPowerOfTwoAlignmentViolatesContract) {
  mem::Arena arena(mem::HugePolicy::kNone, 4u << 20);
  EXPECT_THROW(arena.allocate(64, 48), ContractViolation);
  EXPECT_THROW(arena.allocate(64, 0), ContractViolation);
}

TEST(ArenaContracts, UndersizedChunkQuantumViolatesContract) {
  EXPECT_THROW(mem::Arena(mem::HugePolicy::kNone, 1024), ContractViolation);
}

// Satellite fix: count * sizeof(T) used to overflow size_t and silently
// allocate a tiny wrapped-around buffer. The check is always on.
TEST(ArenaContracts, AllocateArrayOverflowThrows) {
  mem::Arena arena(mem::HugePolicy::kNone, 4u << 20);
  const std::size_t huge_count =
      std::numeric_limits<std::size_t>::max() / sizeof(double) + 1;
  EXPECT_THROW(arena.allocate_array<double>(huge_count), ConfigError);
  // A benign count still works after the failed request.
  double* p = arena.allocate_array<double>(16);
  ASSERT_NE(p, nullptr);
  p[15] = 2.5;
  EXPECT_DOUBLE_EQ(p[15], 2.5);
}

TEST(ArenaContracts, HugeAllocatorOverflowThrows) {
  mem::Arena arena(mem::HugePolicy::kNone, 4u << 20);
  mem::HugeAllocator<double> alloc(arena);
  const std::size_t huge_count =
      std::numeric_limits<std::size_t>::max() / sizeof(double) + 1;
  EXPECT_THROW((void)alloc.allocate(huge_count), ConfigError);
}

TEST(ArenaContracts, HugeBufferOverflowThrows) {
  const std::size_t huge_count =
      std::numeric_limits<std::size_t>::max() / sizeof(double) + 1;
  EXPECT_THROW(mem::HugeBuffer<double>(huge_count, mem::HugePolicy::kNone,
                                       proc().page_pool()),
               ConfigError);
}

// --------------------------------------- mapped-region boundary contracts

TEST(MappedRegionContracts, ZeroBytesViolatesContract) {
  mem::MapRequest req;
  req.bytes = 0;
  EXPECT_THROW(mem::MappedRegion{req}, ContractViolation);
}

TEST(MappedRegionContracts, NonPowerOfTwoHugetlbPreferenceViolates) {
  mem::MapRequest req;
  req.bytes = 1u << 20;
  req.policy = mem::HugePolicy::kHugetlbfs;
  req.hugetlb_page = mem::kPage2M + 1;
  EXPECT_THROW(mem::MappedRegion{req}, ContractViolation);
}

TEST(MappedRegionContracts, ContainsTracksTheMappedRange) {
  mem::MapRequest req;
  req.bytes = 1u << 20;
  req.policy = mem::HugePolicy::kNone;
  mem::MappedRegion region(req);
  const auto* base = static_cast<const std::byte*>(region.data());
  EXPECT_TRUE(region.contains(base, 1));
  EXPECT_TRUE(region.contains(base, region.size()));
  EXPECT_TRUE(region.contains(base + region.size() - 1, 1));
  EXPECT_FALSE(region.contains(base + region.size(), 1));
  EXPECT_FALSE(region.contains(base, region.size() + 1));
  EXPECT_FALSE(region.contains(base - 1, 1));
  mem::MappedRegion moved(std::move(region));
  EXPECT_FALSE(region.contains(base, 1));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.contains(base, 1));
}

// ----------------------------------------------- mesh boundary contracts

class UnkSweepContracts : public ::testing::Test {
 protected:
  UnkSweepContracts()
      : machine_(),
        tracer_(&machine_),
        unk_(config(), mem::HugePolicy::kNone, proc().layout(),
             proc().page_pool()) {}

  static mesh::MeshConfig config() {
    mesh::MeshConfig c;
    c.ndim = 2;
    c.nxb = 8;
    c.nyb = 8;
    c.maxblocks = 4;
    c.validate();
    return c;
  }

  tlb::Machine machine_;
  tlb::Tracer tracer_;
  mesh::UnkContainer unk_;
};

TEST_F(UnkSweepContracts, ValidSweepRuns) {
  const auto c = config();
  EXPECT_NO_THROW(unk_.trace_sweep(tracer_, 0, c.ilo(), c.ihi(), c.jlo(),
                                   c.jhi(), c.klo(), c.khi(), 4, 2));
}

TEST_F(UnkSweepContracts, BadAxisViolatesContract) {
  EXPECT_THROW(
      unk_.trace_sweep_axis(tracer_, 0, 3, 0, 1, 0, 1, 0, 1, 1, 0),
      ContractViolation);
}

TEST_F(UnkSweepContracts, BlockOutOfRangeViolatesContract) {
  EXPECT_THROW(unk_.trace_sweep(tracer_, 4, 0, 1, 0, 1, 0, 1, 1, 0),
               ContractViolation);
  EXPECT_THROW(unk_.trace_sweep(tracer_, -1, 0, 1, 0, 1, 0, 1, 1, 0),
               ContractViolation);
}

TEST_F(UnkSweepContracts, RangeBeyondBlockExtentViolatesContract) {
  EXPECT_THROW(
      unk_.trace_sweep(tracer_, 0, 0, unk_.ni() + 1, 0, 1, 0, 1, 1, 0),
      ContractViolation);
}

TEST_F(UnkSweepContracts, TooManyVariablesViolatesContract) {
  EXPECT_THROW(
      unk_.trace_sweep(tracer_, 0, 0, 1, 0, 1, 0, 1, unk_.nvar() + 1, 0),
      ContractViolation);
}

TEST_F(UnkSweepContracts, DisabledTracerSkipsContractChecks) {
  // The enabled() fast-path exits before the contracts: a disabled tracer
  // must stay free even when handed garbage.
  tlb::Tracer off;
  EXPECT_NO_THROW(unk_.trace_sweep_axis(off, -5, 7, 0, 99, 0, 99, 0, 99,
                                        1000, 1000));
}

}  // namespace
}  // namespace fhp
