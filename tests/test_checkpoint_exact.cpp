/// \file test_checkpoint_exact.cpp
/// \brief Tests for checkpoint I/O and the exact Sedov similarity solution.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "eos/gamma_eos.hpp"
#include "hydro/hydro.hpp"
#include "rt/runtime.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sedov.hpp"
#include "sim/sedov_exact.hpp"
#include "support/error.hpp"

namespace fhp::sim {
namespace {

// Process-default execution context for construction sites: these tests
// exercise checkpoint round-trips, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

using mesh::var::kDens;
using mesh::var::kEner;
using mesh::var::kPres;

// ----------------------------------------------------------- Sedov exact

TEST(SedovExactTest, AlphaMatchesPublishedValues) {
  // Sedov 1959 / Landau-Lifshitz tables, spherical geometry.
  EXPECT_NEAR(SedovExact(1.4, 3).alpha(), 0.851, 0.002);
  EXPECT_NEAR(SedovExact(5.0 / 3.0, 3).alpha(), 0.493, 0.002);
  // Cylindrical gamma = 1.4: alpha ~ 0.984.
  EXPECT_NEAR(SedovExact(1.4, 2).alpha(), 0.984, 0.003);
}

TEST(SedovExactTest, ShockRadiusScalesAsSimilarity) {
  const SedovExact sedov(1.4, 3);
  const double r1 = sedov.shock_radius(1.0, 1.0, 1.0);
  EXPECT_NEAR(sedov.shock_radius(1.0, 1.0, 2.0) / r1, std::pow(4.0, 0.2),
              1e-12);
  EXPECT_NEAR(sedov.shock_radius(32.0, 1.0, 1.0) / r1, std::pow(32.0, 0.2),
              1e-12);
  EXPECT_NEAR(sedov.shock_radius(1.0, 32.0, 1.0) / r1,
              std::pow(1.0 / 32.0, 0.2), 1e-12);
}

TEST(SedovExactTest, ProfileHasTheRightShape) {
  const SedovExact sedov(1.4, 3);
  // At the shock everything is the post-shock value.
  const auto at_shock = sedov.profile(1.0);
  EXPECT_DOUBLE_EQ(at_shock[0], 1.0);
  EXPECT_DOUBLE_EQ(at_shock[1], 1.0);
  // The interior evacuates: density plummets toward the center while the
  // pressure levels off at a finite plateau (~0.37 p2 for gamma = 1.4).
  const auto mid = sedov.profile(0.5);
  EXPECT_LT(mid[0], 0.01);
  EXPECT_NEAR(mid[2], 0.366, 0.01);
  const auto center = sedov.profile(0.01);
  EXPECT_LT(center[0], 1e-10);
  EXPECT_NEAR(center[2], 0.366, 0.01);
  // Velocity decreases monotonically toward the center.
  EXPECT_LT(sedov.profile(0.3)[1], sedov.profile(0.8)[1]);
}

TEST(SedovExactTest, SetupUsesTheExactAlpha) {
  const SedovExact sedov(1.4, 3);
  EXPECT_NEAR(SedovSetup::shock_radius(1.0, 1.0, 0.5, 1.4) /
                  sedov.shock_radius(1.0, 1.0, 0.5),
              1.0, 1e-12);
}

TEST(SedovExactTest, RejectsBadArguments) {
  EXPECT_THROW(SedovExact(1.0, 3), ConfigError);
  EXPECT_THROW(SedovExact(1.4, 4), ConfigError);
  EXPECT_THROW(SedovExact(1.4, 3, 2), ConfigError);
}

// ------------------------------------------------------------ checkpoints

mesh::MeshConfig ckpt_config() {
  mesh::MeshConfig c;
  c.ndim = 2;
  c.nxb = 8;
  c.nyb = 8;
  c.nguard = 4;
  c.nscalars = 1;
  c.maxblocks = 128;
  c.max_level = 3;
  c.nroot = {2, 1, 1};
  return c;
}

void paint(mesh::AmrMesh& m) {
  const mesh::MeshConfig& c = m.config();
  for (int b : m.tree().leaves_morton()) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        for (int v = 0; v < c.nvar(); ++v) {
          m.unk().at(v, i, j, 0, b) =
              v + 10.0 * m.xcenter(b, i) + 100.0 * m.ycenter(b, j);
        }
      }
    }
  }
}

TEST(CheckpointTest, RoundTripRestoresTopologyAndData) {
  mesh::AmrMesh original(ckpt_config(), mem::HugePolicy::kNone,
                         proc().layout(), proc().page_pool());
  // A non-trivial tree: refine block 0, then one of its children.
  original.refine_block(0);
  original.refine_block(original.tree().find(2, {0, 0, 0}));
  paint(original);
  original.fill_guardcells();

  write_checkpoint("ckpt_roundtrip.bin", original, {0.125, 42});

  mesh::AmrMesh restored(ckpt_config(), mem::HugePolicy::kNone,
                         proc().layout(), proc().page_pool());
  const CheckpointInfo info =
      read_checkpoint("ckpt_roundtrip.bin", restored);
  EXPECT_DOUBLE_EQ(info.sim_time, 0.125);
  EXPECT_EQ(info.step, 42);

  // Same topology...
  EXPECT_EQ(restored.tree().num_allocated(),
            original.tree().num_allocated());
  EXPECT_EQ(restored.tree().leaves_morton(),
            original.tree().leaves_morton());
  // ...and bit-identical interiors.
  const mesh::MeshConfig& c = original.config();
  for (int b : original.tree().leaves_morton()) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        for (int v = 0; v < c.nvar(); ++v) {
          ASSERT_EQ(restored.unk().at(v, i, j, 0, b),
                    original.unk().at(v, i, j, 0, b));
        }
      }
    }
  }
}

TEST(CheckpointTest, RestartContinuesBitExactly) {
  // Run A: 8 Sod-like steps straight through. Run B: 4 steps, checkpoint,
  // restore into a fresh mesh, 4 more. The results must agree bit for bit
  // (this is FLASH's restart guarantee).
  auto build = []() {
    auto m = std::make_unique<mesh::AmrMesh>(
        ckpt_config(), mem::HugePolicy::kNone, proc().layout(),
        proc().page_pool());
    const mesh::MeshConfig& c = m->config();
    m->for_leaf_cells([&](int b, int i, int j, int k) {
      const double x = m->xcenter(b, i);
      const double rho = x < 0.5 ? 1.0 : 0.125;
      const double p = x < 0.5 ? 1.0 : 0.1;
      auto& unk = m->unk();
      unk.at(kDens, i, j, k, b) = rho;
      unk.at(kPres, i, j, k, b) = p;
      unk.at(mesh::var::kEint, i, j, k, b) = p / (0.4 * rho);
      unk.at(kEner, i, j, k, b) = p / (0.4 * rho);
      unk.at(mesh::var::kGamc, i, j, k, b) = 1.4;
      unk.at(mesh::var::kGame, i, j, k, b) = 1.4;
    });
    (void)c;
    m->fill_guardcells();
    return m;
  };

  eos::GammaEos gamma(1.4);

  auto run_a = build();
  hydro::HydroSolver solver_a(*run_a, gamma);
  for (int n = 0; n < 8; ++n) solver_a.step(1e-3);

  auto run_b = build();
  {
    hydro::HydroSolver solver_b(*run_b, gamma);
    for (int n = 0; n < 4; ++n) solver_b.step(1e-3);
    write_checkpoint("ckpt_restart.bin", *run_b, {4e-3, 4});
  }
  auto run_c = std::make_unique<mesh::AmrMesh>(
      ckpt_config(), mem::HugePolicy::kNone, proc().layout(),
      proc().page_pool());
  read_checkpoint("ckpt_restart.bin", *run_c);
  hydro::HydroSolver solver_c(*run_c, gamma);
  // Match run A's sweep-order phase (4 steps already taken).
  for (int n = 0; n < 4; ++n) solver_c.step(1e-3);

  const mesh::MeshConfig& c = run_a->config();
  for (int b : run_a->tree().leaves_morton()) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        ASSERT_EQ(run_c->unk().at(kDens, i, j, 0, b),
                  run_a->unk().at(kDens, i, j, 0, b))
            << "b=" << b << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(CheckpointTest, ConfigMismatchRejected) {
  mesh::AmrMesh original(ckpt_config(), mem::HugePolicy::kNone,
                         proc().layout(), proc().page_pool());
  paint(original);
  write_checkpoint("ckpt_mismatch.bin", original, {});

  mesh::MeshConfig other = ckpt_config();
  other.nscalars = 2;  // different layout
  mesh::AmrMesh wrong(other, mem::HugePolicy::kNone, proc().layout(),
                      proc().page_pool());
  EXPECT_THROW(read_checkpoint("ckpt_mismatch.bin", wrong), ConfigError);
}

TEST(CheckpointTest, MissingAndCorruptFilesRejected) {
  mesh::AmrMesh m(ckpt_config(), mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  EXPECT_THROW(read_checkpoint("nonexistent.bin", m), SystemError);
  // A file with the wrong magic is rejected before any topology change.
  std::FILE* f = std::fopen("ckpt_garbage.bin", "wb");
  std::fputs("not a checkpoint at all, sorry", f);
  std::fclose(f);
  EXPECT_THROW(read_checkpoint("ckpt_garbage.bin", m), ConfigError);
}

TEST(CheckpointTest, RequiresAFreshMesh) {
  mesh::AmrMesh original(ckpt_config(), mem::HugePolicy::kNone,
                         proc().layout(), proc().page_pool());
  paint(original);
  write_checkpoint("ckpt_fresh.bin", original, {});

  mesh::AmrMesh busy(ckpt_config(), mem::HugePolicy::kNone,
                     proc().layout(), proc().page_pool());
  busy.refine_block(0);  // not fresh any more
  EXPECT_THROW(read_checkpoint("ckpt_fresh.bin", busy), ConfigError);
}

}  // namespace
}  // namespace fhp::sim
