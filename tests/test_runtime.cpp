/// \file test_runtime.cpp
/// \brief Tests for fhp::rt::Runtime — the explicit per-tenant context.
///
/// Four layers:
///   1. context plumbing — process_default() identity and dynamic
///      re-resolution, construction-time config snapshots, private vs
///      injected page pools;
///   2. execution arenas — per-arena region guards (two arenas mid-region
///      at once), lane-count reconfiguration between regions, and the
///      pool_for() regression: set_lanes() while a region is in flight on
///      another thread must leave that region's leased pool alone;
///   3. per-runtime observability — two Telemetry sinks installed on two
///      runtimes trace separate timelines with the ambient slot left
///      free, and the runtime log tag prefixes driver and lane lines;
///   4. the PR invariant — a Sedov tenant and a supernova tenant (each on
///      its own Runtime, with different unk layouts) interleaved
///      step-by-step on one thread AND run concurrently on two threads,
///      end states and published counters bit-identical to each tenant
///      running solo, at 1/2/4 lanes. This file is part of the tsan
///      workload: the concurrent phase is the data-race test for the
///      multi-tenant design.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eos/eos_table.hpp"
#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/config.hpp"
#include "mesh/layout.hpp"
#include "obs/telemetry.hpp"
#include "par/parallel.hpp"
#include "perf/perf_context.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"
#include "tlb/machine.hpp"

namespace fhp::sim {
namespace {

using mesh::LayoutKind;

// ----------------------------------------------------- context plumbing

TEST(RuntimeContext, ProcessDefaultWrapsTheProcessSingletons) {
  rt::Runtime& a = rt::Runtime::process_default();
  rt::Runtime& b = rt::Runtime::process_default();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a.arena(), &par::process_arena());

  // The compatibility tenant re-resolves dynamically: its lane count
  // tracks set_threads, it does not snapshot.
  const int previous = par::threads();
  par::set_threads(3);
  EXPECT_EQ(a.lanes(), 3);
  par::set_threads(previous);
}

TEST(RuntimeContext, ExplicitRuntimeSnapshotsConfigAtConstruction) {
  const LayoutKind resolved = rt::Runtime::process_default().layout();

  mesh::set_default_layout(LayoutKind::kZoneMajor);
  rt::RuntimeOptions opts;
  opts.lanes = 2;
  rt::Runtime snapshot(opts);  // nullopt layout: snapshot the resolution now

  mesh::set_default_layout(LayoutKind::kTiled);
  EXPECT_EQ(snapshot.layout(), LayoutKind::kZoneMajor);
  EXPECT_EQ(rt::Runtime::process_default().layout(), LayoutKind::kTiled);
  EXPECT_EQ(snapshot.lanes(), 2);

  rt::RuntimeOptions explicit_opts;
  explicit_opts.lanes = 1;
  explicit_opts.layout = LayoutKind::kVarMajor;
  explicit_opts.policy = mem::HugePolicy::kNone;
  explicit_opts.log_tag = "tenant";
  rt::Runtime pinned(explicit_opts);
  EXPECT_EQ(pinned.layout(), LayoutKind::kVarMajor);
  EXPECT_EQ(pinned.huge_policy(), mem::HugePolicy::kNone);
  EXPECT_EQ(pinned.log_tag(), "tenant");

  mesh::set_default_layout(resolved);  // restore for later tests
}

TEST(RuntimeContext, PoolIsPrivateByDefaultAndSharableByInjection) {
  rt::Runtime private_tenant;
  EXPECT_NE(&private_tenant.page_pool(),
            &rt::Runtime::process_default().page_pool());
  EXPECT_NE(&private_tenant.perf(), &rt::Runtime::process_default().perf());
  EXPECT_NE(&private_tenant.arena(), &par::process_arena());

  rt::RuntimeOptions opts;
  opts.pool = &rt::Runtime::process_default().page_pool();
  rt::Runtime shared_tenant(opts);
  EXPECT_EQ(&shared_tenant.page_pool(),
            &rt::Runtime::process_default().page_pool());
}

// ----------------------------------------------------- execution arenas

TEST(ExecArenaRegions, LaneCountChangeBetweenRegionsTakesEffect) {
  par::ExecArena arena(2);
  auto lanes_in_region = [&arena] {
    std::atomic<int> seen{0};
    arena.run_region(
        [&seen](int) { seen.fetch_add(1, std::memory_order_relaxed); });
    return seen.load(std::memory_order_relaxed);
  };
  EXPECT_EQ(arena.lanes(), 2);
  EXPECT_EQ(lanes_in_region(), 2);

  // The pool_for() regression: reconfiguring between regions must take
  // effect on the next region (the old code rebuilt a process-global
  // pool out from under whatever lane count it was built for).
  arena.set_lanes(4);
  EXPECT_EQ(arena.lanes(), 4);
  EXPECT_EQ(lanes_in_region(), 4);

  arena.set_lanes(1);
  EXPECT_EQ(lanes_in_region(), 1);
}

TEST(ExecArenaRegions, SetLanesWhileRegionInFlightKeepsTheLease) {
  par::ExecArena arena(2);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<int> first_region_lanes{0};
  std::thread worker([&] {
    arena.run_region([&](int lane) {
      first_region_lanes.fetch_add(1, std::memory_order_relaxed);
      if (lane == 0) {
        entered.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    });
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();

  // Reconfigure while the region is mid-flight on another thread. The
  // in-flight region holds a refcounted lease on its pool, so its
  // workers must not be torn down (the old pool_for() deleted the pool
  // under the running region).
  arena.set_lanes(4);
  release.store(true, std::memory_order_release);
  worker.join();
  EXPECT_EQ(first_region_lanes.load(), 2);

  std::atomic<int> second_region_lanes{0};
  arena.run_region([&second_region_lanes](int) {
    second_region_lanes.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(second_region_lanes.load(), 4);
}

TEST(ExecArenaRegions, TwoArenasRunRegionsConcurrently) {
  // Each lane-0 blocks until the other arena's region is also in
  // flight: with the old process-wide region guard the second region
  // would have thrown the nested-region ConfigError; with per-arena
  // guards both proceed.
  par::ExecArena a(2);
  par::ExecArena b(2);
  std::atomic<bool> a_inside{false};
  std::atomic<bool> b_inside{false};
  auto meet = [](std::atomic<bool>& mine, std::atomic<bool>& theirs) {
    mine.store(true, std::memory_order_release);
    while (!theirs.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };
  std::thread other([&] {
    b.run_region([&](int lane) {
      if (lane == 0) meet(b_inside, a_inside);
    });
  });
  a.run_region([&](int lane) {
    if (lane == 0) meet(a_inside, b_inside);
  });
  other.join();
  EXPECT_TRUE(a_inside.load());
  EXPECT_TRUE(b_inside.load());
}

// ------------------------------------------- per-runtime observability

TEST(RuntimeTelemetry, PerRuntimeSinksKeepSeparateTimelines) {
  rt::RuntimeOptions opts;
  opts.lanes = 2;
  rt::Runtime tenant_a(opts);
  rt::Runtime tenant_b(opts);

  obs::TelemetryOptions topts;
  topts.lanes = 2;
  obs::Telemetry tel_a(topts);
  obs::Telemetry tel_b(topts);
  tel_a.install(tenant_a);
  tel_b.install(tenant_b);

  // Per-runtime installs leave the ambient process-wide slot free.
  EXPECT_EQ(obs::Telemetry::current(), nullptr);
  EXPECT_EQ(tenant_a.trace_sink(), &tel_a);

  tenant_a.arena().parallel_for(
      64, [](int, std::size_t) { FHP_TRACE_SPAN("tenant_a.work"); });
  tenant_b.arena().parallel_for(
      64, [](int, std::size_t) { FHP_TRACE_SPAN("tenant_b.work"); });

  EXPECT_EQ(tel_a.total_spans(), 64u);
  EXPECT_EQ(tel_b.total_spans(), 64u);
  const auto hist_a = tel_a.latency_histograms();
  EXPECT_EQ(hist_a.count("tenant_a.work"), 1u);
  EXPECT_EQ(hist_a.count("tenant_b.work"), 0u);
  const auto hist_b = tel_b.latency_histograms();
  EXPECT_EQ(hist_b.count("tenant_b.work"), 1u);
  EXPECT_EQ(hist_b.count("tenant_a.work"), 0u);

  // One sink per runtime: a second install on the same runtime throws.
  obs::Telemetry spare(topts);
  EXPECT_THROW(spare.install(tenant_a), ConfigError);

  tel_a.uninstall();
  EXPECT_EQ(tenant_a.trace_sink(), nullptr);
}

TEST(RuntimeLogTag, TagFollowsTheDriverThreadAndTheLanes) {
  rt::RuntimeOptions opts;
  opts.lanes = 2;
  opts.log_tag = "simA";
  rt::Runtime tenant(opts);

  const std::string path = "runtime_log_tag_test.log";
  std::remove(path.c_str());
  Logger::instance().set_logfile(path);
  {
    rt::Runtime::BindScope bound(tenant);
    FHP_LOG(kInfo) << "tagged driver line";
  }
  tenant.arena().parallel_for(
      2, [](int, std::size_t) { FHP_LOG(kInfo) << "lane line"; });
  FHP_LOG(kInfo) << "untagged line";
  Logger::instance().set_logfile("");

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  auto count = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("[simA] tagged driver line"), 1u) << text;
  EXPECT_EQ(count("[simA] lane line"), 2u) << text;
  EXPECT_EQ(count("untagged line"), 1u) << text;
  EXPECT_EQ(count("[simA] untagged line"), 0u) << text;
}

// =====================================================================
// The PR invariant: two tenants, interleaved and concurrent, each
// bit-identical to running solo.
// =====================================================================

/// Canonical end state: every leaf interior zone vector in Morton order,
/// the final time, and the full published software-counter set (wall
/// nanos excluded — modeled counters must be exact, wall time is not).
struct RunResult {
  std::vector<double> state;
  perf::CounterSet counters;
};

void append_canonical_state(const mesh::AmrMesh& m, double time,
                            std::vector<double>& out) {
  const mesh::MeshConfig& c = m.config();
  std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
  for (int b : m.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          m.unk().gather_zone(0, c.nvar(), i, j, k, b, zone.data());
          out.insert(out.end(), zone.begin(), zone.end());
        }
      }
    }
  }
  out.push_back(time);
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.state.size(), b.state.size()) << what;
  ASSERT_EQ(std::memcmp(a.state.data(), b.state.data(),
                        a.state.size() * sizeof(double)),
            0)
      << what << ": physics state differs";
  for (std::size_t e = 0; e < perf::kNumEvents; ++e) {
    if (e == static_cast<std::size_t>(perf::Event::kWallNanos)) continue;
    EXPECT_EQ(a.counters.values[e], b.counters.values[e])
        << what << ": counter " << e << " differs";
  }
}

rt::RuntimeOptions tenant_options(int lanes, LayoutKind layout,
                                  const char* tag) {
  rt::RuntimeOptions opts;
  opts.lanes = lanes;
  opts.layout = layout;
  opts.policy = mem::HugePolicy::kNone;
  opts.log_tag = tag;
  return opts;
}

SedovParams sedov_params() {
  SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 2;
  params.maxblocks = 128;
  return params;
}

SupernovaParams snova_params() {
  SupernovaParams params;
  params.max_level = 3;
  params.maxblocks = 400;
  params.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  params.table_cache = "helm_table_runtime.bin";
  return params;
}

/// One Sedov tenant: its own Runtime (private pool, private perf,
/// private arena, zone-major layout), setup, solver and driver.
struct SedovTenant {
  explicit SedovTenant(int lanes)
      : runtime(tenant_options(lanes, LayoutKind::kZoneMajor, "sedov")),
        setup(sedov_params(), mem::HugePolicy::kNone, runtime),
        hydro(setup.mesh(), setup.eos()),
        machine({}, &runtime.perf()) {
    DriverOptions opts;
    opts.nsteps = 12;
    opts.trace_sample = 2;  // exercise the modeled counters too
    opts.verbose = false;
    DriverUnits units;
    units.machine = &machine;
    units.runtime = &runtime;
    driver.emplace(setup.mesh(), hydro, timers, opts, units);
  }
  RunResult result() {
    RunResult r;
    append_canonical_state(setup.mesh(), driver->sim_time(), r.state);
    r.counters = runtime.perf().snapshot();
    return r;
  }
  rt::Runtime runtime;
  SedovSetup setup;
  hydro::HydroSolver hydro;
  perf::Timers timers;
  tlb::Machine machine;
  std::optional<Driver> driver;
};

hydro::HydroOptions snova_hydro_options() {
  hydro::HydroOptions opts;
  opts.cfl = 0.6;
  return opts;
}

/// One supernova tenant on a different layout, with flame + gravity +
/// the Helmholtz-table EOS trace hook wired in.
struct SupernovaTenant {
  explicit SupernovaTenant(int lanes)
      : runtime(tenant_options(lanes, LayoutKind::kVarMajor, "snova")),
        setup(snova_params(), mem::HugePolicy::kNone, runtime),
        hydro(setup.mesh(), setup.eos(), snova_hydro_options()),
        machine({}, &runtime.perf()) {
    hydro.set_composition_fn(setup.composition_fn());
    DriverOptions opts;
    opts.nsteps = 4;
    opts.trace_sample = 2;
    opts.verbose = false;
    opts.refine_vars = {mesh::var::kDens,
                        mesh::var::kFirstScalar + snvar::kPhi};
    DriverUnits units;
    units.flame = &setup.flame();
    units.gravity = &setup.gravity();
    units.machine = &machine;
    units.eos_trace = [this](tlb::Tracer& t, int b) {
      setup.trace_eos_block(t, b);
    };
    units.runtime = &runtime;
    driver.emplace(setup.mesh(), hydro, timers, opts, units);
  }
  RunResult result() {
    RunResult r;
    append_canonical_state(setup.mesh(), driver->sim_time(), r.state);
    r.counters = runtime.perf().snapshot();
    // The flame's serial leaf-order energy reduction is part of the
    // bit-identity contract; fold it into the comparable state.
    r.state.push_back(setup.flame().energy_released());
    return r;
  }
  rt::Runtime runtime;
  SupernovaSetup setup;
  hydro::HydroSolver hydro;
  perf::Timers timers;
  tlb::Machine machine;
  std::optional<Driver> driver;
};

struct PairResult {
  RunResult sedov;
  RunResult snova;
};

/// Builds BOTH tenants (solo baselines included — the modeled counters
/// are a deliberate function of where the pools land in the address
/// space, so baseline and measured runs must construct identically; what
/// varies is only who gets stepped), then interleaves step_once() calls
/// on the calling thread.
PairResult run_pair_interleaved(int lanes, bool step_sedov,
                                bool step_snova) {
  SedovTenant a(lanes);
  SupernovaTenant b(lanes);
  bool more = true;
  while (more) {
    const bool advanced_a = step_sedov && a.driver->step_once();
    const bool advanced_b = step_snova && b.driver->step_once();
    more = advanced_a || advanced_b;
  }
  return {a.result(), b.result()};
}

/// Same contract, but each driver evolves on its own thread, with both
/// evolutions genuinely overlapping. Nothing about thread placement
/// needs pinning: every address the machine model replays is synthetic
/// (tlb::synthetic_scratch), so the modeled counters cannot see where
/// stacks, pools or tables happened to land.
PairResult run_pair_concurrent(int lanes, bool step_sedov,
                               bool step_snova) {
  SedovTenant a(lanes);
  SupernovaTenant b(lanes);
  std::thread snova_thread([&] {
    if (step_snova) b.driver->evolve();
  });
  std::thread sedov_thread([&] {
    if (step_sedov) a.driver->evolve();
  });
  sedov_thread.join();
  snova_thread.join();
  return {a.result(), b.result()};
}

void warm_process() {
  // Build (or load) the Helm table cache once, so every tenant below
  // loads the identical table file instead of each paying the build.
  const SupernovaParams params = snova_params();
  (void)eos::HelmTable::build_or_load(
      params.table_spec, mem::HugePolicy::kNone,
      rt::Runtime::process_default().page_pool(), params.table_cache);
}

TEST(RuntimePhysics, InterleavedTenantsBitIdenticalToSolo) {
  warm_process();

  const RunResult sedov_solo = run_pair_interleaved(1, true, false).sedov;
  const RunResult snova_solo = run_pair_interleaved(1, false, true).snova;
  ASSERT_GT(sedov_solo.state.size(), 1u);
  ASSERT_GT(snova_solo.state.size(), 1u);

  for (const int lanes : {1, 2, 4}) {
    const PairResult pair = run_pair_interleaved(lanes, true, true);
    expect_identical(sedov_solo, pair.sedov,
                     "interleaved sedov x " + std::to_string(lanes) +
                         " lanes");
    expect_identical(snova_solo, pair.snova,
                     "interleaved supernova x " + std::to_string(lanes) +
                         " lanes");
  }
}

TEST(RuntimePhysics, ConcurrentTenantsBitIdenticalToSolo) {
  warm_process();

  const RunResult sedov_solo = run_pair_concurrent(1, true, false).sedov;
  const RunResult snova_solo = run_pair_concurrent(1, false, true).snova;
  ASSERT_GT(sedov_solo.state.size(), 1u);
  ASSERT_GT(snova_solo.state.size(), 1u);

  for (const int lanes : {1, 2, 4}) {
    const PairResult pair = run_pair_concurrent(lanes, true, true);
    expect_identical(sedov_solo, pair.sedov,
                     "concurrent sedov x " + std::to_string(lanes) +
                         " lanes");
    expect_identical(snova_solo, pair.snova,
                     "concurrent supernova x " + std::to_string(lanes) +
                         " lanes");
  }
}

}  // namespace
}  // namespace fhp::sim
