/// \file test_tlb.cpp
/// \brief Unit and property tests for the TLB/cache/core machine model.

#include <gtest/gtest.h>

#include "perf/perf_context.hpp"
#include "support/error.hpp"
#include "mem/page_size.hpp"
#include "tlb/cache_model.hpp"
#include "tlb/machine.hpp"
#include "tlb/tlb_model.hpp"
#include "tlb/trace.hpp"

namespace fhp::tlb {
namespace {

// -------------------------------------------------------------- TLB model

TEST(TlbModelTest, HitAfterInstall) {
  TlbModel tlb({4, 0});  // 4-entry fully associative
  EXPECT_FALSE(tlb.access(0x1000, kShift4K));  // compulsory miss
  EXPECT_TRUE(tlb.access(0x1000, kShift4K));
  EXPECT_TRUE(tlb.access(0x1fff, kShift4K));  // same page
  EXPECT_FALSE(tlb.access(0x2000, kShift4K)); // next page
  EXPECT_EQ(tlb.hits(), 2u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbModelTest, CapacityEviction) {
  TlbModel tlb({4, 0});
  for (std::uint64_t p = 0; p < 5; ++p) {
    tlb.access(p << kShift4K, kShift4K);
  }
  // 5 pages through 4 entries: at least one of the originals is gone.
  int resident = 0;
  for (std::uint64_t p = 0; p < 5; ++p) {
    if (tlb.contains(p << kShift4K, kShift4K)) ++resident;
  }
  EXPECT_EQ(resident, 4);
}

TEST(TlbModelTest, PageSizesAreDistinctEntries) {
  TlbModel tlb({8, 0});
  tlb.access(0x200000, kShift4K);
  EXPECT_FALSE(tlb.contains(0x200000, kShift2M));
  tlb.access(0x200000, kShift2M);
  EXPECT_TRUE(tlb.contains(0x200000, kShift4K));
  EXPECT_TRUE(tlb.contains(0x200000, kShift2M));
}

TEST(TlbModelTest, HugePageCoversWideRange) {
  TlbModel tlb({4, 0});
  tlb.access(0x40000000, kShift2M);
  // Anywhere within the same 2 MiB frame hits.
  EXPECT_TRUE(tlb.access(0x40000000 + (1 << 20), kShift2M));
  EXPECT_TRUE(tlb.access(0x40000000 + (2 << 20) - 1, kShift2M));
  EXPECT_FALSE(tlb.access(0x40000000 + (2 << 20), kShift2M));
}

TEST(TlbModelTest, FlushEmptiesEverything) {
  TlbModel tlb({4, 0});
  tlb.access(0x1000, kShift4K);
  tlb.flush();
  EXPECT_FALSE(tlb.contains(0x1000, kShift4K));
}

TEST(TlbModelTest, SetAssociativeMapsByVpnBits) {
  TlbModel tlb({8, 2});  // 4 sets x 2 ways
  EXPECT_EQ(tlb.sets(), 4u);
  EXPECT_EQ(tlb.ways(), 2u);
  // Pages 0, 4, 8 share set 0 (vpn & 3 == 0); two fit, the third evicts.
  tlb.access(0ull << kShift4K, kShift4K);
  tlb.access(4ull << kShift4K, kShift4K);
  tlb.access(8ull << kShift4K, kShift4K);
  int resident = 0;
  for (std::uint64_t p : {0ull, 4ull, 8ull}) {
    if (tlb.contains(p << kShift4K, kShift4K)) ++resident;
  }
  EXPECT_EQ(resident, 2);
  // A page in another set is untouched by that conflict.
  tlb.access(1ull << kShift4K, kShift4K);
  EXPECT_TRUE(tlb.contains(1ull << kShift4K, kShift4K));
}

TEST(TlbModelTest, GeometryValidation) {
  EXPECT_THROW(TlbModel({0, 0}), ConfigError);
  EXPECT_THROW(TlbModel({7, 2}), ConfigError);   // 7 % 2 != 0
  EXPECT_THROW(TlbModel({24, 2}), ConfigError);  // 12 sets: not a pow2
  TlbModel ok({48, 0});                           // A64FX L1 shape
  EXPECT_EQ(ok.sets(), 1u);
  EXPECT_EQ(ok.ways(), 48u);
}

/// Property: for a fixed strided stream, misses never increase when the
/// page size grows (the monotonicity the whole paper rests on).
class TlbPageSizeMonotonicity : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(TlbPageSizeMonotonicity, MissesMonotoneInPageSize) {
  const std::size_t stride = GetParam();
  std::uint64_t prev_misses = ~0ull;
  for (const std::uint8_t shift : {kShift4K, kShift64K, kShift2M,
                                   kShift512M}) {
    TlbModel tlb({48, 0});
    std::uint64_t addr = 0;
    for (int n = 0; n < 50000; ++n) {
      tlb.access(addr, shift);
      addr += stride;
      if (addr >= (512u << 20)) addr = 0;
    }
    EXPECT_LE(tlb.misses(), prev_misses) << "stride " << stride << " shift "
                                         << int(shift);
    prev_misses = tlb.misses();
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, TlbPageSizeMonotonicity,
                         ::testing::Values(64, 256, 4096, 9000, 65536,
                                           120000, 1 << 20, 5u << 20));

/// Property: sequential access misses exactly once per page.
class TlbSequentialCompulsory : public ::testing::TestWithParam<int> {};

TEST_P(TlbSequentialCompulsory, OneMissPerPage) {
  const int npages = GetParam();
  TlbModel tlb({1024, 4});
  const std::size_t line = 256;
  for (std::uint64_t addr = 0;
       addr < static_cast<std::uint64_t>(npages) << kShift4K; addr += line) {
    tlb.access(addr, kShift4K);
  }
  EXPECT_EQ(tlb.misses(), static_cast<std::uint64_t>(npages));
}

INSTANTIATE_TEST_SUITE_P(PageCounts, TlbSequentialCompulsory,
                         ::testing::Values(1, 16, 256, 1024));

// ------------------------------------------------------------- cache model

TEST(CacheModelTest, HitAfterFill) {
  CacheModel cache({1024, 2, 64});  // 8 sets x 2 ways of 64 B lines
  EXPECT_FALSE(cache.access(0x100, false).hit);
  EXPECT_TRUE(cache.access(0x100, false).hit);
  EXPECT_TRUE(cache.access(0x13f, false).hit);   // same line
  EXPECT_FALSE(cache.access(0x140, false).hit);  // next line
}

TEST(CacheModelTest, WritebackOnDirtyEviction) {
  CacheModel cache({128, 1, 64});  // direct-mapped, 2 sets
  cache.access(0x000, true);            // dirty line in set 0
  const CacheResult r = cache.access(0x080, false);  // set 0 conflict
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(cache.writebacks(), 1u);
  // Evicting a clean line does not write back.
  const CacheResult r2 = cache.access(0x100, false);
  EXPECT_FALSE(r2.writeback);
}

TEST(CacheModelTest, LruKeepsRecentlyUsed) {
  CacheModel cache({128, 2, 64});  // 1 set x 2 ways
  cache.access(0x000, false);
  cache.access(0x040, false);
  cache.access(0x000, false);      // refresh line 0
  cache.access(0x080, false);      // evicts LRU = line at 0x040
  EXPECT_TRUE(cache.contains(0x000));
  EXPECT_FALSE(cache.contains(0x040));
}

TEST(CacheModelTest, GeometryValidation) {
  EXPECT_THROW(CacheModel({1024, 0, 64}), ConfigError);
  EXPECT_THROW(CacheModel({1024, 2, 63}), ConfigError);
  EXPECT_THROW(CacheModel({64, 2, 64}), ConfigError);  // 0.5 sets
}

TEST(CacheModelTest, FlushDropsDirtyState) {
  CacheModel cache({128, 2, 64});
  cache.access(0x000, true);
  cache.flush();
  EXPECT_FALSE(cache.contains(0x000));
  const CacheResult r = cache.access(0x080, false);
  EXPECT_FALSE(r.writeback);  // dirty bit did not survive the flush
}

// ---------------------------------------------------------------- machine

TEST(MachineTest, TouchSplitsIntoLines) {
  Machine machine;
  // 600 bytes starting at offset 0x80 span lines 0x10000/0x10100/0x10200.
  machine.touch(reinterpret_cast<void*>(0x10080), 600, false, kShift4K);
  EXPECT_EQ(machine.quantum().accesses, 3u);
}

TEST(MachineTest, ComputeOnlyQuantumCostsComputeCycles) {
  MachineParams params;
  Machine machine(params);
  machine.compute(2000, 1000);
  const double cycles = machine.model_cycles(machine.quantum());
  EXPECT_DOUBLE_EQ(cycles, 2000.0 / params.scalar_ops_per_cycle +
                               1000.0 / params.vector_ops_per_cycle);
}

TEST(MachineTest, BandwidthBoundQuantum) {
  MachineParams params;
  params.latency_overlap = 1.0;  // isolate the bandwidth term
  params.walk_overlap = 1.0;
  params.l2_tlb_hit_overlap = 1.0;
  Machine machine(params);
  // Stream far more data than compute: cycles == bytes / bw.
  for (std::uint64_t a = 0; a < (64u << 20); a += 256) {
    machine.touch(reinterpret_cast<void*>(0x100000000ull + a), 256, false,
                  kShift2M);
  }
  const auto& q = machine.quantum();
  ASSERT_GT(q.l2_misses, 0u);
  const double expected =
      static_cast<double>(q.bytes_read(256)) / params.mem_bytes_per_cycle;
  EXPECT_NEAR(machine.model_cycles(q), expected, expected * 1e-9);
}

TEST(MachineTest, WalkCyclesChargedWhenNotOverlapped) {
  MachineParams params;
  params.walk_overlap = 0.0;  // nothing hidden
  params.l2_tlb_hit_overlap = 0.0;
  Machine machine(params);
  QuantumStats q;
  q.walks = 10;
  q.l1_tlb_misses = 10;  // all missed both levels
  const double cycles = machine.model_cycles(q);
  EXPECT_DOUBLE_EQ(cycles, 10.0 * params.walk_cycles);
}

TEST(MachineTest, CommitPublishesScaledCounters) {
  perf::PerfContext perf;
  MachineParams params;
  params.background_miss_per_cycle = 0.0;
  Machine machine(params, &perf);
  machine.compute(100, 50);
  machine.touch(reinterpret_cast<void*>(0x20000), 8, false, kShift4K);
  machine.commit(/*scale=*/4);
  const auto s = perf.snapshot();
  EXPECT_EQ(s[perf::Event::kVectorOps], 200u);           // 50 * 4
  EXPECT_EQ(s[perf::Event::kDtlbMisses], 4u);            // 1 L1 miss * 4
  EXPECT_GT(s[perf::Event::kCycles], 0u);
  // The quantum was reset but the structural state persists.
  EXPECT_EQ(machine.quantum().accesses, 0u);
}

TEST(MachineTest, BackgroundFloorProducesMisses) {
  perf::PerfContext perf;
  MachineParams params;  // default floor
  Machine machine(params, &perf);
  machine.compute(1800000, 0);  // ~0.9M cycles
  machine.commit(1);
  const auto s = perf.snapshot();
  const double cycles = static_cast<double>(s[perf::Event::kCycles]);
  const double misses = static_cast<double>(s[perf::Event::kDtlbMisses]);
  EXPECT_NEAR(misses / cycles, params.background_miss_per_cycle,
              params.background_miss_per_cycle * 0.05);
}

TEST(MachineTest, ResetClearsStructuresAndTotals) {
  Machine machine;
  machine.touch(reinterpret_cast<void*>(0x1000), 8, false, kShift4K);
  machine.commit();
  machine.reset();
  EXPECT_EQ(machine.total_cycles(), 0.0);
  // After reset the same page misses again (structures were flushed).
  machine.touch(reinterpret_cast<void*>(0x1000), 8, false, kShift4K);
  EXPECT_EQ(machine.quantum().l1_tlb_misses, 1u);
}

/// The headline mechanism, in miniature: a strided sweep over a working
/// set larger than the L1 TLB's 4 KiB reach misses hard at 4 KiB pages
/// and barely at 2 MiB.
TEST(MachineTest, HugePagesCollapseStridedMisses) {
  auto run = [](std::uint8_t shift) {
    Machine machine;
    // unk-like: 2.9 KiB stride (nvar*ni*8), 64 MiB working set, 3 passes.
    for (int pass = 0; pass < 3; ++pass) {
      for (std::uint64_t a = 0; a < (64u << 20); a += 2880) {
        machine.touch(reinterpret_cast<void*>(0x200000000ull + a), 120,
                      false, shift);
      }
    }
    return machine.quantum().l1_tlb_misses;
  };
  const auto misses_4k = run(kShift4K);
  const auto misses_2m = run(kShift2M);
  EXPECT_GT(misses_4k, 20u * misses_2m);
}

// ------------------------------------------------------------------ tracer

TEST(TracerTest, DisabledTracerIsInert) {
  Tracer tracer;  // no machine
  EXPECT_FALSE(tracer.enabled());
  tracer.touch(reinterpret_cast<void*>(0x1000), 64, true, kShift4K);
  tracer.compute(100, 100);  // must not crash
}

TEST(TracerTest, EnabledTracerForwards) {
  Machine machine;
  Tracer tracer(&machine);
  ASSERT_TRUE(tracer.enabled());
  tracer.touch(reinterpret_cast<void*>(0x1000), 64, true, kShift4K);
  tracer.compute(10, 20);
  EXPECT_EQ(machine.quantum().accesses, 1u);
  EXPECT_EQ(machine.quantum().scalar_ops, 10u);
  EXPECT_EQ(machine.quantum().vector_ops, 20u);
}

TEST(EffectivePageShiftTest, SmallAndHugetlbRegions) {
  mem::MapRequest req;
  req.bytes = 2u << 20;
  req.policy = mem::HugePolicy::kNone;
  mem::MappedRegion small(req);
  EXPECT_EQ(effective_page_shift(small), page_shift_of(mem::base_page_size()));

  const mem::MappedRegion unmapped;
  EXPECT_EQ(effective_page_shift(unmapped),
            page_shift_of(mem::base_page_size()));
}

}  // namespace
}  // namespace fhp::tlb
