/// \file test_taskgraph.cpp
/// \brief Tests for the par::TaskGraph DAG executor and the task-graph
/// execution mode of the driver.
///
/// Three layers:
///   1. construction contracts — cycle rejection, self/duplicate edges,
///      freeze discipline;
///   2. dependency ordering under an adversarial scheduler — run_serial
///      executes ready tasks in reverse or seeded-random order, so any
///      missing edge shows up as an ordering violation without needing a
///      lucky thread interleaving;
///   3. the PR invariant — Sedov and supernova end states *and* published
///      counters bit-identical between bulk-sync and task-graph execution
///      at 1/2/4 lanes across all three unk layouts, plus a tsan workload
///      with the sampler running over task-graph steps.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "eos/eos_table.hpp"
#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/config.hpp"
#include "mesh/layout.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "par/parallel.hpp"
#include "par/task_graph.hpp"
#include "perf/perf_context.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"
#include "support/error.hpp"
#include "tlb/machine.hpp"

namespace fhp::par {
namespace {

// ------------------------------------------------- construction contracts

TEST(TaskGraphBuild, CycleRejectedWithTaskNames) {
  TaskGraph g;
  const auto a = g.add_task("alpha", [](int) {});
  const auto b = g.add_task("beta", [](int) {});
  const auto c = g.add_task("gamma", [](int) {});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  try {
    g.freeze();
    FAIL() << "freeze() accepted a cyclic graph";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
}

TEST(TaskGraphBuild, SelfEdgeRejected) {
  TaskGraph g;
  const auto a = g.add_task("self", [](int) {});
  EXPECT_THROW(g.add_edge(a, a), ConfigError);
}

TEST(TaskGraphBuild, DuplicateEdgeRejected) {
  TaskGraph g;
  const auto a = g.add_task("a", [](int) {});
  const auto b = g.add_task("b", [](int) {});
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), ConfigError);
}

TEST(TaskGraphBuild, MutationAfterFreezeRejected) {
  TaskGraph g;
  const auto a = g.add_task("a", [](int) {});
  const auto b = g.add_task("b", [](int) {});
  g.add_edge(a, b);
  g.freeze();
  EXPECT_TRUE(g.frozen());
  EXPECT_THROW(g.add_task("late", [](int) {}), ConfigError);
  EXPECT_THROW(g.add_edge(a, b), ConfigError);
  g.clear();
  EXPECT_FALSE(g.frozen());
  EXPECT_EQ(g.size(), 0u);
}

TEST(TaskGraphBuild, RunRequiresFreeze) {
  TaskGraph g;
  g.add_task("a", [](int) {});
  EXPECT_THROW(g.run(), ConfigError);
  EXPECT_THROW(g.run_serial(TaskGraph::Schedule::kFifo), ConfigError);
}

TEST(TaskGraphBuild, EmptyGraphRunsAsNoOp) {
  TaskGraph g;
  g.freeze();
  g.run();
  EXPECT_EQ(g.last_stats().executed, 0u);
}

// --------------------------------------------------- parallel execution

TEST(TaskGraphRun, EveryTaskExecutesExactlyOnce) {
  const int previous = threads();
  set_threads(4);
  constexpr int kTasks = 96;
  TaskGraph g;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    g.add_task("work", [&hits, i](int) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    });
  }
  g.freeze();
  g.run();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(g.last_stats().executed, static_cast<std::uint64_t>(kTasks));

  // Graphs are reusable: a second run re-executes everything.
  g.run();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
  set_threads(previous);
}

TEST(TaskGraphRun, ExceptionAbortsRunAndRethrows) {
  const int previous = threads();
  set_threads(2);
  TaskGraph g;
  std::atomic<int> ran{0};
  const auto boom = g.add_task("boom", [](int) {
    throw NumericsError("deliberate task failure");
  });
  const auto after = g.add_task("after", [&ran](int) { ran.fetch_add(1); });
  g.add_edge(boom, after);
  for (int i = 0; i < 8; ++i) {
    g.add_task("bystander", [&ran](int) { ran.fetch_add(1); });
  }
  g.freeze();
  EXPECT_THROW(g.run(), NumericsError);
  // Termination is guaranteed (completions propagate even on abort), and
  // the graph is reusable afterwards: a run with no throwing body works.
  ran.store(0);
  EXPECT_THROW(g.run(), NumericsError);
  set_threads(previous);
}

// ------------------------------------------- adversarial ready orders

/// A graph with a known dependency relation: diamond over a chain.
///
///    0 ──► 1 ──► 3 ──► 5
///    │      ╲          ▲
///    └─► 2 ──► 4 ──────┘     (plus 6, 7 independent)
struct OrderedGraph {
  TaskGraph g;
  std::vector<int> order;  // completion sequence of task ids
  std::vector<std::pair<int, int>> edges;

  OrderedGraph() {
    for (int i = 0; i < 8; ++i) {
      // fhp-analyze: allow(alloc-in-region) -- test harness recording the
      // completion order under single-threaded serial replay
      g.add_task("node", [this, i](int) { order.push_back(i); });
    }
    edges = {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 4}, {3, 5}, {4, 5}};
    for (const auto& [a, b] : edges) g.add_edge(a, b);
    g.freeze();
  }

  void expect_respects_dependencies(const char* what) {
    ASSERT_EQ(order.size(), 8u) << what;
    auto position = [&](int id) {
      for (std::size_t p = 0; p < order.size(); ++p) {
        if (order[p] == id) return p;
      }
      return order.size();
    };
    for (const auto& [a, b] : edges) {
      EXPECT_LT(position(a), position(b))
          << what << ": task " << b << " ran before its dependency " << a;
    }
  }
};

TEST(TaskGraphAdversarial, ReverseScheduleRespectsDependencies) {
  OrderedGraph og;
  og.g.run_serial(TaskGraph::Schedule::kReverse);
  og.expect_respects_dependencies("reverse");
}

TEST(TaskGraphAdversarial, RandomSchedulesRespectDependencies) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    OrderedGraph og;
    og.g.run_serial(TaskGraph::Schedule::kRandom, seed);
    og.expect_respects_dependencies(
        ("random seed " + std::to_string(seed)).c_str());
  }
}

TEST(TaskGraphAdversarial, FifoScheduleIsSubmissionOrderForFreeTasks) {
  TaskGraph g;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    // fhp-analyze: allow(alloc-in-region) -- test harness recording the
    // completion order under single-threaded serial replay
    g.add_task("free", [&order, i](int) { order.push_back(i); });
  }
  g.freeze();
  g.run_serial(TaskGraph::Schedule::kFifo);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace fhp::par

// ===================================================================
// Driver-level invariant: bulk-sync vs task-graph bit-identity.
// ===================================================================

namespace fhp::sim {
namespace {

// Process-default execution context for construction sites: these tests
// pin lane counts with par::set_threads (the process arena tracks it);
// tests/test_runtime.cpp covers explicit runtimes.
rt::Runtime& proc() { return rt::Runtime::process_default(); }

using mesh::LayoutKind;

constexpr LayoutKind kAllLayouts[] = {LayoutKind::kVarMajor,
                                      LayoutKind::kZoneMajor,
                                      LayoutKind::kTiled};

/// Canonical end state: every leaf interior zone vector in Morton order,
/// the final time, and the full published software-counter set (wall
/// nanos excluded — modeled counters must be exact, wall time is not).
struct RunResult {
  std::vector<double> state;
  perf::CounterSet counters;
};

void append_canonical_state(const mesh::AmrMesh& m, double time,
                            std::vector<double>& out) {
  const mesh::MeshConfig& c = m.config();
  std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
  for (int b : m.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          m.unk().gather_zone(0, c.nvar(), i, j, k, b, zone.data());
          out.insert(out.end(), zone.begin(), zone.end());
        }
      }
    }
  }
  out.push_back(time);
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.state.size(), b.state.size()) << what;
  ASSERT_EQ(std::memcmp(a.state.data(), b.state.data(),
                        a.state.size() * sizeof(double)),
            0)
      << what << ": physics state differs";
  for (std::size_t e = 0; e < perf::kNumEvents; ++e) {
    if (e == static_cast<std::size_t>(perf::Event::kWallNanos)) continue;
    EXPECT_EQ(a.counters.values[e], b.counters.values[e])
        << what << ": counter " << e << " differs";
  }
}

RunResult run_sedov(LayoutKind layout, int threads, ExecMode mode) {
  par::set_threads(threads);
  perf::PerfContext perf;
  SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 2;
  params.maxblocks = 128;
  SedovSetup setup(params, mem::HugePolicy::kNone, proc(), layout);
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroSolver hydro(m, setup.eos());
  perf::Timers timers;
  tlb::Machine machine({}, &perf);
  DriverOptions opts;
  opts.nsteps = 12;
  opts.trace_sample = 2;  // exercise the modeled counters too
  opts.verbose = false;
  opts.exec_mode = mode;
  DriverUnits units;
  units.machine = &machine;
  units.perf = &perf;
  Driver driver(m, hydro, timers, opts, units);
  driver.evolve();
  par::set_threads(1);
  RunResult r;
  append_canonical_state(m, driver.sim_time(), r.state);
  r.counters = perf.snapshot();
  if (mode == ExecMode::kTaskGraph && threads > 1) {
    // Sanity: the DAG actually executed tasks (the invariant would hold
    // vacuously if the task path silently fell back to bulk).
    EXPECT_GT(driver.scheduler_stats().executed, 0u);
  }
  return r;
}

TEST(TaskGraphPhysics, SedovBitIdenticalAcrossModesLanesAndLayouts) {
  // Modeled counters are a function of the layout (that is the paper's
  // point), so the counter invariant is bulk-sync vs task-graph *within*
  // each layout; the physics state is additionally layout-invariant.
  const RunResult global =
      run_sedov(LayoutKind::kVarMajor, 1, ExecMode::kBulkSync);
  ASSERT_GT(global.state.size(), 1u);
  for (const LayoutKind layout : kAllLayouts) {
    const RunResult bulk =
        layout == LayoutKind::kVarMajor
            ? global
            : run_sedov(layout, 1, ExecMode::kBulkSync);
    ASSERT_EQ(bulk.state.size(), global.state.size());
    ASSERT_EQ(std::memcmp(bulk.state.data(), global.state.data(),
                          global.state.size() * sizeof(double)),
              0)
        << mesh::to_string(layout) << ": bulk state differs across layouts";
    for (const int threads : {1, 2, 4}) {
      expect_identical(
          bulk, run_sedov(layout, threads, ExecMode::kTaskGraph),
          std::string(mesh::to_string(layout)) + " x " +
              std::to_string(threads) + " lanes (task graph)");
    }
  }
}

RunResult run_supernova(LayoutKind layout, int threads, ExecMode mode) {
  par::set_threads(threads);
  perf::PerfContext perf;
  SupernovaParams p;
  p.max_level = 3;
  p.maxblocks = 400;
  p.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  p.table_cache = "helm_table_taskgraph.bin";
  SupernovaSetup setup(p, mem::HugePolicy::kNone, proc(), layout);
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(m, setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());
  perf::Timers timers;
  tlb::Machine machine({}, &perf);
  DriverOptions opts;
  opts.nsteps = 4;
  opts.trace_sample = 2;
  opts.verbose = false;
  opts.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + snvar::kPhi};
  opts.exec_mode = mode;
  DriverUnits units;
  units.flame = &setup.flame();
  units.gravity = &setup.gravity();
  units.machine = &machine;
  units.eos_trace =
      [&setup](tlb::Tracer& t, int b) { setup.trace_eos_block(t, b); };
  units.perf = &perf;
  Driver driver(m, hydro, timers, opts, units);
  driver.evolve();
  par::set_threads(1);
  RunResult r;
  append_canonical_state(m, driver.sim_time(), r.state);
  r.counters = perf.snapshot();
  // The flame's serial leaf-order energy reduction is part of the
  // bit-identity contract; fold it into the comparable state.
  r.state.push_back(setup.flame().energy_released());
  return r;
}

TEST(TaskGraphPhysics, SupernovaBitIdenticalAcrossModesLanesAndLayouts) {
  // Warm the process before the baseline run. Two harness artifacts can
  // shift the modeled address stream without any physics difference:
  // building the helm table (first run in a fresh tree) vs loading it
  // (every later run) leaves a different allocation layout behind, and —
  // under sanitizer allocators especially — the very first full
  // simulation in a process runs against a colder heap than every later
  // one. Neither is part of the bulk-vs-task-graph contract, so warm the
  // table cache and then discard one complete run: every *measured* run
  // below executes in allocator steady state.
  (void)eos::HelmTable::build_or_load({-4.0, 10.0, 141, 5.0, 10.0, 51},
                                      mem::HugePolicy::kNone,
                                      proc().page_pool(),
                                      "helm_table_taskgraph.bin");
  (void)run_supernova(LayoutKind::kVarMajor, 1, ExecMode::kBulkSync);
  const RunResult global =
      run_supernova(LayoutKind::kVarMajor, 1, ExecMode::kBulkSync);
  ASSERT_GT(global.state.size(), 1u);
  for (const LayoutKind layout : kAllLayouts) {
    const RunResult bulk =
        layout == LayoutKind::kVarMajor
            ? global
            : run_supernova(layout, 1, ExecMode::kBulkSync);
    ASSERT_EQ(bulk.state.size(), global.state.size());
    ASSERT_EQ(std::memcmp(bulk.state.data(), global.state.data(),
                          global.state.size() * sizeof(double)),
              0)
        << mesh::to_string(layout) << ": bulk state differs across layouts";
    for (const int threads : {1, 2, 4}) {
      expect_identical(
          bulk, run_supernova(layout, threads, ExecMode::kTaskGraph),
          std::string(mesh::to_string(layout)) + " x " +
              std::to_string(threads) + " lanes (task graph)");
    }
  }
}

// --------------------------------------------------- tsan workload

TEST(TaskGraphSampler, SamplerOverTaskGraphStepsIsRaceFree) {
  // The tsan preset's task-graph workload: a background sampler reading
  // published counters at 1 ms cadence while work-stealing lanes run a
  // full task-graph Sedov evolution with spans enabled. Any read of
  // unsynchronized scheduler or shard state is a tsan report.
  const int previous = par::threads();
  par::set_threads(2);
  perf::PerfContext perf;
  obs::Telemetry telemetry;
  telemetry.install();
  obs::SamplerOptions sopts = obs::SamplerOptions::with_procfs_root(
      std::string(FHP_TEST_FIXTURE_DIR) + "/procfs/kernel-6.6");
  sopts.cadence = std::chrono::milliseconds(1);
  sopts.perf = &perf;
  obs::Sampler sampler(sopts);
  sampler.start();

  SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 2;
  params.maxblocks = 128;
  SedovSetup setup(params, mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroSolver hydro(m, setup.eos());
  perf::Timers timers;
  tlb::Machine machine({}, &perf);
  DriverOptions opts;
  opts.nsteps = 10;
  opts.trace_sample = 2;
  opts.verbose = false;
  opts.exec_mode = ExecMode::kTaskGraph;
  DriverUnits units;
  units.machine = &machine;
  units.perf = &perf;
  Driver driver(m, hydro, timers, opts, units);
  driver.evolve();

  sampler.stop();
  telemetry.uninstall();
  par::set_threads(previous);
  EXPECT_EQ(driver.steps(), 10);
  EXPECT_GT(telemetry.total_spans(), 0u);
  EXPECT_GE(sampler.taken(), 1u);
  EXPECT_GT(perf.published().seq, 0u);
}

}  // namespace
}  // namespace fhp::sim
