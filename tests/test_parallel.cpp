/// \file test_parallel.cpp
/// \brief The fhp::par worker pool and the bit-identical-across-thread-
/// counts determinism contract.
///
/// Two layers: unit tests of the pool itself (chunking, lane ids, env
/// parsing, exception propagation, serial fallback), then the
/// determinism suite — software counter totals and the full physics
/// state of the Sedov and supernova workloads must be bit-identical for
/// FLASHHP_THREADS = 1, 2 and 4. The 4-thread hydro-sweep tests double
/// as the real workload behind the tsan CMake preset.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "hydro/hydro.hpp"
#include "par/parallel.hpp"
#include "perf/perf_context.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"
#include "support/error.hpp"
#include "support/runtime_params.hpp"
#include "tlb/machine.hpp"

namespace fhp::par {
namespace {

// Process-default execution context for construction sites: these tests
// pin lane counts with par::set_threads (the process arena tracks it);
// tests/test_runtime.cpp covers explicit runtimes.
rt::Runtime& proc() { return rt::Runtime::process_default(); }

/// Every test leaves the process back at the serial default.
class ParTest : public ::testing::Test {
 protected:
  void TearDown() override { set_threads(1); }
};

// ---------------------------------------------------------------- pool

TEST_F(ParTest, SerialDefaultAndClamping) {
  set_threads(1);
  EXPECT_EQ(threads(), 1);
  set_threads(0);  // clamped up
  EXPECT_EQ(threads(), 1);
  set_threads(-3);
  EXPECT_EQ(threads(), 1);
  set_threads(kMaxLanes + 100);  // clamped down
  EXPECT_EQ(threads(), kMaxLanes);
}

TEST_F(ParTest, ThreadsFromEnvironmentParsesAndRejects) {
  ASSERT_EQ(::setenv(kThreadsEnvVar, "3", 1), 0);
  EXPECT_EQ(threads_from_environment(), 3);
  ASSERT_EQ(::setenv(kThreadsEnvVar, "99999", 1), 0);
  EXPECT_EQ(threads_from_environment(), kMaxLanes);  // clamped
  ASSERT_EQ(::setenv(kThreadsEnvVar, "banana", 1), 0);
  EXPECT_THROW(static_cast<void>(threads_from_environment()), ConfigError);
  ASSERT_EQ(::setenv(kThreadsEnvVar, "0", 1), 0);
  EXPECT_THROW(static_cast<void>(threads_from_environment()), ConfigError);
  ASSERT_EQ(::unsetenv(kThreadsEnvVar), 0);
  EXPECT_EQ(threads_from_environment(7), 7);  // fallback when unset
}

TEST_F(ParTest, EveryIndexRunsExactlyOnce) {
  for (int lanes : {1, 2, 4, 5}) {
    set_threads(lanes);
    const std::size_t n = 103;  // deliberately not a multiple of lanes
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](int lane, std::size_t i) {
      EXPECT_GE(lane, 0);
      EXPECT_LT(lane, lanes);
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " lanes=" << lanes;
    }
  }
}

TEST_F(ParTest, StaticChunkingIsContiguousAndDeterministic) {
  set_threads(4);
  const std::size_t n = 10;
  // lane i of L owns [i*n/L, (i+1)*n/L): 0-1, 2-4, 5-6, 7-9.
  std::vector<int> lane_of(n, -1);
  std::mutex mu;
  parallel_for(n, [&](int lane, std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    lane_of[i] = lane;
  });
  const std::vector<int> expected = {0, 0, 1, 1, 1, 2, 2, 3, 3, 3};
  EXPECT_EQ(lane_of, expected);
}

TEST_F(ParTest, SerialFallbackRunsOnCallingThread) {
  set_threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(16, [&](int lane, std::size_t) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST_F(ParTest, WorkersReportDistinctLanesAndCallerIsLaneZero) {
  set_threads(4);
  std::mutex mu;
  std::set<std::thread::id> by_lane[4];
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(64, [&](int lane, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    // fhp-analyze: allow(alloc-in-region) -- test harness collecting
    // thread ids under a mutex; this is not a hot-path region
    by_lane[lane].insert(std::this_thread::get_id());
  });
  std::set<std::thread::id> all;
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(by_lane[l].size(), 1u) << "lane " << l;
    all.insert(*by_lane[l].begin());
  }
  EXPECT_EQ(all.size(), 4u);  // four distinct threads
  EXPECT_TRUE(by_lane[0].count(caller));  // caller participates as lane 0
  EXPECT_EQ(lane(), 0);  // outside a region the caller is lane 0
}

TEST_F(ParTest, FirstExceptionIsRethrownOnCaller) {
  // With 4 lanes over 32 indices, i == 2 lies in lane 0's chunk (the
  // caller) and i == 17 in lane 2's (a worker); the caller-side throw
  // must still wait out the completion handshake before rethrowing.
  for (int lanes : {1, 4}) {
    for (std::size_t bad : {std::size_t{2}, std::size_t{17}}) {
      set_threads(lanes);
      EXPECT_THROW(
          parallel_for(32,
                       [&](int, std::size_t i) {
                         if (i == bad) throw NumericsError("lane blew up");
                       }),
          NumericsError)
          << "lanes=" << lanes << " bad=" << bad;
      // The pool survives a throwing region and runs the next one.
      std::atomic<int> count{0};
      parallel_for(8, [&](int, std::size_t) { count.fetch_add(1); });
      EXPECT_EQ(count.load(), 8);
    }
  }
}

TEST_F(ParTest, NestedRegionsAreRejectedNotCorrupted) {
  set_threads(2);
  EXPECT_THROW(parallel_for(8,
                            [&](int, std::size_t) {
                              parallel_for(
                                  4, [](int, std::size_t) {});
                            }),
               ConfigError);
  // The guard released and the pool handshake stayed intact.
  std::atomic<int> count{0};
  parallel_for(8, [&](int, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST_F(ParTest, ParallelForBlocksVisitsTheBlockList) {
  set_threads(3);
  const std::vector<int> blocks = {5, 9, 2, 41, 7};
  std::mutex mu;
  std::vector<int> seen;
  parallel_for_blocks(blocks, [&](int, int b) {
    std::lock_guard<std::mutex> lock(mu);
    // fhp-analyze: allow(alloc-in-region) -- test harness recording the
    // visited block list under a mutex; not a hot-path region
    seen.push_back(b);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{2, 5, 7, 9, 41}));
}

TEST_F(ParTest, RuntimeParamRoundTrip) {
  RuntimeParams rp;
  declare_runtime_params(rp);
  rp.set_int("par.threads", 2);
  apply_runtime_params(rp);
  EXPECT_EQ(threads(), 2);
}

// ---------------------------------------------------------- determinism

/// Bit-exact fingerprint of the leaf-block solution: every unk value of
/// every leaf, FNV-folded so any single-bit difference shows.
std::uint64_t unk_fingerprint(mesh::AmrMesh& m) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    for (int v = 0; v < m.unk().nvar(); ++v) {
      const std::uint64_t bits =
          std::bit_cast<std::uint64_t>(m.unk().at(v, i, j, k, b));
      h = (h ^ bits) * 0x100000001b3ull;
    }
  });
  return h;
}

struct SedovRun {
  std::uint64_t state = 0;       ///< physics fingerprint
  double sim_time = 0;           ///< final time
  perf::CounterSet counters{};   ///< modeled software counter totals
};

/// The 3-d Hydro workload in miniature, at a given lane count, with the
/// machine model fed so counter totals are part of the contract.
SedovRun run_sedov(int nthreads) {
  set_threads(nthreads);
  perf::PerfContext perf;
  tlb::Machine machine({}, &perf);
  sim::SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 3;
  params.maxblocks = 300;
  sim::SedovSetup setup(params, mem::HugePolicy::kNone, proc());
  hydro::HydroSolver hydro(setup.mesh(), setup.eos());
  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = 12;
  opts.trace_sample = 2;
  opts.verbose = false;
  sim::DriverUnits units;
  units.machine = &machine;
  units.perf = &perf;
  units.eos_trace = [&setup](tlb::Tracer& t, int b) {
    const mesh::MeshConfig& c = setup.mesh().config();
    setup.mesh().unk().trace_sweep(t, b, c.ilo(), c.ihi(), c.jlo(), c.jhi(),
                                   c.klo(), c.khi(), 8, 6);
  };
  sim::Driver driver(setup.mesh(), hydro, timers, opts, units);
  driver.evolve();
  SedovRun r;
  r.state = unk_fingerprint(setup.mesh());
  r.sim_time = driver.sim_time();
  r.counters = perf.snapshot();
  return r;
}

TEST_F(ParTest, SedovIsBitIdenticalAcrossThreadCounts) {
  const SedovRun serial = run_sedov(1);
  for (int nthreads : {2, 4}) {
    const SedovRun threaded = run_sedov(nthreads);
    EXPECT_EQ(threaded.state, serial.state) << "threads=" << nthreads;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(threaded.sim_time),
              std::bit_cast<std::uint64_t>(serial.sim_time))
        << "threads=" << nthreads;
    for (std::size_t e = 0; e < perf::kNumEvents; ++e) {
      EXPECT_EQ(threaded.counters.values[e], serial.counters.values[e])
          << "threads=" << nthreads << " event=" << e;
    }
  }
}

/// The EOS workload in miniature: flame + gravity + tabulated EOS. The
/// flame's energy release is a floating-point reduction — per-block
/// partials summed serially in leaf order — so it too must match to the
/// last bit.
std::pair<std::uint64_t, std::uint64_t> run_supernova(int nthreads) {
  set_threads(nthreads);
  sim::SupernovaParams p;
  p.max_level = 3;
  p.maxblocks = 400;
  p.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  p.table_cache = "helm_table_test.bin";
  sim::SupernovaSetup setup(p, mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(m, setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());
  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = 6;
  opts.trace_sample = 0;
  opts.verbose = false;
  opts.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + sim::snvar::kPhi};
  sim::DriverUnits units;
  units.flame = &setup.flame();
  units.gravity = &setup.gravity();
  sim::Driver driver(m, hydro, timers, opts, units);
  driver.evolve();
  return {unk_fingerprint(m),
          std::bit_cast<std::uint64_t>(setup.flame().energy_released())};
}

TEST_F(ParTest, SupernovaIsBitIdenticalAcrossThreadCounts) {
  const auto serial = run_supernova(1);
  for (int nthreads : {2, 4}) {
    const auto threaded = run_supernova(nthreads);
    EXPECT_EQ(threaded.first, serial.first) << "threads=" << nthreads;
    EXPECT_EQ(threaded.second, serial.second)
        << "flame energy differs, threads=" << nthreads;
  }
}

/// The tsan workload: a real 4-thread hydro sweep over a refined mesh,
/// exercising pool handshakes, per-lane pencil buffers and EOS rows,
/// guard-cell fill, and sharded counters under the race detector.
TEST_F(ParTest, FourThreadHydroSweepIsClean) {
  const SedovRun run = run_sedov(4);
  EXPECT_NE(run.state, 0u);
  EXPECT_GT(run.sim_time, 0.0);
  EXPECT_GT(run.counters[perf::Event::kCycles], 0u);
}

}  // namespace
}  // namespace fhp::par
