/// \file test_support.cpp
/// \brief Unit tests for the support library.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/runtime_params.hpp"
#include "support/string_util.hpp"
#include "support/table_writer.hpp"

namespace fhp {
namespace {

// ---------------------------------------------------------------- strings

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWsDropsEmptyFields) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("hugepages-2048kB", "hugepages-"));
  EXPECT_FALSE(starts_with("huge", "hugepages-"));
}

TEST(StringUtil, ParseIntAcceptsOnlyCleanIntegers) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("42x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(StringUtil, ParseRealHandlesFortranExponents) {
  EXPECT_DOUBLE_EQ(*parse_real("1.5e3"), 1500.0);
  EXPECT_DOUBLE_EQ(*parse_real("2.0d9"), 2.0e9);  // FLASH flash.par style
  EXPECT_DOUBLE_EQ(*parse_real("-3.5D-2"), -3.5e-2);
  EXPECT_FALSE(parse_real("abc").has_value());
  EXPECT_FALSE(parse_real("1.0 trailing").has_value());
}

TEST(StringUtil, ParseBoolAcceptsFortranSpellings) {
  EXPECT_EQ(parse_bool(".true."), true);
  EXPECT_EQ(parse_bool(".FALSE."), false);
  EXPECT_EQ(parse_bool("Yes"), true);
  EXPECT_EQ(parse_bool("off"), false);
  EXPECT_FALSE(parse_bool("maybe").has_value());
}

TEST(StringUtil, ParseSizeBytes) {
  EXPECT_EQ(parse_size_bytes("2M"), 2ull << 20);
  EXPECT_EQ(parse_size_bytes("512k"), 512ull << 10);
  EXPECT_EQ(parse_size_bytes("1G"), 1ull << 30);
  EXPECT_EQ(parse_size_bytes("123"), 123ull);
  EXPECT_FALSE(parse_size_bytes("-1M").has_value());
  EXPECT_FALSE(parse_size_bytes("").has_value());
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2ull << 20), "2.0 MiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.0 GiB");
}

// ------------------------------------------------------------------ errors

TEST(Error, RequireThrowsConfigErrorWithContext) {
  try {
    FHP_REQUIRE(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("impossible arithmetic"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckThrowsInternalError) {
  EXPECT_THROW(FHP_CHECK(false, "invariant"), InternalError);
}

TEST(Error, SystemErrorCarriesErrno) {
  const SystemError e("open failed", ENOENT);
  EXPECT_EQ(e.errno_value(), ENOENT);
}

// --------------------------------------------------------- runtime params

TEST(RuntimeParams, DeclareAndGetRoundTrip) {
  RuntimeParams rp;
  rp.declare_bool("use_flame", true);
  rp.declare_int("nsteps", 50);
  rp.declare_real("cfl", 0.8);
  rp.declare_string("geometry", "cylindrical");
  EXPECT_TRUE(rp.get_bool("use_flame"));
  EXPECT_EQ(rp.get_int("nsteps"), 50);
  EXPECT_DOUBLE_EQ(rp.get_real("cfl"), 0.8);
  EXPECT_EQ(rp.get_string("geometry"), "cylindrical");
}

TEST(RuntimeParams, NamesAreCaseInsensitive) {
  RuntimeParams rp;
  rp.declare_real("CFL", 0.8);
  EXPECT_DOUBLE_EQ(rp.get_real("cfl"), 0.8);
  rp.set_real("Cfl", 0.5);
  EXPECT_DOUBLE_EQ(rp.get_real("CFL"), 0.5);
}

TEST(RuntimeParams, UnknownNameThrows) {
  RuntimeParams rp;
  EXPECT_THROW((void)rp.get_int("nope"), ConfigError);
  EXPECT_THROW(rp.set_int("nope", 1), ConfigError);
}

TEST(RuntimeParams, TypeMismatchThrows) {
  RuntimeParams rp;
  rp.declare_int("n", 1);
  EXPECT_THROW((void)rp.get_bool("n"), ConfigError);
  EXPECT_THROW((void)rp.get_string("n"), ConfigError);
  EXPECT_THROW(rp.set_real("n", 1.0), ConfigError);
}

TEST(RuntimeParams, GetRealPromotesInt) {
  RuntimeParams rp;
  rp.declare_int("n", 7);
  EXPECT_DOUBLE_EQ(rp.get_real("n"), 7.0);
}

TEST(RuntimeParams, RedeclareSameTypeKeepsOverride) {
  RuntimeParams rp;
  rp.declare_int("n", 1);
  rp.set_int("n", 5);
  rp.declare_int("n", 1);  // idempotent
  EXPECT_EQ(rp.get_int("n"), 5);
  EXPECT_THROW(rp.declare_real("n", 1.0), ConfigError);
}

TEST(RuntimeParams, ReadStringParsesFlashParGrammar) {
  RuntimeParams rp;
  rp.declare_real("rho_c", 1.0);
  rp.declare_int("lrefine_max", 1);
  rp.declare_bool("useflame", false);
  rp.declare_string("run_comment", "");
  rp.read_string(
      "# supernova run\n"
      "rho_c = 2.0e9   # central density\n"
      "lrefine_max = 5\n"
      "useflame = .true.\n"
      "run_comment = \"hybrid # CONe WD\"\n");
  EXPECT_DOUBLE_EQ(rp.get_real("rho_c"), 2.0e9);
  EXPECT_EQ(rp.get_int("lrefine_max"), 5);
  EXPECT_TRUE(rp.get_bool("useflame"));
  EXPECT_EQ(rp.get_string("run_comment"), "hybrid # CONe WD");
}

TEST(RuntimeParams, ReadStringRejectsUnknownUnlessAllowed) {
  RuntimeParams rp;
  EXPECT_THROW(rp.read_string("mystery = 1\n"), ConfigError);
  rp.read_string("mystery = 1\n", /*allow_unknown=*/true);
  EXPECT_EQ(rp.get_string("mystery"), "1");
}

TEST(RuntimeParams, ReadStringRejectsGarbageLines) {
  RuntimeParams rp;
  EXPECT_THROW(rp.read_string("not an assignment\n"), ConfigError);
  EXPECT_THROW(rp.read_string("= 3\n"), ConfigError);
}

TEST(RuntimeParams, CommandLineOverridesAndPositionals) {
  RuntimeParams rp;
  rp.declare_int("nsteps", 10);
  rp.declare_bool("verbose", false);
  const char* argv[] = {"prog", "--nsteps=99", "input.par", "--verbose"};
  const auto positional = rp.apply_command_line(4, argv);
  EXPECT_EQ(rp.get_int("nsteps"), 99);
  EXPECT_TRUE(rp.get_bool("verbose"));
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "input.par");
}

TEST(RuntimeParams, CommandLineUnknownOptionThrows) {
  RuntimeParams rp;
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(rp.apply_command_line(2, argv), ConfigError);
}

TEST(RuntimeParams, IsOverriddenTracksChanges) {
  RuntimeParams rp;
  rp.declare_real("cfl", 0.8);
  EXPECT_FALSE(rp.is_overridden("cfl"));
  rp.set_real("cfl", 0.6);
  EXPECT_TRUE(rp.is_overridden("cfl"));
}

TEST(RuntimeParams, DumpListsEverything) {
  RuntimeParams rp;
  rp.declare_int("alpha", 1, "doc for alpha");
  rp.declare_string("beta", "x");
  std::ostringstream os;
  rp.dump(os);
  EXPECT_NE(os.str().find("alpha = 1"), std::string::npos);
  EXPECT_NE(os.str().find("doc for alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, NormalHasUnitVarianceApproximately) {
  Rng rng(99);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, JumpYieldsIndependentStream) {
  Rng a(5);
  Rng b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ------------------------------------------------------------ table writer

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter t("title");
  t.set_header({"a", "long-header"});
  t.add_row({"xx", "1"});
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| xx"), std::string::npos);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TableWriter, CsvQuotesSpecialCharacters) {
  TableWriter t;
  t.set_header({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableWriter, FormatMeasureMatchesPaperStyle) {
  EXPECT_EQ(format_measure(1.25e11), "1.25e+11");
  EXPECT_EQ(format_measure(0.47), "0.47");
  EXPECT_EQ(format_measure(69.7), "69.7");
  EXPECT_EQ(format_measure(0.0), "0");
  EXPECT_EQ(format_measure(2.34e7), "2.34e+07");
}

TEST(TableWriter, AsciiBarScalesAndCaps) {
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10).size(), 5u);
  EXPECT_EQ(ascii_bar(2.0, 1.0, 10).size(), 10u);  // capped
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10).size(), 0u);
}

}  // namespace
}  // namespace fhp
