/// \file test_page_pool.cpp
/// \brief mem::PagePool: lifecycle contracts, exhaustion degradation,
///        NUMA placement, status reporting, counter events.
///
/// All sysfs-derived state comes from fixture trees (injectable roots) or
/// explicit synthetic inventories, so every test runs unprivileged and
/// deterministically. Decisions are asserted via plan(); the real-mapping
/// truthfulness tests use alloc() and only assert invariants that hold
/// whatever the kernel grants (never a crash, shortfalls counted).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "mem/arena.hpp"
#include "mem/allocator.hpp"
#include "mem/numa.hpp"
#include "mem/page_pool.hpp"
#include "support/error.hpp"

namespace fhp::mem {
namespace {

std::string sysfs_fixture(const std::string& rel) {
  return std::string(FHP_TEST_FIXTURE_DIR) + "/sysfs/" + rel;
}

/// A synthetic single-node inventory with one 2 MiB pool.
std::vector<NodeHugePools> one_node_2m(std::size_t nr, std::size_t free) {
  HugetlbPool p;
  p.page_bytes = kPage2M;
  p.nr_hugepages = nr;
  p.free_hugepages = free;
  return {{0, {p}}};
}

/// Config over synthetic inventory; THP tier present via the fixture.
PagePoolConfig synthetic_config(std::vector<NodeHugePools> inventory,
                                bool thp = true) {
  PagePoolConfig cfg;
  cfg.inventory = std::move(inventory);
  cfg.hugepages_root = "/flashhp-nonexistent";
  cfg.node_root = "/flashhp-nonexistent";
  cfg.thp_root = thp ? sysfs_fixture("thp") : "/flashhp-nonexistent";
  return cfg;
}

/// CounterSink that accumulates every published delta.
class RecordingSink final : public perf::CounterSink {
 public:
  void sink_counters(const perf::CounterSet& delta) noexcept override {
    totals_ += delta;
  }
  [[nodiscard]] std::uint64_t operator[](perf::Event e) const noexcept {
    return totals_[e];
  }

 private:
  perf::CounterSet totals_;
};

// ---------------------------------------------------------------- numa.hpp

TEST(NodeInventory, ReadsPerNodeFixtureTree) {
  const auto nodes = node_hugetlb_pools(sysfs_fixture("two-node"));
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0].node, 0);
  ASSERT_EQ(nodes[0].pools.size(), 1u);
  EXPECT_EQ(nodes[0].pools[0].page_bytes, kPage2M);
  EXPECT_EQ(nodes[0].pools[0].nr_hugepages, 4u);
  EXPECT_EQ(nodes[0].pools[0].free_hugepages, 0u);

  EXPECT_EQ(nodes[1].node, 1);
  ASSERT_EQ(nodes[1].pools.size(), 2u);  // sorted by page size: 2M then 1G
  EXPECT_EQ(nodes[1].pools[0].page_bytes, kPage2M);
  EXPECT_EQ(nodes[1].pools[0].free_hugepages, 32u);
  EXPECT_EQ(nodes[1].pools[1].page_bytes, kPage1G);
  EXPECT_EQ(nodes[1].pools[1].free_hugepages, 1u);
}

TEST(NodeInventory, MissingRootYieldsEmpty) {
  EXPECT_TRUE(node_hugetlb_pools("/flashhp-nonexistent").empty());
}

TEST(NodeInventory, ParseNodeDirname) {
  EXPECT_EQ(parse_node_dirname("node0"), 0);
  EXPECT_EQ(parse_node_dirname("node17"), 17);
  EXPECT_FALSE(parse_node_dirname("node").has_value());
  EXPECT_FALSE(parse_node_dirname("cpu0").has_value());
  EXPECT_FALSE(parse_node_dirname("nodeX").has_value());
}

TEST(PlacementPolicyNames, RoundTripAndAliases) {
  EXPECT_EQ(to_string(PlacementPolicy::kLocalFirst), "local-first");
  EXPECT_EQ(to_string(PlacementPolicy::kRemoteHugeFirst), "remote-huge-first");
  EXPECT_EQ(parse_placement_policy("local-first"),
            PlacementPolicy::kLocalFirst);
  EXPECT_EQ(parse_placement_policy("Remote-Huge-First"),
            PlacementPolicy::kRemoteHugeFirst);
  EXPECT_EQ(parse_placement_policy("remote"),
            PlacementPolicy::kRemoteHugeFirst);
  EXPECT_FALSE(parse_placement_policy("nearest").has_value());
}

// ---------------------------------------------------------- pool spec knob

TEST(PoolSpec, OffAndCountsAndExplicitSizes) {
  bool enabled = true;
  std::vector<PoolReservation> res;

  parse_pool_spec("off", enabled, res);
  EXPECT_FALSE(enabled);
  EXPECT_TRUE(res.empty());

  parse_pool_spec("16", enabled, res);
  EXPECT_TRUE(enabled);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].page_bytes, kPage2M);
  EXPECT_EQ(res[0].pages, 16u);

  parse_pool_spec("2M:4,1G:1", enabled, res);
  EXPECT_TRUE(enabled);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].page_bytes, kPage2M);
  EXPECT_EQ(res[0].pages, 4u);
  EXPECT_EQ(res[1].page_bytes, kPage1G);
  EXPECT_EQ(res[1].pages, 1u);
}

TEST(PoolSpec, JunkThrowsConfigError) {
  bool enabled = true;
  std::vector<PoolReservation> res;
  EXPECT_THROW(parse_pool_spec("2M", enabled, res), ConfigError);
  EXPECT_THROW(parse_pool_spec("2M:x", enabled, res), ConfigError);
  EXPECT_THROW(parse_pool_spec("3Q:4", enabled, res), ConfigError);
}

// ------------------------------------------------------- lifecycle contracts

TEST(PagePoolLifecycle, DoubleInitThrows) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  EXPECT_THROW(pool.init(synthetic_config(one_node_2m(4, 4))), ConfigError);
}

TEST(PagePoolLifecycle, UseAfterFiniThrows) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  pool.fini();
  EXPECT_THROW((void)pool.plan(kPage2M, HugePolicy::kHugetlbfs), ConfigError);
  EXPECT_THROW((void)pool.alloc(kPage2M, HugePolicy::kNone), ConfigError);
  EXPECT_THROW(pool.init(synthetic_config(one_node_2m(4, 4))), ConfigError);
}

TEST(PagePoolLifecycle, FiniContracts) {
  PagePool never_inited;
  EXPECT_THROW(never_inited.fini(), ConfigError);

  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  pool.fini();
  EXPECT_NO_THROW(pool.fini());  // idempotent once finished
}

TEST(PagePoolLifecycle, StatusValidInAnyState) {
  PagePool pool;
  EXPECT_EQ(pool.status().state, "idle");
  pool.init(synthetic_config(one_node_2m(4, 4)));
  EXPECT_EQ(pool.status().state, "ready");
  pool.fini();
  EXPECT_EQ(pool.status().state, "finished");
}

// ------------------------------------------------------- degradation ladder

TEST(PagePoolDegradation, HealthyPoolPlacesLocalHuge) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  const PoolDecision d = pool.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d.tier, Backing::kHugetlbfs);
  EXPECT_EQ(d.page_bytes, kPage2M);
  EXPECT_EQ(d.node, 0);
  EXPECT_FALSE(d.remote);
  EXPECT_STREQ(d.reason, "local-huge");
  EXPECT_EQ(pool.counters().huge_allocs, 1u);
  EXPECT_EQ(pool.counters().exhausted_events, 0u);
}

TEST(PagePoolDegradation, ExhaustedPoolFallsToThpThenBase) {
  // THP tier available: exhaustion degrades to THP.
  PagePool with_thp;
  with_thp.init(synthetic_config(one_node_2m(4, 0), /*thp=*/true));
  const PoolDecision d1 = with_thp.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d1.tier, Backing::kThp);
  EXPECT_STREQ(d1.reason, "pool-exhausted->thp");
  EXPECT_EQ(with_thp.counters().exhausted_events, 1u);
  EXPECT_EQ(with_thp.counters().thp_fallbacks, 1u);
  EXPECT_EQ(with_thp.counters().base_fallbacks, 0u);

  // No THP tier: exhaustion degrades all the way to base pages.
  PagePool no_thp;
  no_thp.init(synthetic_config(one_node_2m(4, 0), /*thp=*/false));
  const PoolDecision d2 = no_thp.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d2.tier, Backing::kSmallPages);
  EXPECT_STREQ(d2.reason, "pool-exhausted->base");
  EXPECT_EQ(no_thp.counters().exhausted_events, 1u);
  EXPECT_EQ(no_thp.counters().base_fallbacks, 1u);
}

TEST(PagePoolDegradation, MirrorDecrementsUntilExhaustion) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(2, 2)));
  EXPECT_EQ(pool.plan(kPage2M, HugePolicy::kHugetlbfs).tier,
            Backing::kHugetlbfs);
  EXPECT_EQ(pool.plan(kPage2M, HugePolicy::kHugetlbfs).tier,
            Backing::kHugetlbfs);
  // Third request: mirror is dry even though sysfs never changed.
  const PoolDecision d = pool.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d.tier, Backing::kThp);
  EXPECT_EQ(pool.counters().huge_allocs, 2u);
  EXPECT_EQ(pool.counters().exhausted_events, 1u);
  EXPECT_EQ(pool.status().inventory[0].pools[0].free_hugepages, 0u);
}

TEST(PagePoolDegradation, MultiPageRequestsAccountCorrectly) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(8, 3)));
  // 5 MiB needs 3 x 2 MiB pages: exactly drains the pool.
  const PoolDecision d = pool.plan(5ull << 20, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d.tier, Backing::kHugetlbfs);
  EXPECT_EQ(pool.status().inventory[0].pools[0].free_hugepages, 0u);
  EXPECT_EQ(pool.plan(kPage2M, HugePolicy::kHugetlbfs).tier, Backing::kThp);
}

TEST(PagePoolDegradation, ExplicitPoliciesBypassThePools) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  const PoolDecision none = pool.plan(kPage2M, HugePolicy::kNone);
  EXPECT_EQ(none.tier, Backing::kSmallPages);
  EXPECT_STREQ(none.reason, "policy=none");
  const PoolDecision thp = pool.plan(kPage2M, HugePolicy::kThp);
  EXPECT_EQ(thp.tier, Backing::kThp);
  // Neither touched the hugetlb mirror or the counters.
  EXPECT_EQ(pool.counters().huge_allocs, 0u);
  EXPECT_EQ(pool.status().inventory[0].pools[0].free_hugepages, 4u);
}

TEST(PagePoolDegradation, DisabledPoolIsPassThrough) {
  PagePoolConfig cfg = synthetic_config(one_node_2m(4, 4));
  cfg.enabled = false;
  PagePool pool;
  pool.init(cfg);
  const PoolDecision d = pool.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_STREQ(d.reason, "pool-disabled");
  EXPECT_EQ(pool.counters().huge_allocs, 0u);
  EXPECT_EQ(pool.status().inventory[0].pools[0].free_hugepages, 4u);
}

// ----------------------------------------------------------- NUMA placement

TEST(PagePoolPlacement, LocalFirstDegradesRatherThanLeavingTheNode) {
  PagePoolConfig cfg = synthetic_config({});
  cfg.node_root = sysfs_fixture("two-node");
  cfg.inventory.clear();
  cfg.local_node = 0;
  cfg.placement = PlacementPolicy::kLocalFirst;
  PagePool pool;
  pool.init(cfg);
  // node0's pool is dry (fixture: 0/4 free); local-first never looks at
  // node1's 32 free pages.
  const PoolDecision d = pool.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d.tier, Backing::kThp);
  EXPECT_STREQ(d.reason, "pool-exhausted->thp");
  EXPECT_EQ(pool.counters().remote_huge_allocs, 0u);
}

TEST(PagePoolPlacement, RemoteHugeFirstTakesTheRemotePool) {
  PagePoolConfig cfg = synthetic_config({});
  cfg.node_root = sysfs_fixture("two-node");
  cfg.inventory.clear();
  cfg.local_node = 0;
  cfg.placement = PlacementPolicy::kRemoteHugeFirst;
  PagePool pool;
  pool.init(cfg);
  const PoolDecision d = pool.plan(kPage2M, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d.tier, Backing::kHugetlbfs);
  EXPECT_EQ(d.page_bytes, kPage2M);
  EXPECT_EQ(d.node, 1);
  EXPECT_TRUE(d.remote);
  EXPECT_STREQ(d.reason, "remote-huge");
  EXPECT_EQ(pool.counters().huge_allocs, 1u);
  EXPECT_EQ(pool.counters().remote_huge_allocs, 1u);
}

TEST(PagePoolPlacement, LargeRequestUsesTheRemoteGiganticPool) {
  PagePoolConfig cfg = synthetic_config({});
  cfg.node_root = sysfs_fixture("two-node");
  cfg.inventory.clear();
  cfg.local_node = 0;
  cfg.placement = PlacementPolicy::kRemoteHugeFirst;
  PagePool pool;
  pool.init(cfg);
  // 512 MiB needs 256 x 2 MiB (node1 has 32 free) but fits the one free
  // 1 GiB gigantic page.
  const PoolDecision d = pool.plan(512ull << 20, HugePolicy::kHugetlbfs);
  EXPECT_EQ(d.tier, Backing::kHugetlbfs);
  EXPECT_EQ(d.page_bytes, kPage1G);
  EXPECT_EQ(d.node, 1);
  EXPECT_TRUE(d.remote);
}

TEST(PagePoolPlacement, AsymmetricInventoryDrainsNodeByNode) {
  // node0 has 1 free page, node1 has 2: remote-huge-first uses the local
  // page first, then crosses over, then degrades.
  HugetlbPool local;
  local.page_bytes = kPage2M;
  local.nr_hugepages = 4;
  local.free_hugepages = 1;
  HugetlbPool remote = local;
  remote.free_hugepages = 2;
  PagePoolConfig cfg = synthetic_config({{0, {local}}, {1, {remote}}});
  cfg.placement = PlacementPolicy::kRemoteHugeFirst;
  PagePool pool;
  pool.init(cfg);

  EXPECT_FALSE(pool.plan(kPage2M, HugePolicy::kHugetlbfs).remote);
  EXPECT_TRUE(pool.plan(kPage2M, HugePolicy::kHugetlbfs).remote);
  EXPECT_TRUE(pool.plan(kPage2M, HugePolicy::kHugetlbfs).remote);
  EXPECT_EQ(pool.plan(kPage2M, HugePolicy::kHugetlbfs).tier, Backing::kThp);
  const PoolCounters c = pool.counters();
  EXPECT_EQ(c.huge_allocs, 3u);
  EXPECT_EQ(c.remote_huge_allocs, 2u);
  EXPECT_EQ(c.exhausted_events, 1u);
}

// ------------------------------------------------------------ status report

TEST(PagePoolStatus, HugectlStyleText) {
  PagePoolConfig cfg = synthetic_config({});
  cfg.node_root = sysfs_fixture("two-node");
  cfg.inventory.clear();
  cfg.placement = PlacementPolicy::kRemoteHugeFirst;
  PagePool pool;
  pool.init(cfg);
  (void)pool.plan(kPage2M, HugePolicy::kHugetlbfs);

  const std::string expected =
      "page pool: ready placement=remote-huge-first local-node=0 "
      "thp=available\n"
      "  node0:\n"
      "    2.0 MiB pages: 0/4 free\n"
      "  node1:\n"
      "    2.0 MiB pages: 31/64 free\n"
      "    1.0 GiB pages: 1/2 free\n"
      "  allocs: huge=1 remote-huge=1 thp-fallback=0 base-fallback=0 "
      "exhausted=0 shortfall=0\n";
  EXPECT_EQ(pool.status_text(), expected);
}

TEST(PagePoolStatus, EmptyInventoryText) {
  PagePool pool;
  pool.init(synthetic_config({}));
  const std::string text = pool.status_text();
  EXPECT_NE(text.find("(no hugetlb pools configured)"), std::string::npos);
}

// ----------------------------------------------------------- counter events

TEST(PagePoolEvents, PublishedToTheConfiguredSink) {
  RecordingSink sink;
  HugetlbPool local;
  local.page_bytes = kPage2M;
  local.nr_hugepages = 2;
  local.free_hugepages = 1;
  HugetlbPool remote = local;
  PagePoolConfig cfg = synthetic_config({{0, {local}}, {1, {remote}}});
  cfg.placement = PlacementPolicy::kRemoteHugeFirst;
  cfg.sink = &sink;
  PagePool pool;
  pool.init(cfg);

  (void)pool.plan(kPage2M, HugePolicy::kHugetlbfs);  // local huge
  (void)pool.plan(kPage2M, HugePolicy::kHugetlbfs);  // remote huge
  (void)pool.plan(kPage2M, HugePolicy::kHugetlbfs);  // exhausted -> thp

  EXPECT_EQ(sink[perf::Event::kPoolHugeAllocs], 2u);
  EXPECT_EQ(sink[perf::Event::kPoolRemoteAllocs], 1u);
  EXPECT_EQ(sink[perf::Event::kPoolThpFallbacks], 1u);
  EXPECT_EQ(sink[perf::Event::kPoolBaseFallbacks], 0u);
}

// ------------------------------------------------- real mappings (alloc())

TEST(PagePoolAlloc, NeverCrashesAndCountsShortfalls) {
  // The synthetic inventory claims free 2 MiB pages; on an unprivileged
  // container the kernel will refuse MAP_HUGETLB. The contract: the
  // allocation still succeeds (degraded by MappedRegion's own ladder),
  // and the decision/backing mismatch is counted, never hidden.
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  PoolAllocation a = pool.alloc(kPage2M, HugePolicy::kHugetlbfs);
  ASSERT_TRUE(a.valid());
  ASSERT_NE(a.data(), nullptr);
  EXPECT_GE(a.size(), kPage2M);
  EXPECT_EQ(a.decision().tier, Backing::kHugetlbfs);
  static_cast<char*>(a.data())[0] = 1;  // writable
  if (a.backing() != Backing::kHugetlbfs) {
    EXPECT_EQ(pool.counters().backing_shortfalls, 1u);
  } else {
    EXPECT_EQ(pool.counters().backing_shortfalls, 0u);
  }
}

TEST(PagePoolAlloc, DecidedFallbackSkipsTheHugetlbAttempt) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 0)));  // dry -> decided THP
  PoolAllocation a = pool.alloc(kPage2M, HugePolicy::kHugetlbfs);
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.decision().tier, Backing::kThp);
  // The mapping was requested as THP, not hugetlbfs: requested_policy
  // records what was actually asked of the kernel.
  EXPECT_EQ(a.region().requested_policy(), HugePolicy::kThp);
}

TEST(PagePoolAlloc, MovedFromAllocationIsEmpty) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(4, 4)));
  PoolAllocation a = pool.alloc(kPage2M, HugePolicy::kNone);
  PoolAllocation b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) -- contract
  EXPECT_STREQ(a.decision().reason, "");
  EXPECT_EQ(a.decision().tier, Backing::kSmallPages);
}

// ---------------------------------------------- carving (Arena, HugeBuffer)

TEST(PagePoolCarving, ArenaChunksComeFromTheExplicitPool) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(64, 64)));
  Arena arena(HugePolicy::kHugetlbfs, kPage2M, &pool);
  void* p = arena.allocate(1024);
  ASSERT_NE(p, nullptr);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.chunk_count, 1u);
  // The pool recorded the decision regardless of what the kernel granted.
  EXPECT_EQ(pool.counters().huge_allocs, 1u);
  EXPECT_NE(arena.report().find("pool decision"), std::string::npos);
}

TEST(PagePoolCarving, ArenaCountsRemoteChunks) {
  HugetlbPool dry;
  dry.page_bytes = kPage2M;
  dry.nr_hugepages = 4;
  dry.free_hugepages = 0;
  HugetlbPool full = dry;
  full.free_hugepages = 16;
  PagePoolConfig cfg = synthetic_config({{0, {dry}}, {1, {full}}});
  cfg.placement = PlacementPolicy::kRemoteHugeFirst;
  PagePool pool;
  pool.init(cfg);
  Arena arena(HugePolicy::kHugetlbfs, kPage2M, &pool);
  (void)arena.allocate(1024);
  EXPECT_EQ(arena.stats().remote_chunks, 1u);
}

TEST(PagePoolCarving, HugeBufferExposesItsDecision) {
  PagePool pool;
  pool.init(synthetic_config(one_node_2m(16, 16)));
  HugeBuffer<double> buf(1024, HugePolicy::kHugetlbfs, pool);
  EXPECT_EQ(buf.size(), 1024u);
  buf[0] = 1.5;
  EXPECT_EQ(buf[0], 1.5);
  EXPECT_EQ(buf.allocation().decision().tier, Backing::kHugetlbfs);
  EXPECT_TRUE(buf.region().valid());
}

}  // namespace
}  // namespace fhp::mem
