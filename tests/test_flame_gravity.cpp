/// \file test_flame_gravity.cpp
/// \brief Tests for the ADR flame, flame-speed tables, monopole gravity
/// and the white-dwarf initial model.

#include <gtest/gtest.h>

#include <cmath>

#include "eos/eos_table.hpp"
#include "flame/adr.hpp"
#include "flame/flame_speed.hpp"
#include "gravity/monopole.hpp"
#include "gravity/white_dwarf.hpp"
#include "mesh/amr_mesh.hpp"
#include "rt/runtime.hpp"
#include "support/constants.hpp"
#include "support/error.hpp"

namespace fhp {
namespace {

// Process-default execution context for construction sites: these tests
// exercise flame and gravity physics, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

namespace c = constants;
using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kFirstScalar;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

// ------------------------------------------------------------ flame speed

TEST(FlameSpeed, FitMatchesTimmesWoosleyAnchor) {
  // At rho = 2e9, X_C = 0.5 the TW92 fit is ~92 km/s by construction.
  EXPECT_NEAR(flame::laminar_speed_fit(2.0e9, 0.5), 92.0e5, 1.0);
}

TEST(FlameSpeed, ScalesWithDensityAndCarbon) {
  const double base = flame::laminar_speed_fit(2.0e9, 0.5);
  EXPECT_NEAR(flame::laminar_speed_fit(4.0e9, 0.5) / base,
              std::pow(2.0, 0.805), 1e-6);
  EXPECT_NEAR(flame::laminar_speed_fit(2.0e9, 1.0) / base,
              std::pow(2.0, 0.889), 1e-6);
}

TEST(FlameSpeed, NeonBoostsTheSpeed) {
  EXPECT_GT(flame::laminar_speed_fit(2.0e9, 0.5, 0.06),
            flame::laminar_speed_fit(2.0e9, 0.5, 0.0));
}

TEST(FlameSpeed, TableInterpolatesTheFit) {
  const flame::FlameSpeedTable table;
  for (const double rho : {3.3e6, 4.7e8, 8.0e9}) {
    for (const double xc : {0.25, 0.5, 0.73}) {
      EXPECT_NEAR(table.speed(rho, xc) /
                      flame::laminar_speed_fit(rho, xc),
                  1.0, 5e-3)
          << "rho=" << rho << " xc=" << xc;
    }
  }
}

TEST(FlameSpeed, TableClampsOutOfRangeInputs) {
  const flame::FlameSpeedTable table(6.0, 10.0, 81, 0.2, 0.8, 25);
  // Below/above the density window the speed saturates, never explodes.
  EXPECT_DOUBLE_EQ(table.speed(1.0, 0.5), table.speed(1.0e6, 0.5));
  EXPECT_DOUBLE_EQ(table.speed(1.0e12, 0.5), table.speed(1.0e10, 0.5));
  EXPECT_DOUBLE_EQ(table.speed(2.0e9, 0.05), table.speed(2.0e9, 0.2));
}

TEST(FlameSpeed, EnhancedSpeedTakesTheMax) {
  EXPECT_DOUBLE_EQ(flame::enhanced_speed(100.0, 0.0, 1.0e9, 1.0e6), 100.0);
  const double buoyant = flame::enhanced_speed(1.0, 0.2, 1.0e9, 1.0e6);
  EXPECT_NEAR(buoyant, 0.5 * std::sqrt(0.2 * 1.0e9 * 1.0e6), 1e-6);
}

TEST(FlameSpeed, RejectsBadInputs) {
  EXPECT_THROW(flame::laminar_speed_fit(-1.0, 0.5), ConfigError);
  EXPECT_THROW(flame::laminar_speed_fit(1.0e9, 1.5), ConfigError);
}

// -------------------------------------------------------------- ADR flame

mesh::MeshConfig flame_config() {
  mesh::MeshConfig cfg;
  cfg.ndim = 2;
  cfg.nxb = 16;
  cfg.nyb = 16;
  cfg.nguard = 4;
  cfg.nscalars = 3;  // phi, fuel, ash
  cfg.maxblocks = 64;
  cfg.max_level = 1;
  cfg.nroot = {4, 1, 1};
  cfg.lo = {0.0, 0.0, 0.0};
  cfg.hi = {4.0e7, 1.0e7, 1.0};  // 400 km x 100 km
  return cfg;
}

/// Plant a planar flame front at x = x0 in a uniform medium.
void plant_front(mesh::AmrMesh& m, double x0, double rho) {
  const mesh::MeshConfig& cfg = m.config();
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    auto& unk = m.unk();
    const double x = m.xcenter(b, i);
    unk.at(kDens, i, j, k, b) = rho;
    unk.at(kEner, i, j, k, b) = 1.0e17;
    unk.at(kEint, i, j, k, b) = 1.0e17;
    const double width = 2.0 * m.dx(b, 0);
    const double phi = 0.5 * (1.0 - std::tanh((x - x0) / width));
    unk.at(kFirstScalar + 0, i, j, k, b) = phi;
    unk.at(kFirstScalar + 1, i, j, k, b) = 0.5 * (1.0 - phi);
    unk.at(kFirstScalar + 2, i, j, k, b) = 0.5 * phi;
  });
  (void)cfg;
  m.fill_guardcells();
}

/// Locate the phi = 0.5 crossing along the x axis.
double front_position(mesh::AmrMesh& m) {
  const mesh::MeshConfig& cfg = m.config();
  double pos = 0.0;
  for (int b : m.tree().leaves_morton()) {
    for (int i = cfg.ilo(); i < cfg.ihi(); ++i) {
      const double phi = m.unk().at(kFirstScalar, i, cfg.jlo(), 0, b);
      const double phi_next =
          i + 1 < cfg.ihi() ? m.unk().at(kFirstScalar, i + 1, cfg.jlo(), 0, b)
                            : phi;
      if (phi >= 0.5 && phi_next < 0.5) {
        const double frac = (phi - 0.5) / std::max(1e-30, phi - phi_next);
        pos = std::max(pos, m.xcenter(b, i) + frac * m.dx(b, 0));
      }
    }
  }
  return pos;
}

TEST(AdrFlame, FrontPropagatesAtThePrescribedSpeed) {
  mesh::AmrMesh m(flame_config(), mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  const double rho = 1.0e9;
  plant_front(m, 1.0e7, rho);

  const flame::FlameSpeedTable speeds;
  flame::AdrOptions opts;
  opts.q_burn = 0.0;  // isolate the propagation (no feedback channel here)
  flame::AdrFlame flame(m, speeds, opts);

  const double s = speeds.speed(rho, 0.5);
  const double dx = m.dx(0, 0);
  const double dt = 0.02 * dx / s;  // well under the diffusion limit
  // Let the planted profile relax to the traveling-wave shape first.
  for (int n = 0; n < 200; ++n) {
    m.fill_guardcells();
    flame.advance(dt);
  }
  const double x0 = front_position(m);
  const int nsteps = 600;
  for (int n = 0; n < nsteps; ++n) {
    m.fill_guardcells();
    flame.advance(dt);
  }
  const double x1 = front_position(m);
  const double measured = (x1 - x0) / (nsteps * dt);
  // The discrete bistable front at a ~4-zone width runs ~10% fast; model
  // flames are calibrated to this level (Vladimirova et al. 2006).
  EXPECT_NEAR(measured / s, 1.0, 0.15);
}

TEST(AdrFlame, ReleasesEnergyAndConvertsFuel) {
  mesh::AmrMesh m(flame_config(), mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  plant_front(m, 1.0e7, 1.0e9);
  const flame::FlameSpeedTable speeds;
  flame::AdrOptions opts;
  opts.q_burn = 4.0e17;
  flame::AdrFlame flame(m, speeds, opts);

  const double fuel0 = m.integrate_product(kDens, kFirstScalar + 1);
  const double dt = 0.05 * m.dx(0, 0) / speeds.speed(1.0e9, 0.5);
  for (int n = 0; n < 100; ++n) {
    m.fill_guardcells();
    flame.advance(dt);
  }
  const double fuel1 = m.integrate_product(kDens, kFirstScalar + 1);
  EXPECT_LT(fuel1, fuel0);
  EXPECT_GT(flame.energy_released(), 0.0);
  // Energy bookkeeping: q_burn * burned fuel mass == released energy.
  EXPECT_NEAR(flame.energy_released() / (opts.q_burn * (fuel0 - fuel1)),
              1.0, 0.02);
}

TEST(AdrFlame, QuenchesBelowDensityFloor) {
  mesh::AmrMesh m(flame_config(), mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  plant_front(m, 1.0e7, 1.0e4);  // far below rho_min = 1e6
  const flame::FlameSpeedTable speeds;
  flame::AdrFlame flame(m, speeds, {});
  const double x0 = front_position(m);
  for (int n = 0; n < 50; ++n) {
    m.fill_guardcells();
    flame.advance(1e-4);
  }
  EXPECT_DOUBLE_EQ(front_position(m), x0);
  EXPECT_DOUBLE_EQ(flame.energy_released(), 0.0);
}

TEST(AdrFlame, PhiStaysInUnitInterval) {
  mesh::AmrMesh m(flame_config(), mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  plant_front(m, 2.0e7, 1.0e9);
  const flame::FlameSpeedTable speeds;
  flame::AdrFlame flame(m, speeds, {});
  const double dt = 0.2 * m.dx(0, 0) / speeds.speed(1.0e9, 0.5);
  for (int n = 0; n < 200; ++n) {
    m.fill_guardcells();
    flame.advance(dt);
  }
  const mesh::MeshConfig& cfg = m.config();
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double phi = m.unk().at(kFirstScalar, i, j, k, b);
    ASSERT_GE(phi, 0.0);
    ASSERT_LE(phi, 1.0);
  });
  (void)cfg;
}

TEST(AdrFlame, ScalarSlotValidation) {
  mesh::AmrMesh m(flame_config(), mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  const flame::FlameSpeedTable speeds;
  flame::AdrOptions bad;
  bad.phi_scalar = 7;  // only 3 scalars configured
  EXPECT_THROW(flame::AdrFlame(m, speeds, bad), ConfigError);
}

// ---------------------------------------------------------------- gravity

mesh::MeshConfig gravity_config() {
  mesh::MeshConfig cfg;
  cfg.ndim = 2;
  cfg.nxb = 16;
  cfg.nyb = 16;
  cfg.nguard = 4;
  cfg.maxblocks = 64;
  cfg.max_level = 2;
  cfg.geometry = mesh::Geometry::kCylindrical;
  cfg.nroot = {1, 2, 1};
  cfg.lo = {0.0, -1.0e9, 0.0};
  cfg.hi = {1.0e9, 1.0e9, 1.0};
  cfg.bc[0][0] = mesh::Bc::kAxis;
  return cfg;
}

TEST(MonopoleGravity, UniformSphereMatchesAnalyticProfile) {
  mesh::AmrMesh m(gravity_config(), mem::HugePolicy::kNone,
                  proc().layout(), proc().page_pool());
  const double rho0 = 1.0e7, r_star = 5.0e8;
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double r = m.xcenter(b, i);
    const double z = m.ycenter(b, j);
    const double rad = std::sqrt(r * r + z * z);
    m.unk().at(kDens, i, j, k, b) = rad < r_star ? rho0 : 1e-10;
  });

  gravity::MonopoleGravity grav({0.0, 0.0, 0.0}, 1024);
  grav.update(m);

  const double m_star = 4.0 / 3.0 * M_PI * r_star * r_star * r_star * rho0;
  // ~8 cells across the stellar radius: expect a few percent
  // of surface-cell quantization.
  EXPECT_NEAR(grav.total_mass() / m_star, 1.0, 0.08);
  // Inside: g = (4/3) pi G rho r; outside: g = G M / r^2.
  const double r_in = 2.5e8;
  EXPECT_NEAR(grav.g_at(r_in) /
                  (4.0 / 3.0 * M_PI * c::kGravitational * rho0 * r_in),
              1.0, 0.08);
  const double r_out = 8.0e8;
  EXPECT_NEAR(grav.g_at(r_out) /
                  (c::kGravitational * m_star / (r_out * r_out)),
              1.0, 0.08);
}

TEST(MonopoleGravity, AccelPointsAtTheCenter) {
  gravity::MonopoleGravity grav({0.0, 0.0, 0.0}, 64);
  mesh::AmrMesh m(gravity_config(), mem::HugePolicy::kNone,
                  proc().layout(), proc().page_pool());
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    m.unk().at(kDens, i, j, k, b) = 1.0e5;
  });
  grav.update(m);
  const auto a = grav.accel(3.0e8, 4.0e8, 0.0);
  EXPECT_LT(a[0], 0.0);
  EXPECT_LT(a[1], 0.0);
  // Direction ratio follows the position vector.
  EXPECT_NEAR(a[0] / a[1], 3.0 / 4.0, 1e-10);
  // At the exact center the force vanishes by symmetry.
  const auto zero = grav.accel(0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(MonopoleGravity, ApplySourceUpdatesMomentumAndEnergy) {
  mesh::AmrMesh m(gravity_config(), mem::HugePolicy::kNone,
                  proc().layout(), proc().page_pool());
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    m.unk().at(kDens, i, j, k, b) = 1.0e7;
    m.unk().at(kEner, i, j, k, b) = 1.0e15;
  });
  gravity::MonopoleGravity grav({0.0, 0.0, 0.0}, 256);
  grav.update(m);
  const double g_probe = grav.g_at(5.0e8);
  ASSERT_GT(g_probe, 0.0);

  const double dt = 1e-3;
  grav.apply_source(m, dt);
  // Velocities now point inward everywhere (fell from rest).
  const mesh::MeshConfig& cfg = m.config();
  const int b0 = m.tree().leaves_morton().front();
  const int ii = cfg.ihi() - 1;
  EXPECT_LT(m.unk().at(kVelx, ii, cfg.jlo() + 1, 0, b0), 0.0);
}

TEST(MonopoleGravity, RejectsTooFewShells) {
  EXPECT_THROW(gravity::MonopoleGravity({0, 0, 0}, 4), ConfigError);
}

// ------------------------------------------------------------ white dwarf

const eos::HelmTableEos& wd_eos() {
  static auto table = std::make_shared<eos::HelmTable>(
      eos::HelmTable::build_or_load(
          eos::HelmTableSpec{-4.0, 10.0, 141, 5.0, 10.0, 51},
          mem::HugePolicy::kNone, proc().page_pool(),
          "helm_table_test.bin"));
  static eos::HelmTableEos eos(table);
  return eos;
}

TEST(WhiteDwarf, StandardModelHasChandrasekharScaleMass) {
  gravity::WdParams params;  // rho_c = 2e9, C/O
  const gravity::WhiteDwarfModel wd(wd_eos(), params);
  EXPECT_GT(wd.mass() / c::kSolarMass, 1.25);
  EXPECT_LT(wd.mass() / c::kSolarMass, 1.45);
  EXPECT_GT(wd.radius(), 1.0e8);
  EXPECT_LT(wd.radius(), 5.0e8);
}

TEST(WhiteDwarf, HigherCentralDensityIsMoreCompact) {
  gravity::WdParams lo, hi;
  lo.central_density = 5.0e8;
  hi.central_density = 4.0e9;
  const gravity::WhiteDwarfModel wd_lo(wd_eos(), lo);
  const gravity::WhiteDwarfModel wd_hi(wd_eos(), hi);
  // The floor-density radius is set by the tenuous envelope and barely
  // moves; the physically meaningful radius is a fixed-density contour.
  auto radius_at = [](const gravity::WhiteDwarfModel& wd, double rho) {
    double lo_r = 0.0, hi_r = wd.radius();
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo_r + hi_r);
      (wd.density_at(mid) > rho ? lo_r : hi_r) = mid;
    }
    return 0.5 * (lo_r + hi_r);
  };
  EXPECT_LT(radius_at(wd_hi, 1.0e5), radius_at(wd_lo, 1.0e5));
  EXPECT_GT(wd_hi.mass(), wd_lo.mass());  // Chandrasekhar trend
}

TEST(WhiteDwarf, ProfileIsMonotone) {
  gravity::WdParams params;
  const gravity::WhiteDwarfModel wd(wd_eos(), params);
  const auto& rho = wd.densities();
  for (std::size_t i = 1; i < rho.size(); ++i) {
    ASSERT_LE(rho[i], rho[i - 1] * (1.0 + 1e-12)) << "at index " << i;
  }
  EXPECT_DOUBLE_EQ(wd.density_at(0.0), params.central_density);
  EXPECT_DOUBLE_EQ(wd.density_at(2.0 * wd.radius()), params.floor_density);
}

TEST(WhiteDwarf, HydrostaticResidualIsSmall) {
  // dP/dr + G M rho / r^2 ~ 0 along the profile.
  gravity::WdParams params;
  const gravity::WhiteDwarfModel wd(wd_eos(), params);
  const double r = 0.5 * wd.radius();
  const double h = params.step_cm;
  const double dpdr =
      (wd.pressure_at(r + h) - wd.pressure_at(r - h)) / (2 * h);
  const double expected = -c::kGravitational * wd.enclosed_mass_at(r) *
                          wd.density_at(r) / (r * r);
  EXPECT_NEAR(dpdr / expected, 1.0, 0.02);
}

TEST(WhiteDwarf, RejectsFloorAboveCenter) {
  gravity::WdParams bad;
  bad.central_density = 1.0;
  bad.floor_density = 10.0;
  EXPECT_THROW(gravity::WhiteDwarfModel(wd_eos(), bad), ConfigError);
}

}  // namespace
}  // namespace fhp
