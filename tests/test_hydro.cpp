/// \file test_hydro.cpp
/// \brief Tests of the Riemann solvers and the hydro sweeps: Sod shock
/// tube against the exact solution, conservation (uniform and AMR), and
/// EOS coupling.

#include <gtest/gtest.h>

#include <cmath>

#include "eos/gamma_eos.hpp"
#include "hydro/hydro.hpp"
#include "hydro/riemann.hpp"
#include "mesh/amr_mesh.hpp"
#include "rt/runtime.hpp"
#include "support/error.hpp"

namespace fhp::hydro {
namespace {

// Process-default execution context for construction sites: these tests
// exercise hydro numerics, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kGamc;
using mesh::var::kGame;
using mesh::var::kPres;
using mesh::var::kTemp;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

PrimState sod_left() { return {1.0, 0.0, 0.0, 0.0, 1.0, 1.4, 1.4}; }
PrimState sod_right() { return {0.125, 0.0, 0.0, 0.0, 0.1, 1.4, 1.4}; }

// ----------------------------------------------------------- exact solver

TEST(ExactRiemannTest, SodStarStateMatchesToro) {
  const ExactRiemann solver(1.4);
  const auto star = solver.solve(sod_left(), sod_right());
  // Toro, Table 4.2, Test 1: p* = 0.30313, u* = 0.92745.
  EXPECT_NEAR(star.p, 0.30313, 2e-5);
  EXPECT_NEAR(star.u, 0.92745, 2e-5);
}

TEST(ExactRiemannTest, Toro123StrongRarefactions) {
  // Toro Test 2: two receding streams (near-vacuum center).
  const ExactRiemann solver(1.4);
  PrimState left{1.0, -2.0, 0, 0, 0.4, 1.4, 1.4};
  PrimState right{1.0, 2.0, 0, 0, 0.4, 1.4, 1.4};
  const auto star = solver.solve(left, right);
  EXPECT_NEAR(star.p, 0.00189, 2e-4);
  EXPECT_NEAR(star.u, 0.0, 1e-10);
}

TEST(ExactRiemannTest, Toro3StrongShock) {
  // Toro Test 3: p* = 460.894, u* = 19.5975.
  const ExactRiemann solver(1.4);
  PrimState left{1.0, 0.0, 0, 0, 1000.0, 1.4, 1.4};
  PrimState right{1.0, 0.0, 0, 0, 0.01, 1.4, 1.4};
  const auto star = solver.solve(left, right);
  EXPECT_NEAR(star.p / 460.894, 1.0, 1e-4);
  EXPECT_NEAR(star.u / 19.5975, 1.0, 1e-4);
}

TEST(ExactRiemannTest, SamplingIsSelfConsistent) {
  const ExactRiemann solver(1.4);
  // Far left/right of all waves returns the input states.
  auto far_left = solver.sample(sod_left(), sod_right(), -100.0);
  EXPECT_DOUBLE_EQ(far_left[0], 1.0);
  EXPECT_DOUBLE_EQ(far_left[2], 1.0);
  auto far_right = solver.sample(sod_left(), sod_right(), 100.0);
  EXPECT_DOUBLE_EQ(far_right[0], 0.125);
  // At the contact the pressure equals p* from both sides.
  const auto star = solver.solve(sod_left(), sod_right());
  auto just_left = solver.sample(sod_left(), sod_right(), star.u - 1e-9);
  auto just_right = solver.sample(sod_left(), sod_right(), star.u + 1e-9);
  EXPECT_NEAR(just_left[2], star.p, 1e-6);
  EXPECT_NEAR(just_right[2], star.p, 1e-6);
  // Density jumps across the contact.
  EXPECT_GT(just_left[0], just_right[0]);
}

TEST(ExactRiemannTest, VacuumGenerationRejected) {
  const ExactRiemann solver(1.4);
  PrimState left{1.0, -100.0, 0, 0, 0.01, 1.4, 1.4};
  PrimState right{1.0, 100.0, 0, 0, 0.01, 1.4, 1.4};
  EXPECT_THROW(solver.solve(left, right), ConfigError);
}

// ------------------------------------------------------------------- HLLC

TEST(HllcTest, SupersonicFlowsTakeUpwindFlux) {
  PrimState fast = {1.0, 10.0, 0.0, 0.0, 0.1, 1.4, 1.4};  // M >> 1
  PrimState other = {0.5, 10.0, 0.0, 0.0, 0.1, 1.4, 1.4};
  const Flux f = hllc(fast, other);
  EXPECT_DOUBLE_EQ(f.mass, fast.rho * fast.u);  // pure left flux
  PrimState fast_neg = fast;
  PrimState other_neg = other;
  fast_neg.u = other_neg.u = -10.0;
  const Flux g = hllc(fast_neg, other_neg);
  EXPECT_DOUBLE_EQ(g.mass, other_neg.rho * other_neg.u);  // pure right flux
}

TEST(HllcTest, SymmetricStatesGiveZeroMassFlux) {
  PrimState w = {1.0, 0.0, 0.0, 0.0, 1.0, 1.4, 1.4};
  const Flux f = hllc(w, w);
  EXPECT_NEAR(f.mass, 0.0, 1e-14);
  EXPECT_NEAR(f.energy, 0.0, 1e-14);
  EXPECT_NEAR(f.mom_n, w.p, 1e-12);  // pressure flux only
}

TEST(HllcTest, ApproximatesExactSodFluxAtInterface) {
  const ExactRiemann exact(1.4);
  const auto w = exact.sample(sod_left(), sod_right(), 0.0);
  // Exact interface flux from the sampled state. HLLC with Davis wave
  // speeds underestimates the Sod contact speed (0.68 vs 0.93), so the
  // single-interface fluxes agree only to ~25% — the *scheme* still
  // converges (see SodShockTube.ConvergesToExactSolution) because the
  // errors act like extra dissipation.
  const double rho = w[0], u = w[1], p = w[2];
  const Flux f = hllc(sod_left(), sod_right());
  EXPECT_NEAR(f.mass / (rho * u), 1.0, 0.25);
  EXPECT_NEAR(f.mom_n / (rho * u * u + p), 1.0, 0.3);
  EXPECT_GT(f.mass, 0.0);  // flow is left-to-right
}

TEST(HllcTest, TransverseMomentumIsPassive) {
  PrimState left = sod_left();
  PrimState right = sod_right();
  left.ut1 = 5.0;
  right.ut1 = -3.0;
  const Flux f = hllc(left, right);
  // Mass flows left-to-right here; the upwind transverse velocity rides
  // along: f_t1 = mass * ut1(upwind).
  EXPECT_NEAR(f.mom_t1 / f.mass, 5.0, 1e-10);
}

// ------------------------------------------------------------- shock tube

struct SodMesh {
  mesh::MeshConfig config;
  std::unique_ptr<mesh::AmrMesh> mesh;
  std::unique_ptr<eos::GammaEos> eos;
  std::unique_ptr<HydroSolver> solver;

  explicit SodMesh(int nx_blocks, bool along_y = false) {
    config.ndim = 2;
    config.nxb = 16;
    config.nyb = 16;
    config.nguard = 4;
    config.maxblocks = 64;
    config.max_level = 1;
    config.nroot = along_y ? std::array<int, 3>{1, nx_blocks, 1}
                           : std::array<int, 3>{nx_blocks, 1, 1};
    config.lo = {0.0, 0.0, 0.0};
    config.hi = along_y ? std::array<double, 3>{1.0 / nx_blocks, 1.0, 1.0}
                        : std::array<double, 3>{1.0, 1.0 / nx_blocks, 1.0};
    mesh = std::make_unique<mesh::AmrMesh>(config, mem::HugePolicy::kNone,
                                           proc().layout(),
                                           proc().page_pool());
    eos = std::make_unique<eos::GammaEos>(1.4);
    HydroOptions opts;
    opts.cfl = 0.6;
    opts.abar = 1.0;
    opts.zbar = 1.0;
    solver = std::make_unique<HydroSolver>(*mesh, *eos, opts);

    const bool y = along_y;
    mesh->for_leaf_cells([&](int b, int i, int j, int k) {
      const double x = y ? mesh->ycenter(b, j) : mesh->xcenter(b, i);
      const bool left = x < 0.5;
      const double rho = left ? 1.0 : 0.125;
      const double p = left ? 1.0 : 0.1;
      auto& unk = mesh->unk();
      unk.at(kDens, i, j, k, b) = rho;
      unk.at(kVelx, i, j, k, b) = 0.0;
      unk.at(kVely, i, j, k, b) = 0.0;
      unk.at(kVelz, i, j, k, b) = 0.0;
      unk.at(kPres, i, j, k, b) = p;
      const double eint = p / (0.4 * rho);
      unk.at(kEint, i, j, k, b) = eint;
      unk.at(kEner, i, j, k, b) = eint;
      unk.at(kGamc, i, j, k, b) = 1.4;
      unk.at(kGame, i, j, k, b) = 1.4;
    });
    mesh->fill_guardcells();
  }

  void run_until(double tmax) {
    double t = 0.0;
    while (t < tmax) {
      double dt = solver->compute_dt();
      if (t + dt > tmax) dt = tmax - t;
      solver->step(dt);
      t += dt;
    }
  }

  /// L1 density error against the exact solution along the tube axis.
  double l1_density_error(double time, bool along_y = false) {
    const ExactRiemann exact(1.4);
    double err = 0.0;
    int count = 0;
    mesh->for_leaf_cells([&](int b, int i, int j, int k) {
      const double x =
          along_y ? mesh->ycenter(b, j) : mesh->xcenter(b, i);
      const auto w = exact.sample(sod_left(), sod_right(),
                                  (x - 0.5) / time);
      err += std::fabs(mesh->unk().at(kDens, i, j, k, b) - w[0]);
      ++count;
    });
    return err / count;
  }
};

TEST(SodShockTube, ConvergesToExactSolution) {
  SodMesh sod(8);  // 128 cells along x
  sod.run_until(0.2);
  const double err = sod.l1_density_error(0.2);
  // Second-order scheme at 128 cells: L1 density error ~ 0.005-0.01.
  EXPECT_LT(err, 0.012);
}

TEST(SodShockTube, ResolutionImprovesError) {
  SodMesh coarse(4), fine(8);
  coarse.run_until(0.2);
  fine.run_until(0.2);
  EXPECT_LT(fine.l1_density_error(0.2),
            coarse.l1_density_error(0.2) * 0.75);
}

TEST(SodShockTube, YSweepMatchesXSweep) {
  // The dimensional splitting must be direction-agnostic.
  SodMesh along_x(8, false);
  SodMesh along_y(8, true);
  along_x.run_until(0.2);
  along_y.run_until(0.2);
  EXPECT_NEAR(along_x.l1_density_error(0.2),
              along_y.l1_density_error(0.2, true), 2e-3);
}

TEST(SodShockTube, ConservesMassAndEnergy) {
  SodMesh sod(8);
  const double mass0 = sod.mesh->integrate(kDens);
  const double ener0 = sod.mesh->integrate_product(kDens, kEner);
  sod.run_until(0.15);  // waves stay inside the domain
  EXPECT_NEAR(sod.mesh->integrate(kDens) / mass0, 1.0, 1e-10);
  EXPECT_NEAR(sod.mesh->integrate_product(kDens, kEner) / ener0, 1.0,
              1e-10);
}

TEST(SodShockTube, PositiveDtFromCfl) {
  SodMesh sod(4);
  const double dt = sod.solver->compute_dt();
  EXPECT_GT(dt, 0.0);
  // CFL: dt <= cfl * dx / max(|u| + c); here u=0, c=sqrt(1.4).
  const double dx = 1.0 / (4 * 16);
  EXPECT_LE(dt, 0.6 * dx / std::sqrt(1.4 * 0.1 / 0.125) + 1e-12);
}

// ------------------------------------------------- AMR flux conservation

TEST(AmrConservation, FluxCorrectionKeepsTotalsExact) {
  mesh::MeshConfig config;
  config.ndim = 2;
  config.nxb = 8;
  config.nyb = 8;
  config.nguard = 4;
  config.maxblocks = 64;
  config.max_level = 2;
  config.nroot = {2, 2, 1};
  // Periodic everywhere: any drift must come from the fine-coarse
  // interfaces, not the domain boundary.
  for (int d = 0; d < 2; ++d) {
    config.bc[static_cast<std::size_t>(d)][0] = mesh::Bc::kPeriodic;
    config.bc[static_cast<std::size_t>(d)][1] = mesh::Bc::kPeriodic;
  }
  mesh::AmrMesh amr(config, mem::HugePolicy::kNone, proc().layout(),
                    proc().page_pool());
  // Refine one block: fine-coarse interfaces appear.
  amr.refine_block(0);

  eos::GammaEos gamma(1.4);
  HydroOptions opts;
  opts.cfl = 0.5;
  HydroSolver solver(amr, gamma, opts);

  // A smooth blob (everything stays away from the outflow boundaries).
  amr.for_leaf_cells([&](int b, int i, int j, int k) {
    const double x = amr.xcenter(b, i) - 0.5;
    const double y = amr.ycenter(b, j) - 0.5;
    const double rho = 1.0 + 2.0 * std::exp(-40.0 * (x * x + y * y));
    auto& unk = amr.unk();
    unk.at(kDens, i, j, k, b) = rho;
    unk.at(kVelx, i, j, k, b) = 0.0;
    unk.at(kVely, i, j, k, b) = 0.0;
    unk.at(kVelz, i, j, k, b) = 0.0;
    unk.at(kPres, i, j, k, b) = rho;  // pressure blob launches waves
    unk.at(kEint, i, j, k, b) = rho / (0.4 * rho);
    unk.at(kEner, i, j, k, b) = rho / (0.4 * rho);
    unk.at(kGamc, i, j, k, b) = 1.4;
    unk.at(kGame, i, j, k, b) = 1.4;
  });
  amr.fill_guardcells();

  const double mass0 = amr.integrate(kDens);
  for (int n = 0; n < 10; ++n) {
    solver.step(solver.compute_dt());
  }
  EXPECT_NEAR(amr.integrate(kDens) / mass0, 1.0, 1e-11);
}

TEST(AmrConservation, WithoutCorrectionTotalsDrift) {
  // The control experiment: disable flux correction and watch
  // conservation fail at the fine-coarse interface.
  mesh::MeshConfig config;
  config.ndim = 2;
  config.nxb = 8;
  config.nyb = 8;
  config.nguard = 4;
  config.maxblocks = 64;
  config.max_level = 2;
  config.nroot = {2, 2, 1};
  for (int d = 0; d < 2; ++d) {
    config.bc[static_cast<std::size_t>(d)][0] = mesh::Bc::kPeriodic;
    config.bc[static_cast<std::size_t>(d)][1] = mesh::Bc::kPeriodic;
  }

  auto run = [&config](bool correct) {
    mesh::AmrMesh amr(config, mem::HugePolicy::kNone, proc().layout(),
                    proc().page_pool());
    amr.refine_block(0);
    eos::GammaEos gamma(1.4);
    HydroOptions opts;
    opts.cfl = 0.5;
    opts.flux_correct = correct;
    HydroSolver solver(amr, gamma, opts);
    amr.for_leaf_cells([&](int b, int i, int j, int k) {
      const double x = amr.xcenter(b, i) - 0.5;
      const double y = amr.ycenter(b, j) - 0.5;
      const double rho = 1.0 + 2.0 * std::exp(-40.0 * (x * x + y * y));
      auto& unk = amr.unk();
      unk.at(kDens, i, j, k, b) = rho;
      unk.at(kPres, i, j, k, b) = rho;
      unk.at(kEint, i, j, k, b) = 2.5;
      unk.at(kEner, i, j, k, b) = 2.5;
      unk.at(kGamc, i, j, k, b) = 1.4;
      unk.at(kGame, i, j, k, b) = 1.4;
    });
    amr.fill_guardcells();
    const double mass0 = amr.integrate(kDens);
    for (int n = 0; n < 10; ++n) {
      solver.step(solver.compute_dt());
    }
    return std::fabs(amr.integrate(kDens) / mass0 - 1.0);
  };

  const double drift_corrected = run(true);
  const double drift_uncorrected = run(false);
  EXPECT_LT(drift_corrected, 1e-11);
  EXPECT_GT(drift_uncorrected, drift_corrected * 100.0);
}

// ------------------------------------------------------------ eos update

TEST(EosUpdate, RestoresThermodynamicConsistency) {
  SodMesh sod(4);
  // Scribble on the derived fields; eos_update must rebuild them from
  // (rho, ener, v).
  auto& unk = sod.mesh->unk();
  const auto& c = sod.config;
  unk.at(kPres, c.ilo(), c.jlo(), 0, 0) = -1.0;
  unk.at(kGamc, c.ilo(), c.jlo(), 0, 0) = 99.0;
  sod.solver->eos_update();
  const double rho = unk.at(kDens, c.ilo(), c.jlo(), 0, 0);
  const double eint = unk.at(kEint, c.ilo(), c.jlo(), 0, 0);
  const double pres = unk.at(kPres, c.ilo(), c.jlo(), 0, 0);
  EXPECT_NEAR(pres, 0.4 * rho * eint, 1e-12);
  EXPECT_DOUBLE_EQ(unk.at(kGamc, c.ilo(), c.jlo(), 0, 0), 1.4);
}

TEST(HydroSolverTest, RejectsBadAxis) {
  SodMesh sod(4);
  EXPECT_THROW(sod.solver->sweep(2, 1e-6), ConfigError);  // 2-d mesh
  EXPECT_THROW(sod.solver->sweep(-1, 1e-6), ConfigError);
}

TEST(HydroSolverTest, TraceStepBlockCountsWork) {
  SodMesh sod(4);
  tlb::Machine machine;
  tlb::Tracer tracer(&machine);
  sod.solver->trace_step_block(tracer, 0);
  EXPECT_GT(machine.quantum().accesses, 0u);
  EXPECT_GT(machine.quantum().scalar_ops, 0u);
}

}  // namespace
}  // namespace fhp::hydro
