/// \file test_mem.cpp
/// \brief Unit tests for the huge-page memory library.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mem/allocator.hpp"
#include "mem/arena.hpp"
#include "mem/huge_policy.hpp"
#include "mem/hugeadm.hpp"
#include "mem/mapped_region.hpp"
#include "mem/meminfo.hpp"
#include "mem/page_size.hpp"
#include "mem/procfs.hpp"
#include "mem/thp.hpp"
#include "mem/vmstat.hpp"
#include "rt/runtime.hpp"
#include "support/error.hpp"

namespace fhp::mem {
namespace {

// Process-default execution context for construction sites: these tests
// exercise allocators and mapped regions, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

// ------------------------------------------------------------- page sizes

TEST(PageSize, BasePageIsSane) {
  const std::size_t base = base_page_size();
  EXPECT_GE(base, 4096u);
  EXPECT_TRUE(is_pow2(base));
}

TEST(PageSize, RoundUp) {
  EXPECT_EQ(round_up(1, kPage4K), kPage4K);
  EXPECT_EQ(round_up(kPage4K, kPage4K), kPage4K);
  EXPECT_EQ(round_up(kPage4K + 1, kPage4K), 2 * kPage4K);
  EXPECT_EQ(round_up(3u << 20, kPage2M), 4u << 20);
}

TEST(PageSize, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(kPage2M));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(kPage2M + 1));
}

TEST(PageSize, Log2Pow2) {
  EXPECT_EQ(log2_pow2(kPage4K), 12u);
  EXPECT_EQ(log2_pow2(kPage2M), 21u);
  EXPECT_EQ(log2_pow2(kPage512M), 29u);
}

TEST(PageSize, ParseHugepagesDirname) {
  EXPECT_EQ(parse_hugepages_dirname("hugepages-2048kB"), kPage2M);
  EXPECT_EQ(parse_hugepages_dirname("hugepages-1048576kB"), kPage1G);
  EXPECT_FALSE(parse_hugepages_dirname("hugepages-").has_value());
  EXPECT_FALSE(parse_hugepages_dirname("transparent_hugepage").has_value());
  EXPECT_FALSE(parse_hugepages_dirname("hugepages-abckB").has_value());
}

TEST(PageSize, HugetlbPoolsEnumerationDoesNotThrow) {
  // Presence depends on the kernel; the call must degrade gracefully.
  const auto pools = hugetlb_pools();
  for (const auto& p : pools) {
    EXPECT_TRUE(is_pow2(p.page_bytes));
  }
  // A bogus root yields an empty list, not an error.
  EXPECT_TRUE(hugetlb_pools("/nonexistent/sysfs").empty());
}

// ----------------------------------------------------------------- policy

TEST(HugePolicy, ParseAcceptsAliases) {
  EXPECT_EQ(parse_huge_policy("none"), HugePolicy::kNone);
  EXPECT_EQ(parse_huge_policy("THP"), HugePolicy::kThp);
  EXPECT_EQ(parse_huge_policy("hugetlbfs"), HugePolicy::kHugetlbfs);
  EXPECT_EQ(parse_huge_policy(" hugetlb "), HugePolicy::kHugetlbfs);
  EXPECT_FALSE(parse_huge_policy("bogus").has_value());
}

TEST(HugePolicy, ToStringRoundTrips) {
  for (auto p : {HugePolicy::kNone, HugePolicy::kThp, HugePolicy::kHugetlbfs}) {
    EXPECT_EQ(parse_huge_policy(to_string(p)), p);
  }
}

TEST(HugePolicy, EnvironmentVariableWins) {
  ::setenv(kPolicyEnvVar, "thp", 1);
  EXPECT_EQ(policy_from_environment(HugePolicy::kNone), HugePolicy::kThp);
  ::unsetenv(kPolicyEnvVar);
}

TEST(HugePolicy, FujitsuVariableHonoured) {
  ::unsetenv(kPolicyEnvVar);
  ::setenv(kFujitsuPolicyEnvVar, "hugetlbfs", 1);
  EXPECT_EQ(policy_from_environment(HugePolicy::kNone),
            HugePolicy::kHugetlbfs);
  ::unsetenv(kFujitsuPolicyEnvVar);
}

TEST(HugePolicy, BadEnvironmentValueThrows) {
  ::setenv(kPolicyEnvVar, "gibberish", 1);
  EXPECT_THROW(policy_from_environment(), ConfigError);
  ::unsetenv(kPolicyEnvVar);
}

TEST(HugePolicy, EnvironmentFallback) {
  ::unsetenv(kPolicyEnvVar);
  ::unsetenv(kFujitsuPolicyEnvVar);
  EXPECT_EQ(policy_from_environment(HugePolicy::kThp), HugePolicy::kThp);
}

// -------------------------------------------------------------------- thp

TEST(Thp, ParseEnabledBracketFormat) {
  EXPECT_EQ(parse_thp_enabled("[always] madvise never"), ThpMode::kAlways);
  EXPECT_EQ(parse_thp_enabled("always [madvise] never"), ThpMode::kMadvise);
  EXPECT_EQ(parse_thp_enabled("always madvise [never]"), ThpMode::kNever);
  EXPECT_EQ(parse_thp_enabled("garbage"), ThpMode::kUnknown);
  EXPECT_EQ(parse_thp_enabled(""), ThpMode::kUnknown);
  EXPECT_EQ(parse_thp_enabled("[]"), ThpMode::kUnknown);
}

TEST(Thp, SystemModeFromMissingFileIsUnknown) {
  EXPECT_EQ(system_thp_mode("/nonexistent"), ThpMode::kUnknown);
  EXPECT_FALSE(thp_available("/nonexistent"));
}

TEST(Thp, AdviseOnFreshMappingSucceedsOrFailsCleanly) {
  MapRequest req;
  req.bytes = 4u << 20;
  req.policy = HugePolicy::kNone;
  MappedRegion region(req);
  // These must never crash regardless of kernel support.
  advise_huge(region.data(), region.size());
  advise_no_huge(region.data(), region.size());
}

// ---------------------------------------------------------------- meminfo

constexpr const char* kMeminfoFixture =
    "MemTotal:       16461744 kB\n"
    "MemFree:        15037352 kB\n"
    "MemAvailable:   15925052 kB\n"
    "AnonHugePages:     43008 kB\n"
    "ShmemHugePages:        0 kB\n"
    "FileHugePages:      2048 kB\n"
    "HugePages_Total:      16\n"
    "HugePages_Free:        8\n"
    "HugePages_Rsvd:        2\n"
    "HugePages_Surp:        1\n"
    "Hugepagesize:       2048 kB\n"
    "Hugetlb:           32768 kB\n";

TEST(Meminfo, ParsesThePapersFields) {
  const auto s = MeminfoSnapshot::parse(kMeminfoFixture);
  EXPECT_EQ(s.anon_huge_pages, 43008ull << 10);
  EXPECT_EQ(s.shmem_huge_pages, 0u);
  EXPECT_EQ(s.file_huge_pages, 2048ull << 10);
  EXPECT_EQ(s.huge_pages_total, 16u);
  EXPECT_EQ(s.huge_pages_free, 8u);
  EXPECT_EQ(s.huge_pages_rsvd, 2u);
  EXPECT_EQ(s.huge_pages_surp, 1u);
  EXPECT_EQ(s.hugepagesize, kPage2M);
  EXPECT_EQ(s.hugetlb, 32768ull << 10);
  EXPECT_EQ(s.mem_total, 16461744ull << 10);
}

TEST(Meminfo, DeltaSince) {
  auto before = MeminfoSnapshot::parse(kMeminfoFixture);
  auto after = before;
  after.anon_huge_pages = after.anon_huge_pages.value() + (4ull << 20);
  after.huge_pages_free = after.huge_pages_free.value() - 3;
  const auto d = after.since(before);
  EXPECT_EQ(d.anon_huge_pages, 4ll << 20);
  EXPECT_EQ(d.huge_pages_free, -3);
}

TEST(Meminfo, CaptureRealProcFile) {
  const auto s = MeminfoSnapshot::capture();
  EXPECT_GT(s.mem_total.value_or(), 0u);
  EXPECT_FALSE(s.summary().empty());
}

TEST(ProcFieldTest, DistinguishesZeroFromAbsent) {
  const ProcField absent;
  const ProcField zero{0};
  EXPECT_FALSE(absent.present());
  EXPECT_TRUE(zero.present());
  EXPECT_NE(absent, zero);  // "cannot say" != "observed zero"
  EXPECT_EQ(absent, ProcField{});
  EXPECT_EQ(absent.value_or(7), 7u);
  EXPECT_EQ(zero.value_or(7), 0u);
  EXPECT_THROW(absent.value(), ConfigError);
}

TEST(Meminfo, MissingFileThrows) {
  EXPECT_THROW(MeminfoSnapshot::capture("/nonexistent/meminfo"), SystemError);
}

TEST(SmapsRollupTest, ParsesFixture) {
  const auto s = SmapsRollup::parse(
      "55d0a0000000-7ffd2c1f3000 ---p 00000000 00:00 0    [rollup]\n"
      "Rss:              123456 kB\n"
      "AnonHugePages:      4096 kB\n"
      "ShmemPmdMapped:        0 kB\n"
      "Shared_Hugetlb:        0 kB\n"
      "Private_Hugetlb:   16384 kB\n");
  EXPECT_EQ(s.rss, 123456ull << 10);
  EXPECT_EQ(s.anon_huge_pages, 4096ull << 10);
  EXPECT_EQ(s.private_hugetlb, 16384ull << 10);
  EXPECT_FALSE(s.file_pmd_mapped.present());  // pre-4.20 rollup
  EXPECT_EQ(s.total_huge_bytes(), (4096ull + 16384ull) << 10);
}

// --------------------------------------------------- kernel-flavor fixtures
//
// Three generations of /proc, as checked-in fixture trees (see
// tests/fixtures/procfs/README.md): the field sets really do differ, and
// parsing must report absence, not zero.

namespace {
std::string fixture_procfs(const char* flavor) {
  return std::string(FHP_TEST_FIXTURE_DIR) + "/procfs/" + flavor;
}
}  // namespace

TEST(MeminfoFlavors, Kernel310LacksModernFields) {
  const auto s =
      MeminfoSnapshot::capture(fixture_procfs("kernel-3.10") + "/meminfo");
  EXPECT_TRUE(s.anon_huge_pages.present());
  EXPECT_TRUE(s.huge_pages_total.present());
  EXPECT_FALSE(s.mem_available.present());    // 3.14+
  EXPECT_FALSE(s.shmem_huge_pages.present()); // 4.8+
  EXPECT_FALSE(s.hugetlb.present());          // 4.19+
  EXPECT_FALSE(s.file_huge_pages.present());  // 5.4+
  EXPECT_EQ(s.anon_huge_pages, 6512640ull << 10);
  // total_huge_bytes-style sums must still work on the reduced set.
  EXPECT_EQ(s.hugetlb.value_or() + s.anon_huge_pages.value_or(),
            6512640ull << 10);
}

TEST(MeminfoFlavors, Kernel414MiddleGround) {
  const auto s =
      MeminfoSnapshot::capture(fixture_procfs("kernel-4.14") + "/meminfo");
  EXPECT_TRUE(s.mem_available.present());
  EXPECT_TRUE(s.shmem_huge_pages.present());
  EXPECT_FALSE(s.hugetlb.present());
  EXPECT_FALSE(s.file_huge_pages.present());
}

TEST(MeminfoFlavors, Kernel66HasEverything) {
  const auto s =
      MeminfoSnapshot::capture(fixture_procfs("kernel-6.6") + "/meminfo");
  EXPECT_TRUE(s.mem_available.present());
  EXPECT_TRUE(s.shmem_huge_pages.present());
  EXPECT_TRUE(s.file_huge_pages.present());
  EXPECT_TRUE(s.hugetlb.present());
  EXPECT_EQ(s.huge_pages_total, 512u);
  EXPECT_EQ(s.hugetlb, 1048576ull << 10);
}

TEST(SmapsFlavors, FilePmdMappedOnlyOnModernKernels) {
  const auto old = SmapsRollup::capture(fixture_procfs("kernel-4.14") +
                                        "/self/smaps_rollup");
  EXPECT_FALSE(old.file_pmd_mapped.present());
  EXPECT_TRUE(old.anon_huge_pages.present());

  const auto modern = SmapsRollup::capture(fixture_procfs("kernel-6.6") +
                                           "/self/smaps_rollup");
  EXPECT_TRUE(modern.file_pmd_mapped.present());
  EXPECT_EQ(modern.file_pmd_mapped, 10240ull << 10);
  EXPECT_EQ(modern.total_huge_bytes(),
            modern.anon_huge_pages.value() + modern.shmem_pmd_mapped.value() +
                modern.file_pmd_mapped.value() +
                modern.private_hugetlb.value() +
                modern.shared_hugetlb.value());
}

// ------------------------------------------------------------------ vmstat

TEST(Vmstat, ParsesThpCounters) {
  const auto s = VmstatSnapshot::parse(
      "nr_free_pages 11420726\n"
      "pgfault 181203981\n"
      "thp_fault_alloc 12793\n"
      "thp_fault_fallback 184\n"
      "thp_collapse_alloc 812\n"
      "thp_split_page 441\n");
  EXPECT_TRUE(s.thp_accounting_present());
  EXPECT_EQ(s.thp_fault_alloc, 12793u);
  EXPECT_EQ(s.thp_fault_fallback, 184u);
  EXPECT_EQ(s.thp_collapse_alloc, 812u);
  EXPECT_EQ(s.thp_split_page, 441u);
  EXPECT_EQ(s.pgfault, 181203981u);
}

TEST(Vmstat, Kernel310UsesThpSplitSpelling) {
  // 3.10 spells the split counter "thp_split"; our field tracks the
  // modern "thp_split_page" and must come back absent, not zero.
  const auto s =
      VmstatSnapshot::capture(fixture_procfs("kernel-3.10") + "/vmstat");
  EXPECT_TRUE(s.thp_fault_alloc.present());
  EXPECT_FALSE(s.thp_split_page.present());
  EXPECT_TRUE(s.thp_accounting_present());
}

TEST(Vmstat, DeltaAndSummary) {
  const auto before =
      VmstatSnapshot::capture(fixture_procfs("kernel-6.6") + "/vmstat");
  auto after = before;
  after.thp_fault_alloc = after.thp_fault_alloc.value() + 25;
  const auto d = after.since(before);
  EXPECT_EQ(d.thp_fault_alloc, 25);
  EXPECT_EQ(d.thp_fault_fallback, 0);
  EXPECT_FALSE(after.summary().empty());
}

TEST(Vmstat, MissingFileThrows) {
  EXPECT_THROW(VmstatSnapshot::capture("/nonexistent/vmstat"), SystemError);
}

// ---------------------------------------------------------- mapped region

TEST(MappedRegion, NonePolicyGivesSmallPages) {
  MapRequest req;
  req.bytes = 1u << 20;
  req.policy = HugePolicy::kNone;
  MappedRegion region(req);
  ASSERT_TRUE(region.valid());
  EXPECT_EQ(region.backing(), Backing::kSmallPages);
  EXPECT_EQ(region.page_bytes(), base_page_size());
  EXPECT_GE(region.size(), req.bytes);
  EXPECT_EQ(region.resident_huge_bytes(), 0u);
}

TEST(MappedRegion, MemoryIsZeroInitialized) {
  MapRequest req;
  req.bytes = 1u << 20;
  req.policy = HugePolicy::kNone;
  MappedRegion region(req);
  const auto* bytes = static_cast<const unsigned char*>(region.data());
  // prefault() wrote 1 to the first byte of each page; check others.
  for (std::size_t i = 1; i < region.size(); i += 4099) {
    if (i % base_page_size() == 0) continue;
    ASSERT_EQ(bytes[i], 0u) << "offset " << i;
  }
}

TEST(MappedRegion, ThpPolicyIsPmdAligned) {
  MapRequest req;
  req.bytes = 5u << 20;
  req.policy = HugePolicy::kThp;
  MappedRegion region(req);
  ASSERT_TRUE(region.valid());
  EXPECT_EQ(region.backing(), Backing::kThp);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(region.data()) %
                region.page_bytes(),
            0u);
  EXPECT_EQ(region.size() % region.page_bytes(), 0u);
}

TEST(MappedRegion, ZeroBytesRejected) {
  MapRequest req;
  req.bytes = 0;
  EXPECT_THROW(MappedRegion{req}, ConfigError);
}

TEST(MappedRegion, MoveTransfersOwnership) {
  MapRequest req;
  req.bytes = 1u << 20;
  MappedRegion a(req);
  void* data = a.data();
  MappedRegion b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  MappedRegion c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
}

TEST(MappedRegion, ResetIsIdempotent) {
  MapRequest req;
  req.bytes = 1u << 20;
  MappedRegion region(req);
  region.reset();
  EXPECT_FALSE(region.valid());
  region.reset();
  EXPECT_EQ(region.describe(), "<unmapped>");
}

TEST(MappedRegion, ResetClearsMetadata) {
  // Regression: reset() used to unmap but leave backing/page_bytes/
  // requested_policy describing the dead mapping, so a reused region
  // reported stale page accounting.
  MapRequest req;
  req.bytes = 4u << 20;
  req.policy = HugePolicy::kThp;
  MappedRegion region(req);
  region.reset();
  EXPECT_EQ(region.backing(), Backing::kSmallPages);
  EXPECT_EQ(region.requested_policy(), HugePolicy::kNone);
  EXPECT_EQ(region.page_bytes(), 0u);
  EXPECT_EQ(region.size(), 0u);
}

TEST(MappedRegion, MovedFromRegionClearsMetadata) {
  // Regression: the move operations transferred the mapping but left the
  // source's metadata intact, so describe()/page_bytes() on the husk
  // claimed pages it no longer owned.
  MapRequest req;
  req.bytes = 4u << 20;
  req.policy = HugePolicy::kThp;
  MappedRegion a(req);
  MappedRegion b(std::move(a));
  // NOLINTBEGIN(bugprone-use-after-move) -- the moved-from state is the
  // contract under test.
  EXPECT_EQ(a.backing(), Backing::kSmallPages);
  EXPECT_EQ(a.requested_policy(), HugePolicy::kNone);
  EXPECT_EQ(a.page_bytes(), 0u);
  EXPECT_EQ(a.describe(), "<unmapped>");
  MappedRegion c;
  c = std::move(b);
  EXPECT_EQ(b.backing(), Backing::kSmallPages);
  EXPECT_EQ(b.requested_policy(), HugePolicy::kNone);
  EXPECT_EQ(b.page_bytes(), 0u);
  // NOLINTEND(bugprone-use-after-move)
  EXPECT_EQ(c.requested_policy(), HugePolicy::kThp);
}

TEST(MappedRegion, HugetlbfsFallsBackWhenNoPool) {
  // Request an absurd hugetlb preference that no pool satisfies: the
  // region must still come back usable (THP or base pages).
  MapRequest req;
  req.bytes = 2u << 20;
  req.policy = HugePolicy::kHugetlbfs;
  req.hugetlb_page = kPage1G;  // pool almost certainly empty
  MappedRegion region(req);
  ASSERT_TRUE(region.valid());
  static_cast<char*>(region.data())[0] = 1;  // usable memory
}

TEST(MappedRegion, HugetlbfsUsesPoolWhenAvailable) {
  const auto granted = ensure_hugetlb_pool(kPage2M, 8);
  if (!granted || *granted < 8) {
    GTEST_SKIP() << "cannot configure a hugetlb pool here";
  }
  MapRequest req;
  req.bytes = 8u << 20;
  req.policy = HugePolicy::kHugetlbfs;
  MappedRegion region(req);
  ASSERT_TRUE(region.valid());
  EXPECT_EQ(region.backing(), Backing::kHugetlbfs);
  EXPECT_EQ(region.page_bytes(), kPage2M);
  EXPECT_EQ(region.resident_huge_bytes(), region.size());
  // The paper's verification: the pool's free count drops while mapped.
  const auto snap = MeminfoSnapshot::capture();
  EXPECT_LT(snap.huge_pages_free.value_or(),
            snap.huge_pages_total.value_or());
}

// ------------------------------------------------------------------ arena

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  std::vector<std::pair<char*, std::size_t>> blocks;
  for (int i = 0; i < 100; ++i) {
    const std::size_t bytes = 64 + static_cast<std::size_t>(i) * 13;
    auto* p = static_cast<char*>(arena.allocate(bytes, 64));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    blocks.emplace_back(p, bytes);
  }
  // Write patterns and verify no overlap corrupted anything.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::memset(blocks[i].first, static_cast<int>(i), blocks[i].second);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t b = 0; b < blocks[i].second; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(blocks[i].first[b]), i);
    }
  }
}

TEST(Arena, LargeAllocationGetsDedicatedChunk) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  (void)arena.allocate(64);
  (void)arena.allocate(16u << 20);  // bigger than the chunk quantum
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.chunk_count, 2u);
  EXPECT_GE(stats.bytes_reserved, 20u << 20);
}

TEST(Arena, StatsTrackRequests) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  (void)arena.allocate(100);
  (void)arena.allocate(200);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.allocation_count, 2u);
  EXPECT_EQ(stats.bytes_requested, 300u);
  EXPECT_EQ(stats.small_chunks, 1u);
}

TEST(Arena, ReleaseDropsEverything) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  (void)arena.allocate(1u << 20);
  arena.release();
  EXPECT_EQ(arena.stats().chunk_count, 0u);
  // Arena remains usable afterwards.
  (void)arena.allocate(64);
  EXPECT_EQ(arena.stats().chunk_count, 1u);
}

TEST(Arena, RejectsBadArguments) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  EXPECT_THROW(arena.allocate(0), ConfigError);
  EXPECT_THROW(arena.allocate(64, 63), ConfigError);  // non-pow2 alignment
  EXPECT_THROW(Arena(HugePolicy::kNone, 1024), ConfigError);  // tiny chunk
}

TEST(Arena, ReportMentionsPolicyAndChunks) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  (void)arena.allocate(128);
  const std::string report = arena.report();
  EXPECT_NE(report.find("policy=none"), std::string::npos);
  EXPECT_NE(report.find("chunk 0"), std::string::npos);
}

// -------------------------------------------------------------- allocator

TEST(HugeAllocatorTest, WorksWithStdVector) {
  Arena arena(HugePolicy::kNone, 4u << 20);
  std::vector<double, HugeAllocator<double>> v{HugeAllocator<double>(arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(v[9999], 9999.0);
  EXPECT_GT(arena.stats().bytes_requested, 10000u * 8);
}

TEST(HugeAllocatorTest, EqualityFollowsArenaIdentity) {
  Arena a(HugePolicy::kNone, 4u << 20), b(HugePolicy::kNone, 4u << 20);
  HugeAllocator<int> aa(a), ab(a), ba(b);
  EXPECT_TRUE(aa == ab);
  EXPECT_FALSE(aa == ba);
  HugeAllocator<double> rebound(aa);  // converting constructor
  EXPECT_TRUE(rebound == HugeAllocator<double>(a));
}

TEST(HugeBufferTest, SizeAndZeroInit) {
  HugeBuffer<double> buf(1000, HugePolicy::kNone, proc().page_pool());
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(buf.span().size(), 1000u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], 0.0);
  }
  buf[500] = 3.5;
  EXPECT_DOUBLE_EQ(buf.span()[500], 3.5);
}

// ---------------------------------------------------------------- hugeadm

TEST(Hugeadm, MissingSysfsYieldsNullopt) {
  EXPECT_FALSE(ensure_hugetlb_pool(kPage2M, 1, "/nonexistent").has_value());
  EXPECT_FALSE(release_hugetlb_pool(kPage2M, 0, "/nonexistent"));
}

TEST(Hugeadm, EnsureIsMonotoneNonDestructive) {
  const auto current = ensure_hugetlb_pool(kPage2M, 0);
  if (!current) GTEST_SKIP() << "no hugetlb support";
  // Asking for fewer pages than exist must not shrink the pool.
  const auto after = ensure_hugetlb_pool(kPage2M, 0);
  EXPECT_GE(*after, *current == 0 ? 0 : *current);
}

}  // namespace
}  // namespace fhp::mem
