/// \file test_perf.cpp
/// \brief Unit tests for the perf (PAPI-analog) library.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "par/parallel.hpp"
#include "perf/events.hpp"
#include "perf/perf_context.hpp"
#include "perf/perf_event_backend.hpp"
#include "perf/region.hpp"
#include "perf/report.hpp"
#include "perf/timers.hpp"
#include "support/error.hpp"

namespace fhp::perf {
namespace {

/// Each test owns its own PerfContext — the redesign's point is that no
/// reset() hygiene against ambient global state is needed.
class PerfTest : public ::testing::Test {
 protected:
  PerfContext ctx_;
};

// ------------------------------------------------------------------ events

TEST(Events, NamesAreUniqueAndPapiFlavoured) {
  EXPECT_EQ(event_name(Event::kCycles), "PAPI_TOT_CYC");
  EXPECT_EQ(event_name(Event::kDtlbMisses), "PAPI_TLB_DM");
  EXPECT_EQ(event_name(Event::kVectorOps), "PAPI_VEC_INS");
}

TEST(Events, CounterSetArithmetic) {
  CounterSet a, b;
  a[Event::kCycles] = 100;
  a[Event::kDtlbMisses] = 7;
  b[Event::kCycles] = 250;
  b[Event::kDtlbMisses] = 10;
  const CounterSet d = b.since(a);
  EXPECT_EQ(d[Event::kCycles], 150u);
  EXPECT_EQ(d[Event::kDtlbMisses], 3u);
  CounterSet sum = a;
  sum += d;
  EXPECT_EQ(sum[Event::kCycles], b[Event::kCycles]);
}

TEST(Events, DeriveMeasuresMatchesPaperDefinitions) {
  CounterSet delta;
  delta[Event::kCycles] = 1800000000ull;  // 1 second at 1.8 GHz
  delta[Event::kVectorOps] = 900000000ull;
  delta[Event::kDtlbMisses] = 2340000ull;
  delta[Event::kBytesRead] = 3000000000ull;
  delta[Event::kBytesWritten] = 1190000000ull;
  const MeasureSet m = derive_measures(delta, 1.8e9);
  EXPECT_DOUBLE_EQ(m.hardware_cycles, 1.8e9);
  EXPECT_DOUBLE_EQ(m.time_seconds, 1.0);
  EXPECT_DOUBLE_EQ(m.vector_per_cycle, 0.5);
  EXPECT_NEAR(m.memory_gbytes_per_s, 4.19, 1e-9);
  EXPECT_DOUBLE_EQ(m.dtlb_misses_per_s, 2.34e6);
}

TEST(Events, DeriveMeasuresZeroSafe) {
  const MeasureSet m = derive_measures(CounterSet{}, 1.8e9);
  EXPECT_EQ(m.time_seconds, 0.0);
  EXPECT_EQ(m.vector_per_cycle, 0.0);
  EXPECT_EQ(m.dtlb_misses_per_s, 0.0);
}

TEST(Events, RatiosMatchFigureOneDefinition) {
  MeasureSet with, without;
  with.dtlb_misses_per_s = 1.10e6;
  without.dtlb_misses_per_s = 2.34e7;
  with.time_seconds = 65.2;
  without.time_seconds = 69.7;
  const MeasureRatios r = ratios(with, 333.150, without, 339.032);
  EXPECT_NEAR(r.dtlb_misses_per_s, 0.047, 0.001);
  EXPECT_NEAR(r.time_seconds, 0.935, 0.001);
  EXPECT_NEAR(r.flash_timer, 0.9826, 0.001);
}

// ----------------------------------------------------------- perf context

TEST_F(PerfTest, ContextCountersAccumulate) {
  ctx_.add(Event::kCycles, 10);
  ctx_.add(Event::kCycles, 5);
  ctx_.add(Event::kDtlbMisses, 2);
  const CounterSet s = ctx_.snapshot();
  EXPECT_EQ(s[Event::kCycles], 15u);
  EXPECT_EQ(s[Event::kDtlbMisses], 2u);
}

TEST_F(PerfTest, ContextBulkAddAndReset) {
  CounterSet d;
  d[Event::kBytesRead] = 123;
  ctx_.add_all(d);
  EXPECT_EQ(ctx_.snapshot()[Event::kBytesRead], 123u);
  ctx_.reset();
  EXPECT_EQ(ctx_.snapshot()[Event::kBytesRead], 0u);
}

TEST_F(PerfTest, ContextsAreIndependent) {
  PerfContext other;
  ctx_.add(Event::kCycles, 42);
  EXPECT_EQ(other.snapshot()[Event::kCycles], 0u);
  EXPECT_EQ(ctx_.snapshot()[Event::kCycles], 42u);
}

TEST_F(PerfTest, ShardSumsAreExactAcrossLaneCounts) {
  // Same increments pushed through 1 or 4 lanes must yield the same
  // totals: uint64 shard sums are exact and order-independent.
  auto run = [](int lanes) {
    par::set_threads(lanes);
    PerfContext ctx;
    par::parallel_for(64, [&](int /*lane*/, std::size_t i) {
      ctx.add(Event::kCycles, i + 1);
    });
    par::set_threads(1);
    return ctx.snapshot()[Event::kCycles];
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(1), 64u * 65u / 2u);
}

// ----------------------------------------------------------------- regions

TEST_F(PerfTest, RegionCapturesCounterDelta) {
  {
    PerfRegion region(ctx_, "unit-test");
    ctx_.add(Event::kCycles, 1000);
    ctx_.add(Event::kDtlbMisses, 3);
  }
  const RegionStats stats = ctx_.regions().get("unit-test");
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.totals[Event::kCycles], 1000u);
  EXPECT_EQ(stats.totals[Event::kDtlbMisses], 3u);
  EXPECT_GT(stats.totals[Event::kWallNanos], 0u);
}

TEST_F(PerfTest, RegionAccumulatesAcrossEntries) {
  for (int i = 0; i < 3; ++i) {
    PerfRegion region(ctx_, "loop");
    ctx_.add(Event::kCycles, 10);
  }
  const RegionStats stats = ctx_.regions().get("loop");
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.totals[Event::kCycles], 30u);
}

TEST_F(PerfTest, RegionsNestIndependently) {
  {
    PerfRegion outer(ctx_, "outer");
    ctx_.add(Event::kCycles, 5);
    {
      PerfRegion inner(ctx_, "inner");
      ctx_.add(Event::kCycles, 7);
    }
    ctx_.add(Event::kCycles, 11);
  }
  // Nested counts land in both regions (like nested PAPI reads).
  EXPECT_EQ(ctx_.regions().get("inner").totals[Event::kCycles], 7u);
  EXPECT_EQ(ctx_.regions().get("outer").totals[Event::kCycles], 23u);
}

TEST_F(PerfTest, StopIsIdempotent) {
  PerfRegion region(ctx_, "stopped");
  ctx_.add(Event::kCycles, 4);
  region.stop();
  ctx_.add(Event::kCycles, 100);
  region.stop();  // no-op
  EXPECT_EQ(ctx_.regions().get("stopped").totals[Event::kCycles], 4u);
  EXPECT_EQ(ctx_.regions().get("stopped").entries, 1u);
}

TEST_F(PerfTest, UnknownRegionIsZeros) {
  const RegionStats stats = ctx_.regions().get("never-entered");
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.totals[Event::kCycles], 0u);
}

TEST_F(PerfTest, RegistryNamesSorted) {
  { PerfRegion r(ctx_, "zeta"); }
  { PerfRegion r(ctx_, "alpha"); }
  const auto names = ctx_.regions().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

// --------------------------------------------------------------- hw backend

TEST(PerfEventBackendTest, ProbeNeverCrashes) {
  PerfEventBackend backend;
  // May or may not be available in a container; both are fine, but the
  // object must be safely usable either way.
  const CounterSet s = backend.read();
  if (!backend.available()) {
    EXPECT_EQ(s[Event::kCycles], 0u);
  }
}

TEST(PerfEventBackendTest, HardwareCaptureDegradesGracefully) {
  set_hardware_capture(true);
  // If the PMU is unavailable the flag silently stays off.
  if (!PerfEventBackend::paranoid_level().has_value()) {
    EXPECT_FALSE(hardware_capture_active());
  }
  set_hardware_capture(false);
  EXPECT_FALSE(hardware_capture_active());
}

// ------------------------------------------------------------------ timers

TEST(TimersTest, AccumulatesNamedScopes) {
  Timers timers;
  timers.start("evolution");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  timers.stop("evolution");
  EXPECT_GT(timers.seconds("evolution"), 0.001);
  EXPECT_EQ(timers.calls("evolution"), 1u);
}

TEST(TimersTest, NestedTimersFormDistinctNodes) {
  Timers timers;
  timers.start("hydro");
  timers.start("riemann");
  timers.stop("riemann");
  timers.stop("hydro");
  timers.start("riemann");  // same name at root level: separate node
  timers.stop("riemann");
  EXPECT_EQ(timers.calls("riemann"), 2u);
  EXPECT_EQ(timers.calls("hydro"), 1u);
}

TEST(TimersTest, MismatchedStopThrows) {
  Timers timers;
  timers.start("a");
  EXPECT_THROW(timers.stop("b"), ConfigError);
  timers.stop("a");
  EXPECT_THROW(timers.stop("a"), ConfigError);  // nothing running
}

TEST(TimersTest, SameNameNestsAsDistinctNode) {
  // FLASH allows recursive timers: a "y" inside "y" is a separate node.
  Timers timers;
  timers.start("y");
  timers.start("y");
  timers.stop("y");
  timers.stop("y");
  EXPECT_EQ(timers.calls("y"), 2u);
}

TEST(TimersTest, ScopeIsExceptionSafe) {
  Timers timers;
  try {
    Timers::Scope scope(timers, "guarded");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(timers.calls("guarded"), 1u);
}

TEST(TimersTest, SummaryListsTimers) {
  Timers timers;
  {
    Timers::Scope a(timers, "evolution");
    Timers::Scope b(timers, "hydro");
  }
  std::ostringstream os;
  timers.summary(os);
  EXPECT_NE(os.str().find("evolution"), std::string::npos);
  EXPECT_NE(os.str().find("hydro"), std::string::npos);
  EXPECT_NE(os.str().find("elapsed"), std::string::npos);
}

TEST(TimersTest, ResetClearsEverything) {
  Timers timers;
  timers.start("t");
  timers.stop("t");
  timers.reset();
  EXPECT_EQ(timers.calls("t"), 0u);
  EXPECT_EQ(timers.seconds("t"), 0.0);
}


// ------------------------------------------------------------------ report

TEST_F(PerfTest, RegionReportDerivesMeasures) {
  {
    PerfRegion region(ctx_, "report-me");
    ctx_.add(Event::kCycles, 1800000000ull);
    ctx_.add(Event::kDtlbMisses, 900000ull);
    ctx_.add(Event::kVectorOps, 180000000ull);
  }
  const RegionReport report(ctx_, 1.8e9);
  const RegionMeasures rm = report.get("report-me");
  EXPECT_EQ(rm.entries, 1u);
  EXPECT_NEAR(rm.measures.time_seconds, 1.0, 1e-9);
  EXPECT_NEAR(rm.measures.dtlb_misses_per_s, 9.0e5, 1.0);
  EXPECT_NEAR(rm.measures.vector_per_cycle, 0.1, 1e-9);
  EXPECT_GT(rm.wall_seconds, 0.0);
}

TEST_F(PerfTest, RegionReportUnknownRegionIsZeros) {
  const RegionReport report(ctx_, 1.8e9);
  EXPECT_EQ(report.get("absent").entries, 0u);
}

TEST_F(PerfTest, RegionReportRenders) {
  { PerfRegion region(ctx_, "alpha"); }
  { PerfRegion region(ctx_, "beta"); }
  const RegionReport report(ctx_, 1.8e9);
  std::ostringstream os;
  report.render(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
  EXPECT_NE(os.str().find("DTLB/s"), std::string::npos);
}

}  // namespace
}  // namespace fhp::perf
