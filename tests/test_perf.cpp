/// \file test_perf.cpp
/// \brief Unit tests for the perf (PAPI-analog) library.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "perf/events.hpp"
#include "perf/perf_event_backend.hpp"
#include "perf/region.hpp"
#include "perf/report.hpp"
#include "perf/soft_counters.hpp"
#include "perf/timers.hpp"
#include "support/error.hpp"

namespace fhp::perf {
namespace {

class PerfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SoftCounters::instance().reset();
    RegionRegistry::instance().reset();
  }
};

// ------------------------------------------------------------------ events

TEST(Events, NamesAreUniqueAndPapiFlavoured) {
  EXPECT_EQ(event_name(Event::kCycles), "PAPI_TOT_CYC");
  EXPECT_EQ(event_name(Event::kDtlbMisses), "PAPI_TLB_DM");
  EXPECT_EQ(event_name(Event::kVectorOps), "PAPI_VEC_INS");
}

TEST(Events, CounterSetArithmetic) {
  CounterSet a, b;
  a[Event::kCycles] = 100;
  a[Event::kDtlbMisses] = 7;
  b[Event::kCycles] = 250;
  b[Event::kDtlbMisses] = 10;
  const CounterSet d = b.since(a);
  EXPECT_EQ(d[Event::kCycles], 150u);
  EXPECT_EQ(d[Event::kDtlbMisses], 3u);
  CounterSet sum = a;
  sum += d;
  EXPECT_EQ(sum[Event::kCycles], b[Event::kCycles]);
}

TEST(Events, DeriveMeasuresMatchesPaperDefinitions) {
  CounterSet delta;
  delta[Event::kCycles] = 1800000000ull;  // 1 second at 1.8 GHz
  delta[Event::kVectorOps] = 900000000ull;
  delta[Event::kDtlbMisses] = 2340000ull;
  delta[Event::kBytesRead] = 3000000000ull;
  delta[Event::kBytesWritten] = 1190000000ull;
  const MeasureSet m = derive_measures(delta, 1.8e9);
  EXPECT_DOUBLE_EQ(m.hardware_cycles, 1.8e9);
  EXPECT_DOUBLE_EQ(m.time_seconds, 1.0);
  EXPECT_DOUBLE_EQ(m.vector_per_cycle, 0.5);
  EXPECT_NEAR(m.memory_gbytes_per_s, 4.19, 1e-9);
  EXPECT_DOUBLE_EQ(m.dtlb_misses_per_s, 2.34e6);
}

TEST(Events, DeriveMeasuresZeroSafe) {
  const MeasureSet m = derive_measures(CounterSet{}, 1.8e9);
  EXPECT_EQ(m.time_seconds, 0.0);
  EXPECT_EQ(m.vector_per_cycle, 0.0);
  EXPECT_EQ(m.dtlb_misses_per_s, 0.0);
}

TEST(Events, RatiosMatchFigureOneDefinition) {
  MeasureSet with, without;
  with.dtlb_misses_per_s = 1.10e6;
  without.dtlb_misses_per_s = 2.34e7;
  with.time_seconds = 65.2;
  without.time_seconds = 69.7;
  const MeasureRatios r = ratios(with, 333.150, without, 339.032);
  EXPECT_NEAR(r.dtlb_misses_per_s, 0.047, 0.001);
  EXPECT_NEAR(r.time_seconds, 0.935, 0.001);
  EXPECT_NEAR(r.flash_timer, 0.9826, 0.001);
}

// ------------------------------------------------------------ soft counters

TEST_F(PerfTest, SoftCountersAccumulate) {
  auto& sc = SoftCounters::instance();
  sc.add(Event::kCycles, 10);
  sc.add(Event::kCycles, 5);
  sc.add(Event::kDtlbMisses, 2);
  const CounterSet s = sc.snapshot();
  EXPECT_EQ(s[Event::kCycles], 15u);
  EXPECT_EQ(s[Event::kDtlbMisses], 2u);
}

TEST_F(PerfTest, SoftCountersBulkAddAndReset) {
  CounterSet d;
  d[Event::kBytesRead] = 123;
  SoftCounters::instance().add_all(d);
  EXPECT_EQ(SoftCounters::instance().snapshot()[Event::kBytesRead], 123u);
  SoftCounters::instance().reset();
  EXPECT_EQ(SoftCounters::instance().snapshot()[Event::kBytesRead], 0u);
}

// ----------------------------------------------------------------- regions

TEST_F(PerfTest, RegionCapturesCounterDelta) {
  {
    PerfRegion region("unit-test");
    SoftCounters::instance().add(Event::kCycles, 1000);
    SoftCounters::instance().add(Event::kDtlbMisses, 3);
  }
  const RegionStats stats = RegionRegistry::instance().get("unit-test");
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.totals[Event::kCycles], 1000u);
  EXPECT_EQ(stats.totals[Event::kDtlbMisses], 3u);
  EXPECT_GT(stats.totals[Event::kWallNanos], 0u);
}

TEST_F(PerfTest, RegionAccumulatesAcrossEntries) {
  for (int i = 0; i < 3; ++i) {
    PerfRegion region("loop");
    SoftCounters::instance().add(Event::kCycles, 10);
  }
  const RegionStats stats = RegionRegistry::instance().get("loop");
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.totals[Event::kCycles], 30u);
}

TEST_F(PerfTest, RegionsNestIndependently) {
  {
    PerfRegion outer("outer");
    SoftCounters::instance().add(Event::kCycles, 5);
    {
      PerfRegion inner("inner");
      SoftCounters::instance().add(Event::kCycles, 7);
    }
    SoftCounters::instance().add(Event::kCycles, 11);
  }
  // Nested counts land in both regions (like nested PAPI reads).
  EXPECT_EQ(RegionRegistry::instance().get("inner").totals[Event::kCycles],
            7u);
  EXPECT_EQ(RegionRegistry::instance().get("outer").totals[Event::kCycles],
            23u);
}

TEST_F(PerfTest, StopIsIdempotent) {
  PerfRegion region("stopped");
  SoftCounters::instance().add(Event::kCycles, 4);
  region.stop();
  SoftCounters::instance().add(Event::kCycles, 100);
  region.stop();  // no-op
  EXPECT_EQ(RegionRegistry::instance().get("stopped").totals[Event::kCycles],
            4u);
  EXPECT_EQ(RegionRegistry::instance().get("stopped").entries, 1u);
}

TEST_F(PerfTest, UnknownRegionIsZeros) {
  const RegionStats stats = RegionRegistry::instance().get("never-entered");
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.totals[Event::kCycles], 0u);
}

TEST_F(PerfTest, RegistryNamesSorted) {
  { PerfRegion r("zeta"); }
  { PerfRegion r("alpha"); }
  const auto names = RegionRegistry::instance().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

// --------------------------------------------------------------- hw backend

TEST(PerfEventBackendTest, ProbeNeverCrashes) {
  PerfEventBackend backend;
  // May or may not be available in a container; both are fine, but the
  // object must be safely usable either way.
  const CounterSet s = backend.read();
  if (!backend.available()) {
    EXPECT_EQ(s[Event::kCycles], 0u);
  }
}

TEST(PerfEventBackendTest, HardwareCaptureDegradesGracefully) {
  set_hardware_capture(true);
  // If the PMU is unavailable the flag silently stays off.
  if (!PerfEventBackend::paranoid_level().has_value()) {
    EXPECT_FALSE(hardware_capture_active());
  }
  set_hardware_capture(false);
  EXPECT_FALSE(hardware_capture_active());
}

// ------------------------------------------------------------------ timers

TEST(TimersTest, AccumulatesNamedScopes) {
  Timers timers;
  timers.start("evolution");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  timers.stop("evolution");
  EXPECT_GT(timers.seconds("evolution"), 0.001);
  EXPECT_EQ(timers.calls("evolution"), 1u);
}

TEST(TimersTest, NestedTimersFormDistinctNodes) {
  Timers timers;
  timers.start("hydro");
  timers.start("riemann");
  timers.stop("riemann");
  timers.stop("hydro");
  timers.start("riemann");  // same name at root level: separate node
  timers.stop("riemann");
  EXPECT_EQ(timers.calls("riemann"), 2u);
  EXPECT_EQ(timers.calls("hydro"), 1u);
}

TEST(TimersTest, MismatchedStopThrows) {
  Timers timers;
  timers.start("a");
  EXPECT_THROW(timers.stop("b"), ConfigError);
  timers.stop("a");
  EXPECT_THROW(timers.stop("a"), ConfigError);  // nothing running
}

TEST(TimersTest, SameNameNestsAsDistinctNode) {
  // FLASH allows recursive timers: a "y" inside "y" is a separate node.
  Timers timers;
  timers.start("y");
  timers.start("y");
  timers.stop("y");
  timers.stop("y");
  EXPECT_EQ(timers.calls("y"), 2u);
}

TEST(TimersTest, ScopeIsExceptionSafe) {
  Timers timers;
  try {
    Timers::Scope scope(timers, "guarded");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(timers.calls("guarded"), 1u);
}

TEST(TimersTest, SummaryListsTimers) {
  Timers timers;
  {
    Timers::Scope a(timers, "evolution");
    Timers::Scope b(timers, "hydro");
  }
  std::ostringstream os;
  timers.summary(os);
  EXPECT_NE(os.str().find("evolution"), std::string::npos);
  EXPECT_NE(os.str().find("hydro"), std::string::npos);
  EXPECT_NE(os.str().find("elapsed"), std::string::npos);
}

TEST(TimersTest, ResetClearsEverything) {
  Timers timers;
  timers.start("t");
  timers.stop("t");
  timers.reset();
  EXPECT_EQ(timers.calls("t"), 0u);
  EXPECT_EQ(timers.seconds("t"), 0.0);
}


// ------------------------------------------------------------------ report

TEST_F(PerfTest, RegionReportDerivesMeasures) {
  {
    PerfRegion region("report-me");
    SoftCounters::instance().add(Event::kCycles, 1800000000ull);
    SoftCounters::instance().add(Event::kDtlbMisses, 900000ull);
    SoftCounters::instance().add(Event::kVectorOps, 180000000ull);
  }
  const RegionReport report(1.8e9);
  const RegionMeasures rm = report.get("report-me");
  EXPECT_EQ(rm.entries, 1u);
  EXPECT_NEAR(rm.measures.time_seconds, 1.0, 1e-9);
  EXPECT_NEAR(rm.measures.dtlb_misses_per_s, 9.0e5, 1.0);
  EXPECT_NEAR(rm.measures.vector_per_cycle, 0.1, 1e-9);
  EXPECT_GT(rm.wall_seconds, 0.0);
}

TEST_F(PerfTest, RegionReportUnknownRegionIsZeros) {
  const RegionReport report(1.8e9);
  EXPECT_EQ(report.get("absent").entries, 0u);
}

TEST_F(PerfTest, RegionReportRenders) {
  { PerfRegion region("alpha"); }
  { PerfRegion region("beta"); }
  const RegionReport report(1.8e9);
  std::ostringstream os;
  report.render(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
  EXPECT_NE(os.str().find("DTLB/s"), std::string::npos);
}

}  // namespace
}  // namespace fhp::perf
