/// \file test_sim.cpp
/// \brief Integration tests: setups, driver, profiles, and the paper's
/// headline reproduction invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "hydro/hydro.hpp"
#include "mem/meminfo.hpp"
#include "perf/perf_context.hpp"
#include "perf/region.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/cellular.hpp"
#include "sim/driver.hpp"
#include "sim/profiles.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"
#include "tlb/machine.hpp"

namespace fhp::sim {
namespace {

// Process-default execution context for construction sites: these tests
// exercise the evolution driver, not multi-tenancy (tests/test_runtime.cpp covers explicit
// runtimes).
rt::Runtime& proc() { return rt::Runtime::process_default(); }

using mesh::var::kDens;
using mesh::var::kEner;
using mesh::var::kPres;

// ------------------------------------------------------------------ Sedov

TEST(SedovSetupTest, InitialStateIsAmbientPlusSpike) {
  SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 2;
  params.maxblocks = 64;
  SedovSetup setup(params, mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();

  double p_min = 1e300, p_max = 0.0;
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double p = m.unk().at(kPres, i, j, k, b);
    p_min = std::min(p_min, p);
    p_max = std::max(p_max, p);
    EXPECT_DOUBLE_EQ(m.unk().at(kDens, i, j, k, b), params.rho_ambient);
  });
  EXPECT_DOUBLE_EQ(p_min, params.p_ambient);
  EXPECT_GT(p_max, 1e3 * params.p_ambient);  // the spike
}

TEST(SedovSetupTest, MeshRefinedAroundTheSpike) {
  SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 3;
  params.maxblocks = 128;
  SedovSetup setup(params, mem::HugePolicy::kNone, proc());
  EXPECT_EQ(setup.mesh().tree().finest_level(), 3);
  EXPECT_TRUE(setup.mesh().tree().is_balanced());
}

TEST(SedovSetupTest, ShockRadiusFormula) {
  // R = (E t^2 / (alpha rho))^{1/5}; the exact alpha(1.4, nu=3) = 0.8511.
  const double r = SedovSetup::shock_radius(1.0, 1.0, 0.5, 1.4);
  EXPECT_NEAR(r, std::pow(0.25 / 0.851, 0.2), 2e-4);
  // Doubling the energy at fixed t grows the radius by 2^{1/5}.
  EXPECT_NEAR(SedovSetup::shock_radius(2.0, 1.0, 0.5, 1.4) / r,
              std::pow(2.0, 0.2), 1e-12);
}

TEST(SedovEvolution, TwoDConservesAndExpands) {
  SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 3;
  params.maxblocks = 300;
  SedovSetup setup(params, mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroSolver hydro(m, setup.eos());
  perf::Timers timers;
  DriverOptions opts;
  opts.nsteps = 30;
  opts.trace_sample = 0;
  opts.verbose = false;
  Driver driver(m, hydro, timers, opts);

  const double mass0 = m.integrate(kDens);
  const double ener0 = m.integrate_product(kDens, kEner);
  driver.evolve();
  EXPECT_EQ(driver.steps(), 30);
  EXPECT_GT(driver.sim_time(), 0.0);
  EXPECT_NEAR(m.integrate(kDens) / mass0, 1.0, 1e-9);
  EXPECT_NEAR(m.integrate_product(kDens, kEner) / ener0, 1.0, 1e-9);

  RadialProfile profile(m, {0.5, 0.5, 0.0}, 80, {kDens});
  EXPECT_GT(profile.peak_radius(0), 0.05);  // blast moved off the spike
  EXPECT_GT(profile.peak_value(0), 1.5);    // compression at the shell
}

TEST(SedovEvolution, ThreeDShockTracksSimilaritySolution) {
  SedovParams params;  // 3-d defaults
  params.max_level = 2;
  params.maxblocks = 100;
  SedovSetup setup(params, mem::HugePolicy::kNone, proc());
  hydro::HydroSolver hydro(setup.mesh(), setup.eos());
  perf::Timers timers;
  DriverOptions opts;
  opts.nsteps = 60;
  opts.trace_sample = 0;
  opts.verbose = false;
  Driver driver(setup.mesh(), hydro, timers, opts);
  driver.evolve();

  RadialProfile profile(setup.mesh(), {0.5, 0.5, 0.5}, 100, {kDens});
  const double r_exact = SedovSetup::shock_radius(
      params.energy, params.rho_ambient, driver.sim_time(), params.gamma);
  // Coarse grid (level 2): expect the shock within ~12% of analytic.
  EXPECT_NEAR(profile.peak_radius(0) / r_exact, 1.0, 0.12);
}

// --------------------------------------------------------------- profiles

TEST(RadialProfileTest, BinsAndAveragesKnownField) {
  mesh::MeshConfig cfg;
  cfg.ndim = 2;
  cfg.nxb = 32;
  cfg.nyb = 32;
  cfg.nroot = {2, 2, 1};
  cfg.maxblocks = 16;
  mesh::AmrMesh m(cfg, mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  // f(r) = r around the domain center.
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double x = m.xcenter(b, i) - 0.5;
    const double y = m.ycenter(b, j) - 0.5;
    m.unk().at(kDens, i, j, k, b) = std::sqrt(x * x + y * y);
  });
  RadialProfile profile(m, {0.5, 0.5, 0.0}, 20, {kDens});
  // Mid-radius bins reproduce f(r) = r.
  for (int bin = 4; bin < 10; ++bin) {
    EXPECT_NEAR(profile.value(0, bin) / profile.bin_radius(bin), 1.0, 0.1)
        << "bin " << bin;
  }
}

TEST(RadialProfileTest, SteepestGradientFindsAStep) {
  mesh::MeshConfig cfg;
  cfg.ndim = 2;
  cfg.nxb = 32;
  cfg.nyb = 32;
  cfg.nroot = {2, 2, 1};
  cfg.maxblocks = 16;
  mesh::AmrMesh m(cfg, mem::HugePolicy::kNone, proc().layout(),
                  proc().page_pool());
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double x = m.xcenter(b, i) - 0.5;
    const double y = m.ycenter(b, j) - 0.5;
    m.unk().at(kDens, i, j, k, b) =
        std::sqrt(x * x + y * y) < 0.25 ? 5.0 : 1.0;
  });
  RadialProfile profile(m, {0.5, 0.5, 0.0}, 25, {kDens});
  EXPECT_NEAR(profile.steepest_gradient_radius(0), 0.25, 0.04);
}

// -------------------------------------------------------------- supernova

SupernovaParams small_supernova() {
  SupernovaParams p;
  p.max_level = 3;
  p.maxblocks = 400;
  p.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  p.table_cache = "helm_table_test.bin";
  return p;
}

TEST(SupernovaSetupTest, BuildsAHydrostaticStarWithIgnition) {
  SupernovaSetup setup(small_supernova(), mem::HugePolicy::kNone, proc());
  EXPECT_GT(setup.wd().mass() / 1.98847e33, 1.2);
  mesh::AmrMesh& m = setup.mesh();
  // Central density on the mesh close to the model's rho_c.
  double rho_center = 0.0;
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double r = m.xcenter(b, i);
    const double z = m.ycenter(b, j);
    if (std::sqrt(r * r + z * z) < 1.5e7) {
      rho_center = std::max(rho_center, m.unk().at(kDens, i, j, k, b));
    }
  });
  EXPECT_NEAR(rho_center / 2.0e9, 1.0, 0.1);
  // The ignition bubble exists.
  const int vphi = mesh::var::kFirstScalar + snvar::kPhi;
  EXPECT_GT(m.integrate_product(kDens, vphi), 0.0);
}

TEST(SupernovaSetupTest, CompositionFunctionMapsMixtures) {
  double abar = 0, zbar = 0;
  mixture_composition(1.0, 0.0, 0.0, 0.0, abar, zbar);
  EXPECT_NEAR(abar, 12.0, 1e-12);
  EXPECT_NEAR(zbar, 6.0, 1e-12);
  mixture_composition(0.5, 0.5, 0.0, 0.0, abar, zbar);
  EXPECT_NEAR(abar, 1.0 / (0.5 / 12 + 0.5 / 16), 1e-12);
  EXPECT_NEAR(zbar / abar, 0.5, 1e-12);  // Ye = 0.5 for both C and O
}

TEST(SupernovaEvolution, FiftyStepFlameReleasesEnergy) {
  SupernovaSetup setup(small_supernova(), mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(m, setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());
  perf::Timers timers;
  DriverOptions opts;
  opts.nsteps = 15;
  opts.trace_sample = 0;
  opts.verbose = false;
  opts.refine_vars = {kDens, mesh::var::kFirstScalar + snvar::kPhi};
  DriverUnits units;
  units.flame = &setup.flame();
  units.gravity = &setup.gravity();
  Driver driver(m, hydro, timers, opts, units);

  const double mass0 = m.integrate(kDens);
  driver.evolve();
  EXPECT_EQ(driver.steps(), 15);
  EXPECT_GT(setup.flame().energy_released(), 1e45);  // burning happened
  EXPECT_NEAR(m.integrate(kDens) / mass0, 1.0, 1e-6);
  // The star did not explode numerically: central density stays WD-like.
  double rho_max = 0.0;
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    rho_max = std::max(rho_max, m.unk().at(kDens, i, j, k, b));
  });
  EXPECT_GT(rho_max, 1.0e8);
  EXPECT_LT(rho_max, 1.0e10);
}

// ------------------------------------------------- cellular detonation

TEST(CellularSetupTest, PerturbedFrontSeparatesAshFromFuel) {
  CellularParams params;
  params.max_level = 2;
  params.maxblocks = 128;
  CellularSetup setup(params, mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();

  // The front is a deterministic perturbed plane inside the domain.
  const double f0 = setup.front_position(0.0);
  const double f1 = setup.front_position(params.domain_y / 3.0);
  EXPECT_NE(f0, f1);  // genuinely perturbed
  EXPECT_DOUBLE_EQ(f0, setup.front_position(0.0));  // and reproducible
  EXPECT_GT(f0, 0.0);
  EXPECT_LT(f0, params.domain_x);

  // phi is a clean 0/1 partition straddling the front, on uniform fuel.
  const int vphi = mesh::var::kFirstScalar + cvar::kPhi;
  double burned_cells = 0.0, fuel_cells = 0.0;
  m.for_leaf_cells([&](int b, int i, int j, int k) {
    const double phi = m.unk().at(vphi, i, j, k, b);
    EXPECT_TRUE(phi == 0.0 || phi == 1.0);
    (phi > 0.5 ? burned_cells : fuel_cells) += 1.0;
    EXPECT_DOUBLE_EQ(m.unk().at(kDens, i, j, k, b), params.rho_fuel);
    if (phi > 0.5) {
      EXPECT_LT(m.xcenter(b, i), setup.front_position(m.ycenter(b, j)));
    }
  });
  EXPECT_GT(burned_cells, 0.0);
  EXPECT_GT(fuel_cells, burned_cells);  // ignition strip is thin
}

TEST(CellularSetupTest, MeshRefinedAlongTheFront) {
  CellularParams params;
  params.max_level = 3;
  params.maxblocks = 256;
  CellularSetup setup(params, mem::HugePolicy::kNone, proc());
  EXPECT_EQ(setup.mesh().tree().finest_level(), 3);
  EXPECT_TRUE(setup.mesh().tree().is_balanced());
}

TEST(CellularEvolution, FlameAdvancesConservingMass) {
  CellularParams params;
  params.max_level = 2;
  params.maxblocks = 128;
  CellularSetup setup(params, mem::HugePolicy::kNone, proc());
  mesh::AmrMesh& m = setup.mesh();
  hydro::HydroSolver hydro(m, setup.eos());
  perf::Timers timers;
  DriverOptions opts;
  opts.nsteps = 10;
  opts.trace_sample = 0;
  opts.verbose = false;
  opts.refine_vars = {kDens, mesh::var::kFirstScalar + cvar::kPhi};
  DriverUnits units;
  units.flame = &setup.flame();
  Driver driver(m, hydro, timers, opts, units);

  const int vphi = mesh::var::kFirstScalar + cvar::kPhi;
  const double mass0 = m.integrate(kDens);
  const double burned0 = m.integrate_product(kDens, vphi);
  driver.evolve();
  EXPECT_EQ(driver.steps(), 10);
  EXPECT_GT(driver.sim_time(), 0.0);
  EXPECT_NEAR(m.integrate(kDens) / mass0, 1.0, 1e-9);
  // The ADR front advanced into the fuel and released nuclear energy.
  EXPECT_GT(m.integrate_product(kDens, vphi), burned0);
  EXPECT_GT(setup.flame().energy_released(), 0.0);
}

// --------------------------------------------- reproduction invariants

/// The paper's headline shape, in miniature: with huge pages the EOS
/// region's DTLB miss rate collapses while its runtime barely moves.
TEST(ReproductionShape, HugePagesCutEosDtlbMissesButNotTime) {
  auto run_arm = [](mem::HugePolicy policy) {
    perf::PerfContext perf;
    SupernovaParams p;
    p.max_level = 3;
    p.maxblocks = 400;
    // nrho must stay FLASH-sized (rows > one 4 KiB page) for the gather
    // pattern to be faithful; the T range is trimmed for build speed.
    p.table_spec = {-4.0, 10.0, 541, 5.0, 10.0, 41};
    p.table_cache = "helm_table_shape.bin";
    SupernovaSetup setup(p, policy, proc());
    mesh::AmrMesh& m = setup.mesh();
    hydro::HydroOptions hopt;
    hopt.cfl = 0.6;
    hydro::HydroSolver hydro(m, setup.eos(), hopt);
    hydro.set_composition_fn(setup.composition_fn());
    perf::Timers timers;
    tlb::Machine machine({}, &perf);
    DriverOptions opts;
    opts.nsteps = 8;
    opts.trace_sample = 2;
    opts.verbose = false;
    DriverUnits units;
    units.flame = &setup.flame();
    units.gravity = &setup.gravity();
    units.machine = &machine;
    units.eos_trace =
        [&setup](tlb::Tracer& t, int b) { setup.trace_eos_block(t, b); };
    units.perf = &perf;
    Driver driver(m, hydro, timers, opts, units);
    driver.evolve();
    return perf::derive_measures(perf.regions().get("eos").totals, 1.8e9);
  };

  const auto without = run_arm(mem::HugePolicy::kNone);
  const auto with = run_arm(mem::HugePolicy::kHugetlbfs);
  ASSERT_GT(without.dtlb_misses_per_s, 0.0);
  const double dtlb_ratio =
      with.dtlb_misses_per_s / without.dtlb_misses_per_s;
  const double time_ratio = with.time_seconds / without.time_seconds;

  // The reproduction bands (paper: 0.047 and 0.935). If the kernel
  // granted no huge pages the ratios sit at 1 and the test cannot judge
  // the model — skip rather than fail.
  if (dtlb_ratio > 0.95) {
    GTEST_SKIP() << "no huge pages obtainable on this system";
  }
  EXPECT_LT(dtlb_ratio, 0.3);
  EXPECT_GT(time_ratio, 0.8);
  EXPECT_LT(time_ratio, 1.02);
}

/// The paper's negative result, §IV: policy `none` and a THP request on
/// a kernel that refuses promotion both end up on base pages — and the
/// library reports that honestly instead of assuming success.
TEST(ReproductionShape, BackingIsVerifiedNotAssumed) {
  mem::MapRequest req;
  req.bytes = 8u << 20;
  req.policy = mem::HugePolicy::kThp;
  mem::MappedRegion region(req);
  const auto rollup_huge = region.resident_huge_bytes();
  if (rollup_huge == 0) {
    // THP declined (the paper's GNU/Cray mystery, reproduced by this
    // kernel): the effective translation page must be the base page.
    EXPECT_EQ(tlb::effective_page_shift(region), 12);
  } else {
    EXPECT_EQ(tlb::effective_page_shift(region), 21);
  }
}

}  // namespace
}  // namespace fhp::sim
