/// \file bench_service.cpp
/// \brief Service throughput/latency under a Poisson open-arrival load.
///
/// The service-model counterpart of the paper's per-instance tables:
/// instead of one FLASH instance per node, dozens of small simulations
/// share one process, one worker pool, and one huge-page arena. A load
/// generator submits a mixed job-class matrix — Sedov (interactive,
/// pure hydro), cellular detonation (batch, hydro + flame), supernova
/// (batch, tabulated EOS + flame + gravity) — with exponential
/// inter-arrival times, at each worker count in the scan. The artifact
/// reports sims/sec and per-class p50/p99 job latency (submit to
/// result, the client-visible number).
///
/// Usage: bench_service [--json=PATH] [--trace=PATH] [--jobs=N]
///                      [--rate=JOBS_PER_SEC] [--seed=S]
///
/// --trace exports one tenant's span timeline for tools/check_trace.py.
/// Exit status is nonzero if any job failed or a class finished empty.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "experiment_common.hpp"
#include "eos/eos_table.hpp"
#include "rt/runtime.hpp"
#include "support/rng.hpp"
#include "support/runtime_params.hpp"
#include "svc/service.hpp"

namespace {

using namespace fhp;

struct JobClass {
  const char* name;
  svc::JobSpec spec;
};

svc::JobSpec sedov_spec() {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kSedov;
  spec.deadline = svc::DeadlineClass::kInteractive;
  spec.nsteps = 6;
  spec.sedov.ndim = 2;
  spec.sedov.nzb = 1;
  spec.sedov.max_level = 2;
  spec.sedov.maxblocks = 128;
  return spec;
}

svc::JobSpec cellular_spec() {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kCellular;
  spec.deadline = svc::DeadlineClass::kBatch;
  spec.nsteps = 5;
  spec.cellular.max_level = 2;
  spec.cellular.maxblocks = 128;
  return spec;
}

svc::JobSpec supernova_spec() {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kSupernova;
  spec.deadline = svc::DeadlineClass::kBatch;
  spec.nsteps = 2;
  spec.supernova.max_level = 3;
  spec.supernova.maxblocks = 400;
  spec.supernova.table_spec = {-4.0, 10.0, 141, 5.0, 10.0, 51};
  spec.supernova.table_cache = "helm_table_bench_service.bin";
  return spec;
}

/// Nearest-rank percentile of a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

struct ClassStats {
  int jobs = 0;
  double p50 = 0.0, p99 = 0.0, mean = 0.0;
};

struct ScanResult {
  int workers = 0;
  double sims_per_sec = 0.0;
  double span_seconds = 0.0;
  int backpressure_retries = 0;
  int failed = 0;
  std::vector<ClassStats> classes;
};

}  // namespace

int main(int argc, char** argv) {
  RuntimeParams rp;
  rp.declare_string("json", "BENCH_service.json", "artifact path");
  rp.declare_string("trace", "", "export one tenant's timeline here");
  rp.declare_int("jobs", 12, "jobs per worker-count scan");
  rp.declare_real("rate", 50.0, "mean Poisson arrival rate [jobs/s]");
  rp.declare_int("seed", 42, "arrival-process seed");
  svc::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  svc::apply_runtime_params(rp);

  const std::string json = rp.get_string("json");
  const std::string trace = rp.get_string("trace");
  const int njobs = static_cast<int>(rp.get_int("jobs"));
  const double rate = rp.get_real("rate");
  const auto seed = static_cast<std::uint64_t>(rp.get_int("seed"));

  const std::vector<JobClass> matrix = {
      {"sedov", sedov_spec()},
      {"cellular", cellular_spec()},
      {"supernova", supernova_spec()},
  };
  // Build (or load) the Helm table cache outside the measured window so
  // supernova tenants load it instead of each paying the table build.
  (void)eos::HelmTable::build_or_load(
      matrix[2].spec.supernova.table_spec, mem::HugePolicy::kNone,
      rt::Runtime::process_default().page_pool(),
      matrix[2].spec.supernova.table_cache);

  std::printf("== Service under Poisson load: %d jobs/scan, %.0f jobs/s ==\n",
              njobs, rate);

  constexpr int kWorkerScan[] = {2, 4};
  std::vector<ScanResult> scans;
  bool ok = true;

  for (const int workers : kWorkerScan) {
    svc::ServiceOptions opts;
    opts.workers = workers;
    svc::Service service(opts);

    Rng rng(seed);  // same arrival sequence at every worker count
    ScanResult scan;
    scan.workers = workers;
    scan.classes.resize(matrix.size());

    struct Issued {
      svc::JobId id;
      std::size_t cls;
    };
    std::vector<Issued> issued;
    const auto t0 = std::chrono::steady_clock::now();
    for (int j = 0; j < njobs; ++j) {
      const double dt = -std::log(1.0 - rng.uniform()) / rate;
      std::this_thread::sleep_for(std::chrono::duration<double>(dt));
      const auto cls = static_cast<std::size_t>(j) % matrix.size();
      svc::JobSpec spec = matrix[cls].spec;
      if (!trace.empty() && workers == kWorkerScan[0] && j == 0) {
        spec.timeline_path = trace;
      }
      // An open-loop generator with backpressure: a kQueueFull answer
      // means the arrival waits and retries, it is not dropped.
      for (;;) {
        const svc::Submission s = service.submit(spec);
        if (s.accepted()) {
          issued.push_back({s.id, cls});
          break;
        }
        if (s.reason != svc::RejectReason::kQueueFull) {
          std::fprintf(stderr, "submit rejected: %s\n",
                       svc::to_string(s.reason));
          return 1;
        }
        ++scan.backpressure_retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    std::vector<std::vector<double>> latencies(matrix.size());
    for (const Issued& i : issued) {
      const svc::JobResult r = service.wait(i.id);
      if (r.status != svc::JobStatus::kDone) {
        std::fprintf(stderr, "job %llu (%s) resolved %s: %s\n",
                     static_cast<unsigned long long>(r.id),
                     matrix[i.cls].name, svc::to_string(r.status),
                     r.error.c_str());
        ++scan.failed;
        continue;
      }
      latencies[i.cls].push_back(r.wall_seconds);
    }
    scan.span_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    scan.sims_per_sec =
        scan.span_seconds > 0.0
            ? static_cast<double>(issued.size() - scan.failed) /
                  scan.span_seconds
            : 0.0;

    for (std::size_t c = 0; c < matrix.size(); ++c) {
      std::vector<double>& v = latencies[c];
      std::sort(v.begin(), v.end());
      ClassStats& cs = scan.classes[c];
      cs.jobs = static_cast<int>(v.size());
      cs.p50 = percentile(v, 0.50);
      cs.p99 = percentile(v, 0.99);
      double sum = 0.0;
      for (const double x : v) sum += x;
      cs.mean = v.empty() ? 0.0 : sum / static_cast<double>(v.size());
      std::printf("# workers=%d class=%-9s jobs=%2d p50=%.3f s p99=%.3f s\n",
                  workers, matrix[c].name, cs.jobs, cs.p50, cs.p99);
      if (cs.jobs == 0) {
        std::fprintf(stderr, "class %s finished empty\n", matrix[c].name);
        ok = false;
      }
    }
    std::printf("# workers=%d sims/sec=%.2f (%d retries, %d failed)\n",
                workers, scan.sims_per_sec, scan.backpressure_retries,
                scan.failed);
    ok = ok && scan.failed == 0;
    scans.push_back(std::move(scan));
  }

  std::FILE* f = std::fopen(json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json.c_str());
    return 1;
  }
  bench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "service");
  w.field("jobs_per_scan", njobs);
  w.field("arrival_rate_hz", rate);
  w.begin_array("scans");
  for (const ScanResult& scan : scans) {
    w.begin_object();
    w.field("workers", scan.workers);
    w.field("sims_per_sec", scan.sims_per_sec);
    w.field("span_seconds", scan.span_seconds);
    w.field("backpressure_retries", scan.backpressure_retries);
    w.field("failed", scan.failed);
    w.begin_array("classes");
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      const ClassStats& cs = scan.classes[c];
      w.begin_object();
      w.field("name", matrix[c].name);
      w.field("jobs", cs.jobs);
      w.field("p50_seconds", cs.p50);
      w.field("p99_seconds", cs.p99);
      w.field("mean_seconds", cs.mean);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.field("all_jobs_done", ok);
  w.end_object();
  std::fclose(f);
  std::printf("# wrote %s\n", json.c_str());
  return ok ? 0 : 1;
}
