/// \file bench_table2_hydro.cpp
/// \brief Reproduces Table II: the 3-d Hydro problem with/without HPs.
///
/// Paper: "the 3-d Hydro test ran a Sedov explosion simulation for 200
/// time steps" with the hydrodynamics routines instrumented.
///
/// Usage: bench_table2_hydro [--nsteps=N] [--max_level=L] [--sample=S]
///                           [--par.threads=T] [--json=PATH]
///                           [--obs.timeline=PATH] [--obs.sample_ms=N]
///
/// With --json=PATH the paper table is skipped; instead the without-HP
/// arm runs at 1, 2 and 4 threads and the wall times land in PATH as
/// JSON (the CI perf-trajectory artifact, BENCH_hydro.json). Modeled
/// counters are asserted bit-identical across the three runs.
///
/// With --obs.timeline=PATH (or FLASHHP_TELEMETRY) the whole bench is
/// traced — per-lane spans plus a background memory/THP sampler — and
/// exported as a chrome://tracing JSON, so an arm-vs-arm wall-time gap
/// can be read span by span instead of as one number.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "experiment_runners.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "support/runtime_params.hpp"

namespace {

/// The 1/2/4-thread scan behind --json=PATH. Returns 0 on success.
int run_thread_scan(const std::string& path, int nsteps, int max_level,
                    int sample) {
  using namespace fhp;
  const int thread_counts[3] = {1, 2, 4};
  double wall[3] = {0, 0, 0};
  std::uint64_t cycles[3] = {0, 0, 0};
  std::uint64_t dtlb[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    par::set_threads(thread_counts[t]);
    bench::ExperimentArm arm;
    {
      sim::SedovParams params;
      params.max_level = max_level;
      params.maxblocks = 700;
      sim::SedovSetup setup(params, mem::HugePolicy::kNone);
      hydro::HydroOptions hopt;
      hopt.cfl = 0.6;
      hydro::HydroSolver hydro(setup.mesh(), setup.eos(), hopt);
      sim::DriverOptions dopt;
      dopt.nsteps = nsteps;
      dopt.trace_sample = sample;
      dopt.verbose = false;
      sim::Driver driver(setup.mesh(), hydro, arm.timers(), dopt,
                         arm.units());
      // Time only the evolution loop: mesh setup and the serial
      // tracing/commit work would otherwise dilute the reported
      // parallel-sweep speedup.
      const auto t0 = std::chrono::steady_clock::now();
      driver.evolve();
      wall[t] = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
    }
    const auto totals = arm.perf().snapshot();
    cycles[t] = totals[perf::Event::kCycles];
    dtlb[t] = totals[perf::Event::kDtlbMisses];
    std::printf("# threads=%d wall=%.3f s cycles=%llu dtlb=%llu\n",
                thread_counts[t], wall[t],
                static_cast<unsigned long long>(cycles[t]),
                static_cast<unsigned long long>(dtlb[t]));
  }
  const bool identical = cycles[0] == cycles[1] && cycles[1] == cycles[2] &&
                         dtlb[0] == dtlb[1] && dtlb[1] == dtlb[2];
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"table2_hydro\",\n"
               "  \"nsteps\": %d,\n"
               "  \"max_level\": %d,\n"
               "  \"wall_seconds\": {\"1\": %.6f, \"2\": %.6f, \"4\": %.6f},\n"
               "  \"speedup_4_over_1\": %.3f,\n"
               "  \"modeled_counters_identical\": %s\n"
               "}\n",
               nsteps, max_level, wall[0], wall[1], wall[2],
               wall[2] > 0 ? wall[0] / wall[2] : 0.0,
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("# wrote %s (speedup 4/1 = %.2fx, counters identical: %s)\n",
              path.c_str(), wall[2] > 0 ? wall[0] / wall[2] : 0.0,
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 200, "time steps per arm (paper: 200)");
  rp.declare_int("max_level", 3, "finest AMR level");
  rp.declare_int("sample", 4, "trace every Nth block");
  rp.declare_string("json", "", "write 1/2/4-thread wall times to this file");
  par::declare_runtime_params(rp);
  obs::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  par::apply_runtime_params(rp);
  const int nsteps = static_cast<int>(rp.get_int("nsteps"));
  const int max_level = static_cast<int>(rp.get_int("max_level"));
  const int sample = static_cast<int>(rp.get_int("sample"));

  // Optional run tracing. The ambient install means the arms need no
  // plumbing; lanes cover the widest thread count the scan uses. The
  // arms own their PerfContexts, so the sampler records memory/THP
  // state only (its perf columns stay empty).
  const std::string timeline_path = rp.get_string("obs.timeline");
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<obs::Sampler> sampler;
  if (!timeline_path.empty()) {
    obs::TelemetryOptions topts;
    topts.lanes = std::max(par::threads(), 4);
    telemetry = std::make_unique<obs::Telemetry>(topts);
    telemetry->install();
    obs::SamplerOptions sopts;
    sopts.cadence =
        std::chrono::milliseconds(rp.get_int("obs.sample_ms"));
    sampler = std::make_unique<obs::Sampler>(sopts);
    sampler->start();
  }
  const auto finish_timeline = [&] {
    if (telemetry == nullptr) return;
    sampler->stop();
    telemetry->uninstall();
    obs::write_timeline_file(timeline_path, *telemetry, sampler.get());
    std::printf("# wrote %s (%llu spans, %llu samples)\n",
                timeline_path.c_str(),
                static_cast<unsigned long long>(telemetry->total_spans()),
                static_cast<unsigned long long>(sampler->taken()));
  };

  if (const std::string json = rp.get_string("json"); !json.empty()) {
    const int rc = run_thread_scan(json, nsteps, max_level, sample);
    finish_timeline();
    return rc;
  }

  std::printf(
      "== Table II: 3-d Hydro problem (Sedov, %d steps, hydro instrumented) "
      "==\n",
      nsteps);
  bench::prepare_huge_pool(800ull << 20);

  const auto without =
      bench::run_hydro_arm(mem::HugePolicy::kNone, nsteps, max_level, sample);
  const auto with = bench::run_hydro_arm(mem::HugePolicy::kHugetlbfs, nsteps,
                                         max_level, sample);

  bench::print_paper_table(
      "RESULTS FOR THE 3-D HYDRO PROBLEM (model: A64FX-like core, 1.8 GHz)",
      without, with, bench::kPaperHydroWithout, bench::kPaperHydroWith);

  const double dtlb_ratio = with.measures.dtlb_misses_per_s /
                            without.measures.dtlb_misses_per_s;
  const double time_ratio =
      with.measures.time_seconds / without.measures.time_seconds;
  std::printf(
      "# shape check: DTLB ratio %.3f (paper 0.324), time ratio %.3f "
      "(paper 0.998)\n",
      dtlb_ratio, time_ratio);
  finish_timeline();
  return 0;
}
