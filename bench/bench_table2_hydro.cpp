/// \file bench_table2_hydro.cpp
/// \brief Reproduces Table II: the 3-d Hydro problem with/without HPs.
///
/// Paper: "the 3-d Hydro test ran a Sedov explosion simulation for 200
/// time steps" with the hydrodynamics routines instrumented.
///
/// Usage: bench_table2_hydro [--nsteps=N] [--max_level=L] [--sample=S]

#include <cstdio>

#include "experiment_runners.hpp"
#include "support/runtime_params.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 200, "time steps per arm (paper: 200)");
  rp.declare_int("max_level", 3, "finest AMR level");
  rp.declare_int("sample", 4, "trace every Nth block");
  rp.apply_command_line(argc, argv);
  const int nsteps = static_cast<int>(rp.get_int("nsteps"));
  const int max_level = static_cast<int>(rp.get_int("max_level"));
  const int sample = static_cast<int>(rp.get_int("sample"));

  std::printf(
      "== Table II: 3-d Hydro problem (Sedov, %d steps, hydro instrumented) "
      "==\n",
      nsteps);
  bench::prepare_huge_pool(800ull << 20);

  const auto without =
      bench::run_hydro_arm(mem::HugePolicy::kNone, nsteps, max_level, sample);
  const auto with = bench::run_hydro_arm(mem::HugePolicy::kHugetlbfs, nsteps,
                                         max_level, sample);

  bench::print_paper_table(
      "RESULTS FOR THE 3-D HYDRO PROBLEM (model: A64FX-like core, 1.8 GHz)",
      without, with, bench::kPaperHydroWithout, bench::kPaperHydroWith);

  const double dtlb_ratio = with.measures.dtlb_misses_per_s /
                            without.measures.dtlb_misses_per_s;
  const double time_ratio =
      with.measures.time_seconds / without.measures.time_seconds;
  std::printf(
      "# shape check: DTLB ratio %.3f (paper 0.324), time ratio %.3f "
      "(paper 0.998)\n",
      dtlb_ratio, time_ratio);
  return 0;
}
