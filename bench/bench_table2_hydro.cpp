/// \file bench_table2_hydro.cpp
/// \brief Reproduces Table II: the 3-d Hydro problem with/without HPs.
///
/// Paper: "the 3-d Hydro test ran a Sedov explosion simulation for 200
/// time steps" with the hydrodynamics routines instrumented.
///
/// Usage: bench_table2_hydro [--nsteps=N] [--max_level=L] [--sample=S]
///                           [--par.threads=T] [--json=PATH]
///                           [--obs.timeline=PATH] [--obs.sample_ms=N]
///
/// With --json=PATH the paper table is skipped; instead the without-HP
/// workload runs as two arms — `bulk_sync` (barrier loops) and
/// `task_graph` (the block-task DAG) — at 1, 2 and 4 threads through the
/// shared bench::run_thread_scan harness, and the wall times land in
/// PATH as JSON (the CI perf-trajectory artifact, BENCH_hydro.json).
/// Modeled counters are asserted bit-identical across all six runs: the
/// determinism contract says neither the lane count nor the execution
/// mode may change the physics or the published counters.
///
/// With --obs.timeline=PATH (or FLASHHP_TELEMETRY) the whole bench is
/// traced — per-lane spans plus a background memory/THP sampler — and
/// exported as a chrome://tracing JSON, so an arm-vs-arm wall-time gap
/// can be read span by span instead of as one number.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "experiment_runners.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "rt/runtime.hpp"
#include "support/runtime_params.hpp"

namespace {

/// One scan run: the without-HP Sedov workload in the given execution
/// mode. Returns the wall time of the evolution loop only: mesh setup
/// and the serial tracing/commit work would otherwise dilute the
/// reported parallel-sweep speedup.
double run_hydro_scan_arm(fhp::bench::ExperimentArm& arm, fhp::sim::ExecMode mode,
                          int nsteps, int max_level, int sample,
                          int threads) {
  using namespace fhp;
  // Each scan run is a tenant: its own Runtime (explicit lane count)
  // carving from the shared process pool.
  rt::RuntimeOptions ropt;
  ropt.lanes = threads;
  ropt.pool = &rt::Runtime::process_default().page_pool();
  rt::Runtime runtime(ropt);
  sim::SedovParams params;
  params.max_level = max_level;
  params.maxblocks = 700;
  sim::SedovSetup setup(params, mem::HugePolicy::kNone, runtime);
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(setup.mesh(), setup.eos(), hopt);
  sim::DriverOptions dopt;
  dopt.nsteps = nsteps;
  dopt.trace_sample = sample;
  dopt.verbose = false;
  dopt.exec_mode = mode;
  sim::DriverUnits units = arm.units();
  units.runtime = &runtime;
  sim::Driver driver(setup.mesh(), hydro, arm.timers(), dopt, units);
  const auto t0 = std::chrono::steady_clock::now();
  driver.evolve();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The bulk_sync/task_graph x 1/2/4-thread scan behind --json=PATH.
int run_thread_scan(const std::string& path, int nsteps, int max_level,
                    int sample) {
  using namespace fhp;
  const std::vector<bench::ScanArm> arms = {
      {"bulk_sync",
       [&](bench::ExperimentArm& arm, int threads) {
         return run_hydro_scan_arm(arm, sim::ExecMode::kBulkSync, nsteps,
                                   max_level, sample, threads);
       }},
      {"task_graph",
       [&](bench::ExperimentArm& arm, int threads) {
         return run_hydro_scan_arm(arm, sim::ExecMode::kTaskGraph, nsteps,
                                   max_level, sample, threads);
       }},
  };
  return bench::run_thread_scan(path, "table2_hydro", arms,
                                [&](bench::JsonWriter& w) {
                                  w.field("nsteps", nsteps);
                                  w.field("max_level", max_level);
                                });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 200, "time steps per arm (paper: 200)");
  rp.declare_int("max_level", 3, "finest AMR level");
  rp.declare_int("sample", 4, "trace every Nth block");
  rp.declare_string("json", "", "write 1/2/4-thread wall times to this file");
  par::declare_runtime_params(rp);
  obs::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  par::apply_runtime_params(rp);
  const int nsteps = static_cast<int>(rp.get_int("nsteps"));
  const int max_level = static_cast<int>(rp.get_int("max_level"));
  const int sample = static_cast<int>(rp.get_int("sample"));

  // Optional run tracing. The ambient install means the arms need no
  // plumbing; lanes cover the widest thread count the scan uses. The
  // arms own their PerfContexts, so the sampler records memory/THP
  // state only (its perf columns stay empty).
  const std::string timeline_path = rp.get_string("obs.timeline");
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<obs::Sampler> sampler;
  if (!timeline_path.empty()) {
    obs::TelemetryOptions topts;
    topts.lanes = std::max(par::threads(), 4);
    telemetry = std::make_unique<obs::Telemetry>(topts);
    telemetry->install();
    obs::SamplerOptions sopts;
    sopts.cadence =
        std::chrono::milliseconds(rp.get_int("obs.sample_ms"));
    sampler = std::make_unique<obs::Sampler>(sopts);
    sampler->start();
  }
  const auto finish_timeline = [&] {
    if (telemetry == nullptr) return;
    sampler->stop();
    telemetry->uninstall();
    obs::write_timeline_file(timeline_path, *telemetry, sampler.get());
    std::printf("# wrote %s (%llu spans, %llu samples)\n",
                timeline_path.c_str(),
                static_cast<unsigned long long>(telemetry->total_spans()),
                static_cast<unsigned long long>(sampler->taken()));
  };

  if (const std::string json = rp.get_string("json"); !json.empty()) {
    const int rc = run_thread_scan(json, nsteps, max_level, sample);
    finish_timeline();
    return rc;
  }

  std::printf(
      "== Table II: 3-d Hydro problem (Sedov, %d steps, hydro instrumented) "
      "==\n",
      nsteps);
  bench::prepare_huge_pool(800ull << 20);

  const auto without =
      bench::run_hydro_arm(mem::HugePolicy::kNone, nsteps, max_level, sample);
  const auto with = bench::run_hydro_arm(mem::HugePolicy::kHugetlbfs, nsteps,
                                         max_level, sample);

  bench::print_paper_table(
      "RESULTS FOR THE 3-D HYDRO PROBLEM (model: A64FX-like core, 1.8 GHz)",
      without, with, bench::kPaperHydroWithout, bench::kPaperHydroWith);

  const double dtlb_ratio = with.measures.dtlb_misses_per_s /
                            without.measures.dtlb_misses_per_s;
  const double time_ratio =
      with.measures.time_seconds / without.measures.time_seconds;
  std::printf(
      "# shape check: DTLB ratio %.3f (paper 0.324), time ratio %.3f "
      "(paper 0.998)\n",
      dtlb_ratio, time_ratio);
  finish_timeline();
  return 0;
}
