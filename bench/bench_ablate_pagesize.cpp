/// \file bench_ablate_pagesize.cpp
/// \brief Ablation A1: DTLB misses vs page size, plus pool placement arms.
///
/// Part 1 — the paper's motivation: sweep the translation page size
/// (4 KiB / 64 KiB / 2 MiB / 512 MiB — the sizes Ookami's kernel was
/// booted with) over the same traced sweep kernels and report the modeled
/// L1-DTLB misses and page walks: misses should fall monotonically until
/// the working set's page count fits the TLB.
///
/// Part 2 — the RemoteHugePages ablation: a two-node machine whose
/// *local* hugetlb pool has run dry (node0 free=0) while the remote pool
/// has capacity (node1). Under kLocalFirst the PagePool degrades every
/// block to local base pages; under kRemoteHugeFirst it places them on
/// remote huge pages, paying the NUMA surcharge but dodging the page
/// walks. In the regime where walks are poorly hidden (the paper's
/// A64FX-with-4K case), remote-huge beats local-small — the claim this
/// arm pair measures. Exhaustion handling is exercised end to end: the
/// pool never crashes, it degrades and counts.
///
/// With --json=PATH both parts are written through bench::JsonWriter.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "mem/huge_policy.hpp"
#include "mem/page_pool.hpp"
#include "mesh/amr_mesh.hpp"
#include "rt/runtime.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace {

using namespace fhp;

struct SweepRow {
  const char* name;
  std::uint64_t accesses = 0;
  std::uint64_t l1_tlb_misses = 0;
  std::uint64_t walks = 0;
};

struct PlacementRow {
  const char* name;
  mem::PlacementPolicy policy{};
  int blocks = 0;
  int huge_blocks = 0;
  int remote_blocks = 0;
  std::uint64_t l1_tlb_misses = 0;
  std::uint64_t walks = 0;
  double modeled_cycles = 0;
  mem::PoolCounters counters;
};

/// The two-node exhaustion inventory: local pool dry, remote pool full.
std::vector<mem::NodeHugePools> two_node_inventory() {
  mem::HugetlbPool dry;
  dry.page_bytes = mem::kPage2M;
  dry.nr_hugepages = 256;
  dry.free_hugepages = 0;
  mem::HugetlbPool full = dry;
  full.free_hugepages = 256;
  return {{0, {dry}}, {1, {full}}};
}

/// Machine parameters for the placement arms: the regime where page
/// walks are poorly hidden (walk_overlap 0.5 instead of the calibrated
/// 0.97) and the inter-node link is a modest surcharge — an
/// A64FX-CMG-like setting where the RemoteHugePages trade pays off.
tlb::MachineParams placement_machine_params() {
  tlb::MachineParams p;
  p.walk_overlap = 0.5;
  p.numa.local_node = 0;
  p.numa.remote_mem_extra_cycles = 40;
  p.numa.remote_walk_extra_cycles = 120;
  p.numa.remote_bandwidth_factor = 0.9;
  return p;
}

/// Trace the full-mesh hydro-shaped sweep with per-block pool placement:
/// every block is planned through \p pool and the machine charged on the
/// node (and at the page size) the pool decided.
PlacementRow run_placement_arm(const char* name, mesh::AmrMesh& mesh,
                               mem::PlacementPolicy policy) {
  mem::PagePoolConfig cfg;
  cfg.inventory = two_node_inventory();
  cfg.local_node = 0;
  cfg.placement = policy;
  // No THP tier: exhaustion must degrade all the way to base pages.
  cfg.thp_root = "/flashhp-nonexistent";
  cfg.hugepages_root = "/flashhp-nonexistent";
  mem::PagePool pool;
  pool.init(cfg);

  tlb::Machine machine(placement_machine_params());
  tlb::Tracer tracer(&machine);
  const mesh::MeshConfig& c = mesh.config();
  const std::size_t block_bytes =
      mesh.unk().block_stride() * sizeof(double);

  PlacementRow row;
  row.name = name;
  row.policy = policy;
  for (int b : mesh.tree().leaves_morton()) {
    const mem::PoolDecision d =
        pool.plan(block_bytes, mem::HugePolicy::kHugetlbfs);
    machine.apply_placement(d);
    const std::uint8_t shift = d.tier == mem::Backing::kHugetlbfs
                                   ? tlb::kShift2M
                                   : tlb::kShift4K;
    ++row.blocks;
    if (d.tier == mem::Backing::kHugetlbfs) ++row.huge_blocks;
    if (d.remote) ++row.remote_blocks;
    for (int axis = 0; axis < c.ndim; ++axis) {
      mesh.unk().trace_sweep_axis(tracer, b, axis, c.ilo(), c.ihi(), c.jlo(),
                                  c.jhi(), c.klo(), c.khi(), c.nvar(),
                                  /*nwrite=*/7, shift);
    }
  }
  const auto& q = machine.quantum();
  row.l1_tlb_misses = q.l1_tlb_misses;
  row.walks = q.walks;
  row.modeled_cycles = machine.model_cycles(q);
  row.counters = pool.counters();
  pool.fini();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhp;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  std::printf("== Ablation A1: DTLB misses vs page size (unk sweeps) ==\n");

  mesh::MeshConfig config;
  config.ndim = 3;
  config.nzb = 16;
  config.nscalars = 2;
  config.maxblocks = 80;
  config.max_level = 2;
  config.nroot = {2, 2, 2};
  rt::Runtime& runtime = rt::Runtime::process_default();
  mesh::AmrMesh mesh(config, mem::HugePolicy::kNone, runtime.layout(),
                     runtime.page_pool());
  // Refine everything once so the mesh has 64 leaves (~75 MiB of unk).
  for (int b : mesh.tree().leaves_morton()) {
    mesh.refine_block(b);
  }

  TableWriter t("modeled translation behaviour of full-mesh hydro sweeps");
  t.set_header({"Page size", "Accesses", "L1 DTLB misses", "Walks",
                "Miss rate"});

  struct Case {
    const char* name;
    std::uint8_t shift;
  };
  const Case cases[] = {{"4 KiB", tlb::kShift4K},
                        {"64 KiB", tlb::kShift64K},
                        {"2 MiB", tlb::kShift2M},
                        {"512 MiB", tlb::kShift512M}};

  std::vector<SweepRow> sweep;
  std::uint64_t prev = ~0ull;
  bool monotone = true;
  for (const Case& cs : cases) {
    // Same hydro-shaped sweep at every page size: the explicit-shift
    // trace_sweep_axis overload models one address stream under several
    // translation regimes without remapping the arena.
    tlb::Machine machine;
    tlb::Tracer tracer(&machine);
    const mesh::MeshConfig& c = mesh.config();
    for (int b : mesh.tree().leaves_morton()) {
      for (int axis = 0; axis < c.ndim; ++axis) {
        mesh.unk().trace_sweep_axis(tracer, b, axis, c.ilo(), c.ihi(),
                                    c.jlo(), c.jhi(), c.klo(), c.khi(),
                                    c.nvar(), /*nwrite=*/7, cs.shift);
      }
    }
    const auto& q = machine.quantum();
    t.add_row({cs.name, format_measure(static_cast<double>(q.accesses)),
               format_measure(static_cast<double>(q.l1_tlb_misses)),
               format_measure(static_cast<double>(q.walks)),
               format_ratio(static_cast<double>(q.l1_tlb_misses) /
                            static_cast<double>(q.accesses))});
    sweep.push_back({cs.name, q.accesses, q.l1_tlb_misses, q.walks});
    if (q.l1_tlb_misses > prev) monotone = false;
    prev = q.l1_tlb_misses;
  }
  t.render(std::cout);
  std::printf("# misses monotone non-increasing with page size: %s\n",
              monotone ? "YES" : "NO");

  // ---- Part 2: pool placement under local-pool exhaustion --------------
  std::printf("\n== Ablation A2: remote-huge vs local-small placement ==\n");
  const PlacementRow local =
      run_placement_arm("static_local", mesh, mem::PlacementPolicy::kLocalFirst);
  const PlacementRow remote = run_placement_arm(
      "remote_huge_first", mesh, mem::PlacementPolicy::kRemoteHugeFirst);

  TableWriter pt("two-node machine, local 2 MiB pool exhausted");
  pt.set_header({"Arm", "Huge blocks", "Remote blocks", "L1 DTLB misses",
                 "Walks", "Modeled cycles"});
  for (const PlacementRow* r : {&local, &remote}) {
    pt.add_row({r->name, std::to_string(r->huge_blocks),
                std::to_string(r->remote_blocks),
                format_measure(static_cast<double>(r->l1_tlb_misses)),
                format_measure(static_cast<double>(r->walks)),
                format_measure(r->modeled_cycles)});
  }
  pt.render(std::cout);
  const bool remote_wins = remote.modeled_cycles < local.modeled_cycles;
  std::printf("# remote-huge beats local-small: %s (%.3fx)\n",
              remote_wins ? "YES" : "NO",
              remote.modeled_cycles > 0
                  ? local.modeled_cycles / remote.modeled_cycles
                  : 0.0);
  std::printf(
      "# degradation accounting: local arm exhausted=%llu base-fallback=%llu;"
      " remote arm remote-huge=%llu\n",
      static_cast<unsigned long long>(local.counters.exhausted_events),
      static_cast<unsigned long long>(local.counters.base_fallbacks),
      static_cast<unsigned long long>(remote.counters.remote_huge_allocs));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "ablate_pagesize");
    w.begin_array("page_size_sweep");
    for (const SweepRow& r : sweep) {
      w.begin_object();
      w.field("page", r.name);
      w.field("accesses", r.accesses);
      w.field("l1_tlb_misses", r.l1_tlb_misses);
      w.field("walks", r.walks);
      w.end_object();
    }
    w.end_array();
    w.field("misses_monotone", monotone);
    w.begin_object("placement");
    w.field("local_node", 0);
    w.field("thp_available", false);
    w.begin_array("arms");
    for (const PlacementRow* r : {&local, &remote}) {
      w.begin_object();
      w.field("name", r->name);
      w.field("policy", std::string(mem::to_string(r->policy)));
      w.field("blocks", r->blocks);
      w.field("huge_blocks", r->huge_blocks);
      w.field("remote_blocks", r->remote_blocks);
      w.field("l1_tlb_misses", r->l1_tlb_misses);
      w.field("walks", r->walks);
      w.field("modeled_cycles", r->modeled_cycles);
      w.field("pool_exhausted_events", r->counters.exhausted_events);
      w.field("pool_base_fallbacks", r->counters.base_fallbacks);
      w.field("pool_remote_huge_allocs", r->counters.remote_huge_allocs);
      w.end_object();
    }
    w.end_array();
    w.field("remote_huge_beats_local_small", remote_wins);
    w.end_object();  // placement
    w.end_object();  // root
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }

  return monotone && remote_wins ? 0 : 1;
}
