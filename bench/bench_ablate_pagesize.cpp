/// \file bench_ablate_pagesize.cpp
/// \brief Ablation A1: DTLB misses vs page size for the unk access pattern.
///
/// The paper motivates huge pages from the stride structure of
/// unk(nvar, i, j, k, maxblocks). This ablation sweeps the translation
/// page size (4 KiB / 64 KiB / 2 MiB / 512 MiB — the sizes Ookami's
/// kernel was booted with) over the same traced sweep kernels and reports
/// the modeled L1-DTLB misses and page walks: misses should fall
/// monotonically until the working set's page count fits the TLB.

#include <cstdio>
#include <iostream>

#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace {
using namespace fhp;
}  // namespace

int main() {
  using namespace fhp;
  std::printf("== Ablation A1: DTLB misses vs page size (unk sweeps) ==\n");

  mesh::MeshConfig config;
  config.ndim = 3;
  config.nzb = 16;
  config.nscalars = 2;
  config.maxblocks = 80;
  config.max_level = 2;
  config.nroot = {2, 2, 2};
  mesh::AmrMesh mesh(config, mem::HugePolicy::kNone);
  // Refine everything once so the mesh has 64 leaves (~75 MiB of unk).
  for (int b : mesh.tree().leaves_morton()) {
    mesh.refine_block(b);
  }

  TableWriter t("modeled translation behaviour of full-mesh hydro sweeps");
  t.set_header({"Page size", "Accesses", "L1 DTLB misses", "Walks",
                "Miss rate"});

  struct Case {
    const char* name;
    std::uint8_t shift;
  };
  const Case cases[] = {{"4 KiB", tlb::kShift4K},
                        {"64 KiB", tlb::kShift64K},
                        {"2 MiB", tlb::kShift2M},
                        {"512 MiB", tlb::kShift512M}};

  std::uint64_t prev = ~0ull;
  bool monotone = true;
  for (const Case& cs : cases) {
    // Same hydro-shaped sweep at every page size: the explicit-shift
    // trace_sweep_axis overload models one address stream under several
    // translation regimes without remapping the arena.
    tlb::Machine machine;
    tlb::Tracer tracer(&machine);
    const mesh::MeshConfig& c = mesh.config();
    for (int b : mesh.tree().leaves_morton()) {
      for (int axis = 0; axis < c.ndim; ++axis) {
        mesh.unk().trace_sweep_axis(tracer, b, axis, c.ilo(), c.ihi(),
                                    c.jlo(), c.jhi(), c.klo(), c.khi(),
                                    c.nvar(), /*nwrite=*/7, cs.shift);
      }
    }
    const auto& q = machine.quantum();
    t.add_row({cs.name, format_measure(static_cast<double>(q.accesses)),
               format_measure(static_cast<double>(q.l1_tlb_misses)),
               format_measure(static_cast<double>(q.walks)),
               format_ratio(static_cast<double>(q.l1_tlb_misses) /
                            static_cast<double>(q.accesses))});
    if (q.l1_tlb_misses > prev) monotone = false;
    prev = q.l1_tlb_misses;
  }
  t.render(std::cout);
  std::printf("# misses monotone non-increasing with page size: %s\n",
              monotone ? "YES" : "NO");
  return monotone ? 0 : 1;
}
