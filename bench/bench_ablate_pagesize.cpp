/// \file bench_ablate_pagesize.cpp
/// \brief Ablation A1: DTLB misses vs page size for the unk access pattern.
///
/// The paper motivates huge pages from the stride structure of
/// unk(nvar, i, j, k, maxblocks). This ablation sweeps the translation
/// page size (4 KiB / 64 KiB / 2 MiB / 512 MiB — the sizes Ookami's
/// kernel was booted with) over the same traced sweep kernels and reports
/// the modeled L1-DTLB misses and page walks: misses should fall
/// monotonically until the working set's page count fits the TLB.

#include <cstdio>
#include <iostream>

#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace {
using namespace fhp;
}  // namespace

int main() {
  using namespace fhp;
  std::printf("== Ablation A1: DTLB misses vs page size (unk sweeps) ==\n");

  mesh::MeshConfig config;
  config.ndim = 3;
  config.nzb = 16;
  config.nscalars = 2;
  config.maxblocks = 80;
  config.max_level = 2;
  config.nroot = {2, 2, 2};
  mesh::AmrMesh mesh(config, mem::HugePolicy::kNone);
  // Refine everything once so the mesh has 64 leaves (~75 MiB of unk).
  for (int b : mesh.tree().leaves_morton()) {
    mesh.refine_block(b);
  }

  TableWriter t("modeled translation behaviour of full-mesh hydro sweeps");
  t.set_header({"Page size", "Accesses", "L1 DTLB misses", "Walks",
                "Miss rate"});

  struct Case {
    const char* name;
    std::uint8_t shift;
  };
  const Case cases[] = {{"4 KiB", tlb::kShift4K},
                        {"64 KiB", tlb::kShift64K},
                        {"2 MiB", tlb::kShift2M},
                        {"512 MiB", tlb::kShift512M}};

  std::uint64_t prev = ~0ull;
  bool monotone = true;
  for (const Case& cs : cases) {
    // The trace uses the container's cached shift; override it by tracing
    // through a machine with the shift applied per touch. We re-run the
    // sweeps with a machine whose touches carry cs.shift by temporarily
    // rebuilding the trace: trace_sweep_axis uses unk.page_shift(), so we
    // replay manually here.
    tlb::Machine machine;
    tlb::Tracer tracer(&machine);
    const mesh::MeshConfig& c = mesh.config();
    for (int b : mesh.tree().leaves_morton()) {
      for (int axis = 0; axis < c.ndim; ++axis) {
        const int inner = axis;
        const int mid = axis == 0 ? 1 : 0;
        const int outer = axis == 2 ? 1 : 2;
        const int lo[3] = {c.ilo(), c.jlo(), c.klo()};
        const int hi[3] = {c.ihi(), c.jhi(), c.khi()};
        int idx[3];
        for (idx[outer] = lo[outer]; idx[outer] < hi[outer]; ++idx[outer]) {
          for (idx[mid] = lo[mid]; idx[mid] < hi[mid]; ++idx[mid]) {
            for (idx[inner] = lo[inner]; idx[inner] < hi[inner];
                 ++idx[inner]) {
              const double* zone =
                  mesh.unk().ptr(0, idx[0], idx[1], idx[2], b);
              tracer.touch(zone, 8ull * static_cast<unsigned>(c.nvar()),
                           false, cs.shift);
              tracer.touch(zone, 8ull * 7, true, cs.shift);
            }
          }
        }
      }
    }
    const auto& q = machine.quantum();
    t.add_row({cs.name, format_measure(static_cast<double>(q.accesses)),
               format_measure(static_cast<double>(q.l1_tlb_misses)),
               format_measure(static_cast<double>(q.walks)),
               format_ratio(static_cast<double>(q.l1_tlb_misses) /
                            static_cast<double>(q.accesses))});
    if (q.l1_tlb_misses > prev) monotone = false;
    prev = q.l1_tlb_misses;
  }
  t.render(std::cout);
  std::printf("# misses monotone non-increasing with page size: %s\n",
              monotone ? "YES" : "NO");
  return monotone ? 0 : 1;
}
