/// \file experiment_runners.hpp
/// \brief The two experiment arms (EOS / 3-d Hydro) as reusable functions.
///
/// bench_table1_eos, bench_table2_hydro and bench_fig1_ratios all run the
/// same two workloads; this header holds the single implementation.

#pragma once

#include <chrono>

#include "experiment_common.hpp"
#include "hydro/hydro.hpp"
#include "perf/timers.hpp"
#include "sim/driver.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"
#include "tlb/machine.hpp"

namespace fhp::bench {

/// One arm of the EOS experiment (2-d supernova, EOS instrumented).
inline ArmResult run_eos_arm(mem::HugePolicy policy, int nsteps,
                             int max_level, int sample) {
  reset_counters();
  const auto wall0 = std::chrono::steady_clock::now();

  sim::SupernovaParams params;
  params.max_level = max_level;
  params.maxblocks = 1500;
  params.table_cache = "helm_table.bin";
  sim::SupernovaSetup setup(params, policy);

  mesh::AmrMesh& mesh = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(mesh, setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());

  perf::Timers timers;
  tlb::Machine machine;
  sim::DriverOptions dopt;
  dopt.nsteps = nsteps;
  dopt.trace_sample = sample;
  dopt.verbose = false;
  dopt.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + sim::snvar::kPhi};
  sim::Driver driver(mesh, hydro, timers, dopt);
  driver.set_flame(&setup.flame());
  driver.set_gravity(&setup.gravity());
  driver.set_machine(&machine);
  driver.set_eos_trace(
      [&setup](tlb::Tracer& t, int b) { setup.trace_eos_block(t, b); });

  driver.evolve();

  ArmResult arm;
  finish_arm(arm, "eos");
  arm.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall0)
                         .count();
  arm.backing = mesh.unk().region().describe() + " + table " +
                setup.table().region().describe();
  arm.resident_huge = mesh.unk().region().resident_huge_bytes() +
                      setup.table().region().resident_huge_bytes();
  return arm;
}

/// One arm of the 3-d Hydro experiment (Sedov, hydro instrumented).
inline ArmResult run_hydro_arm(mem::HugePolicy policy, int nsteps,
                               int max_level, int sample) {
  reset_counters();
  const auto wall0 = std::chrono::steady_clock::now();

  sim::SedovParams params;
  params.max_level = max_level;
  params.maxblocks = 700;
  sim::SedovSetup setup(params, policy);

  mesh::AmrMesh& mesh = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(mesh, setup.eos(), hopt);

  perf::Timers timers;
  tlb::Machine machine;
  sim::DriverOptions dopt;
  dopt.nsteps = nsteps;
  dopt.trace_sample = sample;
  dopt.verbose = false;
  sim::Driver driver(mesh, hydro, timers, dopt);
  driver.set_machine(&machine);
  driver.set_eos_trace([&mesh](tlb::Tracer& t, int b) {
    const mesh::MeshConfig& c = mesh.config();
    mesh.unk().trace_sweep(t, b, c.ilo(), c.ihi(), c.jlo(), c.jhi(), c.klo(),
                           c.khi(), 8, 6);
    t.compute(static_cast<std::uint64_t>(c.nxb) * c.nyb * c.nzb * 40, 0);
  });

  driver.evolve();

  ArmResult arm;
  finish_arm(arm, "hydro");
  arm.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall0)
                         .count();
  arm.backing = mesh.unk().region().describe();
  arm.resident_huge = mesh.unk().region().resident_huge_bytes();
  return arm;
}

}  // namespace fhp::bench
