/// \file experiment_runners.hpp
/// \brief The two experiment arms (EOS / 3-d Hydro) as reusable functions.
///
/// bench_table1_eos, bench_table2_hydro and bench_fig1_ratios all run the
/// same two workloads; this header holds the single implementation. Each
/// arm builds on ExperimentArm (its own PerfContext + machine + timers),
/// and takes a \p threads lane count for the block-parallel sweeps —
/// modeled counters are bit-identical across thread counts because
/// tracing replays serially into the arm's machine model.

#pragma once

#include "experiment_common.hpp"
#include "hydro/hydro.hpp"
#include "par/parallel.hpp"
#include "rt/runtime.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"

namespace fhp::bench {

/// One arm of the EOS experiment (2-d supernova, EOS instrumented).
inline ArmResult run_eos_arm(mem::HugePolicy policy, int nsteps,
                             int max_level, int sample,
                             int threads = par::threads()) {
  // Each arm is a tenant: its own Runtime (explicit lane count) carving
  // from the shared process pool, so back-to-back arms reuse the same
  // huge-page inventory.
  rt::RuntimeOptions ropt;
  ropt.lanes = threads;
  ropt.pool = &rt::Runtime::process_default().page_pool();
  rt::Runtime runtime(ropt);
  ExperimentArm arm;

  sim::SupernovaParams params;
  params.max_level = max_level;
  params.maxblocks = 1500;
  params.table_cache = "helm_table.bin";
  sim::SupernovaSetup setup(params, policy, runtime);

  mesh::AmrMesh& mesh = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(mesh, setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());

  sim::DriverOptions dopt;
  dopt.nsteps = nsteps;
  dopt.trace_sample = sample;
  dopt.verbose = false;
  dopt.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + sim::snvar::kPhi};
  sim::DriverUnits units = arm.units();
  units.runtime = &runtime;
  units.flame = &setup.flame();
  units.gravity = &setup.gravity();
  units.eos_trace =
      [&setup](tlb::Tracer& t, int b) { setup.trace_eos_block(t, b); };
  sim::Driver driver(mesh, hydro, arm.timers(), dopt, units);

  driver.evolve();

  ArmResult result = arm.finish("eos");
  result.backing = mesh.unk().region().describe() + " + table " +
                   setup.table().region().describe();
  result.resident_huge = mesh.unk().region().resident_huge_bytes() +
                         setup.table().region().resident_huge_bytes();
  return result;
}

/// One arm of the 3-d Hydro experiment (Sedov, hydro instrumented).
inline ArmResult run_hydro_arm(mem::HugePolicy policy, int nsteps,
                               int max_level, int sample,
                               int threads = par::threads()) {
  rt::RuntimeOptions ropt;
  ropt.lanes = threads;
  ropt.pool = &rt::Runtime::process_default().page_pool();
  rt::Runtime runtime(ropt);
  ExperimentArm arm;

  sim::SedovParams params;
  params.max_level = max_level;
  params.maxblocks = 700;
  sim::SedovSetup setup(params, policy, runtime);

  mesh::AmrMesh& mesh = setup.mesh();
  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(mesh, setup.eos(), hopt);

  sim::DriverOptions dopt;
  dopt.nsteps = nsteps;
  dopt.trace_sample = sample;
  dopt.verbose = false;
  sim::DriverUnits units = arm.units();
  units.runtime = &runtime;
  units.eos_trace = [&mesh](tlb::Tracer& t, int b) {
    const mesh::MeshConfig& c = mesh.config();
    mesh.unk().trace_sweep(t, b, c.ilo(), c.ihi(), c.jlo(), c.jhi(), c.klo(),
                           c.khi(), 8, 6);
    t.compute(static_cast<std::uint64_t>(c.nxb) * c.nyb * c.nzb * 40, 0);
  };
  sim::Driver driver(mesh, hydro, arm.timers(), dopt, units);

  driver.evolve();

  ArmResult result = arm.finish("hydro");
  result.backing = mesh.unk().region().describe();
  result.resident_huge = mesh.unk().region().resident_huge_bytes();
  return result;
}

}  // namespace fhp::bench
