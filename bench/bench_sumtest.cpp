/// \file bench_sumtest.cpp
/// \brief The paper's §IV diagnostic: static vs dynamic 2-d array sums.
///
/// "We wrote two simple Fortran test programs, one statically allocating
/// memory for a 2-d array and one dynamically allocating memory for a 2-d
/// array, and then just repeated calculating sums over the arrays. As
/// expected, the program with the dynamically allocated array was able to
/// use huge pages ... while the statically allocated array version could
/// not" — transparent huge pages only map anonymous regions.
///
/// This benchmark does the same: sums a statically allocated (BSS) array
/// and a dynamically allocated one (under the huge-page policy), reports
/// wall time, what the kernel says about the backing (the paper's
/// /proc-based verification), and the machine model's DTLB misses for a
/// column-major traversal (the stride case that hurts).

#include <chrono>
#include <cstdio>
#include <iostream>

#include "mem/hugeadm.hpp"
#include "mem/page_size.hpp"
#include "mem/mapped_region.hpp"
#include "mem/meminfo.hpp"
#include "support/string_util.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"

namespace {

using namespace fhp;

constexpr int kRows = 1024;
constexpr int kCols = 2048;  // 16 MiB of doubles

// The "statically allocated" array of the paper's first test program.
double g_static_array[kRows][kCols];

double sum_rowwise(const double* data) {
  double total = 0.0;
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      total += data[static_cast<std::size_t>(r) * kCols + c];
    }
  }
  return total;
}

/// Column-major traversal: stride kCols*8 = one page per element at 4 KiB.
double sum_columnwise(const double* data) {
  double total = 0.0;
  for (int c = 0; c < kCols; ++c) {
    for (int r = 0; r < kRows; ++r) {
      total += data[static_cast<std::size_t>(r) * kCols + c];
    }
  }
  return total;
}

struct SumResult {
  double row_seconds = 0;
  double col_seconds = 0;
  std::uint64_t huge_bytes = 0;
  std::uint64_t model_misses_4k = 0;
  std::uint64_t model_misses_2m = 0;
};

SumResult run(const double* data, std::uint64_t huge_bytes) {
  SumResult out;
  out.huge_bytes = huge_bytes;
  volatile double sink = 0.0;

  auto time_it = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 20; ++rep) sink = fn(data);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count() /
           20.0;
  };
  out.row_seconds = time_it(sum_rowwise);
  out.col_seconds = time_it(sum_columnwise);
  (void)sink;

  // Model DTLB misses of one column-major pass at both page sizes.
  for (const std::uint8_t shift : {tlb::kShift4K, tlb::kShift2M}) {
    tlb::Machine machine;
    for (int c = 0; c < kCols; c += 16) {  // sampled columns
      for (int r = 0; r < kRows; ++r) {
        machine.touch(data + static_cast<std::size_t>(r) * kCols + c, 8,
                      false, shift);
      }
    }
    const auto misses = machine.quantum().l1_tlb_misses * 16;
    if (shift == tlb::kShift4K) {
      out.model_misses_4k = misses;
    } else {
      out.model_misses_2m = misses;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace fhp;
  std::printf("== Sum test: static vs dynamic allocation (paper SIV) ==\n");
  mem::ensure_hugetlb_pool(mem::kPage2M, 24);

  // Static array: the loader placed it in BSS — no huge pages possible.
  for (auto& row : g_static_array) {
    for (double& v : row) v = 1.0;
  }
  const auto static_result =
      run(&g_static_array[0][0],
          mem::range_huge_bytes(g_static_array, sizeof g_static_array));

  // Dynamic array under the huge-page policy.
  mem::MapRequest req;
  req.bytes = sizeof g_static_array;
  req.policy = mem::HugePolicy::kHugetlbfs;
  mem::MappedRegion region(req);
  auto* dynamic_array = static_cast<double*>(region.data());
  for (std::size_t i = 0; i < sizeof g_static_array / 8; ++i) {
    dynamic_array[i] = 1.0;
  }
  const auto dynamic_result =
      run(dynamic_array, region.resident_huge_bytes());

  TableWriter t("static vs dynamic 16 MiB array, 20-pass average");
  t.set_header({"Allocation", "Backing", "Huge bytes", "Row sum (s)",
                "Col sum (s)", "Model col misses 4K", "Model col misses 2M"});
  t.add_row({"static (BSS)", "base pages",
             format_bytes(static_result.huge_bytes),
             format_measure(static_result.row_seconds),
             format_measure(static_result.col_seconds),
             format_measure(static_cast<double>(static_result.model_misses_4k)),
             "-"});
  t.add_row({"dynamic", std::string(to_string(region.backing())),
             format_bytes(dynamic_result.huge_bytes),
             format_measure(dynamic_result.row_seconds),
             format_measure(dynamic_result.col_seconds),
             format_measure(static_cast<double>(dynamic_result.model_misses_4k)),
             format_measure(
                 static_cast<double>(dynamic_result.model_misses_2m))});
  t.render(std::cout);

  const bool expectation =
      static_result.huge_bytes == 0 &&
      (region.backing() == mem::Backing::kSmallPages ||
       dynamic_result.huge_bytes > 0);
  std::printf("# paper expectation (dynamic can get HPs, static cannot): %s\n",
              expectation ? "HOLDS" : "VIOLATED");
  return expectation ? 0 : 1;
}
