/// \file bench_table1_eos.cpp
/// \brief Reproduces Table I: the EOS problem with/without huge pages.
///
/// Paper: "The EOS test ran a 2-d supernova simulation for 50 time steps"
/// with the (Helmholtz) EOS routines instrumented, compiled with the
/// Fujitsu compiler with large pages on vs. off (-Knolargepage).
/// Here: the same 2-d cylindrical deflagration, 50 steps, with the
/// huge-page policy of the mesh + EOS table flipped between arms.
///
/// Usage: bench_table1_eos [--nsteps=N] [--max_level=L] [--sample=S]
///                         [--par.threads=T]

#include <cstdio>

#include "experiment_runners.hpp"
#include "support/runtime_params.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 50, "time steps per arm (paper: 50)");
  rp.declare_int("max_level", 4, "finest AMR level");
  rp.declare_int("sample", 4, "trace every Nth block");
  par::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  par::apply_runtime_params(rp);
  const int nsteps = static_cast<int>(rp.get_int("nsteps"));
  const int max_level = static_cast<int>(rp.get_int("max_level"));
  const int sample = static_cast<int>(rp.get_int("sample"));

  std::printf(
      "== Table I: EOS problem (2-d supernova, %d steps, EOS instrumented) "
      "==\n",
      nsteps);
  bench::prepare_huge_pool(512ull << 20);

  const auto without =
      bench::run_eos_arm(mem::HugePolicy::kNone, nsteps, max_level, sample);
  const auto with = bench::run_eos_arm(mem::HugePolicy::kHugetlbfs, nsteps,
                                       max_level, sample);

  bench::print_paper_table(
      "RESULTS FOR THE EOS PROBLEM (model: A64FX-like core, 1.8 GHz)",
      without, with, bench::kPaperEosWithout, bench::kPaperEosWith);

  const double dtlb_ratio = with.measures.dtlb_misses_per_s /
                            without.measures.dtlb_misses_per_s;
  const double time_ratio =
      with.measures.time_seconds / without.measures.time_seconds;
  std::printf(
      "# shape check: DTLB ratio %.3f (paper 0.047), time ratio %.3f "
      "(paper 0.935)\n",
      dtlb_ratio, time_ratio);
  return 0;
}
