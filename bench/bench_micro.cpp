/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the library's hot paths.
///
/// Covers the allocator (A3), the machine model's per-access cost, the
/// EOS paths (direct Fermi-Dirac vs table interpolation — the ~10^3 gap
/// that makes the table the production path), the Riemann solvers, and
/// mesh guard-cell filling.

#include <benchmark/benchmark.h>

#include "eos/eos_table.hpp"
#include "eos/fermi_dirac.hpp"
#include "eos/gamma_eos.hpp"
#include "eos/helmholtz_eos.hpp"
#include "hydro/riemann.hpp"
#include "mem/arena.hpp"
#include "mem/mapped_region.hpp"
#include "mem/meminfo.hpp"
#include "mesh/amr_mesh.hpp"
#include "rt/runtime.hpp"
#include "tlb/machine.hpp"

namespace {

using namespace fhp;

// Shared execution context for mesh/table construction; the kernels
// measured here are context-independent.
rt::Runtime& proc() { return rt::Runtime::process_default(); }

void BM_ArenaAllocate(benchmark::State& state) {
  mem::Arena arena(mem::HugePolicy::kNone, 16ull << 20);
  benchmark::DoNotOptimize(arena.allocate(64, 64));  // pre-warm first chunk
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.allocate(256, 64));
  }
}
BENCHMARK(BM_ArenaAllocate);

void BM_MappedRegion(benchmark::State& state) {
  const auto policy = static_cast<mem::HugePolicy>(state.range(0));
  for (auto _ : state) {
    mem::MapRequest req;
    req.bytes = 8ull << 20;
    req.policy = policy;
    req.prefault = false;
    mem::MappedRegion region(req);
    benchmark::DoNotOptimize(region.data());
  }
}
BENCHMARK(BM_MappedRegion)
    ->Arg(static_cast<int>(mem::HugePolicy::kNone))
    ->Arg(static_cast<int>(mem::HugePolicy::kThp))
    ->Arg(static_cast<int>(mem::HugePolicy::kHugetlbfs));

void BM_MeminfoParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::MeminfoSnapshot::capture());
  }
}
BENCHMARK(BM_MeminfoParse);

void BM_TlbTouch(benchmark::State& state) {
  tlb::Machine machine;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    machine.touch(reinterpret_cast<void*>(addr), 8, false, tlb::kShift4K);
    addr += 4096;  // miss-heavy stream
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbTouch);

void BM_FermiDiracAll(benchmark::State& state) {
  double eta = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eos::fd_all(eta, 0.02));
    eta += 1e-9;
  }
}
BENCHMARK(BM_FermiDiracAll);

void BM_HelmholtzDirect(benchmark::State& state) {
  const eos::HelmholtzEos direct;
  eos::State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 2.0e9;
  s.temp = 1.0e8;
  for (auto _ : state) {
    direct.eval_one(eos::Mode::kDensTemp, s);
    benchmark::DoNotOptimize(s.pres);
    s.temp += 1.0;  // defeat any memoization
  }
}
BENCHMARK(BM_HelmholtzDirect);

std::shared_ptr<const eos::HelmTable> micro_table() {
  static auto table = std::make_shared<eos::HelmTable>(
      eos::HelmTable::build_or_load(eos::HelmTableSpec{},
                                    mem::HugePolicy::kNone,
                                    proc().page_pool(), "helm_table.bin"));
  return table;
}

void BM_HelmTableInterpolate(benchmark::State& state) {
  auto table = micro_table();
  double rho = 2.0e9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->interpolate(rho, 1.0e8));
    rho *= 1.0000001;
  }
}
BENCHMARK(BM_HelmTableInterpolate);

void BM_HelmTableEosDensEner(benchmark::State& state) {
  const eos::HelmTableEos eos(micro_table());
  eos::State s;
  s.abar = 13.714;
  s.zbar = 6.857;
  s.rho = 2.0e9;
  s.temp = 1.0e8;
  eos.eval_one(eos::Mode::kDensTemp, s);
  const double e0 = s.ener;
  for (auto _ : state) {
    s.ener = e0;
    s.temp = 9.0e7;  // warm-ish start, forces a few Newton steps
    eos.eval_one(eos::Mode::kDensEner, s);
    benchmark::DoNotOptimize(s.temp);
  }
}
BENCHMARK(BM_HelmTableEosDensEner);

void BM_Hllc(benchmark::State& state) {
  hydro::PrimState left{1.0, 0.75, 0.0, 0.0, 1.0, 1.4, 1.4};
  hydro::PrimState right{0.125, 0.0, 0.0, 0.0, 0.1, 1.4, 1.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hydro::hllc(left, right));
  }
}
BENCHMARK(BM_Hllc);

void BM_ExactRiemann(benchmark::State& state) {
  const hydro::ExactRiemann solver(1.4);
  hydro::PrimState left{1.0, 0.0, 0.0, 0.0, 1.0, 1.4, 1.4};
  hydro::PrimState right{0.125, 0.0, 0.0, 0.0, 0.1, 1.4, 1.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(left, right));
  }
}
BENCHMARK(BM_ExactRiemann);

void BM_GuardcellFill(benchmark::State& state) {
  mesh::MeshConfig config;
  config.ndim = 2;
  config.nscalars = 2;
  config.maxblocks = 128;
  config.max_level = 3;
  mesh::AmrMesh mesh(config, mem::HugePolicy::kNone, proc().layout(),
                     proc().page_pool());
  for (int b : mesh.tree().leaves_morton()) mesh.refine_block(b);
  for (auto _ : state) {
    mesh.fill_guardcells();
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(mesh.tree().leaves_morton().size()));
}
BENCHMARK(BM_GuardcellFill);

}  // namespace

BENCHMARK_MAIN();
