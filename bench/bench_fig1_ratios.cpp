/// \file bench_fig1_ratios.cpp
/// \brief Reproduces Figure 1: the with/without-huge-pages ratio bar chart.
///
/// The figure plots, for the EOS (blue) and 3-d Hydro (red) tests, the
/// ratio of each performance measure with huge pages to the measure
/// without: all bars sit near one except the DTLB-miss bars (0.047 and
/// 0.324). This benchmark runs both experiments (reduced step counts by
/// default — the full tables are bench_table1/2) and renders the chart in
/// ASCII plus a CSV block for plotting.
///
/// Usage: bench_fig1_ratios [--eos_steps=N] [--hydro_steps=N]
///                          [--par.threads=T]

#include <cstdio>
#include <iostream>

#include "experiment_runners.hpp"
#include "support/runtime_params.hpp"

namespace {

using namespace fhp;

struct Series {
  const char* name;
  perf::MeasureRatios ratios;
};

void print_chart(const Series& eos, const Series& hydro) {
  struct Bar {
    const char* label;
    double paper_eos, paper_hydro;
    double perf::MeasureRatios::*member;
  };
  const Bar bars[] = {
      {"Hardware (cycles)", 0.936, 0.992, &perf::MeasureRatios::hardware_cycles},
      {"Time (s)", 0.935, 0.999, &perf::MeasureRatios::time_seconds},
      {"SVE instr/cycle", 1.085, 1.0, &perf::MeasureRatios::vector_per_cycle},
      {"Memory (GB/s)", 1.062, 0.999, &perf::MeasureRatios::memory_gbytes_per_s},
      {"DTLB misses", 0.047, 0.324, &perf::MeasureRatios::dtlb_misses_per_s},
      {"FLASH timer", 0.983, 0.977, &perf::MeasureRatios::flash_timer},
  };

  std::printf("\nFig. 1: ratios of measures with HPs to without HPs\n");
  std::printf("(each bar full width = ratio 1.2; paper values bracketed)\n\n");
  for (const Bar& bar : bars) {
    const double e = eos.ratios.*bar.member;
    const double h = hydro.ratios.*bar.member;
    std::printf("%-18s EOS   %-5s |%-36s| [paper %.3f]\n", bar.label,
                format_ratio(e).c_str(), ascii_bar(e, 1.2, 36).c_str(),
                bar.paper_eos);
    std::printf("%-18s Hydro %-5s |%-36s| [paper %.3f]\n", "",
                format_ratio(h).c_str(), ascii_bar(h, 1.2, 36).c_str(),
                bar.paper_hydro);
  }

  std::printf("\nCSV:\nmeasure,eos_ratio,hydro_ratio,paper_eos,paper_hydro\n");
  for (const Bar& bar : bars) {
    std::printf("%s,%.4f,%.4f,%.3f,%.3f\n", bar.label,
                eos.ratios.*bar.member, hydro.ratios.*bar.member,
                bar.paper_eos, bar.paper_hydro);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("eos_steps", 25, "EOS-test steps per arm (table bench: 50)");
  rp.declare_int("hydro_steps", 60,
                 "hydro-test steps per arm (table bench: 200)");
  rp.declare_int("sample", 4, "trace every Nth block");
  par::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  par::apply_runtime_params(rp);
  const int eos_steps = static_cast<int>(rp.get_int("eos_steps"));
  const int hydro_steps = static_cast<int>(rp.get_int("hydro_steps"));
  const int sample = static_cast<int>(rp.get_int("sample"));

  std::printf("== Figure 1: with/without huge-page ratio bar chart ==\n");
  bench::prepare_huge_pool(800ull << 20);

  std::printf("# running EOS arms (%d steps each)...\n", eos_steps);
  const auto eos_without =
      bench::run_eos_arm(mem::HugePolicy::kNone, eos_steps, 4, sample);
  const auto eos_with =
      bench::run_eos_arm(mem::HugePolicy::kHugetlbfs, eos_steps, 4, sample);
  std::printf("# running 3-d Hydro arms (%d steps each)...\n", hydro_steps);
  const auto hyd_without =
      bench::run_hydro_arm(mem::HugePolicy::kNone, hydro_steps, 3, sample);
  const auto hyd_with =
      bench::run_hydro_arm(mem::HugePolicy::kHugetlbfs, hydro_steps, 3,
                           sample);

  Series eos{"EOS", perf::ratios(eos_with.measures, eos_with.flash_timer,
                                 eos_without.measures,
                                 eos_without.flash_timer)};
  Series hydro{"Hydro",
               perf::ratios(hyd_with.measures, hyd_with.flash_timer,
                            hyd_without.measures, hyd_without.flash_timer)};
  print_chart(eos, hydro);
  return 0;
}
