/// \file bench_ablate_layout.cpp
/// \brief Ablation A2: block-data layout x page size, on the real library.
///
/// PARAMESH stores unk(nvar, i, j, k, blk) with the variable index
/// fastest; the library's BlockLayout policy now offers zone-major
/// (contiguous per-variable planes) and tiled alternatives. This ablation
/// traces the same per-variable sweep — read one variable across every
/// zone, the access shape of single-variable kernels like the Löhner
/// estimator, which reads guard zones too — through *real UnkContainers*
/// under every layout x page-size arm, showing how much of the paper's
/// TLB problem is layout-induced rather than page-size-induced.
///
/// Usage: bench_ablate_layout [--json=PATH]
///
/// With --json=PATH the grid additionally lands in PATH as JSON
/// (BENCH_layout.json, the CI artifact; same convention as
/// bench_table2_hydro) and the exit status asserts the headline claim:
/// at 4 KiB pages, zone-major takes >= 10x fewer modeled L1 DTLB misses
/// than variable-major.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/config.hpp"
#include "mesh/layout.hpp"
#include "mesh/unk.hpp"
#include "rt/runtime.hpp"
#include "support/runtime_params.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace {

using namespace fhp;

/// The paper's block shape: 16^3 interior + 4 guards, 15 variables.
mesh::MeshConfig bench_config() {
  mesh::MeshConfig c;
  c.ndim = 3;
  c.nxb = c.nyb = c.nzb = 16;
  c.nguard = 4;
  c.nscalars = 5;  // nvar = 10 + 5 = 15, as in the hydro experiments
  c.maxblocks = 64;
  return c;
}

/// Read every variable at every zone (guards included — analysis kernels
/// like the Löhner estimator consume the padded block) of every block,
/// variable loop outermost: one variable at a time.
tlb::QuantumStats sweep(const mesh::UnkContainer& unk, std::uint8_t shift) {
  tlb::Machine machine;
  tlb::Tracer tracer(&machine);
  for (int v = 0; v < unk.nvar(); ++v) {
    for (int b = 0; b < unk.maxblocks(); ++b) {
      unk.trace_sweep_var(tracer, b, v, 0, unk.ni(), 0, unk.nj(), 0,
                          unk.nk(), /*write=*/false, shift);
    }
  }
  return machine.quantum();
}

struct Cell {
  mesh::LayoutKind layout;
  std::uint8_t shift;
  const char* page;
  tlb::QuantumStats q;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_string("json", "",
                    "write the layout x page-size grid to this file");
  rp.apply_command_line(argc, argv);
  const std::string json = rp.get_string("json");

  std::printf(
      "== Ablation A2: block layout x page size (real containers) ==\n");

  const mesh::MeshConfig config = bench_config();
  constexpr mesh::LayoutKind kLayouts[] = {mesh::LayoutKind::kVarMajor,
                                           mesh::LayoutKind::kZoneMajor,
                                           mesh::LayoutKind::kTiled};
  struct Page {
    const char* name;
    std::uint8_t shift;
  };
  constexpr Page kPages[] = {{"4 KiB", tlb::kShift4K},
                             {"64 KiB", tlb::kShift64K},
                             {"2 MiB", tlb::kShift2M}};

  TableWriter t("per-variable full-block sweep, modeled translation traffic");
  t.set_header({"Layout", "Page size", "Accesses", "L1 DTLB misses", "Walks",
                "Miss rate"});

  std::vector<Cell> cells;
  std::uint64_t vm_4k = 0, zm_4k = 0;
  for (const mesh::LayoutKind layout : kLayouts) {
    const mesh::UnkContainer unk(
        config, mem::HugePolicy::kNone, layout,
        rt::Runtime::process_default().page_pool());
    for (const Page& page : kPages) {
      const tlb::QuantumStats q = sweep(unk, page.shift);
      if (page.shift == tlb::kShift4K) {
        if (layout == mesh::LayoutKind::kVarMajor) vm_4k = q.l1_tlb_misses;
        if (layout == mesh::LayoutKind::kZoneMajor) zm_4k = q.l1_tlb_misses;
      }
      cells.push_back({layout, page.shift, page.name, q});
      t.add_row({std::string(mesh::to_string(layout)), page.name,
                 format_measure(static_cast<double>(q.accesses)),
                 format_measure(static_cast<double>(q.l1_tlb_misses)),
                 format_measure(static_cast<double>(q.walks)),
                 format_ratio(static_cast<double>(q.l1_tlb_misses) /
                              static_cast<double>(q.accesses))});
    }
  }
  t.render(std::cout);

  const double miss_ratio =
      zm_4k > 0 ? static_cast<double>(vm_4k) / static_cast<double>(zm_4k)
                : 0.0;
  const bool claim_holds = miss_ratio >= 10.0;
  std::printf(
      "# variable-major pays %.1fx the zone-major L1 DTLB misses at 4 KiB "
      "pages (claim: >= 10x %s)\n",
      miss_ratio, claim_holds ? "holds" : "FAILS");

  if (json.empty()) return 0;

  std::FILE* f = std::fopen(json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json.c_str());
    return 1;
  }
  bench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "ablate_layout");
  w.begin_object("block");
  w.field("nvar", config.nvar());
  w.field("padded_extent", config.ni());
  w.field("blocks", config.maxblocks);
  w.end_object();
  w.begin_array("grid");
  for (const Cell& c : cells) {
    w.begin_object();
    w.field("layout", std::string(mesh::to_string(c.layout)));
    w.field("page_shift", static_cast<int>(c.shift));
    w.field("page", c.page);
    w.field("accesses", c.q.accesses);
    w.field("l1_dtlb_misses", c.q.l1_tlb_misses);
    w.field("walks", c.q.walks);
    w.end_object();
  }
  w.end_array();
  w.field("var_major_over_zone_major_4k_misses", miss_ratio);
  w.field("zone_major_10x_claim_holds", claim_holds);
  w.end_object();
  std::fclose(f);
  std::printf("# wrote %s\n", json.c_str());
  return claim_holds ? 0 : 1;
}
