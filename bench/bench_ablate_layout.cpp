/// \file bench_ablate_layout.cpp
/// \brief Ablation A2: unk layout — FLASH's variable-major vs zone-major.
///
/// PARAMESH stores unk(nvar, i, j, k, blk) with the variable index
/// fastest; the obvious alternative is zone-major planes (one contiguous
/// plane per variable, SoA). This ablation traces the same per-variable
/// sweep (read one variable across every interior zone — the access shape
/// of single-variable kernels like the Löhner estimator) under both
/// layouts and both page sizes, showing how much of the paper's TLB
/// problem is layout-induced.

#include <cstdio>
#include <iostream>

#include "support/table_writer.hpp"
#include "tlb/machine.hpp"
#include "tlb/trace.hpp"

namespace {

using namespace fhp;

constexpr int kNvar = 15;
constexpr int kN = 24;        // padded block extent (16 + 2*4 guards)
constexpr int kBlocks = 64;

/// Offset of (v, i, j, k, b) in variable-major (FLASH) order.
std::size_t var_major(int v, int i, int j, int k, int b) {
  return static_cast<std::size_t>(v) +
         kNvar * (static_cast<std::size_t>(i) +
                  kN * (static_cast<std::size_t>(j) +
                        kN * (static_cast<std::size_t>(k) +
                              kN * static_cast<std::size_t>(b))));
}

/// Offset in zone-major (SoA) order: variable planes are outermost.
std::size_t zone_major(int v, int i, int j, int k, int b) {
  return static_cast<std::size_t>(i) +
         kN * (static_cast<std::size_t>(j) +
               kN * (static_cast<std::size_t>(k) +
                     kN * (static_cast<std::size_t>(b) +
                           kBlocks * static_cast<std::size_t>(v))));
}

template <typename OffsetFn>
tlb::QuantumStats sweep(const double* base, OffsetFn&& offset,
                        std::uint8_t shift) {
  tlb::Machine machine;
  // Read every variable at every interior zone of every block, variable
  // loop outermost (one variable at a time, as analysis kernels do).
  for (int v = 0; v < kNvar; ++v) {
    for (int b = 0; b < kBlocks; ++b) {
      for (int k = 4; k < kN - 4; ++k) {
        for (int j = 4; j < kN - 4; ++j) {
          for (int i = 4; i < kN - 4; ++i) {
            machine.touch(base + offset(v, i, j, k, b), 8, false, shift);
          }
        }
      }
    }
  }
  return machine.quantum();
}

}  // namespace

int main() {
  using namespace fhp;
  std::printf("== Ablation A2: unk layout (variable-major vs zone-major) ==\n");

  const std::size_t elems =
      static_cast<std::size_t>(kNvar) * kN * kN * kN * kBlocks;
  std::vector<double> storage(elems, 1.0);  // ~106 MiB

  TableWriter t("per-variable full-mesh sweep, modeled translation traffic");
  t.set_header({"Layout", "Page size", "Accesses", "L1 DTLB misses",
                "Walks", "Miss rate"});

  struct Case {
    const char* layout;
    bool variable_major;
    const char* page;
    std::uint8_t shift;
  };
  const Case cases[] = {
      {"variable-major (FLASH)", true, "4 KiB", tlb::kShift4K},
      {"variable-major (FLASH)", true, "2 MiB", tlb::kShift2M},
      {"zone-major (SoA)", false, "4 KiB", tlb::kShift4K},
      {"zone-major (SoA)", false, "2 MiB", tlb::kShift2M},
  };
  double vm_4k_rate = 0, zm_4k_rate = 0;
  for (const Case& cs : cases) {
    const tlb::QuantumStats q =
        cs.variable_major
            ? sweep(storage.data(), var_major, cs.shift)
            : sweep(storage.data(), zone_major, cs.shift);
    const double rate = static_cast<double>(q.l1_tlb_misses) /
                        static_cast<double>(q.accesses);
    if (cs.variable_major && cs.shift == tlb::kShift4K) vm_4k_rate = rate;
    if (!cs.variable_major && cs.shift == tlb::kShift4K) zm_4k_rate = rate;
    t.add_row({cs.layout, cs.page,
               format_measure(static_cast<double>(q.accesses)),
               format_measure(static_cast<double>(q.l1_tlb_misses)),
               format_measure(static_cast<double>(q.walks)),
               format_ratio(rate)});
  }
  t.render(std::cout);
  std::printf(
      "# variable-major pays %.1fx the zone-major miss rate at 4 KiB pages\n",
      zm_4k_rate > 0 ? vm_4k_rate / zm_4k_rate : 0.0);
  return 0;
}
