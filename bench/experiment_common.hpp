/// \file experiment_common.hpp
/// \brief Shared harness for the paper-reproduction benchmarks.
///
/// Each table/figure benchmark runs the same workload twice — without
/// huge pages (policy none) and with them (policy hugetlbfs, which falls
/// back to THP and then to base pages if the system provides no explicit
/// pool) — and derives the paper's five PAPI measures per instrumented
/// region plus the FLASH-timer analog. The harness also performs the
/// paper's §III node preparation (sizing the hugetlb pool, hugeadm-style)
/// and its verification step (watching /proc/meminfo and smaps).

#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "mem/hugeadm.hpp"
#include "mem/huge_policy.hpp"
#include "mem/meminfo.hpp"
#include "mem/page_size.hpp"
#include "perf/events.hpp"
#include "perf/perf_context.hpp"
#include "perf/region.hpp"
#include "perf/timers.hpp"
#include "sim/driver.hpp"
#include "support/string_util.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"

namespace fhp::bench {

/// Everything a table row needs for one experiment arm.
struct ArmResult {
  perf::MeasureSet measures;   ///< the instrumented region's five measures
  double flash_timer = 0;      ///< modeled total evolution time [s]
  double wall_seconds = 0;     ///< host wall clock (reported, not compared)
  std::string backing;         ///< what actually backed the big arrays
  std::uint64_t resident_huge = 0;  ///< bytes verified on huge pages
};

/// The modeled A64FX clock used to derive "Time (s)" from cycles.
inline constexpr double kClockHz = 1.8e9;

/// Prepare the node like the paper's §III: try to reserve a 2 MiB-page
/// pool big enough for \p bytes (plus slack). Returns true if a pool
/// exists afterwards. Prints what happened — verification, not assumption,
/// is the paper's methodological point.
inline bool prepare_huge_pool(std::size_t bytes) {
  const std::size_t pages = (bytes + mem::kPage2M - 1) / mem::kPage2M + 8;
  const auto granted = mem::ensure_hugetlb_pool(mem::kPage2M, pages);
  const auto snap = mem::MeminfoSnapshot::capture();
  std::printf("# hugetlb pool: requested %zu x 2 MiB pages, %s; %s\n", pages,
              granted ? (std::to_string(*granted) + " configured").c_str()
                      : "pool not configurable (not privileged?)",
              snap.summary().c_str());
  return granted.has_value() && *granted > 0;
}

/// One experiment arm's instrumentation bundle: its own PerfContext (so
/// arms cannot leak counters into each other and no reset() hygiene is
/// needed), the machine model wired to it, the FLASH-style timers, and
/// the host wall clock started at construction. All three table/figure
/// benches build their arms on this so the per-arm boilerplate cannot
/// drift between them.
class ExperimentArm {
 public:
  ExperimentArm() : machine_({}, &perf_) {}

  [[nodiscard]] perf::PerfContext& perf() noexcept { return perf_; }
  [[nodiscard]] tlb::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] perf::Timers& timers() noexcept { return timers_; }

  /// DriverUnits with the machine and perf context pre-wired; callers
  /// add flame/gravity/eos_trace as the workload needs.
  [[nodiscard]] sim::DriverUnits units() noexcept {
    sim::DriverUnits u;
    u.machine = &machine_;
    u.perf = &perf_;
    return u;
  }

  /// Derive the arm's measures for \p region_name; stamps the wall clock.
  [[nodiscard]] ArmResult finish(const std::string& region_name) const {
    ArmResult arm;
    const perf::RegionStats stats = perf_.regions().get(region_name);
    arm.measures = perf::derive_measures(stats.totals, kClockHz);
    const perf::CounterSet totals = perf_.snapshot();
    arm.flash_timer =
        static_cast<double>(totals[perf::Event::kCycles]) / kClockHz;
    arm.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0_)
            .count();
    return arm;
  }

 private:
  perf::PerfContext perf_;
  tlb::Machine machine_;
  perf::Timers timers_;
  std::chrono::steady_clock::time_point wall0_ =
      std::chrono::steady_clock::now();
};

/// Print the table in the paper's layout, with the published values as a
/// side-by-side reference, plus the ratio column of Figure 1.
inline void print_paper_table(const std::string& title,
                              const ArmResult& without, const ArmResult& with,
                              const double paper_without[6],
                              const double paper_with[6]) {
  TableWriter t(title);
  t.set_header({"Measure", "Without HPs", "With HPs", "Ratio",
                "Paper w/o", "Paper w/"});
  auto row = [&](const char* name, double a, double b, double pa, double pb) {
    t.add_row({name, format_measure(a), format_measure(b),
               b != 0 && a != 0 ? format_ratio(b / a) : "-",
               format_measure(pa), format_measure(pb)});
  };
  row("Hardware (cycles)", without.measures.hardware_cycles,
      with.measures.hardware_cycles, paper_without[0], paper_with[0]);
  row("Time (s)", without.measures.time_seconds, with.measures.time_seconds,
      paper_without[1], paper_with[1]);
  row("SVE Instructions/cycle", without.measures.vector_per_cycle,
      with.measures.vector_per_cycle, paper_without[2], paper_with[2]);
  row("Memory (Gbytes/s)", without.measures.memory_gbytes_per_s,
      with.measures.memory_gbytes_per_s, paper_without[3], paper_with[3]);
  row("DTLB misses (1/s)", without.measures.dtlb_misses_per_s,
      with.measures.dtlb_misses_per_s, paper_without[4], paper_with[4]);
  row("FLASH Timer (s)", without.flash_timer, with.flash_timer,
      paper_without[5], paper_with[5]);
  t.render(std::cout);
  std::printf("# backing: without = %s; with = %s (huge-resident %s)\n",
              without.backing.c_str(), with.backing.c_str(),
              format_bytes(with.resident_huge).c_str());
  std::printf("# host wall clock: without %.1f s, with %.1f s\n",
              without.wall_seconds, with.wall_seconds);
}

/// The published Tables I and II, for side-by-side printing and for the
/// reproduction-band checks in EXPERIMENTS.md.
/// Order: cycles, time, SVE/cycle, GB/s, DTLB/s, FLASH timer.
inline constexpr double kPaperEosWithout[6] = {1.25e11, 6.97e1, 0.47,
                                               4.19,    2.34e7, 339.032};
inline constexpr double kPaperEosWith[6] = {1.17e11, 6.52e1, 0.51,
                                            4.45,    1.10e6, 333.150};
inline constexpr double kPaperHydroWithout[6] = {1.21e12, 6.70e2, 0.11,
                                                 10.10,   2.42e6, 1203.616};
inline constexpr double kPaperHydroWith[6] = {1.20e12, 6.69e2, 0.11,
                                              10.09,   7.83e5, 1176.312};

}  // namespace fhp::bench
