/// \file experiment_common.hpp
/// \brief Shared harness for the paper-reproduction benchmarks.
///
/// Each table/figure benchmark runs the same workload twice — without
/// huge pages (policy none) and with them (policy hugetlbfs, which falls
/// back to THP and then to base pages if the system provides no explicit
/// pool) — and derives the paper's five PAPI measures per instrumented
/// region plus the FLASH-timer analog. The harness also performs the
/// paper's §III node preparation (sizing the hugetlb pool, hugeadm-style)
/// and its verification step (watching /proc/meminfo and smaps).

#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "mem/hugeadm.hpp"
#include "mem/huge_policy.hpp"
#include "mem/meminfo.hpp"
#include "mem/page_size.hpp"
#include "par/parallel.hpp"
#include "perf/events.hpp"
#include "perf/perf_context.hpp"
#include "perf/region.hpp"
#include "perf/timers.hpp"
#include "sim/driver.hpp"
#include "support/string_util.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"

namespace fhp::bench {

/// Everything a table row needs for one experiment arm.
struct ArmResult {
  perf::MeasureSet measures;   ///< the instrumented region's five measures
  double flash_timer = 0;      ///< modeled total evolution time [s]
  double wall_seconds = 0;     ///< host wall clock (reported, not compared)
  std::string backing;         ///< what actually backed the big arrays
  std::uint64_t resident_huge = 0;  ///< bytes verified on huge pages
};

/// The modeled A64FX clock used to derive "Time (s)" from cycles.
inline constexpr double kClockHz = 1.8e9;

/// Prepare the node like the paper's §III: try to reserve a 2 MiB-page
/// pool big enough for \p bytes (plus slack). Returns true if a pool
/// exists afterwards. Prints what happened — verification, not assumption,
/// is the paper's methodological point.
inline bool prepare_huge_pool(std::size_t bytes) {
  const std::size_t pages = (bytes + mem::kPage2M - 1) / mem::kPage2M + 8;
  const auto granted = mem::ensure_hugetlb_pool(mem::kPage2M, pages);
  const auto snap = mem::MeminfoSnapshot::capture();
  std::printf("# hugetlb pool: requested %zu x 2 MiB pages, %s; %s\n", pages,
              granted ? (std::to_string(*granted) + " configured").c_str()
                      : "pool not configurable (not privileged?)",
              snap.summary().c_str());
  return granted.has_value() && *granted > 0;
}

/// One experiment arm's instrumentation bundle: its own PerfContext (so
/// arms cannot leak counters into each other and no reset() hygiene is
/// needed), the machine model wired to it, the FLASH-style timers, and
/// the host wall clock started at construction. All three table/figure
/// benches build their arms on this so the per-arm boilerplate cannot
/// drift between them.
class ExperimentArm {
 public:
  ExperimentArm() : machine_({}, &perf_) {}

  [[nodiscard]] perf::PerfContext& perf() noexcept { return perf_; }
  [[nodiscard]] tlb::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] perf::Timers& timers() noexcept { return timers_; }

  /// DriverUnits with the machine and perf context pre-wired; callers
  /// add flame/gravity/eos_trace as the workload needs.
  [[nodiscard]] sim::DriverUnits units() noexcept {
    sim::DriverUnits u;
    u.machine = &machine_;
    u.perf = &perf_;
    return u;
  }

  /// Derive the arm's measures for \p region_name; stamps the wall clock.
  [[nodiscard]] ArmResult finish(const std::string& region_name) const {
    ArmResult arm;
    const perf::RegionStats stats = perf_.regions().get(region_name);
    arm.measures = perf::derive_measures(stats.totals, kClockHz);
    const perf::CounterSet totals = perf_.snapshot();
    arm.flash_timer =
        static_cast<double>(totals[perf::Event::kCycles]) / kClockHz;
    arm.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0_)
            .count();
    return arm;
  }

 private:
  perf::PerfContext perf_;
  tlb::Machine machine_;
  perf::Timers timers_;
  std::chrono::steady_clock::time_point wall0_ =
      std::chrono::steady_clock::now();
};

/// Print the table in the paper's layout, with the published values as a
/// side-by-side reference, plus the ratio column of Figure 1.
inline void print_paper_table(const std::string& title,
                              const ArmResult& without, const ArmResult& with,
                              const double paper_without[6],
                              const double paper_with[6]) {
  TableWriter t(title);
  t.set_header({"Measure", "Without HPs", "With HPs", "Ratio",
                "Paper w/o", "Paper w/"});
  auto row = [&](const char* name, double a, double b, double pa, double pb) {
    t.add_row({name, format_measure(a), format_measure(b),
               b != 0 && a != 0 ? format_ratio(b / a) : "-",
               format_measure(pa), format_measure(pb)});
  };
  row("Hardware (cycles)", without.measures.hardware_cycles,
      with.measures.hardware_cycles, paper_without[0], paper_with[0]);
  row("Time (s)", without.measures.time_seconds, with.measures.time_seconds,
      paper_without[1], paper_with[1]);
  row("SVE Instructions/cycle", without.measures.vector_per_cycle,
      with.measures.vector_per_cycle, paper_without[2], paper_with[2]);
  row("Memory (Gbytes/s)", without.measures.memory_gbytes_per_s,
      with.measures.memory_gbytes_per_s, paper_without[3], paper_with[3]);
  row("DTLB misses (1/s)", without.measures.dtlb_misses_per_s,
      with.measures.dtlb_misses_per_s, paper_without[4], paper_with[4]);
  row("FLASH Timer (s)", without.flash_timer, with.flash_timer,
      paper_without[5], paper_with[5]);
  t.render(std::cout);
  std::printf("# backing: without = %s; with = %s (huge-resident %s)\n",
              without.backing.c_str(), with.backing.c_str(),
              format_bytes(with.resident_huge).c_str());
  std::printf("# host wall clock: without %.1f s, with %.1f s\n",
              without.wall_seconds, with.wall_seconds);
}

/// The published Tables I and II, for side-by-side printing and for the
/// reproduction-band checks in EXPERIMENTS.md.
/// Order: cycles, time, SVE/cycle, GB/s, DTLB/s, FLASH timer.
inline constexpr double kPaperEosWithout[6] = {1.25e11, 6.97e1, 0.47,
                                               4.19,    2.34e7, 339.032};
inline constexpr double kPaperEosWith[6] = {1.17e11, 6.52e1, 0.51,
                                            4.45,    1.10e6, 333.150};
inline constexpr double kPaperHydroWithout[6] = {1.21e12, 6.70e2, 0.11,
                                                 10.10,   2.42e6, 1203.616};
inline constexpr double kPaperHydroWith[6] = {1.20e12, 6.69e2, 0.11,
                                              10.09,   7.83e5, 1176.312};

// ------------------------------------------------------------- artifacts

/// Ordered JSON emitter for the CI --json=PATH artifacts. All benches
/// route their artifact through this one writer so the files keep one
/// convention (two-space indent, doubles at six decimals) instead of
/// each bench hand-rolling fprintf formats.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void begin_object() { item(); open('{'); }
  void begin_object(const char* key) { item(key); open('{'); }
  void begin_array(const char* key) { item(key); open('['); }
  void end_object() { close('}'); }
  void end_array() { close(']'); }

  void field(const char* key, const std::string& v) {
    item(key);
    std::fprintf(f_, "\"%s\"", v.c_str());
  }
  void field(const char* key, const char* v) { field(key, std::string(v)); }
  void field(const char* key, double v) {
    item(key);
    std::fprintf(f_, "%.6f", v);
  }
  void field(const char* key, bool v) {
    item(key);
    std::fprintf(f_, "%s", v ? "true" : "false");
  }
  void field(const char* key, int v) {
    item(key);
    std::fprintf(f_, "%d", v);
  }
  void field(const char* key, std::uint64_t v) {
    item(key);
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }

 private:
  void indent() const {
    for (std::size_t d = 0; d < first_.size(); ++d) std::fputs("  ", f_);
  }
  /// Comma/newline/indent for a new item in the current container, then
  /// the key (if any — array elements and the root have none).
  void item(const char* key = nullptr) {
    if (!first_.empty()) {
      std::fputs(first_.back() ? "\n" : ",\n", f_);
      first_.back() = false;
      indent();
    }
    if (key != nullptr) std::fprintf(f_, "\"%s\": ", key);
  }
  void open(char c) {
    std::fputc(c, f_);
    first_.push_back(true);
  }
  void close(char c) {
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty) {
      std::fputc('\n', f_);
      indent();
    }
    std::fputc(c, f_);
    if (first_.empty()) std::fputc('\n', f_);
  }

  std::FILE* f_;
  std::vector<bool> first_;
};

// ------------------------------------------------------------ thread scan

/// One named arm of a thread scan (e.g. "bulk_sync" vs "task_graph"):
/// runs the workload once under the supplied instrumentation bundle at
/// the already-configured thread count and returns the evolution wall
/// time in seconds.
struct ScanArm {
  const char* name;
  std::function<double(ExperimentArm& arm, int threads)> run;
};

/// Shared --json=PATH thread-scan entry. Runs every arm at 1, 2 and 4
/// threads, asserts the modeled counters (everything except wall time)
/// bit-identical across ALL runs — thread counts *and* arms, the
/// determinism contract of both execution modes — and writes the
/// artifact through JsonWriter. \p header emits bench-specific fields
/// (nsteps, ...) into the top-level object. Returns 0 iff the counters
/// were identical and the file was written.
inline int run_thread_scan(const std::string& path, const char* bench,
                           const std::vector<ScanArm>& arms,
                           const std::function<void(JsonWriter&)>& header) {
  constexpr int kThreads[3] = {1, 2, 4};
  struct Run {
    double wall = 0;
    perf::CounterSet totals;
  };
  std::vector<std::array<Run, 3>> runs(arms.size());
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (int t = 0; t < 3; ++t) {
      par::set_threads(kThreads[t]);
      ExperimentArm arm;
      runs[a][static_cast<std::size_t>(t)].wall =
          arms[a].run(arm, kThreads[t]);
      runs[a][static_cast<std::size_t>(t)].totals = arm.perf().snapshot();
      const auto& r = runs[a][static_cast<std::size_t>(t)];
      std::printf("# arm=%s threads=%d wall=%.3f s cycles=%llu dtlb=%llu\n",
                  arms[a].name, kThreads[t], r.wall,
                  static_cast<unsigned long long>(
                      r.totals[perf::Event::kCycles]),
                  static_cast<unsigned long long>(
                      r.totals[perf::Event::kDtlbMisses]));
    }
  }
  par::set_threads(1);

  bool identical = true;
  const perf::CounterSet& ref = runs[0][0].totals;
  for (const auto& arm_runs : runs) {
    for (const Run& r : arm_runs) {
      for (std::size_t e = 0; e < perf::kNumEvents; ++e) {
        if (e == static_cast<std::size_t>(perf::Event::kWallNanos)) continue;
        identical = identical && r.totals.values[e] == ref.values[e];
      }
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  JsonWriter w(f);
  w.begin_object();
  w.field("bench", bench);
  header(w);
  w.begin_array("arms");
  for (std::size_t a = 0; a < arms.size(); ++a) {
    w.begin_object();
    w.field("name", arms[a].name);
    w.begin_object("wall_seconds");
    for (int t = 0; t < 3; ++t) {
      w.field(std::to_string(kThreads[t]).c_str(),
              runs[a][static_cast<std::size_t>(t)].wall);
    }
    w.end_object();
    w.field("speedup_4_over_1",
            runs[a][2].wall > 0 ? runs[a][0].wall / runs[a][2].wall : 0.0);
    w.end_object();
  }
  w.end_array();
  w.field("modeled_counters_identical", identical);
  w.end_object();
  std::fclose(f);
  std::printf("# wrote %s (counters identical across %zu arms x 3 thread "
              "counts: %s)\n",
              path.c_str(), arms.size(), identical ? "yes" : "NO");
  return identical ? 0 : 1;
}

}  // namespace fhp::bench
