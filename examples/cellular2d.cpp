/// \file cellular2d.cpp
/// \brief The cellular-detonation scenario: a perturbed planar burning
///        front growing transverse cells in a uniform fuel bed.
///
/// The cheap flame-bearing workload (arXiv 2408.16084 flavor): gamma-law
/// EOS + ADR model flame, no tabulated EOS, no gravity, no progenitor —
/// the service's middle job class, and a fast way to watch the flame
/// module without building the full supernova.
///
/// Usage: cellular2d [--nsteps=N] [--max_level=L]
///                   [--policy=none|thp|hugetlbfs] [--par.threads=T]

#include <iostream>

#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "par/parallel.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/cellular.hpp"
#include "sim/driver.hpp"
#include "support/runtime_params.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 24, "number of time steps");
  rp.declare_int("max_level", 2, "finest AMR level");
  rp.declare_string("policy", "none", "huge-page policy (none|thp|hugetlbfs)");
  mem::declare_runtime_params(rp);
  par::declare_runtime_params(rp);
  mesh::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  mem::apply_runtime_params(rp);
  par::apply_runtime_params(rp);
  mesh::apply_runtime_params(rp);

  const auto policy = mem::parse_huge_policy(rp.get_string("policy"));
  if (!policy) {
    std::cerr << "bad --policy value\n";
    return 2;
  }

  rt::Runtime runtime;

  sim::CellularParams params;
  params.max_level = static_cast<int>(rp.get_int("max_level"));
  sim::CellularSetup setup(params, *policy, runtime);

  std::cout << "unk: " << setup.mesh().unk().region().describe() << "\n";

  hydro::HydroSolver hydro(setup.mesh(), setup.eos());

  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = static_cast<int>(rp.get_int("nsteps"));
  opts.trace_sample = 0;
  opts.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + sim::cvar::kPhi};
  sim::DriverUnits units;
  units.runtime = &runtime;
  units.flame = &setup.flame();
  sim::Driver driver(setup.mesh(), hydro, timers, opts, units);

  const int vphi = mesh::var::kFirstScalar + sim::cvar::kPhi;
  const double burned0 =
      setup.mesh().integrate_product(mesh::var::kDens, vphi);
  driver.evolve();
  const double burned1 =
      setup.mesh().integrate_product(mesh::var::kDens, vphi);

  std::cout << "\nt = " << driver.sim_time() << " s after " << driver.steps()
            << " steps\n";
  std::cout << "burned mass: " << burned0 << " -> " << burned1 << " g\n";
  std::cout << "nuclear energy released: " << setup.flame().energy_released()
            << " erg\n";
  timers.summary(std::cout);
  return 0;
}
