/// \file hugectl.cpp
/// \brief A hugectl-like administration and inspection tool.
///
/// The paper drove huge pages with libhugetlbfs' `hugectl` and `hugeadm`
/// utilities and verified usage in /proc/meminfo. This example packages
/// the same operations over the flashhp mem library:
///
///   hugectl status            show THP mode, pools, meminfo fields
///   hugectl pool <n>          resize the 2 MiB pool to n pages (root)
///   hugectl pool-status       init the process PagePool from the
///                             environment (FLASHHP_PAGE_POOL /
///                             FLASHHP_PLACEMENT) and print its per-node
///                             inventory and degradation counters
///   hugectl probe <policy>    map+prefault 64 MiB under none|thp|hugetlbfs
///                             and report what the kernel actually granted

#include <cstdio>
#include <cstring>
#include <string>

#include "mem/hugeadm.hpp"
#include "mem/mapped_region.hpp"
#include "mem/meminfo.hpp"
#include "mem/page_pool.hpp"
#include "mem/page_size.hpp"
#include "mem/thp.hpp"
#include "mem/vmstat.hpp"
#include "rt/runtime.hpp"
#include "support/string_util.hpp"

namespace {

using namespace fhp;

int cmd_status() {
  std::printf("base page size:   %zu B\n", mem::base_page_size());
  std::printf("THP system mode:  %s\n",
              std::string(to_string(mem::system_thp_mode())).c_str());
  if (const auto pmd = mem::thp_pmd_size()) {
    std::printf("THP PMD size:     %s\n", format_bytes(*pmd).c_str());
  }
  std::printf("hugetlb pools:\n");
  const auto pools = mem::hugetlb_pools();
  if (pools.empty()) std::printf("  (none configured)\n");
  for (const auto& p : pools) {
    std::printf("  %-10s total %5zu  free %5zu  resv %5zu  surp %5zu\n",
                format_bytes(p.page_bytes).c_str(), p.nr_hugepages,
                p.free_hugepages, p.resv_hugepages, p.surplus_hugepages);
  }
  std::printf("meminfo:          %s\n",
              mem::MeminfoSnapshot::capture().summary().c_str());
  std::printf("vmstat:           %s\n",
              mem::VmstatSnapshot::capture().summary().c_str());
  return 0;
}

int cmd_pool(const std::string& count_text) {
  const auto count = parse_int(count_text);
  if (!count || *count < 0) {
    std::fprintf(stderr, "bad page count '%s'\n", count_text.c_str());
    return 2;
  }
  const auto granted =
      mem::ensure_hugetlb_pool(mem::kPage2M, static_cast<std::size_t>(*count));
  if (!granted) {
    std::fprintf(stderr,
                 "cannot resize the pool (no hugetlb support or not root)\n");
    return 1;
  }
  std::printf("2 MiB pool now holds %zu pages (requested %lld)\n", *granted,
              *count);
  return 0;
}

int cmd_pool_status() {
  // The process-default runtime owns the pool this tool administers
  // (simulation tenants each carve from their own runtime's pool).
  mem::PagePool& pool = rt::Runtime::process_default().page_pool();
  if (pool.status().state == "idle") {
    pool.init(mem::config_from_environment());
  }
  std::fputs(pool.status_text().c_str(), stdout);
  return 0;
}

int cmd_probe(const std::string& policy_text) {
  const auto policy = mem::parse_huge_policy(policy_text);
  if (!policy) {
    std::fprintf(stderr, "bad policy '%s' (none|thp|hugetlbfs)\n",
                 policy_text.c_str());
    return 2;
  }
  mem::MapRequest req;
  req.bytes = 64ull << 20;
  req.policy = *policy;
  req.prefault = true;

  const auto before = mem::MeminfoSnapshot::capture();
  const auto vm_before = mem::VmstatSnapshot::capture();
  mem::MappedRegion region(req);
  const auto after = mem::MeminfoSnapshot::capture();
  const auto vm_after = mem::VmstatSnapshot::capture();

  std::printf("requested: 64 MiB under policy '%s'\n",
              std::string(to_string(*policy)).c_str());
  std::printf("obtained:  %s\n", region.describe().c_str());
  std::printf("verified:  %s resident on huge pages (via smaps)\n",
              format_bytes(region.resident_huge_bytes()).c_str());
  const auto delta = after.since(before);
  std::printf("meminfo:   AnonHugePages %+lld B, HugePages_Free %+lld, "
              "Hugetlb %+lld B\n",
              static_cast<long long>(delta.anon_huge_pages),
              static_cast<long long>(delta.huge_pages_free),
              static_cast<long long>(delta.hugetlb));
  const auto vm_delta = vm_after.since(vm_before);
  std::printf("vmstat:    thp_fault_alloc %+lld, thp_fault_fallback %+lld, "
              "thp_collapse_alloc %+lld\n",
              static_cast<long long>(vm_delta.thp_fault_alloc),
              static_cast<long long>(vm_delta.thp_fault_fallback),
              static_cast<long long>(vm_delta.thp_collapse_alloc));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc >= 2 ? argv[1] : "status";
  if (cmd == "status") return cmd_status();
  if (cmd == "pool" && argc >= 3) return cmd_pool(argv[2]);
  if (cmd == "pool-status") return cmd_pool_status();
  if (cmd == "probe" && argc >= 3) return cmd_probe(argv[2]);
  std::fprintf(stderr,
               "usage: hugectl [status | pool <npages> | pool-status | "
               "probe <none|thp|hugetlbfs>]\n");
  return 2;
}
