/// \file sedov3d.cpp
/// \brief The paper's "3-d Hydro" workload as a standalone application.
///
/// Runs the 3-d Sedov explosion on the AMR mesh, validates the shock
/// position against the analytic similarity solution, and writes the
/// spherically averaged density/pressure profile to sedov_profile.csv.
///
/// Usage: sedov3d [--nsteps=N] [--max_level=L] [--policy=none|thp|hugetlbfs]
///                [--par.threads=T] [--obs.timeline=timeline.json]
///                [--obs.sample_ms=N]
///
/// With --obs.timeline (or FLASHHP_TELEMETRY=timeline.json) the run is
/// traced: per-lane spans, step marks, and a background memory/THP
/// sampler, exported as a chrome://tracing JSON plus a sampler CSV next
/// to it.

#include <fstream>
#include <iostream>
#include <memory>

#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "par/parallel.hpp"
#include "perf/perf_context.hpp"
#include "perf/report.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "sim/profiles.hpp"
#include "sim/sedov.hpp"
#include "support/runtime_params.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 120, "number of time steps");
  rp.declare_int("max_level", 3, "finest AMR level");
  rp.declare_string("policy", "none", "huge-page policy (none|thp|hugetlbfs)");
  rp.declare_string("outfile", "sedov_profile.csv", "profile output path");
  rp.declare_bool("trace", false, "feed the machine model and print a report");
  mem::declare_runtime_params(rp);
  par::declare_runtime_params(rp);
  mesh::declare_runtime_params(rp);
  obs::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  mem::apply_runtime_params(rp);
  par::apply_runtime_params(rp);
  mesh::apply_runtime_params(rp);

  const auto policy = mem::parse_huge_policy(rp.get_string("policy"));
  if (!policy) {
    std::cerr << "bad --policy value\n";
    return 2;
  }

  // The execution context: built after the runtime params applied above,
  // so its lane count honors --par.threads and its layout FLASHHP_LAYOUT.
  rt::Runtime runtime;

  sim::SedovParams params;
  params.max_level = static_cast<int>(rp.get_int("max_level"));
  params.maxblocks = 700;
  sim::SedovSetup setup(params, *policy, runtime);
  std::cout << "unk: " << setup.mesh().unk().region().describe() << "\n";

  hydro::HydroSolver hydro(setup.mesh(), setup.eos());
  perf::Timers timers;
  perf::PerfContext perf;
  tlb::Machine machine({}, &perf);
  sim::DriverOptions opts;
  opts.nsteps = static_cast<int>(rp.get_int("nsteps"));
  const bool trace = rp.get_bool("trace");
  opts.trace_sample = trace ? 4 : 0;
  sim::DriverUnits units;
  units.runtime = &runtime;
  if (trace) {
    units.machine = &machine;
    units.perf = &perf;
  }

  // Telemetry: span tracer + background memory/THP sampler, exported as
  // a chrome://tracing timeline when a path is configured.
  const std::string timeline_path = rp.get_string("obs.timeline");
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<obs::Sampler> sampler;
  if (!timeline_path.empty()) {
    obs::TelemetryOptions topts;
    topts.lanes = runtime.lanes();
    telemetry = std::make_unique<obs::Telemetry>(topts);
    telemetry->install(runtime);  // per-runtime: steps + lanes route here
    units.perf = &perf;
    obs::SamplerOptions sopts;
    sopts.cadence =
        std::chrono::milliseconds(rp.get_int("obs.sample_ms"));
    sopts.perf = &perf;
    sampler = std::make_unique<obs::Sampler>(sopts);
    sampler->start();
  }

  sim::Driver driver(setup.mesh(), hydro, timers, opts, units);
  driver.evolve();
  if (trace) perf::RegionReport(perf, 1.8e9).render(std::cout);

  if (telemetry) {
    sampler->stop();
    telemetry->uninstall();
    obs::write_timeline_file(timeline_path, *telemetry, sampler.get());
    const std::string csv_path = obs::csv_path_for(timeline_path);
    std::ofstream csv(csv_path);
    sampler->write_csv(csv);
    std::cout << "timeline written to " << timeline_path << " (sampler CSV: "
              << csv_path << ", " << telemetry->total_spans() << " spans, "
              << sampler->taken() << " samples)\n";
  }

  // Validate against the similarity solution.
  sim::RadialProfile profile(setup.mesh(), {0.5, 0.5, 0.5}, 120,
                             {mesh::var::kDens, mesh::var::kPres});
  const double r_measured = profile.peak_radius(0);
  const double r_exact = sim::SedovSetup::shock_radius(
      params.energy, params.rho_ambient, driver.sim_time(), params.gamma);
  std::cout << "t = " << driver.sim_time() << ": shock at r = " << r_measured
            << " (analytic " << r_exact << ", error "
            << 100.0 * (r_measured - r_exact) / r_exact << "%)\n";
  std::cout << "peak density " << profile.peak_value(0)
            << " (strong-shock limit " << (params.gamma + 1) / (params.gamma - 1)
            << ")\n";

  const std::string outfile = rp.get_string("outfile");
  std::ofstream out(outfile);
  profile.write_csv(out);
  std::cout << "profile written to " << outfile << "\n";
  timers.summary(std::cout);
  return 0;
}
