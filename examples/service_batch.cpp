/// \file service_batch.cpp
/// \brief The fhp::svc quickstart: one service, a mixed batch of
///        tenants, per-tenant results.
///
/// Submits a small matrix of jobs — interactive Sedovs, batch cellular
/// detonations — lets the service schedule them in fair-share quanta
/// over its worker pool and one shared huge-page arena, and prints each
/// tenant's result line: wall/queue latency, modeled DTLB misses from
/// its published counters, and its slice of the pool's decisions.
///
/// Usage: service_batch [--jobs=N] [--svc.lanes=W] [--svc.quantum=Q]
///                      [--policy=none|thp|hugetlbfs]

#include <cstdio>
#include <vector>

#include "mem/huge_policy.hpp"
#include "support/runtime_params.hpp"
#include "svc/service.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("jobs", 6, "jobs to submit");
  rp.declare_string("policy", "none", "huge-page policy for every tenant");
  svc::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  svc::apply_runtime_params(rp);

  const auto policy = mem::parse_huge_policy(rp.get_string("policy"));
  if (!policy) {
    std::fprintf(stderr, "bad --policy value\n");
    return 2;
  }
  const int njobs = static_cast<int>(rp.get_int("jobs"));

  svc::Service service;  // workers from --svc.lanes / FLASHHP_SVC_LANES

  std::vector<svc::JobId> ids;
  for (int j = 0; j < njobs; ++j) {
    svc::JobSpec spec;
    spec.policy = *policy;
    if (j % 2 == 0) {
      spec.kind = svc::JobKind::kSedov;
      spec.deadline = svc::DeadlineClass::kInteractive;
      spec.nsteps = 8;
      spec.trace_sample = 2;  // modeled counters on
      spec.sedov.ndim = 2;
      spec.sedov.nzb = 1;
      spec.sedov.max_level = 2;
      spec.sedov.maxblocks = 128;
    } else {
      spec.kind = svc::JobKind::kCellular;
      spec.deadline = svc::DeadlineClass::kBatch;
      spec.nsteps = 6;
      spec.cellular.max_level = 2;
      spec.cellular.maxblocks = 128;
    }
    const svc::Submission s = service.submit(std::move(spec));
    if (!s.accepted()) {
      std::fprintf(stderr, "job %d rejected: %s\n", j,
                   svc::to_string(s.reason));
      continue;
    }
    ids.push_back(s.id);
  }

  for (const svc::JobId id : ids) {
    const svc::JobResult r = service.wait(id);
    std::printf(
        "job %3llu  %-9s  steps=%3d  t=%.3e s  queue=%6.1f ms  "
        "wall=%6.1f ms  dtlb=%llu  pool[huge=%llu thp=%llu base=%llu]\n",
        static_cast<unsigned long long>(r.id), svc::to_string(r.status),
        r.steps, r.sim_time, r.queue_seconds * 1e3, r.wall_seconds * 1e3,
        static_cast<unsigned long long>(
            r.counters.counters[perf::Event::kDtlbMisses]),
        static_cast<unsigned long long>(r.pool.huge_allocs),
        static_cast<unsigned long long>(r.pool.thp_fallbacks),
        static_cast<unsigned long long>(r.pool.base_fallbacks));
  }

  const svc::ServiceStats stats = service.stats();
  std::printf("%llu submitted, %llu done, %llu failed (workers=%d, "
              "quantum=%d)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              service.workers(), service.quantum_steps());
  return stats.failed == 0 ? 0 : 1;
}
