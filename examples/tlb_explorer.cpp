/// \file tlb_explorer.cpp
/// \brief Interactive exploration of the machine model: stride vs TLB.
///
/// Sweeps the access stride over a large array for each page size and
/// prints the modeled L1-DTLB miss rate — a compact way to see the
/// mechanism behind the paper's Tables: FLASH's unk strides put it on the
/// steep part of the 4 KiB curve, and 2 MiB pages flatten it.
///
/// Usage: tlb_explorer [--bytes=268435456]

#include <cstdio>
#include <iostream>
#include <vector>

#include "support/runtime_params.hpp"
#include "support/table_writer.hpp"
#include "tlb/machine.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("bytes", 256ll << 20, "array size to stride over");
  rp.apply_command_line(argc, argv);
  const auto bytes = static_cast<std::size_t>(rp.get_int("bytes"));

  std::printf("== TLB explorer: strided reads over %zu MiB ==\n",
              bytes >> 20);
  std::printf("A64FX-like model: 48-entry L1 DTLB + 1024-entry 4-way L2 "
              "TLB\n\n");

  TableWriter t("modeled L1-DTLB miss rate per access");
  t.set_header({"Stride (B)", "4 KiB pages", "64 KiB pages", "2 MiB pages"});

  const std::uint8_t shifts[] = {tlb::kShift4K, tlb::kShift64K,
                                 tlb::kShift2M};
  for (std::size_t stride = 64; stride <= (1u << 20); stride *= 4) {
    std::vector<std::string> row{std::to_string(stride)};
    for (const std::uint8_t shift : shifts) {
      tlb::Machine machine;
      const std::size_t naccess = 200000;
      std::uint64_t addr = 0x10000000;
      for (std::size_t n = 0; n < naccess; ++n) {
        machine.touch(reinterpret_cast<const void*>(addr), 8, false, shift);
        addr += stride;
        if (addr > 0x10000000 + bytes) addr = 0x10000000;
      }
      const auto& q = machine.quantum();
      row.push_back(format_ratio(static_cast<double>(q.l1_tlb_misses) /
                                 static_cast<double>(q.accesses)));
    }
    t.add_row(std::move(row));
  }
  t.render(std::cout);

  std::printf(
      "\nFLASH context: a 3-d unk block row advances %d bytes per zone in a\n"
      "z-pencil (nvar*ni*nj*8) — deep into the saturated 4 KiB region.\n",
      15 * 24 * 24 * 8);
  return 0;
}
