/// \file quickstart.cpp
/// \brief First contact with flashhp: huge-page memory + a tiny simulation.
///
/// Demonstrates the core loop of the library in ~60 lines of user code:
///   1. pick a huge-page policy (environment-driven, like the Fujitsu
///      runtime's XOS_MMM_L_HPAGE_TYPE),
///   2. allocate a mesh on it and *verify* the backing via /proc (the
///      paper's methodology),
///   3. build the rt::Runtime execution context the simulation runs in
///      (lane count from FLASHHP_THREADS, layout from FLASHHP_LAYOUT),
///   4. run a small Sedov explosion and print the FLASH-style timer
///      summary.
///
/// Try: FLASHHP_HPAGE_TYPE=hugetlbfs FLASHHP_THREADS=4 ./quickstart

#include <iostream>

#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "mem/meminfo.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "sim/sedov.hpp"

int main() {
  using namespace fhp;

  // 1. Policy from the environment (none | thp | hugetlbfs).
  const mem::HugePolicy policy = mem::policy_from_environment();
  std::cout << "huge-page policy: " << mem::to_string(policy) << "\n";

  // 2. The execution context: lane count from FLASHHP_THREADS (defaults
  //    to 1 = serial), mesh layout from FLASHHP_LAYOUT, and a page pool
  //    of its own. Every service the simulation uses hangs off this one
  //    object — a second Runtime would be a second, independent tenant.
  rt::Runtime runtime;

  // 3. A small 2-d Sedov problem; the mesh's unk container lives on the
  //    chosen policy, carved from the runtime's pool.
  sim::SedovParams params;
  params.ndim = 2;
  params.nzb = 1;
  params.max_level = 3;
  params.maxblocks = 300;
  sim::SedovSetup setup(params, policy, runtime);

  const mem::MappedRegion& region = setup.mesh().unk().region();
  std::cout << "unk backing: " << region.describe() << "\n";
  std::cout << "verified on huge pages: "
            << region.resident_huge_bytes() / (1 << 20) << " MiB\n";
  std::cout << "system: " << mem::MeminfoSnapshot::capture().summary()
            << "\n";

  //    The leaf-block sweeps run block-parallel on the runtime's lanes;
  //    results are bit-identical to the serial run at any lane count.
  std::cout << "sweep threads: " << runtime.lanes() << "\n";

  // 4. Evolve 30 steps and report.
  hydro::HydroSolver hydro(setup.mesh(), setup.eos());
  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = 30;
  opts.trace_sample = 0;  // no machine model in the quickstart
  opts.verbose = false;
  sim::DriverUnits units;
  units.runtime = &runtime;
  sim::Driver driver(setup.mesh(), hydro, timers, opts, units);
  driver.evolve();

  std::cout << "\nran " << driver.steps() << " steps to t = "
            << driver.sim_time() << "; "
            << setup.mesh().tree().leaves_morton().size()
            << " leaf blocks\n\n";
  timers.summary(std::cout);
  return 0;
}
