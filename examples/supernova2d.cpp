/// \file supernova2d.cpp
/// \brief The paper's "EOS" workload: a 2-d Type Iax deflagration.
///
/// Builds the hybrid white dwarf in hydrostatic equilibrium, ignites an
/// off-center flame bubble, and evolves it with the tabulated Helmholtz
/// EOS, ADR flame, and monopole gravity. Reports the burned mass and
/// nuclear energy release and writes a radial profile of the star.
///
/// Usage: supernova2d [--nsteps=N] [--max_level=L]
///                    [--policy=none|thp|hugetlbfs] [--rho_c=2e9]
///                    [--par.threads=T]

#include <fstream>
#include <iostream>

#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "par/parallel.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "sim/profiles.hpp"
#include "sim/supernova.hpp"
#include "support/runtime_params.hpp"

int main(int argc, char** argv) {
  using namespace fhp;
  RuntimeParams rp;
  rp.declare_int("nsteps", 50, "number of time steps (paper: 50)");
  rp.declare_int("max_level", 4, "finest AMR level");
  rp.declare_string("policy", "none", "huge-page policy (none|thp|hugetlbfs)");
  rp.declare_real("rho_c", 2.0e9, "central density [g/cc]");
  rp.declare_string("outfile", "wd_profile.csv", "profile output path");
  mem::declare_runtime_params(rp);
  par::declare_runtime_params(rp);
  mesh::declare_runtime_params(rp);
  rp.apply_command_line(argc, argv);
  mem::apply_runtime_params(rp);
  par::apply_runtime_params(rp);
  mesh::apply_runtime_params(rp);

  const auto policy = mem::parse_huge_policy(rp.get_string("policy"));
  if (!policy) {
    std::cerr << "bad --policy value\n";
    return 2;
  }

  // The execution context: built after the runtime params applied above,
  // so its lane count honors --par.threads and its layout FLASHHP_LAYOUT.
  rt::Runtime runtime;

  sim::SupernovaParams params;
  params.central_density = rp.get_real("rho_c");
  params.max_level = static_cast<int>(rp.get_int("max_level"));
  params.maxblocks = 1500;
  params.table_cache = "helm_table.bin";
  sim::SupernovaSetup setup(params, *policy, runtime);

  std::cout << "white dwarf: R = " << setup.wd().radius() / 1e5
            << " km, M = " << setup.wd().mass() / 1.98847e33 << " Msun\n";
  std::cout << "unk: " << setup.mesh().unk().region().describe() << "\n";
  std::cout << "helm table: " << setup.table().region().describe() << "\n";

  hydro::HydroOptions hopt;
  hopt.cfl = 0.6;
  hydro::HydroSolver hydro(setup.mesh(), setup.eos(), hopt);
  hydro.set_composition_fn(setup.composition_fn());

  perf::Timers timers;
  sim::DriverOptions opts;
  opts.nsteps = static_cast<int>(rp.get_int("nsteps"));
  opts.trace_sample = 0;
  opts.refine_vars = {mesh::var::kDens,
                      mesh::var::kFirstScalar + sim::snvar::kPhi};
  sim::DriverUnits units;
  units.runtime = &runtime;
  units.flame = &setup.flame();
  units.gravity = &setup.gravity();
  sim::Driver driver(setup.mesh(), hydro, timers, opts, units);

  const double mass0 = setup.mesh().integrate(mesh::var::kDens);
  driver.evolve();
  const double mass1 = setup.mesh().integrate(mesh::var::kDens);

  const int vphi = mesh::var::kFirstScalar + sim::snvar::kPhi;
  const double burned_mass =
      setup.mesh().integrate_product(mesh::var::kDens, vphi);
  std::cout << "\nt = " << driver.sim_time() << " s after " << driver.steps()
            << " steps\n";
  std::cout << "burned mass: " << burned_mass / 1.98847e33 << " Msun\n";
  std::cout << "nuclear energy released: "
            << setup.flame().energy_released() << " erg\n";
  std::cout << "mass conservation drift: " << (mass1 - mass0) / mass0
            << "\n";

  sim::RadialProfile profile(
      setup.mesh(), {0.0, 0.0, 0.0}, 200,
      {mesh::var::kDens, mesh::var::kTemp, mesh::var::kPres, vphi});
  const std::string outfile = rp.get_string("outfile");
  std::ofstream out(outfile);
  profile.write_csv(out);
  std::cout << "profile written to " << outfile << "\n";
  timers.summary(std::cout);
  return 0;
}
