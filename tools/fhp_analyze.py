#!/usr/bin/env python3
"""fhp_analyze: compiler-grade structural analysis for the flashhp tree.

flashhp_lint.py checks line-local textual invariants (magic literals, raw
mmap, include spelling). This tool checks *structural* properties of the
tree that only emerge from whole-file or whole-graph views:

  layering          project modules form a declared DAG

                        support -> mem -> tlb -> perf -> par -> mesh
                                -> {eos, hydro, flame, gravity} -> rt
                                -> sim -> obs -> svc

                    (left is the bottom). An `#include "mod/..."` edge
                    from a lower layer to a higher one is an error: it is
                    exactly the upward dependency (perf reaching into par,
                    tlb reaching into perf, mesh reaching into obs) that
                    the PR's dependency inversions removed. Modules inside
                    the braces are peers — edges between them are legal as
                    long as they stay acyclic. Downward edges are always
                    legal; the load-bearing one is tlb -> mem: the NUMA
                    placement vocabulary (NodeHugePools, PlacementPolicy,
                    PoolDecision) lives in mem/numa.hpp, and
                    tlb::Machine::apply_placement() consumes it. mem must
                    never include tlb back — that would be the upward edge
                    this rule exists to stop.

  layer-cycle       any cycle in the module-granularity include graph is
                    an error, reported at every include line that forms an
                    edge inside the cycle. This is what keeps the peer
                    group honest: hydro -> eos is fine until eos includes
                    hydro back.

  alloc-in-region   lexically inside the lambda passed to
                    par::parallel_for / parallel_for_blocks, or the task
                    body submitted via TaskGraph::add_task, no dynamic
                    allocation: no `new`, no malloc/calloc/realloc, no
                    growing-container calls (push_back, emplace_back,
                    emplace, resize, reserve, insert, assign, append), no
                    make_unique/make_shared. Region lambdas run on pool
                    lanes inside the hot loop the paper instruments; an
                    allocation there is both a scalability bug (allocator
                    lock) and a measurement bug (page faults charged to
                    the kernel under test). Allocate per-lane scratch
                    before the region, as hydro/flame do.

  alloc-in-noalloc  the inline body of a function annotated FHP_NO_ALLOC
                    (support/contracts.hpp) must contain none of the same
                    allocation tokens. Declaration-only annotations (body
                    out of line, macro not repeated) are not chased — the
                    scan is lexical, not interprocedural, by design: it
                    needs no compiler and runs in milliseconds.

  bare-suppression  a `fhp-analyze: allow(...)` comment with no
                    `-- reason` text. Unexplained suppressions are
                    findings themselves, and the unexplained allow does
                    NOT silence the rule it names.

The scan is lexical (comments and string/char literals are blanked before
matching) and interprocedural effects are out of scope: a region lambda
that calls a helper which allocates is caught by the FHP_NO_ALLOC
annotation on the helper, not by looking through the call.

File discovery: `-p/--compile-commands` points at a compile_commands.json
(or the build directory containing one); its translation units plus every
header under src/ are scanned, so the analyzer sees exactly what the
build sees. Without -p the tree under <root>/src is walked.

Suppressions (sparingly, must carry a reason):
  // fhp-analyze: allow(rule-id) -- <why this one site is licensed>
on the flagged line or alone on the line above.

Exit status: 0 clean, 1 findings, 2 bad invocation.
Run `fhp_analyze.py --self-test` to verify every rule still catches its
planted fixture (wired into ctest as fhp_analyze_selftest).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import fhp_report  # noqa: E402
from fhp_report import Finding  # noqa: E402
from flashhp_lint import strip_code  # noqa: E402

TOOL = "fhp_analyze"
VERSION = "1.0"
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# The declared module DAG, bottom first. Index = layer; modules sharing an
# index are peers (edges between them allowed, cycles still forbidden).
LAYERS: list[list[str]] = [
    ["support"],
    ["mem"],
    ["tlb"],
    ["perf"],
    ["par"],
    ["mesh"],
    ["eos", "hydro", "flame", "gravity"],
    ["rt"],
    ["sim"],
    ["obs"],
    ["svc"],
]

LAYER_OF: dict[str, int] = {
    mod: level for level, mods in enumerate(LAYERS) for mod in mods
}

RULES = {
    "layering":
        "include edge from a lower-layer module to a higher-layer one",
    "layer-cycle":
        "cycle in the module-granularity include graph",
    "alloc-in-region":
        "dynamic allocation inside a parallel_for/parallel_for_blocks "
        "lambda or a TaskGraph add_task body",
    "alloc-in-noalloc":
        "dynamic allocation in the inline body of an FHP_NO_ALLOC "
        "function",
    "bare-suppression":
        "fhp-analyze: allow(...) comment without a `-- reason`",
}

QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
ALLOW_RE = re.compile(
    r"fhp-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)(\s*--\s*\S.*)?")
PARALLEL_CALL_RE = re.compile(
    r"(?<![\w:])(?:par\s*::\s*)?(parallel_for_blocks|parallel_for|add_task)"
    r"\s*\(")
NO_ALLOC_RE = re.compile(r"\bFHP_NO_ALLOC\b")
DEFINE_NO_ALLOC_RE = re.compile(r"#\s*define\s+FHP_NO_ALLOC\b")

# Allocation tokens, matched against comment/string-stripped code. The
# member-call alternative requires `.` or `->` so that free functions
# named e.g. `insert` in this codebase would not be miscaught; `new` is
# a keyword and safe to match bare.
ALLOC_TOKEN_RES: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\bnew\b(?!\s*\()"), "new expression"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?"
                r"(malloc|calloc|realloc|aligned_alloc|strdup)\s*\("),
     "heap call"),
    (re.compile(r"(?:\.|->)\s*(push_back|emplace_back|emplace|resize|"
                r"reserve|insert|assign|append)\s*\("),
     "growing-container call"),
    (re.compile(r"\b(make_unique|make_shared)\s*<"), "factory allocation"),
]


def module_of(path: pathlib.Path, src: pathlib.Path) -> str | None:
    """First path component under src/, or None for files outside src/."""
    try:
        rel = path.relative_to(src)
    except ValueError:
        return None
    return rel.parts[0] if len(rel.parts) > 1 else None


def match_brace_span(text: str, open_index: int) -> int | None:
    """Index one past the `}` matching the `{` at open_index, or None if
    the file ends first. `text` must be comment/string-stripped."""
    depth = 0
    for i in range(open_index, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


def match_paren_span(text: str, open_index: int) -> int | None:
    """Index one past the `)` matching the `(` at open_index."""
    depth = 0
    for i in range(open_index, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


class Analyzer:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.src = root / "src"
        self.findings: list[Finding] = []
        # (includer module, line location of first such edge) per edge —
        # the module graph for cycle detection.
        self.edges: dict[tuple[str, str], list[tuple[pathlib.Path, int]]] = {}

    # ----------------------------------------------------------- reporting
    def _relpath(self, path: pathlib.Path) -> str:
        return fhp_report.relativize(path, self.root)

    def _report(self, path: pathlib.Path, line: int, rule: str,
                message: str, allowed: dict[int, set[str]]) -> None:
        if rule in allowed.get(line, set()):
            return
        self.findings.append(
            Finding(self._relpath(path), line, rule, message))

    # ---------------------------------------------------------- file scan
    def scan_file(self, path: pathlib.Path) -> None:
        if path.suffix not in CXX_SUFFIXES:
            return
        text = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = text.splitlines()
        code_lines = strip_code(text)
        stripped = "\n".join(code_lines)

        # Line starts in `stripped` so match offsets map back to lines.
        line_start = [0]
        for cl in code_lines:
            line_start.append(line_start[-1] + len(cl) + 1)

        def line_of(offset: int) -> int:
            lo, hi = 0, len(code_lines)
            while lo + 1 < hi:
                mid = (lo + hi) // 2
                if line_start[mid] <= offset:
                    lo = mid
                else:
                    hi = mid
            return lo + 1

        # -- suppressions ---------------------------------------------
        # allowed[line] = rule ids licensed on that line. A comment-only
        # allow line covers the next line. An allow with no reason is a
        # bare-suppression finding and licenses nothing.
        allowed: dict[int, set[str]] = {}
        for lineno, raw in enumerate(raw_lines, start=1):
            m = ALLOW_RE.search(raw)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            if not m.group(2):
                self.findings.append(Finding(
                    self._relpath(path), lineno, "bare-suppression",
                    "allow(...) without `-- reason`: explain why this "
                    "site is licensed (the suppression is not honoured)"))
                continue
            # A comment-only allow covers the next code line, skipping
            # over continuation comment lines in between.
            target = lineno
            if not code_lines[lineno - 1].strip():
                target = lineno + 1
                while (target <= len(code_lines) and
                       not code_lines[target - 1].strip() and
                       raw_lines[target - 1].strip()):
                    target += 1
            allowed.setdefault(target, set()).update(rules)

        # -- layering + edge collection -------------------------------
        mod = module_of(path, self.src)
        if mod is not None and mod in LAYER_OF:
            for lineno, code in enumerate(code_lines, start=1):
                if not re.match(r"\s*#\s*include", code):
                    continue
                raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                for m in QUOTED_INCLUDE_RE.finditer(raw):
                    target = m.group(1).split("/", 1)[0]
                    if "/" not in m.group(1) or target not in LAYER_OF:
                        continue  # spelling is flashhp_lint's business
                    if target != mod:
                        self.edges.setdefault((mod, target), []).append(
                            (path, lineno))
                    if LAYER_OF[target] > LAYER_OF[mod]:
                        self._report(
                            path, lineno, "layering",
                            f'module "{mod}" (layer {LAYER_OF[mod]}) '
                            f'includes "{m.group(1)}" from higher layer '
                            f'"{target}" (layer {LAYER_OF[target]}) — '
                            f'invert the dependency (see support/events.hpp '
                            f'and support/trace.hpp for the pattern)',
                            allowed)

        # -- alloc-in-region ------------------------------------------
        for m in PARALLEL_CALL_RE.finditer(stripped):
            call_open = stripped.index("(", m.end() - 1)
            call_end = match_paren_span(stripped, call_open)
            if call_end is None:
                continue
            # The lambda body is the first braced block inside the
            # argument list (the trip-count argument cannot contain one).
            brace = stripped.find("{", call_open, call_end)
            if brace == -1:
                continue
            body_end = match_brace_span(stripped, brace)
            if body_end is None or body_end > call_end:
                continue
            self._scan_alloc_tokens(
                path, stripped, brace, body_end, "alloc-in-region",
                f"inside a {m.group(1)} lambda — allocate per-lane "
                f"scratch before entering the region (task bodies run "
                f"on work-stealing lanes: allocate at graph "
                f"construction, not in run())", line_of, allowed)

        # -- alloc-in-noalloc -----------------------------------------
        for m in NO_ALLOC_RE.finditer(stripped):
            lineno = line_of(m.start())
            if DEFINE_NO_ALLOC_RE.search(code_lines[lineno - 1]):
                continue  # the macro definition itself
            # Find the body start: the first `{` at paren-depth 0 before
            # any `;` at paren-depth 0 (declaration-only → skip).
            depth = 0
            body = -1
            for i in range(m.end(), len(stripped)):
                c = stripped[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                elif depth == 0 and c == ";":
                    break
                elif depth == 0 and c == "{":
                    body = i
                    break
            if body == -1:
                continue
            body_end = match_brace_span(stripped, body)
            if body_end is None:
                continue
            self._scan_alloc_tokens(
                path, stripped, body, body_end, "alloc-in-noalloc",
                "in the body of an FHP_NO_ALLOC function", line_of, allowed)

    def _scan_alloc_tokens(self, path: pathlib.Path, stripped: str,
                           begin: int, end: int, rule: str, where: str,
                           line_of, allowed: dict[int, set[str]]) -> None:
        body = stripped[begin:end]
        for pattern, kind in ALLOC_TOKEN_RES:
            for m in pattern.finditer(body):
                token = m.group(0).strip().rstrip("(").strip()
                self._report(
                    path, line_of(begin + m.start()), rule,
                    f"{kind} `{token}` {where}", allowed)

    # ---------------------------------------------------------- cycle pass
    def check_cycles(self) -> None:
        """Tarjan-free SCC via iterative DFS over the tiny module graph;
        every include edge inside a non-trivial SCC is reported."""
        graph: dict[str, set[str]] = {}
        for (a, b) in self.edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())

        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[set[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            work = [(v, iter(sorted(graph[v])))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(graph[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc: set[str] = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.add(w)
                        if w == node:
                            break
                    sccs.append(scc)

        for v in sorted(graph):
            if v not in index:
                strongconnect(v)

        for scc in sccs:
            if len(scc) < 2:
                continue
            cycle = " <-> ".join(sorted(scc))
            for (a, b), sites in sorted(self.edges.items()):
                if a in scc and b in scc:
                    for site_path, site_line in sites:
                        self.findings.append(Finding(
                            self._relpath(site_path), site_line,
                            "layer-cycle",
                            f'include edge "{a}" -> "{b}" participates in '
                            f"the module cycle {{{cycle}}}"))

    # ----------------------------------------------------------- tree scan
    def scan(self, files: list[pathlib.Path]) -> None:
        for path in sorted(set(files)):
            self.scan_file(path)
        self.check_cycles()


# ------------------------------------------------------- file discovery

def files_from_compile_commands(p: pathlib.Path,
                                root: pathlib.Path) -> list[pathlib.Path]:
    db = p / "compile_commands.json" if p.is_dir() else p
    entries = json.loads(db.read_text(encoding="utf-8"))
    files: list[pathlib.Path] = []
    for entry in entries:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry.get("directory", ".")) / f
        f = f.resolve()
        try:
            f.relative_to(root)
        except ValueError:
            continue  # third-party TU (gtest, ...) — not ours to layer
        if f.is_file():
            files.append(f)
    return files


def headers_under(src: pathlib.Path) -> list[pathlib.Path]:
    return [p for p in src.rglob("*")
            if p.is_file() and p.suffix in {".hpp", ".hh", ".h"}]


# -------------------------------------------------------------- self test

SELF_TEST_FILES: dict[str, tuple[str, dict[str, int]]] = {
    # Upward include: mem (layer 1) reaching into perf (layer 3).
    "src/mem/bad_upward.cpp": (
        '#include "perf/perf_context.hpp"\n'
        'void touch() {}\n',
        {"layering": 1},
    ),
    # Peer edge is legal on its own (hydro -> eos)...
    "src/hydro/peer_edge.cpp": (
        '#include "eos/eos_types.hpp"\n'
        'void touch() {}\n',
        {},
    ),
    # Downward edge is legal: tlb consumes mem's placement vocabulary
    # (mem/numa.hpp) — the seam behind Machine::apply_placement(). Only
    # the reverse direction (mem including tlb) would be a finding.
    "src/tlb/placement_edge.cpp": (
        '#include "mem/numa.hpp"\n'
        'void touch() {}\n',
        {},
    ),
    # rt sits between the physics solvers and sim: a runtime context may
    # bundle mesh/par/perf handles (downward edges)...
    "src/rt/bundles_downward.cpp": (
        '#include "mesh/layout.hpp"\n'
        '#include "par/parallel.hpp"\n'
        '#include "perf/perf_context.hpp"\n'
        'void touch() {}\n',
        {},
    ),
    # ...but a solver reaching up into rt would invert the dependency:
    # kernels take handles, they do not know about the context type.
    "src/hydro/bad_runtime_reach.cpp": (
        '#include "rt/runtime.hpp"\n'
        'void touch() {}\n',
        {"layering": 1},
    ),
    # ...but a reciprocal pair of peer edges is a cycle: both include
    # sites are reported (scanned as one pair, see run_self_test).
    "src/eos/cycle_a.hpp": (
        '#pragma once\n'
        '#include "hydro/hydro.hpp"\n',
        {"layer-cycle": 1},
    ),
    "src/hydro/cycle_b.hpp": (
        '#pragma once\n'
        '#include "eos/cycle_a.hpp"\n',
        {"layer-cycle": 1},
    ),
    # svc is the top of the DAG: the service legally bundles setups,
    # runtimes and telemetry (all downward edges)...
    "src/svc/bundles_everything.cpp": (
        '#include "obs/telemetry.hpp"\n'
        '#include "rt/runtime.hpp"\n'
        '#include "sim/driver.hpp"\n'
        'void touch() {}\n',
        {},
    ),
    # ...and nothing below svc may know the service exists: a sim (or
    # obs) file reaching up into svc inverts the dependency.
    "src/sim/bad_service_reach.cpp": (
        '#include "svc/service.hpp"\n'
        'void touch() {}\n',
        {"layering": 1},
    ),
    "src/obs/bad_service_reach.cpp": (
        '#include "svc/job.hpp"\n'
        'void touch() {}\n',
        {"layering": 1},
    ),
    # Allocation inside a region lambda: one `new`, one push_back.
    "src/flame/bad_region_alloc.cpp": (
        'void advance(int n) {\n'
        '  par::parallel_for(n, [&](int lane, unsigned long i) {\n'
        '    auto* scratch = new double[8];\n'
        '    results.push_back(scratch[0]);\n'
        '  });\n'
        '}\n',
        {"alloc-in-region": 2},
    ),
    # Allocation inside a TaskGraph task body: task bodies run on
    # work-stealing lanes, same discipline as region lambdas. One
    # emplace_back, one make_unique; the surrounding add_task/add_edge
    # construction code may allocate freely.
    "src/sim/bad_task_alloc.cpp": (
        'void build(par::TaskGraph& g, int nleaves) {\n'
        '  scratch_.reserve(nleaves);\n'
        '  g.add_task("task.sweep", [&](int lane) {\n'
        '    results_.emplace_back(lane);\n'
        '    auto row = std::make_unique<double[]>(8);\n'
        '  });\n'
        '}\n',
        {"alloc-in-region": 2},
    ),
    # A task body writing into pre-sized per-lane scratch is the
    # sanctioned pattern and must stay clean.
    "src/sim/clean_task.cpp": (
        'void build(par::TaskGraph& g, int b) {\n'
        '  g.add_task("task.eos", [this, b](int lane) {\n'
        '    lane_rows_[lane][0] = solve(b);\n'
        '  });\n'
        '}\n',
        {},
    ),
    # Pre-region allocation + in-region writes into scratch is the
    # sanctioned pattern and must stay clean.
    "src/hydro/clean_region.cpp": (
        'void sweep(int n) {\n'
        '  lane_scratch_.resize(lanes);\n'
        '  par::parallel_for(n, [&](int lane, unsigned long i) {\n'
        '    lane_scratch_[lane][i] = solve(i);\n'
        '  });\n'
        '}\n',
        {},
    ),
    # Allocation in an FHP_NO_ALLOC inline body.
    "src/perf/bad_noalloc.cpp": (
        'FHP_NO_ALLOC void push(unsigned long n) {\n'
        '  buf_ = static_cast<char*>(std::malloc(n));\n'
        '}\n',
        {"alloc-in-noalloc": 1},
    ),
    # Declaration-only annotation: lexical scan does not chase the
    # out-of-line body (documented limitation), must not crash or flag.
    "src/tlb/decl_only.hpp": (
        '#pragma once\n'
        'struct Machine {\n'
        '  FHP_NO_ALLOC void touch(unsigned long addr) noexcept;\n'
        '};\n',
        {},
    ),
    # A reasoned allow licenses one site.
    "src/obs/suppressed.cpp": (
        'void drain(int n) {\n'
        '  par::parallel_for(n, [&](int lane, unsigned long i) {\n'
        '    // fhp-analyze: allow(alloc-in-region) -- cold path: first\n'
        '    // call only, ring is grown once then reused forever\n'
        '    ring_.reserve(cap_);\n'
        '  });\n'
        '}\n',
        {},
    ),
    # An unreasoned allow is itself a finding AND licenses nothing.
    "src/obs/bare_suppressed.cpp": (
        'void drain(int n) {\n'
        '  par::parallel_for(n, [&](int lane, unsigned long i) {\n'
        '    ring_.reserve(cap_);  // fhp-analyze: allow(alloc-in-region)\n'
        '  });\n'
        '}\n',
        {"bare-suppression": 1, "alloc-in-region": 1},
    ),
    # Comments and strings never trigger allocation rules.
    "src/gravity/comments_only.cpp": (
        'void doc(int n) {\n'
        '  par::parallel_for(n, [&](int lane, unsigned long i) {\n'
        '    // new double[8]; v.push_back(x); std::malloc(8);\n'
        '    const char* s = "new malloc push_back";\n'
        '    use(s);\n'
        '  });\n'
        '}\n',
        {},
    ),
}

# Scanned together so the reciprocal includes form a module cycle.
SELF_TEST_PAIRS = [("src/eos/cycle_a.hpp", "src/hydro/cycle_b.hpp")]


def run_self_test() -> int:
    failures = 0
    paired = {rel for pair in SELF_TEST_PAIRS for rel in pair}
    with tempfile.TemporaryDirectory(prefix="fhp_analyze_") as tmp:
        root = pathlib.Path(tmp)
        for rel, (content, _) in SELF_TEST_FILES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)

        def check(rels: list[str], expected: dict[str, int]) -> None:
            nonlocal failures
            analyzer = Analyzer(root)
            analyzer.scan([root / rel for rel in rels])
            got: dict[str, int] = {}
            for f in analyzer.findings:
                got[f.rule] = got.get(f.rule, 0) + 1
            if got != expected:
                failures += 1
                print(f"SELF-TEST FAIL {' + '.join(rels)}: "
                      f"expected {expected}, got {got}", file=sys.stderr)
                for f in analyzer.findings:
                    print(f"  {f.path}:{f.line}: [{f.rule}] {f.message}",
                          file=sys.stderr)

        for rel, (_, expected) in sorted(SELF_TEST_FILES.items()):
            if rel in paired:
                continue
            check([rel], expected)
        for pair in SELF_TEST_PAIRS:
            merged: dict[str, int] = {}
            for rel in pair:
                for rule, n in SELF_TEST_FILES[rel][1].items():
                    merged[rule] = merged.get(rule, 0) + n
            check(list(pair), merged)

    scenarios = len(SELF_TEST_FILES) - len(paired) + len(SELF_TEST_PAIRS)
    if failures == 0:
        print(f"fhp_analyze self-test: OK ({scenarios} scenarios)")
        return 0
    print(f"fhp_analyze self-test: {failures} scenario(s) failed",
          file=sys.stderr)
    return 1


# ------------------------------------------------------------------- main

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="fhp_analyze.py",
        description="module-layering / region-allocation analyzer for "
                    "the flashhp tree")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("-p", "--compile-commands", type=pathlib.Path,
                        help="compile_commands.json (or the build dir "
                             "holding one); scans its TUs + src headers")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to scan "
                             "(default: <root>/src)")
    parser.add_argument("--format", choices=fhp_report.FORMATS,
                        default="human", help="output format")
    parser.add_argument("--output", type=pathlib.Path,
                        help="write the report here instead of stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches its planted "
                             "fixture")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in RULES.items():
            print(f"{rule:18s} {summary}")
        return 0
    if args.self_test:
        return run_self_test()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"fhp_analyze: no src/ under --root {root}", file=sys.stderr)
        return 2

    files: list[pathlib.Path] = []
    if args.compile_commands:
        try:
            files += files_from_compile_commands(
                args.compile_commands.resolve(), root)
        except (OSError, ValueError, KeyError) as e:
            print(f"fhp_analyze: cannot read compile commands from "
                  f"{args.compile_commands}: {e}", file=sys.stderr)
            return 2
        files += headers_under(root / "src")
    if args.paths:
        for p in args.paths:
            p = (p if p.is_absolute() else root / p).resolve()
            if not p.exists():
                print(f"fhp_analyze: no such path: {p}", file=sys.stderr)
                return 2
            if p.is_dir():
                files += [f for f in p.rglob("*")
                          if f.is_file() and f.suffix in CXX_SUFFIXES]
            else:
                files.append(p)
    if not files:
        files = [f for f in (root / "src").rglob("*")
                 if f.is_file() and f.suffix in CXX_SUFFIXES]

    analyzer = Analyzer(root)
    analyzer.scan(files)

    stream = sys.stdout
    if args.output:
        stream = args.output.open("w", encoding="utf-8")
    try:
        fhp_report.emit(args.format, TOOL, VERSION, analyzer.findings,
                        RULES, stream,
                        info_uri="tools/fhp_analyze.py in this repository")
        if args.format == "human" and not analyzer.findings:
            stream.write("fhp_analyze: clean "
                         f"({len(set(files))} files)\n")
    finally:
        if args.output:
            stream.close()
    if analyzer.findings:
        print(f"fhp_analyze: {len(analyzer.findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
