#!/usr/bin/env python3
"""flashhp_lint: huge-page invariant linter for the flashhp tree.

The paper behind this repo found FLASH silently running on base pages
because the toolchain never delivered the page regime the code assumed.
The compiler cannot check the conventions that prevent that class of bug,
so this linter does:

  raw-mmap            mmap/munmap/madvise/mremap/mprotect (and
                      <sys/mman.h>) are allowed only in
                      src/mem/mapped_region.* and src/mem/thp.* — the two
                      files where page-regime decisions are made and
                      *verified* (MappedRegion records what it actually
                      got). A raw mmap anywhere else — including the rest
                      of src/mem (PagePool, Arena, allocator compose the
                      seam, they must not reopen it) — is exactly the
                      unverified allocation the paper warns about.

  page-size-literal   magic page-size constants (4096, 65536, 2097152,
                      536870912, 1073741824, or any `N << S` spelling of
                      them) are allowed only in src/mem/page_size.* —
                      everyone else must use the named kPage* constants or
                      runtime discovery, so a port to a 64 KiB-base-page
                      machine (the paper's A64FX) is a one-file change.

  bulk-alloc          src/mesh, src/hydro and src/eos must not allocate
                      bulk data with malloc/calloc/realloc/free or
                      `new T[...]`: simulation arrays go through
                      mem::Arena / mem::HugeBuffer so one HugePolicy
                      switch moves the whole working set between page
                      regimes.

  include-hygiene     headers carry `#pragma once`; project includes are
                      module-qualified ("mem/arena.hpp"), never relative
                      ("../mem/arena.hpp"), and must resolve to a real
                      file under src/.

  singleton-instance  `::instance()` call sites are allowed only in the
                      deprecated compat shims (src/perf/soft_counters.*,
                      src/perf/region.*). Instrumentation goes through an
                      explicit perf::PerfContext so experiment arms and
                      threads cannot leak counters into each other; a new
                      process-wide singleton reintroduces exactly that.
                      The rule also bans the retired process-global
                      accessors — `PerfContext::global()`,
                      `mem::global_page_pool()`, `mesh::default_layout()`
                      — everywhere except src/rt/runtime.cpp, the one
                      file allowed to wrap them (it is what
                      rt::Runtime::process_default() is made of). Code
                      inside a runtime takes `runtime.perf()`,
                      `runtime.page_pool()`, `runtime.layout()`.

  runtime-construction  (--check-runtime only) an executable under
                      examples/ or bench/ that constructs simulation
                      state (a Setup, DriverUnits, AmrMesh, UnkContainer,
                      HugeBuffer, HelmTable) must name an fhp::rt::Runtime
                      somewhere in the file: entry points own their
                      context explicitly instead of leaning on ambient
                      process state.

  layout-offset       hand-rolled unk index arithmetic — an nvar-like
                      factor multiplied into a parenthesized index
                      expression (`v + nvar * (i + ni * ...)`) — is allowed
                      only in src/mesh/layout.*. The block-data layout is a
                      runtime-selectable BlockLayout policy; offset math
                      re-derived anywhere else silently assumes var_major
                      and breaks under FLASHHP_LAYOUT=zone_major|tiled.

  procfs-hygiene      "/proc/..." path literals are allowed only under
                      src/mem/ and src/obs/ — the readers there take
                      injectable paths so tests can substitute fixture
                      trees and so kernel-generation differences (absent
                      fields) are handled in one place. A /proc literal
                      anywhere else is an untestable, unversioned parse.

Suppressions (sparingly, with a reason in the surrounding comment):
  // fhp-lint: allow(rule-id)         — this line only
  // fhp-lint: allow-file(rule-id)    — whole file; first 15 lines only

Exit status: 0 clean, 1 violations found, 2 bad invocation.
Run `flashhp_lint.py --self-test` to verify the linter still catches
planted violations (wired into ctest as flashhp_lint_selftest).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile
from dataclasses import dataclass

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import fhp_report  # noqa: E402

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Byte values that are page sizes on machines this project cares about:
# 4 KiB x86 base, 64 KiB A64FX base, 2 MiB PMD/THP, 512 MiB A64FX hugetlb,
# 1 GiB x86 gigantic.
PAGE_SIZE_VALUES = {4096, 65536, 2097152, 536870912, 1073741824}

MMAP_FUNCTIONS = ("mmap", "munmap", "madvise", "mremap", "mprotect")

ALLOW_LINE_RE = re.compile(r"fhp-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
ALLOW_FILE_RE = re.compile(
    r"fhp-lint:\s*allow-file\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RULES = {
    "raw-mmap": "raw mmap/munmap/madvise/... outside mem/mapped_region + "
                "mem/thp",
    "page-size-literal": "magic page-size literal outside src/mem/page_size.*",
    "bulk-alloc": "malloc/new[] bulk allocation in mesh/hydro/eos",
    "include-hygiene": "#pragma once, module-qualified non-relative includes",
    "singleton-instance":
        "::instance() / process-global accessor call site outside the "
        "compat shims and src/rt/runtime.cpp",
    "runtime-construction":
        "examples/bench executable builds simulation state without an "
        "rt::Runtime (--check-runtime mode)",
    "layout-offset":
        "hand-rolled unk index arithmetic outside src/mesh/layout.*",
    "procfs-hygiene":
        '"/proc/..." path literal outside src/mem and src/obs',
}


@dataclass
class Violation:
    path: pathlib.Path
    line: int
    rule: str
    message: str

    def format(self, root: pathlib.Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> list[str]:
    """Return per-line source with comments and string/char literals
    blanked out, so tokens inside them are never matched."""
    out: list[list[str]] = [[]]
    state = "code"  # code | line-comment | block-comment | string | char
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line-comment":
                state = "code"
            out.append([])
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out[-1].append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out[-1].append(" ")
                i += 1
                continue
            out[-1].append(c)
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (
                    state == "char" and c == "'"):
                state = "code"
            i += 1
            continue
        if state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state == "line-comment":
            i += 1
            continue
    return ["".join(chars) for chars in out]


def string_literals(text: str) -> list[list[str]]:
    """Per-line list of the *contents* of ordinary string literals —
    the inverse slice of strip_code(), which blanks them. Comments and
    char literals are skipped; escapes are passed through verbatim
    (good enough for path-shaped content)."""
    out: list[list[str]] = [[]]
    state = "code"
    current: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line-comment":
                state = "code"
            out.append([])
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                current = []
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            i += 1
            continue
        if state == "string":
            if c == "\\":
                current.append(text[i:i + 2])
                i += 2
                continue
            if c == '"':
                out[-1].append("".join(current))
                state = "code"
                i += 1
                continue
            current.append(c)
            i += 1
            continue
        if state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
            i += 1
            continue
        if state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state == "line-comment":
            i += 1
            continue
    return out


PROCFS_LITERAL_RE = re.compile(r"^/proc(?:/|$)")


def shifted_value(lhs: str, rhs: str) -> int | None:
    try:
        return int(lhs, 0) << int(rhs, 0)
    except (ValueError, OverflowError):
        return None


SHIFT_RE = re.compile(r"\b(\d+)\s*(?:u|l|ul|ull|uz|z)?\s*<<\s*(\d+)\b",
                      re.IGNORECASE)
# Products of plain integer literals: 2 * 1024 * 1024 and friends.
PRODUCT_RE = re.compile(
    r"\b(?:0[xX][0-9a-fA-F]+|\d+)(?:u|l|ul|ull|uz|z)?"
    r"(?:\s*\*\s*(?:0[xX][0-9a-fA-F]+|\d+)(?:u|l|ul|ull|uz|z)?)+\b",
    re.IGNORECASE)
INT_LITERAL_RE = re.compile(r"\b(0[xX][0-9a-fA-F]+|\d+)(?:u|l|ul|ull|uz|z)?\b",
                            re.IGNORECASE)
MMAP_CALL_RE = re.compile(
    r"(?<![\w:])(?:::\s*)?(" + "|".join(MMAP_FUNCTIONS) + r")\s*\(")
MMAN_INCLUDE_RE = re.compile(r'#\s*include\s*<sys/mman\.h>')
CALLOC_RE = re.compile(r"(?<![\w:])(?:std\s*::\s*)?"
                       r"(malloc|calloc|realloc|free)\s*\(")
NEW_ARRAY_RE = re.compile(r"\bnew\s+[\w:<>,\s]+?\[")
MAKE_UNIQUE_ARRAY_RE = re.compile(r"\bmake_unique\s*<[^;>]*\[\s*\]\s*>")
QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
PRAGMA_ONCE_RE = re.compile(r"#\s*pragma\s+once\b")
SINGLETON_RE = re.compile(r"(?:\.|->|::)\s*instance\s*\(\s*\)")
# The retired process-global accessors. `\bdefault_layout` deliberately
# does NOT match `set_default_layout(` (no word boundary after `set_`):
# *choosing* the process default is configuration, *reading* it is the
# ambient dependency the rule exists to stop.
PROCESS_GLOBAL_RE = re.compile(
    r"PerfContext\s*::\s*global\s*\(|\bglobal_page_pool\s*\(|"
    r"\bdefault_layout\s*\(")
# --check-runtime: the types whose construction marks an executable as
# "builds simulation state", and the tokens that satisfy the obligation.
SIM_STATE_RE = re.compile(
    r"\b(?:SedovSetup|SupernovaSetup|CellularSetup|DriverUnits|AmrMesh|"
    r"UnkContainer|HugeBuffer|HelmTable|JobSpec)\b")
# svc::Service satisfies the obligation too: the service constructs one
# rt::Runtime per tenant internally — a load generator submitting
# JobSpecs owns its context through the service, not an ambient one.
RUNTIME_TOKEN_RE = re.compile(
    r"\brt\s*::\s*Runtime\b|\bRuntime\s*::\s*process_default\b|"
    r"\bsvc\s*::\s*Service\b")
# An nvar-like factor (nvar, nvar_, nvar(), kNvar, c.nvar(), NVAR ...)
# multiplied into a parenthesized expression: the shape of hand-rolled
# var-major offset math like `v + nvar * (i + ni * (j + ...))`. The
# optional `)` absorbs casts: `static_cast<std::size_t>(nvar_) * (...)`.
LAYOUT_OFFSET_RE = re.compile(
    r"\bk?n_?var[\w]*\s*(?:\(\s*\))?\s*\)?\s*\*\s*\(", re.IGNORECASE)


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.src = root / "src"
        self.violations: list[Violation] = []

    # ---------------------------------------------------------------- scope
    def _under(self, path: pathlib.Path, *parts: str) -> bool:
        probe = self.src.joinpath(*parts)
        return probe == path or probe in path.parents

    def _is_mem(self, path: pathlib.Path) -> bool:
        return self._under(path, "mem")

    def _is_mmap_scope(self, path: pathlib.Path) -> bool:
        # The raw-mmap seam is narrower than src/mem: only MappedRegion
        # (the mapping ladder) and thp (the madvise helpers) may touch the
        # syscalls. Everything else in mem — PagePool, Arena, allocator —
        # composes those two, so a new mmap there is as suspect as one in
        # src/hydro.
        return self._under(path, "mem") and \
            path.stem in ("mapped_region", "thp")

    def _is_page_size(self, path: pathlib.Path) -> bool:
        return self._under(path, "mem") and path.stem == "page_size"

    def _is_bulk_scope(self, path: pathlib.Path) -> bool:
        return any(self._under(path, m) for m in ("mesh", "hydro", "eos"))

    def _is_singleton_shim(self, path: pathlib.Path) -> bool:
        return self._under(path, "perf") and \
            path.stem in ("soft_counters", "region")

    def _is_runtime_home(self, path: pathlib.Path) -> bool:
        # The one licensed caller of the process-global accessors:
        # rt::Runtime::process_default()'s implementation file.
        return self._under(path, "rt") and path.stem == "runtime"

    def _is_layout(self, path: pathlib.Path) -> bool:
        return self._under(path, "mesh") and path.stem == "layout"

    def _is_procfs_scope(self, path: pathlib.Path) -> bool:
        return self._under(path, "mem") or self._under(path, "obs")

    # ----------------------------------------------------------------- scan
    def lint_file(self, path: pathlib.Path) -> None:
        if path.suffix not in CXX_SUFFIXES:
            return
        text = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = text.splitlines()
        code_lines = strip_code(text)

        file_allowed: set[str] = set()
        for raw in raw_lines[:15]:
            m = ALLOW_FILE_RE.search(raw)
            if m:
                file_allowed.update(r.strip() for r in m.group(1).split(","))

        def allows(line_index: int) -> set[str]:
            if not 0 <= line_index < len(raw_lines):
                return set()
            m = ALLOW_LINE_RE.search(raw_lines[line_index])
            if not m:
                return set()
            return {r.strip() for r in m.group(1).split(",")}

        def report(lineno: int, rule: str, message: str) -> None:
            if rule in file_allowed:
                return
            if rule in allows(lineno - 1):
                return
            # A comment-only allow line covers the next line, like
            # clang-tidy's NOLINTNEXTLINE.
            if (lineno >= 2 and not code_lines[lineno - 2].strip()
                    and rule in allows(lineno - 2)):
                return
            self.violations.append(Violation(path, lineno, rule, message))

        in_mmap_scope = self._is_mmap_scope(path)
        in_page_size = self._is_page_size(path)
        in_bulk = self._is_bulk_scope(path)
        in_singleton_shim = self._is_singleton_shim(path)
        in_runtime_home = self._is_runtime_home(path)
        in_layout = self._is_layout(path)

        # ---- procfs hygiene ------------------------------------------
        # Scans string *contents* (a separate pass: strip_code blanks
        # them), so "/proc" in a comment never matches and a literal
        # split across concatenated lines is still seen per line.
        if not self._is_procfs_scope(path):
            for lineno, literals in enumerate(string_literals(text), start=1):
                for lit in literals:
                    if PROCFS_LITERAL_RE.search(lit):
                        report(lineno, "procfs-hygiene",
                               f'procfs path literal "{lit}" — go through '
                               f'the injectable-path readers in src/mem '
                               f'(MeminfoSnapshot, VmstatSnapshot, ...) or '
                               f'the src/obs sampler')
                        break

        if path.suffix in {".hpp", ".hh", ".h"} and raw_lines:
            if not any(PRAGMA_ONCE_RE.search(l) for l in code_lines):
                report(1, "include-hygiene",
                       "header is missing '#pragma once'")

        for lineno, code in enumerate(code_lines, start=1):
            if not code.strip():
                continue

            # ---- include hygiene -------------------------------------
            # The include path is a string literal, which strip_code
            # blanks; detect the directive on the stripped line (so
            # commented-out includes are ignored) but parse the path from
            # the raw line.
            raw = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
            include_line = raw if re.match(r"\s*#\s*include", code) else ""
            for m in QUOTED_INCLUDE_RE.finditer(include_line):
                inc = m.group(1)
                if inc.startswith("..") or "/../" in inc:
                    report(lineno, "include-hygiene",
                           f'relative include "{inc}" — use the '
                           f'module-qualified path from src/')
                    continue
                if "/" not in inc:
                    report(lineno, "include-hygiene",
                           f'include "{inc}" is not module-qualified '
                           f'(expected "<module>/{inc}")')
                    continue
                if not (self.src / inc).is_file():
                    report(lineno, "include-hygiene",
                           f'include "{inc}" does not resolve under src/')

            # ---- raw mmap family -------------------------------------
            if not in_mmap_scope:
                m = MMAP_CALL_RE.search(code)
                if m:
                    report(lineno, "raw-mmap",
                           f"raw {m.group(1)}() call outside "
                           f"mem/mapped_region + mem/thp — go through "
                           f"mem::MappedRegion / mem::PagePool so the "
                           f"page regime is tracked and verified")
                if MMAN_INCLUDE_RE.search(include_line):
                    report(lineno, "raw-mmap",
                           "<sys/mman.h> included outside "
                           "mem/mapped_region + mem/thp")

            # ---- magic page-size literals ----------------------------
            if not in_page_size:
                consumed: list[tuple[int, int]] = []
                for m in SHIFT_RE.finditer(code):
                    value = shifted_value(m.group(1), m.group(2))
                    if value in PAGE_SIZE_VALUES:
                        consumed.append(m.span())
                        report(lineno, "page-size-literal",
                               f"page-size literal {m.group(0).strip()} "
                               f"(= {value}) — use the kPage* constants "
                               f"from mem/page_size.hpp")
                for m in PRODUCT_RE.finditer(code):
                    if any(s <= m.start() < e for s, e in consumed):
                        continue
                    factors = [int(f, 0) for f in
                               INT_LITERAL_RE.findall(m.group(0))]
                    value = 1
                    for f in factors:
                        value *= f
                    if value in PAGE_SIZE_VALUES:
                        consumed.append(m.span())
                        report(lineno, "page-size-literal",
                               f"page-size literal {m.group(0).strip()} "
                               f"(= {value}) — use the kPage* constants "
                               f"from mem/page_size.hpp")
                for m in INT_LITERAL_RE.finditer(code):
                    if any(s <= m.start() < e for s, e in consumed):
                        continue
                    try:
                        value = int(m.group(1), 0)
                    except ValueError:
                        continue
                    if value in PAGE_SIZE_VALUES:
                        report(lineno, "page-size-literal",
                               f"page-size literal {m.group(1)} — use the "
                               f"kPage* constants from mem/page_size.hpp")

            # ---- hand-rolled layout offset math ----------------------
            if not in_layout and LAYOUT_OFFSET_RE.search(code):
                report(lineno, "layout-offset",
                       "hand-rolled unk offset arithmetic (nvar * (...)) — "
                       "index through mesh::BlockLayout / UnkContainer so "
                       "the code holds under every FLASHHP_LAYOUT")

            # ---- singleton call sites --------------------------------
            if not in_singleton_shim and SINGLETON_RE.search(code):
                report(lineno, "singleton-instance",
                       "::instance() call site — pass an explicit "
                       "perf::PerfContext (or the relevant handle) instead "
                       "of reaching for process-wide singleton state")
            if not in_runtime_home:
                m = PROCESS_GLOBAL_RE.search(code)
                if m:
                    accessor = m.group(0).rstrip("(").strip()
                    report(lineno, "singleton-instance",
                           f"{accessor}() call site — construct an "
                           f"fhp::rt::Runtime (or use "
                           f"rt::Runtime::process_default()) and take "
                           f"the handle from it")

            # ---- bulk allocation in simulation modules ---------------
            if in_bulk:
                m = CALLOC_RE.search(code)
                if m:
                    report(lineno, "bulk-alloc",
                           f"{m.group(1)}() in a simulation module — bulk "
                           f"data must come from mem::Arena / "
                           f"mem::HugeBuffer")
                if NEW_ARRAY_RE.search(code) or \
                        MAKE_UNIQUE_ARRAY_RE.search(code):
                    report(lineno, "bulk-alloc",
                           "array new in a simulation module — bulk data "
                           "must come from mem::Arena / mem::HugeBuffer")

    # --------------------------------------------------- runtime check
    def check_runtime_construction(self) -> None:
        """--check-runtime: every executable under examples/ and bench/
        that constructs simulation state must name an rt::Runtime.

        Grep-granularity on the stripped source of each .cpp: shared
        headers (bench/experiment_common.hpp) may pre-wire handles for a
        caller-supplied runtime, so the obligation sits on the entry
        points, where the context is owned."""
        for sub in ("examples", "bench"):
            base = self.root / sub
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.cpp")):
                text = path.read_text(encoding="utf-8", errors="replace")
                code = "\n".join(strip_code(text))
                if not SIM_STATE_RE.search(code):
                    continue
                if RUNTIME_TOKEN_RE.search(code):
                    continue
                self.violations.append(Violation(
                    path, 1, "runtime-construction",
                    "constructs simulation state (Setup / DriverUnits / "
                    "mesh containers) but never names an fhp::rt::Runtime "
                    "— construct one (or take "
                    "rt::Runtime::process_default()) and pass its "
                    "handles down"))

    def lint_tree(self, paths: list[pathlib.Path]) -> None:
        for base in paths:
            if base.is_file():
                self.lint_file(base)
                continue
            for path in sorted(base.rglob("*")):
                if path.is_file():
                    self.lint_file(path)


# -------------------------------------------------------------- self test

SELF_TEST_FILES = {
    "src/hydro/bad_mmap.cpp": (
        '#include <sys/mman.h>\n'
        'void* grab(unsigned long n) {\n'
        '  return mmap(nullptr, n, 3, 0x22, -1, 0);\n'
        '}\n',
        {"raw-mmap": 2},
    ),
    # src/mem is NOT a blanket license: PagePool composes MappedRegion and
    # must never reopen the mmap seam itself.
    "src/mem/page_pool.cpp": (
        '#include <sys/mman.h>\n'
        'void* grab(unsigned long n) {\n'
        '  return mmap(nullptr, n, 3, 0x22, -1, 0);\n'
        '}\n',
        {"raw-mmap": 2},
    ),
    # ...while the two seam files keep their license.
    "src/mem/mapped_region.cpp": (
        '#include <sys/mman.h>\n'
        'void* grab(unsigned long n) {\n'
        '  return mmap(nullptr, n, 3, 0x22, -1, 0);\n'
        '}\n',
        {},
    ),
    "src/eos/bad_literal.cpp": (
        'unsigned long table_bytes() {\n'
        '  unsigned long page = 4096;\n'
        '  unsigned long huge = 1ull << 21;\n'
        '  unsigned long prod = 2 * 1024 * 1024;\n'
        '  return page + huge + prod;\n'
        '}\n',
        {"page-size-literal": 3},
    ),
    "src/mesh/bad_alloc.cpp": (
        '#include <cstdlib>\n'
        'double* unk_block(unsigned long n) {\n'
        '  double* p = new double[n];\n'
        '  void* q = std::malloc(n);\n'
        '  std::free(q);\n'
        '  return p;\n'
        '}\n',
        {"bulk-alloc": 3},
    ),
    "src/tlb/bad_include.hpp": (
        '#include "../mem/arena.hpp"\n'
        '#include "arena.hpp"\n',
        {"include-hygiene": 3},  # relative + unqualified + no pragma once
    ),
    "src/perf/suppressed.cpp": (
        '// deliberate: measuring the base-page TLB reach\n'
        'unsigned long base() {\n'
        '  return 4096;  // fhp-lint: allow(page-size-literal)\n'
        '}\n',
        {},
    ),
    "src/flame/clean.cpp": (
        '#include "mem/page_size.hpp"\n'
        'unsigned long two_pages() { return 2 * fhp::mem::kPage2M; }\n',
        {},
    ),
    "src/sim/bad_singleton.cpp": (
        'namespace fhp::perf { struct SoftCounters {\n'
        '  static SoftCounters& instance() noexcept;\n'
        '  void reset(); }; }\n'
        'void touch() {\n'
        '  fhp::perf::SoftCounters::instance().reset();\n'
        '}\n',
        {"singleton-instance": 1},
    ),
    # The retired process-global accessors are singleton reads too.
    "src/hydro/bad_process_global.cpp": (
        'void wire_from_ambient_state() {\n'
        '  auto& ctx = fhp::perf::PerfContext::global();\n'
        '  auto& pool = fhp::mem::global_page_pool();\n'
        '  auto kind = fhp::mesh::default_layout();\n'
        '  (void)ctx; (void)pool; (void)kind;\n'
        '}\n',
        {"singleton-instance": 3},
    ),
    # rt/runtime.cpp is the licensed wrapper of the process globals.
    "src/rt/runtime.cpp": (
        'namespace fhp::rt {\n'
        'void snapshot_process_state() {\n'
        '  auto& ctx = perf::PerfContext::global();\n'
        '  auto& pool = mem::global_page_pool();\n'
        '  auto kind = mesh::default_layout();\n'
        '  (void)ctx; (void)pool; (void)kind;\n'
        '}\n'
        '}  // namespace fhp::rt\n',
        {},
    ),
    # Pinning the default (set_default_layout) is configuration, not an
    # ambient read; it must not trip the accessor ban.
    "src/sim/set_layout_ok.cpp": (
        'namespace fhp::mesh { enum class LayoutKind : int; }\n'
        'void choose(fhp::mesh::LayoutKind k) {\n'
        '  fhp::mesh::set_default_layout(k);\n'
        '}\n',
        {},
    ),
    # The compat shims themselves may define and call instance().
    "src/perf/soft_counters.cpp": (
        'namespace fhp::perf {\n'
        'struct SoftCounters { static SoftCounters& instance() noexcept; };\n'
        'SoftCounters& SoftCounters::instance() noexcept {\n'
        '  static SoftCounters shim;\n'
        '  return shim;\n'
        '}\n'
        '}\n',
        {},
    ),
    # Hand-rolled var-major offset math outside the layout policy.
    "src/hydro/bad_offset.cpp": (
        'unsigned long off(int v, int i, int j, int nvar, int ni) {\n'
        '  return v + nvar * (i + ni * j);\n'
        '}\n'
        'unsigned long off2(unsigned long v, unsigned long i) {\n'
        '  const unsigned long kNvar = 15;\n'
        '  return v + kNvar * (i);\n'
        '}\n'
        'unsigned long off3(unsigned long nvar_, unsigned long i) {\n'
        '  return static_cast<unsigned long>(nvar_) * (i + 1);\n'
        '}\n',
        {"layout-offset": 3},
    ),
    # The layout policy itself is the one licensed home of that math.
    "src/mesh/layout.cpp": (
        'unsigned long off(int v, int i, int j, int nvar, int ni) {\n'
        '  return v + nvar * (i + ni * j);\n'
        '}\n',
        {},
    ),
    # An allow-comment licenses a deliberate reference pattern.
    "src/tlb/offset_reference.cpp": (
        '// documents the historical Fortran order for the tracer tests\n'
        'unsigned long fortran_off(int v, int nvar, int zone) {\n'
        '  return v + nvar * (zone);  // fhp-lint: allow(layout-offset)\n'
        '}\n',
        {},
    ),
    # Comments and strings must not trigger token rules.
    "src/gravity/comments_only.cpp": (
        '// mmap(MADV_HUGEPAGE) is discussed here: 4096 bytes, madvise().\n'
        '/* new double[4096]; malloc(2097152); */\n'
        'const char* doc() { return "mmap 4096 madvise"; }\n',
        {},
    ),
    # A /proc literal outside src/mem and src/obs is an untestable parse.
    "src/sim/bad_procfs.cpp": (
        '#include <fstream>\n'
        'unsigned long read_total() {\n'
        '  std::ifstream f("/proc/meminfo");\n'
        '  std::ifstream g("/proc/self/smaps_rollup");\n'
        '  return 0;\n'
        '}\n',
        {"procfs-hygiene": 2},
    ),
    # The injectable-path readers are the licensed home of those literals.
    "src/mem/procfs_reader.cpp": (
        'const char* default_meminfo() { return "/proc/meminfo"; }\n',
        {},
    ),
    "src/obs/sampler_paths.cpp": (
        'const char* default_vmstat() { return "/proc/vmstat"; }\n',
        {},
    ),
    # /proc in comments must not trigger; /procfs-ish words must not
    # trigger; an allow-comment licenses a deliberate one-off probe.
    "src/perf/procfs_edges.cpp": (
        '// reads /proc/sys/kernel/perf_event_paranoid at startup\n'
        'const char* doc() { return "see procfs(5), not a path"; }\n'
        'int paranoid() {\n'
        '  // one root-owned knob, no fields to version\n'
        '  const char* p = "/proc/sys/kernel/perf_event_paranoid";'
        '  // fhp-lint: allow(procfs-hygiene)\n'
        '  return p != nullptr;\n'
        '}\n',
        {},
    ),
}


def run_self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="flashhp_lint_") as tmp:
        root = pathlib.Path(tmp)
        # The include-hygiene resolver needs the real file to exist.
        (root / "src/mem").mkdir(parents=True)
        (root / "src/mem/page_size.hpp").write_text("#pragma once\n")
        for rel, (content, _) in SELF_TEST_FILES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)

        for rel, (_, expected) in sorted(SELF_TEST_FILES.items()):
            linter = Linter(root)
            linter.lint_file(root / rel)
            got: dict[str, int] = {}
            for v in linter.violations:
                got[v.rule] = got.get(v.rule, 0) + 1
            if got != expected:
                failures += 1
                print(f"SELF-TEST FAIL {rel}: expected {expected}, "
                      f"got {got}", file=sys.stderr)
                for v in linter.violations:
                    print(f"  {v.format(root)}", file=sys.stderr)
        # The real tree's page_size.hpp must be allowed its own literals.
        linter = Linter(root)
        (root / "src/mem/page_size.hpp").write_text(
            "#pragma once\ninline constexpr unsigned long kPage4K = 4096;\n")
        linter.lint_file(root / "src/mem/page_size.hpp")
        if linter.violations:
            failures += 1
            print("SELF-TEST FAIL: page_size.hpp must be exempt from "
                  "page-size-literal", file=sys.stderr)

        # --check-runtime: an example that builds a mesh without naming a
        # Runtime fails; one that constructs a Runtime passes; one that
        # touches no simulation state is out of scope, as is a shared
        # bench header that pre-wires handles for a caller's runtime.
        (root / "examples").mkdir()
        (root / "bench").mkdir()
        (root / "examples/bad_no_runtime.cpp").write_text(
            'int main() {\n'
            '  fhp::sim::SedovSetup setup({}, fhp::mem::HugePolicy::kNone);\n'
            '  return 0;\n'
            '}\n')
        (root / "examples/good_runtime.cpp").write_text(
            'int main() {\n'
            '  fhp::rt::Runtime runtime({});\n'
            '  fhp::sim::SedovSetup setup({}, fhp::mem::HugePolicy::kNone,\n'
            '                             runtime);\n'
            '  return 0;\n'
            '}\n')
        (root / "examples/no_sim_state.cpp").write_text(
            'int main() { return 0; }\n')
        # A service client builds JobSpecs, never a Runtime by name: the
        # svc::Service constructs the per-tenant runtimes, so naming the
        # service satisfies the obligation.
        (root / "examples/good_service.cpp").write_text(
            'int main() {\n'
            '  fhp::svc::Service service({});\n'
            '  fhp::svc::JobSpec spec;\n'
            '  (void)service.submit(spec);\n'
            '  return 0;\n'
            '}\n')
        (root / "bench/experiment_helpers.hpp").write_text(
            '#pragma once\n'
            'fhp::sim::DriverUnits units();  // caller wires the runtime\n')
        linter = Linter(root)
        linter.check_runtime_construction()
        runtime_hits = sorted(v.path.name for v in linter.violations)
        if runtime_hits != ["bad_no_runtime.cpp"] or any(
                v.rule != "runtime-construction" for v in linter.violations):
            failures += 1
            print(f"SELF-TEST FAIL --check-runtime: expected exactly "
                  f"bad_no_runtime.cpp, got {runtime_hits}", file=sys.stderr)
    if failures == 0:
        print(f"flashhp_lint self-test: OK "
              f"({len(SELF_TEST_FILES) + 2} scenarios)")
        return 0
    print(f"flashhp_lint self-test: {failures} scenario(s) failed",
          file=sys.stderr)
    return 1


# ------------------------------------------------------------------- main

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="flashhp_lint.py",
        description="huge-page invariant linter for the flashhp tree")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to lint "
                             "(default: <root>/src)")
    parser.add_argument("--format", choices=fhp_report.FORMATS,
                        default="human", help="output format")
    parser.add_argument("--output", type=pathlib.Path,
                        help="write the report here instead of stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter catches planted violations")
    parser.add_argument("--check-runtime", action="store_true",
                        help="check that examples/bench executables "
                             "constructing simulation state name an "
                             "rt::Runtime (instead of linting src/)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in RULES.items():
            print(f"{rule:20s} {summary}")
        return 0
    if args.self_test:
        return run_self_test()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"flashhp_lint: no src/ under --root {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    if args.check_runtime:
        linter.check_runtime_construction()
    else:
        paths = [p if p.is_absolute() else root / p
                 for p in args.paths] or [root / "src"]
        for p in paths:
            if not p.exists():
                print(f"flashhp_lint: no such path: {p}", file=sys.stderr)
                return 2
        linter.lint_tree(paths)
    findings = [
        fhp_report.Finding(fhp_report.relativize(v.path, root), v.line,
                           v.rule, v.message)
        for v in linter.violations
    ]
    stream = sys.stdout
    if args.output:
        stream = args.output.open("w", encoding="utf-8")
    try:
        fhp_report.emit(args.format, "flashhp_lint", "1.0", findings,
                        RULES, stream,
                        info_uri="tools/flashhp_lint.py in this repository")
        if args.format == "human" and not findings:
            stream.write("flashhp_lint: clean\n")
    finally:
        if args.output:
            stream.close()
    if findings:
        print(f"flashhp_lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
