#!/usr/bin/env python3
"""check_trace: validator for flashhp timeline exports.

Validates that a chrome://tracing / Perfetto JSON file written by
`fhp::obs::write_timeline` is well-formed and contains what a telemetry
run promises: properly nested complete ("X") span events with sane
timestamps, counter ("C") tracks for the memory/THP series, and the
span latency histograms under the "flashhpSummary" key. Used by ctest
(the telemetry fixture runs sedov3d and validates the output) and by the
CI telemetry job.

Usage:
  check_trace.py timeline.json
      [--require-span NAME]...       span name that must appear
      [--require-counter TRACK]...   counter track that must appear
      [--require-histogram NAME]...  summary histogram that must appear
      [--min-lanes N]                spans must come from >= N distinct tids
      [--min-spans N]                total span count floor
      [--csv FILE]                   also validate a sampler CSV
      [--self-test]                  validate the validator

Exit status: 0 valid, 1 invalid, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile


class TraceError(Exception):
    pass


def fail(msg: str) -> None:
    raise TraceError(msg)


def load(path: pathlib.Path) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level must be the JSON-object trace form")
    if "traceEvents" not in doc or not isinstance(doc["traceEvents"], list):
        fail("missing 'traceEvents' array")
    return doc


def check_events(doc: dict) -> tuple[dict[str, int], dict[str, int]]:
    """Validate every event; return (span name -> count, counter track ->
    sample count)."""
    spans: dict[str, int] = {}
    counters: dict[str, int] = {}
    # Per-tid (name, start, end) triples, nesting-checked after the scan:
    # the trace format carries no ordering guarantee (flashhp emits spans
    # in completion order, innermost first), so events are sorted by start
    # time before the stack walk.
    spans_by_tid: dict[int, list[tuple[str, float, float]]] = {}
    for idx, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{idx}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "C", "i", "I", "M", "B", "E"):
            fail(f"traceEvents[{idx}] has unsupported phase {ph!r}")
        if ph == "M":
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"traceEvents[{idx}] has no name")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"traceEvents[{idx}] ({name}): bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"traceEvents[{idx}] ({name}): bad dur {dur!r}")
            tid = ev.get("tid")
            if not isinstance(tid, int) or tid < 0:
                fail(f"traceEvents[{idx}] ({name}): bad tid {tid!r}")
            spans[name] = spans.get(name, 0) + 1
            spans_by_tid.setdefault(tid, []).append(
                (name, float(ts), float(ts) + float(dur)))
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"counter '{name}': missing args")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    fail(f"counter '{name}': non-numeric series "
                         f"{key}={value!r}")
            counters[name] = counters.get(name, 0) + 1
    # Complete events on one tid must nest: each pair is either disjoint
    # or one contains the other. Sorted by start (outermost first at equal
    # starts), a single stack walk catches any straddling pair.
    for tid, tid_spans in spans_by_tid.items():
        tid_spans.sort(key=lambda s: (s[1], -s[2]))
        stack: list[tuple[str, float, float]] = []
        for name, begin, end in tid_spans:
            while stack and stack[-1][2] <= begin:
                stack.pop()
            if stack:
                oname, obegin, oend = stack[-1]
                if end > oend and begin < oend:
                    fail(f"span '{name}' [{begin},{end}] on tid {tid} "
                         f"overlaps '{oname}' [{obegin},{oend}] "
                         f"without nesting")
            stack.append((name, begin, end))
    return spans, counters


def span_tids(doc: dict) -> set[int]:
    return {ev["tid"] for ev in doc["traceEvents"]
            if isinstance(ev, dict) and ev.get("ph") == "X"}


def check_summary(doc: dict) -> dict:
    summary = doc.get("flashhpSummary")
    if not isinstance(summary, dict):
        fail("missing 'flashhpSummary' object")
    for key in ("totalSpans", "droppedSpans", "histograms"):
        if key not in summary:
            fail(f"flashhpSummary is missing '{key}'")
    hists = summary["histograms"]
    if not isinstance(hists, dict):
        fail("flashhpSummary.histograms must be an object")
    for name, h in hists.items():
        for key in ("count", "p50_ns", "p90_ns", "p99_ns", "max_ns"):
            if not isinstance(h.get(key), (int, float)):
                fail(f"histogram '{name}': missing/non-numeric '{key}'")
        if not (h["p50_ns"] <= h["p90_ns"] <= h["p99_ns"] <= h["max_ns"]):
            fail(f"histogram '{name}': quantiles not monotonic")
    return summary


def check_csv(path: pathlib.Path) -> int:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not lines:
        fail(f"{path}: empty CSV")
    header = lines[0].split(",")
    if header[0] != "t_ns":
        fail(f"{path}: first column must be t_ns, got {header[0]!r}")
    for i, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(header):
            fail(f"{path}:{i}: {len(cells)} cells, header has {len(header)}")
        if not cells[0].isdigit():
            fail(f"{path}:{i}: non-integer t_ns {cells[0]!r}")
        # Empty cells are legal: they are the "kernel does not report
        # this field" encoding. Non-empty cells must be integers.
        for j, cell in enumerate(cells[1:], start=1):
            if cell and not cell.lstrip("-").isdigit():
                fail(f"{path}:{i}: column {header[j]}: "
                     f"non-numeric {cell!r}")
    return len(lines) - 1


def validate(args: argparse.Namespace) -> int:
    doc = load(args.trace)
    spans, counters = check_events(doc)
    summary = check_summary(doc)

    for name in args.require_span:
        if spans.get(name, 0) == 0:
            fail(f"required span '{name}' not present "
                 f"(have: {sorted(spans) or 'none'})")
    for track in args.require_counter:
        if counters.get(track, 0) == 0:
            fail(f"required counter track '{track}' not present "
                 f"(have: {sorted(counters) or 'none'})")
    for name in args.require_histogram:
        if name not in summary["histograms"]:
            fail(f"required histogram '{name}' not present "
                 f"(have: {sorted(summary['histograms']) or 'none'})")
    lanes = span_tids(doc)
    if len(lanes) < args.min_lanes:
        fail(f"spans on {len(lanes)} lane(s) {sorted(lanes)}, "
             f"need >= {args.min_lanes}")
    total = sum(spans.values())
    if total < args.min_spans:
        fail(f"{total} spans, need >= {args.min_spans}")

    rows = check_csv(args.csv) if args.csv else None
    msg = (f"check_trace: OK — {total} spans over {len(lanes)} lane(s), "
           f"{sum(counters.values())} counter samples on "
           f"{len(counters)} track(s), "
           f"{len(summary['histograms'])} histogram(s)")
    if rows is not None:
        msg += f", {rows} CSV row(s)"
    print(msg)
    return 0


# -------------------------------------------------------------- self test

GOOD_TRACE = {
    "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "flashhp"}},
        {"name": "driver.step", "cat": "span", "ph": "X", "ts": 0.0,
         "dur": 100.0, "pid": 1, "tid": 0, "args": {"depth": 0}},
        {"name": "hydro.sweep_x", "cat": "span", "ph": "X", "ts": 10.0,
         "dur": 50.0, "pid": 1, "tid": 0, "args": {"depth": 1}},
        {"name": "hydro.sweep_block", "cat": "span", "ph": "X", "ts": 12.0,
         "dur": 5.0, "pid": 1, "tid": 1, "args": {"depth": 0}},
        {"name": "step 1", "cat": "step", "ph": "i", "ts": 100.0, "pid": 1,
         "tid": 0, "s": "p", "args": {"step": 1, "t": 0.1, "dt": 0.1}},
        {"name": "meminfo.AnonHugePages", "cat": "counter", "ph": "C",
         "ts": 5.0, "pid": 1, "tid": 0, "args": {"bytes": 2097152}},
    ],
    "displayTimeUnit": "ms",
    "flashhpSummary": {
        "totalSpans": 3,
        "droppedSpans": 0,
        "histograms": {
            "driver.step": {"count": 1, "mean_ns": 100000.0,
                            "p50_ns": 100000, "p90_ns": 100000,
                            "p99_ns": 100000, "min_ns": 100000,
                            "max_ns": 100000},
        },
    },
}

GOOD_CSV = ("t_ns,meminfo_anon_huge_pages,thp_fault_alloc\n"
            "1000,2097152,12\n"
            "2000,,13\n")


def self_test() -> int:
    import copy

    failures = 0

    def case(name: str, should_pass: bool, trace=None, csv=None,
             **kwargs) -> None:
        nonlocal failures
        with tempfile.TemporaryDirectory(prefix="check_trace_") as tmp:
            root = pathlib.Path(tmp)
            tpath = root / "t.json"
            if isinstance(trace, str):
                tpath.write_text(trace)
            else:
                tpath.write_text(json.dumps(trace))
            ns = argparse.Namespace(
                trace=tpath, require_span=kwargs.get("require_span", []),
                require_counter=kwargs.get("require_counter", []),
                require_histogram=kwargs.get("require_histogram", []),
                min_lanes=kwargs.get("min_lanes", 0),
                min_spans=kwargs.get("min_spans", 0),
                csv=None)
            if csv is not None:
                ns.csv = root / "t.csv"
                ns.csv.write_text(csv)
            try:
                validate(ns)
                passed = True
            except TraceError as e:
                passed = False
                detail = str(e)
            if passed != should_pass:
                failures += 1
                expect = "pass" if should_pass else "fail"
                got = "pass" if passed else f"fail ({detail})"
                print(f"SELF-TEST FAIL {name}: expected {expect}, got {got}",
                      file=sys.stderr)

    bad_json = "{ not json"
    unnested = copy.deepcopy(GOOD_TRACE)
    unnested["traceEvents"].append(
        {"name": "straddles", "ph": "X", "ts": 50.0, "dur": 100.0,
         "pid": 1, "tid": 0, "args": {}})
    no_summary = {"traceEvents": GOOD_TRACE["traceEvents"]}
    bad_quantiles = copy.deepcopy(GOOD_TRACE)
    bad_quantiles["flashhpSummary"]["histograms"]["driver.step"][
        "p50_ns"] = 999999999
    negative_ts = copy.deepcopy(GOOD_TRACE)
    negative_ts["traceEvents"][1]["ts"] = -1.0

    case("good", True, GOOD_TRACE, csv=GOOD_CSV,
         require_span=["driver.step", "hydro.sweep_x"],
         require_counter=["meminfo.AnonHugePages"],
         require_histogram=["driver.step"], min_lanes=2, min_spans=3)
    case("bad-json", False, bad_json)
    case("unnested-overlap", False, unnested)
    case("missing-summary", False, no_summary)
    case("quantiles-not-monotonic", False, bad_quantiles)
    case("negative-ts", False, negative_ts)
    case("missing-required-span", False, GOOD_TRACE,
         require_span=["flame.advance"])
    case("missing-counter-track", False, GOOD_TRACE,
         require_counter=["vmstat.thp_fault_alloc"])
    case("not-enough-lanes", False, GOOD_TRACE, min_lanes=3)
    case("bad-csv-cell", False, GOOD_TRACE,
         csv="t_ns,a\n1000,xyz\n")
    case("ragged-csv-row", False, GOOD_TRACE,
         csv="t_ns,a\n1000\n")

    if failures == 0:
        print("check_trace self-test: OK (11 scenarios)")
        return 0
    print(f"check_trace self-test: {failures} scenario(s) failed",
          file=sys.stderr)
    return 1


# ------------------------------------------------------------------- main

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace.py",
        description="validator for flashhp chrome://tracing exports")
    parser.add_argument("trace", nargs="?", type=pathlib.Path,
                        help="timeline JSON to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="TRACK")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME")
    parser.add_argument("--min-lanes", type=int, default=0, metavar="N")
    parser.add_argument("--min-spans", type=int, default=0, metavar="N")
    parser.add_argument("--csv", type=pathlib.Path,
                        help="sampler CSV to validate alongside")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.trace is None:
        parser.error("a timeline JSON path is required (or --self-test)")
    try:
        return validate(args)
    except TraceError as e:
        print(f"check_trace: INVALID — {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
