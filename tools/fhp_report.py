"""fhp_report: shared finding model + emitters for the flashhp analyzers.

Both tools/flashhp_lint.py (textual invariant linter) and
tools/fhp_analyze.py (layering / capability / allocation analyzer) report
through this module so that `--format=human|json|sarif` means the same
thing everywhere:

  human   one `path:line: [rule] message` line per finding (the default,
          what a developer reads in a terminal and what editors parse),
  json    a single machine-readable object for scripting,
  sarif   SARIF 2.1.0 for code-scanning upload (GitHub's
          `upload-sarif` action ingests it directly).

The emitters are deliberately dependency-free (stdlib json only) and
deterministic: findings are emitted in (path, line, rule) order so diffs
of analyzer output are meaningful.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import IO

FORMATS = ("human", "json", "sarif")

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json")


@dataclass
class Finding:
    """One analyzer finding, path kept repo-relative for stable output."""
    path: str     # repo-relative, forward slashes
    line: int     # 1-based
    rule: str
    message: str

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)


def relativize(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = path
    return rel.as_posix()


def emit_human(findings: list[Finding], stream: IO[str]) -> None:
    for f in sorted(findings, key=Finding.sort_key):
        stream.write(f"{f.path}:{f.line}: [{f.rule}] {f.message}\n")


def emit_json(tool: str, version: str, findings: list[Finding],
              rules: dict[str, str], stream: IO[str]) -> None:
    doc = {
        "tool": tool,
        "version": version,
        "rules": rules,
        "findingCount": len(findings),
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    json.dump(doc, stream, indent=2, sort_keys=False)
    stream.write("\n")


def emit_sarif(tool: str, version: str, findings: list[Finding],
               rules: dict[str, str], stream: IO[str],
               info_uri: str = "") -> None:
    """SARIF 2.1.0 with one run; every finding is level "error" because
    the analyzers are pass/fail gates, not advisory hints."""
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool,
                    "version": version,
                    "informationUri": info_uri,
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {"text": summary},
                            "defaultConfiguration": {"level": "error"},
                        }
                        for rule, summary in sorted(rules.items())
                    ],
                }
            },
            "columnKind": "utf16CodeUnits",
            "results": [
                {
                    "ruleId": f.rule,
                    "level": "error",
                    "message": {"text": f.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": max(f.line, 1)},
                        }
                    }],
                }
                for f in sorted(findings, key=Finding.sort_key)
            ],
        }],
    }
    json.dump(doc, stream, indent=2)
    stream.write("\n")


def emit(fmt: str, tool: str, version: str, findings: list[Finding],
         rules: dict[str, str], stream: IO[str], info_uri: str = "") -> None:
    if fmt == "human":
        emit_human(findings, stream)
    elif fmt == "json":
        emit_json(tool, version, findings, rules, stream)
    elif fmt == "sarif":
        emit_sarif(tool, version, findings, rules, stream, info_uri)
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(f"unknown format: {fmt}")
