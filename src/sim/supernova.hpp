/// \file supernova.hpp
/// \brief The 2-d Type Iax supernova deflagration setup.
///
/// The paper's "EOS" experiment: a 2-d cylindrical (r, z) simulation of a
/// pure deflagration in a hybrid white dwarf, run for 50 time steps with
/// the EOS routines instrumented. This setup assembles every substrate:
/// the tabulated Helmholtz-style EOS (on the huge-page policy under
/// test), a hydrostatic white-dwarf initial model, monopole self-gravity,
/// and the ADR model flame ignited slightly off-center.

#pragma once

#include <memory>
#include <optional>

#include "eos/eos_table.hpp"
#include "flame/adr.hpp"
#include "flame/flame_speed.hpp"
#include "gravity/monopole.hpp"
#include "gravity/white_dwarf.hpp"
#include "hydro/hydro.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/layout.hpp"
#include "rt/runtime.hpp"

namespace fhp::sim {

/// Runtime parameters of the supernova setup.
struct SupernovaParams {
  double central_density = 2.0e9;   ///< WD rho_c [g/cc]
  double core_temperature = 5.0e7;  ///< isothermal core T [K]
  double x_carbon = 0.4;            ///< hybrid CONe core composition
  double x_oxygen = 0.57;
  double x_ne22 = 0.03;
  double domain_radius = 4.0e8;     ///< [cm]; the WD is ~2e8
  double ignition_radius = 2.0e7;   ///< match-head size [cm]
  double ignition_offset = 4.0e7;   ///< ignition center height on the axis
  double fluff_density = 1.0e-2;    ///< ambient "fluff" outside the star
  double fluff_temperature = 3.0e7;
  int max_level = 4;
  int nxb = 16, nyb = 16;
  int maxblocks = 1200;
  int nguard = 4;
  /// Helm table cache path ("" disables caching).
  std::string table_cache = "helm_table.bin";
  /// Table grid; tests shrink it for speed (defaults are FLASH-sized).
  eos::HelmTableSpec table_spec{};
};

/// Scalar slots used by the setup (offsets from var::kFirstScalar).
namespace snvar {
inline constexpr int kPhi = 0;   ///< flame progress variable
inline constexpr int kC12 = 1;   ///< carbon (fuel) mass fraction
inline constexpr int kO16 = 2;
inline constexpr int kNe22 = 3;
inline constexpr int kAsh = 4;   ///< burned material (Mg24-like)
inline constexpr int kCount = 5;
}  // namespace snvar

/// Assembled supernova problem.
class SupernovaSetup {
 public:
  /// \param runtime the execution context the problem lives in: mesh and
  ///        Helm-table storage come from `runtime.page_pool()`, block
  ///        loops run on `runtime.arena()`, and the mesh layout defaults
  ///        to `runtime.layout()`. Pass `rt::Runtime::process_default()`
  ///        for the historical process-wide behavior. The runtime must
  ///        outlive the setup.
  /// \param layout overrides the runtime's layout (layout-ablation
  ///        benches sweep this without building a runtime per point).
  SupernovaSetup(const SupernovaParams& params, mem::HugePolicy policy,
                 rt::Runtime& runtime,
                 std::optional<mesh::LayoutKind> layout = std::nullopt);

  [[nodiscard]] mesh::AmrMesh& mesh() noexcept { return *mesh_; }
  [[nodiscard]] const eos::HelmTableEos& eos() const noexcept { return *eos_; }
  [[nodiscard]] const eos::HelmTable& table() const noexcept { return *table_; }
  [[nodiscard]] const gravity::WhiteDwarfModel& wd() const noexcept {
    return *wd_;
  }
  [[nodiscard]] flame::AdrFlame& flame() noexcept { return *flame_; }
  [[nodiscard]] gravity::MonopoleGravity& gravity() noexcept {
    return *gravity_;
  }
  [[nodiscard]] const flame::FlameSpeedTable& flame_speeds() const noexcept {
    return flame_speeds_;
  }
  [[nodiscard]] const SupernovaParams& params() const noexcept {
    return params_;
  }

  /// The per-zone composition hook for HydroSolver (abar/zbar from the
  /// species mass fractions).
  [[nodiscard]] hydro::CompositionFn composition_fn() const;

  /// Per-block EOS trace hook for the Driver (replays the table gathers
  /// of one Eos_wrapped pass).
  void trace_eos_block(tlb::Tracer& tracer, int b) const;

 private:
  void initialize();

  SupernovaParams params_;
  std::shared_ptr<eos::HelmTable> table_;
  std::unique_ptr<eos::HelmTableEos> eos_;
  std::unique_ptr<gravity::WhiteDwarfModel> wd_;
  std::unique_ptr<mesh::AmrMesh> mesh_;
  flame::FlameSpeedTable flame_speeds_;
  std::unique_ptr<flame::AdrFlame> flame_;
  std::unique_ptr<gravity::MonopoleGravity> gravity_;
};

/// abar/zbar of a (C12, O16, Ne22, ash=Mg24) mixture.
void mixture_composition(double xc, double xo, double xne, double xash,
                         double& abar, double& zbar);

}  // namespace fhp::sim
