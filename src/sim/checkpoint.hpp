/// \file checkpoint.hpp
/// \brief Checkpoint I/O: serialize and restore the full mesh state.
///
/// FLASH writes HDF5 checkpoints from which a run can restart bit-exactly.
/// flashhp uses a self-describing little-endian binary format (no HDF5
/// dependency): header + tree topology + per-leaf interior data. Restoring
/// rebuilds the tree by replaying refinements coarse-to-fine and then
/// fills guard cells, so a restarted run continues identically.

#pragma once

#include <string>

#include "mesh/amr_mesh.hpp"

namespace fhp::sim {

/// Run metadata stored alongside the mesh.
struct CheckpointInfo {
  double sim_time = 0.0;
  int step = 0;
};

/// Write mesh + info to \p path. Throws fhp::SystemError on I/O failure.
void write_checkpoint(const std::string& path, const mesh::AmrMesh& mesh,
                      const CheckpointInfo& info);

/// Restore into \p mesh, which must have been constructed with the same
/// MeshConfig the checkpoint was written from (validated field by field;
/// mismatch throws fhp::ConfigError). Returns the stored run metadata.
CheckpointInfo read_checkpoint(const std::string& path, mesh::AmrMesh& mesh);

}  // namespace fhp::sim
