#include "sim/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "support/error.hpp"

namespace fhp::sim {

RadialProfile::RadialProfile(const mesh::AmrMesh& mesh,
                             std::array<double, 3> center, int nbins,
                             std::vector<int> vars)
    : nbins_(nbins), vars_(std::move(vars)) {
  FHP_REQUIRE(nbins >= 2, "profile needs at least two bins");
  const mesh::MeshConfig& c = mesh.config();

  rmax_ = 0.0;
  for (int corner = 0; corner < 8; ++corner) {
    const double x = ((corner & 1) ? c.hi[0] : c.lo[0]) - center[0];
    const double y = ((corner & 2) ? c.hi[1] : c.lo[1]) - center[1];
    const double z =
        c.ndim >= 3 ? ((corner & 4) ? c.hi[2] : c.lo[2]) - center[2] : 0.0;
    rmax_ = std::max(rmax_, std::sqrt(x * x + y * y + z * z));
  }

  sums_.assign(vars_.size() * static_cast<std::size_t>(nbins_), 0.0);
  volumes_.assign(static_cast<std::size_t>(nbins_), 0.0);

  for (int b : mesh.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const double x = mesh.xcenter(b, i) - center[0];
          const double y = mesh.ycenter(b, j) - center[1];
          const double z = mesh.zcenter(b, k) - center[2];
          const double radius = std::sqrt(x * x + y * y + z * z);
          const int bin = std::min(
              nbins_ - 1, static_cast<int>(radius / rmax_ * nbins_));
          const double vol = mesh.cell_volume(b, i, j, k);
          volumes_[static_cast<std::size_t>(bin)] += vol;
          for (std::size_t v = 0; v < vars_.size(); ++v) {
            sums_[v * static_cast<std::size_t>(nbins_) +
                  static_cast<std::size_t>(bin)] +=
                vol * mesh.unk().at(vars_[v], i, j, k, b);
          }
        }
      }
    }
  }
}

double RadialProfile::bin_radius(int bin) const {
  return (bin + 0.5) * rmax_ / nbins_;
}

double RadialProfile::value(int var_slot, int bin) const {
  const double vol = volumes_[static_cast<std::size_t>(bin)];
  if (vol <= 0.0) return 0.0;
  return sums_[static_cast<std::size_t>(var_slot) *
                   static_cast<std::size_t>(nbins_) +
               static_cast<std::size_t>(bin)] /
         vol;
}

double RadialProfile::steepest_gradient_radius(int var_slot) const {
  double best = 0.0, best_drop = 0.0;
  for (int bin = 1; bin < nbins_; ++bin) {
    // Outward drop between adjacent non-empty bins.
    if (volumes_[static_cast<std::size_t>(bin)] <= 0.0 ||
        volumes_[static_cast<std::size_t>(bin - 1)] <= 0.0) {
      continue;
    }
    const double drop = value(var_slot, bin - 1) - value(var_slot, bin);
    if (drop > best_drop) {
      best_drop = drop;
      best = 0.5 * (bin_radius(bin - 1) + bin_radius(bin));
    }
  }
  return best;
}

double RadialProfile::peak_radius(int var_slot) const {
  double best = 0.0, best_value = -1e300;
  for (int bin = 0; bin < nbins_; ++bin) {
    if (volumes_[static_cast<std::size_t>(bin)] <= 0.0) continue;
    const double v = value(var_slot, bin);
    if (v > best_value) {
      best_value = v;
      best = bin_radius(bin);
    }
  }
  return best;
}

double RadialProfile::peak_value(int var_slot) const {
  double best_value = -1e300;
  for (int bin = 0; bin < nbins_; ++bin) {
    if (volumes_[static_cast<std::size_t>(bin)] <= 0.0) continue;
    best_value = std::max(best_value, value(var_slot, bin));
  }
  return best_value;
}

void RadialProfile::write_csv(std::ostream& os) const {
  os << "radius";
  for (std::size_t v = 0; v < vars_.size(); ++v) os << ",var" << vars_[v];
  os << '\n';
  for (int bin = 0; bin < nbins_; ++bin) {
    if (volumes_[static_cast<std::size_t>(bin)] <= 0.0) continue;
    os << bin_radius(bin);
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      os << ',' << value(static_cast<int>(v), bin);
    }
    os << '\n';
  }
}

}  // namespace fhp::sim
