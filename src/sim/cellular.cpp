#include "sim/cellular.hpp"

#include <cmath>

#include "support/log.hpp"

namespace fhp::sim {

using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kFirstScalar;
using mesh::var::kGamc;
using mesh::var::kGame;
using mesh::var::kPres;
using mesh::var::kTemp;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

CellularSetup::CellularSetup(const CellularParams& params,
                             mem::HugePolicy policy, rt::Runtime& runtime,
                             std::optional<mesh::LayoutKind> layout)
    : params_(params),
      eos_(params.gamma),
      flame_speeds_(6.0, 10.0, 81, 0.2, 0.8, 25, 0.0) {
  mesh::MeshConfig config;
  config.ndim = 2;
  config.nxb = params_.nxb;
  config.nyb = params_.nyb;
  config.nzb = 1;
  config.nguard = params_.nguard;
  config.nscalars = cvar::kCount;
  config.maxblocks = params_.maxblocks;
  config.max_level = params_.max_level;
  config.geometry = mesh::Geometry::kCartesian;
  config.lo = {0.0, 0.0, 0.0};
  config.hi = {params_.domain_x, params_.domain_y, 1.0};
  // Square root blocks along the channel; periodic transverse walls so
  // the transverse cell structure wraps, outflow ahead of and behind the
  // front.
  const int nroot_x = std::max(
      1, static_cast<int>(std::lround(params_.domain_x / params_.domain_y)));
  config.nroot = {nroot_x, 1, 1};
  config.bc[0][0] = mesh::Bc::kOutflow;
  config.bc[0][1] = mesh::Bc::kOutflow;
  config.bc[1][0] = mesh::Bc::kPeriodic;
  config.bc[1][1] = mesh::Bc::kPeriodic;
  mesh_ = std::make_unique<mesh::AmrMesh>(
      config, policy, layout.has_value() ? *layout : runtime.layout(),
      runtime.page_pool(), &runtime.arena());

  flame::AdrOptions fopt;
  fopt.phi_scalar = cvar::kPhi;
  fopt.fuel_scalar = cvar::kFuel;
  fopt.ash_scalar = cvar::kAsh;
  flame_ = std::make_unique<flame::AdrFlame>(*mesh_, flame_speeds_, fopt);

  initialize();
}

double CellularSetup::front_position(double y) const {
  // Deterministic multi-mode seed: fixed phases, 1/m amplitude falloff.
  // No RNG — two constructions of the same params are bit-identical,
  // which the service's fair-share determinism contract relies on.
  double x = params_.ignition_x;
  for (int m = 1; m <= params_.perturb_modes; ++m) {
    const double phase = 1.7 * static_cast<double>(m);
    x += params_.perturb_amp / static_cast<double>(m) *
         std::sin(2.0 * M_PI * static_cast<double>(m) * y /
                      params_.domain_y +
                  phase);
  }
  return x;
}

void CellularSetup::initialize() {
  mesh::AmrMesh& m = *mesh_;
  const double q_burn = flame_->options().q_burn;

  auto apply = [&](int b, int i, int j, int k) {
    const double x = m.xcenter(b, i);
    const double y = m.ycenter(b, j);
    const double phi = x < front_position(y) ? 1.0 : 0.0;

    const double rho = params_.rho_fuel;
    // Ash carries the released nuclear energy; pressure follows the
    // gamma law so the burned strip drives the detonation.
    const double eint =
        params_.p_fuel / ((params_.gamma - 1.0) * rho) +
        phi * params_.x_fuel * q_burn;
    const double pres = (params_.gamma - 1.0) * rho * eint;

    mesh::UnkContainer& unk = m.unk();
    unk.at(kDens, i, j, k, b) = rho;
    unk.at(kVelx, i, j, k, b) = 0.0;
    unk.at(kVely, i, j, k, b) = 0.0;
    unk.at(kVelz, i, j, k, b) = 0.0;
    unk.at(kPres, i, j, k, b) = pres;
    unk.at(kEint, i, j, k, b) = eint;
    unk.at(kEner, i, j, k, b) = eint;  // velocities are zero
    unk.at(kGamc, i, j, k, b) = params_.gamma;
    unk.at(kGame, i, j, k, b) = params_.gamma;
    unk.at(kTemp, i, j, k, b) = 0.0;
    unk.at(kFirstScalar + cvar::kPhi, i, j, k, b) = phi;
    unk.at(kFirstScalar + cvar::kFuel, i, j, k, b) =
        params_.x_fuel * (1.0 - phi);
    unk.at(kFirstScalar + cvar::kAsh, i, j, k, b) = params_.x_fuel * phi;
  };

  m.for_leaf_cells(apply);
  const std::array<int, 2> est_vars{kPres, kFirstScalar + cvar::kPhi};
  for (int pass = 0; pass < m.config().max_level; ++pass) {
    const int changes = m.remesh(est_vars, 0.6, 0.1);
    m.for_leaf_cells(apply);
    if (changes == 0) break;
  }
  m.fill_guardcells();
  FHP_LOG(kInfo) << "cellular detonation initialized: "
                 << m.tree().leaves_morton().size()
                 << " leaf blocks, finest level " << m.tree().finest_level();
}

}  // namespace fhp::sim
