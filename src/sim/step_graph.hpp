/// \file step_graph.hpp
/// \brief The fused time step as a block-task DAG.
///
/// Builds the par::TaskGraph the task-mode driver runs instead of the
/// bulk-synchronous `hydro.step() + flame` sequence: one graph covers
/// every directional sweep plus the flame stage, with per-block tasks
/// and explicit dependency edges, so a block's sweep starts the moment
/// *its own* guard cells are filled instead of after the whole level's
/// guard-fill barrier.
///
/// Stage structure per directional sweep (mirroring the bulk order
/// `fill_guardcells(); sweep(axis); eos_update();`):
///
///   restrict ──► guard(b)  per allocated block, level-ordered through
///        edges guard(coarse source) ─► guard(fine) from
///        AmrMesh::guard_sources (coarse interpolation reads the coarse
///        block's *guards*, so the coarse fill must complete first;
///        same-level copies read interiors only and need no edge)
///   guard(b) ─► sweep(b)   per leaf, plus the anti-dependency
///        guard(r) ─► sweep(b) for every r whose guard fill reads b's
///        interior (the sweep overwrites it)
///   sweep(b), sweep(fine sources) ─► flux(b)  per coarse leaf abutting
///        finer blocks (HydroSolver::flux_sources)
///   flux(b) (else sweep(b)) ─► eos(b)  per leaf
///
/// Stages are chained by a barrier edge set: the next stage's restrict
/// task depends on every zero-out-degree task of the previous stage.
/// The flame stage (guard fill, per-block ADR update, EOS) attaches the
/// same way; its per-block energy partials are summed serially in leaf
/// order by AdrFlame::finish_advance after the graph run.
///
/// Determinism: the edges above reproduce the bulk data flow exactly —
/// every read happens after the same writes as in the barrier version —
/// and every task writes only its own block (plus its own flux-register
/// slots), so physics is bit-identical at any lane count and steal
/// order. Modeled counters stay out of the graph entirely (the driver's
/// serial trace_regions pass); steal/idle statistics are read from
/// last_stats() and never published as counters.
///
/// Two graphs are kept — forward (axes 0..ndim-1) and backward — and
/// selected per step by the Strang parity. Graphs are rebuilt only when
/// the tree changes (after remesh): construction allocates, run_step's
/// hot path does not.

#pragma once

#include <vector>

#include "flame/adr.hpp"
#include "hydro/hydro.hpp"
#include "mesh/amr_mesh.hpp"
#include "par/task_graph.hpp"

namespace fhp::sim {

class StepGraph {
 public:
  /// \p flame may be null (pure-hydro setups get sweep stages only).
  StepGraph(mesh::AmrMesh& mesh, hydro::HydroSolver& hydro,
            flame::AdrFlame* flame);

  /// Rebuild both Strang-parity graphs from the current block tree.
  /// Driver-thread, setup-time (allocates). Call once after construction
  /// and again whenever remesh changed the tree.
  void rebuild();

  /// Execute one fused time step: every directional sweep plus the flame
  /// stage, honoring the dependency edges. Allocation-free hot path.
  /// Advances the hydro Strang parity, exactly like HydroSolver::step.
  void run_step(double dt) FHP_EXCLUDES_REGION;

  /// Scheduler statistics of the last run_step (timing-dependent; see
  /// par::TaskGraph::Stats — intentionally not PerfContext counters).
  [[nodiscard]] par::TaskGraph::Stats last_stats() const noexcept {
    return stats_;
  }

  /// Tasks per step graph (both parities have the same size).
  [[nodiscard]] std::size_t size() const noexcept { return forward_.size(); }

 private:
  void build(par::TaskGraph& graph, bool forward);

  mesh::AmrMesh& mesh_;
  hydro::HydroSolver& hydro_;
  flame::AdrFlame* flame_;

  /// Read by the task bodies during run_step; written on the driver
  /// thread before the graph runs (the pool handshake publishes it).
  double dt_ = 0.0;

  std::vector<int> leaves_;  ///< leaves_morton captured at rebuild
  /// Both graphs schedule on the mesh's arena, so a task-mode step
  /// claims its own runtime's region slot (not the process one).
  par::TaskGraph forward_{&mesh_.arena()};   ///< sweep order 0..ndim-1
  par::TaskGraph backward_{&mesh_.arena()};  ///< sweep order ndim-1..0
  par::TaskGraph::Stats stats_;
};

}  // namespace fhp::sim
