/// \file sedov_exact.hpp
/// \brief The exact Sedov-Taylor self-similar solution.
///
/// Integrates the similarity ODEs of the point explosion (Sedov 1959;
/// Landau & Lifshitz §106) in spherical (nu = 3), cylindrical (nu = 2) or
/// planar (nu = 1) symmetry, yielding the dimensionless energy integral
/// alpha(gamma, nu) and the interior profiles — replacing hardcoded alpha
/// tables. Used by the Sedov validation tests and the sedov3d example.
///
/// Implementation: the standard change of variables to V = u r / (R' ...)
/// is awkward near the singular center, so we integrate the profile in
/// physical similarity coordinate xi = r/R inward from the shock using
/// the strong-shock Rankine-Hugoniot state at xi = 1 and the Euler
/// equations in self-similar form, then evaluate
/// alpha = (8 pi / 25) \int_0^1 (rho u^2 / 2 + p/(gamma-1)) xi^2 dxi
/// normalized to E = 1, rho_ambient = 1 (for nu = 3; analogous for
/// other nu).

#pragma once

#include <array>
#include <vector>

namespace fhp::sim {

/// The integrated similarity solution for one (gamma, nu).
class SedovExact {
 public:
  /// \param gamma adiabatic index (> 1)
  /// \param nu geometry: 3 spherical, 2 cylindrical, 1 planar
  /// \param npoints resolution of the stored profile
  explicit SedovExact(double gamma, int nu = 3, int npoints = 2000);

  /// The energy-integral constant: R(t) = (E t^2 / (alpha rho))^{1/(nu+2)}.
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Shock radius at time t for explosion energy E in ambient density rho.
  [[nodiscard]] double shock_radius(double energy, double rho_ambient,
                                    double time) const;

  /// Post-shock (strong-shock limit) density jump (gamma+1)/(gamma-1).
  [[nodiscard]] double density_jump() const noexcept {
    return (gamma_ + 1.0) / (gamma_ - 1.0);
  }

  /// Interior profiles relative to the immediate post-shock values, as a
  /// function of xi = r/R in [0, 1]: returns {rho/rho2, u/u2, p/p2}.
  [[nodiscard]] std::array<double, 3> profile(double xi) const;

 private:
  double gamma_;
  int nu_;
  double alpha_ = 0.0;
  std::vector<double> xi_, rho_, u_, p_;  ///< normalized to post-shock
};

}  // namespace fhp::sim
