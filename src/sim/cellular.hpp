/// \file cellular.hpp
/// \brief The 2-d cellular-detonation setup — the cheap third job class.
///
/// A planar carbon-burning front in a uniform fuel bed, seeded with a
/// multi-mode sinusoidal perturbation so transverse cells develop as it
/// propagates ("Benchmarking with Supernovae", arXiv 2408.16084 flavor).
/// Unlike the supernova setup it needs no tabulated EOS, no hydrostatic
/// progenitor and no gravity — just the gamma-law EOS and the ADR model
/// flame — so a service job mix can use it as the fast flame-bearing
/// scenario between Sedov (cheapest, no scalars) and the full Type Iax
/// deflagration (heaviest).

#pragma once

#include <memory>
#include <optional>

#include "eos/gamma_eos.hpp"
#include "flame/adr.hpp"
#include "flame/flame_speed.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/layout.hpp"
#include "rt/runtime.hpp"

namespace fhp::sim {

/// Runtime parameters of the cellular-detonation setup. The defaults sit
/// inside the FlameSpeedTable window (rho in [1e6, 1e10], X_C in
/// [0.2, 0.8]) and above the ADR quench density, so the front burns from
/// the first step.
struct CellularParams {
  double gamma = 1.4;
  double rho_fuel = 1.0e7;     ///< uniform fuel density [g/cc]
  double p_fuel = 4.0e23;      ///< upstream pressure [erg/cc]
  double x_fuel = 0.5;         ///< carbon mass fraction of unburned matter
  double domain_x = 2.56e7;    ///< [cm]
  double domain_y = 6.4e6;     ///< [cm]; periodic transverse direction
  double ignition_x = 3.2e6;   ///< mean position of the initial front [cm]
  double perturb_amp = 4.0e5;  ///< front perturbation amplitude [cm]
  int perturb_modes = 3;       ///< sinusoidal modes seeding the cells
  int max_level = 2;
  int nxb = 16, nyb = 16;
  int maxblocks = 128;
  int nguard = 4;
};

/// Scalar slots used by the setup (offsets from var::kFirstScalar).
namespace cvar {
inline constexpr int kPhi = 0;   ///< flame progress variable
inline constexpr int kFuel = 1;  ///< carbon (fuel) mass fraction
inline constexpr int kAsh = 2;   ///< burned material
inline constexpr int kCount = 3;
}  // namespace cvar

/// Assembled cellular-detonation problem: mesh + gamma-law EOS + ADR
/// flame, data initialized.
class CellularSetup {
 public:
  /// \param runtime the execution context the problem lives in: mesh
  ///        storage comes from `runtime.page_pool()`, block loops run on
  ///        `runtime.arena()`, and the mesh layout defaults to
  ///        `runtime.layout()`. The runtime must outlive the setup.
  /// \param layout overrides the runtime's layout (layout-ablation
  ///        benches sweep this without building a runtime per point).
  CellularSetup(const CellularParams& params, mem::HugePolicy policy,
                rt::Runtime& runtime,
                std::optional<mesh::LayoutKind> layout = std::nullopt);

  [[nodiscard]] mesh::AmrMesh& mesh() noexcept { return *mesh_; }
  [[nodiscard]] const eos::GammaEos& eos() const noexcept { return eos_; }
  [[nodiscard]] flame::AdrFlame& flame() noexcept { return *flame_; }
  [[nodiscard]] const flame::FlameSpeedTable& flame_speeds() const noexcept {
    return flame_speeds_;
  }
  [[nodiscard]] const CellularParams& params() const noexcept {
    return params_;
  }

  /// Perturbed front position x_f(y): the deterministic multi-mode seed
  /// applied during initialization (exposed so tests can assert cells
  /// grow from it).
  [[nodiscard]] double front_position(double y) const;

 private:
  void initialize();

  CellularParams params_;
  eos::GammaEos eos_;
  flame::FlameSpeedTable flame_speeds_;
  std::unique_ptr<mesh::AmrMesh> mesh_;
  std::unique_ptr<flame::AdrFlame> flame_;
};

}  // namespace fhp::sim
