/// \file sedov.hpp
/// \brief The Sedov explosion problem — FLASH's standard hydro test.
///
/// A point explosion in a uniform cold medium (Sedov 1959); the paper's
/// "3-d Hydro" experiment runs it for 200 steps with the hydrodynamics
/// routines instrumented. Initialization follows FLASH's Simulation unit:
/// ambient (rho, P) everywhere, the explosion energy deposited as thermal
/// pressure in a small sphere, then a few initial refinement passes so
/// the mesh resolves the spike before evolution starts.

#pragma once

#include <memory>
#include <optional>

#include "eos/gamma_eos.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/amr_mesh.hpp"
#include "mesh/layout.hpp"
#include "rt/runtime.hpp"

namespace fhp::sim {

/// Runtime parameters of the Sedov setup (FLASH's sim_* parameters).
struct SedovParams {
  int ndim = 3;
  double gamma = 1.4;
  double rho_ambient = 1.0;
  double p_ambient = 1.0e-5;
  double energy = 1.0;        ///< explosion energy E
  double spike_radius = 0.0;  ///< 0 = 3.5 finest cells (FLASH default)
  std::array<double, 3> center{0.5, 0.5, 0.5};
  int max_level = 3;
  int nxb = 16, nyb = 16, nzb = 16;
  int maxblocks = 600;
  int nguard = 4;
};

/// Assembled Sedov problem: mesh + EOS, data initialized.
class SedovSetup {
 public:
  /// \param runtime the execution context the problem lives in: mesh
  ///        storage comes from `runtime.page_pool()`, block loops run on
  ///        `runtime.arena()`, and the mesh layout defaults to
  ///        `runtime.layout()`. Pass `rt::Runtime::process_default()`
  ///        for the historical process-wide behavior. The runtime must
  ///        outlive the setup.
  /// \param layout overrides the runtime's layout (layout-ablation
  ///        benches sweep this without building a runtime per point).
  SedovSetup(const SedovParams& params, mem::HugePolicy policy,
             rt::Runtime& runtime,
             std::optional<mesh::LayoutKind> layout = std::nullopt);

  [[nodiscard]] mesh::AmrMesh& mesh() noexcept { return *mesh_; }
  [[nodiscard]] const eos::GammaEos& eos() const noexcept { return eos_; }
  [[nodiscard]] const SedovParams& params() const noexcept { return params_; }

  /// Analytic shock radius at time t (self-similar solution):
  /// R = (E t^2 / (alpha rho))^(1/5) with the standard alpha(gamma).
  [[nodiscard]] static double shock_radius(double energy, double rho,
                                           double time, double gamma);

 private:
  void initialize();

  SedovParams params_;
  eos::GammaEos eos_;
  std::unique_ptr<mesh::AmrMesh> mesh_;
};

}  // namespace fhp::sim
