#include "sim/sedov_exact.hpp"

#include <array>
#include <cmath>

#include "support/error.hpp"

namespace fhp::sim {

namespace {

/// Similarity state: v (velocity), w (density), P (pressure), all in the
/// normalization u = Rdot v(xi), rho = rho0 w(xi), p = rho0 Rdot^2 P(xi).
struct State3 {
  double v, w, p;
};

/// Right-hand side of the self-similar Euler system d/dxi (see header).
State3 rhs(double xi, const State3& y, double gamma, double a, int nu) {
  const double d = y.v - xi;          // flow speed relative to the ray
  const double c2 = gamma * y.p / y.w;  // similarity sound speed^2
  const double denom = d * d - c2;

  const double vp = (-a * y.v * d + 2.0 * a * c2 / gamma +
                     c2 * (nu - 1) * y.v / xi) /
                    denom;
  const double wp = y.w * (-(nu - 1) * y.v / xi - vp) / d;
  // Entropy equation: P'/P - gamma w'/w = -2a/d.
  const double pp = y.p * (-2.0 * a / d + gamma * wp / y.w);
  return {vp, wp, pp};
}

}  // namespace

SedovExact::SedovExact(double gamma, int nu, int npoints)
    : gamma_(gamma), nu_(nu) {
  FHP_REQUIRE(gamma > 1.0, "Sedov solution needs gamma > 1");
  FHP_REQUIRE(nu >= 1 && nu <= 3, "nu must be 1, 2 or 3");
  FHP_REQUIRE(npoints >= 16, "too few profile points");

  const double s = 2.0 / (nu + 2);
  const double a = (s - 1.0) / s;

  // Strong-shock Rankine-Hugoniot state at xi = 1.
  State3 y{2.0 / (gamma + 1.0), (gamma + 1.0) / (gamma - 1.0),
           2.0 / (gamma + 1.0)};

  const double xi_min = 1e-5;
  const int nsteps = 40000;
  const double h = -(1.0 - xi_min) / nsteps;

  xi_.reserve(static_cast<std::size_t>(npoints) + 1);
  rho_.reserve(xi_.capacity());
  u_.reserve(xi_.capacity());
  p_.reserve(xi_.capacity());

  double xi = 1.0;
  double integral = 0.0;  // \int (w v^2/2 + P/(gamma-1)) xi^{nu-1} dxi
  auto energy_density = [&](double x, const State3& st) {
    return (0.5 * st.w * st.v * st.v + st.p / (gamma_ - 1.0)) *
           std::pow(x, nu_ - 1);
  };

  const int store_every = nsteps / npoints;
  xi_.push_back(xi);
  rho_.push_back(y.w);
  u_.push_back(y.v);
  p_.push_back(y.p);

  for (int n = 0; n < nsteps; ++n) {
    const double e0 = energy_density(xi, y);
    // Classic RK4.
    const State3 k1 = rhs(xi, y, gamma_, a, nu_);
    const State3 y2{y.v + 0.5 * h * k1.v, y.w + 0.5 * h * k1.w,
                    y.p + 0.5 * h * k1.p};
    const State3 k2 = rhs(xi + 0.5 * h, y2, gamma_, a, nu_);
    const State3 y3{y.v + 0.5 * h * k2.v, y.w + 0.5 * h * k2.w,
                    y.p + 0.5 * h * k2.p};
    const State3 k3 = rhs(xi + 0.5 * h, y3, gamma_, a, nu_);
    const State3 y4{y.v + h * k3.v, y.w + h * k3.w, y.p + h * k3.p};
    const State3 k4 = rhs(xi + h, y4, gamma_, a, nu_);
    y.v += h / 6.0 * (k1.v + 2 * k2.v + 2 * k3.v + k4.v);
    y.w += h / 6.0 * (k1.w + 2 * k2.w + 2 * k3.w + k4.w);
    y.p += h / 6.0 * (k1.p + 2 * k2.p + 2 * k3.p + k4.p);
    y.w = std::max(y.w, 1e-300);  // w ~ xi^{3/(gamma-1)}: tiny, never zero
    xi += h;

    // Trapezoid on the (monotone, smooth) energy integrand; note h < 0 —
    // accumulate the magnitude.
    integral += 0.5 * (e0 + energy_density(xi, y)) * (-h);

    if ((n + 1) % store_every == 0 || n == nsteps - 1) {
      xi_.push_back(xi);
      rho_.push_back(y.w);
      u_.push_back(y.v);
      p_.push_back(y.p);
    }
  }

  const double surface = nu_ == 3 ? 4.0 * M_PI : (nu_ == 2 ? 2.0 * M_PI : 1.0);
  alpha_ = s * s * surface * integral;
  FHP_CHECK(alpha_ > 0.0 && std::isfinite(alpha_),
            "Sedov similarity integration failed");
}

double SedovExact::shock_radius(double energy, double rho_ambient,
                                double time) const {
  return std::pow(energy * time * time / (alpha_ * rho_ambient),
                  1.0 / (nu_ + 2));
}

std::array<double, 3> SedovExact::profile(double xi) const {
  if (xi >= 1.0) return {1.0, 1.0, 1.0};
  if (xi <= xi_.back()) {
    return {rho_.back() / rho_.front(), u_.back() / u_.front(),
            p_.back() / p_.front()};
  }
  // xi_ descends from 1; binary search the bracketing pair.
  std::size_t lo = 0, hi = xi_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    (xi_[mid] >= xi ? lo : hi) = mid;
  }
  const double t = (xi_[lo] - xi) / (xi_[lo] - xi_[hi]);
  auto lerp = [t](double va, double vb) { return (1 - t) * va + t * vb; };
  return {lerp(rho_[lo], rho_[hi]) / rho_.front(),
          lerp(u_[lo], u_[hi]) / u_.front(),
          lerp(p_[lo], p_[hi]) / p_.front()};
}

}  // namespace fhp::sim
