/// \file driver.hpp
/// \brief The evolution driver — FLASH's Driver_evolveFlash.
///
/// Runs the time loop: CFL time step, hydro sweeps, flame and gravity
/// operator-split sources, periodic re-gridding, and the instrumentation
/// the paper describes: named PerfRegions around each physics unit fed by
/// the machine model through sampled address-stream replays, plus the
/// FLASH-style wall-clock Timers.
///
/// Sampling: every `trace_sample`-th leaf block (round-robin offset per
/// step) is replayed into the machine model; commit() scales the counts
/// back up. The physics itself always runs on every block.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "flame/adr.hpp"
#include "gravity/monopole.hpp"
#include "hydro/hydro.hpp"
#include "mesh/amr_mesh.hpp"
#include "par/task_graph.hpp"
#include "perf/timers.hpp"
#include "sim/step_graph.hpp"
#include "tlb/machine.hpp"

namespace fhp::perf {
class PerfContext;  // perf/perf_context.hpp — non-owning pointer only
}

namespace fhp::rt {
class Runtime;  // rt/runtime.hpp — non-owning pointer only
}

namespace fhp::sim {

/// How the driver executes the per-step physics (sweeps + flame).
/// Physics and published counters are bit-identical between the two —
/// the task graph reproduces the bulk data flow through dependency
/// edges, and modeled counters come from the serial trace pass either
/// way; only wall-clock (phase overlap) differs.
enum class ExecMode {
  kBulkSync,   ///< barrier-synchronized parallel_for loops (classic)
  kTaskGraph,  ///< block-task DAG with work stealing (sim::StepGraph)
};

/// Driver controls (FLASH's flash.par driver section).
struct DriverOptions {
  int nsteps = 50;                ///< step budget (paper: 50 EOS, 200 hydro)
  double tmax = 1.0e30;           ///< simulated-time budget [s]
  int remesh_interval = 4;        ///< steps between Grid_updateRefinement
  double refine_cut = 0.8;        ///< Löhner refine threshold
  double derefine_cut = 0.2;      ///< Löhner derefine threshold
  std::vector<int> refine_vars;   ///< variables driving refinement
  int trace_sample = 4;           ///< replay every Nth leaf block (0 = off)
  bool verbose = true;            ///< log step lines
  ExecMode exec_mode = ExecMode::kBulkSync;  ///< step execution model
};

/// Per-block EOS trace hook: replay the memory behaviour of one
/// Eos_wrapped pass over block \p b (the table gathers for the Helmholtz
/// path, pure arithmetic for gamma). Invoked ndim times per step —
/// matching the per-sweep EOS calls.
using EosTraceFn = std::function<void(tlb::Tracer&, int block)>;

/// The optional units wired into a Driver, passed at construction so a
/// driver is fully wired the moment it exists (this replaced the old
/// post-construction `set_flame`/`set_gravity`/`set_machine`/
/// `set_eos_trace` mutators, which allowed half-wired drivers to run).
/// All pointers are non-owning and may be null.
///
/// `runtime` is the context this driver executes in: null means
/// `rt::Runtime::process_default()`, which reproduces the historical
/// process-singleton behavior bit-for-bit. A setup built on an explicit
/// runtime passes it here (and should already have built its mesh from
/// `runtime.page_pool()` / `&runtime.arena()` — the setup classes do
/// both). Null `perf` means the runtime's PerfContext.
struct DriverUnits {
  flame::AdrFlame* flame = nullptr;          ///< operator-split burning
  gravity::MonopoleGravity* gravity = nullptr;  ///< monopole gravity
  tlb::Machine* machine = nullptr;  ///< machine model (enables tracing)
  EosTraceFn eos_trace;             ///< per-block EOS replay hook
  perf::PerfContext* perf = nullptr;  ///< context PerfRegions commit into
  rt::Runtime* runtime = nullptr;   ///< execution context (null = process)
  // Span tracing needs no wiring beyond the runtime: the driver binds
  // the runtime's trace sink around each step (the ambient
  // support/trace.hpp facade remains the fallback when the runtime has
  // no sink) — sim does not depend on the obs layer.
};

/// The driver. Non-owning references; the setup wires everything through
/// DriverUnits at construction.
class Driver {
 public:
  Driver(mesh::AmrMesh& mesh, hydro::HydroSolver& hydro,
         perf::Timers& timers, DriverOptions options,
         DriverUnits units = {});

  /// Run the evolution loop (step_once until the budgets are spent).
  void evolve();

  /// Advance exactly one time step; returns false (and does nothing)
  /// once the step or simulated-time budget is spent. This is the unit
  /// multi-tenant schedulers interleave: each call binds the runtime's
  /// trace sink and log tag, runs entirely on the runtime's arena, and
  /// leaves the lanes quiescent, so calls on different Drivers (even
  /// concurrently from two threads, one thread per driver) produce the
  /// same physics and published counters as each driver running solo.
  bool step_once();

  [[nodiscard]] double sim_time() const noexcept { return time_; }
  [[nodiscard]] int steps() const noexcept { return step_; }
  [[nodiscard]] double last_dt() const noexcept { return dt_; }

  /// Accumulated task-graph scheduler statistics (executed/steals/yields
  /// summed over all steps so far). Zeros under kBulkSync. Snapshotted at
  /// step boundaries; timing-dependent, hence never PerfContext counters.
  [[nodiscard]] par::TaskGraph::Stats scheduler_stats() const noexcept {
    return sched_stats_;
  }

 private:
  void trace_regions();

  mesh::AmrMesh& mesh_;
  hydro::HydroSolver& hydro_;
  perf::Timers& timers_;
  DriverOptions options_;
  DriverUnits units_;
  rt::Runtime& runtime_;
  perf::PerfContext& perf_;
  std::unique_ptr<StepGraph> step_graph_;  ///< non-null under kTaskGraph
  par::TaskGraph::Stats sched_stats_;

  double time_ = 0.0;
  double dt_ = 0.0;
  int step_ = 0;
};

}  // namespace fhp::sim
