/// \file driver.hpp
/// \brief The evolution driver — FLASH's Driver_evolveFlash.
///
/// Runs the time loop: CFL time step, hydro sweeps, flame and gravity
/// operator-split sources, periodic re-gridding, and the instrumentation
/// the paper describes: named PerfRegions around each physics unit fed by
/// the machine model through sampled address-stream replays, plus the
/// FLASH-style wall-clock Timers.
///
/// Sampling: every `trace_sample`-th leaf block (round-robin offset per
/// step) is replayed into the machine model; commit() scales the counts
/// back up. The physics itself always runs on every block.

#pragma once

#include <functional>
#include <optional>
#include <string>

#include "flame/adr.hpp"
#include "gravity/monopole.hpp"
#include "hydro/hydro.hpp"
#include "mesh/amr_mesh.hpp"
#include "perf/timers.hpp"
#include "tlb/machine.hpp"

namespace fhp::sim {

/// Driver controls (FLASH's flash.par driver section).
struct DriverOptions {
  int nsteps = 50;                ///< step budget (paper: 50 EOS, 200 hydro)
  double tmax = 1.0e30;           ///< simulated-time budget [s]
  int remesh_interval = 4;        ///< steps between Grid_updateRefinement
  double refine_cut = 0.8;        ///< Löhner refine threshold
  double derefine_cut = 0.2;      ///< Löhner derefine threshold
  std::vector<int> refine_vars;   ///< variables driving refinement
  int trace_sample = 4;           ///< replay every Nth leaf block (0 = off)
  bool verbose = true;            ///< log step lines
};

/// Per-block EOS trace hook: replay the memory behaviour of one
/// Eos_wrapped pass over block \p b (the table gathers for the Helmholtz
/// path, pure arithmetic for gamma). Invoked ndim times per step —
/// matching the per-sweep EOS calls.
using EosTraceFn = std::function<void(tlb::Tracer&, int block)>;

/// The driver. Non-owning references; the setup wires everything.
class Driver {
 public:
  Driver(mesh::AmrMesh& mesh, hydro::HydroSolver& hydro,
         perf::Timers& timers, DriverOptions options);

  /// Optional physics units.
  void set_flame(flame::AdrFlame* f) noexcept { flame_ = f; }
  void set_gravity(gravity::MonopoleGravity* g) noexcept { gravity_ = g; }

  /// Attach the machine model (enables region tracing).
  void set_machine(tlb::Machine* machine) noexcept { machine_ = machine; }
  void set_eos_trace(EosTraceFn fn) { eos_trace_ = std::move(fn); }

  /// Run the evolution loop.
  void evolve();

  [[nodiscard]] double sim_time() const noexcept { return time_; }
  [[nodiscard]] int steps() const noexcept { return step_; }
  [[nodiscard]] double last_dt() const noexcept { return dt_; }

 private:
  void trace_regions();

  mesh::AmrMesh& mesh_;
  hydro::HydroSolver& hydro_;
  perf::Timers& timers_;
  DriverOptions options_;
  flame::AdrFlame* flame_ = nullptr;
  gravity::MonopoleGravity* gravity_ = nullptr;
  tlb::Machine* machine_ = nullptr;
  EosTraceFn eos_trace_;

  double time_ = 0.0;
  double dt_ = 0.0;
  int step_ = 0;
};

}  // namespace fhp::sim
