#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "support/error.hpp"
#include "support/log.hpp"

namespace fhp::sim {

namespace {

// Format 3: zone vectors are serialized in *canonical* (variable-fastest)
// order via gather/scatter regardless of the in-memory BlockLayout, and
// the writer's layout kind is recorded in the header — informational
// provenance only, so a checkpoint written under var_major restores
// exactly under zone_major or tiled.
constexpr char kMagic[8] = {'F', 'H', 'P', 'C', 'K', 'P', 'T', '3'};

/// The config fields that must match for a restart to make sense.
struct ConfigRecord {
  std::int32_t ndim, nxb, nyb, nzb, nguard, nscalars, max_level;
  std::int32_t nroot[3];
  std::int32_t geometry;
  std::int32_t bc[3][2];
  double lo[3], hi[3];
};

ConfigRecord make_record(const mesh::MeshConfig& c) {
  ConfigRecord r{};
  r.ndim = c.ndim;
  r.nxb = c.nxb;
  r.nyb = c.nyb;
  r.nzb = c.nzb;
  r.nguard = c.nguard;
  r.nscalars = c.nscalars;
  r.max_level = c.max_level;
  for (int d = 0; d < 3; ++d) {
    const auto dd = static_cast<std::size_t>(d);
    r.nroot[d] = c.nroot[dd];
    r.lo[d] = c.lo[dd];
    r.hi[d] = c.hi[dd];
    r.bc[d][0] = static_cast<std::int32_t>(c.bc[dd][0]);
    r.bc[d][1] = static_cast<std::int32_t>(c.bc[dd][1]);
  }
  r.geometry = static_cast<std::int32_t>(c.geometry);
  return r;
}

struct LeafRecord {
  std::int32_t level;
  std::int32_t coord[3];
};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof value);
}

}  // namespace

void write_checkpoint(const std::string& path, const mesh::AmrMesh& mesh,
                      const CheckpointInfo& info) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SystemError("cannot open checkpoint '" + path + "' for writing",
                      errno);
  }
  const mesh::MeshConfig& c = mesh.config();
  out.write(kMagic, sizeof kMagic);
  write_pod(out, make_record(c));
  // Writer's layout — provenance, deliberately NOT part of ConfigRecord's
  // memcmp: any layout restores into any layout.
  write_pod(out,
            static_cast<std::int32_t>(mesh.unk().layout_kind()));
  write_pod(out, info.sim_time);
  write_pod(out, static_cast<std::int64_t>(info.step));

  // Leaves coarse-to-fine so a replay can refine ancestors first. The
  // Morton order within a level is already deterministic.
  std::vector<int> leaves = mesh.tree().leaves_morton();
  std::stable_sort(leaves.begin(), leaves.end(), [&](int a, int b) {
    return mesh.tree().info(a).level < mesh.tree().info(b).level;
  });
  write_pod(out, static_cast<std::int64_t>(leaves.size()));
  for (int id : leaves) {
    const mesh::BlockInfo& b = mesh.tree().info(id);
    LeafRecord rec{b.level, {b.coord[0], b.coord[1], b.coord[2]}};
    write_pod(out, rec);
  }

  // Interior data, canonical var-fastest zone vectors, per leaf in file
  // order — gathered through the layout, so the bytes on disk are
  // identical whatever the in-memory order.
  std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
  for (int id : leaves) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          mesh.unk().gather_zone(0, c.nvar(), i, j, k, id, zone.data());
          out.write(reinterpret_cast<const char*>(zone.data()),
                    static_cast<std::streamsize>(sizeof(double) *
                                                 zone.size()));
        }
      }
    }
  }
  if (!out) {
    throw SystemError("write to checkpoint '" + path + "' failed", errno);
  }
  FHP_LOG(kInfo) << "checkpoint written: " << path << " (" << leaves.size()
                 << " leaves, t=" << info.sim_time << ")";
}

CheckpointInfo read_checkpoint(const std::string& path,
                               mesh::AmrMesh& mesh) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SystemError("cannot open checkpoint '" + path + "'", errno);
  }
  char magic[8];
  in.read(magic, sizeof magic);
  FHP_REQUIRE(in && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
              "'" + path + "' is not a flashhp checkpoint");

  ConfigRecord stored{};
  read_pod(in, stored);
  const ConfigRecord current = make_record(mesh.config());
  FHP_REQUIRE(std::memcmp(&stored, &current, sizeof stored) == 0,
              "mesh configuration does not match checkpoint '" + path + "'");

  std::int32_t stored_layout = 0;
  read_pod(in, stored_layout);
  FHP_REQUIRE(stored_layout >= 0 &&
                  stored_layout <=
                      static_cast<std::int32_t>(mesh::LayoutKind::kTiled),
              "checkpoint '" + path + "' carries an unknown block layout");

  CheckpointInfo info;
  read_pod(in, info.sim_time);
  std::int64_t step = 0;
  read_pod(in, step);
  info.step = static_cast<int>(step);

  std::int64_t nleaves = 0;
  read_pod(in, nleaves);
  FHP_REQUIRE(in && nleaves > 0, "corrupt checkpoint leaf count");

  const mesh::MeshConfig& c = mesh.config();
  const int nroots = c.nroot[0] * c.nroot[1] * (c.ndim >= 3 ? c.nroot[2] : 1);
  FHP_REQUIRE(mesh.tree().num_allocated() == nroots,
              "read_checkpoint needs a freshly constructed mesh");

  // Rebuild the topology: leaves arrive coarse-to-fine, so every leaf's
  // parent chain can be materialized by refining the covering block.
  std::vector<LeafRecord> records(static_cast<std::size_t>(nleaves));
  for (auto& rec : records) read_pod(in, rec);
  for (const LeafRecord& rec : records) {
    for (int level = 1; level < rec.level; ++level) {
      const int shift = rec.level - level;
      const std::array<std::int32_t, 3> cover = {
          rec.coord[0] >> shift,
          rec.coord[1] >> shift,
          c.ndim >= 3 ? rec.coord[2] >> shift : 0};
      const int id = mesh.tree().find(level, cover);
      FHP_REQUIRE(id >= 0, "checkpoint topology is not a valid tree");
      if (mesh.tree().info(id).is_leaf) {
        mesh.refine_block(id);
      }
    }
  }

  // Interior data, in the same file order: canonical zone vectors
  // scattered into whatever layout *this* mesh runs — the cross-layout
  // restore path.
  std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
  for (const LeafRecord& rec : records) {
    const int id = mesh.tree().find(
        rec.level, {rec.coord[0], rec.coord[1], rec.coord[2]});
    FHP_REQUIRE(id >= 0 && mesh.tree().info(id).is_leaf,
                "checkpoint leaf missing after topology replay");
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          in.read(reinterpret_cast<char*>(zone.data()),
                  static_cast<std::streamsize>(sizeof(double) *
                                               zone.size()));
          mesh.unk().scatter_zone(0, c.nvar(), i, j, k, id, zone.data());
        }
      }
    }
  }
  FHP_REQUIRE(static_cast<bool>(in), "checkpoint '" + path + "' truncated");

  mesh.fill_guardcells();
  FHP_LOG(kInfo) << "checkpoint restored: " << path << " (" << nleaves
                 << " leaves, t=" << info.sim_time << ")";
  return info;
}

}  // namespace fhp::sim
