#include "sim/sedov.hpp"

#include <cmath>

#include "sim/sedov_exact.hpp"

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/mutex.hpp"

namespace fhp::sim {

using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kGamc;
using mesh::var::kGame;
using mesh::var::kPres;
using mesh::var::kTemp;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

SedovSetup::SedovSetup(const SedovParams& params, mem::HugePolicy policy,
                       rt::Runtime& runtime,
                       std::optional<mesh::LayoutKind> layout)
    : params_(params), eos_(params.gamma) {
  mesh::MeshConfig config;
  config.ndim = params.ndim;
  config.nxb = params.nxb;
  config.nyb = params.nyb;
  config.nzb = params.ndim >= 3 ? params.nzb : 1;
  config.nguard = params.nguard;
  config.nscalars = 0;
  config.maxblocks = params.maxblocks;
  config.max_level = params.max_level;
  config.lo = {0.0, 0.0, 0.0};
  config.hi = {1.0, 1.0, 1.0};
  config.nroot = {1, 1, 1};
  config.geometry = mesh::Geometry::kCartesian;
  // FLASH's sedov.par uses outflow on every face.
  mesh_ = std::make_unique<mesh::AmrMesh>(
      config, policy, layout.has_value() ? *layout : runtime.layout(),
      runtime.page_pool(), &runtime.arena());
  initialize();
}

void SedovSetup::initialize() {
  mesh::AmrMesh& m = *mesh_;
  const mesh::MeshConfig& c = m.config();

  // Spike radius: 3.5 finest-level cells unless overridden.
  const double finest_dx =
      (c.hi[0] - c.lo[0]) / (c.nxb * (1 << (c.max_level - 1)));
  const double r0 = params_.spike_radius > 0.0 ? params_.spike_radius
                                               : 3.5 * finest_dx;
  // Thermal spike: E inside a sphere of radius r0.
  const double volume = params_.ndim == 3
                            ? 4.0 / 3.0 * M_PI * r0 * r0 * r0
                            : M_PI * r0 * r0;
  const double p_spike =
      (params_.gamma - 1.0) * params_.energy / volume;

  auto apply = [&](int b, int i, int j, int k) {
    const double x = m.xcenter(b, i) - params_.center[0];
    const double y = m.ycenter(b, j) - params_.center[1];
    const double z =
        params_.ndim >= 3 ? m.zcenter(b, k) - params_.center[2] : 0.0;
    const double r = std::sqrt(x * x + y * y + z * z);
    const double pres = r <= r0 ? p_spike : params_.p_ambient;
    const double rho = params_.rho_ambient;
    const double eint = pres / ((params_.gamma - 1.0) * rho);

    mesh::UnkContainer& unk = m.unk();
    unk.at(kDens, i, j, k, b) = rho;
    unk.at(kVelx, i, j, k, b) = 0.0;
    unk.at(kVely, i, j, k, b) = 0.0;
    unk.at(kVelz, i, j, k, b) = 0.0;
    unk.at(kPres, i, j, k, b) = pres;
    unk.at(kEint, i, j, k, b) = eint;
    unk.at(kEner, i, j, k, b) = eint;
    unk.at(kGamc, i, j, k, b) = params_.gamma;
    unk.at(kGame, i, j, k, b) = params_.gamma;
    // Gamma-law "temperature" in code units (abar = 1).
    unk.at(kTemp, i, j, k, b) = 0.0;
  };

  // Initialize, then refine toward the spike, re-initializing children
  // from the analytic profile each pass (FLASH re-calls Simulation_init
  // on new blocks during initial refinement).
  m.for_leaf_cells(apply);
  const std::array<int, 2> est_vars{kPres, kDens};
  for (int pass = 0; pass < c.max_level; ++pass) {
    const int changes = m.remesh(est_vars, 0.5, 0.05);
    m.for_leaf_cells(apply);
    if (changes == 0) break;
  }
  m.fill_guardcells();
  FHP_LOG(kInfo) << "Sedov initialized: " << m.tree().leaves_morton().size()
                 << " leaf blocks, finest level " << m.tree().finest_level()
                 << ", spike radius " << r0;
}

double SedovSetup::shock_radius(double energy, double rho, double time,
                                double gamma) {
  // Exact similarity constant from the integrated Sedov solution
  // (sedov_exact.hpp); cache per gamma since the integration costs ~ms.
  // The cache is shared by every tenant in the process, so it is
  // mutex-guarded — concurrent service tenants validate their shocks
  // from arbitrary threads.
  static Mutex cache_mutex;
  static double cached_gamma FHP_GUARDED_BY(cache_mutex) = -1.0;
  static double cached_alpha FHP_GUARDED_BY(cache_mutex) = 0.0;
  double alpha;
  {
    MutexLock lock(cache_mutex);
    if (gamma != cached_gamma) {
      cached_alpha = SedovExact(gamma, 3).alpha();
      cached_gamma = gamma;
    }
    alpha = cached_alpha;
  }
  return std::pow(energy * time * time / (alpha * rho), 0.2);
}

}  // namespace fhp::sim
