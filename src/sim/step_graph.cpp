#include "sim/step_graph.hpp"

#include <algorithm>
#include <functional>

#include "par/parallel.hpp"
#include "support/error.hpp"

namespace fhp::sim {

StepGraph::StepGraph(mesh::AmrMesh& mesh, hydro::HydroSolver& hydro,
                     flame::AdrFlame* flame)
    : mesh_(mesh), hydro_(hydro), flame_(flame) {}

void StepGraph::rebuild() {
  leaves_ = mesh_.tree().leaves_morton();
  forward_.clear();
  backward_.clear();
  build(forward_, /*forward=*/true);
  build(backward_, /*forward=*/false);
  forward_.freeze();
  backward_.freeze();
}

void StepGraph::build(par::TaskGraph& graph, bool forward) {
  using TaskId = par::TaskGraph::TaskId;
  const mesh::MeshConfig& c = mesh_.config();
  const mesh::BlockTree& tree = mesh_.tree();
  const int ndim = c.ndim;
  const int finest = tree.finest_level();

  // Every allocated block that receives a guard fill, in the same level
  // order the bulk fill_guardcells walks.
  std::vector<int> guard_blocks;
  for (int level = 1; level <= finest; ++level) {
    const std::vector<int>& blocks = tree.blocks_at_level(level);
    guard_blocks.insert(guard_blocks.end(), blocks.begin(), blocks.end());
  }
  int max_id = -1;
  for (const int b : guard_blocks) max_id = std::max(max_id, b);
  const auto nslots = static_cast<std::size_t>(max_id + 1);

  // Local out-degree bookkeeping for the stage-chaining barrier (the
  // graph itself rejects duplicate edges, so every edge goes through
  // link() exactly once).
  std::vector<int> out_degree;
  const auto add = [&](const char* name, std::function<void(int)> body) {
    const TaskId id = graph.add_task(name, std::move(body));
    out_degree.push_back(0);
    return id;
  };
  const auto link = [&](TaskId before, TaskId after) {
    graph.add_edge(before, after);
    ++out_degree[static_cast<std::size_t>(before)];
  };

  // [prev_begin, prev_end): task ids of the previous stage. A new
  // stage's restrict root depends on every task of the previous stage
  // that has no successor — and, transitively, on the whole stage.
  std::size_t prev_begin = 0;
  std::size_t prev_end = 0;

  // Guard-fill sub-stage, shared by the sweep and flame stages: restrict
  // root, then one guard task per allocated block with coarse-to-fine
  // edges. Fills `guard_task` (block -> task id) and `readers` (block ->
  // guard blocks whose fill reads that block's interior), both reused by
  // the caller for the anti-dependency edges.
  std::vector<TaskId> guard_task;
  std::vector<std::vector<int>> readers;
  const auto build_guard_stage = [&]() {
    const std::size_t stage_begin = out_degree.size();
    const TaskId restrict_task =
        add("task.restrict", [this](int /*lane*/) { mesh_.restrict_all(); });
    if (prev_end > prev_begin) {
      for (std::size_t id = prev_begin; id < prev_end; ++id) {
        if (out_degree[id] == 0) {
          link(static_cast<TaskId>(id), restrict_task);
        }
      }
    }
    guard_task.assign(nslots, -1);
    readers.assign(nslots, {});
    for (const int b : guard_blocks) {
      guard_task[static_cast<std::size_t>(b)] =
          add("task.guard", [this, b](int /*lane*/) {
            RegionWitness witness;  // task body: lane writer role
            mesh_.fill_block_guards(b);
          });
    }
    for (const int b : guard_blocks) {
      const TaskId gb = guard_task[static_cast<std::size_t>(b)];
      link(restrict_task, gb);
      const mesh::AmrMesh::GuardSources sources = mesh_.guard_sources(b);
      // Coarse interpolation reads the coarse block's guards too, so the
      // coarse fill must complete first (the bulk path's level ordering).
      for (const int cb : sources.coarse) {
        const TaskId gc = guard_task[static_cast<std::size_t>(cb)];
        FHP_CHECK(gc >= 0, "coarse guard source without a guard task");
        link(gc, gb);
        readers[static_cast<std::size_t>(cb)].push_back(b);
      }
      // Same-level copies read interiors only: no guard-guard edge, but
      // the read still anti-orders against the source's sweep/flame.
      for (const int sb : sources.same_level) {
        readers[static_cast<std::size_t>(sb)].push_back(b);
      }
    }
    prev_begin = stage_begin;  // provisional; caller extends prev_end
  };

  // Links guard(b) -> task plus the anti-dependency guard(r) -> task for
  // every r whose guard fill reads b's interior (the task overwrites it).
  const auto link_guard_deps = [&](int b, TaskId task) {
    link(guard_task[static_cast<std::size_t>(b)], task);
    for (const int r : readers[static_cast<std::size_t>(b)]) {
      link(guard_task[static_cast<std::size_t>(r)], task);
    }
  };

  // --- one stage per directional sweep, in Strang order ------------------
  for (int s = 0; s < ndim; ++s) {
    const int axis = forward ? s : ndim - 1 - s;
    build_guard_stage();
    for (const int b : leaves_) {
      // Span names are static-storage literals (the trace ring keeps the
      // pointer), so the per-axis name is a table lookup.
      static constexpr const char* kSweepNames[3] = {
          "task.sweep_x", "task.sweep_y", "task.sweep_z"};
      const TaskId sweep =
          add(kSweepNames[axis], [this, axis, b](int lane) {
            RegionWitness witness;  // task body: lane writer role
            hydro_.sweep_block_task(axis, dt_, b, lane);
          });
      link_guard_deps(b, sweep);
    }
    // Sweep task ids, in leaves_ order, start right after the guard tasks.
    const std::size_t sweep_base = out_degree.size() - leaves_.size();
    std::vector<TaskId> sweep_of(nslots, -1);
    for (std::size_t n = 0; n < leaves_.size(); ++n) {
      sweep_of[static_cast<std::size_t>(leaves_[n])] =
          static_cast<TaskId>(sweep_base + n);
    }
    for (std::size_t n = 0; n < leaves_.size(); ++n) {
      const int b = leaves_[n];
      const TaskId sweep = static_cast<TaskId>(sweep_base + n);
      TaskId last = sweep;
      const std::vector<int> fine = hydro_.flux_sources(axis, b);
      if (!fine.empty()) {
        const TaskId flux =
            add("task.flux", [this, axis, b](int /*lane*/) {
              RegionWitness witness;  // task body: lane writer role
              hydro_.apply_flux_correction_block(axis, dt_, b);
            });
        link(sweep, flux);
        for (const int f : fine) {
          const TaskId fs = sweep_of[static_cast<std::size_t>(f)];
          FHP_CHECK(fs >= 0, "flux source is not a swept leaf");
          link(fs, flux);
        }
        last = flux;
      }
      const TaskId eos = add("task.eos", [this, b](int lane) {
        RegionWitness witness;  // task body: lane writer role
        hydro_.eos_update_block_task(b, lane);
      });
      link(last, eos);
    }
    prev_end = out_degree.size();
  }

  // --- flame stage (guard fill, per-block ADR update, EOS) ---------------
  if (flame_ != nullptr) {
    build_guard_stage();
    for (std::size_t n = 0; n < leaves_.size(); ++n) {
      const int b = leaves_[n];
      const TaskId burn = add("task.flame", [this, n, b](int lane) {
        RegionWitness witness;  // task body: lane writer role
        flame_->advance_block_task(n, b, dt_, lane);
      });
      link_guard_deps(b, burn);
      const TaskId eos = add("task.eos", [this, b](int lane) {
        RegionWitness witness;  // task body: lane writer role
        hydro_.eos_update_block_task(b, lane);
      });
      link(burn, eos);
    }
    prev_end = out_degree.size();
  }
}

void StepGraph::run_step(double dt) {
  dt_ = dt;
  // Setup-time sizing on the driver thread so the task bodies themselves
  // stay allocation-free.
  hydro_.ensure_lane_scratch();
  if (flame_ != nullptr) flame_->begin_advance(leaves_.size());
  par::TaskGraph& graph = hydro_.forward_order() ? forward_ : backward_;
  graph.run();
  if (flame_ != nullptr) flame_->finish_advance();
  hydro_.advance_step_count();
  stats_ = graph.last_stats();
}

}  // namespace fhp::sim
