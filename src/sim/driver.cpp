#include "sim/driver.hpp"

#include <algorithm>
#include <utility>

#include "perf/perf_context.hpp"
#include "perf/region.hpp"
#include "rt/runtime.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace fhp::sim {

Driver::Driver(mesh::AmrMesh& mesh, hydro::HydroSolver& hydro,
               perf::Timers& timers, DriverOptions options, DriverUnits units)
    : mesh_(mesh),
      hydro_(hydro),
      timers_(timers),
      options_(std::move(options)),
      units_(std::move(units)),
      runtime_(units_.runtime != nullptr ? *units_.runtime
                                         : rt::Runtime::process_default()),
      perf_(units_.perf != nullptr ? *units_.perf : runtime_.perf()) {
  if (options_.refine_vars.empty()) {
    options_.refine_vars = {mesh::var::kDens, mesh::var::kPres};
  }
  if (options_.exec_mode == ExecMode::kTaskGraph) {
    step_graph_ = std::make_unique<StepGraph>(mesh_, hydro_, units_.flame);
    step_graph_->rebuild();
  }
}

// Tracing replays sampled blocks into the (stateful, warm) machine model
// and therefore always runs serially on the driver thread, independent
// of FLASHHP_THREADS — this is what keeps modeled counters bit-identical
// across thread counts.
void Driver::trace_regions() {
  if (units_.machine == nullptr || options_.trace_sample <= 0) return;
  tlb::Tracer tracer(units_.machine);
  const auto scale = static_cast<std::uint64_t>(options_.trace_sample);
  const std::vector<int> leaves = mesh_.tree().leaves_morton();
  // Round-robin the sampled subset so every block is eventually modeled.
  const int offset = step_ % options_.trace_sample;

  // --- hydro sweeps (the "3-d Hydro" instrumented region) ---------------
  {
    perf::PerfRegion region(perf_, "hydro");
    for (std::size_t n = static_cast<std::size_t>(offset); n < leaves.size();
         n += static_cast<std::size_t>(options_.trace_sample)) {
      hydro_.trace_step_block(tracer, leaves[n]);
    }
    units_.machine->commit(scale);
  }

  // --- EOS (the "EOS" instrumented region): ndim per-sweep passes -------
  if (units_.eos_trace) {
    perf::PerfRegion region(perf_, "eos");
    for (int sweep = 0; sweep < mesh_.config().ndim; ++sweep) {
      for (std::size_t n = static_cast<std::size_t>(offset);
           n < leaves.size();
           n += static_cast<std::size_t>(options_.trace_sample)) {
        units_.eos_trace(tracer, leaves[n]);
      }
    }
    units_.machine->commit(scale);
  }

  // --- flame -------------------------------------------------------------
  if (units_.flame != nullptr) {
    perf::PerfRegion region(perf_, "flame");
    for (std::size_t n = static_cast<std::size_t>(offset); n < leaves.size();
         n += static_cast<std::size_t>(options_.trace_sample)) {
      units_.flame->trace_advance_block(tracer, leaves[n]);
    }
    units_.machine->commit(scale);
  }

  // --- guard fill + bookkeeping ("grid") ----------------------------------
  {
    perf::PerfRegion region(perf_, "grid");
    const mesh::MeshConfig& c = mesh_.config();
    const auto& unk = mesh_.unk();
    for (std::size_t n = static_cast<std::size_t>(offset); n < leaves.size();
         n += static_cast<std::size_t>(options_.trace_sample)) {
      // Guard exchange touches roughly one block surface shell per
      // neighbour: model as one read+write pass over the interior once
      // per step (conservative; guard volume ~ interior volume at 16^d
      // with 4 guards).
      unk.trace_sweep(tracer, leaves[n], c.ilo(), c.ihi(), c.jlo(), c.jhi(),
                      c.klo(), c.khi(), c.nvar(), c.nvar());
    }
    units_.machine->commit(scale);
  }
}

void Driver::evolve() {
  perf::Timers::Scope total(timers_, "evolution");
  while (step_once()) {
  }
}

bool Driver::step_once() {
  if (step_ >= options_.nsteps || time_ >= options_.tmax) return false;
  // Everything this step does — spans closed on the driver thread, log
  // lines, and (via the arena's LaneEnv) work on pool lanes — is
  // attributed to this driver's runtime.
  const rt::Runtime::BindScope bound(runtime_);
  {
    FHP_TRACE_SPAN("driver.step");
    {
      perf::Timers::Scope t(timers_, "compute_dt");
      FHP_TRACE_SPAN("driver.compute_dt");
      dt_ = hydro_.compute_dt();
    }
    if (time_ + dt_ > options_.tmax) dt_ = options_.tmax - time_;

    if (step_graph_ != nullptr) {
      // Fused step: every sweep plus the flame stage as one block-task
      // DAG — no barriers between guard fill, sweep, flux fixup and EOS.
      perf::Timers::Scope t(timers_, "step_graph");
      FHP_TRACE_SPAN("driver.step_graph");
      step_graph_->run_step(dt_);
    } else {
      {
        perf::Timers::Scope t(timers_, "hydro");
        FHP_TRACE_SPAN("driver.hydro");
        hydro_.step(dt_);
      }

      if (units_.flame != nullptr) {
        perf::Timers::Scope t(timers_, "flame");
        FHP_TRACE_SPAN("driver.flame");
        mesh_.fill_guardcells();
        units_.flame->advance(dt_);
        hydro_.eos_update();
      }
    }

    if (units_.gravity != nullptr) {
      perf::Timers::Scope t(timers_, "gravity");
      FHP_TRACE_SPAN("driver.gravity");
      units_.gravity->update(mesh_);
      units_.gravity->apply_source(mesh_, dt_);
      hydro_.eos_update();
    }

    {
      perf::Timers::Scope t(timers_, "trace");
      FHP_TRACE_SPAN("driver.trace");
      trace_regions();
    }

    time_ += dt_;
    ++step_;

    // Step boundary: lanes are quiescent, so this is the legal moment to
    // snapshot the counter shards for asynchronous observers (the
    // sampler thread only ever reads this published copy), accumulate
    // the scheduler statistics (kept out of the counters — they are
    // timing-dependent) and stamp the step mark onto the timeline.
    perf_.publish();
    if (step_graph_ != nullptr) {
      const par::TaskGraph::Stats s = step_graph_->last_stats();
      sched_stats_.executed += s.executed;
      sched_stats_.steals += s.steals;
      sched_stats_.steal_attempts += s.steal_attempts;
      sched_stats_.yields += s.yields;
    }
    trace::step_mark(step_, time_, dt_);

    if (options_.remesh_interval > 0 &&
        step_ % options_.remesh_interval == 0) {
      perf::Timers::Scope t(timers_, "remesh");
      FHP_TRACE_SPAN("driver.remesh");
      const int changes = mesh_.remesh(options_.refine_vars,
                                       options_.refine_cut,
                                       options_.derefine_cut);
      if (changes > 0 && step_graph_ != nullptr) {
        // The block tree changed: the task graphs' block ids, guard
        // dependencies and flux sources are stale. Rebuild (setup-time
        // allocation, amortized over remesh_interval steps).
        step_graph_->rebuild();
      }
      if (options_.verbose && changes > 0) {
        FHP_LOG(kDebug) << "step " << step_ << ": remesh changed " << changes
                        << " blocks (" << mesh_.tree().num_allocated()
                        << " allocated)";
      }
    }

    if (options_.verbose && (step_ % 10 == 0 || step_ == 1)) {
      FHP_LOG(kInfo) << "step " << step_ << "  t=" << time_ << "  dt=" << dt_
                     << "  leaves=" << mesh_.tree().leaves_morton().size();
    }
  }
  return true;
}

}  // namespace fhp::sim
