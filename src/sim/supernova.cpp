#include "sim/supernova.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/log.hpp"

namespace fhp::sim {

using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kFirstScalar;
using mesh::var::kGamc;
using mesh::var::kGame;
using mesh::var::kPres;
using mesh::var::kTemp;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

void mixture_composition(double xc, double xo, double xne, double xash,
                         double& abar, double& zbar) {
  // A: 12, 16, 22, 24; Z: 6, 8, 10, 12. Normalize defensively.
  const double xsum = std::max(1e-30, xc + xo + xne + xash);
  const double inv_a =
      (xc / 12.0 + xo / 16.0 + xne / 22.0 + xash / 24.0) / xsum;
  const double z_over_a =
      (xc * 6.0 / 12.0 + xo * 8.0 / 16.0 + xne * 10.0 / 22.0 +
       xash * 12.0 / 24.0) /
      xsum;
  abar = 1.0 / inv_a;
  zbar = z_over_a * abar;
}

SupernovaSetup::SupernovaSetup(const SupernovaParams& params,
                               mem::HugePolicy policy, rt::Runtime& runtime,
                               std::optional<mesh::LayoutKind> layout)
    : params_(params),
      flame_speeds_(6.0, 10.0, 81, 0.2, 0.8, 25, params.x_ne22) {
  // --- EOS table (lives on the policy under test, like unk) -------------
  table_ = std::make_shared<eos::HelmTable>(eos::HelmTable::build_or_load(
      params_.table_spec, policy, runtime.page_pool(), params_.table_cache));
  table_->refresh_page_shift();
  eos_ = std::make_unique<eos::HelmTableEos>(table_);

  // --- hydrostatic progenitor -------------------------------------------
  gravity::WdParams wdp;
  wdp.central_density = params_.central_density;
  wdp.core_temperature = params_.core_temperature;
  mixture_composition(params_.x_carbon, params_.x_oxygen, params_.x_ne22,
                      0.0, wdp.abar, wdp.zbar);
  wd_ = std::make_unique<gravity::WhiteDwarfModel>(*eos_, wdp);
  FHP_LOG(kInfo) << "white dwarf model: R = " << wd_->radius() / 1e5
                 << " km, M = " << wd_->mass() / 1.98847e33 << " Msun";

  // --- mesh ---------------------------------------------------------------
  mesh::MeshConfig config;
  config.ndim = 2;
  config.nxb = params_.nxb;
  config.nyb = params_.nyb;
  config.nzb = 1;
  config.nguard = params_.nguard;
  config.nscalars = snvar::kCount;
  config.maxblocks = params_.maxblocks;
  config.max_level = params_.max_level;
  config.geometry = mesh::Geometry::kCylindrical;
  config.lo = {0.0, -params_.domain_radius, 0.0};
  config.hi = {params_.domain_radius, params_.domain_radius, 0.0 + 1.0};
  config.nroot = {1, 2, 1};  // square blocks: r spans half the z extent
  config.bc[0][0] = mesh::Bc::kAxis;
  config.bc[0][1] = mesh::Bc::kOutflow;
  config.bc[1][0] = mesh::Bc::kOutflow;
  config.bc[1][1] = mesh::Bc::kOutflow;
  mesh_ = std::make_unique<mesh::AmrMesh>(
      config, policy, layout.has_value() ? *layout : runtime.layout(),
      runtime.page_pool(), &runtime.arena());

  // --- physics units -------------------------------------------------------
  flame::AdrOptions fopt;
  fopt.phi_scalar = snvar::kPhi;
  fopt.fuel_scalar = snvar::kC12;
  fopt.ash_scalar = snvar::kAsh;
  flame_ = std::make_unique<flame::AdrFlame>(*mesh_, flame_speeds_, fopt);
  gravity_ = std::make_unique<gravity::MonopoleGravity>(
      std::array<double, 3>{0.0, 0.0, 0.0}, 512);

  initialize();
}

void SupernovaSetup::initialize() {
  mesh::AmrMesh& m = *mesh_;

  auto apply = [&](int b, int i, int j, int k) {
    const double r = m.xcenter(b, i);
    const double z = m.ycenter(b, j);
    const double radius = std::sqrt(r * r + z * z);

    const bool in_star = radius < wd_->radius();
    const double rho = in_star ? wd_->density_at(radius)
                               : params_.fluff_density;
    const double temp = in_star ? params_.core_temperature
                                : params_.fluff_temperature;

    // Ignition match-head: fully burned sphere on the axis.
    const double zi = z - params_.ignition_offset;
    const double ri = std::sqrt(r * r + zi * zi);
    const double phi = ri < params_.ignition_radius ? 1.0 : 0.0;

    const double xash = phi * params_.x_carbon;  // burned carbon
    const double xc = params_.x_carbon * (1.0 - phi);
    double abar, zbar;
    mixture_composition(xc, params_.x_oxygen, params_.x_ne22, xash, abar,
                        zbar);

    eos::State s;
    s.abar = abar;
    s.zbar = zbar;
    s.rho = rho;
    s.temp = temp;
    eos_->eval_one(eos::Mode::kDensTemp, s);

    mesh::UnkContainer& unk = m.unk();
    unk.at(kDens, i, j, k, b) = rho;
    unk.at(kVelx, i, j, k, b) = 0.0;
    unk.at(kVely, i, j, k, b) = 0.0;
    unk.at(kVelz, i, j, k, b) = 0.0;
    unk.at(kPres, i, j, k, b) = s.pres;
    unk.at(kTemp, i, j, k, b) = s.temp;
    unk.at(kEint, i, j, k, b) = s.ener;
    unk.at(kEner, i, j, k, b) = s.ener;  // velocities are zero
    unk.at(kGamc, i, j, k, b) = s.gamma1;
    unk.at(kGame, i, j, k, b) = s.pres / (s.rho * s.ener) + 1.0;
    unk.at(kFirstScalar + snvar::kPhi, i, j, k, b) = phi;
    unk.at(kFirstScalar + snvar::kC12, i, j, k, b) = xc;
    unk.at(kFirstScalar + snvar::kO16, i, j, k, b) = params_.x_oxygen;
    unk.at(kFirstScalar + snvar::kNe22, i, j, k, b) = params_.x_ne22;
    unk.at(kFirstScalar + snvar::kAsh, i, j, k, b) = xash;
  };

  m.for_leaf_cells(apply);
  const std::array<int, 2> est_vars{kDens, kFirstScalar + snvar::kPhi};
  for (int pass = 0; pass < m.config().max_level; ++pass) {
    const int changes = m.remesh(est_vars, 0.6, 0.1);
    m.for_leaf_cells(apply);
    if (changes == 0) break;
  }
  m.fill_guardcells();
  gravity_->update(m);
  FHP_LOG(kInfo) << "supernova initialized: "
                 << m.tree().leaves_morton().size()
                 << " leaf blocks, finest level " << m.tree().finest_level();
}

hydro::CompositionFn SupernovaSetup::composition_fn() const {
  return [](eos::State& s, const double* scalars, int count) {
    FHP_CHECK(count >= snvar::kCount, "supernova needs its 5 scalars");
    mixture_composition(scalars[snvar::kC12], scalars[snvar::kO16],
                        scalars[snvar::kNe22], scalars[snvar::kAsh], s.abar,
                        s.zbar);
  };
}

void SupernovaSetup::trace_eos_block(tlb::Tracer& tracer, int b) const {
  if (!tracer.enabled()) return;
  const mesh::MeshConfig& c = mesh_->config();
  const mesh::UnkContainer& unk = mesh_->unk();
  // Eos_wrapped reads the zone's thermodynamic vector + scalars and
  // writes the updated thermodynamic set...
  unk.trace_sweep(tracer, b, c.ilo(), c.ihi(), c.jlo(), c.jhi(), c.klo(),
                  c.khi(), c.nvar(), 6);
  // ...and gathers the Helmholtz table stencil per Newton iteration.
  std::vector<eos::State> row(static_cast<std::size_t>(c.nxb));
  for (int k = c.klo(); k < c.khi(); ++k) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        eos::State& s = row[static_cast<std::size_t>(i - c.ilo())];
        s.rho = unk.at(kDens, i, j, k, b);
        s.temp = std::max(1.0e4, unk.at(kTemp, i, j, k, b));
        double sc[snvar::kCount];
        unk.gather_zone(kFirstScalar, snvar::kCount, i, j, k, b, sc);
        mixture_composition(sc[snvar::kC12], sc[snvar::kO16],
                            sc[snvar::kNe22], sc[snvar::kAsh], s.abar,
                            s.zbar);
      }
      eos_->trace_eval(tracer, eos::Mode::kDensEner,
                       std::span<const eos::State>(row));
    }
  }
}

}  // namespace fhp::sim
