/// \file profiles.hpp
/// \brief Radial profile extraction and CSV output for analysis.
///
/// FLASH writes checkpoints analyzed offline; for validation we only need
/// spherically averaged profiles (Sedov shock location, white-dwarf
/// structure) so this module bins leaf-cell data in spherical shells.

#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "mesh/amr_mesh.hpp"

namespace fhp::sim {

/// A spherically averaged profile of selected variables.
class RadialProfile {
 public:
  /// Bin every leaf cell of \p mesh into \p nbins shells around \p center,
  /// volume-weighted, for each variable index in \p vars.
  RadialProfile(const mesh::AmrMesh& mesh, std::array<double, 3> center,
                int nbins, std::vector<int> vars);

  [[nodiscard]] int nbins() const noexcept { return nbins_; }
  [[nodiscard]] double bin_radius(int bin) const;
  /// Volume-weighted mean of the v-th *requested* variable in a bin
  /// (NaN-free: empty bins return 0).
  [[nodiscard]] double value(int var_slot, int bin) const;

  /// Radius of the steepest outward density drop — a robust shock-front
  /// locator for blast waves (pass the slot of kDens in `vars`).
  [[nodiscard]] double steepest_gradient_radius(int var_slot) const;

  /// Radius of the maximum of a variable (e.g. peak density at the shell).
  [[nodiscard]] double peak_radius(int var_slot) const;
  [[nodiscard]] double peak_value(int var_slot) const;

  /// Write "radius,var0,var1,..." CSV rows.
  void write_csv(std::ostream& os) const;

 private:
  int nbins_;
  double rmax_;
  std::vector<int> vars_;
  std::vector<double> sums_;     ///< [var][bin] volume-weighted sums
  std::vector<double> volumes_;  ///< [bin]
};

}  // namespace fhp::sim
