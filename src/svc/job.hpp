/// \file job.hpp
/// \brief fhp::svc job vocabulary — specs, results, progress, rejection.
///
/// A job is one simulation a tenant asked the service to run: a setup
/// kind plus its runtime parameters, a step budget, and a deadline
/// class. The service answers a submit() with either a JobId or a typed
/// RejectReason — admission control is part of the API, not a log line —
/// and every accepted job eventually produces exactly one JobResult,
/// whatever happened to it (done, failed, cancelled).
///
/// Everything here is plain data: the scheduling machinery lives in
/// svc/service.hpp, and the per-tenant execution context (rt::Runtime)
/// is a service implementation detail the client never touches.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/huge_policy.hpp"
#include "mesh/layout.hpp"
#include "perf/perf_context.hpp"
#include "sim/cellular.hpp"
#include "sim/sedov.hpp"
#include "sim/supernova.hpp"

namespace fhp::svc {

/// Which setup the job instantiates. The three classes span the cost
/// spectrum: Sedov (pure hydro, cheapest), cellular detonation (hydro +
/// ADR flame), supernova (tabulated EOS + flame + gravity, heaviest).
enum class JobKind : std::uint8_t {
  kSedov,
  kCellular,
  kSupernova,
};

/// Scheduling class. Interactive jobs are picked ahead of batch jobs at
/// every quantum boundary; within a class the service round-robins.
enum class DeadlineClass : std::uint8_t {
  kInteractive,
  kBatch,
};

/// Why a submit() was refused. kNone means it was accepted.
enum class RejectReason : std::uint8_t {
  kNone,
  kQueueFull,      ///< the bounded pending queue is at capacity
  kShuttingDown,   ///< shutdown() has begun; no new work
  kBadSpec,        ///< spec failed validation (lanes, budget, ...)
};

/// Terminal and in-flight states of an accepted job.
enum class JobStatus : std::uint8_t {
  kQueued,     ///< admitted, waiting for a worker
  kRunning,    ///< tenant constructed; being stepped in quanta
  kDone,       ///< budget spent, result complete
  kFailed,     ///< setup or stepping threw; see JobResult::error
  kCancelled,  ///< shutdown(kCancel) reached it first
};

[[nodiscard]] const char* to_string(JobKind kind) noexcept;
[[nodiscard]] const char* to_string(DeadlineClass deadline) noexcept;
[[nodiscard]] const char* to_string(RejectReason reason) noexcept;
[[nodiscard]] const char* to_string(JobStatus status) noexcept;

/// Monotonic per-service job handle; 0 is never issued.
using JobId = std::uint64_t;

/// Per-tenant slice of the shared pool's decision counters: the deltas
/// accrued while this tenant's setup carved its blocks and tables from
/// the arena. The degradation contract shows up here — a pool-dry
/// tenant reports thp/base fallbacks instead of failing.
struct PoolSummary {
  std::uint64_t huge_allocs = 0;
  std::uint64_t remote_huge_allocs = 0;
  std::uint64_t thp_fallbacks = 0;
  std::uint64_t base_fallbacks = 0;
  std::uint64_t exhausted_events = 0;
  std::uint64_t backing_shortfalls = 0;
};

/// What a client submits. Exactly one of the params structs is read —
/// the one matching `kind`; the others keep their defaults.
struct JobSpec {
  JobKind kind = JobKind::kSedov;
  DeadlineClass deadline = DeadlineClass::kBatch;

  /// Step budget for the tenant's Driver.
  int nsteps = 8;
  /// Lane count of the tenant's private ExecArena. The service default
  /// of 1 runs each tenant serially on its worker thread — throughput
  /// comes from concurrent tenants, not intra-tenant parallelism.
  int lanes = 1;
  /// Block-data layout; nullopt = the tenant Runtime snapshots the
  /// process resolution order.
  std::optional<mesh::LayoutKind> layout;
  /// Huge-page policy for the tenant's mesh (and table) storage.
  mem::HugePolicy policy = mem::HugePolicy::kNone;
  /// Driver trace sampling (0 = modeled counters off).
  int trace_sample = 0;

  /// true: JobResult::final_state carries the canonical end state (every
  /// leaf interior zone in Morton order + sim time + flame energy), the
  /// same canonicalization the bit-identity tests compare.
  bool capture_state = false;
  /// Non-empty: export this tenant's span timeline (Chrome-trace JSON)
  /// here at completion.
  std::string timeline_path;
  /// Log-line tag for the tenant's Runtime ("" = "job<id>").
  std::string log_tag;

  sim::SedovParams sedov{};
  sim::CellularParams cellular{};
  sim::SupernovaParams supernova{};
};

/// Streamed mid-flight view of a job (see Service::progress()). The
/// counter snapshot is the tenant's last step-boundary publish — safe to
/// read from any thread while the tenant is being stepped.
struct JobProgress {
  JobStatus status = JobStatus::kQueued;
  int steps = 0;
  double sim_time = 0.0;
  perf::PublishedCounters counters;
};

/// The one record every accepted job resolves to.
struct JobResult {
  JobId id = 0;
  JobStatus status = JobStatus::kQueued;
  std::string error;  ///< non-empty iff status == kFailed

  int steps = 0;          ///< steps actually taken
  double sim_time = 0.0;  ///< final simulated time [s]

  double queue_seconds = 0.0;  ///< submit -> first step
  double wall_seconds = 0.0;   ///< submit -> completion (the job latency)

  /// The tenant's final published counter set (seq 0 if it never ran).
  perf::PublishedCounters counters;
  /// This tenant's slice of the shared pool's decisions.
  PoolSummary pool;
  /// Canonical end state when JobSpec::capture_state was set.
  std::vector<double> final_state;
};

}  // namespace fhp::svc
