/// \file service.hpp
/// \brief fhp::svc::Service — the multi-tenant simulation front-end.
///
/// The paper measures one FLASH instance per node; the roadmap's north
/// star is a service carrying many concurrent simulations per process.
/// PR 9's rt::Runtime made per-tenant isolation bit-exact; Service is
/// the scheduling layer on top:
///
///   - admission control: a bounded pending queue. submit() answers
///     with a JobId or a typed RejectReason — saturation is an API
///     result, not a hang;
///   - fair-share chunked stepping: workers pop a tenant, advance it by
///     at most `quantum_steps` Driver::step_once() calls, and requeue
///     it behind its class — so a 50-step supernova cannot starve a
///     6-step Sedov. Interactive jobs are preferred over batch at every
///     pop. Because step_once() leaves all stepping state in members
///     (Strang parity, flame energy, remesh cadence), a tenant stepped
///     in 1-step quanta interleaved with strangers ends bit-identical
///     to its solo run — the scheduler extension of the PR 9 contract,
///     held by tests/test_service.cpp;
///   - a shared huge-page arena: every tenant's Runtime carves block
///     and table storage from one mem::PagePool. Tenant setups are
///     serialized under one mutex (PagePool serializes allocations
///     anyway, and the Helm-table disk cache is not concurrent-build
///     safe), and the pool counter deltas across each setup become the
///     tenant's PoolSummary — per-tenant accounting over a shared
///     inventory. Exhaustion degrades (hugetlbfs -> THP -> base), it
///     never fails a job;
///   - result streaming: progress() reads the tenant's last published
///     counter snapshot from any thread mid-flight; completed jobs
///     resolve to a JobResult via wait(); per-tenant span timelines
///     export to Chrome-trace JSON on request.
///
/// Layering: svc sits at the top of the module DAG — the one place that
/// constructs rt::Runtimes it does not hand to a human (examples/bench
/// construct their own). tools/fhp_analyze.py enforces that nothing
/// below svc includes it.

#pragma once

#include <cstdint>
#include <optional>

#include "mem/page_pool.hpp"
#include "mesh/amr_mesh.hpp"
#include "svc/job.hpp"

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::svc {

/// Environment knob: worker (scheduler lane) count, FLASHHP_SVC_LANES.
inline constexpr const char* kSvcLanesEnvVar = "FLASHHP_SVC_LANES";

/// Construction-time configuration.
struct ServiceOptions {
  /// Worker threads stepping tenants. 0 = resolve the "svc.lanes"
  /// runtime param / FLASHHP_SVC_LANES / 2, at construction.
  int workers = 0;
  /// Pending-queue bound: jobs admitted but not yet finished beyond the
  /// ones holding tenants. submit() rejects kQueueFull at capacity.
  /// 0 = resolve "svc.queue" / 16.
  int queue_capacity = 0;
  /// Maximum concurrently *constructed* tenants (jobs holding mesh
  /// storage in the shared pool). Workers defer building fresh tenants
  /// beyond this; admitted jobs wait queued instead of failing.
  /// 0 = resolve "svc.max_tenants" / 8.
  int max_tenants = 0;
  /// Steps a tenant advances per scheduling quantum.
  /// 0 = resolve "svc.quantum" / 4.
  int quantum_steps = 0;
  /// Non-null: carve every tenant from this pool (must outlive the
  /// service). Null: the service owns a private pool, initialized from
  /// `pool_config` when given, else lazily from the environment.
  mem::PagePool* pool = nullptr;
  /// Config for the service-owned pool (ignored when `pool` is set).
  /// Tests inject synthetic inventories here to drive exhaustion.
  std::optional<mem::PagePoolConfig> pool_config;
  /// true: workers idle until start() — deterministic admission-order
  /// tests submit a whole batch first, then release the scheduler.
  bool start_paused = false;
};

/// Aggregate service counters (monotonic except active/queued).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted submits
  std::uint64_t rejected = 0;   ///< refused submits
  std::uint64_t completed = 0;  ///< resolved kDone
  std::uint64_t failed = 0;     ///< resolved kFailed
  std::uint64_t cancelled = 0;  ///< resolved kCancelled
  int queued = 0;               ///< admitted, not yet holding a tenant
  int active_tenants = 0;       ///< tenants currently constructed
};

/// submit()'s answer: an id when accepted, a reason when not.
struct Submission {
  JobId id = 0;
  RejectReason reason = RejectReason::kNone;
  [[nodiscard]] bool accepted() const noexcept {
    return reason == RejectReason::kNone;
  }
};

/// The service. Construct it, submit jobs from any thread, wait for
/// results, shut it down (the destructor drains). All public entry
/// points are thread-safe.
class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admit \p spec or answer why not. Never blocks on the scheduler.
  [[nodiscard]] Submission submit(JobSpec spec);

  /// Block until job \p id resolves; returns its result. Throws
  /// fhp::ConfigError for an id the service never issued.
  [[nodiscard]] JobResult wait(JobId id);

  /// Non-blocking mid-flight view: status, steps so far, and the
  /// tenant's last step-boundary counter publish. nullopt for unknown
  /// ids. Safe from any thread while workers step the tenant.
  [[nodiscard]] std::optional<JobProgress> progress(JobId id) const;

  /// How shutdown() treats unfinished work.
  enum class Shutdown : std::uint8_t {
    kDrain,   ///< finish every admitted job, then stop
    kCancel,  ///< resolve unfinished jobs kCancelled at the next quantum
  };

  /// Stop admission (further submits reject kShuttingDown), dispose of
  /// the backlog per \p mode, join the workers. Idempotent; the first
  /// call picks the mode. The destructor calls shutdown(kDrain).
  void shutdown(Shutdown mode = Shutdown::kDrain);

  /// Release the workers of a start_paused service (no-op otherwise).
  void start();

  [[nodiscard]] ServiceStats stats() const;

  /// The shared arena tenants carve from (the injected pool, or the
  /// service-owned one).
  [[nodiscard]] mem::PagePool& pool() noexcept;

  [[nodiscard]] int workers() const noexcept;
  [[nodiscard]] int quantum_steps() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The canonical end-state vector the service captures for
/// JobSpec::capture_state jobs: every leaf interior zone in Morton
/// order, then the final time. Exposed so bit-identity tests canonicalize
/// their solo baselines identically.
[[nodiscard]] std::vector<double> canonical_state(const mesh::AmrMesh& mesh,
                                                  double sim_time);

/// Resolve the default worker count: "svc.lanes" runtime param if
/// applied, else FLASHHP_SVC_LANES, else 2. Throws fhp::ConfigError on
/// junk values.
[[nodiscard]] int resolve_service_lanes();

/// Declare "svc.lanes", "svc.queue", "svc.max_tenants", "svc.quantum".
void declare_runtime_params(RuntimeParams& params);

/// Record non-empty values as overrides consulted by ServiceOptions
/// resolution ahead of the environment.
void apply_runtime_params(const RuntimeParams& params);

}  // namespace fhp::svc
