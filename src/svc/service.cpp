#include "svc/service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "flame/adr.hpp"
#include "hydro/hydro.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "perf/timers.hpp"
#include "rt/runtime.hpp"
#include "sim/driver.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/runtime_params.hpp"
#include "tlb/machine.hpp"

namespace fhp::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Runtime-param overrides (0 = unset, defer to environment/default).
std::atomic<int> g_param_lanes{0};
std::atomic<int> g_param_queue{0};
std::atomic<int> g_param_max_tenants{0};
std::atomic<int> g_param_quantum{0};

int env_positive_int(const char* var, int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read at service construction;
  // nothing in-process calls setenv.
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 1) {
    throw ConfigError(std::string(var) + "='" + raw +
                      "': expected a positive integer");
  }
  return static_cast<int>(value);
}

PoolSummary counter_delta(const mem::PoolCounters& before,
                          const mem::PoolCounters& after) {
  PoolSummary d;
  d.huge_allocs = after.huge_allocs - before.huge_allocs;
  d.remote_huge_allocs = after.remote_huge_allocs - before.remote_huge_allocs;
  d.thp_fallbacks = after.thp_fallbacks - before.thp_fallbacks;
  d.base_fallbacks = after.base_fallbacks - before.base_fallbacks;
  d.exhausted_events = after.exhausted_events - before.exhausted_events;
  d.backing_shortfalls = after.backing_shortfalls - before.backing_shortfalls;
  return d;
}

/// Everything one admitted job owns while it runs: its Runtime (private
/// perf context, arena, layout snapshot; block storage carved from the
/// service's shared pool), its setup, solver and driver. Declaration
/// order is the destruction contract: the runtime outlives the setup,
/// mesh and driver built on it, and the telemetry (installed on the
/// runtime) uninstalls before the runtime dies.
struct Tenant {
  std::unique_ptr<rt::Runtime> runtime;
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<sim::SedovSetup> sedov;
  std::unique_ptr<sim::CellularSetup> cellular;
  std::unique_ptr<sim::SupernovaSetup> supernova;
  std::unique_ptr<hydro::HydroSolver> hydro;
  std::unique_ptr<tlb::Machine> machine;
  perf::Timers timers;
  std::unique_ptr<sim::Driver> driver;

  [[nodiscard]] mesh::AmrMesh& mesh() {
    if (sedov) return sedov->mesh();
    if (cellular) return cellular->mesh();
    return supernova->mesh();
  }
  [[nodiscard]] flame::AdrFlame* flame() {
    if (cellular) return &cellular->flame();
    if (supernova) return &supernova->flame();
    return nullptr;
  }
};

/// One admitted job's record. The atomics are the streaming face:
/// progress() reads them (and the tenant runtime's published counter
/// slot) from arbitrary threads while the owning worker steps the
/// driver. Everything else is guarded by the service mutex — a job is
/// owned by exactly one worker between queue pops, and the mutex
/// handshake around pop/requeue is the happens-before edge.
struct Job {
  JobId id = 0;
  JobSpec spec;

  std::atomic<JobStatus> status{JobStatus::kQueued};
  std::atomic<int> steps{0};
  std::atomic<std::uint64_t> sim_time_bits{0};

  Clock::time_point submitted_at{};
  Clock::time_point started_at{};
  bool started = false;

  std::unique_ptr<Tenant> tenant;
  JobResult result;
  bool done = false;

  void store_sim_time(double t) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &t, sizeof bits);
    sim_time_bits.store(bits, std::memory_order_relaxed);
  }
  [[nodiscard]] double load_sim_time() const noexcept {
    const std::uint64_t bits = sim_time_bits.load(std::memory_order_relaxed);
    double t = 0.0;
    std::memcpy(&t, &bits, sizeof t);
    return t;
  }
};

}  // namespace

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kSedov: return "sedov";
    case JobKind::kCellular: return "cellular";
    case JobKind::kSupernova: return "supernova";
  }
  return "?";
}

const char* to_string(DeadlineClass deadline) noexcept {
  switch (deadline) {
    case DeadlineClass::kInteractive: return "interactive";
    case DeadlineClass::kBatch: return "batch";
  }
  return "?";
}

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kShuttingDown: return "shutting-down";
    case RejectReason::kBadSpec: return "bad-spec";
  }
  return "?";
}

const char* to_string(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

std::vector<double> canonical_state(const mesh::AmrMesh& mesh,
                                    double sim_time) {
  const mesh::MeshConfig& c = mesh.config();
  std::vector<double> out;
  std::vector<double> zone(static_cast<std::size_t>(c.nvar()));
  for (int b : mesh.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          mesh.unk().gather_zone(0, c.nvar(), i, j, k, b, zone.data());
          out.insert(out.end(), zone.begin(), zone.end());
        }
      }
    }
  }
  out.push_back(sim_time);
  return out;
}

int resolve_service_lanes() {
  const int param = g_param_lanes.load(std::memory_order_acquire);
  if (param > 0) return param;
  return env_positive_int(kSvcLanesEnvVar, 2);
}

void declare_runtime_params(RuntimeParams& params) {
  params.declare_int("svc.lanes", 0,
                     "service worker threads stepping tenants "
                     "(FLASHHP_SVC_LANES; 0 = resolve)");
  params.declare_int("svc.queue", 0,
                     "pending-job queue capacity (0 = default 16)");
  params.declare_int("svc.max_tenants", 0,
                     "max concurrently constructed tenants (0 = default 8)");
  params.declare_int("svc.quantum", 0,
                     "steps per fair-share scheduling quantum "
                     "(0 = default 4)");
}

void apply_runtime_params(const RuntimeParams& params) {
  auto apply_one = [&params](const char* name, std::atomic<int>& slot) {
    const long long value = params.get_int(name);
    if (value < 0) {
      throw ConfigError(std::string(name) + "=" + std::to_string(value) +
                        ": expected a non-negative integer");
    }
    slot.store(static_cast<int>(value), std::memory_order_release);
  };
  apply_one("svc.lanes", g_param_lanes);
  apply_one("svc.queue", g_param_queue);
  apply_one("svc.max_tenants", g_param_max_tenants);
  apply_one("svc.quantum", g_param_quantum);
}

// ---------------------------------------------------------------- Impl

struct Service::Impl {
  // Resolved configuration (immutable after construction).
  int workers_n = 0;
  int queue_capacity = 0;
  int max_tenants = 0;
  int quantum = 0;

  mem::PagePool owned_pool;
  mem::PagePool* pool = nullptr;

  mutable std::mutex mutex;
  std::condition_variable work_cv;  ///< workers wait for runnable jobs
  std::condition_variable done_cv;  ///< wait() waits for resolutions

  bool started = true;      ///< false while start_paused holds workers
  bool accepting = true;
  bool stop = false;        ///< shutdown has begun
  bool cancel_mode = false;
  int inflight = 0;         ///< jobs currently held by a worker
  JobId next_id = 1;

  std::map<JobId, std::shared_ptr<Job>> jobs;
  /// Ready queues by class: [0] interactive, [1] batch. A job is in at
  /// most one place: a queue, a worker's hands, or resolved.
  std::deque<std::shared_ptr<Job>> ready[2];
  int queued_jobs = 0;      ///< admitted jobs not yet holding a tenant
  int active_tenants = 0;
  ServiceStats stats;

  /// Serializes tenant construction: the shared pool hands out arenas
  /// one at a time anyway (setup-time work), and the Helm-table disk
  /// cache is not concurrent-build safe.
  std::mutex setup_mutex;

  std::mutex join_mutex;
  std::vector<std::thread> threads;

  // -- scheduling ------------------------------------------------------

  [[nodiscard]] std::shared_ptr<Job> pop_runnable_locked() {
    for (auto& queue : ready) {
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        // A fresh job needs a tenant slot; one mid-run already has its
        // tenant and is always runnable.
        if ((*it)->tenant == nullptr && !cancel_mode &&
            active_tenants >= max_tenants) {
          continue;
        }
        std::shared_ptr<Job> job = *it;
        queue.erase(it);
        return job;
      }
    }
    return nullptr;
  }

  [[nodiscard]] bool queues_empty() const {
    return ready[0].empty() && ready[1].empty();
  }

  /// Resolve \p job (mutex held): fill the result, free the tenant, wake
  /// waiters. The one place a job reaches a terminal status.
  void finalize_locked(const std::shared_ptr<Job>& job, JobStatus status,
                       std::string error) {
    JobResult& r = job->result;
    r.id = job->id;
    r.steps = job->steps.load(std::memory_order_relaxed);
    r.sim_time = job->load_sim_time();
    r.error = std::move(error);
    if (job->tenant) {
      Tenant& t = *job->tenant;
      r.counters = t.runtime->perf().published();
      if (status == JobStatus::kDone && job->spec.capture_state) {
        r.final_state = canonical_state(t.mesh(), t.driver->sim_time());
        if (flame::AdrFlame* f = t.flame()) {
          r.final_state.push_back(f->energy_released());
        }
      }
      if (status == JobStatus::kDone && !job->spec.timeline_path.empty() &&
          t.telemetry) {
        try {
          obs::write_timeline_file(job->spec.timeline_path, *t.telemetry);
        } catch (const std::exception& e) {
          FHP_LOG(kWarn) << "job " << job->id << ": timeline export to '"
                         << job->spec.timeline_path << "' failed: "
                         << e.what();
        }
      }
      job->tenant.reset();
      --active_tenants;
    } else if (job->status.load(std::memory_order_relaxed) ==
               JobStatus::kQueued) {
      --queued_jobs;
    }
    const Clock::time_point now = Clock::now();
    r.wall_seconds = seconds_between(job->submitted_at, now);
    r.queue_seconds = job->started
                          ? seconds_between(job->submitted_at, job->started_at)
                          : r.wall_seconds;
    r.status = status;
    job->status.store(status, std::memory_order_release);
    job->done = true;
    switch (status) {
      case JobStatus::kDone: ++stats.completed; break;
      case JobStatus::kFailed: ++stats.failed; break;
      case JobStatus::kCancelled: ++stats.cancelled; break;
      default: break;
    }
    done_cv.notify_all();
    work_cv.notify_all();  // a tenant slot may have been freed
  }

  [[nodiscard]] std::unique_ptr<Tenant> build_tenant(const JobSpec& spec,
                                                     JobId id) {
    auto tenant = std::make_unique<Tenant>();

    rt::RuntimeOptions ropts;
    ropts.lanes = spec.lanes;
    ropts.layout = spec.layout;
    ropts.policy = spec.policy;
    ropts.pool = pool;
    ropts.log_tag =
        spec.log_tag.empty() ? "job" + std::to_string(id) : spec.log_tag;
    tenant->runtime = std::make_unique<rt::Runtime>(ropts);
    rt::Runtime& runtime = *tenant->runtime;

    if (!spec.timeline_path.empty()) {
      obs::TelemetryOptions topts;
      topts.lanes = runtime.lanes();
      tenant->telemetry = std::make_unique<obs::Telemetry>(topts);
      tenant->telemetry->install(runtime);
    }

    sim::DriverOptions dopts;
    dopts.nsteps = spec.nsteps;
    dopts.trace_sample = spec.trace_sample;
    dopts.verbose = false;

    sim::DriverUnits units;
    units.runtime = &runtime;
    if (spec.trace_sample > 0) {
      tenant->machine =
          std::make_unique<tlb::Machine>(tlb::MachineParams{},
                                         &runtime.perf());
      units.machine = tenant->machine.get();
    }

    switch (spec.kind) {
      case JobKind::kSedov: {
        tenant->sedov = std::make_unique<sim::SedovSetup>(
            spec.sedov, spec.policy, runtime);
        tenant->hydro = std::make_unique<hydro::HydroSolver>(
            tenant->sedov->mesh(), tenant->sedov->eos());
        break;
      }
      case JobKind::kCellular: {
        tenant->cellular = std::make_unique<sim::CellularSetup>(
            spec.cellular, spec.policy, runtime);
        tenant->hydro = std::make_unique<hydro::HydroSolver>(
            tenant->cellular->mesh(), tenant->cellular->eos());
        units.flame = &tenant->cellular->flame();
        dopts.refine_vars = {mesh::var::kDens,
                             mesh::var::kFirstScalar + sim::cvar::kPhi};
        break;
      }
      case JobKind::kSupernova: {
        tenant->supernova = std::make_unique<sim::SupernovaSetup>(
            spec.supernova, spec.policy, runtime);
        hydro::HydroOptions hopts;
        hopts.cfl = 0.6;
        tenant->hydro = std::make_unique<hydro::HydroSolver>(
            tenant->supernova->mesh(), tenant->supernova->eos(), hopts);
        tenant->hydro->set_composition_fn(
            tenant->supernova->composition_fn());
        units.flame = &tenant->supernova->flame();
        units.gravity = &tenant->supernova->gravity();
        units.eos_trace = [setup = tenant->supernova.get()](tlb::Tracer& t,
                                                           int b) {
          setup->trace_eos_block(t, b);
        };
        dopts.refine_vars = {mesh::var::kDens,
                             mesh::var::kFirstScalar + sim::snvar::kPhi};
        break;
      }
    }

    tenant->driver = std::make_unique<sim::Driver>(
        tenant->mesh(), *tenant->hydro, tenant->timers, dopts, units);
    return tenant;
  }

  /// Handle one popped job: construct its tenant if fresh, advance it by
  /// one quantum, then resolve or requeue. Enters and leaves with
  /// \p lock held; unlocks around the slow work.
  void process(std::unique_lock<std::mutex>& lock,
               const std::shared_ptr<Job>& job) {
    if (cancel_mode) {
      finalize_locked(job, JobStatus::kCancelled, {});
      return;
    }

    if (!job->tenant) {
      ++active_tenants;  // reserve the slot before dropping the lock
      lock.unlock();
      std::unique_ptr<Tenant> tenant;
      PoolSummary delta;
      std::string error;
      {
        std::lock_guard<std::mutex> setup(setup_mutex);
        const mem::PoolCounters before = pool->counters();
        try {
          tenant = build_tenant(job->spec, job->id);
        } catch (const std::exception& e) {
          error = e.what();
        }
        delta = counter_delta(before, pool->counters());
      }
      lock.lock();
      job->result.pool = delta;
      if (!tenant) {
        --active_tenants;
        finalize_locked(job, JobStatus::kFailed, std::move(error));
        return;
      }
      job->tenant = std::move(tenant);
      job->started_at = Clock::now();
      job->started = true;
      --queued_jobs;
      job->status.store(JobStatus::kRunning, std::memory_order_release);
      if (cancel_mode) {  // shutdown(kCancel) raced the setup
        finalize_locked(job, JobStatus::kCancelled, {});
        return;
      }
    }

    sim::Driver& driver = *job->tenant->driver;
    lock.unlock();
    bool finished = false;
    std::string error;
    try {
      for (int n = 0; n < quantum && !finished; ++n) {
        if (!driver.step_once()) {
          finished = true;
          break;
        }
        job->steps.store(driver.steps(), std::memory_order_relaxed);
        job->store_sim_time(driver.sim_time());
        if (driver.steps() >= job->spec.nsteps) finished = true;
      }
    } catch (const std::exception& e) {
      error = e.what();
    }
    lock.lock();
    if (!error.empty()) {
      finalize_locked(job, JobStatus::kFailed, std::move(error));
    } else if (cancel_mode) {
      finalize_locked(job, JobStatus::kCancelled, {});
    } else if (finished) {
      finalize_locked(job, JobStatus::kDone, {});
    } else {
      // Quantum spent: back of its class queue — round-robin fair share.
      const int cls =
          job->spec.deadline == DeadlineClass::kInteractive ? 0 : 1;
      ready[cls].push_back(job);
      work_cv.notify_one();
    }
  }

  void worker_main() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      if (started) {
        if (std::shared_ptr<Job> job = pop_runnable_locked()) {
          ++inflight;
          process(lock, job);
          --inflight;
          if (stop) work_cv.notify_all();
          continue;
        }
        if (stop && inflight == 0 && queues_empty()) {
          work_cv.notify_all();
          return;
        }
      }
      work_cv.wait(lock);
    }
  }
};

// ------------------------------------------------------------- Service

Service::Service(ServiceOptions options) : impl_(std::make_unique<Impl>()) {
  auto resolve = [](int explicit_value, std::atomic<int>& param,
                    int fallback) {
    if (explicit_value > 0) return explicit_value;
    const int p = param.load(std::memory_order_acquire);
    return p > 0 ? p : fallback;
  };
  impl_->workers_n = options.workers > 0 ? options.workers
                                         : resolve_service_lanes();
  impl_->queue_capacity = resolve(options.queue_capacity, g_param_queue, 16);
  impl_->max_tenants = resolve(options.max_tenants, g_param_max_tenants, 8);
  impl_->quantum = resolve(options.quantum_steps, g_param_quantum, 4);

  if (options.pool != nullptr) {
    impl_->pool = options.pool;
  } else {
    impl_->pool = &impl_->owned_pool;
    if (options.pool_config.has_value()) {
      impl_->owned_pool.init(*options.pool_config);
    }
  }

  impl_->started = !options.start_paused;
  impl_->threads.reserve(static_cast<std::size_t>(impl_->workers_n));
  for (int w = 0; w < impl_->workers_n; ++w) {
    impl_->threads.emplace_back([this] { impl_->worker_main(); });
  }
  FHP_LOG(kInfo) << "svc: service up, " << impl_->workers_n
                 << " workers, queue " << impl_->queue_capacity
                 << ", max_tenants " << impl_->max_tenants << ", quantum "
                 << impl_->quantum;
}

Service::~Service() { shutdown(Shutdown::kDrain); }

Submission Service::submit(JobSpec spec) {
  if (spec.lanes < 1 || spec.lanes > par::kMaxLanes || spec.nsteps < 1 ||
      spec.trace_sample < 0) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->stats.rejected;
    return {0, RejectReason::kBadSpec};
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->accepting) {
    ++impl_->stats.rejected;
    return {0, RejectReason::kShuttingDown};
  }
  if (impl_->queued_jobs >= impl_->queue_capacity) {
    ++impl_->stats.rejected;
    return {0, RejectReason::kQueueFull};
  }
  auto job = std::make_shared<Job>();
  job->id = impl_->next_id++;
  job->spec = std::move(spec);
  job->submitted_at = Clock::now();
  impl_->jobs.emplace(job->id, job);
  const int cls = job->spec.deadline == DeadlineClass::kInteractive ? 0 : 1;
  impl_->ready[cls].push_back(job);
  ++impl_->queued_jobs;
  ++impl_->stats.submitted;
  impl_->work_cv.notify_one();
  return {job->id, RejectReason::kNone};
}

JobResult Service::wait(JobId id) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    throw ConfigError("svc: wait() on unknown job id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  impl_->done_cv.wait(lock, [&job] { return job->done; });
  return job->result;
}

std::optional<JobProgress> Service::progress(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return std::nullopt;
  const std::shared_ptr<Job>& job = it->second;
  JobProgress p;
  p.status = job->status.load(std::memory_order_acquire);
  p.steps = job->steps.load(std::memory_order_relaxed);
  p.sim_time = job->load_sim_time();
  if (job->tenant) {
    // The tenant may be mid-step on its worker right now: published()
    // only touches the mutex-guarded snapshot, never the lane shards.
    p.counters = job->tenant->runtime->perf().published();
  } else if (job->done) {
    p.counters = job->result.counters;
  }
  return p;
}

void Service::shutdown(Shutdown mode) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->stop) {
      impl_->stop = true;
      impl_->accepting = false;
      impl_->cancel_mode = (mode == Shutdown::kCancel);
      impl_->started = true;  // release a paused scheduler to dispose
    }
    impl_->work_cv.notify_all();
  }
  std::lock_guard<std::mutex> join(impl_->join_mutex);
  for (std::thread& t : impl_->threads) {
    if (t.joinable()) t.join();
  }
}

void Service::start() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->started = true;
  impl_->work_cv.notify_all();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ServiceStats s = impl_->stats;
  s.queued = impl_->queued_jobs;
  s.active_tenants = impl_->active_tenants;
  return s;
}

mem::PagePool& Service::pool() noexcept { return *impl_->pool; }

int Service::workers() const noexcept { return impl_->workers_n; }

int Service::quantum_steps() const noexcept { return impl_->quantum; }

}  // namespace fhp::svc
