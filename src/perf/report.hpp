/// \file report.hpp
/// \brief Render instrumented-region statistics as the paper's measures.
///
/// After a run, the RegionRegistry holds counter totals per named region
/// ("eos", "hydro", "flame", "grid"). RegionReport derives the five PAPI
/// measures of the paper for each and renders a summary table — the
/// in-library equivalent of the authors' post-processing that produced
/// Tables I and II.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "perf/events.hpp"
#include "perf/perf_context.hpp"
#include "perf/region.hpp"

namespace fhp::perf {

/// One region's derived measures.
struct RegionMeasures {
  std::string name;
  std::uint64_t entries = 0;
  MeasureSet measures;
  double wall_seconds = 0;  ///< accumulated host wall clock in the region
};

/// Snapshot of every region currently in the registry.
class RegionReport {
 public:
  /// \param clock_hz modeled clock for the cycles -> seconds conversion.
  /// The registry is always explicit — there is no process-default
  /// report; pass the context you measured with (usually
  /// `runtime.perf()`).
  RegionReport(double clock_hz, const RegionRegistry& registry);

  /// Report over \p context's regions.
  RegionReport(const PerfContext& context, double clock_hz = 1.8e9)
      : RegionReport(clock_hz, context.regions()) {}

  [[nodiscard]] const std::vector<RegionMeasures>& regions() const noexcept {
    return regions_;
  }

  /// Measures for one region; zeros if absent.
  [[nodiscard]] RegionMeasures get(std::string_view name) const;

  /// Render an aligned table (one row per region, the paper's columns).
  void render(std::ostream& os) const;

 private:
  double clock_hz_;
  std::vector<RegionMeasures> regions_;
};

}  // namespace fhp::perf
