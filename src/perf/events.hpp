/// \file events.hpp
/// \brief Performance event identifiers and counter sets.
///
/// The paper instruments FLASH with a PAPI event subset that "can
/// characterize overall performance — use of SVE measured as SVE
/// instructions per cycle, memory bandwidth, DTLB misses, and the number of
/// hardware cycles". We model the same set. Counter values flow from one
/// of several backends (software model, perf_event, wall clock) into
/// CounterSet snapshots; RegionStats accumulates deltas per code region.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace fhp::perf {

/// The events flashhp counts. kWallNanos is always captured; hardware-ish
/// events come from the software machine model and/or perf_event.
enum class Event : std::uint8_t {
  kCycles = 0,      ///< modeled/HW CPU cycles (PAPI_TOT_CYC analog)
  kInstructions,    ///< retired instructions (PAPI_TOT_INS analog)
  kVectorOps,       ///< SVE-class vector instructions (paper's SVE measure)
  kDtlbMisses,      ///< DTLB misses requiring a page-table walk
  kTlbWalkCycles,   ///< cycles spent in page-table walks (model detail)
  kBytesRead,       ///< bytes moved from memory (for the GB/s measure)
  kBytesWritten,    ///< bytes moved to memory
  kL1Misses,        ///< L1D misses (model detail)
  kL2Misses,        ///< L2 misses = memory traffic events
  kWallNanos,       ///< wall-clock nanoseconds
};

inline constexpr std::size_t kNumEvents = 10;

/// PAPI-flavoured names, for reports ("PAPI_TOT_CYC", ...).
[[nodiscard]] std::string_view event_name(Event e) noexcept;

/// A value for every event. Plain aggregate; supports snapshot arithmetic.
struct CounterSet {
  std::array<std::uint64_t, kNumEvents> values{};

  [[nodiscard]] std::uint64_t operator[](Event e) const noexcept {
    return values[static_cast<std::size_t>(e)];
  }
  std::uint64_t& operator[](Event e) noexcept {
    return values[static_cast<std::size_t>(e)];
  }

  /// Element-wise this - earlier (wraps are the caller's problem; our
  /// sources are 64-bit and monotonic).
  [[nodiscard]] CounterSet since(const CounterSet& earlier) const noexcept {
    CounterSet d;
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      d.values[i] = values[i] - earlier.values[i];
    }
    return d;
  }

  CounterSet& operator+=(const CounterSet& other) noexcept {
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      values[i] += other.values[i];
    }
    return *this;
  }
};

/// The five measures of the paper's Tables I/II (plus the FLASH timer,
/// which is reported separately by the driver).
struct MeasureSet {
  double hardware_cycles = 0;      ///< "Hardware (cycles)"
  double time_seconds = 0;         ///< "Time (s)" = cycles / clock_hz
  double vector_per_cycle = 0;     ///< "SVE Instructions/cycle"
  double memory_gbytes_per_s = 0;  ///< "Memory (Gbytes/s)"
  double dtlb_misses_per_s = 0;    ///< "DTLB misses (1/s)"
};

/// Derive the paper's measures from a counter delta.
/// \param clock_hz the modeled core frequency (Ookami A64FX: 1.8 GHz).
[[nodiscard]] MeasureSet derive_measures(const CounterSet& delta,
                                         double clock_hz) noexcept;

/// Ratio of each measure (with/without), Figure 1 style.
struct MeasureRatios {
  double hardware_cycles = 0;
  double time_seconds = 0;
  double vector_per_cycle = 0;
  double memory_gbytes_per_s = 0;
  double dtlb_misses_per_s = 0;
  double flash_timer = 0;
};

[[nodiscard]] MeasureRatios ratios(const MeasureSet& with_hp,
                                   double with_hp_flash_timer,
                                   const MeasureSet& without_hp,
                                   double without_hp_flash_timer) noexcept;

}  // namespace fhp::perf
