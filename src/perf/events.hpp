/// \file events.hpp
/// \brief Performance event identifiers, counter sets, derived measures.
///
/// The paper instruments FLASH with a PAPI event subset that "can
/// characterize overall performance — use of SVE measured as SVE
/// instructions per cycle, memory bandwidth, DTLB misses, and the number of
/// hardware cycles". We model the same set. Counter values flow from one
/// of several backends (software model, perf_event, wall clock) into
/// CounterSet snapshots; RegionStats accumulates deltas per code region.
///
/// The vocabulary itself — Event, CounterSet, event_name, plus the
/// CounterSink producer interface — lives in support/events.hpp so that
/// producers below the perf layer (the tlb machine model) can use it
/// without an include edge that violates the module DAG. This header
/// re-exports it and adds the report-side derived-measure types.

#pragma once

#include "support/events.hpp"  // IWYU pragma: export

namespace fhp::perf {

/// The five measures of the paper's Tables I/II (plus the FLASH timer,
/// which is reported separately by the driver).
struct MeasureSet {
  double hardware_cycles = 0;      ///< "Hardware (cycles)"
  double time_seconds = 0;         ///< "Time (s)" = cycles / clock_hz
  double vector_per_cycle = 0;     ///< "SVE Instructions/cycle"
  double memory_gbytes_per_s = 0;  ///< "Memory (Gbytes/s)"
  double dtlb_misses_per_s = 0;    ///< "DTLB misses (1/s)"
};

/// Derive the paper's measures from a counter delta.
/// \param clock_hz the modeled core frequency (Ookami A64FX: 1.8 GHz).
[[nodiscard]] MeasureSet derive_measures(const CounterSet& delta,
                                         double clock_hz) noexcept;

/// Ratio of each measure (with/without), Figure 1 style.
struct MeasureRatios {
  double hardware_cycles = 0;
  double time_seconds = 0;
  double vector_per_cycle = 0;
  double memory_gbytes_per_s = 0;
  double dtlb_misses_per_s = 0;
  double flash_timer = 0;
};

[[nodiscard]] MeasureRatios ratios(const MeasureSet& with_hp,
                                   double with_hp_flash_timer,
                                   const MeasureSet& without_hp,
                                   double without_hp_flash_timer) noexcept;

}  // namespace fhp::perf
