#include "perf/region.hpp"

#include <optional>

#include "perf/perf_context.hpp"
#include "perf/perf_event_backend.hpp"

namespace fhp::perf {

namespace {

/// Lazily constructed PMU group shared by all regions. Regions may nest
/// but start/stop on one thread, so reading shared monotonic totals at
/// start/stop is race-free.
PerfEventBackend* hw_backend() {
  static PerfEventBackend backend;
  return &backend;
}

bool g_hw_capture = false;

/// Per-region hardware start snapshots keyed by region address. Regions
/// are scoped objects so a small thread_local stack suffices.
thread_local std::vector<std::pair<const PerfRegion*, CounterSet>>
    t_hw_starts;

}  // namespace

void set_hardware_capture(bool enabled) {
  g_hw_capture = enabled && hw_backend()->available();
}

bool hardware_capture_active() { return g_hw_capture; }

void RegionRegistry::accumulate(std::string_view name, const CounterSet& delta,
                                const CounterSet* hw_delta) {
  fhp::MutexLock lock(mutex_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(name), RegionStats{}).first;
  }
  it->second.totals += delta;
  if (hw_delta != nullptr) {
    it->second.hw_totals += *hw_delta;
    it->second.hw_valid = true;
  }
  ++it->second.entries;
}

RegionStats RegionRegistry::get(std::string_view name) const {
  fhp::MutexLock lock(mutex_);
  auto it = stats_.find(name);
  return it == stats_.end() ? RegionStats{} : it->second;
}

std::vector<std::string> RegionRegistry::names() const {
  fhp::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(stats_.size());
  for (const auto& [name, s] : stats_) out.push_back(name);
  return out;
}

void RegionRegistry::reset() {
  fhp::MutexLock lock(mutex_);
  stats_.clear();
}

PerfRegion::PerfRegion(PerfContext& context, std::string_view name)
    : context_(context),
      name_(name),
      start_(context.snapshot()),
      wall_start_(std::chrono::steady_clock::now()) {
  if (g_hw_capture) {
    t_hw_starts.emplace_back(this, hw_backend()->read());
  }
}

void PerfRegion::stop() {
  if (!active_) return;
  active_ = false;

  CounterSet end = context_.snapshot();
  CounterSet delta = end.since(start_);
  const auto wall_end = std::chrono::steady_clock::now();
  delta[Event::kWallNanos] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                           wall_start_)
          .count());

  std::optional<CounterSet> hw_delta;
  if (!t_hw_starts.empty() && t_hw_starts.back().first == this) {
    hw_delta = hw_backend()->read().since(t_hw_starts.back().second);
    t_hw_starts.pop_back();
  }
  context_.regions().accumulate(name_, delta,
                                hw_delta ? &*hw_delta : nullptr);
}

PerfRegion::~PerfRegion() { stop(); }

}  // namespace fhp::perf
