#include "perf/perf_context.hpp"

namespace fhp::perf {

void PerfContext::sink_counters(const CounterSet& delta) noexcept {
  // Writer-role witness: CounterSink producers are serial by contract
  // (support/events.hpp) — in-tree the only caller is the tlb machine
  // model's commit(), which runs on the single tracing thread between
  // parallel regions, so that thread is lane 0's sole shard writer here.
  RegionWitness witness;
  add_all(delta);
}

void PerfContext::publish() {
  const CounterSet current = snapshot();
  MutexLock lock(publish_mutex_);
  published_.counters = current;
  ++published_.seq;
}

PublishedCounters PerfContext::published() const {
  MutexLock lock(publish_mutex_);
  return published_;
}

// The process-wide context, kept only as the substrate of the deprecated
// shims and rt::Runtime::process_default(). New code takes a PerfContext&
// (usually runtime.perf()). fhp-lint: allow(singleton-instance)
PerfContext& PerfContext::global() noexcept {
  static PerfContext context;
  return context;
}

}  // namespace fhp::perf
