#include "perf/perf_context.hpp"

namespace fhp::perf {

PerfContext& PerfContext::global() noexcept {
  static PerfContext context;
  return context;
}

}  // namespace fhp::perf
