#include "perf/perf_context.hpp"

namespace fhp::perf {

void PerfContext::publish() {
  const CounterSet current = snapshot();
  MutexLock lock(publish_mutex_);
  published_.counters = current;
  ++published_.seq;
}

PublishedCounters PerfContext::published() const {
  MutexLock lock(publish_mutex_);
  return published_;
}

PerfContext& PerfContext::global() noexcept {
  static PerfContext context;
  return context;
}

}  // namespace fhp::perf
