#include "perf/soft_counters.hpp"

namespace fhp::perf {

SoftCounters& SoftCounters::instance() noexcept {
  static SoftCounters counters;
  return counters;
}

}  // namespace fhp::perf
