/// \file timers.hpp
/// \brief FLASH-style hierarchical wall-clock timers.
///
/// FLASH's Timers unit (Timers_start / Timers_stop / Timers_getSummary)
/// records elapsed time per named, nested timer and prints an indented
/// summary at the end of the run — the paper's "FLASH Timer (s)" rows come
/// from it. This is a faithful C++ port: timers nest, a name used at two
/// different stack depths is two nodes, and the summary shows
/// seconds / calls / percent-of-parent.

#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fhp::perf {

/// Hierarchical timer collection. Not thread-safe (FLASH's isn't either);
/// use one per driver.
class Timers {
 public:
  Timers();
  ~Timers();
  Timers(const Timers&) = delete;
  Timers& operator=(const Timers&) = delete;

  /// Start a nested timer. Starting the same name twice without stopping
  /// throws fhp::ConfigError (mirrors FLASH's misuse warning, strictly).
  void start(std::string_view name);

  /// Stop the innermost running timer; its name must match.
  void stop(std::string_view name);

  /// Total accumulated seconds for the *root-level* timer of this name
  /// (sums all nodes with that name anywhere in the tree).
  [[nodiscard]] double seconds(std::string_view name) const;

  /// Number of start/stop cycles summed over nodes with this name.
  [[nodiscard]] std::uint64_t calls(std::string_view name) const;

  /// Seconds elapsed since construction (the "elapsed time for the
  /// simulation" the paper reports).
  [[nodiscard]] double elapsed() const;

  /// Print the FLASH-like indented summary.
  void summary(std::ostream& os) const;

  /// Drop all timers and restart the elapsed clock.
  void reset();

  /// RAII helper: Timers::Scope t(timers, "hydro");
  class Scope {
   public:
    Scope(Timers& timers, std::string_view name)
        : timers_(timers), name_(name) {
      timers_.start(name_);
    }
    ~Scope() { timers_.stop(name_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timers& timers_;
    std::string name_;
  };

 private:
  struct Node;
  Node* find_or_create_child(Node& parent, std::string_view name);
  std::unique_ptr<Node> root_;
  std::vector<Node*> stack_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace fhp::perf
