/// \file soft_counters.hpp
/// \brief Process-wide software counters fed by the machine model.
///
/// The TLB/cache/core model (src/tlb) — and any other instrumented code —
/// bumps these counters; PerfRegion snapshots them. This decouples perf
/// (the PAPI-like API) from tlb (one producer of numbers), the same way
/// PAPI decouples the API from the PMU.
///
/// Counters are plain (non-atomic) per the library's single-threaded
/// kernel execution model; an explicit mutex-free design keeps the
/// increment on the simulation hot path to one add.
///
/// Thread-safety contract: all mutation happens on the single kernel
/// (simulation) thread. The mutating methods are deliberately outside
/// the lock discipline and are marked FHP_NO_THREAD_SAFETY_ANALYSIS to
/// record that this is a design decision, not an oversight; the `tsan`
/// CMake preset exists to catch any future multi-threaded misuse.

#pragma once

#include <cstdint>

#include "perf/events.hpp"
#include "support/thread_annotations.hpp"

namespace fhp::perf {

/// The process-wide counter block.
class SoftCounters {
 public:
  static SoftCounters& instance() noexcept;

  /// Add \p amount to \p event. Kernel thread only (see file comment).
  void add(Event event, std::uint64_t amount) noexcept
      FHP_NO_THREAD_SAFETY_ANALYSIS {
    counters_[static_cast<std::size_t>(event)] += amount;
  }

  /// Bulk add (one call per traced basic block from the machine model).
  /// Kernel thread only (see file comment).
  void add_all(const CounterSet& delta) noexcept
      FHP_NO_THREAD_SAFETY_ANALYSIS {
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      counters_[i] += delta.values[i];
    }
  }

  /// Snapshot current totals (wall clock filled in by the caller/backend).
  [[nodiscard]] CounterSet snapshot() const noexcept
      FHP_NO_THREAD_SAFETY_ANALYSIS {
    CounterSet s;
    for (std::size_t i = 0; i < kNumEvents; ++i) s.values[i] = counters_[i];
    return s;
  }

  /// Zero all counters (tests and between-experiment hygiene).
  /// Kernel thread only (see file comment).
  void reset() noexcept FHP_NO_THREAD_SAFETY_ANALYSIS {
    for (auto& c : counters_) c = 0;
  }

 private:
  SoftCounters() = default;
  std::uint64_t counters_[kNumEvents] = {};
};

}  // namespace fhp::perf
