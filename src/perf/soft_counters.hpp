/// \file soft_counters.hpp
/// \brief Deprecated compat shim over `perf::PerfContext::global()`.
///
/// SoftCounters used to be the process-wide counter block with an
/// explicit single-kernel-thread contract. The block-parallel sweep
/// engine (fhp::par) replaced it with the sharded, context-first
/// `perf::PerfContext` (perf_context.hpp); this class survives for one
/// release as a stateless forwarder so out-of-tree callers keep
/// compiling. New code must take a `PerfContext&` instead — the
/// `singleton-instance` lint rule (tools/flashhp_lint.py) rejects new
/// `::instance()` call sites outside this shim.

#pragma once

#include <cstdint>

#include "perf/events.hpp"
#include "perf/perf_context.hpp"

namespace fhp::perf {

/// Deprecated forwarder to the global PerfContext's counters.
class SoftCounters {
 public:
  static SoftCounters& instance() noexcept;

  /// Add \p amount to \p event on the calling lane's shard.
  void add(Event event, std::uint64_t amount) noexcept FHP_REQUIRES_REGION {
    PerfContext::global().add(event, amount);
  }

  /// Bulk add (one call per committed machine-model quantum).
  void add_all(const CounterSet& delta) noexcept FHP_REQUIRES_REGION {
    PerfContext::global().add_all(delta);
  }

  /// Snapshot current totals (wall clock filled in by the caller/backend).
  [[nodiscard]] CounterSet snapshot() const noexcept FHP_EXCLUDES_REGION {
    return PerfContext::global().snapshot();
  }

  /// Zero all counters (tests and between-experiment hygiene).
  void reset() noexcept FHP_EXCLUDES_REGION { PerfContext::global().reset(); }

 private:
  SoftCounters() = default;
};

}  // namespace fhp::perf
