/// \file soft_counters.hpp
/// \brief Process-wide software counters fed by the machine model.
///
/// The TLB/cache/core model (src/tlb) — and any other instrumented code —
/// bumps these counters; PerfRegion snapshots them. This decouples perf
/// (the PAPI-like API) from tlb (one producer of numbers), the same way
/// PAPI decouples the API from the PMU.
///
/// Counters are plain (non-atomic) per the library's single-threaded
/// kernel execution model; an explicit mutex-free design keeps the
/// increment on the simulation hot path to one add.

#pragma once

#include <cstdint>

#include "perf/events.hpp"

namespace fhp::perf {

/// The process-wide counter block.
class SoftCounters {
 public:
  static SoftCounters& instance() noexcept;

  /// Add \p amount to \p event.
  void add(Event event, std::uint64_t amount) noexcept {
    counters_[static_cast<std::size_t>(event)] += amount;
  }

  /// Bulk add (one call per traced basic block from the machine model).
  void add_all(const CounterSet& delta) noexcept {
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      counters_[i] += delta.values[i];
    }
  }

  /// Snapshot current totals (wall clock filled in by the caller/backend).
  [[nodiscard]] CounterSet snapshot() const noexcept {
    CounterSet s;
    for (std::size_t i = 0; i < kNumEvents; ++i) s.values[i] = counters_[i];
    return s;
  }

  /// Zero all counters (tests and between-experiment hygiene).
  void reset() noexcept {
    for (auto& c : counters_) c = 0;
  }

 private:
  SoftCounters() = default;
  std::uint64_t counters_[kNumEvents] = {};
};

}  // namespace fhp::perf
