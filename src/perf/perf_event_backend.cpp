#include "perf/perf_event_backend.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

namespace fhp::perf {

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      perf_event_open(&attr, 0 /*self*/, -1 /*any cpu*/, group_fd, 0));
}

std::uint64_t read_counter(int fd) noexcept {
  if (fd < 0) return 0;
  std::uint64_t value = 0;
  if (::read(fd, &value, sizeof value) != sizeof value) return 0;
  return value;
}

}  // namespace

PerfEventBackend::PerfEventBackend() {
  cycles_fd_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (cycles_fd_ < 0) return;  // no PMU access at all
  instructions_fd_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, cycles_fd_);
  const std::uint64_t dtlb_read_miss =
      PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
      (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
  dtlb_fd_ = open_counter(PERF_TYPE_HW_CACHE, dtlb_read_miss, cycles_fd_);
}

PerfEventBackend::~PerfEventBackend() {
  for (int fd : {cycles_fd_, instructions_fd_, dtlb_fd_}) {
    if (fd >= 0) ::close(fd);
  }
}

CounterSet PerfEventBackend::read() const noexcept {
  CounterSet s;
  s[Event::kCycles] = read_counter(cycles_fd_);
  s[Event::kInstructions] = read_counter(instructions_fd_);
  s[Event::kDtlbMisses] = read_counter(dtlb_fd_);
  return s;
}

std::optional<int> PerfEventBackend::paranoid_level() {
  // A single root-owned integer knob with no kernel-version field drift,
  // so it does not justify an injectable-path reader in src/mem.
  // fhp-lint: allow(procfs-hygiene)
  std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
  int level = 0;
  if (in >> level) return level;
  return std::nullopt;
}

}  // namespace fhp::perf
