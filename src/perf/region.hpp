/// \file region.hpp
/// \brief RAII instrumented regions — the paper's Fortran PAPI object.
///
/// The paper instruments FLASH with "a Fortran object to interface with
/// the PAPI routines": construction starts the counters, finalization
/// stops them, and a module stores an identifier for the instrumented
/// region. (Their finalizer broke under the Fujitsu compiler — §II — and
/// they fell back to hard-coded calls; C++ destructors make the RAII form
/// reliable.) PerfRegion is that object: it snapshots a PerfContext's
/// software counters (and optionally the hardware PMU) on entry, and
/// accumulates the delta into a named slot of that context's
/// RegionRegistry on exit.
///
/// Regions start and stop outside parallel regions, on one thread; only
/// the counter *increments* between start and stop may come from pool
/// lanes (they land in per-lane shards, see perf_context.hpp).

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "perf/events.hpp"
#include "support/lane.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace fhp::perf {

class PerfContext;

/// Accumulated statistics for one named region.
struct RegionStats {
  CounterSet totals;           ///< summed deltas from the software counters
  CounterSet hw_totals;        ///< summed deltas from perf_event (if open)
  std::uint64_t entries = 0;   ///< number of times the region ran
  bool hw_valid = false;       ///< hw_totals has real data
};

/// Registry of instrumented regions. Owned by a PerfContext; construct
/// standalone instances only in tests.
class RegionRegistry {
 public:
  RegionRegistry() = default;

  /// Merge a delta into \p name.
  void accumulate(std::string_view name, const CounterSet& delta,
                  const CounterSet* hw_delta) FHP_EXCLUDES(mutex_);

  /// Stats for one region (zeros if never entered).
  [[nodiscard]] RegionStats get(std::string_view name) const
      FHP_EXCLUDES(mutex_);

  /// All region names with data, sorted.
  [[nodiscard]] std::vector<std::string> names() const FHP_EXCLUDES(mutex_);

  /// Clear everything (between experiment arms).
  void reset() FHP_EXCLUDES(mutex_);

 private:
  mutable fhp::Mutex mutex_;
  std::map<std::string, RegionStats, std::less<>> stats_
      FHP_GUARDED_BY(mutex_);
};

/// RAII region: counts everything between construction and destruction
/// against \p name in \p context. Cheap: two counter snapshots and a
/// clock read.
class PerfRegion {
 public:
  /// Regions snapshot the context's shards on entry and exit, so they
  /// start and stop only while the lanes are quiescent (see file
  /// comment) — FHP_EXCLUDES_REGION enforces it statically.
  PerfRegion(PerfContext& context, std::string_view name)
      FHP_EXCLUDES_REGION;

  ~PerfRegion();
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  /// Stop early (idempotent; the destructor then does nothing).
  void stop() FHP_EXCLUDES_REGION;

 private:
  PerfContext& context_;
  std::string name_;
  CounterSet start_;
  std::chrono::steady_clock::time_point wall_start_;
  bool active_ = true;
};

/// Enable/disable hardware (perf_event) capture for subsequently created
/// PerfRegions. Off by default; turning it on probes the PMU once and
/// silently stays off if the kernel denies access.
void set_hardware_capture(bool enabled);
[[nodiscard]] bool hardware_capture_active();

}  // namespace fhp::perf
