#include "perf/report.hpp"

#include <ostream>

#include "support/table_writer.hpp"

namespace fhp::perf {

RegionReport::RegionReport(double clock_hz, const RegionRegistry& registry)
    : clock_hz_(clock_hz) {
  const std::vector<std::string> names = registry.names();
  regions_.reserve(names.size());
  for (const std::string& name : names) {
    const RegionStats stats = registry.get(name);
    RegionMeasures rm;
    rm.name = name;
    rm.entries = stats.entries;
    rm.measures = derive_measures(stats.totals, clock_hz_);
    rm.wall_seconds =
        static_cast<double>(stats.totals[Event::kWallNanos]) * 1e-9;
    regions_.push_back(std::move(rm));
  }
}

RegionMeasures RegionReport::get(std::string_view name) const {
  for (const RegionMeasures& rm : regions_) {
    if (rm.name == name) return rm;
  }
  return {};
}

void RegionReport::render(std::ostream& os) const {
  TableWriter t("instrumented regions (modeled measures)");
  t.set_header({"Region", "Entries", "Cycles", "Time (s)", "Vec/cycle",
                "GB/s", "DTLB/s", "Wall (s)"});
  for (const RegionMeasures& rm : regions_) {
    t.add_row({rm.name, std::to_string(rm.entries),
               format_measure(rm.measures.hardware_cycles),
               format_measure(rm.measures.time_seconds),
               format_ratio(rm.measures.vector_per_cycle),
               format_measure(rm.measures.memory_gbytes_per_s),
               format_measure(rm.measures.dtlb_misses_per_s),
               format_measure(rm.wall_seconds)});
  }
  t.render(os);
}

}  // namespace fhp::perf
