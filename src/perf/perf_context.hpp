/// \file perf_context.hpp
/// \brief Explicit instrumentation context with per-lane counter shards.
///
/// PerfContext replaces the process-wide SoftCounters / RegionRegistry
/// singletons with an object you construct, pass to the units that
/// produce numbers (tlb::Machine, Driver, bench arms), and read results
/// from. Two things motivated the redesign:
///
///   1. The block-parallel sweep engine (fhp::par) breaks the old
///      single-kernel-thread contract. Counters are now *sharded*: each
///      lane owns a cache-line-aligned shard and the hot-path increment
///      is still exactly one unsynchronized add — no atomics, no false
///      sharing. `snapshot()` sums the shards; uint64 addition is exact
///      and order-independent, so totals are bit-identical regardless of
///      how many lanes contributed (one half of the determinism
///      guarantee; see DESIGN.md "Threading model").
///   2. Benches and tests kept tripping over shared ambient state
///      (`reset()` hygiene between arms). A context scopes counters to
///      an experiment arm by construction.
///
/// Shard synchronization contract: lanes write only their own shard
/// inside a `par::parallel_for` region, and `snapshot()`/`reset()` run
/// outside any region on the thread that invoked it. The pool's
/// start/finish handshake provides the happens-before edge from worker
/// writes to the caller's reads, so this is data-race-free without
/// atomics (the `tsan` preset enforces it).
///
/// The old SoftCounters / RegionRegistry::instance() singletons survived
/// one release as deprecated compat shims forwarding to
/// `PerfContext::global()`; they are now removed. Code takes a
/// PerfContext (or reaches the shared one via `PerfContext::global()`).

#pragma once

#include <cstdint>

#include "perf/events.hpp"
#include "perf/region.hpp"
#include "support/contracts.hpp"
#include "support/lane.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace fhp::perf {

/// A mutex-guarded copy of the counters, taken at a moment when
/// snapshot() was legal. `seq` counts publishes (0 = none yet) so a
/// reader can tell "fresh" from "same as last time".
struct PublishedCounters {
  CounterSet counters;
  std::uint64_t seq = 0;
};

/// One lane's private counter block, padded to a cache line so
/// neighboring lanes never write-share.
struct alignas(64) CounterShard {
  std::uint64_t values[kNumEvents] = {};
};

/// An instrumentation scope: sharded software counters plus the region
/// registry that PerfRegions commit into. Implements the support-layer
/// CounterSink so producers below the perf layer (the tlb machine model)
/// can publish deltas through the abstract interface.
///
/// The shard discipline is annotated with the region capability
/// (support/lane.hpp): writers (`add`, `add_all`) require the per-lane
/// writer role, cross-shard readers (`snapshot`, `reset`, `publish`,
/// `published`) require the lanes to be quiescent. Under Clang a
/// misplaced call is a `-Wthread-safety` error (tests/compile_fail/).
class PerfContext final : public CounterSink {
 public:
  PerfContext() = default;
  PerfContext(const PerfContext&) = delete;
  PerfContext& operator=(const PerfContext&) = delete;

  /// Add \p amount to \p event on the calling lane's shard. One add.
  FHP_NO_ALLOC void add(Event event, std::uint64_t amount) noexcept
      FHP_REQUIRES_REGION {
    shards_[static_cast<std::size_t>(::fhp::lane_id())]
        .values[static_cast<std::size_t>(event)] += amount;
  }

  /// Bulk add (one call per committed machine-model quantum).
  FHP_NO_ALLOC void add_all(const CounterSet& delta) noexcept
      FHP_REQUIRES_REGION {
    CounterShard& shard = shards_[static_cast<std::size_t>(::fhp::lane_id())];
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      shard.values[i] += delta.values[i];
    }
  }

  /// CounterSink: merge a committed quantum's deltas (serial producers —
  /// the tracing thread — between regions; see support/events.hpp).
  void sink_counters(const CounterSet& delta) noexcept override;

  /// Sum of all shards. Call outside parallel regions (see file
  /// comment); exact and shard-order-independent.
  [[nodiscard]] CounterSet snapshot() const noexcept FHP_EXCLUDES_REGION {
    CounterSet s;
    for (const CounterShard& shard : shards_) {
      for (std::size_t i = 0; i < kNumEvents; ++i) {
        s.values[i] += shard.values[i];
      }
    }
    return s;
  }

  /// Zero every shard (between experiment arms / tests).
  void reset() noexcept FHP_EXCLUDES_REGION {
    for (CounterShard& shard : shards_) {
      for (auto& v : shard.values) v = 0;
    }
  }

  /// The per-region accumulation table PerfRegions commit into.
  [[nodiscard]] RegionRegistry& regions() noexcept { return regions_; }
  [[nodiscard]] const RegionRegistry& regions() const noexcept {
    return regions_;
  }

  /// Zero counters and clear all region stats.
  void reset_all() FHP_EXCLUDES_REGION {
    reset();
    regions_.reset();
  }

  /// Copy snapshot() into the published slot. Same legality rule as
  /// snapshot() — call outside parallel regions (the driver publishes at
  /// step boundaries). This is the one bridge between the unsynchronized
  /// lane shards and asynchronous readers: a background observer (the
  /// obs::Sampler) may call published() at any time from any thread
  /// without racing lane increments, because it only ever touches the
  /// mutex-guarded copy.
  void publish() FHP_EXCLUDES_REGION;

  /// Most recent publish() result (zero counters, seq 0 before the
  /// first). Safe from any thread at any time — but never from inside a
  /// region lambda (a lane polling the published slot would serialize the
  /// hot path on the publish mutex), hence FHP_EXCLUDES_REGION.
  [[nodiscard]] PublishedCounters published() const FHP_EXCLUDES_REGION;

  /// The process-default context, used by the deprecated singleton shims
  /// and by units constructed without an explicit context. Prefer
  /// passing a context; this exists so the migration can be staged.
  static PerfContext& global() noexcept;

 private:
  CounterShard shards_[::fhp::kMaxLanes] = {};
  RegionRegistry regions_;

  mutable Mutex publish_mutex_;
  PublishedCounters published_ FHP_GUARDED_BY(publish_mutex_);
};

}  // namespace fhp::perf
