#include "perf/timers.hpp"

#include <cstdio>
#include <functional>
#include <ostream>

#include "support/error.hpp"

namespace fhp::perf {

using Clock = std::chrono::steady_clock;

struct Timers::Node {
  std::string name;
  double seconds = 0.0;
  std::uint64_t calls = 0;
  Clock::time_point started;
  bool running = false;
  std::vector<std::unique_ptr<Node>> children;
};

Timers::Timers() : root_(std::make_unique<Node>()), epoch_(Clock::now()) {
  root_->name = "<root>";
  stack_.push_back(root_.get());
}

Timers::~Timers() = default;

Timers::Node* Timers::find_or_create_child(Node& parent,
                                           std::string_view name) {
  for (const auto& child : parent.children) {
    if (child->name == name) return child.get();
  }
  auto node = std::make_unique<Node>();
  node->name = std::string(name);
  Node* raw = node.get();
  parent.children.push_back(std::move(node));
  return raw;
}

void Timers::start(std::string_view name) {
  Node* node = find_or_create_child(*stack_.back(), name);
  FHP_REQUIRE(!node->running,
              "timer '" + std::string(name) + "' started while running");
  node->running = true;
  node->started = Clock::now();
  stack_.push_back(node);
}

void Timers::stop(std::string_view name) {
  FHP_REQUIRE(stack_.size() > 1, "Timers::stop with no running timer");
  Node* node = stack_.back();
  FHP_REQUIRE(node->name == name,
              "Timers::stop('" + std::string(name) + "') but innermost is '" +
                  node->name + "'");
  node->seconds +=
      std::chrono::duration<double>(Clock::now() - node->started).count();
  node->calls += 1;
  node->running = false;
  stack_.pop_back();
}

double Timers::seconds(std::string_view name) const {
  double total = 0.0;
  std::function<void(const Node&)> walk = [&](const Node& node) {
    if (node.name == name) total += node.seconds;
    for (const auto& child : node.children) walk(*child);
  };
  walk(*root_);
  return total;
}

std::uint64_t Timers::calls(std::string_view name) const {
  std::uint64_t total = 0;
  std::function<void(const Node&)> walk = [&](const Node& node) {
    if (node.name == name) total += node.calls;
    for (const auto& child : node.children) walk(*child);
  };
  walk(*root_);
  return total;
}

double Timers::elapsed() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

void Timers::summary(std::ostream& os) const {
  const double total = elapsed();
  os << "accounting unit                     time (s)    calls     %total\n";
  os << "----------------------------------------------------------------\n";
  std::function<void(const Node&, int)> walk = [&](const Node& node,
                                                   int depth) {
    if (depth >= 0) {
      char line[128];
      std::string label(static_cast<size_t>(depth) * 2, ' ');
      label += node.name;
      if (label.size() > 32) label.resize(32);
      std::snprintf(line, sizeof line, "%-32s %10.3f %8llu %9.1f%%\n",
                    label.c_str(), node.seconds,
                    static_cast<unsigned long long>(node.calls),
                    total > 0 ? 100.0 * node.seconds / total : 0.0);
      os << line;
    }
    for (const auto& child : node.children) walk(*child, depth + 1);
  };
  walk(*root_, -1);
  char line[64];
  std::snprintf(line, sizeof line, "elapsed: %.3f s\n", total);
  os << line;
}

void Timers::reset() {
  root_ = std::make_unique<Node>();
  root_->name = "<root>";
  stack_.clear();
  stack_.push_back(root_.get());
  epoch_ = Clock::now();
}

}  // namespace fhp::perf
