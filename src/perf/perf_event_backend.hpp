/// \file perf_event_backend.hpp
/// \brief Real hardware counters via perf_event_open, with graceful probing.
///
/// On the paper's system PAPI read the A64FX PMU. Here we read the host
/// PMU through perf_event_open when the kernel permits
/// (perf_event_paranoid; the paper's admins set it to 1 in
/// /etc/sysctl.d/98fujitsucompilersettings.conf). In containers the
/// syscall is often denied — available() reports that, and callers fall
/// back to the software model. Events mapped: CPU cycles, instructions,
/// dTLB read misses.

#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "perf/events.hpp"

namespace fhp::perf {

/// Counting group of hardware events for the calling thread.
class PerfEventBackend {
 public:
  /// Probes the syscall; a failed probe leaves the backend unavailable
  /// (never throws for permission problems).
  PerfEventBackend();
  ~PerfEventBackend();
  PerfEventBackend(const PerfEventBackend&) = delete;
  PerfEventBackend& operator=(const PerfEventBackend&) = delete;

  /// True if at least the cycle counter opened successfully.
  [[nodiscard]] bool available() const noexcept { return cycles_fd_ >= 0; }

  /// Read current totals into the hardware slots of a CounterSet
  /// (kCycles, kInstructions, kDtlbMisses). Unavailable events stay 0.
  [[nodiscard]] CounterSet read() const noexcept;

  /// Value of /proc/sys/kernel/perf_event_paranoid, if readable.
  [[nodiscard]] static std::optional<int> paranoid_level();

 private:
  int cycles_fd_ = -1;
  int instructions_fd_ = -1;
  int dtlb_fd_ = -1;
};

}  // namespace fhp::perf
