#include "perf/events.hpp"

namespace fhp::perf {

MeasureSet derive_measures(const CounterSet& delta, double clock_hz) noexcept {
  MeasureSet m;
  const auto cycles = static_cast<double>(delta[Event::kCycles]);
  m.hardware_cycles = cycles;
  m.time_seconds = clock_hz > 0 ? cycles / clock_hz : 0.0;
  m.vector_per_cycle =
      cycles > 0 ? static_cast<double>(delta[Event::kVectorOps]) / cycles : 0.0;
  const double bytes = static_cast<double>(delta[Event::kBytesRead]) +
                       static_cast<double>(delta[Event::kBytesWritten]);
  m.memory_gbytes_per_s =
      m.time_seconds > 0 ? bytes / 1.0e9 / m.time_seconds : 0.0;
  m.dtlb_misses_per_s =
      m.time_seconds > 0
          ? static_cast<double>(delta[Event::kDtlbMisses]) / m.time_seconds
          : 0.0;
  return m;
}

namespace {
double safe_ratio(double num, double den) noexcept {
  return den != 0.0 ? num / den : 0.0;
}
}  // namespace

MeasureRatios ratios(const MeasureSet& with_hp, double with_hp_flash_timer,
                     const MeasureSet& without_hp,
                     double without_hp_flash_timer) noexcept {
  MeasureRatios r;
  r.hardware_cycles =
      safe_ratio(with_hp.hardware_cycles, without_hp.hardware_cycles);
  r.time_seconds = safe_ratio(with_hp.time_seconds, without_hp.time_seconds);
  r.vector_per_cycle =
      safe_ratio(with_hp.vector_per_cycle, without_hp.vector_per_cycle);
  r.memory_gbytes_per_s =
      safe_ratio(with_hp.memory_gbytes_per_s, without_hp.memory_gbytes_per_s);
  r.dtlb_misses_per_s =
      safe_ratio(with_hp.dtlb_misses_per_s, without_hp.dtlb_misses_per_s);
  r.flash_timer = safe_ratio(with_hp_flash_timer, without_hp_flash_timer);
  return r;
}

}  // namespace fhp::perf
