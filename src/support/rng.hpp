/// \file rng.hpp
/// \brief Deterministic random number generation (xoshiro256**).
///
/// Simulations and property tests need reproducible randomness that is
/// identical across platforms and standard-library versions, so we do not
/// use std::mt19937 / std::uniform_real_distribution (whose algorithms are
/// implementation-defined for floating point). xoshiro256** is the
/// reference generator of Blackman & Vigna, seeded via SplitMix64.

#pragma once

#include <cstdint>

namespace fhp {

/// xoshiro256** PRNG; satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (deterministic given the stream).
  double normal() noexcept;

  /// Jump ahead 2^128 steps — yields an independent stream for sub-tasks.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fhp
