#include "support/log.hpp"

#include <chrono>
#include <cstdio>
#include <iomanip>

#include "support/error.hpp"

namespace fhp {

namespace detail {
thread_local constinit const char* t_log_tag = nullptr;
}  // namespace detail

const char* log_level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

// The process-wide log sink, by design. fhp-lint: allow(singleton-instance)
Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) noexcept {
  MutexLock lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  MutexLock lock(mutex_);
  return level_;
}

void Logger::set_logfile(const std::string& path) {
  MutexLock lock(mutex_);
  if (file_.is_open()) file_.close();
  if (path.empty()) return;
  file_.open(path, std::ios::out | std::ios::app);
  if (!file_) {
    throw SystemError("cannot open log file '" + path + "'", errno);
  }
}

void Logger::write(LogLevel level, std::string_view message) {
  MutexLock lock(mutex_);
  if (level < level_ || level_ == LogLevel::kOff) return;

  const auto now = std::chrono::system_clock::now();
  const auto t = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&t, &tm);
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%02d:%02d:%02d", tm.tm_hour, tm.tm_min,
                tm.tm_sec);

  const char* tag = detail::t_log_tag;
  if (tag != nullptr && *tag == '\0') tag = nullptr;

  if (tag != nullptr) {
    std::fprintf(stderr, "[%s %s] [%s] %.*s\n", stamp, log_level_tag(level),
                 tag, static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "[%s %s] %.*s\n", stamp, log_level_tag(level),
                 static_cast<int>(message.size()), message.data());
  }
  if (file_.is_open()) {
    file_ << '[' << stamp << ' ' << log_level_tag(level) << "] ";
    if (tag != nullptr) file_ << '[' << tag << "] ";
    file_ << message << '\n';
    file_.flush();
  }
}

}  // namespace fhp
