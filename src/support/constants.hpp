/// \file constants.hpp
/// \brief Physical constants in CGS units, as used throughout FLASH.
///
/// FLASH works in CGS; the supernova setups here (white-dwarf structure,
/// degenerate EOS, flame speeds) use these values. Sources: CODATA 2018,
/// truncated to double precision.

#pragma once

namespace fhp::constants {

inline constexpr double kBoltzmann = 1.380649e-16;        ///< erg/K
inline constexpr double kAvogadro = 6.02214076e23;        ///< 1/mol
inline constexpr double kGasConstant = 8.31446261815e7;   ///< erg/(mol K)
inline constexpr double kPlanck = 6.62607015e-27;         ///< erg s
inline constexpr double kSpeedOfLight = 2.99792458e10;    ///< cm/s
inline constexpr double kGravitational = 6.67430e-8;      ///< cm^3/(g s^2)
inline constexpr double kElectronMass = 9.1093837015e-28; ///< g
inline constexpr double kProtonMass = 1.67262192369e-24;  ///< g
inline constexpr double kAtomicMassUnit = 1.66053906660e-24;  ///< g
inline constexpr double kElectronVolt = 1.602176634e-12;  ///< erg
inline constexpr double kStefanBoltzmann = 5.670374419e-5;///< erg/(cm^2 s K^4)
/// Radiation constant a = 4 sigma / c, erg/(cm^3 K^4).
inline constexpr double kRadiationConstant = 7.5657332e-15;
inline constexpr double kSolarMass = 1.98847e33;          ///< g
inline constexpr double kSolarRadius = 6.957e10;          ///< cm

/// Electron Compton parameters used by the degenerate EOS:
/// m_e c^2 in erg and the relativity density scale.
inline constexpr double kElectronRestEnergy =
    kElectronMass * kSpeedOfLight * kSpeedOfLight;

}  // namespace fhp::constants
