#include "support/events.hpp"

namespace fhp::perf {

std::string_view event_name(Event e) noexcept {
  switch (e) {
    case Event::kCycles: return "PAPI_TOT_CYC";
    case Event::kInstructions: return "PAPI_TOT_INS";
    case Event::kVectorOps: return "PAPI_VEC_INS";
    case Event::kDtlbMisses: return "PAPI_TLB_DM";
    case Event::kTlbWalkCycles: return "TLB_WALK_CYC";
    case Event::kBytesRead: return "MEM_BYTES_RD";
    case Event::kBytesWritten: return "MEM_BYTES_WR";
    case Event::kL1Misses: return "PAPI_L1_DCM";
    case Event::kL2Misses: return "PAPI_L2_DCM";
    case Event::kPoolHugeAllocs: return "POOL_HUGE_ALLOC";
    case Event::kPoolRemoteAllocs: return "POOL_REMOTE_ALLOC";
    case Event::kPoolThpFallbacks: return "POOL_THP_FALLBACK";
    case Event::kPoolBaseFallbacks: return "POOL_BASE_FALLBACK";
    case Event::kWallNanos: return "WALL_NS";
  }
  return "UNKNOWN";
}

}  // namespace fhp::perf
