/// \file mutex.hpp
/// \brief std::mutex wrapped as an annotated thread-safety capability.
///
/// libstdc++'s std::mutex carries no capability attribute, so Clang's
/// thread-safety analysis cannot track std::lock_guard acquisitions of
/// it. fhp::Mutex is a zero-overhead wrapper that is a proper annotated
/// capability, and fhp::MutexLock is the matching annotated scoped lock.
/// All lockful flashhp classes (mem::Arena, Logger, perf::RegionRegistry)
/// use these so `-Wthread-safety` sees their whole lock discipline.

#pragma once

#include <mutex>

#include "support/thread_annotations.hpp"

namespace fhp {

/// An exclusive capability backed by std::mutex.
class FHP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FHP_ACQUIRE() { mutex_.lock(); }
  void unlock() FHP_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() FHP_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// RAII lock over fhp::Mutex, visible to the thread-safety analysis.
class FHP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FHP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FHP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace fhp
