/// \file log.hpp
/// \brief A minimal leveled logger in the spirit of FLASH's Logfile unit.
///
/// FLASH writes a time-stamped run log (flash.log). flashhp logs to an
/// ostream (stderr by default) with severity filtering; a file sink can be
/// attached. Thread-safe for interleaved lines.

#pragma once

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace fhp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Convert a log level to its fixed-width tag ("DEBUG", "INFO ", ...).
[[nodiscard]] const char* log_level_tag(LogLevel level) noexcept;

/// Process-wide logger. Obtain with Logger::instance().
class Logger {
 public:
  static Logger& instance();

  /// Minimum severity that will be emitted.
  void set_level(LogLevel level) noexcept FHP_EXCLUDES(mutex_);
  [[nodiscard]] LogLevel level() const noexcept FHP_EXCLUDES(mutex_);

  /// Attach a log file (mirrors FLASH's flash.log). Pass an empty path to
  /// detach. Throws fhp::SystemError if the file cannot be opened.
  void set_logfile(const std::string& path) FHP_EXCLUDES(mutex_);

  /// Emit one line at the given severity.
  void write(LogLevel level, std::string_view message) FHP_EXCLUDES(mutex_);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger() = default;
  mutable Mutex mutex_;
  LogLevel level_ FHP_GUARDED_BY(mutex_) = LogLevel::kInfo;
  std::ofstream file_ FHP_GUARDED_BY(mutex_);
};

namespace detail {
/// Per-thread log-line tag (null = untagged). Lines written while a tag
/// is in effect are prefixed "[tag]" so interleaved runtimes sharing the
/// one process logger stay attributable. constinit thread_local for the
/// same `_ZTH` reason as fhp::detail::t_lane (support/lane.hpp).
extern thread_local constinit const char* t_log_tag;
}  // namespace detail

/// RAII thread-local log tag: while alive, FHP_LOG lines emitted by this
/// thread carry \p tag. rt::Runtime uses this to label its driver thread
/// (and, via par::LaneEnv, its pool lanes) with the runtime's log_tag.
/// Scopes nest (save/restore); a null or empty tag restores "untagged".
class LogTagScope {
 public:
  explicit LogTagScope(const char* tag) noexcept : saved_(detail::t_log_tag) {
    detail::t_log_tag = tag;
  }
  ~LogTagScope() { detail::t_log_tag = saved_; }
  LogTagScope(const LogTagScope&) = delete;
  LogTagScope& operator=(const LogTagScope&) = delete;

 private:
  const char* saved_;
};

namespace detail {
/// Builds a log line with ostream syntax and submits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    // The logger stays a process-wide sink by design (one log file per
    // run, like FLASH's). fhp-lint: allow(singleton-instance)
    Logger::instance().write(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: FHP_LOG(kInfo) << "mesh has " << n << " blocks";
#define FHP_LOG(level_name) \
  ::fhp::detail::LogLine(::fhp::LogLevel::level_name)

}  // namespace fhp
