/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis capability annotations.
///
/// These macros expand to Clang's `-Wthread-safety` attributes when the
/// compiler supports them and to nothing otherwise, so annotated code
/// builds identically under GCC. The paper's secondary lesson — that the
/// toolchain silently failing to do what you asked is the real hazard —
/// applies to locking as much as to page size: lock discipline should be
/// machine-checked at compile time, not trusted.
///
/// Conventions (see DESIGN.md "Correctness tooling"):
///   - data members protected by a mutex carry FHP_GUARDED_BY(mutex_);
///   - private helpers that assume the lock is held carry
///     FHP_REQUIRES(mutex_);
///   - use fhp::Mutex / fhp::MutexLock (support/mutex.hpp) instead of raw
///     std::mutex / std::lock_guard — libstdc++'s std::mutex is not an
///     annotated capability, so the analysis cannot see through it;
///   - intentionally unsynchronized hot-path code (e.g. the per-lane
///     counter shards of perf::PerfContext) is marked
///     FHP_NO_THREAD_SAFETY_ANALYSIS with a comment explaining the
///     single-writer execution model.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FHP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FHP_THREAD_ANNOTATION
#define FHP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define FHP_CAPABILITY(x) FHP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability for its lifetime.
#define FHP_SCOPED_CAPABILITY FHP_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define FHP_GUARDED_BY(x) FHP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define FHP_PT_GUARDED_BY(x) FHP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and exit).
#define FHP_REQUIRES(...) \
  FHP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive) and holds it on return.
#define FHP_ACQUIRE(...) \
  FHP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define FHP_RELEASE(...) \
  FHP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success value.
#define FHP_TRY_ACQUIRE(...) \
  FHP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define FHP_EXCLUDES(...) FHP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define FHP_RETURN_CAPABILITY(x) FHP_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of the analysis; always pair with a comment
/// explaining why the access pattern is safe.
#define FHP_NO_THREAD_SAFETY_ANALYSIS \
  FHP_THREAD_ANNOTATION(no_thread_safety_analysis)
