/// \file runtime_params.hpp
/// \brief FLASH-style runtime parameter registry and flash.par parser.
///
/// FLASH configures a run from a `flash.par` file of `name = value` lines,
/// against a registry of declared parameters with defaults. RuntimeParams
/// mirrors that: modules declare parameters (with documentation strings),
/// a parameter file or command line overrides them, and typed getters
/// retrieve the effective values. Names are case-insensitive, as in FLASH.

#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace fhp {

/// Registry of typed runtime parameters.
class RuntimeParams {
 public:
  using Value = std::variant<bool, long long, double, std::string>;

  /// Declare a parameter with a default. Re-declaring with the same type is
  /// idempotent; re-declaring with a different type throws ConfigError.
  void declare_bool(std::string_view name, bool def, std::string_view doc = {});
  void declare_int(std::string_view name, long long def, std::string_view doc = {});
  void declare_real(std::string_view name, double def, std::string_view doc = {});
  void declare_string(std::string_view name, std::string_view def,
                      std::string_view doc = {});

  /// Typed getters. Throw ConfigError if the parameter is unknown or has a
  /// different type. get_real also accepts integer-typed values (promoted).
  [[nodiscard]] bool get_bool(std::string_view name) const;
  [[nodiscard]] long long get_int(std::string_view name) const;
  [[nodiscard]] double get_real(std::string_view name) const;
  [[nodiscard]] std::string get_string(std::string_view name) const;

  /// Typed setters; the parameter must have been declared.
  void set_bool(std::string_view name, bool value);
  void set_int(std::string_view name, long long value);
  void set_real(std::string_view name, double value);
  void set_string(std::string_view name, std::string_view value);

  /// Assign from a textual value, inferring conversion from the declared
  /// type. Used by the file parser and --name=value command lines.
  void set_from_string(std::string_view name, std::string_view text);

  /// True if \p name has been declared.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// True if the value differs from the declared default (i.e. was set).
  [[nodiscard]] bool is_overridden(std::string_view name) const;

  /// Parse a flash.par-style file: `name = value` lines, `#` comments,
  /// quoted strings. Unknown names throw ConfigError (FLASH warns; we are
  /// stricter) unless \p allow_unknown, in which case they are declared as
  /// strings on the fly.
  void read_file(const std::string& path, bool allow_unknown = false);

  /// Parse parameter text directly (same grammar as read_file).
  void read_string(std::string_view text, bool allow_unknown = false,
                   std::string_view origin = "<string>");

  /// Apply `--name=value` style argv overrides; returns the positional args.
  std::vector<std::string> apply_command_line(int argc, const char* const* argv);

  /// Write all parameters (sorted) with values, defaults and docs.
  void dump(std::ostream& os) const;

  /// Names of all declared parameters, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    Value value;
    Value default_value;
    std::string doc;
  };
  [[nodiscard]] const Entry& find(std::string_view name) const;
  [[nodiscard]] Entry& find(std::string_view name);
  void declare(std::string_view name, Value def, std::string_view doc);

  std::map<std::string, Entry> entries_;  // key: lower-cased name
};

}  // namespace fhp
