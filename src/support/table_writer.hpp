/// \file table_writer.hpp
/// \brief Column-aligned ASCII tables and CSV output.
///
/// The benchmark harness prints the paper's Tables I/II in the same row
/// order as the publication; TableWriter handles the formatting. Cells are
/// strings; helpers format values in the paper's scientific style
/// (e.g. 1.25e+11).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fhp {

/// Accumulates rows and renders a column-aligned table with a header rule.
class TableWriter {
 public:
  /// \param title optional caption printed above the table.
  explicit TableWriter(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row (defines the column count).
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width if one was set.
  void add_row(std::vector<std::string> row);

  /// Render as an aligned ASCII table.
  void render(std::ostream& os) const;

  /// Render as CSV (no alignment, fields quoted only when needed).
  void render_csv(std::ostream& os) const;

  [[nodiscard]] size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format in the paper's scientific notation with 3 significant digits,
/// e.g. 1.25e+11. Values in [0.01, 9999] are printed in fixed notation.
[[nodiscard]] std::string format_measure(double value);

/// Format a ratio with 3 decimal places (Figure 1 style).
[[nodiscard]] std::string format_ratio(double value);

/// Render a horizontal ASCII bar of width proportional to value/scale,
/// capped at \p max_width characters. Used for the Figure 1 bar chart.
[[nodiscard]] std::string ascii_bar(double value, double scale, int max_width);

}  // namespace fhp
