/// \file events.hpp
/// \brief The performance-counter vocabulary: Event, CounterSet,
///        CounterSink.
///
/// This is the bottom-layer half of what used to live in perf/events.hpp.
/// It sits in src/support so that counter *producers* below the perf
/// layer — the tlb machine model publishes modeled cycles and miss counts
/// — can name events and hand off deltas without depending on the perf
/// layer's accumulation machinery (PerfContext, regions, reports). The
/// declared module DAG is `support → mem → tlb → perf → …`
/// (tools/fhp_analyze.py enforces it from the include graph), so tlb may
/// not include perf; producers depend on this vocabulary plus the
/// abstract CounterSink, and perf::PerfContext implements the sink.
///
/// Everything here stays in `namespace fhp::perf`: the types *belong* to
/// the perf vocabulary and renaming them would churn every consumer for
/// no semantic gain. perf/events.hpp re-exports this header and adds the
/// derived-measure types (MeasureSet etc.) that only report-side code
/// needs.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "support/lane.hpp"

namespace fhp::perf {

/// The events flashhp counts. kWallNanos is always captured; hardware-ish
/// events come from the software machine model and/or perf_event.
enum class Event : std::uint8_t {
  kCycles = 0,      ///< modeled/HW CPU cycles (PAPI_TOT_CYC analog)
  kInstructions,    ///< retired instructions (PAPI_TOT_INS analog)
  kVectorOps,       ///< SVE-class vector instructions (paper's SVE measure)
  kDtlbMisses,      ///< DTLB misses requiring a page-table walk
  kTlbWalkCycles,   ///< cycles spent in page-table walks (model detail)
  kBytesRead,       ///< bytes moved from memory (for the GB/s measure)
  kBytesWritten,    ///< bytes moved to memory
  kL1Misses,        ///< L1D misses (model detail)
  kL2Misses,        ///< L2 misses = memory traffic events
  kPoolHugeAllocs,  ///< PagePool allocations placed on a hugetlb pool
  kPoolRemoteAllocs,///< subset of the above placed on a non-local node
  kPoolThpFallbacks,///< PagePool degradations to THP (pool exhausted)
  kPoolBaseFallbacks,///< PagePool degradations to base pages
  kWallNanos,       ///< wall-clock nanoseconds
};

inline constexpr std::size_t kNumEvents = 14;

/// PAPI-flavoured names, for reports ("PAPI_TOT_CYC", ...).
[[nodiscard]] std::string_view event_name(Event e) noexcept;

/// A value for every event. Plain aggregate; supports snapshot arithmetic.
struct CounterSet {
  std::array<std::uint64_t, kNumEvents> values{};

  [[nodiscard]] std::uint64_t operator[](Event e) const noexcept {
    return values[static_cast<std::size_t>(e)];
  }
  std::uint64_t& operator[](Event e) noexcept {
    return values[static_cast<std::size_t>(e)];
  }

  /// Element-wise this - earlier (wraps are the caller's problem; our
  /// sources are 64-bit and monotonic).
  [[nodiscard]] CounterSet since(const CounterSet& earlier) const noexcept {
    CounterSet d;
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      d.values[i] = values[i] - earlier.values[i];
    }
    return d;
  }

  CounterSet& operator+=(const CounterSet& other) noexcept {
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      values[i] += other.values[i];
    }
    return *this;
  }
};

/// Abstract consumer of committed counter deltas. Producers below the
/// perf layer (the tlb machine model) publish through this interface;
/// perf::PerfContext is the in-tree implementation. sink_counters is
/// FHP_EXCLUDES_REGION because in-tree producers commit from exactly one
/// serial thread (the tracing thread, between parallel regions) — an
/// implementation that forwards to lane-sharded storage asserts the
/// single-writer role internally.
class CounterSink {
 public:
  CounterSink() = default;
  virtual ~CounterSink() = default;
  CounterSink(const CounterSink&) = delete;
  CounterSink& operator=(const CounterSink&) = delete;

  /// Merge one committed quantum's counter deltas.
  virtual void sink_counters(const CounterSet& delta) noexcept
      FHP_EXCLUDES_REGION = 0;
};

}  // namespace fhp::perf
