/// \file contracts.hpp
/// \brief Debug contract layer: FHP_PRECONDITION / FHP_ASSERT.
///
/// The paper's failure mode was *silent*: nothing crashed, the run was
/// just quietly slow because the toolchain never delivered the page
/// regime the code assumed. The contract layer makes the assumptions at
/// the mem/mesh API boundaries loud instead — power-of-two alignments,
/// non-zero sizes, mapped-range containment — so a violated invariant
/// throws at the call site rather than corrupting a 64 MiB chunk later.
///
/// Relationship to error.hpp:
///   FHP_REQUIRE / FHP_CHECK      always-on validation of external input
///                                (flash.par values, sysfs contents).
///   FHP_PRECONDITION / FHP_ASSERT  contracts on *our own* API use. On by
///                                default (including RelWithDebInfo; the
///                                guarded boundaries are cold), compiled
///                                out with -DFLASHHP_CONTRACTS=OFF
///                                (-DFHP_DISABLE_CONTRACTS) for maximum-
///                                performance production builds.
///
/// A violated FHP_PRECONDITION throws fhp::ContractViolation (a
/// ConfigError: the caller broke the contract); a violated FHP_ASSERT
/// throws fhp::AssertionError (an InternalError: flashhp itself is
/// buggy). Tests can therefore exercise contracts with EXPECT_THROW
/// instead of fork-style death tests.

#pragma once

#include <source_location>
#include <string_view>

#include "support/error.hpp"

namespace fhp {

/// A caller violated a documented API precondition.
class ContractViolation : public ConfigError {
 public:
  using ConfigError::ConfigError;
};

/// An internal contract (FHP_ASSERT) failed — a bug in flashhp.
class AssertionError : public InternalError {
 public:
  using InternalError::InternalError;
};

namespace detail {
[[noreturn]] void throw_contract_violation(std::string_view expr,
                                           std::string_view msg,
                                           const std::source_location& loc);
[[noreturn]] void throw_assertion_failure(std::string_view expr,
                                          std::string_view msg,
                                          const std::source_location& loc);
}  // namespace detail

}  // namespace fhp

#if !defined(FHP_DISABLE_CONTRACTS)
#define FHP_CONTRACTS_ENABLED 1

/// Validate a documented precondition at an API boundary; throws
/// fhp::ContractViolation when \p expr is false.
#define FHP_PRECONDITION(expr, msg)                           \
  do {                                                        \
    if (!(expr)) {                                            \
      ::fhp::detail::throw_contract_violation(                \
          #expr, (msg), std::source_location::current());     \
    }                                                         \
  } while (false)

/// Validate an internal invariant; throws fhp::AssertionError when
/// \p expr is false.
#define FHP_ASSERT(expr, msg)                                 \
  do {                                                        \
    if (!(expr)) {                                            \
      ::fhp::detail::throw_assertion_failure(                 \
          #expr, (msg), std::source_location::current());     \
    }                                                         \
  } while (false)

#else  // FHP_DISABLE_CONTRACTS
#define FHP_CONTRACTS_ENABLED 0
#define FHP_PRECONDITION(expr, msg) static_cast<void>(0)
#define FHP_ASSERT(expr, msg) static_cast<void>(0)
#endif

/// Statically declares a function allocation-free: tools/fhp_analyze.py
/// scans the lexical body of every FHP_NO_ALLOC-marked function (and of
/// every parallel_for lambda) for `new`, malloc-family calls, and
/// container growth, and fails the build on a hit. The runtime
/// counterpart is the operator-new-counting guard in tests/test_obs.cpp.
/// Under Clang the marker also leaves an `annotate` attribute in the AST
/// for external tooling; under GCC it expands to nothing.
#if defined(__clang__)
#define FHP_NO_ALLOC __attribute__((annotate("fhp::no_alloc")))
#else
#define FHP_NO_ALLOC
#endif
