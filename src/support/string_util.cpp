#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace fhp {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_real(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // Accept Fortran-style exponents 1.0d0 by mapping d/D -> e.
  std::string buf(s);
  for (char& c : buf) {
    if (c == 'd' || c == 'D') c = 'e';
  }
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view s) {
  const std::string v = to_lower(trim(s));
  if (v == "true" || v == "yes" || v == "on" || v == "1" || v == ".true.") {
    return true;
  }
  if (v == "false" || v == "no" || v == "off" || v == "0" || v == ".false.") {
    return false;
  }
  return std::nullopt;
}

std::optional<unsigned long long> parse_size_bytes(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  unsigned long long multiplier = 1;
  char suffix = s.back();
  if (suffix == 'k' || suffix == 'K') {
    multiplier = 1ull << 10;
  } else if (suffix == 'm' || suffix == 'M') {
    multiplier = 1ull << 20;
  } else if (suffix == 'g' || suffix == 'G') {
    // Unit multiplier for a "G" suffix, not a page size; support/ cannot
    // depend on mem/page_size.hpp.
    multiplier = 1ull << 30;  // fhp-lint: allow(page-size-literal)
  }
  if (multiplier != 1) s.remove_suffix(1);
  auto base = parse_int(s);
  if (!base || *base < 0) return std::nullopt;
  const auto value = static_cast<unsigned long long>(*base);
  if (multiplier != 0 && value > ~0ull / multiplier) return std::nullopt;
  return value * multiplier;
}

std::string format_bytes(unsigned long long bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (unit == 0) {
    os << bytes << " B";
  } else {
    os.precision(1);
    os << std::fixed << v << ' ' << kUnits[unit];
  }
  return os.str();
}

}  // namespace fhp
