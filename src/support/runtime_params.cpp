#include "support/runtime_params.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace fhp {

namespace {

const char* type_name(const RuntimeParams::Value& v) {
  switch (v.index()) {
    case 0: return "bool";
    case 1: return "int";
    case 2: return "real";
    case 3: return "string";
  }
  return "?";
}

std::string value_to_string(const RuntimeParams::Value& v) {
  std::ostringstream os;
  switch (v.index()) {
    case 0: os << (std::get<bool>(v) ? ".true." : ".false."); break;
    case 1: os << std::get<long long>(v); break;
    case 2: os << std::get<double>(v); break;
    case 3: os << '"' << std::get<std::string>(v) << '"'; break;
  }
  return os.str();
}

}  // namespace

void RuntimeParams::declare(std::string_view name, Value def,
                            std::string_view doc) {
  const std::string key = to_lower(name);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    FHP_REQUIRE(it->second.default_value.index() == def.index(),
                "parameter '" + key + "' re-declared with a different type");
    return;  // idempotent re-declaration keeps any existing override
  }
  entries_.emplace(key, Entry{def, def, std::string(doc)});
}

void RuntimeParams::declare_bool(std::string_view n, bool d, std::string_view doc) {
  declare(n, Value(d), doc);
}
void RuntimeParams::declare_int(std::string_view n, long long d,
                                std::string_view doc) {
  declare(n, Value(d), doc);
}
void RuntimeParams::declare_real(std::string_view n, double d,
                                 std::string_view doc) {
  declare(n, Value(d), doc);
}
void RuntimeParams::declare_string(std::string_view n, std::string_view d,
                                   std::string_view doc) {
  declare(n, Value(std::string(d)), doc);
}

const RuntimeParams::Entry& RuntimeParams::find(std::string_view name) const {
  auto it = entries_.find(to_lower(name));
  if (it == entries_.end()) {
    throw ConfigError("unknown runtime parameter '" + std::string(name) + "'");
  }
  return it->second;
}

RuntimeParams::Entry& RuntimeParams::find(std::string_view name) {
  return const_cast<Entry&>(
      static_cast<const RuntimeParams*>(this)->find(name));
}

bool RuntimeParams::get_bool(std::string_view name) const {
  const Entry& e = find(name);
  if (const bool* b = std::get_if<bool>(&e.value)) return *b;
  throw ConfigError("parameter '" + std::string(name) + "' is " +
                    type_name(e.value) + ", not bool");
}

long long RuntimeParams::get_int(std::string_view name) const {
  const Entry& e = find(name);
  if (const long long* i = std::get_if<long long>(&e.value)) return *i;
  throw ConfigError("parameter '" + std::string(name) + "' is " +
                    type_name(e.value) + ", not int");
}

double RuntimeParams::get_real(std::string_view name) const {
  const Entry& e = find(name);
  if (const double* r = std::get_if<double>(&e.value)) return *r;
  if (const long long* i = std::get_if<long long>(&e.value)) {
    return static_cast<double>(*i);
  }
  throw ConfigError("parameter '" + std::string(name) + "' is " +
                    type_name(e.value) + ", not real");
}

std::string RuntimeParams::get_string(std::string_view name) const {
  const Entry& e = find(name);
  if (const std::string* s = std::get_if<std::string>(&e.value)) return *s;
  throw ConfigError("parameter '" + std::string(name) + "' is " +
                    type_name(e.value) + ", not string");
}

void RuntimeParams::set_bool(std::string_view n, bool v) {
  Entry& e = find(n);
  FHP_REQUIRE(std::holds_alternative<bool>(e.value), "type mismatch: bool");
  e.value = v;
}
void RuntimeParams::set_int(std::string_view n, long long v) {
  Entry& e = find(n);
  FHP_REQUIRE(std::holds_alternative<long long>(e.value), "type mismatch: int");
  e.value = v;
}
void RuntimeParams::set_real(std::string_view n, double v) {
  Entry& e = find(n);
  FHP_REQUIRE(std::holds_alternative<double>(e.value), "type mismatch: real");
  e.value = v;
}
void RuntimeParams::set_string(std::string_view n, std::string_view v) {
  Entry& e = find(n);
  FHP_REQUIRE(std::holds_alternative<std::string>(e.value),
              "type mismatch: string");
  e.value = std::string(v);
}

void RuntimeParams::set_from_string(std::string_view name,
                                    std::string_view text) {
  Entry& e = find(name);
  text = trim(text);
  switch (e.value.index()) {
    case 0: {
      auto b = parse_bool(text);
      if (!b) {
        throw ConfigError("parameter '" + std::string(name) +
                          "': cannot parse '" + std::string(text) +
                          "' as bool");
      }
      e.value = *b;
      break;
    }
    case 1: {
      auto i = parse_int(text);
      if (!i) {
        throw ConfigError("parameter '" + std::string(name) +
                          "': cannot parse '" + std::string(text) +
                          "' as int");
      }
      e.value = *i;
      break;
    }
    case 2: {
      auto r = parse_real(text);
      if (!r) {
        throw ConfigError("parameter '" + std::string(name) +
                          "': cannot parse '" + std::string(text) +
                          "' as real");
      }
      e.value = *r;
      break;
    }
    case 3: {
      // Strip one layer of matching quotes if present.
      if (text.size() >= 2 &&
          ((text.front() == '"' && text.back() == '"') ||
           (text.front() == '\'' && text.back() == '\''))) {
        text = text.substr(1, text.size() - 2);
      }
      e.value = std::string(text);
      break;
    }
  }
}

bool RuntimeParams::contains(std::string_view name) const {
  return entries_.count(to_lower(name)) != 0;
}

bool RuntimeParams::is_overridden(std::string_view name) const {
  const Entry& e = find(name);
  return e.value != e.default_value;
}

void RuntimeParams::read_string(std::string_view text, bool allow_unknown,
                                std::string_view origin) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = line;
    // Strip comments, but not inside quoted strings.
    bool in_quote = false;
    char quote = 0;
    size_t comment = sv.size();
    for (size_t i = 0; i < sv.size(); ++i) {
      char c = sv[i];
      if (in_quote) {
        if (c == quote) in_quote = false;
      } else if (c == '"' || c == '\'') {
        in_quote = true;
        quote = c;
      } else if (c == '#') {
        comment = i;
        break;
      }
    }
    sv = trim(sv.substr(0, comment));
    if (sv.empty()) continue;
    const size_t eq = sv.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError(std::string(origin) + ':' + std::to_string(lineno) +
                        ": expected 'name = value', got '" + std::string(sv) +
                        "'");
    }
    const std::string_view name = trim(sv.substr(0, eq));
    const std::string_view value = trim(sv.substr(eq + 1));
    if (name.empty() || value.empty()) {
      throw ConfigError(std::string(origin) + ':' + std::to_string(lineno) +
                        ": empty name or value");
    }
    if (!contains(name)) {
      if (!allow_unknown) {
        throw ConfigError(std::string(origin) + ':' + std::to_string(lineno) +
                          ": unknown parameter '" + std::string(name) + "'");
      }
      declare_string(name, "");
    }
    set_from_string(name, value);
  }
}

void RuntimeParams::read_file(const std::string& path, bool allow_unknown) {
  std::ifstream in(path);
  if (!in) {
    throw SystemError("cannot open parameter file '" + path + "'", errno);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  read_string(buf.str(), allow_unknown, path);
}

std::vector<std::string> RuntimeParams::apply_command_line(
    int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (starts_with(arg, "--")) {
      arg.remove_prefix(2);
      const size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        // A bare --flag sets a declared bool to true.
        if (contains(arg)) {
          set_from_string(arg, "true");
          continue;
        }
        throw ConfigError("unrecognized option '--" + std::string(arg) + "'");
      }
      set_from_string(arg.substr(0, eq), arg.substr(eq + 1));
    } else {
      positional.emplace_back(arg);
    }
  }
  return positional;
}

void RuntimeParams::dump(std::ostream& os) const {
  for (const auto& [name, e] : entries_) {
    os << name << " = " << value_to_string(e.value);
    if (e.value != e.default_value) {
      os << "   # default: " << value_to_string(e.default_value);
    }
    if (!e.doc.empty()) os << "   # " << e.doc;
    os << '\n';
  }
}

std::vector<std::string> RuntimeParams::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

}  // namespace fhp
