/// \file string_util.hpp
/// \brief Small string helpers shared across flashhp modules.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fhp {

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Split on a single character delimiter. Empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace; no empty fields are produced.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// True if \p s begins with \p prefix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse an integer (base 10); nullopt on any trailing garbage or overflow.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s);

/// Parse a floating-point value; nullopt on trailing garbage.
[[nodiscard]] std::optional<double> parse_real(std::string_view s);

/// Parse a boolean: accepts true/false, yes/no, on/off, 1/0, and the
/// Fortran-flavoured .true./.false. spellings FLASH parameter files use.
[[nodiscard]] std::optional<bool> parse_bool(std::string_view s);

/// Parse a byte size with optional K/M/G suffix (binary units), e.g. "2M".
[[nodiscard]] std::optional<unsigned long long> parse_size_bytes(
    std::string_view s);

/// Render a byte count with a binary-unit suffix ("2.0 MiB").
[[nodiscard]] std::string format_bytes(unsigned long long bytes);

}  // namespace fhp
