#include "support/rng.hpp"

#include <cmath>

namespace fhp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but keep a belt-and-braces guard.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's unbiased bounded generation (rejection on the low word).
  if (n == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace fhp
