#include "support/trace.hpp"

namespace fhp::trace {

namespace detail {

std::atomic<Sink*> g_sink{nullptr};

thread_local constinit Sink* t_sink = nullptr;
thread_local constinit bool t_sink_bound = false;

namespace {
/// Span nesting depth of the executing thread. Each lane traces its own
/// call stack, so depth is thread-local, not sink-global.
thread_local std::uint16_t t_span_depth = 0;
}  // namespace

std::uint16_t enter_span() noexcept { return t_span_depth++; }
void exit_span() noexcept { --t_span_depth; }

}  // namespace detail

bool try_install(Sink* s) noexcept {
  Sink* expected = nullptr;
  return detail::g_sink.compare_exchange_strong(expected, s,
                                                std::memory_order_acq_rel);
}

void uninstall(Sink* s) noexcept {
  Sink* expected = s;
  detail::g_sink.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel);
}

void step_mark(int step, double sim_time, double dt) {
  Sink* s = sink();
  if (s != nullptr) s->mark_step(step, sim_time, dt);
}

}  // namespace fhp::trace
