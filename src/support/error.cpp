#include "support/error.hpp"

#include <sstream>

namespace fhp::detail {

namespace {
std::string format_failure(std::string_view kind, std::string_view expr,
                           std::string_view msg,
                           const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " at " << loc.file_name() << ':' << loc.line() << " in "
     << loc.function_name() << ": (" << expr << ") — " << msg;
  return os.str();
}
}  // namespace

void throw_requirement_failure(std::string_view expr, std::string_view msg,
                               const std::source_location& loc) {
  throw ConfigError(format_failure("requirement failed", expr, msg, loc));
}

void throw_internal_failure(std::string_view expr, std::string_view msg,
                            const std::source_location& loc) {
  throw InternalError(format_failure("internal check failed", expr, msg, loc));
}

}  // namespace fhp::detail
