/// \file lane.hpp
/// \brief Lane identity and the parallel-region capability model.
///
/// Two primitives live here, at the bottom of the layering DAG, so that
/// every layer above — perf counter shards, obs span rings, the worker
/// pool itself — can share one notion of "which lane am I" and one
/// statically checkable notion of "am I allowed to write lane-private
/// data right now":
///
///   1. `lane_id()` / `kMaxLanes`: the executing thread's lane. Workers
///      of the fhp::par pool set it once at startup; every other thread
///      (including the region's caller, which participates as lane 0)
///      reads the default of 0. `par::lane()` is a forwarding alias.
///
///   2. The *region capability* (`region_cap`): a phantom capability for
///      Clang's `-Wthread-safety` analysis that models the per-lane
///      writer role. Functions that write lane-private shards — counter
///      increments, span-ring pushes, block kernels — are annotated
///      FHP_REQUIRES_REGION; cross-lane readers that are only safe when
///      the lanes are quiescent — snapshot sums, publish(), timeline
///      export, sampler drains — are annotated FHP_EXCLUDES_REGION.
///      `par::parallel_for` itself is FHP_EXCLUDES_REGION, which turns a
///      nested region into a compile-time error instead of a runtime
///      ConfigError.
///
/// The capability is deliberately *phantom*: no runtime object backs it
/// and RegionWitness compiles to nothing. Who legitimately holds the
/// writer role:
///   - pool lanes inside a `parallel_for` region (the pool's RegionGuard
///     acquires the capability for the region's lambda bodies);
///   - the single driver thread *between* regions — it is lane 0 and the
///     only thread running, so serial single-writer sites (the machine
///     model's commit, a SpanScope closing on the driver thread) assert
///     the role with a local RegionWitness plus a comment justifying the
///     claim. A witness without such a justification is a bug.
///
/// See DESIGN.md "Static analysis model" for the full capability table.

#pragma once

#include "support/thread_annotations.hpp"

namespace fhp {

/// Hard ceiling on the number of lanes (and thus counter shards and span
/// rings). `par::kMaxLanes` aliases this.
inline constexpr int kMaxLanes = 64;

namespace detail {
/// Lane of the executing thread. Pool workers overwrite this once at
/// startup; every other thread keeps the default of 0. `constinit` is
/// load-bearing: it lets every TU access the TLS slot directly instead of
/// going through the Itanium-ABI thread wrapper for possibly-dynamically-
/// initialized externs (whose weak `_ZTH` dance UBSan flags as a null
/// load when the wrapper is elided across TUs).
extern thread_local constinit int t_lane;

/// Bind the calling thread to \p lane for its lifetime (pool workers
/// only; the driver thread stays lane 0).
void bind_lane(int lane) noexcept;
}  // namespace detail

/// Lane of the calling thread: 0 for the driver thread (and all serial
/// code), `1..threads()-1` inside pool workers during a region.
[[nodiscard]] inline int lane_id() noexcept { return detail::t_lane; }

/// The phantom capability type behind FHP_REQUIRES_REGION /
/// FHP_EXCLUDES_REGION (see file comment). Carries no state; exists only
/// for the thread-safety analysis.
class FHP_CAPABILITY("region") RegionCap {};

/// The single program-wide region capability object. Named in
/// annotations; never touched at runtime.
inline RegionCap region_cap;

/// Function writes lane-private data: caller must hold the per-lane
/// writer role (be a region lambda body, or a justified serial witness).
#define FHP_REQUIRES_REGION FHP_REQUIRES(::fhp::region_cap)

/// Function reads across lanes (or reconfigures them): caller must NOT
/// hold the writer role — lanes have to be quiescent.
#define FHP_EXCLUDES_REGION FHP_EXCLUDES(::fhp::region_cap)

/// RAII assertion of the per-lane writer role, visible to the
/// thread-safety analysis and free at runtime. Construct as the first
/// statement of a parallel-region lambda body; every serial use must
/// carry a comment justifying why the calling thread is the sole writer.
class FHP_SCOPED_CAPABILITY RegionWitness {
 public:
  RegionWitness() FHP_ACQUIRE(region_cap) {}
  ~RegionWitness() FHP_RELEASE() {}
  RegionWitness(const RegionWitness&) = delete;
  RegionWitness& operator=(const RegionWitness&) = delete;
};

}  // namespace fhp
