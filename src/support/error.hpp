/// \file error.hpp
/// \brief Error handling primitives for flashhp.
///
/// FLASH aborts through Driver_abortFlash with a message; we map that onto a
/// typed exception hierarchy so library users can recover where FLASH could
/// not. The FHP_REQUIRE / FHP_CHECK macros capture file:line context.

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fhp {

/// Base class of all flashhp errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A runtime-parameter or configuration problem (bad flash.par, bad argv).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// An operating-system interaction failed (mmap, madvise, /proc parsing...).
/// Carries the errno value observed at the failure site.
class SystemError : public Error {
 public:
  SystemError(const std::string& what, int errno_value)
      : Error(what), errno_value_(errno_value) {}
  /// errno captured when the underlying syscall failed (0 if not applicable).
  [[nodiscard]] int errno_value() const noexcept { return errno_value_; }

 private:
  int errno_value_ = 0;
};

/// Physics/numerics failure: EOS out of table range, negative density,
/// non-convergent Newton iteration, CFL violation, ...
class NumericsError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation — indicates a bug in flashhp itself.
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_requirement_failure(std::string_view expr,
                                            std::string_view msg,
                                            const std::source_location& loc);
[[noreturn]] void throw_internal_failure(std::string_view expr,
                                         std::string_view msg,
                                         const std::source_location& loc);
}  // namespace detail

}  // namespace fhp

/// Validate a caller-supplied precondition; throws fhp::ConfigError on failure.
#define FHP_REQUIRE(expr, msg)                                    \
  do {                                                            \
    if (!(expr)) {                                                \
      ::fhp::detail::throw_requirement_failure(                   \
          #expr, (msg), std::source_location::current());         \
    }                                                             \
  } while (false)

/// Validate an internal invariant; throws fhp::InternalError on failure.
#define FHP_CHECK(expr, msg)                                      \
  do {                                                            \
    if (!(expr)) {                                                \
      ::fhp::detail::throw_internal_failure(                      \
          #expr, (msg), std::source_location::current());         \
    }                                                             \
  } while (false)
