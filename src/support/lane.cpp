#include "support/lane.hpp"

namespace fhp::detail {

thread_local constinit int t_lane = 0;

void bind_lane(int lane) noexcept { t_lane = lane; }

}  // namespace fhp::detail
