/// \file trace.hpp
/// \brief The ambient span-tracing facade behind FHP_TRACE_SPAN.
///
/// Physics kernels (mesh, hydro, flame) and the driver mark timed scopes
/// with FHP_TRACE_SPAN, but the timeline machinery that stores and
/// exports those spans lives in fhp::obs — the *top* layer of the module
/// DAG, above sim. The layers in between may not include it (the
/// layering rule in tools/fhp_analyze.py makes that an error), so this
/// facade inverts the dependency: support defines the abstract Sink and
/// the one ambient slot, obs::Telemetry implements the Sink and installs
/// itself, and everything in between depends only on support.
///
/// The disabled path is the design's contract: with no sink installed a
/// SpanScope is one relaxed atomic load and a branch — no clock read, no
/// allocation, no virtual call — so an untraced run pays nothing on the
/// block-sweep hot path (tests/test_obs.cpp holds this with an
/// allocation-counting guard).
///
/// Threading contract: spans may close on the driver thread and on pool
/// lanes inside a parallel region — each records only against its own
/// lane (see support/lane.hpp for the writer-role capability this maps
/// to). Installing and uninstalling a sink is setup-time, driver-thread
/// work, outside any region.

#pragma once

#include <atomic>
#include <cstdint>

#include "support/lane.hpp"

namespace fhp::trace {

/// Abstract span sink. Implemented by obs::Telemetry; the virtual calls
/// are intentionally unannotated for the thread-safety analysis — the
/// implementation asserts its own writer-role invariants (per-lane
/// single-writer rings) where it touches lane-private storage.
class Sink {
 public:
  Sink() = default;
  virtual ~Sink() = default;
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Current timestamp in nanoseconds (SpanScope reads it twice).
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;

  /// One closed span, recorded against \p lane. Hot path: must not
  /// block and must not allocate.
  virtual void record_span(int lane, const char* name,
                           std::uint64_t begin_ns, std::uint64_t end_ns,
                           std::uint16_t depth) noexcept = 0;

  /// Timeline annotation for a completed driver step (driver thread
  /// only, between regions).
  virtual void mark_step(int step, double sim_time, double dt) = 0;
};

namespace detail {
/// The ambient installed sink (null = tracing disabled). Exposed so
/// SpanScope's disabled check inlines to a single atomic load.
extern std::atomic<Sink*> g_sink;
/// Per-thread sink override (valid only while t_sink_bound). constinit
/// thread_local for the same reason as fhp::detail::t_lane — a constant
/// initializer keeps the access a plain TLS load with no `_ZTH` wrapper
/// (see support/lane.hpp for the full rationale).
extern thread_local constinit Sink* t_sink;
extern thread_local constinit bool t_sink_bound;
/// Per-thread span nesting depth bookkeeping for SpanScope.
[[nodiscard]] std::uint16_t enter_span() noexcept;
void exit_span() noexcept;
}  // namespace detail

/// The sink visible to the calling thread: a thread-local binding when
/// one is in effect (see SinkBinding), the ambient sink otherwise. Null
/// = tracing disabled for this thread.
[[nodiscard]] inline Sink* sink() noexcept {
  if (detail::t_sink_bound) return detail::t_sink;
  return detail::g_sink.load(std::memory_order_acquire);
}

/// RAII thread-local sink binding: while alive, this thread's spans,
/// step marks and SpanScopes resolve to \p s instead of the ambient
/// sink (binding null masks the ambient sink for this thread). This is
/// how an rt::Runtime scopes its telemetry to its own driver thread and
/// pool lanes without publishing a process-wide sink: the driver binds
/// inside evolve(), and par applies the owning arena's LaneEnv on every
/// worker lane for the duration of a region. Bindings nest (save/
/// restore), and each binds only the constructing thread.
class SinkBinding {
 public:
  explicit SinkBinding(Sink* s) noexcept
      : saved_sink_(detail::t_sink), saved_bound_(detail::t_sink_bound) {
    detail::t_sink = s;
    detail::t_sink_bound = true;
  }
  ~SinkBinding() {
    detail::t_sink = saved_sink_;
    detail::t_sink_bound = saved_bound_;
  }
  SinkBinding(const SinkBinding&) = delete;
  SinkBinding& operator=(const SinkBinding&) = delete;

 private:
  Sink* saved_sink_;
  bool saved_bound_;
};

/// Publish \p s as the ambient sink. Returns false (and installs
/// nothing) when another sink is already installed.
[[nodiscard]] bool try_install(Sink* s) noexcept;

/// Withdraw \p s from the ambient slot; a no-op when some other sink is
/// installed (idempotent).
void uninstall(Sink* s) noexcept;

/// Forward a completed driver step to the ambient sink (no-op when
/// tracing is disabled). Driver thread only, between regions — hence
/// FHP_EXCLUDES_REGION.
void step_mark(int step, double sim_time, double dt) FHP_EXCLUDES_REGION;

/// RAII span scope: records {name, begin, end, depth, lane} into the
/// ambient sink on destruction; a no-op (one atomic load) when none is
/// installed. Use through FHP_TRACE_SPAN.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    Sink* s = trace::sink();
    if (s == nullptr) return;
    sink_ = s;
    name_ = name;
    depth_ = detail::enter_span();
    begin_ns_ = s->now_ns();
  }
  ~SpanScope() {
    if (sink_ == nullptr) return;
    const std::uint64_t end_ns = sink_->now_ns();
    detail::exit_span();
    sink_->record_span(::fhp::lane_id(), name_, begin_ns_, end_ns, depth_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Sink* sink_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace fhp::trace

// NOLINTNEXTLINE(cppcoreguidelines-macro-usage) — needs __LINE__ pasting.
#define FHP_TRACE_CONCAT_(a, b) a##b
#define FHP_TRACE_CONCAT(a, b) FHP_TRACE_CONCAT_(a, b)
/// Trace the enclosing scope as a span named \p name (a string literal).
#define FHP_TRACE_SPAN(name) \
  ::fhp::trace::SpanScope FHP_TRACE_CONCAT(fhp_trace_span_, __LINE__)(name)
