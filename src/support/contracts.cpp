#include "support/contracts.hpp"

#include <sstream>

namespace fhp::detail {

namespace {
std::string format_contract(std::string_view kind, std::string_view expr,
                            std::string_view msg,
                            const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " at " << loc.file_name() << ':' << loc.line() << " in "
     << loc.function_name() << ": (" << expr << ") — " << msg;
  return os.str();
}
}  // namespace

void throw_contract_violation(std::string_view expr, std::string_view msg,
                              const std::source_location& loc) {
  throw ContractViolation(
      format_contract("precondition violated", expr, msg, loc));
}

void throw_assertion_failure(std::string_view expr, std::string_view msg,
                             const std::source_location& loc) {
  throw AssertionError(format_contract("assertion failed", expr, msg, loc));
}

}  // namespace fhp::detail
