#include "support/table_writer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/error.hpp"

namespace fhp {

void TableWriter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TableWriter::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    FHP_REQUIRE(row.size() == header_.size(),
                "row width does not match header width");
  }
  rows_.push_back(std::move(row));
}

void TableWriter::render(std::ostream& os) const {
  // Compute column widths over header + rows.
  std::vector<size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < widths.size() ? " | " : " |");
    }
    os << '\n';
  };

  size_t total = 4;  // "| " + " |"
  for (size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i + 1 < widths.size() ? 3 : 0);
  }

  if (!title_.empty()) os << title_ << '\n';
  const std::string rule(total, '-');
  os << rule << '\n';
  if (!header_.empty()) {
    print_row(header_);
    os << rule << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  os << rule << '\n';
}

void TableWriter::render_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      const std::string& cell = row[i];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_measure(double value) {
  char buf[48];
  const double a = std::fabs(value);
  if (value == 0.0) return "0";
  if (a >= 0.01 && a < 1.0e4) {
    std::snprintf(buf, sizeof buf, "%.3g", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.2e", value);
  }
  return buf;
}

std::string format_ratio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return buf;
}

std::string ascii_bar(double value, double scale, int max_width) {
  if (!(scale > 0.0) || value < 0.0 || max_width <= 0) return {};
  const double frac = std::min(value / scale, 1.0);
  const int n = static_cast<int>(std::lround(frac * max_width));
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace fhp
