/// \file config.hpp
/// \brief Mesh configuration: block shape, variables, domain, boundaries.
///
/// FLASH/PARAMESH compile the block shape in (NXB x NYB x NZB zones plus
/// NGUARD guard cells per side) and size the `unk` container as
/// unk(NUNK_VARS, il:iu, jl:ju, kl:ku, MAXBLOCKS). flashhp keeps the same
/// quantities as runtime configuration — the paper notes PARAMESH's
/// "library mode" does the same — so tests and ablations can vary them.

#pragma once

#include <array>
#include <cstdint>

#include "support/error.hpp"

namespace fhp::mesh {

/// Coordinate geometry of the domain.
enum class Geometry : std::uint8_t {
  kCartesian,    ///< planar x/y/z
  kCylindrical,  ///< 2-d axisymmetric (r, z) — FLASH's supernova geometry
};

/// Boundary condition applied at a domain face.
enum class Bc : std::uint8_t {
  kOutflow,   ///< zero-gradient
  kReflect,   ///< mirror, normal velocity negated
  kPeriodic,  ///< wrap to the opposite face
  kAxis,      ///< cylindrical axis (r = 0): reflect with r-velocity negated
};

/// Standard FLASH-style variable slots. Setups append mass scalars
/// (species, flame progress variables) after kFirstScalar.
namespace var {
inline constexpr int kDens = 0;  ///< density [g/cm^3]
inline constexpr int kVelx = 1;  ///< x (or r) velocity [cm/s]
inline constexpr int kVely = 2;  ///< y (or z) velocity
inline constexpr int kVelz = 3;  ///< z velocity (zero in 2-d)
inline constexpr int kPres = 4;  ///< pressure [erg/cm^3]
inline constexpr int kEner = 5;  ///< specific total energy [erg/g]
inline constexpr int kEint = 6;  ///< specific internal energy [erg/g]
inline constexpr int kTemp = 7;  ///< temperature [K]
inline constexpr int kGamc = 8;  ///< Gamma1 (adiabatic sound-speed index)
inline constexpr int kGame = 9;  ///< "energy gamma": P/(rho eint) + 1
inline constexpr int kFirstScalar = 10;  ///< first advected mass scalar
}  // namespace var

/// Everything needed to size and interpret the mesh.
struct MeshConfig {
  int ndim = 2;               ///< 2 or 3
  int nxb = 16, nyb = 16, nzb = 1;  ///< interior zones per block per axis
  int nguard = 4;             ///< guard cells per side (FLASH default: 4)
  int nscalars = 0;           ///< advected mass scalars after the hydro set
  int maxblocks = 512;        ///< capacity of the unk container
  int max_level = 4;          ///< finest refinement level allowed (1-based)

  std::array<double, 3> lo{0.0, 0.0, 0.0};  ///< domain lower corner
  std::array<double, 3> hi{1.0, 1.0, 1.0};  ///< domain upper corner
  std::array<int, 3> nroot{1, 1, 1};        ///< root blocks per axis

  Geometry geometry = Geometry::kCartesian;
  /// [axis][side]: boundary conditions (side 0 = low, 1 = high).
  std::array<std::array<Bc, 2>, 3> bc{{{Bc::kOutflow, Bc::kOutflow},
                                       {Bc::kOutflow, Bc::kOutflow},
                                       {Bc::kOutflow, Bc::kOutflow}}};

  [[nodiscard]] int nvar() const noexcept {
    return var::kFirstScalar + nscalars;
  }
  /// Zones per axis including guards.
  [[nodiscard]] int ni() const noexcept { return nxb + 2 * nguard; }
  [[nodiscard]] int nj() const noexcept {
    return ndim >= 2 ? nyb + 2 * nguard : 1;
  }
  [[nodiscard]] int nk() const noexcept {
    return ndim >= 3 ? nzb + 2 * nguard : 1;
  }
  /// Interior index range along an axis (inclusive lo, exclusive hi).
  [[nodiscard]] int ilo() const noexcept { return nguard; }
  [[nodiscard]] int ihi() const noexcept { return nguard + nxb; }
  [[nodiscard]] int jlo() const noexcept { return ndim >= 2 ? nguard : 0; }
  [[nodiscard]] int jhi() const noexcept {
    return ndim >= 2 ? nguard + nyb : 1;
  }
  [[nodiscard]] int klo() const noexcept { return ndim >= 3 ? nguard : 0; }
  [[nodiscard]] int khi() const noexcept {
    return ndim >= 3 ? nguard + nzb : 1;
  }

  /// Children per block when refining.
  [[nodiscard]] int nchildren() const noexcept { return 1 << ndim; }

  /// Validate invariants; throws fhp::ConfigError.
  void validate() const {
    FHP_REQUIRE(ndim == 2 || ndim == 3, "ndim must be 2 or 3");
    FHP_REQUIRE(nxb > 0 && nyb > 0 && nzb > 0, "block shape must be positive");
    FHP_REQUIRE(ndim >= 3 || nzb == 1, "2-d meshes require nzb == 1");
    FHP_REQUIRE(nguard >= 2, "hydro needs at least 2 guard cells");
    FHP_REQUIRE(nxb % 2 == 0 && nyb % 2 == 0 && (ndim < 3 || nzb % 2 == 0),
                "block zones must be even (restriction pairs cells)");
    FHP_REQUIRE(nscalars >= 0, "nscalars must be >= 0");
    FHP_REQUIRE(maxblocks > 0, "maxblocks must be positive");
    FHP_REQUIRE(max_level >= 1, "max_level must be >= 1");
    FHP_REQUIRE(geometry != Geometry::kCylindrical || ndim == 2,
                "cylindrical geometry is 2-d (r, z)");
    for (std::size_t d = 0; d < 3; ++d) {
      FHP_REQUIRE(hi[d] > lo[d], "domain bounds inverted");
      FHP_REQUIRE(nroot[d] > 0, "need at least one root block per axis");
    }
    const bool px = bc[0][0] == Bc::kPeriodic;
    const bool px2 = bc[0][1] == Bc::kPeriodic;
    FHP_REQUIRE(px == px2, "periodic x boundaries must pair");
    FHP_REQUIRE((bc[1][0] == Bc::kPeriodic) == (bc[1][1] == Bc::kPeriodic),
                "periodic y boundaries must pair");
    FHP_REQUIRE((bc[2][0] == Bc::kPeriodic) == (bc[2][1] == Bc::kPeriodic),
                "periodic z boundaries must pair");
  }
};

}  // namespace fhp::mesh
