/// \file tree.hpp
/// \brief The block tree: PARAMESH's quadtree/octree bookkeeping.
///
/// Blocks carry a 1-based refinement level and integer coordinates within
/// the level's logical grid (nroot * 2^(level-1) blocks per axis). A hash
/// map from (level, coords) to block id supports neighbor queries; the
/// free-list allocator bounds live blocks by maxblocks, like PARAMESH.

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mesh/config.hpp"

namespace fhp::mesh {

/// Per-block metadata (PARAMESH's tree arrays, gathered into a struct).
struct BlockInfo {
  int parent = -1;
  std::array<int, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  int level = 1;                        ///< 1-based
  std::array<std::int32_t, 3> coord{};  ///< block coords within the level
  bool is_leaf = true;
  bool in_use = false;
};

/// Result of a same-level neighbor query.
struct NeighborQuery {
  int id = -1;               ///< block id, or -1
  bool outside_domain = false;  ///< stepped across a non-periodic boundary
};

/// The tree. Owns no solution data — ids index into UnkContainer slots.
class BlockTree {
 public:
  explicit BlockTree(const MeshConfig& config);

  /// Create the level-1 root grid (nroot blocks per axis). Must be called
  /// exactly once.
  void create_roots();

  [[nodiscard]] const MeshConfig& config() const noexcept { return config_; }
  [[nodiscard]] const BlockInfo& info(int id) const { return blocks_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int capacity() const noexcept {
    return static_cast<int>(blocks_.size());
  }
  [[nodiscard]] int num_allocated() const noexcept { return allocated_; }

  /// All leaf ids in Morton (space-filling) order, PARAMESH-style.
  [[nodiscard]] std::vector<int> leaves_morton() const;

  /// All allocated block ids at \p level.
  [[nodiscard]] std::vector<int> blocks_at_level(int level) const;

  /// Finest level with any allocated block.
  [[nodiscard]] int finest_level() const noexcept;

  /// Block id at (level, coords), or -1.
  [[nodiscard]] int find(int level,
                         const std::array<std::int32_t, 3>& coord) const;

  /// Same-level neighbor of \p id offset by step (each component in
  /// {-1,0,1}); applies periodic wrapping. id == -1 with
  /// outside_domain == false means "no block at this level here"
  /// (the region is covered coarser or finer).
  [[nodiscard]] NeighborQuery neighbor(int id,
                                       const std::array<int, 3>& step) const;

  /// Logical block extent of \p level along \p axis.
  [[nodiscard]] std::int32_t level_extent(int level, int axis) const noexcept {
    return config_.nroot[static_cast<std::size_t>(axis)]
           << (level - 1);
  }

  /// Physical bounds of a block.
  [[nodiscard]] std::array<double, 3> block_lo(int id) const;
  [[nodiscard]] std::array<double, 3> block_hi(int id) const;
  /// Cell width of \p level along \p axis.
  [[nodiscard]] double cell_size(int level, int axis) const noexcept;

  /// Split a leaf into 2^ndim children; returns the child ids (in z-curve
  /// order: x fastest). Throws fhp::SystemError if maxblocks is exhausted
  /// (PARAMESH aborts here too).
  std::array<int, 8> refine(int id);

  /// Remove the (leaf) children of \p id, making it a leaf again.
  void derefine(int id);

  /// True if every leaf's neighbors are within one level (2:1 balance).
  [[nodiscard]] bool is_balanced() const;

 private:
  [[nodiscard]] std::uint64_t key(int level,
                                  const std::array<std::int32_t, 3>& c) const;
  int allocate_slot();

  MeshConfig config_;
  std::vector<BlockInfo> blocks_;
  std::vector<int> free_list_;
  std::unordered_map<std::uint64_t, int> index_;
  int allocated_ = 0;
};

}  // namespace fhp::mesh
