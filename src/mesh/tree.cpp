#include "mesh/tree.hpp"

#include <algorithm>

namespace fhp::mesh {

BlockTree::BlockTree(const MeshConfig& config) : config_(config) {
  config_.validate();
  blocks_.resize(static_cast<std::size_t>(config_.maxblocks));
  free_list_.reserve(blocks_.size());
  for (int id = config_.maxblocks - 1; id >= 0; --id) {
    free_list_.push_back(id);
  }
}

std::uint64_t BlockTree::key(int level,
                             const std::array<std::int32_t, 3>& c) const {
  // 5 bits of level, 19 bits per coordinate (plenty: level 16 of a 8-root
  // grid is 2^18 blocks per axis).
  return (static_cast<std::uint64_t>(level) << 57) |
         (static_cast<std::uint64_t>(c[0] & 0x7ffff) << 38) |
         (static_cast<std::uint64_t>(c[1] & 0x7ffff) << 19) |
         static_cast<std::uint64_t>(c[2] & 0x7ffff);
}

int BlockTree::allocate_slot() {
  if (free_list_.empty()) {
    throw SystemError(
        "maxblocks (" + std::to_string(config_.maxblocks) +
            ") exhausted — increase MeshConfig::maxblocks",
        0);
  }
  const int id = free_list_.back();
  free_list_.pop_back();
  blocks_[static_cast<std::size_t>(id)] = BlockInfo{};
  blocks_[static_cast<std::size_t>(id)].in_use = true;
  ++allocated_;
  return id;
}

void BlockTree::create_roots() {
  FHP_REQUIRE(allocated_ == 0, "create_roots called on a non-empty tree");
  const auto& nr = config_.nroot;
  const int nz = config_.ndim >= 3 ? nr[2] : 1;
  for (std::int32_t kz = 0; kz < nz; ++kz) {
    for (std::int32_t jy = 0; jy < nr[1]; ++jy) {
      for (std::int32_t ix = 0; ix < nr[0]; ++ix) {
        const int id = allocate_slot();
        BlockInfo& b = blocks_[static_cast<std::size_t>(id)];
        b.level = 1;
        b.coord = {ix, jy, kz};
        b.is_leaf = true;
        index_[key(1, b.coord)] = id;
      }
    }
  }
}

std::vector<int> BlockTree::leaves_morton() const {
  struct Item {
    std::uint64_t morton;
    int level;
    int id;
  };
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(allocated_));
  const int finest = finest_level();
  for (int id = 0; id < capacity(); ++id) {
    const BlockInfo& b = blocks_[static_cast<std::size_t>(id)];
    if (!b.in_use || !b.is_leaf) continue;
    // Scale coordinates to the finest level, then interleave bits.
    const int shift = finest - b.level;
    std::uint64_t m = 0;
    for (int bit = 0; bit < 21; ++bit) {
      for (int d = 0; d < 3; ++d) {
        const std::uint64_t c = static_cast<std::uint64_t>(
                                    b.coord[static_cast<std::size_t>(d)])
                                << shift;
        m |= ((c >> bit) & 1ull) << (3 * bit + d);
      }
    }
    items.push_back({m, b.level, id});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.morton != b.morton ? a.morton < b.morton : a.level < b.level;
  });
  std::vector<int> out;
  out.reserve(items.size());
  for (const Item& it : items) out.push_back(it.id);
  return out;
}

std::vector<int> BlockTree::blocks_at_level(int level) const {
  std::vector<int> out;
  for (int id = 0; id < capacity(); ++id) {
    const BlockInfo& b = blocks_[static_cast<std::size_t>(id)];
    if (b.in_use && b.level == level) out.push_back(id);
  }
  return out;
}

int BlockTree::finest_level() const noexcept {
  int finest = 0;
  for (const BlockInfo& b : blocks_) {
    if (b.in_use) finest = std::max(finest, b.level);
  }
  return finest;
}

int BlockTree::find(int level,
                    const std::array<std::int32_t, 3>& coord) const {
  const auto it = index_.find(key(level, coord));
  return it == index_.end() ? -1 : it->second;
}

NeighborQuery BlockTree::neighbor(int id,
                                  const std::array<int, 3>& step) const {
  const BlockInfo& b = info(id);
  std::array<std::int32_t, 3> c = b.coord;
  for (int d = 0; d < config_.ndim; ++d) {
    c[static_cast<std::size_t>(d)] += step[static_cast<std::size_t>(d)];
    const std::int32_t extent = level_extent(b.level, d);
    if (c[static_cast<std::size_t>(d)] < 0 ||
        c[static_cast<std::size_t>(d)] >= extent) {
      const int side = step[static_cast<std::size_t>(d)] < 0 ? 0 : 1;
      if (config_.bc[static_cast<std::size_t>(d)]
                    [static_cast<std::size_t>(side)] == Bc::kPeriodic) {
        c[static_cast<std::size_t>(d)] =
            (c[static_cast<std::size_t>(d)] + extent) % extent;
      } else {
        return {-1, true};
      }
    }
  }
  return {find(b.level, c), false};
}

std::array<double, 3> BlockTree::block_lo(int id) const {
  const BlockInfo& b = info(id);
  std::array<double, 3> lo = config_.lo;
  for (int d = 0; d < config_.ndim; ++d) {
    const auto dd = static_cast<std::size_t>(d);
    const double width = (config_.hi[dd] - config_.lo[dd]) /
                         level_extent(b.level, d);
    lo[dd] = config_.lo[dd] + width * b.coord[dd];
  }
  return lo;
}

std::array<double, 3> BlockTree::block_hi(int id) const {
  const BlockInfo& b = info(id);
  std::array<double, 3> hi = config_.hi;
  for (int d = 0; d < config_.ndim; ++d) {
    const auto dd = static_cast<std::size_t>(d);
    const double width = (config_.hi[dd] - config_.lo[dd]) /
                         level_extent(b.level, d);
    hi[dd] = config_.lo[dd] + width * (b.coord[dd] + 1);
  }
  return hi;
}

double BlockTree::cell_size(int level, int axis) const noexcept {
  const auto a = static_cast<std::size_t>(axis);
  const int zones = axis == 0 ? config_.nxb : (axis == 1 ? config_.nyb : config_.nzb);
  return (config_.hi[a] - config_.lo[a]) /
         (static_cast<double>(level_extent(level, axis)) * zones);
}

std::array<int, 8> BlockTree::refine(int id) {
  BlockInfo& parent = blocks_[static_cast<std::size_t>(id)];
  FHP_REQUIRE(parent.in_use && parent.is_leaf, "can only refine a leaf");
  FHP_REQUIRE(parent.level < config_.max_level,
              "refine would exceed max_level");

  std::array<int, 8> kids{-1, -1, -1, -1, -1, -1, -1, -1};
  const int n = config_.nchildren();
  for (int c = 0; c < n; ++c) {
    const int kid = allocate_slot();
    kids[static_cast<std::size_t>(c)] = kid;
  }
  // allocate_slot may not reallocate blocks_ (fixed capacity), so the
  // parent reference stays valid.
  for (int c = 0; c < n; ++c) {
    const int kid = kids[static_cast<std::size_t>(c)];
    BlockInfo& child = blocks_[static_cast<std::size_t>(kid)];
    child.parent = id;
    child.level = parent.level + 1;
    child.coord = {2 * parent.coord[0] + (c & 1),
                   2 * parent.coord[1] + ((c >> 1) & 1),
                   config_.ndim >= 3 ? 2 * parent.coord[2] + ((c >> 2) & 1)
                                     : 0};
    child.is_leaf = true;
    index_[key(child.level, child.coord)] = kid;
  }
  parent.children = kids;
  parent.is_leaf = false;
  return kids;
}

void BlockTree::derefine(int id) {
  BlockInfo& parent = blocks_[static_cast<std::size_t>(id)];
  FHP_REQUIRE(parent.in_use && !parent.is_leaf,
              "derefine needs a block with children");
  const int n = config_.nchildren();
  for (int c = 0; c < n; ++c) {
    const int kid = parent.children[static_cast<std::size_t>(c)];
    const BlockInfo& child = blocks_[static_cast<std::size_t>(kid)];
    FHP_REQUIRE(child.is_leaf, "derefine requires leaf children");
    index_.erase(key(child.level, child.coord));
    blocks_[static_cast<std::size_t>(kid)].in_use = false;
    free_list_.push_back(kid);
    --allocated_;
  }
  parent.children.fill(-1);
  parent.is_leaf = true;
}

bool BlockTree::is_balanced() const {
  // A leaf at level L may not touch (share a face/edge/corner with) any
  // block at level >= L+2. Check by probing all finer-by-2 positions.
  for (int id = 0; id < capacity(); ++id) {
    const BlockInfo& b = blocks_[static_cast<std::size_t>(id)];
    if (!b.in_use || !b.is_leaf) continue;
    for (int dz = (config_.ndim >= 3 ? -1 : 0);
         dz <= (config_.ndim >= 3 ? 1 : 0); ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const NeighborQuery q = neighbor(id, {dx, dy, dz});
          if (q.id < 0) continue;
          const BlockInfo& nb = info(q.id);
          if (!nb.is_leaf) {
            // Neighbor has children at L+1; if a child that touches our
            // leaf also has children (level L+2 adjacent to us) the mesh
            // is unbalanced.
            for (int c = 0; c < config_.nchildren(); ++c) {
              const int kid = nb.children[static_cast<std::size_t>(c)];
              if (kid < 0 || info(kid).is_leaf) continue;
              const BlockInfo& grand = info(kid);
              bool adjacent = true;
              for (int d = 0; d < config_.ndim; ++d) {
                const auto dd = static_cast<std::size_t>(d);
                const std::int32_t lo2 = 2 * b.coord[dd] - 1;
                const std::int32_t hi2 = 2 * b.coord[dd] + 2;
                // Compare in unwrapped space: shift the child coordinate
                // by the step taken, handling periodic wrap via the
                // neighbor's own coordinates.
                std::int32_t cc = grand.coord[dd];
                const std::int32_t extent2 = level_extent(b.level + 1, d);
                if (cc < lo2) cc += extent2;
                if (cc > hi2 && cc - extent2 >= lo2) cc -= extent2;
                if (cc < lo2 || cc > hi2) {
                  adjacent = false;
                  break;
                }
              }
              if (adjacent) return false;
            }
          }
        }
      }
    }
  }
  return true;
}

}  // namespace fhp::mesh
