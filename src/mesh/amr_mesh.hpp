/// \file amr_mesh.hpp
/// \brief The adaptive mesh: solution data + tree + mesh operations.
///
/// AmrMesh combines the `unk` container and the block tree and implements
/// the PARAMESH operations FLASH relies on:
///   - guard-cell filling (same-level exchange, coarse-to-fine
///     interpolation, physical boundary conditions), level by level;
///   - restriction (children -> parents, volume-weighted), so interior
///     blocks always carry valid data;
///   - prolongation on refinement (minmod-limited linear, conservative);
///   - a Löhner (1987) error estimator and a remesh driver that enforces
///     2:1 balance, as FLASH's Grid_updateRefinement does.
///
/// Geometry: Cartesian (2-d/3-d) and 2-d cylindrical (r, z) — the
/// supernova setup's geometry — via cell-volume and face-area methods the
/// hydro unit uses for its finite-volume update.

#pragma once

#include <array>
#include <span>
#include <vector>

#include "mem/huge_policy.hpp"
#include "mesh/config.hpp"
#include "mesh/tree.hpp"
#include "mesh/unk.hpp"
#include "support/lane.hpp"

namespace fhp::par {
class ExecArena;
}  // namespace fhp::par

namespace fhp::mesh {

/// The mesh. Construction allocates `unk` (maxblocks capacity) on the
/// given huge-page policy and block layout and creates the root blocks.
class AmrMesh {
 public:
  /// \param pool the PagePool `unk` is carved from (runtime callers pass
  ///        `runtime.page_pool()`).
  /// \param arena the execution arena block-parallel mesh operations
  ///        (and the physics kernels iterating this mesh) run on; null =
  ///        the process arena. rt::Runtime-owned setups pass
  ///        `&runtime.arena()` so concurrent meshes never share a
  ///        region guard.
  AmrMesh(const MeshConfig& config, mem::HugePolicy policy,
          LayoutKind layout, mem::PagePool& pool,
          par::ExecArena* arena = nullptr);

  /// The arena this mesh's block-parallel sweeps run on.
  [[nodiscard]] par::ExecArena& arena() const noexcept { return *arena_; }

  [[nodiscard]] const MeshConfig& config() const noexcept { return config_; }
  [[nodiscard]] UnkContainer& unk() noexcept { return unk_; }
  [[nodiscard]] const UnkContainer& unk() const noexcept { return unk_; }
  [[nodiscard]] BlockTree& tree() noexcept { return tree_; }
  [[nodiscard]] const BlockTree& tree() const noexcept { return tree_; }

  // --- coordinates -------------------------------------------------------
  /// Cell width of block \p b along \p axis.
  [[nodiscard]] double dx(int b, int axis) const {
    return tree_.cell_size(tree_.info(b).level, axis);
  }
  /// Cell-center coordinate (padded index i includes guards).
  [[nodiscard]] double xcenter(int b, int i) const;
  [[nodiscard]] double ycenter(int b, int j) const;
  [[nodiscard]] double zcenter(int b, int k) const;
  /// Coordinate of the *low* face of cell i along x (r in cylindrical).
  [[nodiscard]] double xface(int b, int i) const;

  /// Cell volume (cylindrical: 2-pi-integrated torus volume).
  [[nodiscard]] double cell_volume(int b, int i, int j, int k) const;
  /// Area of the low face of cell (i,j,k) perpendicular to \p axis.
  [[nodiscard]] double face_area(int b, int axis, int i, int j, int k) const;

  // --- mesh operations ---------------------------------------------------
  /// Fill every guard cell of every allocated block (restriction first,
  /// then level-ordered exchange/interpolation, then physical BCs).
  /// Within each level the per-block exchange runs block-parallel on
  /// this mesh's arena.
  void fill_guardcells();

  /// Fill every guard zone of one block (same-level copies, coarse
  /// interpolation, physical BCs). Writes only \p b's guards and reads
  /// only the blocks reported by guard_sources(b): same-level neighbor
  /// *interiors* and coarse-block interiors *plus guards*. Runs as a
  /// region-lambda / task body on a pool lane, hence FHP_REQUIRES_REGION.
  /// The bulk fill_guardcells() path calls it level by level; the
  /// task-graph driver submits it per block with guard_sources-derived
  /// dependency edges instead.
  void fill_block_guards(int b) FHP_REQUIRES_REGION;

  /// The blocks whose data fill_block_guards(b) reads — the task-graph
  /// driver's dependency query. Setup-time (allocates; walks the same
  /// directions and per-cell coarse lookups as the fill itself, so the
  /// edge set is exact, including diagonal coarse covers and periodic
  /// wraps). \p b itself never appears in either list.
  struct GuardSources {
    std::vector<int> same_level;  ///< interiors read by same-level copies
    std::vector<int> coarse;      ///< interior+guards read by interpolation
  };
  [[nodiscard]] GuardSources guard_sources(int b) const;

  /// Restrict leaf data into all ancestors (volume-weighted).
  void restrict_all();

  /// Refine one leaf: allocate children and prolong data into them.
  /// Guard cells of \p id must be current (call fill_guardcells first).
  std::array<int, 8> refine_block(int id);

  /// Derefine: restrict children into \p id and free them.
  void derefine_block(int id);

  /// Löhner error estimator for variable \p v on block \p b (max over
  /// interior zones of the normalized second-derivative ratio).
  [[nodiscard]] double loehner_error(int b, int v) const;

  /// One full refinement pass: estimate on \p est_vars (max over vars),
  /// refine leaves above \p refine_cut (up to max_level), derefine sibling
  /// groups below \p derefine_cut, enforce 2:1 balance. Guard cells are
  /// refreshed internally. Returns the number of blocks changed.
  int remesh(std::span<const int> est_vars, double refine_cut,
             double derefine_cut);

  // --- iteration helpers --------------------------------------------------
  /// Apply f(b, i, j, k) to every interior cell of every leaf.
  template <typename F>
  void for_leaf_cells(F&& f) {
    const MeshConfig& c = config_;
    for (int b : tree_.leaves_morton()) {
      for (int k = c.klo(); k < c.khi(); ++k) {
        for (int j = c.jlo(); j < c.jhi(); ++j) {
          for (int i = c.ilo(); i < c.ihi(); ++i) {
            f(b, i, j, k);
          }
        }
      }
    }
  }

  /// Volume integral of variable \p v over all leaves (e.g. kDens -> mass).
  [[nodiscard]] double integrate(int v) const;

  /// Volume integral of v1*v2 (e.g. dens*ener -> total internal energy).
  [[nodiscard]] double integrate_product(int v1, int v2) const;

 private:
  /// Fill the guards of one block in one direction from a same-level
  /// source block (handles periodic shifts implicitly via index copy).
  void copy_same_level(int dst, int src, const std::array<int, 3>& step);
  /// Fill the guards of one block in one direction by interpolating from
  /// the underlying coarse block.
  void fill_from_coarse(int dst, const std::array<int, 3>& step);
  /// Apply physical boundary conditions on every domain-facing guard slab.
  void apply_boundaries(int b);
  /// Restrict one child quadrant/octant into its parent.
  void restrict_child(int parent, int child);
  /// Prolong parent data into one child (minmod-limited linear).
  void prolong_child(int parent, int child);

  /// Guard-region index range of block-local axis for a step component.
  struct Range {
    int lo, hi;
  };
  [[nodiscard]] Range guard_range(int axis, int step) const;

  MeshConfig config_;
  BlockTree tree_;
  UnkContainer unk_;
  par::ExecArena* arena_;  ///< never null after construction
};

}  // namespace fhp::mesh
