#include "mesh/amr_mesh.hpp"

#include <algorithm>
#include <cmath>

#include "support/trace.hpp"
#include "par/parallel.hpp"
#include "support/contracts.hpp"

namespace fhp::mesh {

namespace {
constexpr double kTwoPi = 6.283185307179586;

double minmod(double a, double b) noexcept {
  if (a * b <= 0.0) return 0.0;
  return std::fabs(a) < std::fabs(b) ? a : b;
}
}  // namespace

AmrMesh::AmrMesh(const MeshConfig& config, mem::HugePolicy policy,
                 LayoutKind layout, mem::PagePool& pool,
                 par::ExecArena* arena)
    : config_(config),
      tree_(config),
      unk_(config, policy, layout, pool),
      arena_(arena != nullptr ? arena : &par::process_arena()) {
  tree_.create_roots();
  unk_.refresh_page_shift();
}

double AmrMesh::xcenter(int b, int i) const {
  return tree_.block_lo(b)[0] + (i - config_.nguard + 0.5) * dx(b, 0);
}

double AmrMesh::ycenter(int b, int j) const {
  if (config_.ndim < 2) return 0.0;
  return tree_.block_lo(b)[1] + (j - config_.nguard + 0.5) * dx(b, 1);
}

double AmrMesh::zcenter(int b, int k) const {
  if (config_.ndim < 3) return 0.0;
  return tree_.block_lo(b)[2] + (k - config_.nguard + 0.5) * dx(b, 2);
}

double AmrMesh::xface(int b, int i) const {
  return tree_.block_lo(b)[0] + (i - config_.nguard) * dx(b, 0);
}

double AmrMesh::cell_volume(int b, int i, int j, int k) const {
  (void)j;
  (void)k;
  const double hx = dx(b, 0);
  if (config_.geometry == Geometry::kCylindrical) {
    const double rl = xface(b, i);
    const double rc = rl + 0.5 * hx;
    return kTwoPi * rc * hx * dx(b, 1);
  }
  double vol = hx;
  if (config_.ndim >= 2) vol *= dx(b, 1);
  if (config_.ndim >= 3) vol *= dx(b, 2);
  return vol;
}

double AmrMesh::face_area(int b, int axis, int i, int j, int k) const {
  (void)j;
  (void)k;
  if (config_.geometry == Geometry::kCylindrical) {
    const double hx = dx(b, 0);
    if (axis == 0) {
      const double rl = xface(b, i);
      return kTwoPi * rl * dx(b, 1);  // radial face at radius r_low
    }
    const double rc = xface(b, i) + 0.5 * hx;
    return kTwoPi * rc * hx;  // z face: annulus area
  }
  switch (axis) {
    case 0: {
      double a = 1.0;
      if (config_.ndim >= 2) a *= dx(b, 1);
      if (config_.ndim >= 3) a *= dx(b, 2);
      return a;
    }
    case 1: {
      double a = dx(b, 0);
      if (config_.ndim >= 3) a *= dx(b, 2);
      return a;
    }
    default:
      return dx(b, 0) * dx(b, 1);
  }
}

AmrMesh::Range AmrMesh::guard_range(int axis, int step) const {
  const int ng = config_.nguard;
  int lo = 0, hi = 1, n = 1;
  switch (axis) {
    case 0: lo = config_.ilo(); hi = config_.ihi(); n = config_.nxb; break;
    case 1: lo = config_.jlo(); hi = config_.jhi(); n = config_.nyb; break;
    default: lo = config_.klo(); hi = config_.khi(); n = config_.nzb; break;
  }
  if (axis >= config_.ndim) return {0, 1};
  if (step < 0) return {lo - ng, lo};
  if (step > 0) return {hi, hi + ng};
  (void)n;
  return {lo, hi};
}

void AmrMesh::copy_same_level(int dst, int src, const std::array<int, 3>& step) {
  const int nvar = config_.nvar();
  const std::array<int, 3> shift = {step[0] * config_.nxb,
                                    step[1] * config_.nyb,
                                    step[2] * config_.nzb};
  const Range ri = guard_range(0, step[0]);
  const Range rj = guard_range(1, step[1]);
  const Range rk = guard_range(2, step[2]);
  for (int k = rk.lo; k < rk.hi; ++k) {
    for (int j = rj.lo; j < rj.hi; ++j) {
      for (int i = ri.lo; i < ri.hi; ++i) {
        for (int v = 0; v < nvar; ++v) {
          unk_.at(v, i, j, k, dst) =
              unk_.at(v, i - shift[0], j - shift[1], k - shift[2], src);
        }
      }
    }
  }
}

void AmrMesh::fill_from_coarse(int dst, const std::array<int, 3>& step) {
  const BlockInfo& fine = tree_.info(dst);
  FHP_CHECK(fine.level >= 2, "coarse fill on a level-1 block");
  const int nvar = config_.nvar();
  const int ng = config_.nguard;
  const std::array<int, 3> nb = {config_.nxb, config_.nyb, config_.nzb};

  const Range ri = guard_range(0, step[0]);
  const Range rj = guard_range(1, step[1]);
  const Range rk = guard_range(2, step[2]);

  // Global fine-cell extent per axis (for periodic wrapping).
  std::array<std::int64_t, 3> nglobal{1, 1, 1};
  for (int d = 0; d < config_.ndim; ++d) {
    nglobal[static_cast<std::size_t>(d)] =
        static_cast<std::int64_t>(tree_.level_extent(fine.level, d)) *
        nb[static_cast<std::size_t>(d)];
  }

  for (int k = rk.lo; k < rk.hi; ++k) {
    for (int j = rj.lo; j < rj.hi; ++j) {
      for (int i = ri.lo; i < ri.hi; ++i) {
        // Global fine indices of this guard cell (wrapped if periodic).
        std::array<std::int64_t, 3> gf = {
            static_cast<std::int64_t>(fine.coord[0]) * nb[0] + (i - ng),
            config_.ndim >= 2
                ? static_cast<std::int64_t>(fine.coord[1]) * nb[1] + (j - ng)
                : 0,
            config_.ndim >= 3
                ? static_cast<std::int64_t>(fine.coord[2]) * nb[2] + (k - ng)
                : 0};
        for (int d = 0; d < config_.ndim; ++d) {
          const auto dd = static_cast<std::size_t>(d);
          gf[dd] = ((gf[dd] % nglobal[dd]) + nglobal[dd]) % nglobal[dd];
        }
        // Underlying coarse cell and the coarse block holding it.
        std::array<std::int64_t, 3> gc = {gf[0] >> 1, gf[1] >> 1, gf[2] >> 1};
        std::array<std::int32_t, 3> cb = {
            static_cast<std::int32_t>(gc[0] / nb[0]),
            config_.ndim >= 2 ? static_cast<std::int32_t>(gc[1] / nb[1]) : 0,
            config_.ndim >= 3 ? static_cast<std::int32_t>(gc[2] / nb[2]) : 0};
        const int coarse = tree_.find(fine.level - 1, cb);
        FHP_CHECK(coarse >= 0, "2:1 balance violated: no coarse cover block");
        const int ci = static_cast<int>(gc[0] - static_cast<std::int64_t>(cb[0]) * nb[0]) + ng;
        const int cj = config_.ndim >= 2
                           ? static_cast<int>(gc[1] - static_cast<std::int64_t>(cb[1]) * nb[1]) + ng
                           : 0;
        const int ck = config_.ndim >= 3
                           ? static_cast<int>(gc[2] - static_cast<std::int64_t>(cb[2]) * nb[2]) + ng
                           : 0;
        // Position of the fine cell inside the coarse cell: -1/4 or +1/4.
        const double xi = (gf[0] & 1) ? 0.25 : -0.25;
        const double xj = (gf[1] & 1) ? 0.25 : -0.25;
        const double xk = (gf[2] & 1) ? 0.25 : -0.25;
        for (int v = 0; v < nvar; ++v) {
          double value = unk_.at(v, ci, cj, ck, coarse);
          value += xi * 0.5 *
                   (unk_.at(v, ci + 1, cj, ck, coarse) -
                    unk_.at(v, ci - 1, cj, ck, coarse));
          if (config_.ndim >= 2) {
            value += xj * 0.5 *
                     (unk_.at(v, ci, cj + 1, ck, coarse) -
                      unk_.at(v, ci, cj - 1, ck, coarse));
          }
          if (config_.ndim >= 3) {
            value += xk * 0.5 *
                     (unk_.at(v, ci, cj, ck + 1, coarse) -
                      unk_.at(v, ci, cj, ck - 1, coarse));
          }
          unk_.at(v, i, j, k, dst) = value;
        }
      }
    }
  }
}

void AmrMesh::apply_boundaries(int b) {
  const BlockInfo& info = tree_.info(b);
  const int nvar = config_.nvar();
  const int ng = config_.nguard;

  for (int axis = 0; axis < config_.ndim; ++axis) {
    const auto ax = static_cast<std::size_t>(axis);
    const std::int32_t extent = tree_.level_extent(info.level, axis);
    for (int side = 0; side < 2; ++side) {
      const Bc bc = config_.bc[ax][static_cast<std::size_t>(side)];
      if (bc == Bc::kPeriodic) continue;
      const bool at_boundary = side == 0 ? info.coord[ax] == 0
                                         : info.coord[ax] == extent - 1;
      if (!at_boundary) continue;

      const int lo = axis == 0 ? config_.ilo()
                   : axis == 1 ? config_.jlo()
                               : config_.klo();
      const int hi = axis == 0 ? config_.ihi()
                   : axis == 1 ? config_.jhi()
                               : config_.khi();
      const int vel_var = axis == 0   ? var::kVelx
                          : axis == 1 ? var::kVely
                                      : var::kVelz;

      // Full tangential slabs (guards included) so corners get values.
      const int imax = config_.ni();
      const int jmax = config_.nj();
      const int kmax = config_.nk();
      for (int g = 0; g < ng; ++g) {
        const int dst = side == 0 ? lo - 1 - g : hi + g;
        const int src_outflow = side == 0 ? lo : hi - 1;
        const int src_reflect = side == 0 ? lo + g : hi - 1 - g;
        const int src =
            (bc == Bc::kOutflow) ? src_outflow : src_reflect;
        for (int k = 0; k < (axis == 2 ? 1 : kmax); ++k) {
          for (int j = 0; j < (axis == 1 ? 1 : jmax); ++j) {
            for (int i = 0; i < (axis == 0 ? 1 : imax); ++i) {
              int di = i, dj = j, dk = k, si = i, sj = j, sk = k;
              if (axis == 0) { di = dst; si = src; }
              if (axis == 1) { dj = dst; sj = src; }
              if (axis == 2) { dk = dst; sk = src; }
              for (int v = 0; v < nvar; ++v) {
                double value = unk_.at(v, si, sj, sk, b);
                if ((bc == Bc::kReflect || bc == Bc::kAxis) && v == vel_var) {
                  value = -value;
                }
                unk_.at(v, di, dj, dk, b) = value;
              }
            }
          }
        }
      }
    }
  }
}

void AmrMesh::fill_block_guards(int b) {
  const int zlo = config_.ndim >= 3 ? -1 : 0;
  const int zhi = config_.ndim >= 3 ? 1 : 0;
  for (int dz = zlo; dz <= zhi; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx_ = -1; dx_ <= 1; ++dx_) {
        if (dx_ == 0 && dy == 0 && dz == 0) continue;
        const std::array<int, 3> step{dx_, dy, dz};
        const NeighborQuery q = tree_.neighbor(b, step);
        if (q.outside_domain) continue;  // physical BC pass below
        if (q.id >= 0) {
          copy_same_level(b, q.id, step);
        } else {
          fill_from_coarse(b, step);
        }
      }
    }
  }
  apply_boundaries(b);
}

AmrMesh::GuardSources AmrMesh::guard_sources(int b) const {
  GuardSources sources;
  const auto note = [](std::vector<int>& list, int id) {
    if (std::find(list.begin(), list.end(), id) == list.end()) {
      list.push_back(id);
    }
  };
  const BlockInfo& fine = tree_.info(b);
  const std::array<int, 3> nb = {config_.nxb, config_.nyb, config_.nzb};
  const int ng = config_.nguard;
  const int zlo = config_.ndim >= 3 ? -1 : 0;
  const int zhi = config_.ndim >= 3 ? 1 : 0;
  for (int dz = zlo; dz <= zhi; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx_ = -1; dx_ <= 1; ++dx_) {
        if (dx_ == 0 && dy == 0 && dz == 0) continue;
        const std::array<int, 3> step{dx_, dy, dz};
        const NeighborQuery q = tree_.neighbor(b, step);
        if (q.outside_domain) continue;
        if (q.id >= 0) {
          if (q.id != b) note(sources.same_level, q.id);
          continue;
        }
        // Coarse interpolation: replay fill_from_coarse's per-guard-cell
        // block lookup, collecting the covering coarse blocks instead of
        // reading them (diagonal directions can touch several).
        const Range ri = guard_range(0, step[0]);
        const Range rj = guard_range(1, step[1]);
        const Range rk = guard_range(2, step[2]);
        std::array<std::int64_t, 3> nglobal{1, 1, 1};
        for (int d = 0; d < config_.ndim; ++d) {
          nglobal[static_cast<std::size_t>(d)] =
              static_cast<std::int64_t>(tree_.level_extent(fine.level, d)) *
              nb[static_cast<std::size_t>(d)];
        }
        for (int k = rk.lo; k < rk.hi; ++k) {
          for (int j = rj.lo; j < rj.hi; ++j) {
            for (int i = ri.lo; i < ri.hi; ++i) {
              std::array<std::int64_t, 3> gf = {
                  static_cast<std::int64_t>(fine.coord[0]) * nb[0] + (i - ng),
                  config_.ndim >= 2
                      ? static_cast<std::int64_t>(fine.coord[1]) * nb[1] +
                            (j - ng)
                      : 0,
                  config_.ndim >= 3
                      ? static_cast<std::int64_t>(fine.coord[2]) * nb[2] +
                            (k - ng)
                      : 0};
              for (int d = 0; d < config_.ndim; ++d) {
                const auto dd = static_cast<std::size_t>(d);
                gf[dd] = ((gf[dd] % nglobal[dd]) + nglobal[dd]) % nglobal[dd];
              }
              const std::array<std::int64_t, 3> gc = {gf[0] >> 1, gf[1] >> 1,
                                                      gf[2] >> 1};
              const std::array<std::int32_t, 3> cb = {
                  static_cast<std::int32_t>(gc[0] / nb[0]),
                  config_.ndim >= 2
                      ? static_cast<std::int32_t>(gc[1] / nb[1])
                      : 0,
                  config_.ndim >= 3
                      ? static_cast<std::int32_t>(gc[2] / nb[2])
                      : 0};
              const int coarse = tree_.find(fine.level - 1, cb);
              FHP_CHECK(coarse >= 0,
                        "2:1 balance violated: no coarse cover block");
              note(sources.coarse, coarse);
            }
          }
        }
      }
    }
  }
  return sources;
}

void AmrMesh::fill_guardcells() {
  FHP_TRACE_SPAN("grid.fill_guardcells");
  restrict_all();  // serial: parent interiors feed fill_from_coarse below
  const int finest = tree_.finest_level();
  for (int level = 1; level <= finest; ++level) {
    // Within one level the exchange is block-parallel: fill_block_guards
    // writes only block b's guard zones and reads neighbor *interiors*
    // (same level, never written in this pass) or coarser-level data
    // (finalized by earlier level iterations).
    const std::vector<int>& blocks = tree_.blocks_at_level(level);
    arena_->parallel_for_blocks(blocks, [&](int /*lane*/, int b) {
      RegionWitness witness;  // region lambda body: lane writer role
      fill_block_guards(b);
    });
  }
}

void AmrMesh::restrict_child(int parent, int child) {
  const BlockInfo& ci = tree_.info(child);
  const int nvar = config_.nvar();
  const int ng = config_.nguard;
  const int ox = (ci.coord[0] & 1) * (config_.nxb / 2);
  const int oy = config_.ndim >= 2 ? (ci.coord[1] & 1) * (config_.nyb / 2) : 0;
  const int oz = config_.ndim >= 3 ? (ci.coord[2] & 1) * (config_.nzb / 2) : 0;
  const bool cyl = config_.geometry == Geometry::kCylindrical;

  for (int k = config_.klo(); k < config_.khi(); k += (config_.ndim >= 3 ? 2 : 1)) {
    for (int j = config_.jlo(); j < config_.jhi(); j += (config_.ndim >= 2 ? 2 : 1)) {
      for (int i = config_.ilo(); i < config_.ihi(); i += 2) {
        const int pi = ng + ox + (i - ng) / 2;
        const int pj = config_.ndim >= 2 ? ng + oy + (j - ng) / 2 : 0;
        const int pk = config_.ndim >= 3 ? ng + oz + (k - ng) / 2 : 0;
        const int kspan = config_.ndim >= 3 ? 2 : 1;
        const int jspan = config_.ndim >= 2 ? 2 : 1;
        for (int v = 0; v < nvar; ++v) {
          double sum = 0.0, wsum = 0.0;
          for (int kk = 0; kk < kspan; ++kk) {
            for (int jj = 0; jj < jspan; ++jj) {
              for (int ii = 0; ii < 2; ++ii) {
                const double w =
                    cyl ? std::max(1e-300, xcenter(child, i + ii)) : 1.0;
                sum += w * unk_.at(v, i + ii, j + jj, k + kk, child);
                wsum += w;
              }
            }
          }
          unk_.at(v, pi, pj, pk, parent) = sum / wsum;
        }
      }
    }
  }
}

void AmrMesh::restrict_all() {
  const int finest = tree_.finest_level();
  for (int level = finest; level >= 2; --level) {
    for (int b : tree_.blocks_at_level(level)) {
      const int parent = tree_.info(b).parent;
      if (parent >= 0) restrict_child(parent, b);
    }
  }
}

void AmrMesh::prolong_child(int parent, int child) {
  const BlockInfo& ci = tree_.info(child);
  const int nvar = config_.nvar();
  const int ng = config_.nguard;
  const int ox = (ci.coord[0] & 1) * (config_.nxb / 2);
  const int oy = config_.ndim >= 2 ? (ci.coord[1] & 1) * (config_.nyb / 2) : 0;
  const int oz = config_.ndim >= 3 ? (ci.coord[2] & 1) * (config_.nzb / 2) : 0;

  for (int k = config_.klo(); k < config_.khi(); ++k) {
    for (int j = config_.jlo(); j < config_.jhi(); ++j) {
      for (int i = config_.ilo(); i < config_.ihi(); ++i) {
        const int pi = ng + ox + (i - ng) / 2;
        const int pj = config_.ndim >= 2 ? ng + oy + (j - ng) / 2 : 0;
        const int pk = config_.ndim >= 3 ? ng + oz + (k - ng) / 2 : 0;
        const double xi = ((i - ng) & 1) ? 0.25 : -0.25;
        const double xj = ((j - ng) & 1) ? 0.25 : -0.25;
        const double xk = ((k - ng) & 1) ? 0.25 : -0.25;
        for (int v = 0; v < nvar; ++v) {
          double value = unk_.at(v, pi, pj, pk, parent);
          value += xi * minmod(unk_.at(v, pi + 1, pj, pk, parent) -
                                   unk_.at(v, pi, pj, pk, parent),
                               unk_.at(v, pi, pj, pk, parent) -
                                   unk_.at(v, pi - 1, pj, pk, parent));
          if (config_.ndim >= 2) {
            value += xj * minmod(unk_.at(v, pi, pj + 1, pk, parent) -
                                     unk_.at(v, pi, pj, pk, parent),
                                 unk_.at(v, pi, pj, pk, parent) -
                                     unk_.at(v, pi, pj - 1, pk, parent));
          }
          if (config_.ndim >= 3) {
            value += xk * minmod(unk_.at(v, pi, pj, pk + 1, parent) -
                                     unk_.at(v, pi, pj, pk, parent),
                                 unk_.at(v, pi, pj, pk, parent) -
                                     unk_.at(v, pi, pj, pk - 1, parent));
          }
          unk_.at(v, i, j, k, child) = value;
        }
      }
    }
  }
}

std::array<int, 8> AmrMesh::refine_block(int id) {
  FHP_PRECONDITION(id >= 0 && id < tree_.capacity(),
                   "refine_block id out of range");
  const std::array<int, 8> kids = tree_.refine(id);
  for (int c = 0; c < config_.nchildren(); ++c) {
    prolong_child(id, kids[static_cast<std::size_t>(c)]);
  }
  return kids;
}

void AmrMesh::derefine_block(int id) {
  FHP_PRECONDITION(id >= 0 && id < tree_.capacity(),
                   "derefine_block id out of range");
  const BlockInfo& info = tree_.info(id);
  for (int c = 0; c < config_.nchildren(); ++c) {
    const int kid = info.children[static_cast<std::size_t>(c)];
    restrict_child(id, kid);
  }
  tree_.derefine(id);
}

double AmrMesh::loehner_error(int b, int v) const {
  constexpr double kFilter = 0.01;
  const MeshConfig& c = config_;
  double worst = 0.0;
  for (int k = c.klo(); k < c.khi(); ++k) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        double num = 0.0, den = 0.0;
        auto accumulate = [&](double up, double uc, double um) {
          const double d2 = up - 2.0 * uc + um;
          const double d1 = std::fabs(up - uc) + std::fabs(uc - um);
          const double filter =
              kFilter * (std::fabs(up) + 2.0 * std::fabs(uc) + std::fabs(um));
          num += d2 * d2;
          const double dd = d1 + filter;
          den += dd * dd;
        };
        accumulate(unk_.at(v, i + 1, j, k, b), unk_.at(v, i, j, k, b),
                   unk_.at(v, i - 1, j, k, b));
        if (c.ndim >= 2) {
          accumulate(unk_.at(v, i, j + 1, k, b), unk_.at(v, i, j, k, b),
                     unk_.at(v, i, j - 1, k, b));
        }
        if (c.ndim >= 3) {
          accumulate(unk_.at(v, i, j, k + 1, b), unk_.at(v, i, j, k, b),
                     unk_.at(v, i, j, k - 1, b));
        }
        if (den > 0.0) worst = std::max(worst, std::sqrt(num / den));
      }
    }
  }
  return worst;
}

int AmrMesh::remesh(std::span<const int> est_vars, double refine_cut,
                    double derefine_cut) {
  FHP_PRECONDITION(!est_vars.empty(), "remesh needs at least one error var");
  FHP_PRECONDITION(refine_cut >= derefine_cut,
                   "refine_cut must not undercut derefine_cut");
  fill_guardcells();

  const std::vector<int> leaves = tree_.leaves_morton();
  std::vector<char> want_refine(static_cast<std::size_t>(tree_.capacity()), 0);
  std::vector<char> want_derefine(static_cast<std::size_t>(tree_.capacity()),
                                  0);

  for (int b : leaves) {
    double err = 0.0;
    for (int v : est_vars) err = std::max(err, loehner_error(b, v));
    const int level = tree_.info(b).level;
    if (err > refine_cut && level < config_.max_level) {
      want_refine[static_cast<std::size_t>(b)] = 1;
    } else if (err < derefine_cut && level > 1) {
      want_derefine[static_cast<std::size_t>(b)] = 1;
    }
  }

  // Balance promotion: a coarser neighbor of a to-be-refined leaf must
  // refine too if the result would break 2:1 adjacency.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < tree_.capacity(); ++b) {
      if (!want_refine[static_cast<std::size_t>(b)]) continue;
      const BlockInfo& info = tree_.info(b);
      if (!info.in_use || !info.is_leaf) continue;
      const int zlo = config_.ndim >= 3 ? -1 : 0;
      const int zhi = config_.ndim >= 3 ? 1 : 0;
      for (int dz = zlo; dz <= zhi; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx_ = -1; dx_ <= 1; ++dx_) {
            if (dx_ == 0 && dy == 0 && dz == 0) continue;
            const NeighborQuery q = tree_.neighbor(b, {dx_, dy, dz});
            if (q.outside_domain || q.id >= 0) continue;
            // Region is covered coarser: that cover block must refine.
            std::array<std::int32_t, 3> cc = info.coord;
            cc[0] = static_cast<std::int32_t>(
                std::floor((info.coord[0] + dx_) / 2.0));
            cc[1] = config_.ndim >= 2
                        ? static_cast<std::int32_t>(
                              std::floor((info.coord[1] + dy) / 2.0))
                        : 0;
            cc[2] = config_.ndim >= 3
                        ? static_cast<std::int32_t>(
                              std::floor((info.coord[2] + dz) / 2.0))
                        : 0;
            // Wrap periodic coordinates at the coarse level.
            for (int d = 0; d < config_.ndim; ++d) {
              const auto dd = static_cast<std::size_t>(d);
              const std::int32_t ext = tree_.level_extent(info.level - 1, d);
              cc[dd] = static_cast<std::int32_t>(((cc[dd] % ext) + ext) % ext);
            }
            const int cover = tree_.find(info.level - 1, cc);
            if (cover >= 0 && tree_.info(cover).is_leaf &&
                !want_refine[static_cast<std::size_t>(cover)]) {
              want_refine[static_cast<std::size_t>(cover)] = 1;
              want_derefine[static_cast<std::size_t>(cover)] = 0;
              changed = true;
            }
          }
        }
      }
    }
  }

  int changes = 0;

  // Derefinement: a sibling group collapses only if every child is a leaf
  // marked for derefinement and the collapse keeps 2:1 balance.
  for (int parent = 0; parent < tree_.capacity(); ++parent) {
    const BlockInfo& p = tree_.info(parent);
    if (!p.in_use || p.is_leaf) continue;
    bool all_marked = true;
    for (int c = 0; c < config_.nchildren() && all_marked; ++c) {
      const int kid = p.children[static_cast<std::size_t>(c)];
      const BlockInfo& ki = tree_.info(kid);
      all_marked = ki.is_leaf &&
                   want_derefine[static_cast<std::size_t>(kid)] != 0 &&
                   want_refine[static_cast<std::size_t>(kid)] == 0;
    }
    if (!all_marked) continue;
    // Check: after collapse the parent (a leaf at level L) must not touch
    // any level L+2 block — i.e. no neighbor's child adjacent to a child
    // of p may have children. Also no adjacent leaf may be marked refine.
    bool safe = true;
    for (int c = 0; c < config_.nchildren() && safe; ++c) {
      const int kid = p.children[static_cast<std::size_t>(c)];
      const int zlo = config_.ndim >= 3 ? -1 : 0;
      const int zhi = config_.ndim >= 3 ? 1 : 0;
      for (int dz = zlo; dz <= zhi && safe; ++dz) {
        for (int dy = -1; dy <= 1 && safe; ++dy) {
          for (int dx_ = -1; dx_ <= 1 && safe; ++dx_) {
            if (dx_ == 0 && dy == 0 && dz == 0) continue;
            const NeighborQuery q = tree_.neighbor(kid, {dx_, dy, dz});
            if (q.id < 0) continue;
            const BlockInfo& nb = tree_.info(q.id);
            if (!nb.is_leaf) safe = false;  // finer data next to the group
            if (nb.is_leaf && want_refine[static_cast<std::size_t>(q.id)]) {
              safe = false;
            }
          }
        }
      }
    }
    if (!safe) continue;
    derefine_block(parent);
    ++changes;
  }

  // Refinement.
  for (int b = 0; b < tree_.capacity(); ++b) {
    if (!want_refine[static_cast<std::size_t>(b)]) continue;
    const BlockInfo& info = tree_.info(b);
    if (!info.in_use || !info.is_leaf) continue;
    refine_block(b);
    ++changes;
  }

  if (changes > 0) fill_guardcells();
  return changes;
}

double AmrMesh::integrate(int v) const {
  double total = 0.0;
  const MeshConfig& c = config_;
  for (int b : tree_.leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          total += unk_.at(v, i, j, k, b) * cell_volume(b, i, j, k);
        }
      }
    }
  }
  return total;
}

double AmrMesh::integrate_product(int v1, int v2) const {
  double total = 0.0;
  const MeshConfig& c = config_;
  for (int b : tree_.leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          total += unk_.at(v1, i, j, k, b) * unk_.at(v2, i, j, k, b) *
                   cell_volume(b, i, j, k);
        }
      }
    }
  }
  return total;
}

}  // namespace fhp::mesh
