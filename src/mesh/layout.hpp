/// \file layout.hpp
/// \brief Block-data layout policy: how (var, i, j, k, block) maps to memory.
///
/// PARAMESH hard-codes the Fortran `unk(nvar, i, j, k, blk)` order —
/// variable fastest — and the paper's whole DTLB story follows from that
/// one decision ("there is a stride in memory for addressing variables in
/// different zones or blocks"). The follow-up studies (arXiv:2309.04652,
/// arXiv:2408.16084) treat data layout as the co-equal knob next to page
/// size. BlockLayout lifts the decision out of UnkContainer into an
/// explicit, runtime-selectable policy so layout x page-size is a
/// first-class experiment axis:
///
///   | kind       | order (fastest -> slowest)      | per-var plane        |
///   |------------|---------------------------------|----------------------|
///   | var_major  | v, i, j, k, b (Fortran baseline)| strided by nvar      |
///   | zone_major | i, j, k, v, b (block-local SoA) | contiguous           |
///   | tiled      | i,j,k in tiles; v per tile; b   | contiguous per tile  |
///
/// Invariants every layout must satisfy (enforced by test_layout.cpp):
///   * bijection: offset() is a bijection from the (v,i,j,k,b) domain onto
///     [0, nvar*ni*nj*nk*maxblocks) — no holes, no aliasing;
///   * identical footprint: block_stride() == nvar*ni*nj*nk for all kinds,
///     so switching layouts never changes the arena size or page count;
///   * block locality: all data of block b lives in
///     [b*block_stride, (b+1)*block_stride) — AMR block allocation and
///     checkpoint ordering stay layout-independent.
///
/// Physics kernels address zones through UnkContainer::at(), which
/// delegates here, so the end state is bit-identical across layouts; only
/// the *address stream* changes. The tracer consumes layouts through
/// for_each_var_run(): the maximal contiguous runs covering a zone's
/// variable vector. Under var_major that is one nread*8-byte touch —
/// byte-for-byte the seed's trace, keeping golden counters bit-identical —
/// while zone_major/tiled decay to per-variable touches, so modeled DTLB
/// misses track the real access pattern of each layout.
///
/// Selection mirrors mem::HugePolicy — one resolution order, first hit
/// wins: explicit set_default_layout() (including the one made by
/// apply_runtime_params() for a non-empty "mesh.layout"), then the
/// FLASHHP_LAYOUT environment variable, then kVarMajor.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "support/contracts.hpp"

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::mesh {

/// The memory-order policy for block solution data.
enum class LayoutKind : std::uint8_t {
  kVarMajor,   ///< Fortran unk(nvar,i,j,k,blk): variable fastest (baseline)
  kZoneMajor,  ///< block-local SoA: contiguous per-variable planes
  kTiled,      ///< zone-major inside cache-sized i x j x k tiles
};

/// Canonical lower-case spelling ("var_major", "zone_major", "tiled").
[[nodiscard]] std::string_view to_string(LayoutKind kind) noexcept;

/// Parse a layout string (case-insensitive); nullopt if unrecognized.
[[nodiscard]] std::optional<LayoutKind> parse_layout(std::string_view s);

/// Environment variable honoured by layout_from_environment().
inline constexpr const char* kLayoutEnvVar = "FLASHHP_LAYOUT";

/// Resolution steps 2-3: FLASHHP_LAYOUT, then \p fallback. Throws
/// ConfigError on an unparsable value.
[[nodiscard]] LayoutKind layout_from_environment(
    LayoutKind fallback = LayoutKind::kVarMajor);

/// Process-wide resolved layout. Lazily initialized via the resolution
/// order. This is a shim for code outside any runtime: an rt::Runtime
/// snapshots it (or an explicit override) at construction, and mesh
/// containers take the layout explicitly. The lint rule
/// `singleton-instance` bans new call sites outside the shims.
// fhp-lint: allow(singleton-instance)
[[nodiscard]] LayoutKind default_layout();

/// Resolution step 1: pin the process-wide default.
void set_default_layout(LayoutKind kind) noexcept;

/// Name of the runtime parameter declared by declare_runtime_params().
inline constexpr const char* kLayoutParamName = "mesh.layout";

/// Declare "mesh.layout" (default "": defer to the environment).
void declare_runtime_params(RuntimeParams& params);

/// If "mesh.layout" was set non-empty, parse it (ConfigError on junk) and
/// pin it via set_default_layout(). Call after apply_command_line().
void apply_runtime_params(const RuntimeParams& params);

/// One block-data layout, instantiated for a concrete block shape. The
/// struct is a vtable-free strategy: var_major and zone_major are affine
/// (offset = v*sv + i*si + j*sj + k*sk + b*block_stride with precomputed
/// strides) and tiled adds a tile decomposition; offset() branches on the
/// kind once, with no virtual dispatch on the at() hot path.
class BlockLayout {
 public:
  /// Build a layout for nvar variables on padded blocks of ni x nj x nk
  /// zones. Tiled picks, per axis, the largest tile edge from {8,4,2,1}
  /// that divides the padded extent, so tiles never straddle blocks and
  /// no padding is introduced (block_stride is identical across kinds).
  BlockLayout(LayoutKind kind, int nvar, int ni, int nj, int nk);

  [[nodiscard]] LayoutKind kind() const noexcept { return kind_; }
  [[nodiscard]] int nvar() const noexcept { return nvar_; }
  [[nodiscard]] int ni() const noexcept { return ni_; }
  [[nodiscard]] int nj() const noexcept { return nj_; }
  [[nodiscard]] int nk() const noexcept { return nk_; }

  /// Doubles per block — nvar*ni*nj*nk for every kind (see invariants).
  [[nodiscard]] std::size_t block_stride() const noexcept {
    return block_stride_;
  }

  /// Flat offset of (v, i, j, k, b) in doubles from the arena base.
  [[nodiscard]] std::size_t offset(int v, int i, int j, int k,
                                   int b) const noexcept {
    const auto vz = static_cast<std::size_t>(v);
    const auto bz = static_cast<std::size_t>(b);
    if (kind_ != LayoutKind::kTiled) {
      return vz * sv_ + static_cast<std::size_t>(i) * si_ +
             static_cast<std::size_t>(j) * sj_ +
             static_cast<std::size_t>(k) * sk_ + bz * block_stride_;
    }
    const auto io = static_cast<std::size_t>(i % ti_);
    const auto jo = static_cast<std::size_t>(j % tj_);
    const auto ko = static_cast<std::size_t>(k % tk_);
    const auto tile =
        static_cast<std::size_t>((i / ti_) +
                                 ntx_ * ((j / tj_) + nty_ * (k / tk_)));
    return io +
           static_cast<std::size_t>(ti_) *
               (jo + static_cast<std::size_t>(tj_) *
                         (ko + static_cast<std::size_t>(tk_) * vz)) +
           tile_cells_ * static_cast<std::size_t>(nvar_) * tile +
           bz * block_stride_;
  }

  /// True when offset() is affine in all five indices (var_major,
  /// zone_major). Tiled offsets are piecewise affine: zone_stride() and
  /// var_stride() are only meaningful for affine layouts.
  [[nodiscard]] bool affine() const noexcept {
    return kind_ != LayoutKind::kTiled;
  }

  /// Distance in doubles between a zone and its neighbour along \p axis
  /// (0=i, 1=j, 2=k) at fixed variable. Affine layouts only.
  [[nodiscard]] std::size_t zone_stride(int axis) const noexcept {
    FHP_PRECONDITION(affine(), "zone_stride is defined for affine layouts");
    FHP_PRECONDITION(axis >= 0 && axis <= 2, "axis must be 0, 1 or 2");
    return axis == 0 ? si_ : axis == 1 ? sj_ : sk_;
  }

  /// Distance in doubles between consecutive variables of one zone.
  /// Affine layouts only (1 for var_major, ni*nj*nk for zone_major).
  [[nodiscard]] std::size_t var_stride() const noexcept {
    FHP_PRECONDITION(affine(), "var_stride is defined for affine layouts");
    return sv_;
  }

  /// True when a zone's variable vector [0, nvar) is contiguous in
  /// memory — the Fortran property FLASH kernels and the checkpoint
  /// format historically assumed. Only var_major has it.
  [[nodiscard]] bool vars_contiguous() const noexcept {
    return kind_ == LayoutKind::kVarMajor;
  }

  /// Enumerate the maximal contiguous runs that cover variables
  /// [v0, v0+count) of zone (i,j,k,b), calling fn(offset, run_length) for
  /// each. var_major yields one run of `count` (byte-identical to the
  /// seed's contiguous touch); zone_major and tiled yield `count` runs of
  /// one double each. This is the tracer's window into the layout.
  template <typename Fn>
  void for_each_var_run(int v0, int count, int i, int j, int k, int b,
                        Fn&& fn) const {
    if (count <= 0) return;
    if (kind_ == LayoutKind::kVarMajor) {
      fn(offset(v0, i, j, k, b), count);
      return;
    }
    for (int v = v0; v < v0 + count; ++v) {
      fn(offset(v, i, j, k, b), 1);
    }
  }

  /// Copy variables [v0, v0+count) of zone (i,j,k,b) from \p base into
  /// \p out — the canonical (variable-fastest) zone vector, regardless of
  /// layout. Checkpoints and composition callbacks use this instead of
  /// assuming vars_contiguous().
  void gather_zone(const double* base, int v0, int count, int i, int j,
                   int k, int b, double* out) const noexcept {
    for (int v = 0; v < count; ++v) {
      out[v] = base[offset(v0 + v, i, j, k, b)];
    }
  }

  /// Inverse of gather_zone: scatter a canonical zone vector into place.
  void scatter_zone(double* base, int v0, int count, int i, int j, int k,
                    int b, const double* in) const noexcept {
    for (int v = 0; v < count; ++v) {
      base[offset(v0 + v, i, j, k, b)] = in[v];
    }
  }

 private:
  LayoutKind kind_;
  int nvar_, ni_, nj_, nk_;
  std::size_t block_stride_;
  // Affine strides (doubles). Valid for var_major / zone_major; for tiled
  // they are unused and offset() takes the tile path instead.
  std::size_t sv_ = 0, si_ = 0, sj_ = 0, sk_ = 0;
  // Tile decomposition (tiled only): edge lengths, tile counts per axis,
  // zones per tile.
  int ti_ = 1, tj_ = 1, tk_ = 1;
  int ntx_ = 1, nty_ = 1;
  std::size_t tile_cells_ = 1;
};

}  // namespace fhp::mesh
