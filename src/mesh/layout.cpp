#include "mesh/layout.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/error.hpp"
#include "support/runtime_params.hpp"
#include "support/string_util.hpp"

namespace fhp::mesh {

std::string_view to_string(LayoutKind kind) noexcept {
  switch (kind) {
    case LayoutKind::kVarMajor: return "var_major";
    case LayoutKind::kZoneMajor: return "zone_major";
    case LayoutKind::kTiled: return "tiled";
  }
  return "?";
}

std::optional<LayoutKind> parse_layout(std::string_view s) {
  const std::string v = to_lower(trim(s));
  if (v == "var_major" || v == "varmajor" || v == "fortran" || v == "aos") {
    return LayoutKind::kVarMajor;
  }
  if (v == "zone_major" || v == "zonemajor" || v == "soa") {
    return LayoutKind::kZoneMajor;
  }
  if (v == "tiled" || v == "tile") return LayoutKind::kTiled;
  return std::nullopt;
}

LayoutKind layout_from_environment(LayoutKind fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once at mesh setup,
  // before any worker threads exist; nothing in-process calls setenv.
  if (const char* raw = std::getenv(kLayoutEnvVar);
      raw != nullptr && *raw != '\0') {
    const auto parsed = parse_layout(raw);
    if (!parsed) {
      throw ConfigError(std::string(kLayoutEnvVar) + "='" + raw +
                        "' is not a valid block layout "
                        "(expected var_major|zone_major|tiled)");
    }
    return *parsed;
  }
  return fallback;
}

namespace {
std::atomic<int> g_default_layout{-1};  // -1: not yet initialized
}

// Resolution shim behind rt::Runtime's layout snapshot (runtime.cpp is
// the licensed caller). fhp-lint: allow(singleton-instance)
LayoutKind default_layout() {
  int v = g_default_layout.load(std::memory_order_acquire);
  if (v < 0) {
    const LayoutKind env = layout_from_environment(LayoutKind::kVarMajor);
    v = static_cast<int>(env);
    int expected = -1;
    g_default_layout.compare_exchange_strong(expected, v,
                                             std::memory_order_acq_rel);
    v = g_default_layout.load(std::memory_order_acquire);
  }
  return static_cast<LayoutKind>(v);
}

void set_default_layout(LayoutKind kind) noexcept {
  g_default_layout.store(static_cast<int>(kind), std::memory_order_release);
}

void declare_runtime_params(RuntimeParams& params) {
  params.declare_string(kLayoutParamName, "",
                        "block-data layout (var_major|zone_major|tiled; "
                        "empty: resolve from " +
                            std::string(kLayoutEnvVar) + ")");
}

void apply_runtime_params(const RuntimeParams& params) {
  const std::string value = params.get_string(kLayoutParamName);
  if (value.empty()) return;
  const auto parsed = parse_layout(value);
  if (!parsed) {
    throw ConfigError(std::string(kLayoutParamName) + "='" + value +
                      "' is not a valid block layout "
                      "(expected var_major|zone_major|tiled)");
  }
  set_default_layout(*parsed);
}

namespace {
/// Largest edge from {8, 4, 2, 1} dividing the padded extent \p n, so
/// tiles always partition the block exactly (no padding, no straddling).
int tile_edge(int n) {
  for (int e : {8, 4, 2}) {
    if (n % e == 0) return e;
  }
  return 1;
}
}  // namespace

BlockLayout::BlockLayout(LayoutKind kind, int nvar, int ni, int nj, int nk)
    : kind_(kind),
      nvar_(nvar),
      ni_(ni),
      nj_(nj),
      nk_(nk),
      block_stride_(static_cast<std::size_t>(nvar) * ni * nj * nk) {
  FHP_PRECONDITION(nvar > 0 && ni > 0 && nj > 0 && nk > 0,
                   "layout extents must be positive");
  const auto niz = static_cast<std::size_t>(ni);
  const auto njz = static_cast<std::size_t>(nj);
  const auto nkz = static_cast<std::size_t>(nk);
  switch (kind_) {
    case LayoutKind::kVarMajor:
      // Fortran unk(nvar, i, j, k): variable fastest — bit-for-bit the
      // historical UnkContainer::offset math.
      sv_ = 1;
      si_ = static_cast<std::size_t>(nvar);
      sj_ = si_ * niz;
      sk_ = sj_ * njz;
      break;
    case LayoutKind::kZoneMajor:
      // Block-local SoA: each variable is one contiguous ni*nj*nk plane,
      // planes stacked per block so block data stays contiguous for AMR.
      si_ = 1;
      sj_ = niz;
      sk_ = niz * njz;
      sv_ = niz * njz * nkz;
      break;
    case LayoutKind::kTiled:
      ti_ = tile_edge(ni);
      tj_ = tile_edge(nj);
      tk_ = tile_edge(nk);
      ntx_ = ni / ti_;
      nty_ = nj / tj_;
      tile_cells_ = static_cast<std::size_t>(ti_) * tj_ * tk_;
      break;
  }
}

}  // namespace fhp::mesh
