/// \file unk.hpp
/// \brief The `unk` container: FLASH's principal mesh data array.
///
/// PARAMESH stores solution data as
///
///   unk(nvar, il_bnd:iu_bnd, jl_bnd:ju_bnd, kl_bnd:ku_bnd, maxblocks)
///
/// in Fortran column-major order: the *variable* index is the fastest
/// axis and the block index the slowest. Reading one variable across a
/// block therefore strides by nvar doubles between zones — the memory
/// pattern the paper identifies as the motivation for huge pages
/// ("there is a stride in memory for addressing variables in different
/// zones or blocks"). UnkContainer reproduces this layout exactly and
/// lives on a MappedRegion under the experiment's HugePolicy.

#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/allocator.hpp"
#include "mem/huge_policy.hpp"
#include "mesh/config.hpp"
#include "support/contracts.hpp"
#include "tlb/trace.hpp"

namespace fhp::mesh {

/// The solution array. Indices: (var, i, j, k, block), var fastest.
class UnkContainer {
 public:
  UnkContainer(const MeshConfig& config, mem::HugePolicy policy)
      : nvar_(config.nvar()),
        ni_(config.ni()),
        nj_(config.nj()),
        nk_(config.nk()),
        maxblocks_(config.maxblocks),
        block_stride_(static_cast<std::size_t>(nvar_) * ni_ * nj_ * nk_),
        data_(block_stride_ * static_cast<std::size_t>(maxblocks_), policy) {}

  /// Flat offset of (v, i, j, k, b) — Fortran order, v fastest.
  [[nodiscard]] std::size_t offset(int v, int i, int j, int k,
                                   int b) const noexcept {
    return static_cast<std::size_t>(v) +
           static_cast<std::size_t>(nvar_) *
               (static_cast<std::size_t>(i) +
                static_cast<std::size_t>(ni_) *
                    (static_cast<std::size_t>(j) +
                     static_cast<std::size_t>(nj_) *
                         (static_cast<std::size_t>(k) +
                          static_cast<std::size_t>(nk_) *
                              static_cast<std::size_t>(b))));
  }

  [[nodiscard]] double& at(int v, int i, int j, int k, int b) noexcept {
    return data_[offset(v, i, j, k, b)];
  }
  [[nodiscard]] double at(int v, int i, int j, int k, int b) const noexcept {
    return data_[offset(v, i, j, k, b)];
  }
  [[nodiscard]] const double* ptr(int v, int i, int j, int k,
                                  int b) const noexcept {
    return data_.data() + offset(v, i, j, k, b);
  }

  [[nodiscard]] int nvar() const noexcept { return nvar_; }
  [[nodiscard]] int ni() const noexcept { return ni_; }
  [[nodiscard]] int nj() const noexcept { return nj_; }
  [[nodiscard]] int nk() const noexcept { return nk_; }
  [[nodiscard]] int maxblocks() const noexcept { return maxblocks_; }
  [[nodiscard]] std::size_t block_stride() const noexcept {
    return block_stride_;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(double);
  }

  /// Backing region (for huge-page verification and tracing).
  [[nodiscard]] const mem::MappedRegion& region() const noexcept {
    return data_.region();
  }

  /// Cache the effective translation page size (scans smaps once); call
  /// after the container is resident, before tracing.
  void refresh_page_shift() {
    page_shift_ = tlb::effective_page_shift(region());
  }
  [[nodiscard]] std::uint8_t page_shift() const noexcept { return page_shift_; }

  /// Replay the address stream of a kernel sweep over block \p b that
  /// reads \p nread variables and writes \p nwrite variables zone by zone
  /// in the interior range [ilo,ihi) x [jlo,jhi) x [klo,khi), touching the
  /// variables contiguously at each zone (FLASH kernels read unk(:, i, j,
  /// k) vectors). This is the canonical strided pattern of the paper.
  void trace_sweep(tlb::Tracer& tracer, int b, int ilo, int ihi, int jlo,
                   int jhi, int klo, int khi, int nread, int nwrite) const {
    trace_sweep_axis(tracer, b, 0, ilo, ihi, jlo, jhi, klo, khi, nread,
                     nwrite);
  }

  /// Like trace_sweep, but visits zones in *pencil order along \p axis* —
  /// the order the dimensionally split hydro gathers its pencils. For
  /// axis 1 (y) consecutive zones are nvar*ni doubles apart and for
  /// axis 2 (z) nvar*ni*nj doubles apart: a 3-d pencil touches a fresh
  /// 4 KiB page on nearly every zone, which is the stride pattern the
  /// paper blames for FLASH's DTLB behaviour.
  void trace_sweep_axis(tlb::Tracer& tracer, int b, int axis, int ilo,
                        int ihi, int jlo, int jhi, int klo, int khi,
                        int nread, int nwrite) const {
    if (!tracer.enabled()) return;
    FHP_PRECONDITION(axis >= 0 && axis <= 2, "sweep axis must be 0, 1 or 2");
    FHP_PRECONDITION(b >= 0 && b < maxblocks_, "block index out of range");
    FHP_PRECONDITION(0 <= ilo && ilo <= ihi && ihi <= ni_ &&
                         0 <= jlo && jlo <= jhi && jhi <= nj_ &&
                         0 <= klo && klo <= khi && khi <= nk_,
                     "sweep range exceeds block extent");
    FHP_PRECONDITION(nread >= 0 && nread <= nvar_ && nwrite >= 0 &&
                         nwrite <= nvar_,
                     "cannot touch more variables than the mesh carries");
    // Mapped-range containment: the last zone of the sweep must lie inside
    // the backing region (catches stride/layout bugs before they scribble).
    FHP_ASSERT(ihi == ilo || jhi == jlo || khi == klo ||
                   region().contains(
                       ptr(0, ihi - 1, jhi - 1, khi - 1, b),
                       sizeof(double) * static_cast<std::size_t>(nvar_)),
               "sweep extends past the mapped unk region");
    const int lo[3] = {ilo, jlo, klo};
    const int hi[3] = {ihi, jhi, khi};
    // outer/mid/inner loop axes; `axis` is innermost (the pencil).
    const int inner = axis;
    const int mid = axis == 0 ? 1 : 0;
    const int outer = axis == 2 ? 1 : 2;
    int idx[3];
    for (idx[outer] = lo[outer]; idx[outer] < hi[outer]; ++idx[outer]) {
      for (idx[mid] = lo[mid]; idx[mid] < hi[mid]; ++idx[mid]) {
        for (idx[inner] = lo[inner]; idx[inner] < hi[inner]; ++idx[inner]) {
          const double* zone = ptr(0, idx[0], idx[1], idx[2], b);
          if (nread > 0) {
            tracer.touch(zone,
                         sizeof(double) * static_cast<std::size_t>(nread),
                         false, page_shift_);
          }
          if (nwrite > 0) {
            tracer.touch(zone,
                         sizeof(double) * static_cast<std::size_t>(nwrite),
                         true, page_shift_);
          }
        }
      }
    }
  }

 private:
  int nvar_, ni_, nj_, nk_, maxblocks_;
  std::size_t block_stride_;
  mem::HugeBuffer<double> data_;
  std::uint8_t page_shift_ = 12;
};

}  // namespace fhp::mesh
