/// \file unk.hpp
/// \brief The `unk` container: FLASH's principal mesh data array.
///
/// PARAMESH stores solution data as
///
///   unk(nvar, il_bnd:iu_bnd, jl_bnd:ju_bnd, kl_bnd:ku_bnd, maxblocks)
///
/// in Fortran column-major order: the *variable* index is the fastest
/// axis and the block index the slowest. Reading one variable across a
/// block therefore strides by nvar doubles between zones — the memory
/// pattern the paper identifies as the motivation for huge pages
/// ("there is a stride in memory for addressing variables in different
/// zones or blocks"). UnkContainer is carved from a mem::PagePool under
/// the experiment's HugePolicy; the index -> address map itself is delegated
/// to a BlockLayout policy (layout.hpp), with the Fortran order
/// (LayoutKind::kVarMajor) as the bit-for-bit default.

#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/allocator.hpp"
#include "mem/huge_policy.hpp"
#include "mem/page_size.hpp"
#include "mesh/config.hpp"
#include "mesh/layout.hpp"
#include "support/contracts.hpp"
#include "tlb/geometry.hpp"
#include "tlb/trace.hpp"

namespace fhp::mesh {

/// The solution array. Indices: (var, i, j, k, block); the memory order
/// is whatever the active BlockLayout says.
class UnkContainer {
 public:
  /// \param layout_kind the block-data layout; runtime callers pass
  ///        `runtime.layout()` (the snapshot of the resolution order).
  /// \param pool the PagePool the solution array is carved from. Both are
  ///        always explicit — the container has no process defaults.
  UnkContainer(const MeshConfig& config, mem::HugePolicy policy,
               LayoutKind layout_kind, mem::PagePool& pool)
      : layout_(layout_kind, config.nvar(), config.ni(), config.nj(),
                config.nk()),
        nvar_(config.nvar()),
        ni_(config.ni()),
        nj_(config.nj()),
        nk_(config.nk()),
        maxblocks_(config.maxblocks),
        data_(layout_.block_stride() * static_cast<std::size_t>(maxblocks_),
              policy, pool),
        // Until refresh_page_shift() scans smaps, model with the kernel's
        // base page: 4 KiB on x86, but 64 KiB ARM kernels exist and the
        // paper's A64FX platform runs them.
        page_shift_(tlb::page_shift_of(mem::base_page_size())) {}

  /// Flat offset of (v, i, j, k, b) under the active layout.
  [[nodiscard]] std::size_t offset(int v, int i, int j, int k,
                                   int b) const noexcept {
    return layout_.offset(v, i, j, k, b);
  }

  [[nodiscard]] double& at(int v, int i, int j, int k, int b) noexcept {
    return data_[layout_.offset(v, i, j, k, b)];
  }
  [[nodiscard]] double at(int v, int i, int j, int k, int b) const noexcept {
    return data_[layout_.offset(v, i, j, k, b)];
  }
  /// Address of one element. Note: only under a vars_contiguous() layout
  /// may the result be read past element v; use gather_zone()/
  /// scalar_span() for whole-zone vectors.
  [[nodiscard]] const double* ptr(int v, int i, int j, int k,
                                  int b) const noexcept {
    return data_.data() + layout_.offset(v, i, j, k, b);
  }

  [[nodiscard]] const BlockLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] LayoutKind layout_kind() const noexcept {
    return layout_.kind();
  }

  [[nodiscard]] int nvar() const noexcept { return nvar_; }
  [[nodiscard]] int ni() const noexcept { return ni_; }
  [[nodiscard]] int nj() const noexcept { return nj_; }
  [[nodiscard]] int nk() const noexcept { return nk_; }
  [[nodiscard]] int maxblocks() const noexcept { return maxblocks_; }
  [[nodiscard]] std::size_t block_stride() const noexcept {
    return layout_.block_stride();
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(double);
  }

  /// Canonical (variable-fastest) copy of variables [v0, v0+count) of one
  /// zone — layout-independent; see BlockLayout::gather_zone.
  void gather_zone(int v0, int count, int i, int j, int k, int b,
                   double* out) const noexcept {
    layout_.gather_zone(data_.data(), v0, count, i, j, k, b, out);
  }
  /// Scatter a canonical zone vector back into the active layout.
  void scatter_zone(int v0, int count, int i, int j, int k, int b,
                    const double* in) noexcept {
    layout_.scatter_zone(data_.data(), v0, count, i, j, k, b, in);
  }

  /// A read-only view of variables [v0, v0+count) of one zone as a
  /// contiguous vector: the in-place pointer when the layout already
  /// stores them contiguously (var_major), else a gather into
  /// \p scratch (caller-provided, >= count doubles, typically per-lane).
  [[nodiscard]] const double* zone_span(int v0, int count, int i, int j,
                                        int k, int b,
                                        double* scratch) const noexcept {
    if (layout_.vars_contiguous()) return ptr(v0, i, j, k, b);
    layout_.gather_zone(data_.data(), v0, count, i, j, k, b, scratch);
    return scratch;
  }

  /// Backing region (for huge-page verification and tracing).
  [[nodiscard]] const mem::MappedRegion& region() const noexcept {
    return data_.region();
  }

  /// The pool placement decision behind the solution array (tier, node,
  /// degradation reason) — feed to tlb::Machine::apply_placement when
  /// modeling NUMA placement.
  [[nodiscard]] const mem::PoolDecision& pool_decision() const noexcept {
    return data_.allocation().decision();
  }

  /// Cache the effective translation page size (scans smaps once); call
  /// after the container is resident, before tracing.
  void refresh_page_shift() {
    page_shift_ = tlb::effective_page_shift(region());
  }
  [[nodiscard]] std::uint8_t page_shift() const noexcept { return page_shift_; }

  /// Replay the address stream of a kernel sweep over block \p b that
  /// reads \p nread variables and writes \p nwrite variables zone by zone
  /// in the interior range [ilo,ihi) x [jlo,jhi) x [klo,khi). The zone's
  /// variable vector is touched as the maximal contiguous runs the active
  /// layout provides: one nread*8-byte touch under var_major (FLASH
  /// kernels read unk(:, i, j, k) vectors — the canonical strided pattern
  /// of the paper), per-variable touches under zone_major/tiled.
  void trace_sweep(tlb::Tracer& tracer, int b, int ilo, int ihi, int jlo,
                   int jhi, int klo, int khi, int nread, int nwrite) const {
    trace_sweep_axis(tracer, b, 0, ilo, ihi, jlo, jhi, klo, khi, nread,
                     nwrite);
  }

  /// Like trace_sweep, but visits zones in *pencil order along \p axis* —
  /// the order the dimensionally split hydro gathers its pencils. For
  /// var_major on axis 1 (y) consecutive zones are nvar*ni doubles apart
  /// and on axis 2 (z) nvar*ni*nj doubles apart: a 3-d pencil touches a
  /// fresh 4 KiB page on nearly every zone, which is the stride pattern
  /// the paper blames for FLASH's DTLB behaviour.
  void trace_sweep_axis(tlb::Tracer& tracer, int b, int axis, int ilo,
                        int ihi, int jlo, int jhi, int klo, int khi,
                        int nread, int nwrite) const {
    trace_sweep_axis(tracer, b, axis, ilo, ihi, jlo, jhi, klo, khi, nread,
                     nwrite, page_shift_);
  }

  /// trace_sweep_axis with an explicit translation page shift — the
  /// what-if hook the page-size ablation uses to model one address stream
  /// under several page regimes without remapping the arena.
  void trace_sweep_axis(tlb::Tracer& tracer, int b, int axis, int ilo,
                        int ihi, int jlo, int jhi, int klo, int khi,
                        int nread, int nwrite,
                        std::uint8_t page_shift) const {
    if (!tracer.enabled()) return;
    check_sweep_range(b, axis, ilo, ihi, jlo, jhi, klo, khi, nread, nwrite);
    const int lo[3] = {ilo, jlo, klo};
    const int hi[3] = {ihi, jhi, khi};
    // outer/mid/inner loop axes; `axis` is innermost (the pencil).
    const int inner = axis;
    const int mid = axis == 0 ? 1 : 0;
    const int outer = axis == 2 ? 1 : 2;
    // Replayed at the fixed synthetic base so the modeled counters do
    // not depend on where the kernel mapped this container's storage
    // (see tlb::synthetic_scratch); offsets are the real layout's.
    const auto* base = static_cast<const double*>(
        tlb::synthetic_scratch(tlb::kUnkTraceSlot));
    int idx[3];
    for (idx[outer] = lo[outer]; idx[outer] < hi[outer]; ++idx[outer]) {
      for (idx[mid] = lo[mid]; idx[mid] < hi[mid]; ++idx[mid]) {
        for (idx[inner] = lo[inner]; idx[inner] < hi[inner]; ++idx[inner]) {
          layout_.for_each_var_run(
              0, nread, idx[0], idx[1], idx[2], b,
              [&](std::size_t off, int run) {
                tracer.touch(base + off,
                             sizeof(double) * static_cast<std::size_t>(run),
                             false, page_shift);
              });
          layout_.for_each_var_run(
              0, nwrite, idx[0], idx[1], idx[2], b,
              [&](std::size_t off, int run) {
                tracer.touch(base + off,
                             sizeof(double) * static_cast<std::size_t>(run),
                             true, page_shift);
              });
        }
      }
    }
  }

  /// Replay a *single-variable* sweep over block \p b: every zone of
  /// variable \p v in i-fastest order, at an explicit page shift. This is
  /// the layout half of the paper's diagnosis in one call: under
  /// var_major the zone-to-zone stride is nvar doubles so the sweep walks
  /// the block's whole nvar-wide footprint, while under zone_major the
  /// plane is contiguous and the 4 KiB page count drops ~nvar-fold.
  void trace_sweep_var(tlb::Tracer& tracer, int b, int v, int ilo, int ihi,
                       int jlo, int jhi, int klo, int khi, bool write,
                       std::uint8_t page_shift) const {
    if (!tracer.enabled()) return;
    check_sweep_range(b, 0, ilo, ihi, jlo, jhi, klo, khi, 1, 0);
    FHP_PRECONDITION(v >= 0 && v < nvar_, "variable index out of range");
    const auto* base = static_cast<const double*>(
        tlb::synthetic_scratch(tlb::kUnkTraceSlot));
    for (int k = klo; k < khi; ++k) {
      for (int j = jlo; j < jhi; ++j) {
        for (int i = ilo; i < ihi; ++i) {
          tracer.touch(base + layout_.offset(v, i, j, k, b), sizeof(double),
                       write, page_shift);
        }
      }
    }
  }

 private:
  void check_sweep_range(int b, int axis, int ilo, int ihi, int jlo, int jhi,
                         int klo, int khi, int nread, int nwrite) const {
    FHP_PRECONDITION(axis >= 0 && axis <= 2, "sweep axis must be 0, 1 or 2");
    FHP_PRECONDITION(b >= 0 && b < maxblocks_, "block index out of range");
    FHP_PRECONDITION(0 <= ilo && ilo <= ihi && ihi <= ni_ &&
                         0 <= jlo && jlo <= jhi && jhi <= nj_ &&
                         0 <= klo && klo <= khi && khi <= nk_,
                     "sweep range exceeds block extent");
    FHP_PRECONDITION(nread >= 0 && nread <= nvar_ && nwrite >= 0 &&
                         nwrite <= nvar_,
                     "cannot touch more variables than the mesh carries");
    // Mapped-range containment: the sweep's last zone — at the layout's
    // highest variable address — must lie inside the backing region
    // (catches stride/layout bugs before they scribble).
    FHP_ASSERT(ihi == ilo || jhi == jlo || khi == klo ||
                   region().contains(
                       ptr(nvar_ - 1, ihi - 1, jhi - 1, khi - 1, b),
                       sizeof(double)),
               "sweep extends past the mapped unk region");
  }

  BlockLayout layout_;
  int nvar_, ni_, nj_, nk_, maxblocks_;
  mem::HugeBuffer<double> data_;
  std::uint8_t page_shift_;
};

}  // namespace fhp::mesh
