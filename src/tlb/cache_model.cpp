#include "tlb/cache_model.hpp"

#include "support/error.hpp"

namespace fhp::tlb {

namespace {
constexpr std::uint32_t log2_u32(std::uint32_t v) {
  std::uint32_t n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}
}  // namespace

CacheModel::CacheModel(const CacheGeometry& geometry) {
  FHP_REQUIRE(geometry.line_bytes != 0 &&
                  (geometry.line_bytes & (geometry.line_bytes - 1)) == 0,
              "cache line size must be a power of two");
  FHP_REQUIRE(geometry.ways > 0, "cache must have at least one way");
  const std::size_t total_lines = geometry.capacity_bytes / geometry.line_bytes;
  FHP_REQUIRE(total_lines >= geometry.ways,
              "cache capacity smaller than one set");
  line_ = geometry.line_bytes;
  line_shift_ = log2_u32(geometry.line_bytes);
  sets_ = static_cast<std::uint32_t>(total_lines / geometry.ways);
  FHP_REQUIRE(sets_ != 0 && (sets_ & (sets_ - 1)) == 0,
              "cache set count must be a power of two");
  set_shift_ = log2_u32(sets_);
  ways_ = geometry.ways;
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

CacheResult CacheModel::access(std::uint64_t addr, bool write) noexcept {
  const std::uint64_t block = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(block & (sets_ - 1));
  const std::uint64_t tag = block >> set_shift_;
  Line* row = &lines_[static_cast<std::size_t>(set) * ways_];
  ++clock_;

  Line* victim = &row[0];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& l = row[w];
    if (l.valid && l.tag == tag) {
      l.last_use = clock_;
      l.dirty = l.dirty || write;
      ++hits_;
      return {true, false};
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.last_use < victim->last_use) {
      victim = &l;
    }
  }
  ++misses_;
  CacheResult result{false, victim->valid && victim->dirty};
  if (result.writeback) ++writebacks_;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = write;
  victim->last_use = clock_;
  return result;
}

bool CacheModel::contains(std::uint64_t addr) const noexcept {
  const std::uint64_t block = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(block & (sets_ - 1));
  const std::uint64_t tag = block >> set_shift_;
  const Line* row = &lines_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (row[w].valid && row[w].tag == tag) return true;
  }
  return false;
}

void CacheModel::flush() noexcept {
  for (Line& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
}

}  // namespace fhp::tlb
