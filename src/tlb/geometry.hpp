/// \file geometry.hpp
/// \brief Hardware geometry descriptions for the machine model.
///
/// Defaults are tuned to Ookami's Fujitsu A64FX (the paper's platform):
/// 48-entry fully-associative L1 DTLB, 1024-entry 4-way L2 TLB, 64 KiB
/// 4-way L1D with 256 B lines, 8 MiB 16-way L2 (per core-memory-group,
/// modeled per core here), 1.8 GHz clock, HBM2 bandwidth share.

#pragma once

#include <cstddef>
#include <cstdint>

namespace fhp::tlb {

/// Geometry of one TLB level.
struct TlbGeometry {
  std::uint32_t entries = 48;  ///< total entries
  std::uint32_t ways = 0;      ///< associativity; 0 = fully associative
};

/// Geometry of one cache level.
struct CacheGeometry {
  // 64 KiB here is the A64FX L1D *cache capacity*, which only
  // coincides with the 64 KiB base-page size.
  std::size_t capacity_bytes = 64 << 10;  // fhp-lint: allow(page-size-literal)
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 256;
};

/// Full machine description + cost model parameters.
struct MachineConfig {
  // --- address translation ---
  TlbGeometry l1_tlb{48, 0};      ///< A64FX L1 DTLB: 48-entry fully assoc
  TlbGeometry l2_tlb{1024, 4};    ///< A64FX L2 TLB (unified): 1024-entry 4-way
  std::uint32_t walk_cycles = 240;///< latency of a full page-table walk
  /// Fraction of walk latency hidden under other outstanding misses.
  /// The paper's central observation — a 21x DTLB miss reduction buying
  /// only ~6% runtime — implies walks were almost entirely overlapped
  /// with the memory stalls of a bandwidth-bound code.
  double walk_overlap = 0.97;

  // --- caches ---
  CacheGeometry l1d{64 << 10, 4, 256};  // fhp-lint: allow(page-size-literal)
  /// The A64FX L2 is 8 MiB per core-memory-group *shared by 12 cores*;
  /// FLASH runs one MPI rank per core, so the effective per-rank share is
  /// modeled directly.
  CacheGeometry l2{1u << 20, 16, 256};
  std::uint32_t l2_hit_cycles = 37;   ///< L1 miss, L2 hit latency
  std::uint32_t mem_latency_cycles = 180;
  /// Fraction of miss latency hidden by prefetch / memory-level parallelism.
  double latency_overlap = 0.95;

  // --- core ---
  double clock_hz = 1.8e9;            ///< A64FX: 1.8 GHz
  /// Sustainable memory bandwidth per core, bytes per cycle: the per-core
  /// share of a CMG's ~220 GB/s HBM2 stream bandwidth across 12 ranks.
  double mem_bytes_per_cycle = 10.0;
  double scalar_ops_per_cycle = 2.0;  ///< scalar issue width achieved
  double vector_ops_per_cycle = 1.0;  ///< SVE pipes achieved (un-tuned code)
};

/// Shorthand page shifts used by the tracers.
inline constexpr std::uint8_t kShift4K = 12;
inline constexpr std::uint8_t kShift64K = 16;
inline constexpr std::uint8_t kShift2M = 21;
inline constexpr std::uint8_t kShift512M = 29;

/// Convert a page size in bytes to its shift (page must be a power of 2).
[[nodiscard]] constexpr std::uint8_t page_shift_of(std::size_t page_bytes) {
  std::uint8_t s = 0;
  while ((std::size_t{1} << s) < page_bytes) ++s;
  return s;
}

}  // namespace fhp::tlb
