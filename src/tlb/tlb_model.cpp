#include "tlb/tlb_model.hpp"

#include "support/error.hpp"

namespace fhp::tlb {

namespace {
constexpr bool is_pow2_u32(std::uint32_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}
}  // namespace

TlbModel::TlbModel(const TlbGeometry& geometry) {
  FHP_REQUIRE(geometry.entries > 0, "TLB must have at least one entry");
  if (geometry.ways == 0 || geometry.ways >= geometry.entries) {
    sets_ = 1;
    ways_ = geometry.entries;
  } else {
    FHP_REQUIRE(geometry.entries % geometry.ways == 0,
                "TLB entries must divide evenly into ways");
    sets_ = geometry.entries / geometry.ways;
    ways_ = geometry.ways;
    FHP_REQUIRE(is_pow2_u32(sets_), "TLB set count must be a power of two");
  }
  entries_.resize(static_cast<std::size_t>(sets_) * ways_);
}

bool TlbModel::access(std::uint64_t addr, std::uint8_t page_shift) noexcept {
  const std::uint64_t vpn = addr >> page_shift;
  const std::uint32_t set =
      sets_ == 1 ? 0 : static_cast<std::uint32_t>(vpn & (sets_ - 1));
  Entry* row = &entries_[static_cast<std::size_t>(set) * ways_];
  ++clock_;

  Entry* victim = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = row[w];
    if (e.valid && e.vpn == vpn && e.page_shift == page_shift) {
      e.last_use = clock_;
      ++hits_;
      return true;
    }
    if (victim == nullptr && !e.valid) victim = &e;
  }
  ++misses_;
  if (victim == nullptr) {
    // Pseudo-random replacement (deterministic xorshift64).
    prng_ ^= prng_ << 13;
    prng_ ^= prng_ >> 7;
    prng_ ^= prng_ << 17;
    victim = &row[prng_ % ways_];
  }
  victim->valid = true;
  victim->vpn = vpn;
  victim->page_shift = page_shift;
  victim->last_use = clock_;
  return false;
}

bool TlbModel::contains(std::uint64_t addr,
                        std::uint8_t page_shift) const noexcept {
  const std::uint64_t vpn = addr >> page_shift;
  const std::uint32_t set =
      sets_ == 1 ? 0 : static_cast<std::uint32_t>(vpn & (sets_ - 1));
  const Entry* row = &entries_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const Entry& e = row[w];
    if (e.valid && e.vpn == vpn && e.page_shift == page_shift) return true;
  }
  return false;
}

void TlbModel::flush() noexcept {
  for (Entry& e : entries_) e.valid = false;
}

}  // namespace fhp::tlb
