/// \file cache_model.hpp
/// \brief Set-associative write-back, write-allocate cache model.
///
/// Used for the paper's "Memory (Gbytes/s)" measure: the bytes that cross
/// each level boundary are counted (line-granular), including write-back
/// traffic from dirty evictions. LRU replacement; one level per instance —
/// Machine chains an L1 and an L2.

#pragma once

#include <cstdint>
#include <vector>

#include "tlb/geometry.hpp"

namespace fhp::tlb {

/// Result of one cache access.
struct CacheResult {
  bool hit = false;
  bool writeback = false;  ///< a dirty victim was evicted
};

/// One cache level.
class CacheModel {
 public:
  explicit CacheModel(const CacheGeometry& geometry);

  /// Access the line containing \p addr. Misses install the line.
  CacheResult access(std::uint64_t addr, bool write) noexcept;

  /// Probe without side effects.
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept;

  void flush() noexcept;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const noexcept { return writebacks_; }
  [[nodiscard]] std::uint32_t line_bytes() const noexcept { return line_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t line_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint32_t sets_ = 0;
  std::uint32_t set_shift_ = 0;
  std::uint32_t ways_ = 0;
  std::vector<Line> lines_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace fhp::tlb
