/// \file tlb_model.hpp
/// \brief Set-associative TLB with mixed page sizes and true LRU.
///
/// Entries tag the virtual page number *and* the page size: a translation
/// cached for a 4 KiB page cannot serve a 2 MiB lookup and vice versa.
/// Set indexing uses the VPN low bits (as real L2 TLBs do); a fully
/// associative geometry (ways == 0) is a single set with true LRU — the
/// A64FX L1 DTLB shape.

#pragma once

#include <cstdint>
#include <vector>

#include "tlb/geometry.hpp"

namespace fhp::tlb {

/// One translation lookaside buffer level.
///
/// Replacement is pseudo-random (deterministic xorshift), matching ARM
/// TLB behaviour: a cyclic working set slightly larger than the capacity
/// degrades gracefully instead of the 100%-miss pathology of true LRU —
/// the regime FLASH's EOS table gathers live in on the A64FX.
class TlbModel {
 public:
  explicit TlbModel(const TlbGeometry& geometry);

  /// Look up the page containing \p addr with the given page size.
  /// On hit returns true (entry promoted to MRU). On miss returns false
  /// and installs the translation (LRU-evicting within the set).
  bool access(std::uint64_t addr, std::uint8_t page_shift) noexcept;

  /// Look up without installing (for tests / probing).
  [[nodiscard]] bool contains(std::uint64_t addr,
                              std::uint8_t page_shift) const noexcept;

  /// Drop all entries (context switch / between experiment arms).
  void flush() noexcept;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t last_use = 0;
    std::uint8_t page_shift = 0;
    bool valid = false;
  };

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Entry> entries_;  // sets_ x ways_, row-major by set
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t prng_ = 0x2545f4914f6cdd1dull;  // xorshift64 state
};

}  // namespace fhp::tlb
