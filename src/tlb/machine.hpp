/// \file machine.hpp
/// \brief The software machine model: TLBs + caches + cycle accounting.
///
/// Kernels replay their (sampled) address streams into a Machine; at the
/// end of each sampling quantum, commit() converts the observed event
/// counts into modeled cycles and publishes everything — scaled by the
/// sampling factor — through the abstract perf::CounterSink
/// (support/events.hpp; in practice a perf::PerfContext, where PerfRegion
/// picks the deltas up). The model carries warm TLB/cache state across quanta, so tracing
/// stays on one thread regardless of FLASHHP_THREADS — which is also why
/// modeled counters are bit-identical across thread counts.
///
/// The cycle model is deliberately simple and captures the paper's two
/// findings:
///   1. With 4 KiB pages the strided `unk` layout overwhelms an A64FX-like
///      TLB (48-entry L1 + 1024-entry 4-way L2); 2 MiB pages collapse the
///      page working set and the misses almost vanish.
///   2. Runtime barely improves, because the code is memory-bandwidth
///      bound and walk latency overlaps with the data stalls
///      (walk_overlap): cycles = max(compute, bandwidth) + unhidden
///      latency + unhidden walk cycles.
///
/// A configurable background miss rate (background_miss_per_cycle) models
/// translation traffic that does not live on the huge-page arena — the
/// OS, runtime libraries, communication buffers. It is why the paper's
/// miss rates floor near 1e6/s in both experiment arms instead of falling
/// to zero (Tables I/II: 1.10e6 and 7.83e5 with huge pages).
///
/// The published "DTLB misses" event is modeled as *L1* DTLB misses
/// (plus the background term): on the A64FX the per-zone working set of
/// FLASH's EOS — dozens of distinct table/scratch/unk pages — overflows
/// the 48-entry L1 DTLB at 4 KiB pages but collapses to a handful of
/// entries at 2 MiB, which is what produces the paper's 21x swing.

#pragma once

#include <cstdint>

#include "mem/numa.hpp"
#include "support/contracts.hpp"
#include "support/events.hpp"
#include "tlb/cache_model.hpp"
#include "tlb/geometry.hpp"
#include "tlb/tlb_model.hpp"

namespace fhp::tlb {

/// Event counts accumulated during one sampling quantum.
struct QuantumStats {
  std::uint64_t accesses = 0;        ///< line-granular memory operations
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_misses = 0;       ///< lines fetched from memory
  std::uint64_t writebacks = 0;      ///< dirty lines written to memory
  std::uint64_t l1_tlb_misses = 0;
  std::uint64_t walks = 0;           ///< missed both TLB levels
  std::uint64_t scalar_ops = 0;
  std::uint64_t vector_ops = 0;
  // Remote-node twins: the subset of the above issued while the machine's
  // access node was a non-local NUMA node (see Machine::apply_placement).
  // All zero on a single-node run, which keeps the cycle model — and the
  // published counters — bit-identical to the no-NUMA formula.
  std::uint64_t remote_accesses = 0;
  std::uint64_t remote_l2_misses = 0;
  std::uint64_t remote_writebacks = 0;
  std::uint64_t remote_walks = 0;

  [[nodiscard]] std::uint64_t bytes_read(std::uint32_t line) const noexcept {
    return l2_misses * line;
  }
  [[nodiscard]] std::uint64_t bytes_written(std::uint32_t line) const noexcept {
    return writebacks * line;
  }
};

/// NUMA cost knobs: what a remote-node access pays over a local one.
/// Defaults are an A64FX-like CMG-to-CMG regime: extra latency on the
/// data access and on the page-table walk (remote page tables), and a
/// bandwidth derate on the inter-node link.
struct NumaParams {
  int local_node = 0;
  /// Extra memory-latency cycles for a line fetched from a remote node.
  std::uint32_t remote_mem_extra_cycles = 90;
  /// Extra walk cycles when the page tables live on a remote node.
  std::uint32_t remote_walk_extra_cycles = 120;
  /// Remote bandwidth as a fraction of local bandwidth (0 < f <= 1).
  double remote_bandwidth_factor = 0.7;
};

/// Extended machine configuration (geometry + the background miss floor).
struct MachineParams : MachineConfig {
  /// NUMA costs; only consulted for accesses issued on a remote node.
  NumaParams numa;
  /// TLB misses per modeled cycle from memory *outside* the traced arrays
  /// (OS, libraries, comm buffers) — page-size-policy independent.
  /// Calibrated so the floor sits near 8e5 misses/s at 1.8 GHz — the
  /// paper's with-huge-pages rates (1.10e6 EOS, 7.83e5 Hydro) bottom out
  /// there in both experiments.
  double background_miss_per_cycle = 4.4e-4;
  /// Cost (cycles) of an L1-TLB miss that hits in the L2 TLB.
  std::uint32_t l2_tlb_hit_cycles = 8;
  /// Fraction of the L1-miss/L2-hit penalty hidden by the pipeline. Less
  /// hideable than full walks (it stalls the load itself), which is what
  /// makes the paper's time ratios move a few percent, not zero.
  double l2_tlb_hit_overlap = 0.5;
};

/// The model. One instance per experiment arm; TLB/cache state persists
/// across quanta (warm caches), counters are re-zeroed per quantum.
class Machine {
 public:
  /// \param sink where commit() publishes each quantum's scaled counter
  ///        deltas (typically the experiment arm's perf::PerfContext);
  ///        null means model-only — cycles still accumulate in
  ///        `total_cycles()`, counters are dropped. The old null-means-
  ///        global-context fallback is gone: publishing is explicit.
  explicit Machine(const MachineParams& params = {},
                   perf::CounterSink* sink = nullptr);

  /// Replay one memory operation of \p bytes at \p addr. Internally splits
  /// into cache lines; each line is one TLB + cache lookup.
  FHP_NO_ALLOC void touch(const void* addr, std::size_t bytes, bool write,
                          std::uint8_t page_shift) noexcept;

  /// Set the NUMA node subsequent touches are charged against; a node
  /// different from params().numa.local_node makes them remote. Negative
  /// means "unbound" (treated as local).
  void set_access_node(int node) noexcept { access_node_ = node; }
  [[nodiscard]] int access_node() const noexcept { return access_node_; }

  /// True if the current access node is a bound, non-local node.
  [[nodiscard]] bool remote() const noexcept {
    return access_node_ >= 0 && access_node_ != params_.numa.local_node;
  }

  /// The mem→tlb placement seam: charge subsequent touches to the node a
  /// PagePool decision placed the data on (unbound if the decision did
  /// not model a node, e.g. a THP/base fallback).
  void apply_placement(const mem::PoolDecision& decision) noexcept {
    set_access_node(decision.node);
  }

  /// Account pure compute work (operation counts, not cycles).
  void compute(std::uint64_t scalar_ops, std::uint64_t vector_ops) noexcept {
    quantum_.scalar_ops += scalar_ops;
    quantum_.vector_ops += vector_ops;
  }

  /// Convert the quantum's event counts to cycles, scale everything by
  /// \p scale (the sampling factor) and publish one delta to the sink.
  /// Returns the *unscaled* modeled cycles of this quantum. Tracing is
  /// serial, between parallel regions (see file comment) — hence
  /// FHP_EXCLUDES_REGION, matching the sink's contract.
  double commit(std::uint64_t scale = 1) noexcept FHP_EXCLUDES_REGION;

  /// Modeled cycles for a quantum's stats without committing (for tests).
  [[nodiscard]] double model_cycles(const QuantumStats& q) const noexcept;

  [[nodiscard]] const QuantumStats& quantum() const noexcept {
    return quantum_;
  }
  [[nodiscard]] const MachineParams& params() const noexcept { return params_; }
  [[nodiscard]] const TlbModel& l1_tlb() const noexcept { return l1_tlb_; }
  [[nodiscard]] const TlbModel& l2_tlb() const noexcept { return l2_tlb_; }
  [[nodiscard]] const CacheModel& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const CacheModel& l2() const noexcept { return l2_; }

  /// Total modeled cycles committed so far (unscaled sum of quanta x scale).
  [[nodiscard]] double total_cycles() const noexcept { return total_cycles_; }

  /// Reset everything — structures and statistics.
  void reset() noexcept;

 private:
  MachineParams params_;
  perf::CounterSink* sink_;
  TlbModel l1_tlb_;
  TlbModel l2_tlb_;
  CacheModel l1d_;
  CacheModel l2_;
  QuantumStats quantum_;
  int access_node_ = -1;  // survives reset(): placement outlives quanta
  double total_cycles_ = 0;
};

}  // namespace fhp::tlb
