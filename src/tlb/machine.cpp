#include "tlb/machine.hpp"

#include <algorithm>
#include <cmath>

namespace fhp::tlb {

Machine::Machine(const MachineParams& params, perf::CounterSink* sink)
    : params_(params),
      sink_(sink),
      l1_tlb_(params.l1_tlb),
      l2_tlb_(params.l2_tlb),
      l1d_(params.l1d),
      l2_(params.l2) {}

void Machine::touch(const void* addr, std::size_t bytes, bool write,
                    std::uint8_t page_shift) noexcept {
  if (bytes == 0) return;
  const auto base = reinterpret_cast<std::uint64_t>(addr);
  const std::uint32_t line = params_.l1d.line_bytes;
  const std::uint64_t first = base & ~static_cast<std::uint64_t>(line - 1);
  const std::uint64_t last = (base + bytes - 1) &
                             ~static_cast<std::uint64_t>(line - 1);
  const bool is_remote = remote();
  for (std::uint64_t a = first;; a += line) {
    ++quantum_.accesses;
    if (is_remote) ++quantum_.remote_accesses;
    // Address translation: L1 TLB, then L2 TLB, then a table walk.
    if (!l1_tlb_.access(a, page_shift)) {
      ++quantum_.l1_tlb_misses;
      if (!l2_tlb_.access(a, page_shift)) {
        ++quantum_.walks;
        if (is_remote) ++quantum_.remote_walks;
      }
    }
    // Data: L1D, then L2, then memory.
    const CacheResult r1 = l1d_.access(a, write);
    if (!r1.hit) {
      ++quantum_.l1d_misses;
      const CacheResult r2 = l2_.access(a, write);
      if (!r2.hit) {
        ++quantum_.l2_misses;
        if (is_remote) ++quantum_.remote_l2_misses;
      }
      if (r2.writeback) {
        ++quantum_.writebacks;
        if (is_remote) ++quantum_.remote_writebacks;
      }
    }
    if (a == last) break;
  }
}

double Machine::model_cycles(const QuantumStats& q) const noexcept {
  const MachineParams& p = params_;
  const double compute_cycles =
      static_cast<double>(q.scalar_ops) / p.scalar_ops_per_cycle +
      static_cast<double>(q.vector_ops) / p.vector_ops_per_cycle;

  const double mem_bytes = static_cast<double>(q.bytes_read(p.l1d.line_bytes) +
                                               q.bytes_written(p.l1d.line_bytes));
  double bw_cycles = mem_bytes / p.mem_bytes_per_cycle;

  const double l2_hit_count =
      static_cast<double>(q.l1d_misses - std::min(q.l1d_misses, q.l2_misses));
  double lat_cycles =
      (l2_hit_count * p.l2_hit_cycles +
       static_cast<double>(q.l2_misses) * p.mem_latency_cycles) *
      (1.0 - p.latency_overlap);

  const double l2tlb_hits =
      static_cast<double>(q.l1_tlb_misses - std::min(q.l1_tlb_misses, q.walks));
  double walk_cycles =
      static_cast<double>(q.walks) * p.walk_cycles * (1.0 - p.walk_overlap) +
      l2tlb_hits * p.l2_tlb_hit_cycles * (1.0 - p.l2_tlb_hit_overlap);

  // NUMA surcharges, guarded so an all-local quantum computes the exact
  // same doubles as the pre-NUMA formula (the cross-thread bit-identity
  // contract rides on this).
  if (q.remote_accesses != 0) {
    const double remote_bytes = static_cast<double>(
        (q.remote_l2_misses + q.remote_writebacks) * p.l1d.line_bytes);
    bw_cycles += remote_bytes / p.mem_bytes_per_cycle *
                 (1.0 / p.numa.remote_bandwidth_factor - 1.0);
    lat_cycles += static_cast<double>(q.remote_l2_misses) *
                  p.numa.remote_mem_extra_cycles * (1.0 - p.latency_overlap);
    walk_cycles += static_cast<double>(q.remote_walks) *
                   p.numa.remote_walk_extra_cycles * (1.0 - p.walk_overlap);
  }

  return std::max(compute_cycles, bw_cycles) + lat_cycles + walk_cycles;
}

double Machine::commit(std::uint64_t scale) noexcept {
  const double cycles = model_cycles(quantum_);
  const double scaled_cycles = cycles * static_cast<double>(scale);

  // Background translation traffic (non-arena memory): policy-independent.
  const double bg_misses = scaled_cycles * params_.background_miss_per_cycle;
  const double bg_walk_cycles = bg_misses * params_.walk_cycles *
                                (1.0 - params_.walk_overlap);
  const double final_cycles = scaled_cycles + bg_walk_cycles;

  if (sink_ != nullptr) {
    const std::uint32_t line = params_.l1d.line_bytes;
    auto scaled = [scale](std::uint64_t v) { return v * scale; };
    perf::CounterSet delta;
    delta[perf::Event::kCycles] =
        static_cast<std::uint64_t>(std::llround(final_cycles));
    delta[perf::Event::kInstructions] =
        scaled(quantum_.scalar_ops + quantum_.vector_ops + quantum_.accesses);
    delta[perf::Event::kVectorOps] = scaled(quantum_.vector_ops);
    // The paper's PAPI DTLB-miss event counts *L1* DTLB misses (the A64FX
    // L1 DTLB is a 48-entry fully-associative structure that the EOS's
    // table gathers thrash); walks are the subset that also missed the L2
    // TLB and paid for a page-table walk.
    delta[perf::Event::kDtlbMisses] =
        scaled(quantum_.l1_tlb_misses) +
        static_cast<std::uint64_t>(std::llround(bg_misses));
    double walk_cycle_total =
        static_cast<double>(scaled(quantum_.walks)) * params_.walk_cycles *
            (1.0 - params_.walk_overlap) +
        bg_walk_cycles;
    if (quantum_.remote_walks != 0) {
      walk_cycle_total += static_cast<double>(scaled(quantum_.remote_walks)) *
                          params_.numa.remote_walk_extra_cycles *
                          (1.0 - params_.walk_overlap);
    }
    delta[perf::Event::kTlbWalkCycles] =
        static_cast<std::uint64_t>(std::llround(walk_cycle_total));
    delta[perf::Event::kBytesRead] = scaled(quantum_.bytes_read(line));
    delta[perf::Event::kBytesWritten] = scaled(quantum_.bytes_written(line));
    delta[perf::Event::kL1Misses] = scaled(quantum_.l1d_misses);
    delta[perf::Event::kL2Misses] = scaled(quantum_.l2_misses);
    sink_->sink_counters(delta);
  }

  total_cycles_ += final_cycles;
  quantum_ = QuantumStats{};
  return cycles;
}

void Machine::reset() noexcept {
  l1_tlb_.flush();
  l2_tlb_.flush();
  l1d_.flush();
  l2_.flush();
  quantum_ = QuantumStats{};
  total_cycles_ = 0;
}

}  // namespace fhp::tlb
