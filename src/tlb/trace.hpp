/// \file trace.hpp
/// \brief Kernel-side tracing facade and page-shift discovery.
///
/// Physics kernels describe their memory behaviour to the machine model
/// through a Tracer. A disabled Tracer (null machine) compiles to a
/// handful of predicted branches, so production runs pay nothing.
///
/// Sampling: the driver traces every Nth block sweep and commits with
/// scale = N. Because every block has the same loop structure, the scaled
/// counts converge to the full-trace counts while keeping model overhead
/// at 1/N.

#pragma once

#include <cstdint>

#include "mem/mapped_region.hpp"
#include "tlb/machine.hpp"

namespace fhp::tlb {

/// Lightweight handle kernels use to replay accesses.
class Tracer {
 public:
  /// A disabled tracer (no machine attached).
  Tracer() = default;

  /// A tracer feeding \p machine.
  explicit Tracer(Machine* machine) noexcept : machine_(machine) {}

  [[nodiscard]] bool enabled() const noexcept { return machine_ != nullptr; }

  /// One load/store of \p bytes at \p addr on pages of 2^page_shift bytes.
  void touch(const void* addr, std::size_t bytes, bool write,
             std::uint8_t page_shift) noexcept {
    if (machine_ != nullptr) machine_->touch(addr, bytes, write, page_shift);
  }

  /// Account compute operations (scalar / vector counts).
  void compute(std::uint64_t scalar_ops, std::uint64_t vector_ops) noexcept {
    if (machine_ != nullptr) machine_->compute(scalar_ops, vector_ops);
  }

  [[nodiscard]] Machine* machine() const noexcept { return machine_; }

 private:
  Machine* machine_ = nullptr;
};

/// Effective translation page size (as a shift) of a mapped region:
///   - hugetlbfs: the pool page size;
///   - THP: the PMD size if at least half the region is actually resident
///     on huge pages (promotion can be partial), else the base page size;
///   - small pages: the base page size.
/// Call once per region per experiment arm — it may scan /proc/self/smaps.
[[nodiscard]] std::uint8_t effective_page_shift(const mem::MappedRegion& region);

}  // namespace fhp::tlb
