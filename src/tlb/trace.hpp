/// \file trace.hpp
/// \brief Kernel-side tracing facade and page-shift discovery.
///
/// Physics kernels describe their memory behaviour to the machine model
/// through a Tracer. A disabled Tracer (null machine) compiles to a
/// handful of predicted branches, so production runs pay nothing.
///
/// Sampling: the driver traces every Nth block sweep and commits with
/// scale = N. Because every block has the same loop structure, the scaled
/// counts converge to the full-trace counts while keeping model overhead
/// at 1/N.

#pragma once

#include <cstdint>

#include "mem/mapped_region.hpp"
#include "tlb/machine.hpp"

namespace fhp::tlb {

/// Fabricated base address for modeling a traced memory region (the unk
/// solution array, the Helm table, per-rank kernel scratch). A replay
/// must describe the same address stream every run: Machine::touch does
/// page- and set-index arithmetic on the raw bits, so modeling the
/// *actual* mapping would couple the published counters to wherever the
/// kernel happened to place it — which varies with ASLR, allocator
/// (sanitizer runs), thread-stack placement, and what was mapped
/// earlier in the process. Multi-tenant runs make that observable: the
/// bit-identity contract (a driver's counters match its solo run, see
/// tests/test_runtime.cpp) only holds if the replayed stream is
/// placement-invariant. Kernels therefore model each traced region at a
/// fixed per-slot virtual base; the pointers are never dereferenced.
/// Slots are 16 GiB apart (no traced region approaches that) and the
/// base is 2 MiB-aligned, so modeled regions never share a page at any
/// supported page size and every slot base has the alignment of a
/// PMD-mapped region. Page-size behavior is still real: the translation
/// shift fed to touch() comes from the *actual* mapping's
/// effective_page_shift().
[[nodiscard]] inline const void* synthetic_scratch(
    std::uintptr_t slot, std::uintptr_t offset = 0) noexcept {
  constexpr std::uintptr_t kBase = std::uintptr_t{0x5C3A} << 32;
  constexpr std::uintptr_t kSlotStride = std::uintptr_t{1} << 34;
  return reinterpret_cast<const void*>(kBase + slot * kSlotStride + offset);
}

/// The synthetic_scratch slots in use (one per traced region).
inline constexpr std::uintptr_t kHydroPencilScratchSlot = 0;
inline constexpr std::uintptr_t kEosRowScratchSlot = 1;
inline constexpr std::uintptr_t kUnkTraceSlot = 2;
inline constexpr std::uintptr_t kHelmTableTraceSlot = 3;

/// Lightweight handle kernels use to replay accesses.
class Tracer {
 public:
  /// A disabled tracer (no machine attached).
  Tracer() = default;

  /// A tracer feeding \p machine.
  explicit Tracer(Machine* machine) noexcept : machine_(machine) {}

  [[nodiscard]] bool enabled() const noexcept { return machine_ != nullptr; }

  /// One load/store of \p bytes at \p addr on pages of 2^page_shift bytes.
  void touch(const void* addr, std::size_t bytes, bool write,
             std::uint8_t page_shift) noexcept {
    if (machine_ != nullptr) machine_->touch(addr, bytes, write, page_shift);
  }

  /// Account compute operations (scalar / vector counts).
  void compute(std::uint64_t scalar_ops, std::uint64_t vector_ops) noexcept {
    if (machine_ != nullptr) machine_->compute(scalar_ops, vector_ops);
  }

  [[nodiscard]] Machine* machine() const noexcept { return machine_; }

 private:
  Machine* machine_ = nullptr;
};

/// Effective translation page size (as a shift) of a mapped region:
///   - hugetlbfs: the pool page size;
///   - THP: the PMD size if at least half the region is actually resident
///     on huge pages (promotion can be partial), else the base page size;
///   - small pages: the base page size.
/// Call once per region per experiment arm — it may scan /proc/self/smaps.
[[nodiscard]] std::uint8_t effective_page_shift(const mem::MappedRegion& region);

}  // namespace fhp::tlb
