#include "tlb/trace.hpp"

#include "mem/page_size.hpp"

namespace fhp::tlb {

std::uint8_t effective_page_shift(const mem::MappedRegion& region) {
  const std::uint8_t base_shift = page_shift_of(mem::base_page_size());
  if (!region.valid()) return base_shift;
  switch (region.backing()) {
    case mem::Backing::kHugetlbfs:
      return page_shift_of(region.page_bytes());
    case mem::Backing::kThp: {
      const std::uint64_t huge = region.resident_huge_bytes();
      if (huge * 2 >= region.size()) {
        return page_shift_of(region.page_bytes());
      }
      return base_shift;
    }
    case mem::Backing::kSmallPages:
      return base_shift;
  }
  return base_shift;
}

}  // namespace fhp::tlb
