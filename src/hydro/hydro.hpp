/// \file hydro.hpp
/// \brief Dimensionally split finite-volume hydrodynamics on the AMR mesh.
///
/// This is flashhp's counterpart of FLASH's split hydro unit (the paper's
/// "3-d Hydro" test instruments exactly this code): a MUSCL-Hancock
/// second-order Godunov scheme with MC-limited reconstruction and an HLLC
/// Riemann solver, swept one axis at a time over every leaf block, with
/// flux conservation at fine-coarse block boundaries and an EOS
/// consistency call after each step (FLASH's Eos_wrapped).
///
/// General-EOS coupling uses the frozen-gamma approximation within a
/// sweep: each zone carries game = p/(rho eint) + 1 and gamc = Gamma1 from
/// the last EOS call; the sweep treats them as constants and the post-step
/// EOS call restores full consistency.

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "eos/eos_types.hpp"
#include "mesh/amr_mesh.hpp"
#include "tlb/trace.hpp"

namespace fhp::hydro {

/// Tunables (FLASH runtime parameters of the hydro unit).
struct HydroOptions {
  double cfl = 0.8;          ///< Courant factor
  double small_rho = 1e-30;  ///< density floor
  double small_p = 1e-30;    ///< pressure floor
  bool flux_correct = true;  ///< conserve fluxes at fine-coarse faces
  /// Default composition written into EOS states when no composition
  /// callback is installed.
  double abar = 1.0;
  double zbar = 1.0;
};

/// Per-zone composition hook: fill state.abar / state.zbar from the mass
/// scalars of the zone (species fractions). Used by the supernova setup.
using CompositionFn =
    std::function<void(eos::State& state, const double* scalars, int count)>;

/// The solver. Holds scratch storage sized for the mesh it serves.
class HydroSolver {
 public:
  HydroSolver(mesh::AmrMesh& mesh, const eos::Eos& eos,
              HydroOptions options = {});
  ~HydroSolver();  // out of line: PencilBuffers is incomplete here

  /// CFL-limited time step over all leaves (uses current unk data).
  [[nodiscard]] double compute_dt() const;

  /// Advance one full time step: guard fill + directional sweeps (order
  /// alternates each step, Strang-style) + flux correction + EOS update.
  void step(double dt);

  /// One directional sweep over all leaves (exposed for tests). Blocks
  /// are distributed over the mesh arena's lanes: each block's update
  /// reads only its own (pre-filled) storage and writes only its own
  /// interior and flux-register slots, so the parallel sweep is
  /// bit-identical to the serial one.
  void sweep(int axis, double dt);

  /// Re-establish EOS consistency from (rho, ener, velocities): sets
  /// eint, pres, temp, gamc, game zone by zone (FLASH's Eos_wrapped on
  /// MODE_DENS_EI). Runs block-parallel on the mesh's arena.
  void eos_update();

  // --- task-graph entry points -------------------------------------------
  // The bulk-sync methods above are loops over these per-block kernels;
  // the task-graph driver (sim::StepGraph) submits them as task bodies
  // with guard/sweep/flux dependency edges instead. Determinism: each
  // kernel writes only block b's storage (and b's own flux-register
  // slots), so execution order between distinct blocks cannot change
  // results bit for bit.

  /// Size per-lane scratch (pencil buffers, EOS rows) for the current
  /// arena lane count. Driver-thread, setup-time: allocates on lane-count
  /// change, no-op otherwise. The bulk paths call it on entry; the
  /// task-graph driver calls it before running a step graph.
  void ensure_lane_scratch();

  /// One block's directional sweep using lane \p lane's cached scratch.
  void sweep_block_task(int axis, double dt, int b, int lane)
      FHP_REQUIRES_REGION;

  /// One block's Eos_wrapped pass using lane \p lane's cached scratch.
  void eos_update_block_task(int b, int lane) FHP_REQUIRES_REGION;

  /// Fine-coarse flux correction of one coarse leaf \p b (no-op unless b
  /// abuts finer blocks along \p axis). Writes only b's face-adjacent
  /// cells; reads the flux registers of the fine blocks reported by
  /// flux_sources(axis, b) — the task-graph dependency set.
  void apply_flux_correction_block(int axis, double dt, int b)
      FHP_REQUIRES_REGION;

  /// The fine blocks whose flux registers apply_flux_correction_block
  /// (axis, b) reads. Empty when b needs no correction along \p axis
  /// (then the task-graph driver submits no flux task for b). Setup-time
  /// query: allocates.
  [[nodiscard]] std::vector<int> flux_sources(int axis, int b) const;

  /// Strang sweep-order parity of the *next* step (true: 0..ndim-1).
  [[nodiscard]] bool forward_order() const noexcept {
    return (step_count_ % 2) == 0;
  }
  /// Record one completed step for the Strang alternation — the task-mode
  /// driver calls this after running a step graph (step() does its own).
  void advance_step_count() noexcept { ++step_count_; }

  void set_composition_fn(CompositionFn fn) { composition_ = std::move(fn); }

  [[nodiscard]] const HydroOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] int steps_taken() const noexcept { return step_count_; }

  /// Replay the memory/compute behaviour of one step of block \p b into
  /// the machine model: the unk pencil gathers/scatters for each sweep
  /// plus the per-zone arithmetic. Call once per sampled block per step.
  void trace_step_block(tlb::Tracer& tracer, int b) const;

 private:
  struct PencilBuffers;  // scratch arrays reused across pencils

  /// Block kernels run as region-lambda bodies on pool lanes (each
  /// writes only block-/lane-private data), hence FHP_REQUIRES_REGION.
  void sweep_block(int axis, double dt, int b, PencilBuffers& buf)
      FHP_REQUIRES_REGION;
  /// Serial leaf-order loop over apply_flux_correction_block (bulk path).
  void apply_flux_corrections(int axis, double dt);

  /// CFL-limited dt of one leaf block (exact, order-independent min).
  [[nodiscard]] double block_dt(int b) const FHP_REQUIRES_REGION;

  /// Eos_wrapped pass over one leaf block; \p row and \p scalars are
  /// per-lane scratch (\p scalars holds one zone's gathered scalar vector
  /// under layouts that do not store variables contiguously).
  void eos_update_block(int b, std::vector<eos::State>& row,
                        std::vector<double>& scalars) FHP_REQUIRES_REGION;

  [[nodiscard]] int ncons() const noexcept {
    return 5 + mesh_.config().nscalars;
  }

  // --- boundary-flux register for fine-coarse conservation -------------
  [[nodiscard]] std::size_t flux_slot(int block, int side) const noexcept;
  [[nodiscard]] double* flux_entry(int block, int side, int v, int t1,
                                   int t2) noexcept;

  mesh::AmrMesh& mesh_;
  const eos::Eos& eos_;
  HydroOptions options_;
  CompositionFn composition_;
  int step_count_ = 0;
  int max_tan_ = 0;                ///< max tangential cells per face
  std::vector<double> flux_store_; ///< [block][side][v][t2][t1]

  // Per-lane scratch, cached across steps (rebuilt by ensure_lane_scratch
  // only when the arena lane count changes) so sweep/EOS task bodies stay
  // allocation-free on the hot path.
  int scratch_lanes_ = 0;
  std::vector<PencilBuffers> lane_bufs_;
  std::vector<std::vector<eos::State>> lane_rows_;
  std::vector<std::vector<double>> lane_scalars_;
};

}  // namespace fhp::hydro
