/// \file riemann.hpp
/// \brief Riemann solvers: exact (ideal gas) and HLLC (general EOS).
///
/// The exact solver (Toro ch. 4) is the reference for the Sod shock-tube
/// tests; the production solver in the sweeps is HLLC with Davis wave-speed
/// estimates, which needs only the local sound speeds and therefore works
/// with the tabulated stellar EOS through the frozen-gamma approximation.

#pragma once

#include <array>

namespace fhp::hydro {

/// Primitive state on one side of an interface (1-d normal frame).
struct PrimState {
  double rho = 0;   ///< density
  double u = 0;     ///< normal velocity
  double ut1 = 0;   ///< transverse velocity 1 (passively advected)
  double ut2 = 0;   ///< transverse velocity 2
  double p = 0;     ///< pressure
  double game = 0;  ///< energy gamma: p/(rho*eint) + 1
  double gamc = 0;  ///< sound-speed gamma: c^2 = gamc p / rho
};

/// Conservative flux through the interface (normal frame):
/// [mass, normal momentum, transverse momenta, total energy].
struct Flux {
  double mass = 0;
  double mom_n = 0;
  double mom_t1 = 0;
  double mom_t2 = 0;
  double energy = 0;
  /// Signed mass flux is also what advects scalars; the caller upwinds
  /// scalar values with the sign of `mass`.
};

/// HLLC approximate Riemann solver (Toro ch. 10). Robust for strong
/// shocks; exactly resolves isolated contacts.
[[nodiscard]] Flux hllc(const PrimState& left, const PrimState& right);

/// Exact Riemann solver for an ideal gas with a single gamma.
class ExactRiemann {
 public:
  explicit ExactRiemann(double gamma) : gamma_(gamma) {}

  struct StarState {
    double p = 0;  ///< pressure in the star region
    double u = 0;  ///< velocity in the star region
  };

  /// Solve for the star-region pressure/velocity (Newton on the pressure
  /// function; converges for any physical input without vacuum).
  [[nodiscard]] StarState solve(const PrimState& left,
                                const PrimState& right) const;

  /// Sample the self-similar solution at speed s = x/t.
  /// Returns (rho, u, p) at that ray.
  [[nodiscard]] std::array<double, 3> sample(const PrimState& left,
                                             const PrimState& right,
                                             double s) const;

 private:
  double gamma_;
};

}  // namespace fhp::hydro
