#include "hydro/hydro.hpp"

#include <algorithm>
#include <cmath>

#include "hydro/riemann.hpp"
#include "mem/page_size.hpp"
#include "par/parallel.hpp"
#include "support/trace.hpp"
#include "support/error.hpp"
#include "tlb/geometry.hpp"

namespace fhp::hydro {

using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kFirstScalar;
using mesh::var::kGamc;
using mesh::var::kGame;
using mesh::var::kPres;
using mesh::var::kTemp;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

namespace {

double minmod3(double a, double b, double c) noexcept {
  if (a > 0 && b > 0 && c > 0) return std::min({a, b, c});
  if (a < 0 && b < 0 && c < 0) return std::max({a, b, c});
  return 0.0;
}

/// MC (monotonized central) limited slope.
double mc_slope(double um, double uc, double up) noexcept {
  return minmod3(2.0 * (uc - um), 2.0 * (up - uc), 0.5 * (up - um));
}

struct Evolved {
  // Evolved left/right primitive states of one cell.
  PrimState left, right;
};

}  // namespace

/// Scratch arrays for one pencil; sized once for the longest axis.
struct HydroSolver::PencilBuffers {
  explicit PencilBuffers(const mesh::MeshConfig& c)
      : n(std::max({c.ni(), c.nj(), c.nk()})),
        ns(c.nscalars) {
    rho.resize(static_cast<std::size_t>(n));
    un.resize(static_cast<std::size_t>(n));
    ut1.resize(static_cast<std::size_t>(n));
    ut2.resize(static_cast<std::size_t>(n));
    p.resize(static_cast<std::size_t>(n));
    game.resize(static_cast<std::size_t>(n));
    gamc.resize(static_cast<std::size_t>(n));
    evolved.resize(static_cast<std::size_t>(n));
    scal.resize(static_cast<std::size_t>(ns) * static_cast<std::size_t>(n));
    scal_lo.resize(scal.size());
    scal_hi.resize(scal.size());
    flux.resize(static_cast<std::size_t>(n + 1));
    sflux.resize(static_cast<std::size_t>(ns) *
                 static_cast<std::size_t>(n + 1));
  }
  int n;   ///< pencil length (padded)
  int ns;  ///< scalar count
  std::vector<double> rho, un, ut1, ut2, p, game, gamc;
  std::vector<Evolved> evolved;
  std::vector<double> scal;            ///< [s][i]
  std::vector<double> scal_lo, scal_hi;///< limited face values per scalar
  std::vector<Flux> flux;              ///< interface fluxes
  std::vector<double> sflux;           ///< scalar interface fluxes [s][i]
};

HydroSolver::HydroSolver(mesh::AmrMesh& mesh, const eos::Eos& eos,
                         HydroOptions options)
    : mesh_(mesh), eos_(eos), options_(options) {
  const mesh::MeshConfig& c = mesh_.config();
  FHP_REQUIRE(ncons() <= 16, "hydro supports at most 11 mass scalars");
  max_tan_ = std::max({c.nyb * c.nzb, c.nxb * c.nzb, c.nxb * c.nyb});
  flux_store_.resize(static_cast<std::size_t>(c.maxblocks) * 2 *
                     static_cast<std::size_t>(ncons()) *
                     static_cast<std::size_t>(max_tan_));
}

HydroSolver::~HydroSolver() = default;

void HydroSolver::ensure_lane_scratch() {
  const int lanes = mesh_.arena().lanes();
  if (scratch_lanes_ == lanes) return;
  const mesh::MeshConfig& c = mesh_.config();
  lane_bufs_.clear();
  lane_bufs_.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) lane_bufs_.emplace_back(c);
  lane_rows_.assign(static_cast<std::size_t>(lanes),
                    std::vector<eos::State>(static_cast<std::size_t>(c.nxb)));
  lane_scalars_.assign(
      static_cast<std::size_t>(lanes),
      std::vector<double>(static_cast<std::size_t>(c.nscalars)));
  scratch_lanes_ = lanes;
}

void HydroSolver::sweep_block_task(int axis, double dt, int b, int lane) {
  FHP_TRACE_SPAN("hydro.sweep_block");
  sweep_block(axis, dt, b, lane_bufs_[static_cast<std::size_t>(lane)]);
}

void HydroSolver::eos_update_block_task(int b, int lane) {
  FHP_TRACE_SPAN("eos.block");
  eos_update_block(b, lane_rows_[static_cast<std::size_t>(lane)],
                   lane_scalars_[static_cast<std::size_t>(lane)]);
}

std::size_t HydroSolver::flux_slot(int block, int side) const noexcept {
  return (static_cast<std::size_t>(block) * 2 +
          static_cast<std::size_t>(side)) *
         static_cast<std::size_t>(ncons()) * static_cast<std::size_t>(max_tan_);
}

double* HydroSolver::flux_entry(int block, int side, int v, int t1,
                                int t2) noexcept {
  const mesh::MeshConfig& c = mesh_.config();
  const int tan1 = c.nxb;  // upper bound for any axis' first tangential dim
  (void)tan1;
  return flux_store_.data() + flux_slot(block, side) +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(max_tan_) +
         static_cast<std::size_t>(t2) * static_cast<std::size_t>(c.nxb > c.nyb
                                                                     ? c.nxb
                                                                     : c.nyb) +
         static_cast<std::size_t>(t1);
}

double HydroSolver::block_dt(int b) const {
  const mesh::MeshConfig& c = mesh_.config();
  const mesh::UnkContainer& unk = mesh_.unk();
  double dt = std::numeric_limits<double>::max();
  std::array<double, 3> h{mesh_.dx(b, 0),
                          c.ndim >= 2 ? mesh_.dx(b, 1) : 1e300,
                          c.ndim >= 3 ? mesh_.dx(b, 2) : 1e300};
  for (int k = c.klo(); k < c.khi(); ++k) {
    for (int j = c.jlo(); j < c.jhi(); ++j) {
      for (int i = c.ilo(); i < c.ihi(); ++i) {
        const double rho = unk.at(kDens, i, j, k, b);
        const double p = unk.at(kPres, i, j, k, b);
        const double gamc = unk.at(kGamc, i, j, k, b);
        const double cs = std::sqrt(std::max(0.0, gamc * p / rho));
        const double vx = std::fabs(unk.at(kVelx, i, j, k, b));
        const double vy = std::fabs(unk.at(kVely, i, j, k, b));
        const double vz = std::fabs(unk.at(kVelz, i, j, k, b));
        dt = std::min(dt, h[0] / (vx + cs));
        if (c.ndim >= 2) dt = std::min(dt, h[1] / (vy + cs));
        if (c.ndim >= 3) dt = std::min(dt, h[2] / (vz + cs));
      }
    }
  }
  return dt;
}

double HydroSolver::compute_dt() const {
  FHP_TRACE_SPAN("hydro.compute_dt");
  const std::vector<int> leaves = mesh_.tree().leaves_morton();
  // Per-lane partial minima; min is exact and commutative, so the
  // lane-then-serial combine equals the serial scan bit for bit.
  std::vector<double> lane_dt(static_cast<std::size_t>(mesh_.arena().lanes()),
                              std::numeric_limits<double>::max());
  mesh_.arena().parallel_for_blocks(leaves, [&](int lane, int b) {
    RegionWitness witness;  // region lambda body: lane writer role
    auto& slot = lane_dt[static_cast<std::size_t>(lane)];
    slot = std::min(slot, block_dt(b));
  });
  double dt = std::numeric_limits<double>::max();
  for (const double d : lane_dt) dt = std::min(dt, d);
  FHP_CHECK(dt > 0.0 && dt < std::numeric_limits<double>::max(),
            "CFL produced a non-positive or unbounded dt");
  return options_.cfl * dt;
}

void HydroSolver::step(double dt) {
  FHP_TRACE_SPAN("hydro.step");
  const int ndim = mesh_.config().ndim;
  // Strang-style alternation of the sweep order between steps.
  const bool forward = (step_count_ % 2) == 0;
  for (int s = 0; s < ndim; ++s) {
    const int axis = forward ? s : ndim - 1 - s;
    mesh_.fill_guardcells();
    sweep(axis, dt);
    eos_update();
  }
  ++step_count_;
}

void HydroSolver::sweep(int axis, double dt) {
  FHP_REQUIRE(axis >= 0 && axis < mesh_.config().ndim, "bad sweep axis");
  // Span names must be static-storage literals (the ring keeps the
  // pointer), so the per-axis name is a table lookup, not a format.
  static constexpr const char* kSweepSpanNames[3] = {
      "hydro.sweep_x", "hydro.sweep_y", "hydro.sweep_z"};
  trace::SpanScope sweep_span(kSweepSpanNames[axis]);
  const std::vector<int> leaves = mesh_.tree().leaves_morton();
  // Cached per-lane scratch; sweep_block touches only block b's storage
  // and b's own flux-register slots, so blocks are independent.
  ensure_lane_scratch();
  mesh_.arena().parallel_for_blocks(leaves, [&](int lane, int b) {
    RegionWitness witness;  // region lambda body: lane writer role
    sweep_block_task(axis, dt, b, lane);
  });
  // Fine-coarse conservation reads fine-block registers written above and
  // touches coarse cells next to refinement boundaries: serial, after the
  // sweep barrier.
  if (options_.flux_correct) apply_flux_corrections(axis, dt);
}

void HydroSolver::sweep_block(int axis, double dt, int b,
                              PencilBuffers& buf) {
  const mesh::MeshConfig& c = mesh_.config();
  mesh::UnkContainer& unk = mesh_.unk();
  const int ng = c.nguard;
  const int ns = c.nscalars;
  const bool cyl_radial =
      c.geometry == mesh::Geometry::kCylindrical && axis == 0;

  // Axis-dependent variable mapping and loop framing.
  int vn, vt1, vt2;
  int nlen;  // padded pencil length along the sweep axis
  switch (axis) {
    case 0: vn = kVelx; vt1 = kVely; vt2 = kVelz; nlen = c.ni(); break;
    case 1: vn = kVely; vt1 = kVelx; vt2 = kVelz; nlen = c.nj(); break;
    default: vn = kVelz; vt1 = kVelx; vt2 = kVely; nlen = c.nk(); break;
  }
  const double h = mesh_.dx(b, axis);
  const double dtdx = dt / h;

  // Tangential loop bounds (interior only).
  const int t1lo = axis == 0 ? c.jlo() : c.ilo();
  const int t1hi = axis == 0 ? c.jhi() : c.ihi();
  const int t2lo = axis == 2 ? c.jlo() : c.klo();
  const int t2hi = axis == 2 ? c.jhi() : c.khi();

  auto cell_index = [&](int m, int t1, int t2, int& i, int& j, int& k) {
    switch (axis) {
      case 0: i = m; j = t1; k = t2; break;
      case 1: i = t1; j = m; k = t2; break;
      default: i = t1; j = t2; k = m; break;
    }
  };

  for (int t2 = t2lo; t2 < t2hi; ++t2) {
    for (int t1 = t1lo; t1 < t1hi; ++t1) {
      // ---- gather the pencil --------------------------------------------
      for (int m = 0; m < nlen; ++m) {
        int i, j, k;
        cell_index(m, t1, t2, i, j, k);
        const auto mi = static_cast<std::size_t>(m);
        buf.rho[mi] = unk.at(kDens, i, j, k, b);
        buf.un[mi] = unk.at(vn, i, j, k, b);
        buf.ut1[mi] = unk.at(vt1, i, j, k, b);
        buf.ut2[mi] = unk.at(vt2, i, j, k, b);
        buf.p[mi] = unk.at(kPres, i, j, k, b);
        buf.game[mi] = std::max(1.0 + 1e-10, unk.at(kGame, i, j, k, b));
        buf.gamc[mi] = std::max(1.0 + 1e-10, unk.at(kGamc, i, j, k, b));
        for (int s = 0; s < ns; ++s) {
          buf.scal[static_cast<std::size_t>(s) *
                       static_cast<std::size_t>(buf.n) +
                   mi] = unk.at(kFirstScalar + s, i, j, k, b);
        }
      }

      // ---- reconstruct + half-step evolve -------------------------------
      for (int m = 1; m < nlen - 1; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        const double srho = mc_slope(buf.rho[mi - 1], buf.rho[mi], buf.rho[mi + 1]);
        const double sun = mc_slope(buf.un[mi - 1], buf.un[mi], buf.un[mi + 1]);
        const double sut1 =
            mc_slope(buf.ut1[mi - 1], buf.ut1[mi], buf.ut1[mi + 1]);
        const double sut2 =
            mc_slope(buf.ut2[mi - 1], buf.ut2[mi], buf.ut2[mi + 1]);
        const double sp = mc_slope(buf.p[mi - 1], buf.p[mi], buf.p[mi + 1]);

        PrimState wl, wr;
        wl.rho = std::max(options_.small_rho, buf.rho[mi] - 0.5 * srho);
        wr.rho = std::max(options_.small_rho, buf.rho[mi] + 0.5 * srho);
        wl.u = buf.un[mi] - 0.5 * sun;
        wr.u = buf.un[mi] + 0.5 * sun;
        wl.ut1 = buf.ut1[mi] - 0.5 * sut1;
        wr.ut1 = buf.ut1[mi] + 0.5 * sut1;
        wl.ut2 = buf.ut2[mi] - 0.5 * sut2;
        wr.ut2 = buf.ut2[mi] + 0.5 * sut2;
        wl.p = std::max(options_.small_p, buf.p[mi] - 0.5 * sp);
        wr.p = std::max(options_.small_p, buf.p[mi] + 0.5 * sp);
        wl.game = wr.game = buf.game[mi];
        wl.gamc = wr.gamc = buf.gamc[mi];

        // Conserved forms of the face states.
        auto to_cons = [](const PrimState& w, double out[5]) {
          const double eint = w.p / ((w.game - 1.0) * w.rho);
          const double ke =
              0.5 * (w.u * w.u + w.ut1 * w.ut1 + w.ut2 * w.ut2);
          out[0] = w.rho;
          out[1] = w.rho * w.u;
          out[2] = w.rho * w.ut1;
          out[3] = w.rho * w.ut2;
          out[4] = w.rho * (eint + ke);
        };
        auto flux_of = [](const PrimState& w, double out[5]) {
          const double eint = w.p / ((w.game - 1.0) * w.rho);
          const double ke =
              0.5 * (w.u * w.u + w.ut1 * w.ut1 + w.ut2 * w.ut2);
          const double E = w.rho * (eint + ke);
          out[0] = w.rho * w.u;
          out[1] = w.rho * w.u * w.u + w.p;
          out[2] = w.rho * w.u * w.ut1;
          out[3] = w.rho * w.u * w.ut2;
          out[4] = w.u * (E + w.p);
        };
        double ul[5], ur[5], fl[5], fr[5];
        to_cons(wl, ul);
        to_cons(wr, ur);
        flux_of(wl, fl);
        flux_of(wr, fr);
        for (int q = 0; q < 5; ++q) {
          const double du = 0.5 * dtdx * (fl[q] - fr[q]);
          ul[q] += du;
          ur[q] += du;
        }
        auto to_prim = [&](const double u[5], double game,
                           double gamc) {
          PrimState w;
          w.rho = std::max(options_.small_rho, u[0]);
          w.u = u[1] / w.rho;
          w.ut1 = u[2] / w.rho;
          w.ut2 = u[3] / w.rho;
          const double ke =
              0.5 * (w.u * w.u + w.ut1 * w.ut1 + w.ut2 * w.ut2);
          w.p = std::max(options_.small_p,
                         (game - 1.0) * (u[4] - w.rho * ke));
          w.game = game;
          w.gamc = gamc;
          return w;
        };
        buf.evolved[mi].left = to_prim(ul, buf.game[mi], buf.gamc[mi]);
        buf.evolved[mi].right = to_prim(ur, buf.game[mi], buf.gamc[mi]);

        // Scalar face values (limited, not evolved).
        for (int s = 0; s < ns; ++s) {
          const auto si =
              static_cast<std::size_t>(s) * static_cast<std::size_t>(buf.n) +
              mi;
          const double sv = mc_slope(buf.scal[si - 1], buf.scal[si],
                                     buf.scal[si + 1]);
          buf.scal_lo[si] = buf.scal[si] - 0.5 * sv;
          buf.scal_hi[si] = buf.scal[si] + 0.5 * sv;
        }
      }

      // ---- interface fluxes ---------------------------------------------
      for (int m = ng; m <= nlen - ng; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        const PrimState& left = buf.evolved[mi - 1].right;
        const PrimState& right = buf.evolved[mi].left;
        buf.flux[mi] = hllc(left, right);
        for (int s = 0; s < ns; ++s) {
          const auto base =
              static_cast<std::size_t>(s) * static_cast<std::size_t>(buf.n);
          const double phi = buf.flux[mi].mass >= 0.0
                                 ? buf.scal_hi[base + mi - 1]
                                 : buf.scal_lo[base + mi];
          buf.sflux[static_cast<std::size_t>(s) *
                        static_cast<std::size_t>(buf.n + 1) +
                    mi] = buf.flux[mi].mass * phi;
        }
      }

      // ---- conservative update ------------------------------------------
      for (int m = ng; m < nlen - ng; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        int i, j, k;
        cell_index(m, t1, t2, i, j, k);
        int i1, j1, k1;  // the cell's high face carries the next index
        cell_index(m + 1, t1, t2, i1, j1, k1);

        const double vol = mesh_.cell_volume(b, i, j, k);
        const double a_lo = mesh_.face_area(b, axis, i, j, k);
        const double a_hi = mesh_.face_area(b, axis, i1, j1, k1);

        const double rho_old = buf.rho[mi];
        const double ke_old = 0.5 * (buf.un[mi] * buf.un[mi] +
                                     buf.ut1[mi] * buf.ut1[mi] +
                                     buf.ut2[mi] * buf.ut2[mi]);
        const double eint_old = buf.p[mi] / ((buf.game[mi] - 1.0) * rho_old);
        double u[5] = {rho_old, rho_old * buf.un[mi], rho_old * buf.ut1[mi],
                       rho_old * buf.ut2[mi], rho_old * (eint_old + ke_old)};

        const Flux& flo = buf.flux[mi];
        const Flux& fhi = buf.flux[mi + 1];
        const double scale = dt / vol;
        u[0] -= scale * (a_hi * fhi.mass - a_lo * flo.mass);
        u[1] -= scale * (a_hi * fhi.mom_n - a_lo * flo.mom_n);
        u[2] -= scale * (a_hi * fhi.mom_t1 - a_lo * flo.mom_t1);
        u[3] -= scale * (a_hi * fhi.mom_t2 - a_lo * flo.mom_t2);
        u[4] -= scale * (a_hi * fhi.energy - a_lo * flo.energy);
        if (cyl_radial) {
          // Geometric pressure source: + P/r on the radial momentum
          // (cancels the area-weighted pressure in the flux divergence).
          const double rc = mesh_.xcenter(b, i);
          u[1] += dt * buf.p[mi] / rc;
        }

        const double rho_new = std::max(options_.small_rho, u[0]);
        unk.at(kDens, i, j, k, b) = rho_new;
        unk.at(vn, i, j, k, b) = u[1] / rho_new;
        unk.at(vt1, i, j, k, b) = u[2] / rho_new;
        unk.at(vt2, i, j, k, b) = u[3] / rho_new;
        unk.at(kEner, i, j, k, b) = u[4] / rho_new;

        for (int s = 0; s < ns; ++s) {
          const auto fbase =
              static_cast<std::size_t>(s) * static_cast<std::size_t>(buf.n + 1);
          const auto base =
              static_cast<std::size_t>(s) * static_cast<std::size_t>(buf.n);
          double us = rho_old * buf.scal[base + mi];
          us -= scale * (a_hi * buf.sflux[fbase + mi + 1] -
                         a_lo * buf.sflux[fbase + mi]);
          unk.at(kFirstScalar + s, i, j, k, b) = us / rho_new;
        }
      }

      // ---- record boundary fluxes for fine-coarse conservation ----------
      if (options_.flux_correct) {
        const int tt1 = t1 - (axis == 0 ? c.jlo() : c.ilo());
        const int tt2 = t2 - (axis == 2 ? c.jlo() : c.klo());
        auto record = [&](int side, const Flux& f, const double* sf,
                          std::size_t sf_stride, std::size_t sf_index) {
          *flux_entry(b, side, 0, tt1, tt2) = f.mass;
          *flux_entry(b, side, 1, tt1, tt2) = f.mom_n;
          *flux_entry(b, side, 2, tt1, tt2) = f.mom_t1;
          *flux_entry(b, side, 3, tt1, tt2) = f.mom_t2;
          *flux_entry(b, side, 4, tt1, tt2) = f.energy;
          for (int s = 0; s < ns; ++s) {
            *flux_entry(b, side, 5 + s, tt1, tt2) =
                sf[static_cast<std::size_t>(s) * sf_stride + sf_index];
          }
        };
        record(0, buf.flux[static_cast<std::size_t>(ng)], buf.sflux.data(),
               static_cast<std::size_t>(buf.n + 1),
               static_cast<std::size_t>(ng));
        record(1, buf.flux[static_cast<std::size_t>(nlen - ng)],
               buf.sflux.data(), static_cast<std::size_t>(buf.n + 1),
               static_cast<std::size_t>(nlen - ng));
      }
    }
  }
}

void HydroSolver::apply_flux_corrections(int axis, double dt) {
  // Serial leaf-order loop; each per-block correction is independent
  // (writes only b's cells, reads fine-block registers), so this order
  // and any task-graph order produce bit-identical results.
  for (int b : mesh_.tree().leaves_morton()) {
    RegionWitness witness;  // serial driver thread: trivially exclusive
    apply_flux_correction_block(axis, dt, b);
  }
}

std::vector<int> HydroSolver::flux_sources(int axis, int b) const {
  std::vector<int> sources;
  if (!options_.flux_correct) return sources;
  const mesh::MeshConfig& c = mesh_.config();
  const mesh::BlockTree& tree = mesh_.tree();
  const int n1 = axis == 0 ? c.nyb : c.nxb;
  const int n2 = c.ndim >= 3 ? (axis == 2 ? c.nyb : c.nzb) : 1;
  for (int side = 0; side < 2; ++side) {
    std::array<int, 3> step{0, 0, 0};
    step[static_cast<std::size_t>(axis)] = side == 0 ? -1 : 1;
    const mesh::NeighborQuery q = tree.neighbor(b, step);
    if (q.id < 0 || tree.info(q.id).is_leaf) continue;
    const mesh::BlockInfo& nb = tree.info(q.id);
    // Same child selection as apply_flux_correction_block's inner loop.
    for (int u2 = 0; u2 < n2; ++u2) {
      for (int u1 = 0; u1 < n1; ++u1) {
        int cx = 0, cy = 0, cz = 0;
        const int facing_bit = side == 0 ? 1 : 0;
        const int half1 = (2 * u1) / n1;
        const int half2 = n2 > 1 ? (2 * u2) / n2 : 0;
        switch (axis) {
          case 0: cx = facing_bit; cy = half1; cz = half2; break;
          case 1: cy = facing_bit; cx = half1; cz = half2; break;
          default: cz = facing_bit; cx = half1; cy = half2; break;
        }
        const int fine =
            nb.children[static_cast<std::size_t>(cx + 2 * cy + 4 * cz)];
        FHP_CHECK(fine >= 0, "missing fine child at fine-coarse face");
        if (std::find(sources.begin(), sources.end(), fine) ==
            sources.end()) {
          sources.push_back(fine);
        }
      }
    }
  }
  return sources;
}

void HydroSolver::apply_flux_correction_block(int axis, double dt, int b) {
  const mesh::MeshConfig& c = mesh_.config();
  mesh::UnkContainer& unk = mesh_.unk();
  const mesh::BlockTree& tree = mesh_.tree();
  const int ng = c.nguard;
  const int ns = c.nscalars;

  int vn, vt1, vt2;
  switch (axis) {
    case 0: vn = kVelx; vt1 = kVely; vt2 = kVelz; break;
    case 1: vn = kVely; vt1 = kVelx; vt2 = kVelz; break;
    default: vn = kVelz; vt1 = kVelx; vt2 = kVely; break;
  }

  // Tangential interior extents for this axis.
  const int n1 = axis == 0 ? c.nyb : c.nxb;
  const int n2 = c.ndim >= 3 ? (axis == 2 ? c.nyb : c.nzb) : 1;
  const int nedge = axis == 0 ? c.nxb : (axis == 1 ? c.nyb : c.nzb);

  {
    for (int side = 0; side < 2; ++side) {
      std::array<int, 3> step{0, 0, 0};
      step[static_cast<std::size_t>(axis)] = side == 0 ? -1 : 1;
      const mesh::NeighborQuery q = tree.neighbor(b, step);
      if (q.id < 0 || tree.info(q.id).is_leaf) continue;
      // Finer data across this face: replace our stored coarse flux with
      // the area-weighted fine flux and correct the adjacent cells.
      const mesh::BlockInfo& nb = tree.info(q.id);

      for (int u2 = 0; u2 < n2; ++u2) {
        for (int u1 = 0; u1 < n1; ++u1) {
          // Fine child on the facing side covering coarse tangential cell
          // (u1, u2): tangential halves select the child.
          int cx = 0, cy = 0, cz = 0;  // child octant bits
          const int facing_bit = side == 0 ? 1 : 0;
          int f1 = 2 * u1, f2 = 2 * u2;  // fine tangential indices (global in neighbor)
          const int half1 = f1 / n1;     // 0 or 1
          const int half2 = n2 > 1 ? f2 / n2 : 0;
          switch (axis) {
            case 0: cx = facing_bit; cy = half1; cz = half2; break;
            case 1: cy = facing_bit; cx = half1; cz = half2; break;
            default: cz = facing_bit; cx = half1; cy = half2; break;
          }
          const int child_index = cx + 2 * cy + 4 * cz;
          const int fine = nb.children[static_cast<std::size_t>(child_index)];
          FHP_CHECK(fine >= 0, "missing fine child at fine-coarse face");

          const int l1 = f1 - half1 * n1;  // local fine tangential index
          const int l2 = n2 > 1 ? f2 - half2 * n2 : 0;

          // Area-weighted fine flux average over the 2 (2-d) or 4 (3-d)
          // fine faces covering this coarse face cell.
          const int fine_side = 1 - side;  // fine block's face toward us
          double favg[16] = {0};
          double area_sum = 0.0;
          const int m2span = c.ndim >= 3 ? 2 : 1;
          // HydroSolver stored fine boundary fluxes for the fine blocks.
          // Compute fine face areas for weighting.
          for (int d2 = 0; d2 < m2span; ++d2) {
            for (int d1 = 0; d1 < 2; ++d1) {
              // Fine face cell indices (interior-relative).
              const int ft1 = l1 + d1;
              const int ft2 = l2 + d2;
              // Map to padded (i,j,k) of the fine block's boundary face for
              // the area computation.
              int fi, fj, fk;
              const int edge = fine_side == 0 ? ng : ng + nedge;
              switch (axis) {
                case 0: fi = edge; fj = ng + ft1; fk = c.ndim >= 3 ? ng + ft2 : 0; break;
                case 1: fi = ng + ft1; fj = edge; fk = c.ndim >= 3 ? ng + ft2 : 0; break;
                default: fi = ng + ft1; fj = ng + ft2; fk = edge; break;
              }
              const double area = mesh_.face_area(fine, axis, fi, fj, fk);
              area_sum += area;
              for (int v = 0; v < ncons(); ++v) {
                favg[v] += area * *flux_entry(fine, fine_side, v, ft1, ft2);
              }
            }
          }
          for (int v = 0; v < ncons(); ++v) favg[v] /= area_sum;

          // Coarse cell adjacent to the face.
          int ci, cj, ck;
          const int adj = side == 0 ? ng : ng + nedge - 1;
          switch (axis) {
            case 0: ci = adj; cj = ng + u1; ck = c.ndim >= 3 ? ng + u2 : 0; break;
            case 1: ci = ng + u1; cj = adj; ck = c.ndim >= 3 ? ng + u2 : 0; break;
            default: ci = ng + u1; cj = ng + u2; ck = adj; break;
          }
          int ci_face = ci, cj_face = cj, ck_face = ck;
          if (side == 1) {
            // High face of the adjacent cell has index +1 along the axis.
            switch (axis) {
              case 0: ci_face = ci + 1; break;
              case 1: cj_face = cj + 1; break;
              default: ck_face = ck + 1; break;
            }
          }
          const double a_face =
              mesh_.face_area(b, axis, ci_face, cj_face, ck_face);
          const double vol = mesh_.cell_volume(b, ci, cj, ck);

          // Stored coarse flux at this face cell.
          double fc[16];
          for (int v = 0; v < ncons(); ++v) {
            fc[v] = *flux_entry(b, side, v, u1, u2);
          }

          // Correction: replace Fc by favg in the already-applied update.
          // Low face contributed +dt/V*A*Fc, high face -dt/V*A*Fc.
          const double sign = side == 0 ? 1.0 : -1.0;
          const double scale = sign * dt * a_face / vol;

          const double rho_old = unk.at(kDens, ci, cj, ck, b);
          double uvec[16];
          uvec[0] = rho_old;
          uvec[1] = rho_old * unk.at(vn, ci, cj, ck, b);
          uvec[2] = rho_old * unk.at(vt1, ci, cj, ck, b);
          uvec[3] = rho_old * unk.at(vt2, ci, cj, ck, b);
          uvec[4] = rho_old * unk.at(kEner, ci, cj, ck, b);
          for (int s = 0; s < ns; ++s) {
            uvec[5 + s] = rho_old * unk.at(kFirstScalar + s, ci, cj, ck, b);
          }
          for (int v = 0; v < ncons(); ++v) {
            uvec[v] += scale * (favg[v] - fc[v]);
          }
          const double rho_new = std::max(options_.small_rho, uvec[0]);
          unk.at(kDens, ci, cj, ck, b) = rho_new;
          unk.at(vn, ci, cj, ck, b) = uvec[1] / rho_new;
          unk.at(vt1, ci, cj, ck, b) = uvec[2] / rho_new;
          unk.at(vt2, ci, cj, ck, b) = uvec[3] / rho_new;
          unk.at(kEner, ci, cj, ck, b) = uvec[4] / rho_new;
          for (int s = 0; s < ns; ++s) {
            unk.at(kFirstScalar + s, ci, cj, ck, b) = uvec[5 + s] / rho_new;
          }
        }
      }
    }
  }
}

void HydroSolver::eos_update() {
  FHP_TRACE_SPAN("eos.update");
  const std::vector<int> leaves = mesh_.tree().leaves_morton();
  // Cached per-lane row scratch; Eos::eval is const (pure per-zone), so
  // the block pass is embarrassingly parallel.
  ensure_lane_scratch();
  mesh_.arena().parallel_for_blocks(leaves, [&](int lane, int b) {
    RegionWitness witness;  // region lambda body: lane writer role
    eos_update_block_task(b, lane);
  });
}

void HydroSolver::eos_update_block(int b, std::vector<eos::State>& row,
                                   std::vector<double>& scalars) {
  const mesh::MeshConfig& c = mesh_.config();
  mesh::UnkContainer& unk = mesh_.unk();
  {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const auto ri = static_cast<std::size_t>(i - c.ilo());
          eos::State& s = row[ri];
          s.rho = unk.at(kDens, i, j, k, b);
          const double vx = unk.at(kVelx, i, j, k, b);
          const double vy = unk.at(kVely, i, j, k, b);
          const double vz = unk.at(kVelz, i, j, k, b);
          const double ke = 0.5 * (vx * vx + vy * vy + vz * vz);
          const double ener = unk.at(kEner, i, j, k, b);
          s.ener = std::max(ener - ke, 1e-30);
          s.temp = unk.at(kTemp, i, j, k, b);  // warm start for the Newton
          s.abar = options_.abar;
          s.zbar = options_.zbar;
          if (composition_) {
            composition_(s,
                         unk.zone_span(kFirstScalar, c.nscalars, i, j, k, b,
                                       scalars.data()),
                         c.nscalars);
          }
        }
        eos_.eval(eos::Mode::kDensEner, row);
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const auto ri = static_cast<std::size_t>(i - c.ilo());
          const eos::State& s = row[ri];
          const double vx = unk.at(kVelx, i, j, k, b);
          const double vy = unk.at(kVely, i, j, k, b);
          const double vz = unk.at(kVelz, i, j, k, b);
          const double ke = 0.5 * (vx * vx + vy * vy + vz * vz);
          unk.at(kPres, i, j, k, b) = s.pres;
          unk.at(kTemp, i, j, k, b) = s.temp;
          unk.at(kEint, i, j, k, b) = s.ener;
          unk.at(kEner, i, j, k, b) = s.ener + ke;
          unk.at(kGamc, i, j, k, b) = s.gamma1;
          unk.at(kGame, i, j, k, b) =
              s.pres / (s.rho * s.ener) + 1.0;
        }
      }
    }
  }
}

void HydroSolver::trace_step_block(tlb::Tracer& tracer, int b) const {
  if (!tracer.enabled()) return;
  const mesh::MeshConfig& c = mesh_.config();
  const mesh::UnkContainer& unk = mesh_.unk();
  const int nvar = c.nvar();
  // Per-pencil scratch (primitives, slopes, evolved states, fluxes) lives
  // on the ordinary heap — base pages in both experiment arms (4 KiB on
  // x86, 64 KiB on many ARM kernels). Modeled at a fixed synthetic
  // address so the stream is identical whichever thread replays it.
  const std::uint8_t heap_shift = tlb::page_shift_of(mem::base_page_size());
  constexpr std::size_t kScratchRows = 14;
  constexpr std::size_t kScratchRowBytes = 64 * sizeof(double);
  const auto zones = static_cast<std::uint64_t>(c.nxb) *
                     static_cast<std::uint64_t>(c.nyb) *
                     static_cast<std::uint64_t>(c.nzb);
  const std::uint64_t pencils_per_sweep =
      zones / static_cast<std::uint64_t>(c.nxb);
  for (int axis = 0; axis < c.ndim; ++axis) {
    // Pencil gather (in sweep order — y/z pencils stride across pages)
    // reads every variable of every zone; the update writes the
    // conserved set back. Guard zones along the pencil are read too.
    unk.trace_sweep_axis(tracer, b, axis, c.ilo() - (axis == 0 ? 2 : 0),
                         c.ihi() + (axis == 0 ? 2 : 0),
                         c.jlo() - (axis == 1 ? 2 : 0),
                         c.jhi() + (axis == 1 ? 2 : 0),
                         c.klo() - (axis == 2 ? 2 : 0),
                         c.khi() + (axis == 2 ? 2 : 0), nvar, 0);
    // The conservative update re-reads the zone's state (read-modify-
    // write) before scattering the conserved set back.
    unk.trace_sweep_axis(tracer, b, axis, c.ilo(), c.ihi(), c.jlo(),
                         c.jhi(), c.klo(), c.khi(), ncons(), ncons());
    // MUSCL reconstruction + HLLC per zone: ~230 scalar ops with a small
    // vectorizable fraction (the paper measured 0.11 SVE instr/cycle).
    tracer.compute(zones * 230, zones * 15);
    for (std::uint64_t p = 0; p < pencils_per_sweep; ++p) {
      for (std::size_t r = 0; r < kScratchRows; ++r) {
        tracer.touch(tlb::synthetic_scratch(tlb::kHydroPencilScratchSlot,
                                            r * kScratchRowBytes),
                     kScratchRowBytes, true, heap_shift);
      }
    }
  }
  // The per-sweep EOS consistency pass is traced separately by the driver
  // (it is the paper's "EOS" instrumented region).
}

}  // namespace fhp::hydro
