#include "hydro/riemann.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fhp::hydro {

namespace {

double sound_speed(const PrimState& w) noexcept {
  return std::sqrt(std::max(0.0, w.gamc * w.p / w.rho));
}

double total_energy_density(const PrimState& w) noexcept {
  const double eint = w.p / ((w.game - 1.0) * w.rho);  // specific
  const double ke =
      0.5 * (w.u * w.u + w.ut1 * w.ut1 + w.ut2 * w.ut2);
  return w.rho * (eint + ke);
}

Flux physical_flux(const PrimState& w) noexcept {
  Flux f;
  const double E = total_energy_density(w);
  f.mass = w.rho * w.u;
  f.mom_n = w.rho * w.u * w.u + w.p;
  f.mom_t1 = w.rho * w.u * w.ut1;
  f.mom_t2 = w.rho * w.u * w.ut2;
  f.energy = w.u * (E + w.p);
  return f;
}

}  // namespace

Flux hllc(const PrimState& left, const PrimState& right) {
  const double cl = sound_speed(left);
  const double cr = sound_speed(right);

  // Davis wave-speed estimates.
  const double sl = std::min(left.u - cl, right.u - cr);
  const double sr = std::max(left.u + cl, right.u + cr);

  if (sl >= 0.0) return physical_flux(left);
  if (sr <= 0.0) return physical_flux(right);

  // Contact speed (Toro 10.37).
  const double num = right.p - left.p + left.rho * left.u * (sl - left.u) -
                     right.rho * right.u * (sr - right.u);
  const double den =
      left.rho * (sl - left.u) - right.rho * (sr - right.u);
  const double sm = den != 0.0 ? num / den : 0.0;

  const PrimState& w = sm >= 0.0 ? left : right;
  const double s = sm >= 0.0 ? sl : sr;
  const Flux f = physical_flux(w);
  const double E = total_energy_density(w);

  // Star-region conserved state (Toro 10.39).
  const double factor = w.rho * (s - w.u) / (s - sm);
  const double u_star[5] = {
      factor,
      factor * sm,
      factor * w.ut1,
      factor * w.ut2,
      factor * (E / w.rho +
                (sm - w.u) * (sm + w.p / (w.rho * (s - w.u)))),
  };
  const double u_orig[5] = {
      w.rho, w.rho * w.u, w.rho * w.ut1, w.rho * w.ut2, E,
  };

  Flux out;
  out.mass = f.mass + s * (u_star[0] - u_orig[0]);
  out.mom_n = f.mom_n + s * (u_star[1] - u_orig[1]);
  out.mom_t1 = f.mom_t1 + s * (u_star[2] - u_orig[2]);
  out.mom_t2 = f.mom_t2 + s * (u_star[3] - u_orig[3]);
  out.energy = f.energy + s * (u_star[4] - u_orig[4]);
  return out;
}

ExactRiemann::StarState ExactRiemann::solve(const PrimState& left,
                                            const PrimState& right) const {
  const double g = gamma_;
  const double cl = std::sqrt(g * left.p / left.rho);
  const double cr = std::sqrt(g * right.p / right.rho);

  FHP_REQUIRE(2.0 * (cl + cr) / (g - 1.0) > right.u - left.u,
              "vacuum-generating Riemann data");

  // Pressure function and derivative for one side (Toro 4.6-4.37).
  auto side = [g](double p, const PrimState& w, double c) {
    if (p > w.p) {  // shock
      const double a = 2.0 / ((g + 1.0) * w.rho);
      const double b = (g - 1.0) / (g + 1.0) * w.p;
      const double root = std::sqrt(a / (p + b));
      const double f = (p - w.p) * root;
      const double fd = root * (1.0 - 0.5 * (p - w.p) / (p + b));
      return std::pair{f, fd};
    }
    // rarefaction
    const double pr = p / w.p;
    const double f =
        2.0 * c / (g - 1.0) * (std::pow(pr, (g - 1.0) / (2.0 * g)) - 1.0);
    const double fd = std::pow(pr, -(g + 1.0) / (2.0 * g)) / (w.rho * c);
    return std::pair{f, fd};
  };

  // Initial guess: two-rarefaction approximation (robust).
  const double z = (g - 1.0) / (2.0 * g);
  double p = std::pow(
      (cl + cr - 0.5 * (g - 1.0) * (right.u - left.u)) /
          (cl / std::pow(left.p, z) + cr / std::pow(right.p, z)),
      1.0 / z);
  p = std::max(p, 1e-14 * std::max(left.p, right.p));

  for (int iter = 0; iter < 100; ++iter) {
    const auto [fl, fld] = side(p, left, cl);
    const auto [fr, frd] = side(p, right, cr);
    const double f = fl + fr + (right.u - left.u);
    const double step = f / (fld + frd);
    double next = p - step;
    if (next <= 0.0) next = 0.5 * p;
    if (std::fabs(next - p) <= 1e-13 * std::max(next, p)) {
      p = next;
      break;
    }
    p = next;
  }
  const double fl = side(p, left, cl).first;
  const double fr = side(p, right, cr).first;
  return {p, 0.5 * (left.u + right.u) + 0.5 * (fr - fl)};
}

std::array<double, 3> ExactRiemann::sample(const PrimState& left,
                                           const PrimState& right,
                                           double s) const {
  const double g = gamma_;
  const StarState star = solve(left, right);
  const double cl = std::sqrt(g * left.p / left.rho);
  const double cr = std::sqrt(g * right.p / right.rho);

  if (s <= star.u) {
    // Left of the contact.
    const PrimState& w = left;
    if (star.p > w.p) {  // left shock
      const double ps = star.p / w.p;
      const double ss =
          w.u - cl * std::sqrt((g + 1.0) / (2.0 * g) * ps +
                               (g - 1.0) / (2.0 * g));
      if (s < ss) return {w.rho, w.u, w.p};
      const double rho_star =
          w.rho * (ps + (g - 1.0) / (g + 1.0)) /
          ((g - 1.0) / (g + 1.0) * ps + 1.0);
      return {rho_star, star.u, star.p};
    }
    // left rarefaction
    const double sh = w.u - cl;
    const double c_star = cl * std::pow(star.p / w.p, (g - 1.0) / (2.0 * g));
    const double st = star.u - c_star;
    if (s < sh) return {w.rho, w.u, w.p};
    if (s > st) {
      const double rho_star = w.rho * std::pow(star.p / w.p, 1.0 / g);
      return {rho_star, star.u, star.p};
    }
    // inside the fan
    const double u = 2.0 / (g + 1.0) * (cl + 0.5 * (g - 1.0) * w.u + s);
    const double c = 2.0 / (g + 1.0) * (cl + 0.5 * (g - 1.0) * (w.u - s));
    const double rho = w.rho * std::pow(c / cl, 2.0 / (g - 1.0));
    const double p = w.p * std::pow(c / cl, 2.0 * g / (g - 1.0));
    return {rho, u, p};
  }

  // Right of the contact (mirror).
  const PrimState& w = right;
  if (star.p > w.p) {  // right shock
    const double ps = star.p / w.p;
    const double ss = w.u + cr * std::sqrt((g + 1.0) / (2.0 * g) * ps +
                                           (g - 1.0) / (2.0 * g));
    if (s > ss) return {w.rho, w.u, w.p};
    const double rho_star = w.rho * (ps + (g - 1.0) / (g + 1.0)) /
                            ((g - 1.0) / (g + 1.0) * ps + 1.0);
    return {rho_star, star.u, star.p};
  }
  const double sh = w.u + cr;
  const double c_star = cr * std::pow(star.p / w.p, (g - 1.0) / (2.0 * g));
  const double st = star.u + c_star;
  if (s > sh) return {w.rho, w.u, w.p};
  if (s < st) {
    const double rho_star = w.rho * std::pow(star.p / w.p, 1.0 / g);
    return {rho_star, star.u, star.p};
  }
  const double u = 2.0 / (g + 1.0) * (-cr + 0.5 * (g - 1.0) * w.u + s);
  const double c = 2.0 / (g + 1.0) * (cr - 0.5 * (g - 1.0) * (w.u - s));
  const double rho = w.rho * std::pow(c / cr, 2.0 / (g - 1.0));
  const double p = w.p * std::pow(c / cr, 2.0 * g / (g - 1.0));
  return {rho, u, p};
}

}  // namespace fhp::hydro
