#include "par/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/runtime_params.hpp"
#include "support/trace.hpp"

namespace fhp::par {

namespace {

int clamp_lanes(int n) {
  if (n < 1) return 1;
  if (n > kMaxLanes) return kMaxLanes;
  return n;
}

/// Configured process lane count; -1 means "not yet resolved from
/// environment".
std::atomic<int> g_threads{-1};

int resolved_threads() {
  int current = g_threads.load(std::memory_order_acquire);
  if (current > 0) return current;
  const int from_env = threads_from_environment(1);
  int expected = -1;
  if (g_threads.compare_exchange_strong(expected, from_env,
                                        std::memory_order_acq_rel)) {
    return from_env;
  }
  return expected;
}

/// Pooled-region participation depth of the calling thread. Incremented
/// on every lane (caller and workers) for the duration of its chunk;
/// region_active() reads it. Thread-local so that one runtime draining
/// telemetry is not confused with another runtime being mid-region.
thread_local constinit int t_region_depth = 0;

/// Applies an arena's LaneEnv to the calling thread: trace-sink binding
/// and log tag. No-op (and no TLS writes beyond the optionals' flags)
/// when env is null or empty. Does not allocate — TaskGraph's scheduler
/// region runs under FHP_NO_ALLOC.
class EnvBinding {
 public:
  explicit EnvBinding(const LaneEnv* env) {
    if (env == nullptr) return;
    if (env->bind_trace) sink_.emplace(env->trace_sink);
    if (env->log_tag != nullptr) tag_.emplace(env->log_tag);
  }
  EnvBinding(const EnvBinding&) = delete;
  EnvBinding& operator=(const EnvBinding&) = delete;

 private:
  std::optional<trace::SinkBinding> sink_;
  std::optional<LogTagScope> tag_;
};

/// Full per-lane region scope: the env binding plus the thread-local
/// region-participation mark. Constructed around run_chunk on every
/// participating thread of a pooled region (serial paths apply only the
/// EnvBinding — with one lane there is no quiescence hazard to flag).
class LaneBinding {
 public:
  explicit LaneBinding(const LaneEnv* env) : env_(env) { ++t_region_depth; }
  ~LaneBinding() { --t_region_depth; }
  LaneBinding(const LaneBinding&) = delete;
  LaneBinding& operator=(const LaneBinding&) = delete;

 private:
  EnvBinding env_;
};

/// RAII claim on an arena's single-region slot. Modeled as acquiring the
/// support-layer region capability (support/lane.hpp): while a guard is
/// alive the arena's lanes hold the per-lane writer role, so the
/// thread-safety analysis rejects a nested parallel_for (which is
/// FHP_EXCLUDES_REGION) at compile time; the runtime exchange() below
/// stays as the defense against unannotated callers. The flag is
/// per-arena, so two arenas (two runtimes) may be mid-region at once.
class FHP_SCOPED_CAPABILITY RegionGuard {
 public:
  explicit RegionGuard(std::atomic<bool>& active)
      FHP_ACQUIRE(::fhp::region_cap)
      : active_(active) {
    FHP_REQUIRE(!active_.exchange(true, std::memory_order_acquire),
                "parallel_for: regions on one arena must not be nested or "
                "issued concurrently from two threads");
  }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
  ~RegionGuard() FHP_RELEASE() {
    active_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool>& active_;
};

}  // namespace

namespace detail {

/// Persistent worker pool. Workers sleep on a condition variable between
/// regions; a region is published as a monotonically increasing
/// generation number plus a task body, and completion is counted back
/// under the same mutex. std::mutex (not fhp::Mutex) because
/// std::condition_variable requires it; the lock discipline here is
/// local to this file. Lifetime is managed by shared_ptr leases handed
/// out by ExecArena::acquire_pool(): a region in flight keeps its pool
/// alive even if the owning arena is reconfigured underneath it, and the
/// workers join when the last lease drops.
class ThreadPool {
 public:
  explicit ThreadPool(int lanes) : lanes_(lanes) {
    workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
    for (int lane = 1; lane < lanes_; ++lane) {
      workers_.emplace_back([this, lane] { worker_main(lane); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  [[nodiscard]] int lanes() const { return lanes_; }

  /// Runs `fn(lane, i)` for i in [0, n), lane l covering the static
  /// chunk [l*n/L, (l+1)*n/L), with \p env applied on every lane for the
  /// duration of its chunk. Rethrows the first captured exception — only
  /// after every lane has stopped, even when the throwing lane is the
  /// caller itself: workers may still be inside `fn`, which lives in the
  /// caller's frame, so unwinding before the handshake would be a
  /// use-after-free (and would leave pending_ poisoned for the next
  /// region).
  void run(std::size_t n, const std::function<void(int, std::size_t)>& fn,
           const LaneEnv* env) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_fn_ = &fn;
      task_n_ = n;
      task_env_ = env;
      pending_ = lanes_ - 1;
      first_error_ = nullptr;
      ++generation_;
    }
    start_cv_.notify_all();

    try {
      LaneBinding binding(env);
      run_chunk(0, n, fn);  // the caller participates as lane 0
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    task_fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  void worker_main(int lane) {
    ::fhp::detail::bind_lane(lane);
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int, std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      const LaneEnv* env = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = task_fn_;
        n = task_n_;
        env = task_env_;
      }
      try {
        LaneBinding binding(env);
        run_chunk(lane, n, *fn);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
      }
      done_cv_.notify_one();
    }
  }

  void run_chunk(int lane, std::size_t n,
                 const std::function<void(int, std::size_t)>& fn) const {
    const auto lanes = static_cast<std::size_t>(lanes_);
    const auto l = static_cast<std::size_t>(lane);
    const std::size_t begin = l * n / lanes;
    const std::size_t end = (l + 1) * n / lanes;
    for (std::size_t i = begin; i < end; ++i) fn(lane, i);
  }

  const int lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, std::size_t)>* task_fn_ = nullptr;
  std::size_t task_n_ = 0;
  const LaneEnv* task_env_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace detail

int threads_from_environment(int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once before the pool
  // spins up its first worker; nothing in-process calls setenv.
  const char* raw = std::getenv(kThreadsEnvVar);
  if (raw == nullptr || *raw == '\0') return clamp_lanes(fallback);
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 1) {
    throw ConfigError(std::string(kThreadsEnvVar) + "='" + raw +
                      "': expected a positive integer thread count");
  }
  return clamp_lanes(static_cast<int>(value));
}

int threads() { return resolved_threads(); }

void set_threads(int n) {
  g_threads.store(clamp_lanes(n), std::memory_order_release);
}

bool region_active() noexcept { return t_region_depth > 0; }

void declare_runtime_params(RuntimeParams& params) {
  params.declare_int("par.threads", threads(),
                     "worker lanes for block-parallel sweeps "
                     "(FLASHHP_THREADS)");
}

void apply_runtime_params(const RuntimeParams& params) {
  set_threads(static_cast<int>(params.get_int("par.threads")));
}

ExecArena::ExecArena(int lanes)
    : lanes_(lanes == 0 ? resolved_threads() : clamp_lanes(lanes)) {}

ExecArena::ExecArena(ProcessTag)
    : track_process_threads_(true), lanes_(1) {}

ExecArena::~ExecArena() = default;

int ExecArena::lanes() const noexcept {
  if (track_process_threads_) return resolved_threads();
  return lanes_.load(std::memory_order_acquire);
}

void ExecArena::set_lanes(int n) {
  const int lanes = clamp_lanes(n);
  if (track_process_threads_) {
    set_threads(lanes);
  } else {
    lanes_.store(lanes, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(lease_mutex_);
  // Drop our reference to a stale pool now; a region in flight keeps its
  // own lease, so the workers join only when that region finishes.
  if (pool_ && pool_->lanes() != lanes) pool_.reset();
}

void ExecArena::set_lane_env(const LaneEnv* env) noexcept {
  env_.store(env, std::memory_order_release);
}

const LaneEnv* ExecArena::lane_env() const noexcept {
  return env_.load(std::memory_order_acquire);
}

std::shared_ptr<detail::ThreadPool> ExecArena::acquire_pool() {
  const int lanes = this->lanes();
  if (lanes <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(lease_mutex_);
  if (!pool_ || pool_->lanes() != lanes) {
    pool_.reset();  // join the old workers (if unleased) before respawning
    pool_ = std::make_shared<detail::ThreadPool>(lanes);
  }
  return pool_;
}

void ExecArena::parallel_for(
    std::size_t n, const std::function<void(int lane, std::size_t i)>& fn) {
  const std::shared_ptr<detail::ThreadPool> lease = acquire_pool();
  const LaneEnv* env = env_.load(std::memory_order_acquire);
  if (lease == nullptr || n < 2) {
    EnvBinding binding(env);
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  RegionGuard guard(active_);
  lease->run(n, fn, env);
}

void ExecArena::parallel_for_blocks(
    std::span<const int> blocks,
    const std::function<void(int lane, int block)>& fn) {
  parallel_for(blocks.size(),
               [&](int lane, std::size_t i) { fn(lane, blocks[i]); });
}

void ExecArena::run_region(const std::function<void(int lane)>& body) {
  const std::shared_ptr<detail::ThreadPool> lease = acquire_pool();
  const LaneEnv* env = env_.load(std::memory_order_acquire);
  if (lease == nullptr) {
    EnvBinding binding(env);
    body(0);
    return;
  }
  RegionGuard guard(active_);
  // With n == lanes the static chunk of lane l is exactly {l}, so the
  // pool's run() degenerates to "each lane executes the body once".
  const int lanes = lease->lanes();
  lease->run(static_cast<std::size_t>(lanes),
             [&body](int lane, std::size_t /*i*/) { body(lane); }, env);
}

ExecArena& process_arena() {
  static ExecArena arena{ExecArena::ProcessTag{}};
  return arena;
}

void parallel_for(std::size_t n,
                  const std::function<void(int lane, std::size_t i)>& fn) {
  process_arena().parallel_for(n, fn);
}

void parallel_for_blocks(std::span<const int> blocks,
                         const std::function<void(int lane, int block)>& fn) {
  process_arena().parallel_for_blocks(blocks, fn);
}

namespace detail {

void run_region(const std::function<void(int lane)>& body) {
  process_arena().run_region(body);
}

}  // namespace detail

}  // namespace fhp::par
