#include "par/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/runtime_params.hpp"

namespace fhp::par {
namespace {

/// Persistent worker pool. Workers sleep on a condition variable between
/// regions; a region is published as a monotonically increasing
/// generation number plus a task body, and completion is counted back
/// under the same mutex. std::mutex (not fhp::Mutex) because
/// std::condition_variable requires it; the lock discipline here is
/// local to this file.
class ThreadPool {
 public:
  explicit ThreadPool(int lanes) : lanes_(lanes) {
    workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
    for (int lane = 1; lane < lanes_; ++lane) {
      workers_.emplace_back([this, lane] { worker_main(lane); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  [[nodiscard]] int lanes() const { return lanes_; }

  /// Runs `fn(lane, i)` for i in [0, n), lane l covering the static
  /// chunk [l*n/L, (l+1)*n/L). Rethrows the first captured exception —
  /// only after every lane has stopped, even when the throwing lane is
  /// the caller itself: workers may still be inside `fn`, which lives in
  /// the caller's frame, so unwinding before the handshake would be a
  /// use-after-free (and would leave pending_ poisoned for the next
  /// region).
  void run(std::size_t n, const std::function<void(int, std::size_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_fn_ = &fn;
      task_n_ = n;
      pending_ = lanes_ - 1;
      first_error_ = nullptr;
      ++generation_;
    }
    start_cv_.notify_all();

    try {
      run_chunk(0, n, fn);  // the caller participates as lane 0
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    task_fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  void worker_main(int lane) {
    ::fhp::detail::bind_lane(lane);
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int, std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = task_fn_;
        n = task_n_;
      }
      try {
        run_chunk(lane, n, *fn);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
      }
      done_cv_.notify_one();
    }
  }

  void run_chunk(int lane, std::size_t n,
                 const std::function<void(int, std::size_t)>& fn) const {
    const auto lanes = static_cast<std::size_t>(lanes_);
    const auto l = static_cast<std::size_t>(lane);
    const std::size_t begin = l * n / lanes;
    const std::size_t end = (l + 1) * n / lanes;
    for (std::size_t i = begin; i < end; ++i) fn(lane, i);
  }

  const int lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, std::size_t)>* task_fn_ = nullptr;
  std::size_t task_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Set while a pooled region is in flight. Parallel regions may only be
/// issued from one thread at a time (the single driver thread) and must
/// not be nested; this turns both contract violations into a clean
/// ConfigError instead of a corrupted pool handshake.
std::atomic<bool> g_region_active{false};

/// RAII claim on the single-region slot. Modeled as acquiring the
/// support-layer region capability (support/lane.hpp): while a guard is
/// alive the pool's lanes hold the per-lane writer role, so the
/// thread-safety analysis rejects a nested parallel_for (which is
/// FHP_EXCLUDES_REGION) at compile time; the runtime exchange() below
/// stays as the defense against unannotated callers.
class FHP_SCOPED_CAPABILITY RegionGuard {
 public:
  RegionGuard() FHP_ACQUIRE(::fhp::region_cap) {
    FHP_REQUIRE(!g_region_active.exchange(true, std::memory_order_acquire),
                "parallel_for: regions must not be nested or issued "
                "concurrently from two threads");
  }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
  ~RegionGuard() FHP_RELEASE() {
    g_region_active.store(false, std::memory_order_release);
  }
};

/// Configured lane count; -1 means "not yet resolved from environment".
std::atomic<int> g_threads{-1};

/// The lazily built pool. Guarded by g_pool_mutex for the (setup-time)
/// rebuild; steady-state regions only read the pointer.
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // NOLINT(cert-err58-cpp)

int clamp_lanes(int n) {
  if (n < 1) return 1;
  if (n > kMaxLanes) return kMaxLanes;
  return n;
}

int resolved_threads() {
  int current = g_threads.load(std::memory_order_acquire);
  if (current > 0) return current;
  const int from_env = threads_from_environment(1);
  int expected = -1;
  if (g_threads.compare_exchange_strong(expected, from_env,
                                        std::memory_order_acq_rel)) {
    return from_env;
  }
  return expected;
}

/// Returns the pool sized for the current thread count, rebuilding it if
/// the count changed since the last region. Null when serial.
ThreadPool* pool_for(int lanes) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (lanes <= 1) {
    g_pool.reset();
    return nullptr;
  }
  if (!g_pool || g_pool->lanes() != lanes) {
    g_pool.reset();  // join the old workers before spawning new ones
    g_pool = std::make_unique<ThreadPool>(lanes);
  }
  return g_pool.get();
}

}  // namespace

int threads_from_environment(int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once before the pool
  // spins up its first worker; nothing in-process calls setenv.
  const char* raw = std::getenv(kThreadsEnvVar);
  if (raw == nullptr || *raw == '\0') return clamp_lanes(fallback);
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 1) {
    throw ConfigError(std::string(kThreadsEnvVar) + "='" + raw +
                      "': expected a positive integer thread count");
  }
  return clamp_lanes(static_cast<int>(value));
}

int threads() { return resolved_threads(); }

void set_threads(int n) {
  g_threads.store(clamp_lanes(n), std::memory_order_release);
}

bool region_active() noexcept {
  return g_region_active.load(std::memory_order_acquire);
}

void declare_runtime_params(RuntimeParams& params) {
  params.declare_int("par.threads", threads(),
                     "worker lanes for block-parallel sweeps "
                     "(FLASHHP_THREADS)");
}

void apply_runtime_params(const RuntimeParams& params) {
  set_threads(static_cast<int>(params.get_int("par.threads")));
}

void parallel_for(std::size_t n,
                  const std::function<void(int lane, std::size_t i)>& fn) {
  const int lanes = resolved_threads();
  ThreadPool* pool = pool_for(lanes);
  if (pool == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  RegionGuard guard;
  pool->run(n, fn);
}

void parallel_for_blocks(std::span<const int> blocks,
                         const std::function<void(int lane, int block)>& fn) {
  parallel_for(blocks.size(), [&](int lane, std::size_t i) {
    fn(lane, blocks[i]);
  });
}

namespace detail {

void run_region(const std::function<void(int lane)>& body) {
  const int lanes = resolved_threads();
  ThreadPool* pool = pool_for(lanes);
  if (pool == nullptr) {
    body(0);
    return;
  }
  RegionGuard guard;
  // With n == lanes the static chunk of lane l is exactly {l}, so the
  // pool's run() degenerates to "each lane executes the body once".
  pool->run(static_cast<std::size_t>(lanes),
            [&body](int lane, std::size_t /*i*/) { body(lane); });
}

}  // namespace detail

}  // namespace fhp::par
