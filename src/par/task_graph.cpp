#include "par/task_graph.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "par/parallel.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace fhp::par {

// ---------------------------------------------------------------- deque

FHP_NO_ALLOC void TaskGraph::Deque::push(TaskId t) noexcept {
  const std::int64_t b = bottom.load(std::memory_order_seq_cst);
  // Capacity is the total task count and every task is enqueued exactly
  // once per run, so b never reaches the slot array's end.
  slots[static_cast<std::size_t>(b)].store(t, std::memory_order_seq_cst);
  bottom.store(b + 1, std::memory_order_seq_cst);
}

FHP_NO_ALLOC TaskGraph::TaskId TaskGraph::Deque::take() noexcept {
  std::int64_t b = bottom.load(std::memory_order_seq_cst) - 1;
  bottom.store(b, std::memory_order_seq_cst);
  std::int64_t t = top.load(std::memory_order_seq_cst);
  if (t > b) {  // empty: undo the reservation
    bottom.store(b + 1, std::memory_order_seq_cst);
    return -1;
  }
  const TaskId task = slots[static_cast<std::size_t>(b)].load(
      std::memory_order_seq_cst);
  if (t < b) return task;  // more than one element: no race possible
  // Last element: win or lose it against a concurrent thief via top.
  const bool won =
      top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst);
  bottom.store(b + 1, std::memory_order_seq_cst);
  return won ? task : -1;
}

FHP_NO_ALLOC TaskGraph::TaskId TaskGraph::Deque::steal() noexcept {
  std::int64_t t = top.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom.load(std::memory_order_seq_cst);
  if (t >= b) return -1;
  const TaskId task = slots[static_cast<std::size_t>(t)].load(
      std::memory_order_seq_cst);
  if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
    return -1;  // lost the race; the caller moves on to the next victim
  }
  return task;
}

// ------------------------------------------------------------- building

void TaskGraph::require_building(const char* what) const {
  if (frozen_) {
    throw ConfigError(std::string("TaskGraph::") + what +
                      ": graph is frozen; clear() before rebuilding");
  }
}

TaskGraph::TaskId TaskGraph::add_task(const char* name,
                                      std::function<void(int)> body) {
  require_building("add_task");
  FHP_REQUIRE(name != nullptr && *name != '\0',
              "task name must be a non-empty string literal");
  nodes_.push_back(Node{name, std::move(body), {}, 0});
  return static_cast<TaskId>(nodes_.size()) - 1;
}

void TaskGraph::add_edge(TaskId before, TaskId after) {
  require_building("add_edge");
  const auto n = static_cast<TaskId>(nodes_.size());
  FHP_REQUIRE(before >= 0 && before < n && after >= 0 && after < n,
              "add_edge: task id out of range");
  if (before == after) {
    throw ConfigError(std::string("TaskGraph::add_edge: self-dependency on "
                                  "task '") +
                      nodes_[static_cast<std::size_t>(before)].name + "'");
  }
  auto& succ = nodes_[static_cast<std::size_t>(before)].successors;
  if (std::find(succ.begin(), succ.end(), after) != succ.end()) {
    throw ConfigError(std::string("TaskGraph::add_edge: duplicate edge '") +
                      nodes_[static_cast<std::size_t>(before)].name +
                      "' -> '" +
                      nodes_[static_cast<std::size_t>(after)].name + "'");
  }
  succ.push_back(after);
  ++nodes_[static_cast<std::size_t>(after)].indegree;
  ++edge_count_;
}

void TaskGraph::freeze() {
  require_building("freeze");
  const auto n = nodes_.size();

  // Kahn's algorithm: a complete topological order proves acyclicity and
  // doubles as the deterministic serial execution order.
  topo_.clear();
  topo_.reserve(n);
  std::vector<int> unmet(n);
  for (std::size_t i = 0; i < n; ++i) unmet[i] = nodes_[i].indegree;
  for (std::size_t i = 0; i < n; ++i) {
    if (unmet[i] == 0) topo_.push_back(static_cast<TaskId>(i));
  }
  for (std::size_t head = 0; head < topo_.size(); ++head) {
    for (const TaskId s : nodes_[static_cast<std::size_t>(topo_[head])]
                              .successors) {
      if (--unmet[static_cast<std::size_t>(s)] == 0) topo_.push_back(s);
    }
  }
  if (topo_.size() != n) {
    std::string cycle;
    int listed = 0;
    for (std::size_t i = 0; i < n && listed < 4; ++i) {
      if (unmet[i] > 0) {
        if (listed++ > 0) cycle += ", ";
        cycle += nodes_[i].name;
      }
    }
    throw ConfigError("TaskGraph::freeze: dependency cycle through {" +
                      cycle + "}");
  }

  lanes_ = arena().lanes();
  remaining_ = std::vector<std::atomic<int>>(n);
  deques_ = std::vector<Deque>(static_cast<std::size_t>(lanes_));
  for (auto& d : deques_) {
    d.slots = std::make_unique<std::atomic<TaskId>[]>(std::max<std::size_t>(
        n, 1));
  }
  stats_ = std::vector<LaneStats>(static_cast<std::size_t>(lanes_));
  ready_scratch_.assign(n, -1);
  frozen_ = true;
}

void TaskGraph::clear() {
  nodes_.clear();
  topo_.clear();
  remaining_ = std::vector<std::atomic<int>>();
  deques_ = std::vector<Deque>();
  stats_ = std::vector<LaneStats>();
  ready_scratch_.clear();
  edge_count_ = 0;
  lanes_ = 0;
  frozen_ = false;
  first_error_ = nullptr;
}

// ------------------------------------------------------------- running

void TaskGraph::reset_run_state() noexcept {
  const auto n = nodes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    remaining_[i].store(nodes_[i].indegree, std::memory_order_relaxed);
  }
  for (auto& d : deques_) {
    d.top.store(0, std::memory_order_relaxed);
    d.bottom.store(0, std::memory_order_relaxed);
  }
  for (auto& s : stats_) s = LaneStats{};
  unfinished_.store(static_cast<std::int64_t>(n),
                    std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
}

FHP_NO_ALLOC void TaskGraph::execute_task(TaskId t, int lane) noexcept {
  Node& node = nodes_[static_cast<std::size_t>(t)];
  if (!abort_.load(std::memory_order_acquire)) {
    try {
      trace::SpanScope span(node.name);
      node.body(lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      abort_.store(true, std::memory_order_release);
    }
  }
  // Propagate completion even when aborting: successors must still reach
  // zero so every lane's scheduler loop terminates.
  for (const TaskId s : node.successors) {
    if (remaining_[static_cast<std::size_t>(s)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      deques_[static_cast<std::size_t>(lane)].push(s);
    }
  }
  ++stats_[static_cast<std::size_t>(lane)].executed;
  unfinished_.fetch_sub(1, std::memory_order_acq_rel);
}

void TaskGraph::scheduler_loop(int lane) noexcept {
  Deque& own = deques_[static_cast<std::size_t>(lane)];
  LaneStats& stats = stats_[static_cast<std::size_t>(lane)];
  while (unfinished_.load(std::memory_order_acquire) > 0) {
    TaskId t = own.take();
    if (t < 0) {
      // Deterministic victim order (round robin from the next lane); the
      // *outcome* of each probe is timing-dependent, which is exactly why
      // these numbers stay out of the bit-identical counter contract.
      for (int k = 1; k < lanes_ && t < 0; ++k) {
        ++stats.steal_attempts;
        t = deques_[static_cast<std::size_t>((lane + k) % lanes_)].steal();
      }
      if (t >= 0) ++stats.steals;
    }
    if (t < 0) {
      ++stats.yields;
      std::this_thread::yield();
      continue;
    }
    execute_task(t, lane);
  }
}

void TaskGraph::finish_run() {
  FHP_CHECK(unfinished_.load(std::memory_order_acquire) == 0,
            "TaskGraph::run ended with unfinished tasks");
  if (first_error_) std::rethrow_exception(first_error_);
}

ExecArena& TaskGraph::arena() const noexcept {
  return arena_ != nullptr ? *arena_ : process_arena();
}

void TaskGraph::run() {
  if (!frozen_) throw ConfigError("TaskGraph::run: freeze() the graph first");
  if (nodes_.empty()) return;
  ExecArena& arena = this->arena();
  // Lane-count changes between freeze and run are a documented setup-time
  // event: re-size the per-lane state once, here, so run() itself stays
  // allocation-free in the steady state.
  if (lanes_ != arena.lanes()) {
    lanes_ = arena.lanes();
    deques_ = std::vector<Deque>(static_cast<std::size_t>(lanes_));
    for (auto& d : deques_) {
      d.slots = std::make_unique<std::atomic<TaskId>[]>(nodes_.size());
    }
    stats_ = std::vector<LaneStats>(static_cast<std::size_t>(lanes_));
  }
  reset_run_state();
  // Seed the roots round-robin across the lane deques (single-threaded
  // here; the pool handshake inside run_region publishes these writes).
  int next_lane = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].indegree == 0) {
      deques_[static_cast<std::size_t>(next_lane)].push(
          static_cast<TaskId>(i));
      next_lane = (next_lane + 1) % lanes_;
    }
  }
  arena.run_region([this](int lane) { scheduler_loop(lane); });
  finish_run();
}

void TaskGraph::run_serial(Schedule mode, std::uint64_t seed) {
  if (!frozen_) {
    throw ConfigError("TaskGraph::run_serial: freeze() the graph first");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    remaining_[i].store(nodes_[i].indegree, std::memory_order_relaxed);
  }
  // ready_scratch_ is used as a queue (kFifo, head advances) or a stack /
  // grab bag (kReverse / kRandom, tail shrinks): both stay within the
  // freeze-time capacity because each task is appended exactly once.
  std::size_t head = 0;
  std::size_t tail = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].indegree == 0) {
      ready_scratch_[tail++] = static_cast<TaskId>(i);
    }
  }
  std::uint64_t state = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
  std::size_t executed = 0;
  while (head < tail) {
    std::size_t pick;
    switch (mode) {
      case Schedule::kFifo:
        pick = head;
        break;
      case Schedule::kReverse:
        pick = tail - 1;
        break;
      default: {  // kRandom: seeded xorshift64
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        pick = head + static_cast<std::size_t>(state % (tail - head));
        break;
      }
    }
    const TaskId t = ready_scratch_[pick];
    if (mode == Schedule::kFifo) {
      ++head;
    } else {
      ready_scratch_[pick] = ready_scratch_[tail - 1];
      --tail;
    }
    Node& node = nodes_[static_cast<std::size_t>(t)];
    {
      trace::SpanScope span(node.name);
      node.body(0);
    }
    ++executed;
    for (const TaskId s : node.successors) {
      if (remaining_[static_cast<std::size_t>(s)].fetch_sub(
              1, std::memory_order_relaxed) == 1) {
        ready_scratch_[tail++] = s;
      }
    }
  }
  FHP_CHECK(executed == nodes_.size(),
            "TaskGraph::run_serial left tasks unexecuted");
}

TaskGraph::Stats TaskGraph::last_stats() const noexcept {
  Stats total;
  for (const LaneStats& s : stats_) {
    total.executed += s.executed;
    total.steals += s.steals;
    total.steal_attempts += s.steal_attempts;
    total.yields += s.yields;
  }
  return total;
}

}  // namespace fhp::par
