/// \file parallel.hpp
/// \brief Block-sweep worker pool: `fhp::par::parallel_for_blocks`.
///
/// The paper's workloads are leaf-block sweeps over `unk` in which each
/// block touches only its own storage (interior plus pre-filled guard
/// cells), so the natural unit of parallelism is the block. This module
/// provides a small persistent worker pool with two execution models on
/// top of it:
///
///   - `parallel_for` / `parallel_for_blocks`: one barrier-synchronized
///     stage with *static chunking* — lane `i` of `L` processes the
///     contiguous index range `[i*n/L, (i+1)*n/L)`. Static chunking is
///     deliberate: the partition depends only on `(n, L)`, never on
///     timing, which is one half of the bit-identical-across-thread-counts
///     guarantee (the other half is that parallelized loops write only
///     per-block data; see DESIGN.md "Threading model"). These survive as
///     thin shims over the degenerate single-stage dependency graph —
///     every task ready at entry, no steals possible between chunks — so
///     existing call sites keep their exact lane-to-index map.
///   - `par::TaskGraph` (task_graph.hpp): per-block tasks with explicit
///     dependencies, executed by the same lanes with work-stealing
///     deques. This is what the fused driver timestep uses to overlap
///     guard-fill, sweeps, flux fixups and EOS updates.
///
/// Thread count resolution order (highest wins):
///   1. `set_threads()` / the `par.threads` runtime parameter,
///   2. the `FLASHHP_THREADS` environment variable,
///   3. the serial default of 1.
///
/// With `threads() == 1` every entry point degenerates to a plain serial
/// loop on the calling thread — no pool is created, no locks are taken —
/// so single-threaded builds pay nothing for this module's existence.
///
/// The pool is configured at setup time: calling `set_threads()` while a
/// `parallel_for` is in flight on another thread is undefined. Within a
/// parallel region the caller participates as lane 0 and workers are
/// lanes `1..L-1`; `lane()` returns the executing thread's lane so
/// per-lane scratch (pencil buffers, EOS rows, counter shards) can be
/// indexed without synchronization.

#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "support/lane.hpp"

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::par {

/// Environment variable consulted by `threads_from_environment`.
inline constexpr const char* kThreadsEnvVar = "FLASHHP_THREADS";

/// Hard ceiling on the number of lanes (and thus counter shards).
/// Aliases the support-layer constant so bottom-layer consumers (counter
/// shards, span rings) need not depend on this module.
inline constexpr int kMaxLanes = ::fhp::kMaxLanes;

/// Parses `FLASHHP_THREADS`; returns `fallback` when unset. Throws
/// `fhp::ConfigError` when set to a non-positive or non-numeric value.
/// Values above `kMaxLanes` are clamped.
[[nodiscard]] int threads_from_environment(int fallback = 1);

/// The configured lane count (>= 1). Initialized lazily from
/// `FLASHHP_THREADS` on first use unless `set_threads` ran earlier.
[[nodiscard]] int threads();

/// Sets the lane count for subsequent parallel regions. Clamped to
/// `[1, kMaxLanes]`. Setup-time only: must not race a parallel region.
void set_threads(int n);

/// Lane of the calling thread: 0 for the caller (and for all serial
/// code), `1..threads()-1` inside pool workers during a region.
/// Forwarding alias for `fhp::lane_id()` (support/lane.hpp).
[[nodiscard]] inline int lane() noexcept { return ::fhp::lane_id(); }

/// True while a pooled parallel region is in flight. Read-side telemetry
/// helpers assert on this: per-lane rings and counter shards may only be
/// drained when the lanes are quiescent (the pool handshake is the
/// happens-before edge that makes those reads safe).
[[nodiscard]] bool region_active() noexcept;

/// Registers the `par.threads` runtime parameter (default: current
/// `threads()` resolution, i.e. env-aware).
void declare_runtime_params(RuntimeParams& params);

/// Applies `par.threads` from `params` via `set_threads`.
void apply_runtime_params(const RuntimeParams& params);

/// Runs `fn(lane, i)` for every `i` in `[0, n)`, statically chunked
/// across `threads()` lanes. Blocks until all lanes finish. The first
/// exception thrown by any lane — including lane 0, the caller — is
/// rethrown on the caller after every lane has stopped. Regions share
/// one global pool, so they must not be nested and may only be issued
/// from one thread at a time (the single driver thread); violations
/// throw `fhp::ConfigError` instead of corrupting the pool handshake —
/// and FHP_EXCLUDES_REGION makes the nested case a `-Wthread-safety`
/// compile error first.
void parallel_for(std::size_t n,
                  const std::function<void(int lane, std::size_t i)>& fn)
    FHP_EXCLUDES_REGION;

/// Runs `fn(lane, block)` for every block id in `blocks` (typically the
/// mesh's leaf list), statically chunked across `threads()` lanes.
void parallel_for_blocks(std::span<const int> blocks,
                         const std::function<void(int lane, int block)>& fn)
    FHP_EXCLUDES_REGION;

namespace detail {

/// Runs `body(lane)` exactly once on every lane (0..threads()-1)
/// concurrently, inside one pooled parallel region. This is the substrate
/// both execution models share: `parallel_for` hands each lane its static
/// chunk, and `TaskGraph::run` hands each lane its scheduler loop. At
/// `threads() == 1` the body runs once, serially, on the caller — no pool,
/// no locks. The first exception thrown by any lane is rethrown on the
/// caller after every lane has stopped (same contract as parallel_for).
void run_region(const std::function<void(int lane)>& body)
    FHP_EXCLUDES_REGION;

}  // namespace detail

}  // namespace fhp::par
