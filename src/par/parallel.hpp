/// \file parallel.hpp
/// \brief Block-sweep worker pool: `fhp::par::ExecArena` and the
///        `parallel_for_blocks` family.
///
/// The paper's workloads are leaf-block sweeps over `unk` in which each
/// block touches only its own storage (interior plus pre-filled guard
/// cells), so the natural unit of parallelism is the block. This module
/// provides a small persistent worker pool with two execution models on
/// top of it:
///
///   - `parallel_for` / `parallel_for_blocks`: one barrier-synchronized
///     stage with *static chunking* — lane `i` of `L` processes the
///     contiguous index range `[i*n/L, (i+1)*n/L)`. Static chunking is
///     deliberate: the partition depends only on `(n, L)`, never on
///     timing, which is one half of the bit-identical-across-thread-counts
///     guarantee (the other half is that parallelized loops write only
///     per-block data; see DESIGN.md "Threading model"). These survive as
///     thin shims over the degenerate single-stage dependency graph —
///     every task ready at entry, no steals possible between chunks — so
///     existing call sites keep their exact lane-to-index map.
///   - `par::TaskGraph` (task_graph.hpp): per-block tasks with explicit
///     dependencies, executed by the same lanes with work-stealing
///     deques. This is what the fused driver timestep uses to overlap
///     guard-fill, sweeps, flux fixups and EOS updates.
///
/// Execution arenas. The pool, its region guard, and the lane-count
/// configuration are per-`ExecArena`, not per-process: each rt::Runtime
/// owns an arena, so two runtimes can run regions concurrently without
/// tripping each other's nested-region `ConfigError`. The legacy free
/// functions (`parallel_for`, `parallel_for_blocks`,
/// `detail::run_region`) are shims over the *process arena* — the one
/// arena whose lane count tracks `threads()` — and behave exactly as
/// they always did.
///
/// Thread count resolution order for the process arena (highest wins):
///   1. `set_threads()` / the `par.threads` runtime parameter,
///   2. the `FLASHHP_THREADS` environment variable,
///   3. the serial default of 1.
/// A private arena instead pins its lane count at construction (0 =
/// "resolve like the process arena, once, now") until `set_lanes()`.
///
/// With one lane every entry point degenerates to a plain serial loop on
/// the calling thread — no pool is created, no locks are taken — so
/// single-threaded builds pay nothing for this module's existence.
///
/// An arena is configured at setup time: calling `set_lanes()` while one
/// of its regions is in flight reconfigures *later* regions — the
/// in-flight region keeps a refcounted lease on its pool, so its workers
/// are never yanked mid-chunk (the old `pool_for()` replace-under-a-
/// reader hazard). Within a parallel region the caller participates as
/// lane 0 and workers are lanes `1..L-1`; `lane()` returns the executing
/// thread's lane so per-lane scratch (pencil buffers, EOS rows, counter
/// shards) can be indexed without synchronization.

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>

#include "support/lane.hpp"

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::trace {
class Sink;
}  // namespace fhp::trace

namespace fhp::par {

/// Environment variable consulted by `threads_from_environment`.
inline constexpr const char* kThreadsEnvVar = "FLASHHP_THREADS";

/// Hard ceiling on the number of lanes (and thus counter shards).
/// Aliases the support-layer constant so bottom-layer consumers (counter
/// shards, span rings) need not depend on this module.
inline constexpr int kMaxLanes = ::fhp::kMaxLanes;

/// Parses `FLASHHP_THREADS`; returns `fallback` when unset. Throws
/// `fhp::ConfigError` when set to a non-positive or non-numeric value.
/// Values above `kMaxLanes` are clamped.
[[nodiscard]] int threads_from_environment(int fallback = 1);

/// The process arena's configured lane count (>= 1). Initialized lazily
/// from `FLASHHP_THREADS` on first use unless `set_threads` ran earlier.
[[nodiscard]] int threads();

/// Sets the process arena's lane count for subsequent parallel regions.
/// Clamped to `[1, kMaxLanes]`. Setup-time only with respect to the
/// process arena's own regions; private arenas are unaffected.
void set_threads(int n);

/// Lane of the calling thread: 0 for the caller (and for all serial
/// code), `1..lanes-1` inside pool workers during a region.
/// Forwarding alias for `fhp::lane_id()` (support/lane.hpp).
[[nodiscard]] inline int lane() noexcept { return ::fhp::lane_id(); }

/// True while the *calling thread* is participating in a pooled parallel
/// region (any arena). Read-side telemetry helpers assert on this:
/// per-lane rings and counter shards may only be drained from a thread
/// that is outside the region whose lanes wrote them (the pool handshake
/// is the happens-before edge that makes those reads safe). Thread-local
/// by design — runtime A draining its telemetry must not be blinded by
/// runtime B being mid-region on another thread.
[[nodiscard]] bool region_active() noexcept;

/// Registers the `par.threads` runtime parameter (default: current
/// `threads()` resolution, i.e. env-aware).
void declare_runtime_params(RuntimeParams& params);

/// Applies `par.threads` from `params` via `set_threads`.
void apply_runtime_params(const RuntimeParams& params);

/// Per-lane ambient environment an arena applies on every participating
/// thread (caller lane 0 and each pool worker) for the duration of a
/// region. This is how an rt::Runtime's trace sink and log tag follow
/// its work onto pool lanes without any process-global install.
struct LaneEnv {
  /// Thread-locally bound as the trace sink while a region runs (only
  /// when `bind_trace`; a bound null masks the ambient sink).
  trace::Sink* trace_sink = nullptr;
  bool bind_trace = false;
  /// Non-null: FHP_LOG lines from region lanes carry this tag.
  const char* log_tag = nullptr;
};

namespace detail {
class ThreadPool;
}  // namespace detail

/// One execution arena: a lane pool lease plus its own single-region
/// guard. All entry points run `fn` with the same static chunking as the
/// free functions, so results are bit-identical for a given lane count
/// regardless of which arena runs them. Construction is cheap (the pool
/// itself spins up lazily at the first multi-lane region). Regions on
/// *one* arena must not be nested or issued concurrently from two
/// threads (ConfigError, and a `-Wthread-safety` error first); regions
/// on *different* arenas may run concurrently.
class ExecArena {
 public:
  /// \param lanes fixed lane count for this arena; 0 = resolve the
  ///        process thread-count order (set_threads / FLASHHP_THREADS /
  ///        1) once, now. Clamped to [1, kMaxLanes].
  explicit ExecArena(int lanes = 0);
  ~ExecArena();
  ExecArena(const ExecArena&) = delete;
  ExecArena& operator=(const ExecArena&) = delete;

  /// Lane count the next region will use. (The process arena re-resolves
  /// `threads()` here, which is what keeps the legacy free functions
  /// responsive to `set_threads`.)
  [[nodiscard]] int lanes() const noexcept;

  /// Reconfigures the lane count for subsequent regions. A region in
  /// flight on another thread keeps its leased pool until it finishes;
  /// its workers join when the last lease drops. On the process arena
  /// this forwards to `set_threads`.
  void set_lanes(int n);

  /// Installs the per-lane environment applied by every subsequent
  /// region (null = none). Setup-time: the pointee must outlive its use;
  /// rt::Runtime points this at a member of itself.
  void set_lane_env(const LaneEnv* env) noexcept;
  [[nodiscard]] const LaneEnv* lane_env() const noexcept;

  /// Runs `fn(lane, i)` for every `i` in `[0, n)`, statically chunked
  /// across `lanes()` lanes. Blocks until all lanes finish. The first
  /// exception thrown by any lane — including lane 0, the caller — is
  /// rethrown on the caller after every lane has stopped.
  void parallel_for(std::size_t n,
                    const std::function<void(int lane, std::size_t i)>& fn)
      FHP_EXCLUDES_REGION;

  /// Runs `fn(lane, block)` for every block id in `blocks` (typically
  /// the mesh's leaf list), statically chunked across `lanes()` lanes.
  void parallel_for_blocks(std::span<const int> blocks,
                           const std::function<void(int lane, int block)>& fn)
      FHP_EXCLUDES_REGION;

  /// Runs `body(lane)` exactly once on every lane (0..lanes()-1)
  /// concurrently, inside one pooled parallel region. This is the
  /// substrate both execution models share: `parallel_for` hands each
  /// lane its static chunk, and `TaskGraph::run` hands each lane its
  /// scheduler loop. With one lane the body runs once, serially, on the
  /// caller — no pool, no locks. Same exception contract as
  /// parallel_for.
  void run_region(const std::function<void(int lane)>& body)
      FHP_EXCLUDES_REGION;

 private:
  struct ProcessTag {};
  explicit ExecArena(ProcessTag);
  friend ExecArena& process_arena();

  /// Leases the pool sized for the current lane count, rebuilding it if
  /// the count changed since the last region. Null when serial.
  [[nodiscard]] std::shared_ptr<detail::ThreadPool> acquire_pool();

  /// True for the one process arena: lanes() tracks threads().
  const bool track_process_threads_ = false;

  mutable std::mutex lease_mutex_;
  std::shared_ptr<detail::ThreadPool> pool_;  // guarded by lease_mutex_
  std::atomic<int> lanes_;
  std::atomic<bool> active_{false};
  std::atomic<const LaneEnv*> env_{nullptr};
};

/// The process arena: the one arena behind the legacy free functions and
/// `rt::Runtime::process_default()`. Its lane count tracks `threads()`.
[[nodiscard]] ExecArena& process_arena();

/// Shim for `process_arena().parallel_for(n, fn)`, kept so existing call
/// sites (and code genuinely outside any runtime) keep working. New code
/// should run on an explicit arena — usually `runtime.arena()` or the
/// owning mesh's `AmrMesh::arena()`.
void parallel_for(std::size_t n,
                  const std::function<void(int lane, std::size_t i)>& fn)
    FHP_EXCLUDES_REGION;

/// Shim for `process_arena().parallel_for_blocks(blocks, fn)`.
void parallel_for_blocks(std::span<const int> blocks,
                         const std::function<void(int lane, int block)>& fn)
    FHP_EXCLUDES_REGION;

namespace detail {

/// Shim for `process_arena().run_region(body)` (see ExecArena::run_region
/// for the contract).
void run_region(const std::function<void(int lane)>& body)
    FHP_EXCLUDES_REGION;

}  // namespace detail

}  // namespace fhp::par
