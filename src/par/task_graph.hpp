/// \file task_graph.hpp
/// \brief Block-task DAG executed by the lane pool with work stealing.
///
/// The barrier loops of `parallel_for_blocks` make every lane wait for
/// the slowest block of every phase: guard-fill, sweep, flux fixup and
/// EOS update each drain the pool before the next phase starts. The
/// paper's workload is memory-latency bound (huge pages cut DTLB misses
/// 21x yet buy ~2% wall time), so the remaining win is *overlap* —
/// a block's sweep is runnable the moment its own guard cells are
/// filled, regardless of how far the rest of the level has gotten.
/// TaskGraph is that execution model: the driver submits per-block tasks
/// with explicit dependencies at setup time, and `run()` executes the
/// whole step on the existing lane pool with per-lane work-stealing
/// deques instead of barriers.
///
/// Contracts, extending the `parallel_for` ones (parallel.hpp):
///
///   - **Single driver thread.** Graphs are built, frozen and run from
///     one thread; `run()` claims the same single-region slot as
///     `parallel_for` (a nested run is a ConfigError and, under clang,
///     a -Wthread-safety error via FHP_EXCLUDES_REGION).
///   - **Region capability.** Task bodies execute on pool lanes holding
///     the per-lane writer role: a body that writes lane-private shards
///     or block data asserts it with a `RegionWitness`, exactly like a
///     `parallel_for` lambda. The compile_fail suite pins that a shard
///     write inside a task body without a witness still fails
///     -Wthread-safety.
///   - **Allocation freedom.** Construction (`add_task`, `add_edge`,
///     `freeze`) allocates; `run()` is allocation-free on the hot path —
///     fixed-capacity deques and counters are sized at `freeze()`. (The
///     documented exception: changing `par::threads()` between freeze
///     and run re-sizes lane state once, a setup-time event.)
///   - **Determinism.** Physics and published counters must be
///     bit-identical regardless of steal order and lane count. The graph
///     guarantees *ordering* (a task runs after its dependencies); the
///     submitted bodies guarantee *commutativity* (per-block writes
///     only, integer counter shards, serial leaf-order FP reductions
///     outside the graph). Steal/idle statistics are intentionally kept
///     out of the PerfContext counters — they are timing-dependent and
///     would break the bit-identity contract; read them from
///     `last_stats()` instead.
///
/// `run_serial(Schedule::kReverse / kRandom, seed)` executes the graph
/// on the calling thread in an adversarial-but-legal ready order; tests
/// use it to assert that dependency edges, not scheduling luck, carry
/// the correctness argument.

#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/contracts.hpp"
#include "support/lane.hpp"

namespace fhp::par {

class ExecArena;

class TaskGraph {
 public:
  /// Dense task handle, assigned by add_task in submission order.
  using TaskId = int;

  /// Ready-queue policy for run_serial (single-threaded replays).
  enum class Schedule {
    kFifo,     ///< submission order among ready tasks
    kReverse,  ///< always the most recently readied task
    kRandom,   ///< seeded xorshift pick among ready tasks
  };

  /// Scheduler statistics of the last run(). Timing-dependent by nature
  /// (steal counts vary run to run), which is why they live here and
  /// never in the PerfContext counters.
  struct Stats {
    std::uint64_t executed = 0;       ///< task bodies run
    std::uint64_t steals = 0;         ///< tasks obtained from another lane
    std::uint64_t steal_attempts = 0; ///< steal probes (hit or miss)
    std::uint64_t yields = 0;         ///< empty scheduler iterations
  };

  /// \param arena the execution arena run() schedules on; null = the
  ///        process arena (legacy behavior: the lane count tracks
  ///        `par::threads()`). The arena must outlive the graph;
  ///        rt::Runtime-owned meshes pass `&mesh.arena()` so a graph
  ///        claims its own runtime's region slot, not the process one.
  explicit TaskGraph(ExecArena* arena = nullptr) : arena_(arena) {}
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Submit one task. \p name must be a static-storage string literal —
  /// it doubles as the task's trace-span name, and the span ring keeps
  /// the pointer. Setup-time: allocates. Returns the task's id.
  TaskId add_task(const char* name, std::function<void(int lane)> body);

  /// Declare that \p before must complete before \p after may start.
  /// Setup-time: allocates. Self-edges and duplicate edges are rejected
  /// with ConfigError (a duplicate would double-count the dependency).
  void add_edge(TaskId before, TaskId after);

  /// Validate the graph (cycle -> fhp::ConfigError, reported with the
  /// names of the tasks on the cycle), capture the current lane count
  /// and size all runtime state. Must be called once after construction;
  /// add_task/add_edge after freeze() throw.
  void freeze() FHP_EXCLUDES_REGION;

  /// Execute every task, honoring the dependency edges, on the lane
  /// pool with work-stealing deques. Allocation-free (see file comment).
  /// The first exception thrown by a task body aborts the remaining
  /// bodies (completions still propagate, so termination is guaranteed)
  /// and is rethrown here after every lane has stopped.
  void run() FHP_EXCLUDES_REGION;

  /// Execute every task on the calling thread (lane 0) in a
  /// deterministic adversarial ready order — for dependency tests.
  void run_serial(Schedule mode, std::uint64_t seed = 0)
      FHP_EXCLUDES_REGION;

  /// Statistics of the most recent run() (zeros before the first, and
  /// after run_serial, which schedules nothing).
  [[nodiscard]] Stats last_stats() const noexcept;

  /// Number of submitted tasks.
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Discard all tasks and edges; the graph can be rebuilt and frozen
  /// again (the driver does this after every remesh).
  void clear();

 private:
  struct Node {
    const char* name;                  ///< static-storage span name
    std::function<void(int)> body;
    std::vector<TaskId> successors;
    int indegree = 0;
  };

  /// Fixed-capacity Chase-Lev-style deque. Capacity is the task count:
  /// every task is pushed exactly once per run (by the lane that makes
  /// it ready), so indices never wrap within a run. All top_/bottom_
  /// accesses are seq_cst atomic operations — deliberately no
  /// std::atomic_thread_fence, which ThreadSanitizer does not model —
  /// and the slots themselves are atomics so the owner's push and a
  /// thief's read are never a plain-memory race.
  struct alignas(64) Deque {
    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::unique_ptr<std::atomic<TaskId>[]> slots;

    FHP_NO_ALLOC void push(TaskId t) noexcept;
    /// Owner-side pop (LIFO). Returns -1 when empty.
    FHP_NO_ALLOC TaskId take() noexcept;
    /// Thief-side steal (FIFO). Returns -1 when empty or lost the race.
    FHP_NO_ALLOC TaskId steal() noexcept;
  };

  struct alignas(64) LaneStats {
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t yields = 0;
  };

  /// The arena run() schedules on (the process arena when none was
  /// injected at construction).
  [[nodiscard]] ExecArena& arena() const noexcept;

  void require_building(const char* what) const;
  void reset_run_state() noexcept;
  void scheduler_loop(int lane) noexcept;
  FHP_NO_ALLOC void execute_task(TaskId t, int lane) noexcept;
  void finish_run();

  ExecArena* arena_ = nullptr;
  std::vector<Node> nodes_;
  bool frozen_ = false;
  std::uint64_t edge_count_ = 0;

  // --- runtime state, sized at freeze() --------------------------------
  int lanes_ = 0;                       ///< lane count captured at freeze
  std::vector<TaskId> topo_;            ///< Kahn order (cycle check + serial)
  std::vector<std::atomic<int>> remaining_;  ///< unmet deps per task
  std::vector<Deque> deques_;           ///< one per lane
  std::vector<LaneStats> stats_;        ///< one per lane
  std::atomic<std::int64_t> unfinished_{0};
  std::atomic<bool> abort_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;

  // run_serial scratch, sized at freeze (kept allocation-free too so the
  // adversarial replays are usable inside FHP_NO_ALLOC-audited tests).
  std::vector<TaskId> ready_scratch_;
};

}  // namespace fhp::par
