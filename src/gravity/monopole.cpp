#include "gravity/monopole.hpp"

#include <algorithm>
#include <cmath>

#include "support/constants.hpp"
#include "support/error.hpp"

namespace fhp::gravity {

using mesh::var::kDens;
using mesh::var::kEner;
using mesh::var::kVelx;
using mesh::var::kVely;
using mesh::var::kVelz;

MonopoleGravity::MonopoleGravity(std::array<double, 3> center, int nshells)
    : center_(center), nshells_(nshells) {
  FHP_REQUIRE(nshells >= 16, "monopole gravity needs >= 16 shells");
  enclosed_.assign(static_cast<std::size_t>(nshells_) + 1, 0.0);
}

void MonopoleGravity::update(const mesh::AmrMesh& mesh) {
  const mesh::MeshConfig& c = mesh.config();

  // Domain-corner distance bounds the shell grid.
  double rmax = 0.0;
  for (int corner = 0; corner < 8; ++corner) {
    const double x = (corner & 1) ? c.hi[0] : c.lo[0];
    const double y = (corner & 2) ? c.hi[1] : c.lo[1];
    const double z = c.ndim >= 3 ? ((corner & 4) ? c.hi[2] : c.lo[2]) : 0.0;
    const double dxc = x - center_[0];
    const double dyc = y - center_[1];
    const double dzc = z - center_[2];
    rmax = std::max(rmax, std::sqrt(dxc * dxc + dyc * dyc + dzc * dzc));
  }
  rmax_ = rmax;

  std::vector<double> shell_mass(static_cast<std::size_t>(nshells_), 0.0);
  const double dr = rmax_ / nshells_;

  for (int b : mesh.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const double x = mesh.xcenter(b, i) - center_[0];
          const double y = mesh.ycenter(b, j) - center_[1];
          const double z = mesh.zcenter(b, k) - center_[2];
          const double radius = std::sqrt(x * x + y * y + z * z);
          const double mass = mesh.unk().at(kDens, i, j, k, b) *
                              mesh.cell_volume(b, i, j, k);
          const int shell = std::min(
              nshells_ - 1, static_cast<int>(radius / dr));
          shell_mass[static_cast<std::size_t>(shell)] += mass;
        }
      }
    }
  }

  enclosed_[0] = 0.0;
  for (int s = 0; s < nshells_; ++s) {
    enclosed_[static_cast<std::size_t>(s) + 1] =
        enclosed_[static_cast<std::size_t>(s)] +
        shell_mass[static_cast<std::size_t>(s)];
  }
  total_mass_ = enclosed_.back();
}

double MonopoleGravity::enclosed_mass(double radius) const {
  if (rmax_ <= 0.0) return 0.0;
  const double f = std::clamp(radius / rmax_, 0.0, 1.0) * nshells_;
  const int s = std::min(nshells_ - 1, static_cast<int>(f));
  const double u = f - s;
  return (1.0 - u) * enclosed_[static_cast<std::size_t>(s)] +
         u * enclosed_[static_cast<std::size_t>(s) + 1];
}

double MonopoleGravity::g_at(double radius) const {
  if (radius <= 0.0) return 0.0;
  return constants::kGravitational * enclosed_mass(radius) /
         (radius * radius);
}

std::array<double, 3> MonopoleGravity::accel(double x, double y,
                                             double z) const {
  const double dxc = x - center_[0];
  const double dyc = y - center_[1];
  const double dzc = z - center_[2];
  const double radius = std::sqrt(dxc * dxc + dyc * dyc + dzc * dzc);
  if (radius <= 0.0) return {0.0, 0.0, 0.0};
  const double g = g_at(radius);
  return {-g * dxc / radius, -g * dyc / radius, -g * dzc / radius};
}

void MonopoleGravity::apply_source(mesh::AmrMesh& mesh, double dt) const {
  const mesh::MeshConfig& c = mesh.config();
  mesh::UnkContainer& unk = mesh.unk();
  for (int b : mesh.tree().leaves_morton()) {
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const auto g = accel(mesh.xcenter(b, i), mesh.ycenter(b, j),
                               mesh.zcenter(b, k));
          const double vx0 = unk.at(kVelx, i, j, k, b);
          const double vy0 = unk.at(kVely, i, j, k, b);
          const double vz0 = unk.at(kVelz, i, j, k, b);
          const double vx1 = vx0 + g[0] * dt;
          const double vy1 = vy0 + g[1] * dt;
          const double vz1 = vz0 + g[2] * dt;
          unk.at(kVelx, i, j, k, b) = vx1;
          unk.at(kVely, i, j, k, b) = vy1;
          unk.at(kVelz, i, j, k, b) = vz1;
          // Time-centered work term keeps the update second order.
          unk.at(kEner, i, j, k, b) +=
              0.5 * dt *
              ((vx0 + vx1) * g[0] + (vy0 + vy1) * g[1] + (vz0 + vz1) * g[2]);
        }
      }
    }
  }
}

}  // namespace fhp::gravity
