/// \file monopole.hpp
/// \brief Monopole (multipole l=0) self-gravity.
///
/// FLASH's supernova deflagration models use multipole self-gravity; the
/// dominant term for a nearly spherical white dwarf is the monopole:
/// g(R) = -G M(<R) / R^2 pointing at the stellar center. update() bins
/// the current mesh density into spherical mass shells; accel() returns
/// the acceleration vector at a point. Works in 2-d cylindrical (r, z)
/// where the spherical radius is sqrt(r^2 + (z - zc)^2) and in 3-d
/// Cartesian.

#pragma once

#include <array>
#include <vector>

#include "mesh/amr_mesh.hpp"

namespace fhp::gravity {

/// Monopole gravity solver.
class MonopoleGravity {
 public:
  /// \param center stellar center in domain coordinates. For cylindrical
  ///        meshes the first component must be 0 (the axis).
  /// \param nshells radial bins for the mass profile.
  explicit MonopoleGravity(std::array<double, 3> center = {0, 0, 0},
                           int nshells = 512);

  /// Rebuild M(<R) from the current leaf densities.
  void update(const mesh::AmrMesh& mesh);

  /// Enclosed mass at spherical radius R [g].
  [[nodiscard]] double enclosed_mass(double radius) const;

  /// Acceleration vector at a point (components follow mesh axes).
  [[nodiscard]] std::array<double, 3> accel(double x, double y,
                                            double z) const;

  /// Magnitude of g at spherical radius R.
  [[nodiscard]] double g_at(double radius) const;

  [[nodiscard]] double total_mass() const noexcept { return total_mass_; }
  [[nodiscard]] double max_radius() const noexcept { return rmax_; }

  /// Apply the gravitational source term to every leaf (momentum and
  /// energy), operator-split: u += g dt, ener += u_new . g dt.
  void apply_source(mesh::AmrMesh& mesh, double dt) const;

 private:
  std::array<double, 3> center_;
  int nshells_;
  double rmax_ = 0.0;
  double total_mass_ = 0.0;
  std::vector<double> enclosed_;  ///< cumulative mass at shell edges
};

}  // namespace fhp::gravity
