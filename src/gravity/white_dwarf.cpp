#include "gravity/white_dwarf.hpp"

#include <algorithm>
#include <cmath>

#include "support/constants.hpp"
#include "support/error.hpp"

namespace fhp::gravity {

namespace {

/// Invert rho from (P, T) by Newton on the EOS's dpdr.
double density_from_pressure(const eos::Eos& eos, double pressure,
                             double temperature, double abar, double zbar,
                             double rho_guess) {
  eos::State s;
  s.abar = abar;
  s.zbar = zbar;
  s.temp = temperature;
  double rho = rho_guess;
  for (int iter = 0; iter < 60; ++iter) {
    s.rho = rho;
    s.temp = temperature;
    eos.eval_one(eos::Mode::kDensTemp, s);
    const double f = s.pres - pressure;
    if (std::fabs(f) <= 1e-10 * pressure) return rho;
    double next = rho - f / s.dpdr;
    if (!(next > 0.0)) next = 0.5 * rho;
    // Pressure is monotone in rho; damp big jumps for stability.
    next = std::clamp(next, 0.3 * rho, 3.0 * rho);
    if (std::fabs(next - rho) <= 1e-12 * rho) return next;
    rho = next;
  }
  throw NumericsError("white dwarf: rho(P,T) inversion did not converge");
}

}  // namespace

WhiteDwarfModel::WhiteDwarfModel(const eos::Eos& eos, const WdParams& params)
    : params_(params) {
  namespace c = fhp::constants;
  FHP_REQUIRE(params.central_density > params.floor_density,
              "central density below the floor");

  eos::State center;
  center.abar = params.abar;
  center.zbar = params.zbar;
  center.rho = params.central_density;
  center.temp = params.core_temperature;
  eos.eval_one(eos::Mode::kDensTemp, center);

  double radius = params.step_cm;  // start one step off the singular origin
  double rho = params.central_density;
  double pressure = center.pres;
  // Mass of the initial uniform-density sphere.
  double mass = 4.0 / 3.0 * M_PI * radius * radius * radius * rho;

  r_.push_back(0.0);
  rho_.push_back(rho);
  p_.push_back(pressure);
  m_.push_back(0.0);
  r_.push_back(radius);
  rho_.push_back(rho);
  p_.push_back(pressure);
  m_.push_back(mass);

  for (int step = 0; step < params.max_steps; ++step) {
    const double h = params.step_cm;
    // RK2 (midpoint) on the coupled (P, M) system; rho follows from the
    // EOS at each stage.
    auto dpdr_fn = [&](double rr, double rho_local, double m_local) {
      return -c::kGravitational * m_local * rho_local / (rr * rr);
    };
    const double dp1 = dpdr_fn(radius, rho, mass);
    const double dm1 = 4.0 * M_PI * radius * radius * rho;

    const double p_half = pressure + 0.5 * h * dp1;
    if (p_half <= 0.0) break;
    const double m_half = mass + 0.5 * h * dm1;
    const double r_half = radius + 0.5 * h;
    const double rho_half = density_from_pressure(
        eos, p_half, params.core_temperature, params.abar, params.zbar, rho);
    if (rho_half <= params.floor_density) break;

    const double dp2 = dpdr_fn(r_half, rho_half, m_half);
    const double dm2 = 4.0 * M_PI * r_half * r_half * rho_half;

    const double p_next = pressure + h * dp2;
    if (p_next <= 0.0) break;
    const double m_next = mass + h * dm2;
    const double r_next = radius + h;
    double rho_next;
    try {
      rho_next = density_from_pressure(eos, p_next, params.core_temperature,
                                       params.abar, params.zbar, rho_half);
    } catch (const NumericsError&) {
      break;  // fell off the EOS table: the surface
    }
    if (rho_next <= params.floor_density) break;

    radius = r_next;
    pressure = p_next;
    mass = m_next;
    rho = rho_next;
    r_.push_back(radius);
    rho_.push_back(rho);
    p_.push_back(pressure);
    m_.push_back(mass);
  }

  radius_ = radius;
  mass_ = mass;
  FHP_CHECK(r_.size() >= 8, "white dwarf integration terminated immediately");
}

double WhiteDwarfModel::interp(const std::vector<double>& y,
                               double radius) const {
  if (radius <= 0.0) return y.front();
  if (radius >= radius_) return y.back();
  // Uniform steps after the first interval make lookup O(1).
  const auto it = std::upper_bound(r_.begin(), r_.end(), radius);
  const auto hi = static_cast<std::size_t>(it - r_.begin());
  const std::size_t lo = hi - 1;
  const double u = (radius - r_[lo]) / (r_[hi] - r_[lo]);
  return (1.0 - u) * y[lo] + u * y[hi];
}

double WhiteDwarfModel::density_at(double radius) const {
  if (radius >= radius_) return params_.floor_density;
  return std::max(params_.floor_density, interp(rho_, radius));
}

double WhiteDwarfModel::pressure_at(double radius) const {
  return interp(p_, radius);
}

double WhiteDwarfModel::enclosed_mass_at(double radius) const {
  return interp(m_, radius);
}

}  // namespace fhp::gravity
