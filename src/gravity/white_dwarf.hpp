/// \file white_dwarf.hpp
/// \brief Hydrostatic white-dwarf initial models.
///
/// The Type Iax progenitor is a (hybrid CONe) white dwarf in hydrostatic
/// equilibrium. WhiteDwarfModel integrates
///
///   dP/dR = -G M(R) rho / R^2,   dM/dR = 4 pi R^2 rho
///
/// outward from a central density with an isothermal core temperature,
/// closing the system with the stellar EOS (rho from (P, T) by Newton
/// iteration on dP/drho). The resulting 1-d profile is interpolated onto
/// the 2-d mesh by the supernova setup.

#pragma once

#include <vector>

#include "eos/eos_types.hpp"

namespace fhp::gravity {

/// Parameters of the progenitor model.
struct WdParams {
  double central_density = 2.0e9;  ///< rho_c [g/cm^3]
  double core_temperature = 5.0e7; ///< isothermal T [K]
  double abar = 13.714;            ///< 50/50 C/O: 1/(0.5/12 + 0.5/16)
  double zbar = 6.857;             ///< same mixture, Ye = 0.5
  double floor_density = 1.0e-2;   ///< integration stops at this rho
  double step_cm = 2.0e6;          ///< radial step (20 km)
  int max_steps = 200000;
};

/// A hydrostatic profile rho(R), P(R), M(R).
class WhiteDwarfModel {
 public:
  /// Integrate with the given EOS (use the tabulated HelmTableEos — the
  /// direct integral EOS works too but is ~1000x slower).
  WhiteDwarfModel(const eos::Eos& eos, const WdParams& params);

  /// Stellar radius (where rho fell to floor_density) [cm].
  [[nodiscard]] double radius() const noexcept { return radius_; }
  /// Total mass [g].
  [[nodiscard]] double mass() const noexcept { return mass_; }
  [[nodiscard]] const WdParams& params() const noexcept { return params_; }

  /// Interpolated profile values at spherical radius R. Beyond the
  /// surface, density returns floor_density and pressure the surface
  /// pressure (the setup overlays an ambient "fluff").
  [[nodiscard]] double density_at(double radius) const;
  [[nodiscard]] double pressure_at(double radius) const;
  [[nodiscard]] double enclosed_mass_at(double radius) const;

  /// Raw profile access for tests.
  [[nodiscard]] const std::vector<double>& radii() const noexcept {
    return r_;
  }
  [[nodiscard]] const std::vector<double>& densities() const noexcept {
    return rho_;
  }

 private:
  [[nodiscard]] double interp(const std::vector<double>& y,
                              double radius) const;

  WdParams params_;
  std::vector<double> r_, rho_, p_, m_;
  double radius_ = 0.0;
  double mass_ = 0.0;
};

}  // namespace fhp::gravity
