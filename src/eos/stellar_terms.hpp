/// \file stellar_terms.hpp
/// \brief Shared assembly of the full stellar EOS state.
///
/// Both the direct HelmholtzEos and the tabulated HelmTableEos produce the
/// electron/positron part (EpPart); ions and radiation are analytic and
/// identical. assemble_state() adds them and derives the secondary
/// quantities (cv, cp, Gamma1, sound speed). invert_temperature() is the
/// shared safeguarded Newton used by the kDensEner / kDensPres modes.

#pragma once

#include <cmath>
#include <string>

#include "eos/eos_types.hpp"
#include "support/constants.hpp"
#include "support/error.hpp"

namespace fhp::eos::detail {

/// Electron/positron contribution at (rho, T, composition), volumetric,
/// with derivatives w.r.t. the *actual* density rho and temperature.
struct EpPart {
  double p = 0;         ///< pressure [erg/cm^3]
  double dpdr = 0;      ///< dP/dRho |_T
  double dpdt = 0;      ///< dP/dT |_Rho
  double e_vol = 0;     ///< energy density [erg/cm^3]
  double de_vol_dt = 0; ///< dE_vol/dT |_Rho
  double s_vol = 0;     ///< entropy density [erg/cm^3/K]
  double eta = 0;       ///< degeneracy parameter
};

/// Fill every output of \p s from the e+/e- part plus analytic ions and
/// radiation. Requires s.rho, s.temp, s.abar, s.zbar set.
inline void assemble_state(State& s, const EpPart& ep) {
  namespace c = fhp::constants;

  // Ions: ideal Maxwell-Boltzmann gas with Sackur-Tetrode entropy.
  const double r_ion = c::kAvogadro * c::kBoltzmann / s.abar;  // erg/(g K)
  const double p_ion = s.rho * r_ion * s.temp;
  const double e_ion = 1.5 * r_ion * s.temp;  // specific
  const double m_ion = s.abar * c::kAtomicMassUnit;
  const double n_ion = s.rho * c::kAvogadro / s.abar;
  const double lambda3 =
      std::pow(c::kPlanck * c::kPlanck /
                   (2.0 * M_PI * m_ion * c::kBoltzmann * s.temp),
               1.5);
  const double s_ion =
      r_ion * (2.5 + std::log(std::max(1e-300, 1.0 / (n_ion * lambda3))));

  // Radiation: black body.
  const double a = c::kRadiationConstant;
  const double t3 = s.temp * s.temp * s.temp;
  const double p_rad = a * t3 * s.temp / 3.0;
  const double e_rad = a * t3 * s.temp / s.rho;  // specific
  const double s_rad = 4.0 * a * t3 / (3.0 * s.rho);

  s.pres = ep.p + p_ion + p_rad;
  s.ener = ep.e_vol / s.rho + e_ion + e_rad;
  s.entr = ep.s_vol / s.rho + s_ion + s_rad;
  s.eta = ep.eta;

  s.dpdt = ep.dpdt + s.rho * r_ion + 4.0 * a * t3 / 3.0;
  s.dpdr = ep.dpdr + r_ion * s.temp;
  s.cv = ep.de_vol_dt / s.rho + 1.5 * r_ion + 4.0 * a * t3 / s.rho;
  s.dedt = s.cv;

  if (!(s.pres > 0.0) || !(s.cv > 0.0) || !(s.dpdr > 0.0)) {
    throw NumericsError("stellar EOS produced an unphysical state (rho=" +
                        std::to_string(s.rho) + ", T=" +
                        std::to_string(s.temp) + ")");
  }

  const double chi_r = s.dpdr * s.rho / s.pres;
  const double chi_t = s.dpdt * s.temp / s.pres;
  const double gamma3m1 = s.pres * chi_t / (s.rho * s.temp * s.cv);
  s.gamma1 = chi_r + chi_t * gamma3m1;
  s.cp = s.cv + s.pres * chi_t * chi_t / (s.rho * s.temp * chi_r);
  s.cs = std::sqrt(std::max(0.0, s.gamma1 * s.pres / s.rho));
}

/// Safeguarded Newton on temperature for the energy/pressure input modes.
/// \p eval_dt must fill \p s consistently from (s.rho, s.temp).
template <typename EvalDtFn>
void invert_temperature(EvalDtFn&& eval_dt, Mode mode, State& s, double tmin,
                        double tmax) {
  const bool want_ener = mode == Mode::kDensEner;
  const double target = want_ener ? s.ener : s.pres;
  FHP_REQUIRE(target > 0.0, "temperature inversion target must be positive");

  double lo = tmin, hi = tmax;
  double temp = (s.temp >= lo && s.temp <= hi) ? s.temp : std::sqrt(lo * hi);

  for (int iter = 0; iter < 100; ++iter) {
    s.temp = temp;
    eval_dt(s);
    const double value = want_ener ? s.ener : s.pres;
    const double slope = want_ener ? s.dedt : s.dpdt;
    const double f = value - target;
    if (std::fabs(f) <= 1e-11 * target) {
      if (want_ener) {
        s.ener = target;
      } else {
        s.pres = target;
      }
      return;
    }
    if (f > 0) {
      hi = temp;
    } else {
      lo = temp;
    }
    // Bracket collapsed onto a domain boundary: the target is below the
    // T_min state (or above T_max). Pin to the boundary — FLASH's
    // Helmholtz EOS clamps to its table floor the same way; the returned
    // state is the boundary state, *not* the (unreachable) target.
    if (hi <= lo * (1.0 + 1e-12)) {
      s.temp = f > 0 ? lo : hi;
      eval_dt(s);
      return;
    }
    double next = slope > 0 ? temp - f / slope : 0.0;
    if (!(next > lo && next < hi)) next = std::sqrt(lo * hi);
    temp = next;
  }
  throw NumericsError("temperature inversion (" +
                      std::string(to_string(mode)) + ") did not converge");
}

}  // namespace fhp::eos::detail
