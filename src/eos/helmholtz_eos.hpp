/// \file helmholtz_eos.hpp
/// \brief Stellar EOS: degenerate e-/e+ gas + ideal ions + radiation.
///
/// This is flashhp's equivalent of FLASH's `Helmholtz` EOS — the module
/// the paper's "EOS" experiment instruments. The electron/positron part
/// is the relativistic, arbitrarily degenerate Fermi gas evaluated from
/// generalized Fermi–Dirac integrals (Timmes & Arnett 1999 formulation):
///
///   n_e    = C beta^{3/2} [F_{1/2} + beta F_{3/2}]
///   P_e    = (2/3) C m_e c^2 beta^{5/2} [F_{3/2} + (beta/2) F_{5/2}]
///   E_e    = C m_e c^2 beta^{5/2} [F_{3/2} + beta F_{5/2}]
///
/// with C = 8 pi sqrt(2) (m_e c / h)^3 and beta = kT / m_e c^2. Positrons
/// use eta_+ = -eta - 2/beta and add their rest-mass energy. Charge
/// neutrality n_- - n_+ = rho N_A zbar / abar fixes eta by safeguarded
/// Newton iteration. Ions are an ideal Maxwell–Boltzmann gas; radiation
/// is a black body. (Coulomb corrections, which FLASH offers as an
/// option, are omitted — negligible for the flame regime and documented
/// in DESIGN.md.)
///
/// Direct evaluation costs ~10^3 integrand evaluations per zone; the
/// production path is the tabulated HelmTable (eos_table.hpp), exactly as
/// FLASH ships a tabulated Helmholtz free energy. This class is the
/// ground truth the table is built from and tested against.

#pragma once

#include "eos/eos_types.hpp"

namespace fhp::eos {

/// Direct (integral-evaluation) stellar EOS.
class HelmholtzEos final : public Eos {
 public:
  HelmholtzEos() = default;

  void eval(Mode mode, std::span<State> row) const override;

  /// Evaluate at (rho, T) filling every output (the other modes wrap this
  /// in a temperature Newton iteration).
  void eval_dens_temp(State& s) const;

  /// Solve charge neutrality for the degeneracy parameter eta at
  /// (rho, T, zbar/abar). Exposed for tests.
  [[nodiscard]] double solve_eta(double rho, double temp, double ye) const;

  /// The electron/positron part alone, as a function of the *electron*
  /// density coordinate rho_ye = rho * Ye and T — the quantity the
  /// production table (HelmTable) tabulates, exactly as FLASH's
  /// helm_table.dat is indexed by (rho*Ye, T). Volumetric units;
  /// derivatives are with respect to rho_ye and T.
  struct EpState {
    double p = 0, p_d = 0, p_t = 0;    ///< pressure [erg/cm^3] and partials
    double e = 0, e_d = 0, e_t = 0;    ///< energy density [erg/cm^3]
    double s = 0, s_t = 0;             ///< entropy density [erg/cm^3/K]
    double eta = 0, eta_d = 0, eta_t = 0;  ///< degeneracy parameter
  };
  [[nodiscard]] EpState eval_ep(double rho_ye, double temp) const;

  /// Valid input domain (documented, enforced).
  static constexpr double kMinTemp = 1.0e3;
  static constexpr double kMaxTemp = 1.0e12;
  static constexpr double kMinRho = 1.0e-8;
  static constexpr double kMaxRho = 1.0e12;

 private:
  /// Newton iteration on T for the kDensEner / kDensPres modes.
  void invert(Mode mode, State& s) const;
};

}  // namespace fhp::eos
