#include "eos/gamma_eos.hpp"

#include <cmath>

#include "support/constants.hpp"
#include "support/error.hpp"

namespace fhp::eos {

std::string_view to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kDensTemp: return "dens_temp";
    case Mode::kDensEner: return "dens_ener";
    case Mode::kDensPres: return "dens_pres";
  }
  return "?";
}

GammaEos::GammaEos(double gamma) : gamma_(gamma) {
  FHP_REQUIRE(gamma > 1.0, "gamma-law EOS requires gamma > 1");
}

void GammaEos::eval(Mode mode, std::span<State> row) const {
  using constants::kAvogadro;
  using constants::kBoltzmann;
  const double gm1 = gamma_ - 1.0;

  for (State& s : row) {
    if (!(s.rho > 0.0)) {
      throw NumericsError("gamma EOS: non-positive density");
    }
    const double r_spec = kAvogadro * kBoltzmann / s.abar;  // erg/(g K)
    switch (mode) {
      case Mode::kDensTemp:
        if (!(s.temp > 0.0)) {
          throw NumericsError("gamma EOS: non-positive temperature");
        }
        s.pres = s.rho * r_spec * s.temp;
        s.ener = s.pres / (gm1 * s.rho);
        break;
      case Mode::kDensEner:
        if (!(s.ener > 0.0)) {
          throw NumericsError("gamma EOS: non-positive internal energy");
        }
        s.pres = gm1 * s.rho * s.ener;
        s.temp = s.pres / (s.rho * r_spec);
        break;
      case Mode::kDensPres:
        if (!(s.pres > 0.0)) {
          throw NumericsError("gamma EOS: non-positive pressure");
        }
        s.temp = s.pres / (s.rho * r_spec);
        s.ener = s.pres / (gm1 * s.rho);
        break;
    }
    s.cv = r_spec / gm1;
    s.cp = s.cv * gamma_;
    s.gamma1 = gamma_;
    s.cs = std::sqrt(gamma_ * s.pres / s.rho);
    s.dpdr = s.pres / s.rho;
    s.dpdt = s.rho * r_spec;
    s.dedt = s.cv;
    s.entr = s.cv * std::log(s.pres / std::pow(s.rho, gamma_)) ;
    s.eta = 0.0;
  }
}

}  // namespace fhp::eos
