/// \file eos_table.hpp
/// \brief Tabulated electron/positron EOS — the production path.
///
/// FLASH's Helmholtz EOS does not evaluate Fermi–Dirac integrals per zone;
/// it interpolates a pre-built table (helm_table.dat) indexed by
/// (rho*Ye, T), then adds analytic ions and radiation. HelmTable is that
/// table: 16 quantity planes (P, E, S, eta and their d/d(rhoYe), d/dT and
/// cross derivatives) on a log-log grid, interpolated with bicubic
/// Hermite patches whose analytic partials supply dP/drho and dP/dT
/// consistently with the interpolated P.
///
/// The table lives on a MappedRegion under a chosen HugePolicy: its
/// per-zone 4x4-stencil gathers are part of the address stream the paper's
/// EOS experiment measures. trace_interpolate() replays exactly the bytes
/// interpolate() touches into the machine model.
///
/// Building the table evaluates the direct HelmholtzEos at every node
/// (tens of seconds); build_or_load() caches the result in a binary file.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "eos/eos_types.hpp"
#include "eos/helmholtz_eos.hpp"
#include "mem/allocator.hpp"
#include "mem/huge_policy.hpp"
#include "tlb/trace.hpp"

namespace fhp::eos {

/// Grid specification (log10 axes, inclusive bounds). The default matches
/// FLASH's helm_table.dat resolution (541 density x 201 temperature
/// points); with 16 quantity planes the table is ~14 MiB — far beyond the
/// 4 MiB a 1024-entry L2 TLB covers with 4 KiB pages, which is exactly
/// why the paper's EOS test was so TLB-hungry.
struct HelmTableSpec {
  double log_rho_min = -6.0;  ///< log10(rho * Ye) lower bound
  double log_rho_max = 11.0;
  int nrho = 541;
  double log_temp_min = 4.0;  ///< log10(T) lower bound
  double log_temp_max = 11.0;
  int ntemp = 201;

  [[nodiscard]] bool operator==(const HelmTableSpec&) const = default;
};

/// The tabulated e+/e- quantities at one evaluation point.
struct EpInterp {
  double p = 0, p_d = 0, p_t = 0;  ///< pressure and partials (d = d/d rhoYe)
  double e = 0, e_d = 0, e_t = 0;  ///< energy density and partials
  double s = 0, s_t = 0;           ///< entropy density
  double eta = 0;                  ///< degeneracy parameter
};

/// The table itself (owning its storage).
class HelmTable {
 public:
  /// Build by direct evaluation over the grid (expensive). Storage is
  /// carved from \p pool — always explicit; runtime callers pass
  /// `runtime.page_pool()`.
  static HelmTable build(const HelmTableSpec& spec, mem::HugePolicy policy,
                         mem::PagePool& pool);

  /// Load from \p path if it exists and matches \p spec; else build and
  /// save to \p path (best-effort; an unwritable path just skips caching).
  static HelmTable build_or_load(const HelmTableSpec& spec,
                                 mem::HugePolicy policy, mem::PagePool& pool,
                                 const std::string& path);

  /// Load only; nullopt if the file is missing or spec/version mismatch.
  static std::optional<HelmTable> load(const HelmTableSpec& spec,
                                       mem::HugePolicy policy,
                                       mem::PagePool& pool,
                                       const std::string& path);

  /// Persist to a binary cache file. Throws fhp::SystemError on IO error.
  void save(const std::string& path) const;

  /// Bicubic-Hermite interpolation at (rho_ye, temp). Out-of-range inputs
  /// throw fhp::NumericsError.
  [[nodiscard]] EpInterp interpolate(double rho_ye, double temp) const;

  /// Replay the exact table bytes interpolate() touches for one zone.
  /// \param full true: all 16 planes (a complete state fill); false: only
  ///        the P and E groups — what each intermediate Newton iteration
  ///        of the (rho, e) inversion reads.
  void trace_interpolate(tlb::Tracer& tracer, double rho_ye, double temp,
                         bool full = true) const;

  [[nodiscard]] const HelmTableSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const mem::MappedRegion& region() const noexcept {
    return storage_.region();
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return storage_.size() * sizeof(double);
  }

  /// Cache the effective translation page size for tracing (scans smaps
  /// once). Called by the benchmarks after the table is resident.
  void refresh_page_shift() { page_shift_ = tlb::effective_page_shift(region()); }
  [[nodiscard]] std::uint8_t page_shift() const noexcept { return page_shift_; }

  /// Quantity planes; public for tests.
  enum Plane : std::size_t {
    kP = 0, kPd, kPt, kPdt,
    kE, kEd, kEt, kEdt,
    kS, kSd, kSt, kSdt,
    kEta, kEtaD, kEtaT, kEtaDt,
    kNumPlanes,
  };

  /// Nodal value accessor (i = rho index, j = temp index); for tests.
  [[nodiscard]] double node(Plane plane, int i, int j) const noexcept {
    return plane_data(plane)[static_cast<std::size_t>(j) *
                                 static_cast<std::size_t>(spec_.nrho) +
                             static_cast<std::size_t>(i)];
  }

 private:
  HelmTable(const HelmTableSpec& spec, mem::HugePolicy policy,
            mem::PagePool& pool);

  [[nodiscard]] const double* plane_data(Plane plane) const noexcept {
    return storage_.data() +
           static_cast<std::size_t>(plane) * plane_elems_;
  }
  [[nodiscard]] double* plane_data(Plane plane) noexcept {
    return storage_.data() + static_cast<std::size_t>(plane) * plane_elems_;
  }

  /// Locate the cell and unit coordinates for (rho_ye, temp).
  struct Cell {
    int i, j;        ///< lower-left node
    double u, v;     ///< unit coordinates in the cell
    double dx, dy;   ///< physical-to-unit derivative scale handled per node
  };
  [[nodiscard]] Cell locate(double rho_ye, double temp) const;

  HelmTableSpec spec_;
  std::size_t plane_elems_ = 0;
  mem::HugeBuffer<double> storage_;
  std::uint8_t page_shift_ = 12;
};

/// The production EOS: table for e+/e-, analytic ions and radiation.
class HelmTableEos final : public Eos {
 public:
  explicit HelmTableEos(std::shared_ptr<const HelmTable> table)
      : table_(std::move(table)) {}

  void eval(Mode mode, std::span<State> row) const override;

  /// (rho, T) evaluation (other modes Newton-wrap this).
  void eval_dens_temp(State& s) const;

  /// Replay the table-side memory behaviour of eval() for one row into
  /// the machine model (the unk-side accesses are traced by the caller).
  void trace_eval(tlb::Tracer& tracer, Mode mode,
                  std::span<const State> row) const;

  [[nodiscard]] const HelmTable& table() const noexcept { return *table_; }

 private:
  std::shared_ptr<const HelmTable> table_;
};

}  // namespace fhp::eos
