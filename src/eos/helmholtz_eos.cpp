#include "eos/helmholtz_eos.hpp"

#include <algorithm>
#include <cmath>

#include "eos/fermi_dirac.hpp"
#include "eos/stellar_terms.hpp"
#include "support/constants.hpp"
#include "support/error.hpp"

namespace fhp::eos {

namespace {

namespace c = fhp::constants;

/// C = 8 pi sqrt(2) (m_e c / h)^3  [cm^-3].
const double kCn = 8.0 * M_PI * std::sqrt(2.0) *
                   std::pow(c::kElectronMass * c::kSpeedOfLight / c::kPlanck, 3);

/// One species of Fermi gas (electrons, or positrons via eta_+).
struct FermiGas {
  double n = 0;      ///< number density [1/cm^3]
  double n_eta = 0;  ///< dn/deta at fixed beta
  double n_beta = 0; ///< dn/dbeta at fixed eta
  double p = 0;      ///< pressure [erg/cm^3]
  double p_eta = 0;
  double p_beta = 0;
  double e = 0;      ///< energy density [erg/cm^3] (no rest mass)
  double e_eta = 0;
  double e_beta = 0;
};

/// Evaluate the gas at (eta, beta). Underflow guard: for eta < -600 the
/// occupancy is < 1e-260 — return zeros.
FermiGas eval_gas(double eta, double beta) {
  FermiGas g;
  if (eta < -600.0) return g;
  const FdSet fd = fd_all(eta, beta);
  const double f12 = fd.f12, f32 = fd.f32, f52 = fd.f52;
  const double f12e = fd.f12e, f32e = fd.f32e, f52e = fd.f52e;
  const double f12b = fd.f12b, f32b = fd.f32b, f52b = fd.f52b;

  const double b32 = std::pow(beta, 1.5);
  const double b52 = b32 * beta;
  const double mc2 = c::kElectronRestEnergy;

  g.n = kCn * b32 * (f12 + beta * f32);
  g.n_eta = kCn * b32 * (f12e + beta * f32e);
  g.n_beta = kCn * (1.5 * std::sqrt(beta) * (f12 + beta * f32) +
                    b32 * (f12b + f32 + beta * f32b));

  g.p = (2.0 / 3.0) * kCn * mc2 * b52 * (f32 + 0.5 * beta * f52);
  g.p_eta = (2.0 / 3.0) * kCn * mc2 * b52 * (f32e + 0.5 * beta * f52e);
  g.p_beta = (2.0 / 3.0) * kCn * mc2 *
             (2.5 * b32 * (f32 + 0.5 * beta * f52) +
              b52 * (f32b + 0.5 * f52 + 0.5 * beta * f52b));

  g.e = kCn * mc2 * b52 * (f32 + beta * f52);
  g.e_eta = kCn * mc2 * b52 * (f32e + beta * f52e);
  g.e_beta = kCn * mc2 * (2.5 * b32 * (f32 + beta * f52) +
                          b52 * (f32b + f52 + beta * f52b));
  return g;
}

/// Electron+positron totals with derivatives w.r.t. (eta, beta).
struct PairGas {
  double n_net = 0;     ///< n_- - n_+  (charge density / e)
  double n_net_eta = 0;
  double n_net_beta = 0;
  double p = 0, p_eta = 0, p_beta = 0;
  double e = 0, e_eta = 0, e_beta = 0;   ///< includes pair rest mass
  double s_vol = 0;                      ///< entropy per volume [erg/cm^3/K]
};

PairGas eval_pairs(double eta, double beta, double temp) {
  const FermiGas ele = eval_gas(eta, beta);
  const double eta_pos = -eta - 2.0 / beta;
  const FermiGas pos = eval_gas(eta_pos, beta);
  const double mc2 = c::kElectronRestEnergy;

  PairGas t;
  // d(eta_pos)/d(eta) = -1; d(eta_pos)/d(beta) = 2 / beta^2.
  const double de_db = 2.0 / (beta * beta);

  t.n_net = ele.n - pos.n;
  t.n_net_eta = ele.n_eta + pos.n_eta;  // -(dpos/deta_pos)(-1) = +pos.n_eta
  t.n_net_beta = ele.n_beta - (pos.n_beta + pos.n_eta * de_db);

  t.p = ele.p + pos.p;
  t.p_eta = ele.p_eta - pos.p_eta;
  t.p_beta = ele.p_beta + pos.p_beta + pos.p_eta * de_db;

  // Positron energy adds the rest mass of the created pair (2 m c^2 per
  // positron): E_+ = e_pos + 2 m c^2 n_pos.
  t.e = ele.e + pos.e + 2.0 * mc2 * pos.n;
  t.e_eta = ele.e_eta - pos.e_eta - 2.0 * mc2 * pos.n_eta;
  t.e_beta = ele.e_beta + pos.e_beta + pos.e_eta * de_db +
             2.0 * mc2 * (pos.n_beta + pos.n_eta * de_db);

  // T S = E + P - mu_- n_- - mu_+ n_+ with mu_- = eta kT (no rest mass)
  // and mu_+ = eta_pos kT. Rest-mass bookkeeping matches t.e above.
  const double kT = c::kBoltzmann * temp;
  t.s_vol = (t.e + t.p - kT * (eta * ele.n + eta_pos * pos.n) -
             2.0 * mc2 * pos.n) /
            temp;
  return t;
}

}  // namespace

double HelmholtzEos::solve_eta(double rho, double temp, double ye) const {
  const double beta = c::kBoltzmann * temp / c::kElectronRestEnergy;
  const double n_target = rho * c::kAvogadro * ye;

  // Bracket: n_net(eta) is strictly increasing in eta.
  double lo = -50.0, hi = 50.0;
  auto net = [&](double eta) { return eval_pairs(eta, beta, temp).n_net; };
  // Expand the bracket geometrically until it straddles the target.
  for (int i = 0; i < 200 && net(hi) < n_target; ++i) hi *= 2.0;
  for (int i = 0; i < 200 && net(lo) > n_target; ++i) lo *= 2.0;
  FHP_CHECK(net(lo) <= n_target && net(hi) >= n_target,
            "eta bracket expansion failed");

  // Safeguarded Newton.
  double eta = 0.5 * (lo + hi);
  for (int iter = 0; iter < 100; ++iter) {
    const PairGas g = eval_pairs(eta, beta, temp);
    const double f = g.n_net - n_target;
    if (f > 0) {
      hi = eta;
    } else {
      lo = eta;
    }
    const double step = g.n_net_eta > 0 ? f / g.n_net_eta : 0.0;
    double next = eta - step;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    const double scale = std::max({std::fabs(eta), std::fabs(next), 1.0});
    if (std::fabs(next - eta) <= 1e-13 * scale) return next;
    eta = next;
  }
  throw NumericsError("HelmholtzEos: eta iteration did not converge");
}

HelmholtzEos::EpState HelmholtzEos::eval_ep(double rho_ye, double temp) const {
  const double beta = c::kBoltzmann * temp / c::kElectronRestEnergy;
  const double eta = solve_eta(rho_ye, temp, 1.0);
  const PairGas ep = eval_pairs(eta, beta, temp);

  const double n_target = rho_ye * c::kAvogadro;
  const double deta_drho = (n_target / rho_ye) / ep.n_net_eta;
  const double dbeta_dT = beta / temp;
  const double deta_dT = -(ep.n_net_beta / ep.n_net_eta) * dbeta_dT;

  EpState out;
  out.p = ep.p;
  out.p_d = ep.p_eta * deta_drho;
  out.p_t = ep.p_beta * dbeta_dT + ep.p_eta * deta_dT;
  out.e = ep.e;
  out.e_d = ep.e_eta * deta_drho;
  out.e_t = ep.e_beta * dbeta_dT + ep.e_eta * deta_dT;
  out.s = ep.s_vol;
  // At constant volume: T dS_vol = dE_vol.
  out.s_t = out.e_t / temp;
  out.eta = eta;
  out.eta_d = deta_drho;
  out.eta_t = deta_dT;
  return out;
}

void HelmholtzEos::eval_dens_temp(State& s) const {
  if (!(s.rho >= kMinRho && s.rho <= kMaxRho)) {
    throw NumericsError("HelmholtzEos: density " + std::to_string(s.rho) +
                        " outside [1e-8, 1e12] g/cc");
  }
  if (!(s.temp >= kMinTemp && s.temp <= kMaxTemp)) {
    throw NumericsError("HelmholtzEos: temperature " + std::to_string(s.temp) +
                        " outside [1e3, 1e12] K");
  }
  FHP_REQUIRE(s.abar > 0 && s.zbar > 0, "bad composition");

  const double ye = s.zbar / s.abar;
  const double beta = c::kBoltzmann * s.temp / c::kElectronRestEnergy;
  const double eta = solve_eta(s.rho, s.temp, ye);
  const PairGas ep = eval_pairs(eta, beta, s.temp);

  // Implicit-function derivatives of eta(rho, T) from charge neutrality
  // n_net(eta, beta) = rho N_A Ye:
  const double n_target = s.rho * c::kAvogadro * ye;
  const double deta_drho = (n_target / s.rho) / ep.n_net_eta;
  const double dbeta_dT = beta / s.temp;
  const double deta_dT = -(ep.n_net_beta / ep.n_net_eta) * dbeta_dT;

  detail::EpPart part;
  part.p = ep.p;
  part.dpdr = ep.p_eta * deta_drho;
  part.dpdt = ep.p_beta * dbeta_dT + ep.p_eta * deta_dT;
  part.e_vol = ep.e;
  part.de_vol_dt = ep.e_beta * dbeta_dT + ep.e_eta * deta_dT;
  part.s_vol = ep.s_vol;
  part.eta = eta;
  detail::assemble_state(s, part);
}

void HelmholtzEos::invert(Mode mode, State& s) const {
  detail::invert_temperature([this](State& st) { eval_dens_temp(st); }, mode,
                             s, kMinTemp, kMaxTemp);
}

void HelmholtzEos::eval(Mode mode, std::span<State> row) const {
  for (State& s : row) {
    switch (mode) {
      case Mode::kDensTemp: eval_dens_temp(s); break;
      case Mode::kDensEner:
      case Mode::kDensPres: invert(mode, s); break;
    }
  }
}

}  // namespace fhp::eos
