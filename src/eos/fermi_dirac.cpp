#include "eos/fermi_dirac.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace fhp::eos {

namespace {

/// 32-point Gauss–Legendre nodes/weights on [-1, 1], computed once by
/// Newton iteration on P_32 (machine precision; avoids transcribed tables).
struct GaussLegendre32 {
  std::array<double, 32> x{};
  std::array<double, 32> w{};

  GaussLegendre32() {
    constexpr int n = 32;
    for (int i = 0; i < (n + 1) / 2; ++i) {
      // Initial guess (Chebyshev-like).
      double z = std::cos(M_PI * (i + 0.75) / (n + 0.5));
      double pp = 0.0;
      for (int iter = 0; iter < 100; ++iter) {
        // Evaluate P_n(z) by recurrence.
        double p0 = 1.0, p1 = 0.0;
        for (int j = 0; j < n; ++j) {
          const double p2 = p1;
          p1 = p0;
          p0 = ((2.0 * j + 1.0) * z * p1 - j * p2) / (j + 1.0);
        }
        pp = n * (z * p0 - p1) / (z * z - 1.0);
        const double dz = p0 / pp;
        z -= dz;
        if (std::fabs(dz) < 1e-15) break;
      }
      x[static_cast<std::size_t>(i)] = -z;
      x[static_cast<std::size_t>(n - 1 - i)] = z;
      const double wi = 2.0 / ((1.0 - z * z) * pp * pp);
      w[static_cast<std::size_t>(i)] = wi;
      w[static_cast<std::size_t>(n - 1 - i)] = wi;
    }
  }
};

const GaussLegendre32& gl32() {
  static const GaussLegendre32 rule;
  return rule;
}

/// Fermi factor 1/(exp(u)+1), overflow-safe.
inline double fermi(double u) noexcept {
  if (u > 0.0) {
    const double t = std::exp(-u);
    return t / (1.0 + t);
  }
  return 1.0 / (std::exp(u) + 1.0);
}

/// d/deta of the Fermi factor with u = x - eta:
/// exp(u)/(exp(u)+1)^2 = t/(1+t)^2 with t = exp(-|u|).
inline double fermi_deta(double u) noexcept {
  const double t = std::exp(-std::fabs(u));
  const double denom = 1.0 + t;
  return t / (denom * denom);
}

enum class Deriv { kNone, kEta, kBeta };

/// Integrate x^k sqrt(1 + beta x / 2) * (fermi | dfermi/deta | dsqrt/dbeta
/// * fermi) over [lo, hi] with one 32-point panel.
double panel(double k, double eta, double beta, double lo, double hi,
             Deriv deriv) {
  const auto& rule = gl32();
  const double mid = 0.5 * (lo + hi);
  const double half = 0.5 * (hi - lo);
  double sum = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    const double xx = mid + half * rule.x[i];
    if (xx <= 0.0) continue;
    const double root = std::sqrt(1.0 + 0.5 * beta * xx);
    const double u = xx - eta;
    double f;
    switch (deriv) {
      case Deriv::kNone: f = std::pow(xx, k) * root * fermi(u); break;
      case Deriv::kEta: f = std::pow(xx, k) * root * fermi_deta(u); break;
      case Deriv::kBeta:
        f = std::pow(xx, k) * (0.25 * xx / root) * fermi(u);
        break;
    }
    sum += rule.w[i] * f;
  }
  return sum * half;
}

/// Breakpoints clustered on the Fermi surface plus a decaying tail.
std::vector<double> breakpoints(double eta) {
  std::vector<double> pts{0.0, 0.5, 2.0};
  if (eta > 0.0) {
    for (double d : {-30.0, -5.0, 5.0, 30.0}) {
      const double p = eta + d;
      if (p > 0.0) pts.push_back(p);
    }
    pts.push_back(eta + 200.0);
  } else {
    pts.push_back(8.0);
    pts.push_back(30.0);
    pts.push_back(200.0);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [](double a, double b) { return b - a < 1e-12; }),
            pts.end());
  return pts;
}

double integrate(double k, double eta, double beta, Deriv deriv) {
  FHP_REQUIRE(k > -1.0, "Fermi-Dirac integral requires k > -1");
  FHP_REQUIRE(beta >= 0.0, "relativity parameter beta must be >= 0");
  const auto pts = breakpoints(eta);
  double total = 0.0;
  for (std::size_t s = 0; s + 1 < pts.size(); ++s) {
    const double lo = pts[s];
    const double hi = pts[s + 1];
    // Subdivide long spans so each 32-point panel sees a smooth stretch.
    const double span = hi - lo;
    const double quantum = std::max(10.0, (eta > 40.0 ? eta / 8.0 : 10.0));
    const int pieces = std::max(1, static_cast<int>(std::ceil(span / quantum)));
    for (int p = 0; p < pieces; ++p) {
      const double a = lo + span * p / pieces;
      const double b = lo + span * (p + 1) / pieces;
      total += panel(k, eta, beta, a, b, deriv);
    }
  }
  return total;
}

}  // namespace

double fd_integral(double k, double eta, double beta) {
  return integrate(k, eta, beta, Deriv::kNone);
}

double fd_integral_deta(double k, double eta, double beta) {
  return integrate(k, eta, beta, Deriv::kEta);
}

double fd_integral_dbeta(double k, double eta, double beta) {
  return integrate(k, eta, beta, Deriv::kBeta);
}

FdSet fd_all(double eta, double beta) {
  FHP_REQUIRE(beta >= 0.0, "relativity parameter beta must be >= 0");
  const auto& rule = gl32();
  const auto pts = breakpoints(eta);
  FdSet out;
  for (std::size_t s = 0; s + 1 < pts.size(); ++s) {
    const double lo = pts[s];
    const double hi = pts[s + 1];
    const double span = hi - lo;
    const double quantum = std::max(10.0, (eta > 40.0 ? eta / 8.0 : 10.0));
    const int pieces = std::max(1, static_cast<int>(std::ceil(span / quantum)));
    for (int p = 0; p < pieces; ++p) {
      const double a = lo + span * p / pieces;
      const double b = lo + span * (p + 1) / pieces;
      const double mid = 0.5 * (a + b);
      const double half = 0.5 * (b - a);
      for (std::size_t i = 0; i < 32; ++i) {
        const double xx = mid + half * rule.x[i];
        if (xx <= 0.0) continue;
        const double w = rule.w[i] * half;
        const double root = std::sqrt(1.0 + 0.5 * beta * xx);
        const double u = xx - eta;
        const double f = fermi(u);
        const double fe = fermi_deta(u);
        const double x12 = std::sqrt(xx);
        const double x32 = x12 * xx;
        const double x52 = x32 * xx;
        const double dbeta_factor = 0.25 * xx / root;

        out.f12 += w * x12 * root * f;
        out.f32 += w * x32 * root * f;
        out.f52 += w * x52 * root * f;
        out.f12e += w * x12 * root * fe;
        out.f32e += w * x32 * root * fe;
        out.f52e += w * x52 * root * fe;
        out.f12b += w * x12 * dbeta_factor * f;
        out.f32b += w * x32 * dbeta_factor * f;
        out.f52b += w * x52 * dbeta_factor * f;
      }
    }
  }
  return out;
}

}  // namespace fhp::eos
