/// \file eos_types.hpp
/// \brief Common types for the equation-of-state interfaces.
///
/// Mirrors FLASH's Eos unit: an EOS is evaluated in one of three input
/// modes (MODE_DENS_TEMP, MODE_DENS_EI, MODE_DENS_PRES) over rows of
/// zones; every call fills the full thermodynamic state.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace fhp::eos {

/// Which pair of inputs defines the state (FLASH's eos "modes").
enum class Mode : std::uint8_t {
  kDensTemp,  ///< (rho, T) given — direct evaluation
  kDensEner,  ///< (rho, e) given — Newton-invert for T
  kDensPres,  ///< (rho, P) given — Newton-invert for T
};

[[nodiscard]] std::string_view to_string(Mode mode) noexcept;

/// One zone's thermodynamic state. Inputs and outputs share the struct,
/// FLASH-style: on input, rho + (temp|ener|pres per Mode) + abar/zbar are
/// set; on return everything is consistent.
struct State {
  // Composition (mean atomic weight and charge of the mixture).
  double abar = 12.0;  ///< mean nucleon number  (12C default)
  double zbar = 6.0;   ///< mean charge

  // Primary variables.
  double rho = 0.0;   ///< density [g/cm^3]
  double temp = 0.0;  ///< temperature [K]
  double ener = 0.0;  ///< specific internal energy [erg/g]
  double pres = 0.0;  ///< pressure [erg/cm^3]

  // Secondary outputs.
  double entr = 0.0;     ///< specific entropy [erg/(g K)]
  double cv = 0.0;       ///< specific heat at constant volume [erg/(g K)]
  double cp = 0.0;       ///< specific heat at constant pressure [erg/(g K)]
  double gamma1 = 0.0;   ///< first adiabatic index (d lnP / d lnRho)_s
  double cs = 0.0;       ///< adiabatic sound speed [cm/s]
  double dpdr = 0.0;     ///< (dP/dRho)_T
  double dpdt = 0.0;     ///< (dP/dT)_Rho
  double dedt = 0.0;     ///< (dE/dT)_Rho == cv
  double eta = 0.0;      ///< electron degeneracy parameter mu/kT
};

/// Abstract EOS: evaluate a row of states in the given mode.
///
/// Thread-safety contract: eval() is const and implementations MUST be
/// safe to call concurrently from multiple threads on disjoint rows —
/// the block-parallel sweeps (fhp::par) evaluate one row per lane with
/// no locking. Any lookup tables or coefficients must be immutable after
/// construction; per-evaluation scratch belongs in the caller's row, not
/// in mutable members.
class Eos {
 public:
  virtual ~Eos() = default;

  /// Fill every state in \p row consistently with \p mode's inputs.
  /// Throws fhp::NumericsError on unphysical inputs or non-convergence.
  /// Must be callable concurrently on disjoint rows (see class comment).
  virtual void eval(Mode mode, std::span<State> row) const = 0;

  /// Convenience scalar form.
  void eval_one(Mode mode, State& state) const {
    eval(mode, std::span<State>(&state, 1));
  }
};

}  // namespace fhp::eos
